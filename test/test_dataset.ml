(* Tests for the named-graph dataset layer: graph isolation, the shared
   dictionary, cross-graph (quad-level) lookup, and the RDF merge. *)

open Hexa
open Rdf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ex n = Term.iri ("http://example.org/" ^ n)
let t s p o = Triple.make (ex s) (ex p) (ex o)
let g1 = ex "graph1"
let g2 = ex "graph2"

let sample () =
  let d = Dataset.create () in
  ignore (Dataset.add d (t "a" "p" "b"));
  ignore (Dataset.add d ~graph:g1 (t "a" "p" "c"));
  ignore (Dataset.add d ~graph:g1 (t "x" "q" "y"));
  ignore (Dataset.add d ~graph:g2 (t "a" "p" "b"));  (* same triple as default *)
  d

let test_isolation () =
  let d = sample () in
  check_int "default size" 1 (Hexastore.size (Dataset.default_graph d));
  check_int "g1 size" 2 (Hexastore.size (Option.get (Dataset.graph d g1)));
  check_int "g2 size" 1 (Hexastore.size (Option.get (Dataset.graph d g2)));
  check_int "total counts duplicates" 4 (Dataset.size d);
  check_bool "unknown graph" true (Dataset.graph d (ex "nope") = None);
  Alcotest.(check (list string)) "graph names" [ "<http://example.org/graph1>"; "<http://example.org/graph2>" ]
    (List.map Term.to_string (Dataset.graph_names d))

let test_shared_dictionary () =
  let d = sample () in
  (* "a" got one id, visible identically from every graph. *)
  let id = Option.get (Dict.Term_dict.find_term (Dataset.dict d) (ex "a")) in
  let in_graph ?graph () =
    List.of_seq (Dataset.lookup d ?graph (Pattern.make ~s:id ()))
  in
  check_int "a in default" 1 (List.length (in_graph ()));
  check_int "a in g1" 1 (List.length (in_graph ~graph:g1 ()));
  check_int "a in g2" 1 (List.length (in_graph ~graph:g2 ()));
  check_int "a in unknown graph" 0 (List.length (in_graph ~graph:(ex "nope") ()))

let test_lookup_all_tags_graphs () =
  let d = sample () in
  let id = Option.get (Dict.Term_dict.find_term (Dataset.dict d) (ex "a")) in
  let hits = List.of_seq (Dataset.lookup_all d (Pattern.make ~s:id ())) in
  check_int "three graphs match" 3 (List.length hits);
  let tags = List.sort compare (List.map (fun (g, _) -> Option.map Term.to_string g) hits) in
  Alcotest.(check (list (option string))) "tags"
    [ None; Some "<http://example.org/graph1>"; Some "<http://example.org/graph2>" ]
    tags

let test_union_store () =
  let d = sample () in
  let merged = Dataset.union_store d in
  (* 4 statements, but a-p-b occurs twice → 3 distinct triples. *)
  check_int "merge deduplicates" 3 (Hexastore.size merged);
  Hexastore.check_invariant merged;
  check_bool "merge shares dict" true (Dataset.dict d == Hexastore.dict merged)

let test_remove_and_drop () =
  let d = sample () in
  check_bool "remove from g1" true (Dataset.remove d ~graph:g1 (t "a" "p" "c"));
  check_bool "remove absent" false (Dataset.remove d ~graph:g1 (t "a" "p" "c"));
  (* Removing from an unknown graph must not create it. *)
  check_bool "remove from unknown" false (Dataset.remove d ~graph:(ex "ghost") (t "a" "p" "b"));
  check_bool "ghost not created" true (Dataset.graph d (ex "ghost") = None);
  check_bool "drop g2" true (Dataset.drop_graph d g2);
  check_bool "drop again" false (Dataset.drop_graph d g2);
  check_int "sizes after" 2 (Dataset.size d)

let test_graph_name_validation () =
  let d = Dataset.create () in
  (try
     ignore (Dataset.get_or_create_graph d (Term.string_literal "bad"));
     Alcotest.fail "literal graph name accepted"
   with Invalid_argument _ -> ());
  (* Blank node graph names are allowed. *)
  ignore (Dataset.get_or_create_graph d (Term.blank "b0"));
  check_int "blank graph exists" 1 (List.length (Dataset.graph_names d));
  check_bool "memory accounted" true (Dataset.memory_words d > 0)

(* --- named-graph mutation under the delta layer ----------------------- *)

module C = Check

let no_violations what vs =
  if vs <> [] then
    Alcotest.failf "%s: %d violation(s): %s" what (List.length vs)
      (String.concat "; " (List.map C.Violation.to_string vs))

(* A named graph fronted by a write-optimized delta: buffered updates
   stay invisible to the dataset until [flush], and a rebuild-style
   [compact] must not detach the dataset's alias to the graph. *)
let test_delta_fronted_graph () =
  let d = sample () in
  let g = Dataset.get_or_create_graph d g1 in
  let dl = Delta.of_base ~insert_threshold:1000 ~delete_threshold:1000 g in
  check_bool "buffer insert 1" true (Delta.add dl (t "n1" "q" "z"));
  check_bool "buffer insert 2" true (Delta.add dl (t "n2" "q" "z"));
  check_bool "tombstone base triple" true (Delta.remove dl (t "x" "q" "y"));
  (* Mid-delta: the dataset still serves the unflushed base and stays
     coherent; the merged view already reflects the buffered updates. *)
  check_int "dataset unchanged mid-delta" 4 (Dataset.size d);
  check_int "g1 base unchanged mid-delta" 2 (Hexastore.size g);
  check_int "merged view size" 3 (Delta.size dl);
  check_bool "merged sees buffered" true (Delta.mem dl (t "n1" "q" "z"));
  check_bool "merged hides tombstoned" false (Delta.mem dl (t "x" "q" "y"));
  no_violations "dataset coherent mid-delta" (C.Invariant.dataset d);
  no_violations "delta coherent mid-delta" (C.delta dl);
  (* Flush: the staged updates land in the dataset's graph. *)
  Delta.flush dl;
  check_int "g1 sees flushed updates" 3 (Hexastore.size g);
  check_int "dataset sees flushed updates" 5 (Dataset.size d);
  check_bool "dataset lookup finds flushed triple" true
    (let id = Option.get (Dict.Term_dict.find_term (Dataset.dict d) (ex "n1")) in
     Dataset.lookup d ~graph:g1 (Pattern.make ~s:id ()) () <> Seq.Nil);
  no_violations "dataset coherent after flush" (C.Invariant.dataset d);
  (* Compact forces the rebuild path; the graph's identity must survive
     so the dataset observes the rebuilt contents through its alias. *)
  check_bool "buffer insert 3" true (Delta.add dl (t "n3" "q" "z"));
  Delta.compact dl;
  check_bool "alias survives rebuild" true (Delta.base dl == g);
  check_bool "alias still registered" true
    (Option.get (Dataset.graph d g1) == g);
  check_int "g1 sees compacted updates" 4 (Hexastore.size g);
  check_int "dataset sees compacted updates" 6 (Dataset.size d);
  no_violations "dataset coherent after compact" (C.Invariant.dataset d);
  no_violations "store coherent after compact" (C.store g)

(* Two graphs fronted by independent deltas, flushed at different times:
   the dataset must stay coherent in every mixed flushed/unflushed
   state. *)
let test_delta_mixed_flush_coherence () =
  let d = sample () in
  let dl1 = Delta.of_base ~insert_threshold:1000 (Dataset.get_or_create_graph d g1) in
  let dl2 = Delta.of_base ~insert_threshold:1000 (Dataset.get_or_create_graph d g2) in
  for i = 0 to 4 do
    ignore (Delta.add dl1 (t ("s" ^ string_of_int i) "p" "o"));
    ignore (Delta.add dl2 (t ("s" ^ string_of_int i) "p" "o2"))
  done;
  ignore (Delta.remove dl2 (t "a" "p" "b"));
  no_violations "both unflushed" (C.Invariant.dataset d);
  Delta.flush dl1;
  (* g1 flushed, g2 still buffering: the classic mixed state. *)
  check_int "g1 flushed" 7 (Hexastore.size (Option.get (Dataset.graph d g1)));
  check_int "g2 not yet" 1 (Hexastore.size (Option.get (Dataset.graph d g2)));
  no_violations "mixed flushed/unflushed" (C.Invariant.dataset d);
  no_violations "unflushed delta still coherent" (C.delta dl2);
  Delta.flush dl2;
  check_int "g2 flushed" 5 (Hexastore.size (Option.get (Dataset.graph d g2)));
  check_int "final dataset size" 13 (Dataset.size d);
  no_violations "both flushed" (C.Invariant.dataset d)

(* Property: random quad-level op sequences against a naive model.  Each
   op targets the default graph or one of two named graphs; named graphs
   are mutated through delta fronts that flush at random points, so the
   dataset passes through many mixed flushed/unflushed states. *)
let prop_dataset_quad_ops =
  let gen_ops =
    QCheck.Gen.(
      list_size (int_range 1 60)
        (triple (int_range 0 2) (int_range 0 1) (triple (int_range 0 3) (int_range 0 1) (int_range 0 3))))
  in
  let print_ops ops =
    String.concat "; "
      (List.map
         (fun (g, k, (s, p, o)) -> Printf.sprintf "(g%d,%s,%d-%d-%d)" g
             (if k = 0 then "add" else "del") s p o)
         ops)
  in
  QCheck.Test.make ~name:"dataset quad ops = naive model (delta-fronted graphs)"
    ~count:200
    (QCheck.make ~print:print_ops gen_ops)
    (fun ops ->
      let d = Dataset.create () in
      let fronts =
        [| None;
           Some (Delta.of_base ~insert_threshold:4 ~delete_threshold:3
                   (Dataset.get_or_create_graph d g1));
           Some (Delta.of_base ~insert_threshold:4 ~delete_threshold:3
                   (Dataset.get_or_create_graph d g2)) |]
      in
      let model = Hashtbl.create 64 in  (* (graph_idx, triple) -> unit *)
      let step = ref 0 in
      List.iter
        (fun (gi, kind, (s, p, o)) ->
          incr step;
          let tr = t ("s" ^ string_of_int s) ("p" ^ string_of_int p) ("o" ^ string_of_int o) in
          let expect_change =
            if kind = 0 then not (Hashtbl.mem model (gi, tr))
            else Hashtbl.mem model (gi, tr)
          in
          let changed =
            match (kind, fronts.(gi)) with
            | 0, None -> Dataset.add d tr
            | 0, Some dl -> Delta.add dl tr
            | _, None -> Dataset.remove d tr
            | _, Some dl -> Delta.remove dl tr
          in
          if changed <> expect_change then
            QCheck.Test.fail_reportf "step %d: changed=%b expected=%b" !step
              changed expect_change;
          if kind = 0 then Hashtbl.replace model (gi, tr) ()
          else Hashtbl.remove model (gi, tr);
          (* Flush one of the fronts every few steps so the run visits
             mixed flushed/unflushed states. *)
          if !step mod 7 = 0 then Option.iter Delta.flush fronts.(1);
          if !step mod 11 = 0 then Option.iter Delta.compact fronts.(2);
          let violations = C.Invariant.dataset d in
          if violations <> [] then
            QCheck.Test.fail_reportf "step %d: dataset violations: %s" !step
              (String.concat "; " (List.map C.Violation.to_string violations)))
        ops;
      Array.iter (fun f -> Option.iter Delta.flush f) fronts;
      (* Final cross-check: dataset contents = model, graph by graph. *)
      let graph_of = function 0 -> None | 1 -> Some g1 | _ -> Some g2 in
      List.iter
        (fun gi ->
          let expected =
            Hashtbl.fold
              (fun (g, tr) () acc -> if g = gi then tr :: acc else acc)
              model []
            |> List.sort compare
          in
          let actual =
            Dataset.lookup d ?graph:(graph_of gi) (Pattern.make ())
            |> Seq.map (Dict.Term_dict.decode_triple (Dataset.dict d))
            |> List.of_seq |> List.sort compare
          in
          if expected <> actual then
            QCheck.Test.fail_reportf "graph %d: %d expected vs %d actual" gi
              (List.length expected) (List.length actual))
        [ 0; 1; 2 ];
      let violations = C.Invariant.dataset d in
      if violations <> [] then
        QCheck.Test.fail_reportf "final dataset violations: %s"
          (String.concat "; " (List.map C.Violation.to_string violations));
      true)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dataset"
    [
      ( "dataset",
        [
          Alcotest.test_case "isolation" `Quick test_isolation;
          Alcotest.test_case "shared_dict" `Quick test_shared_dictionary;
          Alcotest.test_case "lookup_all" `Quick test_lookup_all_tags_graphs;
          Alcotest.test_case "union" `Quick test_union_store;
          Alcotest.test_case "remove_drop" `Quick test_remove_and_drop;
          Alcotest.test_case "names" `Quick test_graph_name_validation;
        ] );
      ( "delta",
        [
          Alcotest.test_case "delta_fronted_graph" `Quick test_delta_fronted_graph;
          Alcotest.test_case "mixed_flush_coherence" `Quick test_delta_mixed_flush_coherence;
          qt prop_dataset_quad_ops;
        ] );
    ]
