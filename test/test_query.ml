(* Tests for the [query] library: bindings, planner, executor, the SPARQL
   subset parser, path expressions and result formatting.  Executor
   results are cross-checked against a brute-force BGP evaluator and must
   be identical on Hexastore, COVP1 and COVP2. *)

open Query
open Rdf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* A small academic graph in the spirit of the paper's Figure 1. *)
let ex name = Term.iri ("http://example.org/" ^ name)

let fig1_triples =
  let t s p o = Triple.make (ex s) (ex p) (ex o) in
  [
    t "ID1" "type" "FullProfessor";
    t "ID1" "teacherOf" "AI";
    t "ID1" "bachelorFrom" "MIT";
    t "ID1" "mastersFrom" "Cambridge";
    t "ID1" "phdFrom" "Yale";
    t "ID2" "type" "AssocProfessor";
    t "ID2" "worksFor" "MIT";
    t "ID2" "teacherOf" "DataBases";
    t "ID2" "bachelorFrom" "Yale";
    t "ID2" "phdFrom" "Stanford";
    t "ID3" "type" "GradStudent";
    t "ID3" "advisor" "ID2";
    t "ID3" "teachingAssist" "AI";
    t "ID3" "bachelorFrom" "Stanford";
    t "ID3" "mastersFrom" "Princeton";
    t "ID4" "type" "GradStudent";
    t "ID4" "advisor" "ID1";
    t "ID4" "takesCourse" "DataBases";
    t "ID4" "bachelorFrom" "Columbia";
  ]

let make_store () = Hexa.Hexastore.of_triples fig1_triples
let boxed () = Hexa.Store_sig.box_hexastore (make_store ())

(* A delta-fronted store whose *merged* view equals fig1: part of the
   graph bulk-loaded into the base, the rest left pending in the insert
   buffer, plus a tombstoned decoy — so every generic executor/planner
   test below also proves the query layer reads base ∪ delta − deletes. *)
let make_delta_store () =
  let d = Hexa.Delta.create () in
  let rec split n = function
    | x :: rest when n > 0 ->
        let base, pending = split (n - 1) rest in
        (x :: base, pending)
    | rest -> ([], rest)
  in
  let base, pending = split 12 fig1_triples in
  let decoy = Triple.make (ex "decoy") (ex "decoyProp") (ex "decoy") in
  let encode = Dict.Term_dict.encode_triple (Hexa.Delta.dict d) in
  ignore (Hexa.Delta.add_bulk_ids d (Array.of_list (List.map encode (decoy :: base))));
  List.iter (fun t -> ignore (Hexa.Delta.add d t)) pending;
  ignore (Hexa.Delta.remove d decoy);
  assert (Hexa.Delta.pending_inserts d > 0 && Hexa.Delta.pending_deletes d > 0);
  d

let all_boxed () =
  let h = make_store () in
  let c1 = Hexa.Covp.of_triples Hexa.Covp.Covp1 fig1_triples in
  let c2 = Hexa.Covp.of_triples Hexa.Covp.Covp2 fig1_triples in
  [
    Hexa.Store_sig.box_hexastore h;
    Hexa.Store_sig.box_covp c1;
    Hexa.Store_sig.box_covp c2;
    Hexa.Store_sig.box_delta (make_delta_store ());
  ]

let get_iri store sol var =
  match Binding.get sol var with
  | Some (Binding.Id id) -> (
      match Dict.Term_dict.decode_term (Hexa.Store_sig.dict store) id with
      | Term.Iri iri -> iri
      | t -> Term.to_string t)
  | Some (Binding.Int n) -> string_of_int n
  | None -> "<unbound>"

let locals store sol vars =
  (* Strip the example namespace for readable assertions. *)
  List.map
    (fun v ->
      let s = get_iri store sol v in
      match String.rindex_opt s '/' with
      | Some i -> String.sub s (i + 1) (String.length s - i - 1)
      | None -> s)
    vars

(* ------------------------------------------------------------------ *)
(* Binding                                                             *)
(* ------------------------------------------------------------------ *)

let test_binding_basic () =
  let b = Binding.bind Binding.empty "x" (Binding.Id 1) in
  check_bool "mem" true (Binding.mem b "x");
  check_bool "get" true (Binding.get b "x" = Some (Binding.Id 1));
  check_bool "compatible same" true (Binding.compatible b "x" (Binding.Id 1));
  check_bool "compatible diff" false (Binding.compatible b "x" (Binding.Id 2));
  check_bool "compatible unbound" true (Binding.compatible b "y" (Binding.Id 9));
  (try
     ignore (Binding.bind b "x" (Binding.Id 2));
     Alcotest.fail "rebind accepted"
   with Invalid_argument _ -> ());
  (* Rebinding to the same value is a no-op, not an error. *)
  ignore (Binding.bind b "x" (Binding.Id 1));
  Alcotest.(check (list string)) "vars" [ "x" ] (Binding.vars b)

let test_binding_decode () =
  let d = Dict.Term_dict.create () in
  let id = Dict.Term_dict.encode_term d (Term.iri "http://x/a") in
  check_string "id decodes" "<http://x/a>" (Binding.value_to_string d (Binding.Id id));
  check_string "int decodes" "42" (Binding.value_to_string d (Binding.Int 42))

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)
(* ------------------------------------------------------------------ *)

let test_planner_orders_by_selectivity () =
  let store = boxed () in
  let tp_selective = Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "worksFor")) (Algebra.Term (ex "MIT")) in
  let tp_broad = Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "type")) (Algebra.Var "t") in
  (match Planner.order_bgp store [ tp_broad; tp_selective ] with
  | [ first; _ ] -> check_bool "selective first" true (first = tp_selective)
  | _ -> Alcotest.fail "wrong plan size");
  (* Estimates: worksFor/MIT matches 1 triple; type matches 4. *)
  check_int "estimate selective" 1 (Planner.estimate store tp_selective);
  check_int "estimate broad" 4 (Planner.estimate store tp_broad)

let test_planner_prefers_connected () =
  let store = boxed () in
  (* y-pattern is tiny but disconnected from x; planner must not produce a
     cross product when a connected pattern exists. *)
  let p1 = Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "type")) (Algebra.Term (ex "GradStudent")) in
  let p2 = Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "advisor")) (Algebra.Var "a") in
  let p3 = Algebra.tp (Algebra.Var "a") (Algebra.Term (ex "worksFor")) (Algebra.Var "u") in
  match Planner.order_bgp store [ p3; p1; p2 ] with
  | [ _; second; third ] ->
      (* After the seed, each following pattern shares a variable. *)
      let shares a b =
        List.exists (fun v -> List.mem v (Algebra.vars_of_tp a)) (Algebra.vars_of_tp b)
      in
      check_bool "chain is connected" true (shares second third)
  | _ -> Alcotest.fail "wrong plan size"

let test_planner_unknown_constant () =
  let store = boxed () in
  let tp = Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "noSuchProperty")) (Algebra.Var "o") in
  check_int "unknown constant is free" 0 (Planner.estimate store tp)

(* Per-step join strategies.  [?a worksFor ?u] seeds the plan (smallest
   estimate) streaming sorted on ?a through pso; [?s advisor ?a] then
   merge-joins on a Hexastore or delta view (both serve sorted scans)
   but degrades to a hash join on the COVP baselines, which cannot. *)
let test_planner_strategies () =
  let adv = Algebra.tp (Algebra.Var "s") (Algebra.Term (ex "advisor")) (Algebra.Var "a") in
  let works = Algebra.tp (Algebra.Var "a") (Algebra.Term (ex "worksFor")) (Algebra.Var "u") in
  let second_strategy store tps =
    match Planner.plan store tps with
    | [ first; second ] ->
        check_string
          (Hexa.Store_sig.name store ^ " first step")
          "scan"
          (Planner.strategy_name first.Planner.strategy);
        Planner.strategy_name second.Planner.strategy
    | _ -> Alcotest.fail "wrong plan size"
  in
  (match all_boxed () with
  | [ hexa; covp1; covp2; delta ] ->
      check_string "hexastore merges" "merge" (second_strategy hexa [ adv; works ]);
      check_string "covp1 hashes" "hash" (second_strategy covp1 [ adv; works ]);
      check_string "covp2 hashes" "hash" (second_strategy covp2 [ adv; works ]);
      check_string "delta merges" "merge" (second_strategy delta [ adv; works ])
  | _ -> Alcotest.fail "expected four stores");
  (* A disconnected pattern is a deliberate nested-loop product. *)
  let disco = Algebra.tp (Algebra.Var "z") (Algebra.Term (ex "type")) (Algebra.Var "w") in
  check_string "disconnected nests" "nested-loop" (second_strategy (boxed ()) [ adv; disco ]);
  (* The ablation switch forces every join back to nested loops. *)
  Planner.nested_loop_only := true;
  Fun.protect
    ~finally:(fun () -> Planner.nested_loop_only := false)
    (fun () ->
      check_string "ablation nests" "nested-loop" (second_strategy (boxed ()) [ adv; works ]))

(* ------------------------------------------------------------------ *)
(* Exec: BGPs                                                          *)
(* ------------------------------------------------------------------ *)

let test_exec_single_pattern () =
  List.iter
    (fun store ->
      let q = Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "type")) (Algebra.Term (ex "GradStudent")) ] in
      let sols = Exec.run store q in
      let names = List.sort compare (List.concat_map (fun s -> locals store s [ "x" ]) sols) in
      Alcotest.(check (list string))
        (Hexa.Store_sig.name store ^ " students")
        [ "ID3"; "ID4" ] names)
    (all_boxed ())

let test_exec_join () =
  (* Students and their advisors' employers: ?s advisor ?a . ?a worksFor ?u *)
  List.iter
    (fun store ->
      let q =
        Algebra.Bgp
          [
            Algebra.tp (Algebra.Var "s") (Algebra.Term (ex "advisor")) (Algebra.Var "a");
            Algebra.tp (Algebra.Var "a") (Algebra.Term (ex "worksFor")) (Algebra.Var "u");
          ]
      in
      let sols = Exec.run store q in
      check_int (Hexa.Store_sig.name store ^ " one advisor works") 1 (List.length sols);
      Alcotest.(check (list string)) "row" [ "ID3"; "ID2"; "MIT" ]
        (locals store (List.hd sols) [ "s"; "a"; "u" ]))
    (all_boxed ())

let test_exec_repeated_var () =
  (* ?x advisor ?x must be empty (nobody advises themselves). *)
  let store = boxed () in
  let q = Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "advisor")) (Algebra.Var "x") ] in
  check_int "no self-advisors" 0 (List.length (Exec.run store q))

let test_exec_figure1_query1 () =
  (* Figure 1(b) first query: properties relating ID2 to MIT. *)
  List.iter
    (fun store ->
      let q = Algebra.Bgp [ Algebra.tp (Algebra.Term (ex "ID2")) (Algebra.Var "property") (Algebra.Term (ex "MIT")) ] in
      let sols = Exec.run store q in
      Alcotest.(check (list string))
        (Hexa.Store_sig.name store ^ " ID2-MIT relation")
        [ "worksFor" ]
        (List.concat_map (fun s -> locals store s [ "property" ]) sols))
    (all_boxed ())

let test_exec_figure1_query2 () =
  (* Figure 1(b) second query: who relates to Stanford as ID1 does to Yale. *)
  List.iter
    (fun store ->
      let q =
        Algebra.Bgp
          [
            Algebra.tp (Algebra.Term (ex "ID1")) (Algebra.Var "property") (Algebra.Term (ex "Yale"));
            Algebra.tp (Algebra.Var "subj") (Algebra.Var "property") (Algebra.Term (ex "Stanford"));
          ]
      in
      let sols = Exec.run store q in
      (* ID1 phdFrom Yale; ID2 phdFrom Stanford. *)
      Alcotest.(check (list string))
        (Hexa.Store_sig.name store ^ " same relation")
        [ "ID2" ]
        (List.sort compare (List.concat_map (fun s -> locals store s [ "subj" ]) sols)))
    (all_boxed ())

let test_exec_unknown_term_empty () =
  let store = boxed () in
  let q = Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "nope")) (Algebra.Var "o") ] in
  check_int "unknown property" 0 (List.length (Exec.run store q))

(* Brute-force reference: evaluate a BGP by scanning all triples per
   pattern with backtracking over term-level matching. *)
let brute_force_bgp triples tps =
  let atom_matches binding atom term =
    match atom with
    | Algebra.Term t -> if Term.equal t term then Some binding else None
    | Algebra.Var v -> (
        match List.assoc_opt v binding with
        | Some t when Term.equal t term -> Some binding
        | Some _ -> None
        | None -> Some ((v, term) :: binding))
  in
  let rec solve binding = function
    | [] -> [ binding ]
    | (tp : Algebra.tp) :: rest ->
        List.concat_map
          (fun (tr : Triple.t) ->
            match atom_matches binding tp.s tr.s with
            | None -> []
            | Some b -> (
                match atom_matches b tp.p tr.p with
                | None -> []
                | Some b -> (
                    match atom_matches b tp.o tr.o with
                    | None -> []
                    | Some b -> solve b rest)))
          triples
  in
  solve [] tps

let canon_solutions store vars sols =
  List.sort compare (List.map (fun s -> locals store s vars) sols)

let canon_brute vars sols =
  List.sort compare
    (List.map
       (fun binding ->
         List.map
           (fun v ->
             match List.assoc_opt v binding with
             | Some (Term.Iri iri) -> (
                 match String.rindex_opt iri '/' with
                 | Some i -> String.sub iri (i + 1) (String.length iri - i - 1)
                 | None -> iri)
             | Some t -> Term.to_string t
             | None -> "<unbound>")
           vars)
       sols)

let gen_atom =
  QCheck.Gen.(
    frequency
      [
        (2, return (Algebra.Var "x"));
        (2, return (Algebra.Var "y"));
        (1, return (Algebra.Var "z"));
        (2, map (fun i -> Algebra.Term (ex (List.nth [ "ID1"; "ID2"; "ID3"; "MIT"; "Yale"; "AI" ] (i mod 6)))) (int_bound 5));
      ])

let gen_tp = QCheck.Gen.(map3 Algebra.tp gen_atom gen_atom gen_atom)

let prop_bgp_matches_brute_force =
  QCheck.Test.make ~name:"executor = brute force on random BGPs (4 stores, incl. delta)" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 1 3) gen_tp))
    (fun tps ->
      let vars = List.sort_uniq compare (List.concat_map Algebra.vars_of_tp tps) in
      let expected = canon_brute vars (brute_force_bgp fig1_triples tps) in
      List.for_all
        (fun store ->
          canon_solutions store vars (Exec.run store (Algebra.Bgp tps)) = expected)
        (all_boxed ()))

(* Join-strategy equivalence: whatever mix of merge-, hash- and
   nested-loop steps the planner picks must produce exactly the
   nested-loop-only results, on every store kind — the delta store keeps
   pending insert and delete buffers so its merged sorted scans get
   exercised too.  1-4 patterns over three variables gives plenty of
   multi-step plans where merge and hash steps actually fire. *)
let prop_join_strategy_equivalence =
  QCheck.Test.make
    ~name:"merge/hash join strategies = nested-loop on random BGPs (4 stores)" ~count:1000
    (QCheck.make QCheck.Gen.(list_size (int_range 1 4) gen_tp))
    (fun tps ->
      let vars = List.sort_uniq compare (List.concat_map Algebra.vars_of_tp tps) in
      let run store = canon_solutions store vars (Exec.run store (Algebra.Bgp tps)) in
      List.for_all
        (fun store ->
          let with_strategies = run store in
          Planner.nested_loop_only := true;
          let baseline =
            Fun.protect
              ~finally:(fun () -> Planner.nested_loop_only := false)
              (fun () -> run store)
          in
          with_strategies = baseline)
        (all_boxed ()))

(* ------------------------------------------------------------------ *)
(* Exec: operators                                                     *)
(* ------------------------------------------------------------------ *)

let test_exec_union_distinct () =
  let store = boxed () in
  let bgp o = Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Var "p") (Algebra.Term (ex o)) ] in
  let q = Algebra.Union (bgp "AI", bgp "AI") in
  check_int "union duplicates" 4 (List.length (Exec.run store q));
  let q = Algebra.Distinct (Algebra.Union (bgp "AI", bgp "AI")) in
  check_int "distinct collapses" 2 (List.length (Exec.run store q))

let test_exec_filter () =
  let store = boxed () in
  let q =
    Algebra.Filter
      ( Algebra.E_neq (Algebra.E_atom (Algebra.Var "x"), Algebra.E_atom (Algebra.Term (ex "ID3"))),
        Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "type")) (Algebra.Term (ex "GradStudent")) ] )
  in
  let sols = Exec.run store q in
  Alcotest.(check (list string)) "filtered" [ "ID4" ]
    (List.concat_map (fun s -> locals store s [ "x" ]) sols)

let test_exec_group_count () =
  let store = boxed () in
  (* Count triples per type object. *)
  let q =
    Algebra.Extend_group
      ( [ "t" ],
        [ ("n", Algebra.Count_all) ],
        Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "type")) (Algebra.Var "t") ] )
  in
  let sols = Exec.run store q in
  check_int "three types" 3 (List.length sols);
  let counts =
    List.sort compare
      (List.map
         (fun s ->
           ( List.hd (locals store s [ "t" ]),
             match Binding.get s "n" with Some (Binding.Int n) -> n | _ -> -1 ))
         sols)
  in
  Alcotest.(check (list (pair string int))) "counts"
    [ ("AssocProfessor", 1); ("FullProfessor", 1); ("GradStudent", 2) ]
    counts

let test_exec_group_empty_no_keys () =
  let store = boxed () in
  let q =
    Algebra.Extend_group
      ( [],
        [ ("n", Algebra.Count_all) ],
        Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "nope")) (Algebra.Var "o") ] )
  in
  match Exec.run store q with
  | [ sol ] -> check_bool "count 0" true (Binding.get sol "n" = Some (Binding.Int 0))
  | sols -> Alcotest.failf "expected one group, got %d" (List.length sols)

let test_exec_order_slice () =
  let store = boxed () in
  let q =
    Algebra.Slice
      ( Some 1,
        Some 2,
        Algebra.Order_by
          ( [ { Algebra.key = "x"; descending = false } ],
            Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "type")) (Algebra.Var "t") ] ) )
  in
  let sols = Exec.run store q in
  Alcotest.(check (list string)) "offset 1 limit 2" [ "ID2"; "ID3" ]
    (List.concat_map (fun s -> locals store s [ "x" ]) sols);
  let q_desc =
    Algebra.Order_by
      ( [ { Algebra.key = "x"; descending = true } ],
        Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "type")) (Algebra.Var "t") ] )
  in
  (match Exec.run store q_desc with
  | first :: _ -> Alcotest.(check (list string)) "desc first" [ "ID4" ] (locals store first [ "x" ])
  | [] -> Alcotest.fail "no solutions")

let test_exec_filter_error_semantics () =
  (* A filter referencing an unbound variable is an error → row dropped
     (SPARQL semantics), not a crash and not a pass. *)
  let store = boxed () in
  let q =
    Algebra.Filter
      ( Algebra.E_eq (Algebra.E_atom (Algebra.Var "nope"), Algebra.E_atom (Algebra.Var "x")),
        Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "type")) (Algebra.Var "t") ] )
  in
  check_int "all rows dropped" 0 (List.length (Exec.run store q));
  (* BOUND on the same variable is fine. *)
  let q2 =
    Algebra.Filter
      ( Algebra.E_not (Algebra.E_bound "nope"),
        Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "type")) (Algebra.Var "t") ] )
  in
  check_int "not bound passes" 4 (List.length (Exec.run store q2))

let test_exec_multi_key_order () =
  let store = boxed () in
  (* Order by type then subject: types tie-break on x. *)
  let q =
    Algebra.Order_by
      ( [ { Algebra.key = "t"; descending = false }; { Algebra.key = "x"; descending = true } ],
        Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "type")) (Algebra.Var "t") ] )
  in
  let rows = List.map (fun s -> locals store s [ "t"; "x" ]) (Exec.run store q) in
  Alcotest.(check (list (list string))) "two-key order"
    [
      [ "AssocProfessor"; "ID2" ];
      [ "FullProfessor"; "ID1" ];
      [ "GradStudent"; "ID4" ];
      [ "GradStudent"; "ID3" ];
    ]
    rows

let test_exec_ask () =
  let store = boxed () in
  let q = Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "worksFor")) (Algebra.Term (ex "MIT")) ] in
  check_bool "ask true" true (Exec.ask store q);
  let q2 = Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "worksFor")) (Algebra.Term (ex "Yale")) ] in
  check_bool "ask false" false (Exec.ask store q2)

(* ------------------------------------------------------------------ *)
(* SPARQL parser                                                       *)
(* ------------------------------------------------------------------ *)

let parse_ex q =
  let ns = Rdf.Namespace.create () in
  Rdf.Namespace.add ns ~prefix:"ex" ~iri:"http://example.org/";
  Sparql.parse ~namespaces:ns q

let test_sparql_select_basic () =
  let q = parse_ex "SELECT ?x WHERE { ?x ex:type ex:GradStudent . }" in
  check_bool "not ask" false q.is_ask;
  Alcotest.(check (list string)) "projection" [ "x" ] q.projection;
  let store = boxed () in
  let sols = Exec.run store q.algebra in
  check_int "two students" 2 (List.length sols)

let test_sparql_select_star () =
  let q = parse_ex "SELECT * WHERE { ?x ex:advisor ?a }" in
  Alcotest.(check (list string)) "star projection" [ "a"; "x" ] q.projection

let test_sparql_prologue_and_sugar () =
  let q =
    Sparql.parse
      {|PREFIX ex: <http://example.org/>
        SELECT ?t WHERE { ex:ID1 ex:type ?t ; ex:teacherOf ?c . }|}
  in
  let store = boxed () in
  let sols = Exec.run store q.algebra in
  Alcotest.(check (list string)) "prologue + semicolon" [ "FullProfessor" ]
    (List.concat_map (fun s -> locals store s [ "t" ]) sols);
  (* The [a] keyword must expand to rdf:type. *)
  match (Sparql.parse "SELECT ?x WHERE { ?x a ?t }").algebra with
  | Algebra.Project (_, Algebra.Bgp [ { p = Algebra.Term (Term.Iri iri); _ } ]) ->
      check_string "a = rdf:type" Rdf.Namespace.rdf_type iri
  | _ -> Alcotest.fail "unexpected algebra for 'a' pattern"

let test_sparql_union () =
  let q =
    parse_ex
      "SELECT ?x WHERE { { ?x ex:teacherOf ex:AI } UNION { ?x ex:teachingAssist ex:AI } }"
  in
  let store = boxed () in
  check_int "union arms" 2 (List.length (Exec.run store q.algebra))

let test_sparql_filter () =
  let q =
    parse_ex
      "SELECT ?x ?t WHERE { ?x ex:type ?t . FILTER (?t != ex:GradStudent) }"
  in
  let store = boxed () in
  check_int "professors only" 2 (List.length (Exec.run store q.algebra))

let test_sparql_count_group () =
  let q =
    parse_ex
      "SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x ex:type ?t } GROUP BY ?t ORDER BY DESC(?n) LIMIT 1"
  in
  let store = boxed () in
  match Exec.run store q.algebra with
  | [ sol ] ->
      Alcotest.(check (list string)) "top type" [ "GradStudent" ] (locals store sol [ "t" ]);
      check_bool "count 2" true (Binding.get sol "n" = Some (Binding.Int 2))
  | sols -> Alcotest.failf "expected 1 row, got %d" (List.length sols)

let test_sparql_count_distinct () =
  let q = parse_ex "SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?x ex:type ?t }" in
  let store = boxed () in
  match Exec.run store q.algebra with
  | [ sol ] -> check_bool "3 distinct types" true (Binding.get sol "n" = Some (Binding.Int 3))
  | _ -> Alcotest.fail "expected one row"

let test_sparql_optional () =
  (* All four people, with their advisor where one exists. *)
  let q =
    parse_ex
      "SELECT ?x ?a WHERE { ?x ex:type ?t . OPTIONAL { ?x ex:advisor ?a } } ORDER BY ?x"
  in
  let store = boxed () in
  let sols = Exec.run store q.algebra in
  check_int "all four kept" 4 (List.length sols);
  let bound_advisors = List.filter (fun s -> Binding.mem s "a") sols in
  check_int "two have advisors" 2 (List.length bound_advisors);
  (* ID3's advisor is ID2. *)
  let id3 = List.find (fun s -> locals store s [ "x" ] = [ "ID3" ]) sols in
  Alcotest.(check (list string)) "ID3 advisor" [ "ID2" ] (locals store id3 [ "a" ]);
  (* BOUND filters compose with OPTIONAL: people with NO advisor. *)
  let q2 =
    parse_ex
      "SELECT ?x WHERE { ?x ex:type ?t . OPTIONAL { ?x ex:advisor ?a } FILTER (!BOUND(?a)) }"
  in
  check_int "two professors lack advisors" 2 (List.length (Exec.run store q2.algebra))

let test_exec_left_join_direct () =
  let store = boxed () in
  let left = Algebra.Bgp [ Algebra.tp (Algebra.Var "x") (Algebra.Term (ex "teacherOf")) (Algebra.Var "c") ] in
  let right = Algebra.Bgp [ Algebra.tp (Algebra.Var "s") (Algebra.Term (ex "takesCourse")) (Algebra.Var "c") ] in
  let sols = Exec.run store (Algebra.Left_join (left, right)) in
  (* Two courses taught; only DataBases has a taker. *)
  check_int "both lefts kept" 2 (List.length sols);
  check_int "one extended" 1 (List.length (List.filter (fun s -> Binding.mem s "s") sols))

let test_sparql_ask () =
  let q = parse_ex "ASK { ex:ID2 ex:worksFor ex:MIT }" in
  check_bool "is_ask" true q.is_ask;
  check_bool "holds" true (Exec.ask (boxed ()) q.algebra)

let test_sparql_construct () =
  let store = boxed () in
  (* Derive an "employs" edge from worksFor, inverted. *)
  let q =
    parse_ex
      "CONSTRUCT { ?org ex:employs ?p } WHERE { ?p ex:worksFor ?org }"
  in
  check_bool "has template" true (q.template <> None);
  let triples = Exec.construct store ~template:(Option.get q.template) q.algebra in
  Alcotest.(check (list string)) "inverted edge"
    [ "<http://example.org/MIT> <http://example.org/employs> <http://example.org/ID2> ." ]
    (List.map Triple.to_string triples);
  (* Templates over unbound optionals drop the incomplete instantiations. *)
  let q2 =
    parse_ex
      "CONSTRUCT { ?x ex:advisedBy ?a } WHERE { ?x ex:type ?t . OPTIONAL { ?x ex:advisor ?a } }"
  in
  let triples2 = Exec.construct store ~template:(Option.get q2.template) q2.algebra in
  check_int "only bound advisors" 2 (List.length triples2);
  (* Duplicate instantiations collapse. *)
  let q3 = parse_ex "CONSTRUCT { ex:u ex:hasDegreeHolder ?x } WHERE { ?x ex:bachelorFrom ?u }" in
  let triples3 = Exec.construct store ~template:(Option.get q3.template) q3.algebra in
  check_int "deduplicated" 4 (List.length triples3);
  (* A template placing a literal in subject position drops the row. *)
  let lit_store =
    Hexa.Store_sig.box_hexastore
      (Hexa.Hexastore.of_triples
         [ Triple.make (ex "s") (ex "p") (Term.string_literal "v") ])
  in
  let q4 = parse_ex "CONSTRUCT { ?o ex:q ?x } WHERE { ?x ex:p ?o }" in
  let triples4 = Exec.construct lit_store ~template:(Option.get q4.template) q4.algebra in
  check_int "literal subjects skipped" 0 (List.length triples4)

let test_sparql_values () =
  let store = boxed () in
  (* Single-variable form restricts a pattern. *)
  let q =
    parse_ex
      "SELECT ?x ?t WHERE { VALUES ?x { ex:ID1 ex:ID3 } ?x ex:type ?t } ORDER BY ?x"
  in
  let rows = List.map (fun s -> locals store s [ "x"; "t" ]) (Exec.run store q.algebra) in
  Alcotest.(check (list (list string))) "values filter"
    [ [ "ID1"; "FullProfessor" ]; [ "ID3"; "GradStudent" ] ]
    rows;
  (* Multi-variable form with UNDEF. *)
  let q2 =
    parse_ex
      "SELECT ?x ?u WHERE { VALUES (?x ?u) { (ex:ID1 ex:Yale) (ex:ID2 UNDEF) } ?x ex:phdFrom ?u }"
  in
  let rows2 = List.map (fun s -> locals store s [ "x"; "u" ]) (Exec.run store q2.algebra) in
  Alcotest.(check (list (list string))) "multi var + UNDEF"
    [ [ "ID1"; "Yale" ]; [ "ID2"; "Stanford" ] ]
    (List.sort compare rows2);
  (* Rows over unknown terms drop out. *)
  let q3 = parse_ex "SELECT ?x WHERE { VALUES ?x { ex:Nobody ex:ID4 } ?x ex:type ?t }" in
  check_int "unknown row dropped" 1 (List.length (Exec.run store q3.algebra))

let test_sparql_errors () =
  let expect_error text =
    match parse_ex text with
    | exception Sparql.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" text
  in
  expect_error "SELECT WHERE { ?x ?p ?o }";           (* empty projection *)
  expect_error "SELECT ?x { ?x ?p ?o ";               (* unterminated group *)
  expect_error "SELECT ?x WHERE { ?x nope:x ?o }";    (* unbound prefix *)
  expect_error "FROB ?x WHERE { }";                   (* not a query form *)
  expect_error "SELECT ?x WHERE { ?x ?p ?o } GROUP ?x"; (* missing BY *)
  expect_error "SELECT ?x WHERE { ?x ?p ?o } LIMIT ?x"  (* bad limit *)

let test_sparql_error_line () =
  match parse_ex "SELECT ?x WHERE {\n ?x ?p\n}" with
  | exception Sparql.Parse_error (line, _) -> check_bool "line >= 2" true (line >= 2)
  | _ -> Alcotest.fail "no error"

(* ------------------------------------------------------------------ *)
(* Path                                                                *)
(* ------------------------------------------------------------------ *)

let test_path_follow () =
  let h = make_store () in
  let d = Hexa.Hexastore.dict h in
  let pid name = Option.get (Dict.Term_dict.find_term d (ex name)) in
  let id name = Option.get (Dict.Term_dict.find_term d (ex name)) in
  (* advisor/worksFor: ID3 -> ID2 -> MIT. *)
  let pairs = Path.follow h [ pid "advisor"; pid "worksFor" ] in
  Alcotest.(check (list (pair int int))) "two-hop" [ (id "ID3", id "MIT") ] pairs;
  (* advisor alone: two pairs. *)
  check_int "one-hop pairs" 2 (Path.count_pairs h [ pid "advisor" ]);
  check_int "empty path" 0 (Path.count_pairs h []);
  check_int "join steps" 1 (Path.join_steps [ pid "advisor"; pid "worksFor" ])

let test_path_follow_from () =
  let h = make_store () in
  let d = Hexa.Hexastore.dict h in
  let pid name = Option.get (Dict.Term_dict.find_term d (ex name)) in
  let id name = Option.get (Dict.Term_dict.find_term d (ex name)) in
  let reached = Path.follow_from h ~start:(id "ID4") [ pid "advisor"; pid "phdFrom" ] in
  Alcotest.(check (list int)) "ID4 -> ID1 -> Yale" [ id "Yale" ]
    (Vectors.Sorted_ivec.to_list reached);
  let nowhere = Path.follow_from h ~start:(id "MIT") [ pid "advisor" ] in
  check_int "dead end" 0 (Vectors.Sorted_ivec.length nowhere)

(* ------------------------------------------------------------------ *)
(* Star merge-join                                                     *)
(* ------------------------------------------------------------------ *)

let star_fixture () =
  let h = make_store () in
  let d = Hexa.Hexastore.dict h in
  let id name = Option.get (Dict.Term_dict.find_term d (ex name)) in
  (h, id)

let test_star_subjects_bound () =
  let h, id = star_fixture () in
  (* Grad students with an advisor: type=GradStudent ∧ has advisor. *)
  let got =
    Star.subjects h
      [ { Star.p = id "type"; o = Some (id "GradStudent") }; { Star.p = id "advisor"; o = None } ]
  in
  Alcotest.(check (list int)) "both grads" [ id "ID3"; id "ID4" ]
    (List.sort compare (Vectors.Sorted_ivec.to_list got));
  (* Adding a bound-object arm narrows it. *)
  let got =
    Star.subjects h
      [
        { Star.p = id "type"; o = Some (id "GradStudent") };
        { Star.p = id "advisor"; o = Some (id "ID2") };
      ]
  in
  Alcotest.(check (list int)) "only ID3" [ id "ID3" ] (Vectors.Sorted_ivec.to_list got)

let test_star_edge_cases () =
  let h, id = star_fixture () in
  check_int "empty constraints = all subjects" 4 (Star.count h []);
  check_int "unknown property" 0 (Star.count h [ { Star.p = -1; o = None } ]);
  check_int "unsatisfiable object" 0
    (Star.count h [ { Star.p = id "type"; o = Some (id "ID1") } ])

let test_star_of_bgp () =
  let h, _ = star_fixture () in
  let star_bgp =
    [
      Algebra.tp (Algebra.Var "s") (Algebra.Term (ex "type")) (Algebra.Term (ex "GradStudent"));
      Algebra.tp (Algebra.Var "s") (Algebra.Term (ex "advisor")) (Algebra.Var "a");
    ]
  in
  (match Star.of_bgp h star_bgp with
  | Some (v, constraints) ->
      check_string "subject var" "s" v;
      check_int "two constraints" 2 (List.length constraints)
  | None -> Alcotest.fail "star not recognised");
  (* Not stars: different subject vars; variable property; shared object var. *)
  let not_star_1 =
    [ Algebra.tp (Algebra.Var "a") (Algebra.Term (ex "type")) (Algebra.Var "t");
      Algebra.tp (Algebra.Var "b") (Algebra.Term (ex "type")) (Algebra.Var "u") ]
  in
  let not_star_2 = [ Algebra.tp (Algebra.Var "s") (Algebra.Var "p") (Algebra.Var "o") ] in
  let not_star_3 =
    [ Algebra.tp (Algebra.Var "s") (Algebra.Term (ex "teacherOf")) (Algebra.Var "x");
      Algebra.tp (Algebra.Var "s") (Algebra.Term (ex "teachingAssist")) (Algebra.Var "x") ]
  in
  check_bool "different subjects rejected" true (Star.of_bgp h not_star_1 = None);
  check_bool "variable property rejected" true (Star.of_bgp h not_star_2 = None);
  check_bool "shared object var rejected" true (Star.of_bgp h not_star_3 = None)

let prop_star_matches_exec =
  (* Random star BGPs: the merge-join result must equal the generic
     executor's distinct subject bindings. *)
  let gen_constraint =
    QCheck.Gen.(
      map2
        (fun p_idx o_choice ->
          let props = [ "type"; "advisor"; "bachelorFrom"; "teacherOf"; "mastersFrom" ] in
          let objs = [ "GradStudent"; "ID1"; "ID2"; "MIT"; "Yale"; "Stanford"; "AI" ] in
          let p = List.nth props (p_idx mod List.length props) in
          match o_choice mod 3 with
          | 0 -> (p, None)
          | n -> (p, Some (List.nth objs (n * o_choice mod List.length objs))))
        (int_bound 10) (int_bound 20))
  in
  QCheck.Test.make ~name:"star merge-join = generic executor on random stars" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 4) gen_constraint))
    (fun arms ->
      let h, id = star_fixture () in
      (* Distinct free-object variables per arm. *)
      let tps =
        List.mapi
          (fun i (p, o) ->
            let obj =
              match o with
              | Some name -> Algebra.Term (ex name)
              | None -> Algebra.Var (Printf.sprintf "o%d" i)
            in
            Algebra.tp (Algebra.Var "s") (Algebra.Term (ex p)) obj)
          arms
      in
      let constraints =
        List.map
          (fun (p, o) -> { Star.p = id p; o = Option.map (fun n -> id n) o })
          arms
      in
      let star = Vectors.Sorted_ivec.to_list (Star.subjects h constraints) in
      let exec =
        Exec.run (Hexa.Store_sig.box_hexastore h)
          (Algebra.Distinct (Algebra.Project ([ "s" ], Algebra.Bgp tps)))
        |> List.filter_map (fun sol ->
               match Binding.get sol "s" with Some (Binding.Id i) -> Some i | _ -> None)
        |> List.sort_uniq compare
      in
      star = exec)

(* ------------------------------------------------------------------ *)
(* Results                                                             *)
(* ------------------------------------------------------------------ *)

let test_results_table () =
  let store = boxed () in
  let q = parse_ex "SELECT ?x ?t WHERE { ?x ex:type ?t } ORDER BY ?x" in
  let sols = Exec.run store q.algebra in
  let table = Results.to_table (Hexa.Store_sig.dict store) ~columns:q.projection sols in
  check_int "rows" 4 (List.length table);
  check_int "cols" 2 (List.length (List.hd table));
  let csv = Results.to_csv (Hexa.Store_sig.dict store) ~columns:q.projection sols in
  check_int "csv lines" 5 (List.length (String.split_on_char '\n' (String.trim csv)));
  let rendered = Format.asprintf "@[<v>%a@]" (Results.pp (Hexa.Store_sig.dict store) ~columns:q.projection) sols in
  check_bool "row count footer" true
    (String.length rendered > 0
    && String.sub rendered (String.length rendered - 8) 8 = "(4 rows)")

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "query"
    [
      ( "binding",
        [
          Alcotest.test_case "basic" `Quick test_binding_basic;
          Alcotest.test_case "decode" `Quick test_binding_decode;
        ] );
      ( "planner",
        [
          Alcotest.test_case "selectivity" `Quick test_planner_orders_by_selectivity;
          Alcotest.test_case "connected" `Quick test_planner_prefers_connected;
          Alcotest.test_case "unknown_constant" `Quick test_planner_unknown_constant;
          Alcotest.test_case "strategies" `Quick test_planner_strategies;
        ] );
      ( "exec_bgp",
        [
          Alcotest.test_case "single_pattern" `Quick test_exec_single_pattern;
          Alcotest.test_case "join" `Quick test_exec_join;
          Alcotest.test_case "repeated_var" `Quick test_exec_repeated_var;
          Alcotest.test_case "figure1_query1" `Quick test_exec_figure1_query1;
          Alcotest.test_case "figure1_query2" `Quick test_exec_figure1_query2;
          Alcotest.test_case "unknown_term" `Quick test_exec_unknown_term_empty;
          qt prop_bgp_matches_brute_force;
          qt prop_join_strategy_equivalence;
        ] );
      ( "exec_ops",
        [
          Alcotest.test_case "union_distinct" `Quick test_exec_union_distinct;
          Alcotest.test_case "filter" `Quick test_exec_filter;
          Alcotest.test_case "group_count" `Quick test_exec_group_count;
          Alcotest.test_case "group_empty" `Quick test_exec_group_empty_no_keys;
          Alcotest.test_case "order_slice" `Quick test_exec_order_slice;
          Alcotest.test_case "left_join" `Quick test_exec_left_join_direct;
          Alcotest.test_case "filter_errors" `Quick test_exec_filter_error_semantics;
          Alcotest.test_case "multi_key_order" `Quick test_exec_multi_key_order;
          Alcotest.test_case "ask" `Quick test_exec_ask;
        ] );
      ( "sparql",
        [
          Alcotest.test_case "select_basic" `Quick test_sparql_select_basic;
          Alcotest.test_case "select_star" `Quick test_sparql_select_star;
          Alcotest.test_case "prologue_sugar" `Quick test_sparql_prologue_and_sugar;
          Alcotest.test_case "union" `Quick test_sparql_union;
          Alcotest.test_case "filter" `Quick test_sparql_filter;
          Alcotest.test_case "count_group" `Quick test_sparql_count_group;
          Alcotest.test_case "count_distinct" `Quick test_sparql_count_distinct;
          Alcotest.test_case "optional" `Quick test_sparql_optional;
          Alcotest.test_case "construct" `Quick test_sparql_construct;
          Alcotest.test_case "values" `Quick test_sparql_values;
          Alcotest.test_case "ask" `Quick test_sparql_ask;
          Alcotest.test_case "errors" `Quick test_sparql_errors;
          Alcotest.test_case "error_line" `Quick test_sparql_error_line;
        ] );
      ( "path",
        [
          Alcotest.test_case "follow" `Quick test_path_follow;
          Alcotest.test_case "follow_from" `Quick test_path_follow_from;
        ] );
      ( "star",
        [
          Alcotest.test_case "bound" `Quick test_star_subjects_bound;
          Alcotest.test_case "edge_cases" `Quick test_star_edge_cases;
          Alcotest.test_case "of_bgp" `Quick test_star_of_bgp;
          qt prop_star_matches_exec;
        ] );
      ("results", [ Alcotest.test_case "table" `Quick test_results_table ]);
    ]
