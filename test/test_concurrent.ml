(* Tests for the PR-8 concurrency layer: the [Query.Par] domain pool,
   range-split sorted scans, parallel ≡ sequential differential
   execution across all store kinds, multi-domain telemetry safety, the
   delta pin/flush protocol, and the writer-vs-readers stress runner. *)

open Rdf
module C = Check
module CC = Check.Concurrent

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Fixture: a denser random graph than fig1 so parallel range splits
   and multi-way joins have real work.  Nodes serve as both subjects
   and objects, so chained patterns join non-trivially. *)
(* ------------------------------------------------------------------ *)

let num_nodes = 10
let num_preds = 4
let node_term i = Term.iri (Printf.sprintf "http://example.org/n%d" i)
let pred_term i = Term.iri (Printf.sprintf "http://example.org/p%d" i)

let fixture_triples =
  let st = Random.State.make [| 0xbeef |] in
  List.init 60 (fun _ ->
      Triple.make
        (node_term (Random.State.int st num_nodes))
        (pred_term (Random.State.int st num_preds))
        (node_term (Random.State.int st num_nodes)))

let make_hexastore () = Hexa.Hexastore.of_triples fixture_triples

(* A delta whose merged view equals the fixture: two thirds flushed into
   the base, the rest pending in the insert buffer, plus a tombstoned
   decoy — so merged scans, splits and pins all have buffers to merge. *)
let make_delta () =
  let d = Hexa.Delta.create ~insert_threshold:100_000 ~delete_threshold:100_000 () in
  let decoy = Triple.make (node_term 0) (pred_term 0) (Term.iri "http://example.org/decoy") in
  let rec split i = function
    | [] -> ([], [])
    | t :: rest ->
        let base, pending = split (i + 1) rest in
        if i < 40 then (t :: base, pending) else (base, t :: pending)
  in
  let base, pending = split 0 fixture_triples in
  List.iter (fun t -> ignore (Hexa.Delta.add d t)) base;
  ignore (Hexa.Delta.add d decoy);
  Hexa.Delta.flush d;
  List.iter (fun t -> ignore (Hexa.Delta.add d t)) pending;
  ignore (Hexa.Delta.remove d decoy);
  assert (Hexa.Delta.pending_inserts d > 0 && Hexa.Delta.pending_deletes d > 0);
  d

let all_boxed () =
  [
    Hexa.Store_sig.box_hexastore (make_hexastore ());
    Hexa.Store_sig.box_covp (Hexa.Covp.of_triples Hexa.Covp.Covp1 fixture_triples);
    Hexa.Store_sig.box_covp (Hexa.Covp.of_triples Hexa.Covp.Covp2 fixture_triples);
    Hexa.Store_sig.box_delta (make_delta ());
  ]

(* ------------------------------------------------------------------ *)
(* Par pool                                                            *)
(* ------------------------------------------------------------------ *)

let test_par_run_order () =
  Query.Par.with_domains 4 (fun () ->
      let r = Query.Par.run (Array.init 32 (fun i () -> i * i)) in
      Alcotest.(check (array int)) "slot order" (Array.init 32 (fun i -> i * i)) r)

let test_par_exception () =
  Query.Par.with_domains 2 (fun () ->
      (match Query.Par.run [| (fun () -> 1); (fun () -> failwith "boom") |] with
      | exception Failure m -> check_string "exception surfaces" "boom" m
      | _ -> Alcotest.fail "expected the thunk's exception to re-raise");
      (* The pool survives a failed batch. *)
      let r = Query.Par.run (Array.init 8 (fun i () -> i + 1)) in
      check_int "pool usable after failure" 36 (Array.fold_left ( + ) 0 r))

let test_par_nested () =
  Query.Par.with_domains 2 (fun () ->
      let inner j = Array.fold_left ( + ) 0 (Query.Par.run (Array.init 5 (fun i () -> (10 * j) + i))) in
      let r = Query.Par.run (Array.init 4 (fun j () -> inner j)) in
      check_int "nested runs complete" (Array.fold_left ( + ) 0 (Array.init 4 inner)) (Array.fold_left ( + ) 0 r))

(* Pool-accounting hammer: four concurrent caller domains each drive 50
   batches of 16 thunks through [Par.run] at width 4, then the stats
   snapshot must balance exactly — every submitted task completed, the
   per-lane tallies sum to the total, and shutdown leaves nothing queued
   or in flight. *)
let test_par_stats_hammer () =
  Query.Par.shutdown ();
  Query.Par.reset_stats ();
  let callers = 4 and batches = 50 and batch = 16 in
  Query.Par.with_domains 4 (fun () ->
      let driver () =
        for _ = 1 to batches do
          let r = Query.Par.run (Array.init batch (fun i () -> i)) in
          assert (Array.length r = batch)
        done
      in
      let ds = List.init (callers - 1) (fun _ -> Domain.spawn driver) in
      driver ();
      List.iter Domain.join ds);
  Query.Par.shutdown ();
  let s = Query.Par.stats () in
  let total = callers * batches * batch in
  check_int "every task submitted" total s.Query.Par.submitted;
  check_int "every task completed" total s.Query.Par.completed;
  check_int "lane tallies sum to the total" total
    (Array.fold_left ( + ) 0 s.Query.Par.lane_tasks);
  check_int "queue drained at shutdown" 0 s.Query.Par.queue_depth;
  check_int "nothing in flight at shutdown" 0 s.Query.Par.in_flight;
  check_bool "spawned workers were joined" true (s.Query.Par.joined >= s.Query.Par.spawned)

(* End-to-end observability of one fanned query: the executor must emit
   a par.fanout event sized by the pool width, record one range span per
   achieved range — every one a child of the query's parallel span — and
   EXPLAIN --analyze must print the achieved fan-out next to the
   planner's par= hint. *)
let test_parallel_query_observability () =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    go 0
  in
  let saved_events = !Telemetry.Events.enabled in
  let saved_min = !Query.Planner.parallel_min_rows in
  Telemetry.Events.enabled := true;
  Query.Planner.parallel_min_rows := 0;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Events.enabled := saved_events;
      Query.Planner.parallel_min_rows := saved_min;
      Telemetry.Events.clear ();
      Telemetry.Trace.clear ())
    (fun () ->
      Telemetry.with_enabled true (fun () ->
          Telemetry.Events.clear ();
          Telemetry.Trace.clear ();
          Query.Par.with_domains 4 (fun () ->
              let store = Hexa.Store_sig.box_hexastore (make_hexastore ()) in
              let q =
                Query.Algebra.Bgp
                  [
                    Query.Algebra.tp (Query.Algebra.Var "s") (Query.Algebra.Var "p")
                      (Query.Algebra.Var "o");
                  ]
              in
              ignore (Query.Exec.run store q);
              let fanout =
                List.find_map
                  (fun (e : Telemetry.Events.event) ->
                    match e.kind with
                    | Telemetry.Events.Par_fanout { planned; achieved; width; _ } ->
                        Some (planned, achieved, width)
                    | _ -> None)
                  (Telemetry.Events.dump ())
              in
              let achieved =
                match fanout with
                | None -> Alcotest.fail "no par.fanout event emitted"
                | Some (planned, achieved, width) ->
                    check_int "pool width recorded" 4 width;
                    check_bool "achieved within the planned fan-out" true
                      (achieved >= 0 && achieved <= planned);
                    achieved
              in
              let spans = Telemetry.Trace.spans () in
              let par_span =
                List.find
                  (fun (s : Telemetry.Trace.span) -> s.name = "exec.bgp.parallel")
                  spans
              in
              let ranges =
                List.filter
                  (fun (s : Telemetry.Trace.span) -> s.name = "exec.bgp.par_range")
                  spans
              in
              check_int "one range span per achieved range" achieved (List.length ranges);
              List.iter
                (fun (r : Telemetry.Trace.span) ->
                  check_bool "range span parented to the parallel span" true
                    (r.parent = Some par_span.id);
                  check_int "range span one level under its parent" (par_span.depth + 1)
                    r.depth)
                ranges;
              let txt =
                Format.asprintf "%a" Query.Exec.pp_explain
                  (Query.Exec.explain ~analyze:true store q)
              in
              check_bool "EXPLAIN --analyze reports achieved fan-out" true
                (contains txt "achieved="))))

let test_with_domains_restores () =
  let before = Query.Par.domains () in
  Query.Par.with_domains 3 (fun () -> check_int "inside" 3 (Query.Par.domains ()));
  check_int "restored" before (Query.Par.domains ());
  (try Query.Par.with_domains 2 (fun () -> failwith "x") with Failure _ -> ());
  check_int "restored on raise" before (Query.Par.domains ())

(* ------------------------------------------------------------------ *)
(* Split-scan ≡ unsplit scan (satellite 3)                             *)
(* ------------------------------------------------------------------ *)

(* Interprets the generated case against one store's scan API: encode
   the bound terms through its dictionary, pick a free position, and
   demand that concatenating the k split ranges reproduces the unsplit
   cursor exactly — same serving ordering, same triples, same order. *)
let split_matches ~dict ~scan_sorted ~scan_split (mask, (si, pi, oi), posidx, parts) =
  let bound bit term = if mask land bit = bit then Some term else None in
  let enc = function
    | None -> None
    | Some t -> (
        match Dict.Term_dict.find_term dict t with
        | Some i -> Some i
        | None -> Some (-1) (* unknown constant: matches nothing *))
  in
  let pat =
    Hexa.Pattern.make
      ?s:(enc (bound 1 (node_term si)))
      ?p:(enc (bound 2 (pred_term pi)))
      ?o:(enc (bound 4 (node_term oi)))
      ()
  in
  let free =
    List.filter_map
      (fun (pos, bit) -> if mask land bit = 0 then Some pos else None)
      [ (Hexa.Pattern.Subj, 1); (Hexa.Pattern.Pred, 2); (Hexa.Pattern.Obj, 4) ]
  in
  let pos = List.nth free (posidx mod List.length free) in
  match scan_split pat pos ~parts with
  | None -> scan_sorted pat pos = None
  | Some (ord, ranges) -> (
      match scan_sorted pat pos with
      | None -> false
      | Some (ord', seek) ->
          ord = ord'
          && Array.length ranges >= 1
          && Array.length ranges <= parts
          && List.concat_map List.of_seq (Array.to_list ranges)
             = List.of_seq (seek min_int))

let split_store = lazy (make_hexastore ())
let split_delta = lazy (make_delta ())

let gen_split_case =
  QCheck.Gen.(
    map
      (fun (mask, ids, posidx, parts) -> (mask, ids, posidx, parts))
      (quad (int_bound 6) (* all shapes except fully bound *)
         (triple (int_bound (num_nodes - 1)) (int_bound (num_preds - 1)) (int_bound (num_nodes - 1)))
         (int_bound 2) (int_range 1 7)))

let prop_split_concat =
  QCheck.Test.make
    ~name:"k-way split scan = unsplit scan (hexastore + delta, all 0/1/2-bound shapes)"
    ~count:300
    (QCheck.make gen_split_case
       ~print:(fun (mask, (si, pi, oi), posidx, parts) ->
         Printf.sprintf "mask=%d s=n%d p=p%d o=n%d posidx=%d parts=%d" mask si pi oi posidx
           parts))
    (fun case ->
      let h = Lazy.force split_store in
      let d = Lazy.force split_delta in
      split_matches ~dict:(Hexa.Hexastore.dict h)
        ~scan_sorted:(Hexa.Hexastore.scan_sorted h)
        ~scan_split:(Hexa.Hexastore.scan_split h) case
      && split_matches ~dict:(Hexa.Delta.dict d)
           ~scan_sorted:(Hexa.Delta.scan_sorted d)
           ~scan_split:(Hexa.Delta.scan_split d) case)

(* ------------------------------------------------------------------ *)
(* Parallel ≡ sequential differential (tentpole)                       *)
(* ------------------------------------------------------------------ *)

let gen_atom =
  QCheck.Gen.(
    frequency
      [
        (2, return (Query.Algebra.Var "x"));
        (2, return (Query.Algebra.Var "y"));
        (1, return (Query.Algebra.Var "z"));
        (2, map (fun i -> Query.Algebra.Term (node_term i)) (int_bound (num_nodes - 1)));
        (1, map (fun i -> Query.Algebra.Term (pred_term i)) (int_bound (num_preds - 1)));
      ])

let gen_tp = QCheck.Gen.(map3 Query.Algebra.tp gen_atom gen_atom gen_atom)

(* 100 cases × 4 store kinds × widths {1, 2, 4} ≈ 1,200 parallel-vs-
   sequential runs, each also cross-checked against brute force. *)
let prop_parallel_equals_sequential =
  QCheck.Test.make
    ~name:"parallel = sequential on random BGPs (4 stores x widths 1/2/4)" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 3) gen_tp))
    (fun tps ->
      List.for_all
        (fun store ->
          List.for_all
            (fun d ->
              match CC.differential store tps ~domains:d with
              | [] -> true
              | vs ->
                  QCheck.Test.fail_reportf "%a" C.Violation.pp_report vs)
            [ 1; 2; 4 ])
        (all_boxed ()))

(* ------------------------------------------------------------------ *)
(* Multi-domain telemetry (satellite 1)                                *)
(* ------------------------------------------------------------------ *)

let test_multi_domain_telemetry () =
  let saved_events = !Telemetry.Events.enabled in
  Telemetry.Events.enabled := true;
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Events.enabled := saved_events;
      Telemetry.Events.set_capacity 1024;
      Telemetry.Events.clear ();
      Telemetry.Trace.clear ())
    (fun () ->
      Telemetry.with_enabled true (fun () ->
          Telemetry.Events.set_capacity 256 (* force overwrites *);
          Telemetry.Events.clear ();
          Telemetry.Trace.clear ();
          let c = Telemetry.Metrics.counter "test.concurrent.emitters" in
          let h = Telemetry.Metrics.histogram "test.concurrent.latency" in
          let base_count = Telemetry.Histogram.count h in
          let domains = 4 and per_domain = 500 in
          let emitter i () =
            for j = 1 to per_domain do
              Telemetry.Metrics.incr c;
              Telemetry.Metrics.observe h j;
              Telemetry.Events.emit
                (Telemetry.Events.Query_start { label = Printf.sprintf "d%d.%d" i j });
              Telemetry.Trace.with_span "test.concurrent.span" (fun () -> ())
            done
          in
          let ds = List.init domains (fun i -> Domain.spawn (emitter i)) in
          List.iter Domain.join ds;
          let total = domains * per_domain in
          check_int "counter counts every increment" total (Telemetry.Metrics.value c);
          check_int "histogram counts every observation" total
            (Telemetry.Histogram.count h - base_count);
          check_int "histogram sum is exact"
            (domains * (per_domain * (per_domain + 1) / 2))
            (Telemetry.Histogram.sum h);
          (* Ring accounting: every emission is recorded, and each one
             is either resident in the dump or counted as dropped — no
             event is silently lost. *)
          check_int "every emission recorded" total (Telemetry.Events.recorded ());
          let dump = Telemetry.Events.dump () in
          check_int "resident + dropped = emitted" total
            (List.length dump + Telemetry.Events.dropped ());
          let seqs = List.map (fun (e : Telemetry.Events.event) -> e.seq) dump in
          check_bool "dump seqs strictly increasing" true
            (List.for_all2 ( < ) seqs (List.tl seqs @ [ max_int ]));
          (* No torn events: every resident label is well-formed. *)
          List.iter
            (fun (e : Telemetry.Events.event) ->
              match e.kind with
              | Telemetry.Events.Query_start { label } ->
                  check_bool ("intact label " ^ label) true
                    (Scanf.sscanf_opt label "d%d.%d" (fun d j ->
                         d >= 0 && d < domains && j >= 1 && j <= per_domain)
                    = Some true)
              | _ -> Alcotest.fail "unexpected event kind in ring")
            dump;
          (* Spans: per-shard buffers are far larger than the load, so
             nothing drops and every span survives intact. *)
          let spans = Telemetry.Trace.spans () in
          check_int "all spans recorded" total (List.length spans);
          check_int "no spans dropped" 0 (Telemetry.Trace.dropped ());
          List.iter
            (fun (s : Telemetry.Trace.span) ->
              check_string "span name intact" "test.concurrent.span" s.name;
              check_bool "span depth sane" true (s.depth >= 0 && s.duration >= 0.))
            spans))

(* ------------------------------------------------------------------ *)
(* Delta pin / flush protocol                                          *)
(* ------------------------------------------------------------------ *)

let test_pin_isolates_snapshot () =
  let d = Hexa.Delta.create ~insert_threshold:1000 ~delete_threshold:1000 () in
  let t i = Triple.make (node_term i) (pred_term 0) (node_term (i + 1)) in
  ignore (Hexa.Delta.add d (t 0));
  ignore (Hexa.Delta.add d (t 1));
  Hexa.Delta.flush d;
  let view, unpin = Hexa.Delta.pin d in
  check_int "one pin held" 1 (Hexa.Delta.pins d);
  (* Staging is allowed under a pin; only base mutation must wait. *)
  ignore (Hexa.Delta.add d (t 2));
  ignore (Hexa.Delta.remove d (t 0));
  check_int "writer sees staged state" 2 (Hexa.Delta.size d);
  check_int "pinned view is isolated" 2 (Hexa.Delta.size view);
  check_bool "view still has the removed triple" true (Hexa.Delta.mem view (t 0));
  check_bool "view lacks the staged insert" false (Hexa.Delta.mem view (t 2));
  unpin ();
  unpin () (* idempotent *);
  check_int "pin released" 0 (Hexa.Delta.pins d);
  Hexa.Delta.flush d;
  check_int "flush drains after release" 0 (Hexa.Delta.pending_inserts d)

let test_pin_blocks_flush () =
  let d = Hexa.Delta.create ~insert_threshold:1000 ~delete_threshold:1000 () in
  let t i = Triple.make (node_term i) (pred_term 1) (node_term i) in
  ignore (Hexa.Delta.add d (t 0));
  Hexa.Delta.flush d;
  let _view, unpin = Hexa.Delta.pin d in
  ignore (Hexa.Delta.add d (t 1));
  let flushed = Atomic.make false in
  let flusher =
    Domain.spawn (fun () ->
        Hexa.Delta.flush d;
        Atomic.set flushed true)
  in
  Unix.sleepf 0.05;
  check_bool "flush waits while a pin is held" false (Atomic.get flushed);
  check_int "nothing drained yet" 1 (Hexa.Delta.pending_inserts d);
  unpin ();
  Domain.join flusher;
  check_bool "flush completes after release" true (Atomic.get flushed);
  check_int "drained" 0 (Hexa.Delta.pending_inserts d);
  check_int "base caught up" 2 (Hexa.Delta.size d)

(* ------------------------------------------------------------------ *)
(* Stress smoke (the @stress alias runs the CLI at 1/2/4 domains)      *)
(* ------------------------------------------------------------------ *)

let test_stress_smoke () =
  let r =
    CC.stress { CC.readers = 2; rounds = 3; ops_per_round = 40; domains = 2; seed = 7 }
  in
  (match r.CC.violations with
  | [] -> ()
  | vs -> Alcotest.failf "stress violations:@.%a" C.Violation.pp_report vs);
  check_int "ops applied" 120 r.CC.ops;
  check_int "one compaction (round 3)" 1 r.CC.compactions;
  check_bool "explicit flushes ran" true (r.CC.flushes >= 3);
  check_bool "readers actually queried" true (r.CC.queries > 0)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "concurrent"
    [
      ( "par",
        [
          Alcotest.test_case "run preserves slot order" `Quick test_par_run_order;
          Alcotest.test_case "exceptions re-raise, pool survives" `Quick test_par_exception;
          Alcotest.test_case "nested runs don't deadlock" `Quick test_par_nested;
          Alcotest.test_case "stats hammer balances exactly" `Quick test_par_stats_hammer;
          Alcotest.test_case "fanned query is fully observable" `Quick
            test_parallel_query_observability;
          Alcotest.test_case "with_domains restores" `Quick test_with_domains_restores;
        ] );
      ("split", [ qt prop_split_concat ]);
      ("differential", [ qt prop_parallel_equals_sequential ]);
      ( "telemetry",
        [ Alcotest.test_case "4-domain emitters, exact accounting" `Quick test_multi_domain_telemetry ] );
      ( "delta-pin",
        [
          Alcotest.test_case "pin isolates a snapshot" `Quick test_pin_isolates_snapshot;
          Alcotest.test_case "pin blocks flush until release" `Quick test_pin_blocks_flush;
        ] );
      ("stress", [ Alcotest.test_case "writer vs readers smoke" `Quick test_stress_smoke ]);
    ]
