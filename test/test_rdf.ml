(* Tests for the [rdf] library: terms, triples, namespaces, N-Triples and
   Turtle parsing, and the naive reference graph. *)

open Rdf

let term = Alcotest.testable Term.pp Term.equal
let triple_t = Alcotest.testable Triple.pp Triple.equal
let check_string = Alcotest.(check string)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Term                                                                *)
(* ------------------------------------------------------------------ *)

let test_term_constructors () =
  Alcotest.check term "iri" (Term.Iri "http://x/a") (Term.iri "http://x/a");
  Alcotest.check_raises "empty iri" (Invalid_argument "Term.iri: empty") (fun () ->
      ignore (Term.iri ""));
  (try
     ignore (Term.iri "http://x/a b");
     Alcotest.fail "iri with space accepted"
   with Invalid_argument _ -> ());
  ignore (Term.blank "b0");
  (try
     ignore (Term.blank "b 0");
     Alcotest.fail "blank with space accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Term.literal ~lang:"en" ~datatype:"http://x/dt" "v");
     Alcotest.fail "lang+datatype accepted"
   with Invalid_argument _ -> ())

let test_term_predicates () =
  check_bool "is_iri" true (Term.is_iri (Term.iri "http://x/a"));
  check_bool "is_blank" true (Term.is_blank (Term.blank "b"));
  check_bool "is_literal" true (Term.is_literal (Term.string_literal "v"));
  Alcotest.(check (option string)) "as_iri" (Some "http://x/a") (Term.as_iri (Term.iri "http://x/a"));
  Alcotest.(check (option string)) "as_iri lit" None (Term.as_iri (Term.string_literal "v"));
  Alcotest.(check (option string)) "literal_value" (Some "v")
    (Term.literal_value (Term.string_literal "v"))

let test_term_order () =
  let i = Term.iri "http://x/a" and b = Term.blank "b" and l = Term.string_literal "v" in
  check_bool "iri < blank" true (Term.compare i b < 0);
  check_bool "blank < literal" true (Term.compare b l < 0);
  check_bool "reflexive" true (Term.compare l l = 0);
  check_bool "lang distinguishes" false
    (Term.equal (Term.literal ~lang:"en" "v") (Term.literal ~lang:"fr" "v"));
  check_bool "datatype distinguishes" false
    (Term.equal (Term.typed_literal "1" ~datatype:"http://x/a") (Term.string_literal "1"))

let test_term_to_string () =
  check_string "iri" "<http://x/a>" (Term.to_string (Term.iri "http://x/a"));
  check_string "blank" "_:b0" (Term.to_string (Term.blank "b0"));
  check_string "plain" "\"v\"" (Term.to_string (Term.string_literal "v"));
  check_string "lang" "\"v\"@en" (Term.to_string (Term.literal ~lang:"en" "v"));
  check_string "typed" "\"1\"^^<http://www.w3.org/2001/XMLSchema#integer>"
    (Term.to_string (Term.int_literal 1));
  check_string "escapes" "\"a\\\"b\\\\c\\nd\""
    (Term.to_string (Term.string_literal "a\"b\\c\nd"))

(* ------------------------------------------------------------------ *)
(* Triple                                                              *)
(* ------------------------------------------------------------------ *)

let t_abc = Triple.make (Term.iri "http://x/s") (Term.iri "http://x/p") (Term.iri "http://x/o")

let test_triple_make () =
  Alcotest.check term "subject" (Term.iri "http://x/s") (Triple.subject t_abc);
  Alcotest.check term "predicate" (Term.iri "http://x/p") (Triple.predicate t_abc);
  Alcotest.check term "object" (Term.iri "http://x/o") (Triple.object_ t_abc);
  (try
     ignore (Triple.make (Term.string_literal "v") (Term.iri "http://x/p") (Term.iri "http://x/o"));
     Alcotest.fail "literal subject accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Triple.make (Term.iri "http://x/s") (Term.blank "b") (Term.iri "http://x/o"));
     Alcotest.fail "blank predicate accepted"
   with Invalid_argument _ -> ())

let test_triple_order () =
  let t2 = Triple.make (Term.iri "http://x/s") (Term.iri "http://x/p") (Term.iri "http://x/z") in
  check_bool "s-p-o order" true (Triple.compare t_abc t2 < 0);
  check_string "to_string" "<http://x/s> <http://x/p> <http://x/o> ." (Triple.to_string t_abc)

(* ------------------------------------------------------------------ *)
(* Namespace                                                           *)
(* ------------------------------------------------------------------ *)

let test_namespace () =
  let t = Namespace.default () in
  check_string "expand ub" (Namespace.ub "Course") (Namespace.expand t "ub:Course");
  check_string "expand rdf" Namespace.rdf_type (Namespace.expand t "rdf:type");
  Alcotest.(check (option string)) "shorten" (Some "ub:Course")
    (Namespace.shorten t (Namespace.ub "Course"));
  Alcotest.(check (option string)) "shorten misses" None (Namespace.shorten t "urn:xyz");
  Alcotest.check_raises "unbound" Not_found (fun () -> ignore (Namespace.expand t "nope:x"));
  Namespace.add t ~prefix:"ex" ~iri:"http://example.org/";
  check_string "added prefix" "http://example.org/a" (Namespace.expand t "ex:a");
  Namespace.add t ~prefix:"ex" ~iri:"http://other.org/";
  check_string "rebind replaces" "http://other.org/a" (Namespace.expand t "ex:a")

let test_namespace_longest_match () =
  let t = Namespace.create () in
  Namespace.add t ~prefix:"a" ~iri:"http://x/";
  Namespace.add t ~prefix:"b" ~iri:"http://x/deep/";
  Alcotest.(check (option string)) "longest wins" (Some "b:leaf")
    (Namespace.shorten t "http://x/deep/leaf")

(* ------------------------------------------------------------------ *)
(* N-Triples                                                           *)
(* ------------------------------------------------------------------ *)

let test_nt_parse_simple () =
  let got = Ntriples.parse_line "<http://x/s> <http://x/p> <http://x/o> ." in
  Alcotest.(check (option triple_t)) "iri triple" (Some t_abc) got;
  Alcotest.(check (option triple_t)) "comment" None (Ntriples.parse_line "# comment");
  Alcotest.(check (option triple_t)) "blank line" None (Ntriples.parse_line "   ")

let test_nt_parse_literals () =
  let got = Ntriples.parse_line {|<http://x/s> <http://x/p> "hello" .|} in
  Alcotest.(check (option triple_t)) "plain literal"
    (Some (Triple.make (Term.iri "http://x/s") (Term.iri "http://x/p") (Term.string_literal "hello")))
    got;
  let got = Ntriples.parse_line {|<http://x/s> <http://x/p> "bonjour"@fr .|} in
  Alcotest.(check (option triple_t)) "lang literal"
    (Some (Triple.make (Term.iri "http://x/s") (Term.iri "http://x/p") (Term.literal ~lang:"fr" "bonjour")))
    got;
  let got = Ntriples.parse_line {|<http://x/s> <http://x/p> "1"^^<http://www.w3.org/2001/XMLSchema#integer> .|} in
  Alcotest.(check (option triple_t)) "typed literal"
    (Some (Triple.make (Term.iri "http://x/s") (Term.iri "http://x/p") (Term.int_literal 1)))
    got

let test_nt_parse_blank () =
  let got = Ntriples.parse_line "_:b0 <http://x/p> _:b1 ." in
  Alcotest.(check (option triple_t)) "blank nodes"
    (Some (Triple.make (Term.blank "b0") (Term.iri "http://x/p") (Term.blank "b1")))
    got

let test_nt_escapes () =
  check_string "tab/newline" "a\tb\nc" (Ntriples.unescape {|a\tb\nc|});
  check_string "quote/backslash" "a\"b\\c" (Ntriples.unescape {|a\"b\\c|});
  check_string "u escape" "é" (Ntriples.unescape {|é|});
  check_string "U escape" "𝄞" (Ntriples.unescape {|\U0001D11E|});
  let got = Ntriples.parse_line {|<http://x/s> <http://x/p> "a\"b\nc" .|} in
  (match got with
  | Some t -> Alcotest.(check (option string)) "escaped literal" (Some "a\"b\nc")
      (Term.literal_value (Triple.object_ t))
  | None -> Alcotest.fail "no triple")

let test_nt_errors () =
  let expect_error text =
    match Ntriples.parse_line text with
    | exception Ntriples.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" text
  in
  expect_error "<http://x/s> <http://x/p> <http://x/o>";      (* missing dot *)
  expect_error "<http://x/s> <http://x/p> .";                 (* missing object *)
  expect_error {|<http://x/s> "lit" <http://x/o> .|};         (* literal predicate *)
  expect_error "<http://x/s <http://x/p> <http://x/o> .";     (* unterminated iri *)
  expect_error {|<http://x/s> <http://x/p> "unterminated .|};
  expect_error "<http://x/s> <http://x/p> <http://x/o> . extra";
  expect_error {|<http://x/s> <http://x/p> "bad\qescape" .|}

let test_nt_error_line_numbers () =
  let doc = "<http://x/s> <http://x/p> <http://x/o> .\nbroken line\n" in
  match Ntriples.parse_string doc with
  | exception Ntriples.Parse_error (line, _) -> check_int "line number" 2 line
  | _ -> Alcotest.fail "no error"

let test_nt_roundtrip_doc () =
  let doc =
    "# a comment\n\
     <http://x/s> <http://x/p> <http://x/o> .\n\
     \n\
     _:b <http://x/p> \"v\"@en . # trailing comment\n"
  in
  let triples = Ntriples.parse_string doc in
  check_int "two triples" 2 (List.length triples);
  let printed = Ntriples.print_string triples in
  let reparsed = Ntriples.parse_string printed in
  Alcotest.(check (list triple_t)) "roundtrip" triples reparsed

let test_nt_file_io () =
  let path = Filename.temp_file "hexastore_test" ".nt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let triples = [ t_abc; Triple.make (Term.blank "x") (Term.iri "http://x/p") (Term.string_literal "v") ] in
      Ntriples.save_file path triples;
      Alcotest.(check (list triple_t)) "file roundtrip" triples (Ntriples.load_file path))

(* Literal values drawn to stress the escaping path: every character the
   N-Triples grammar forces an escape for (quote, backslash, newline, CR,
   tab), plain printables, and raw multi-byte UTF-8 (passed through
   unescaped by the serializers). *)
let gen_literal_value =
  let open QCheck.Gen in
  let nasty =
    oneofl [ "\""; "\\"; "\n"; "\r"; "\t"; "\\n"; "a\"b\\c"; "é"; "𝄞"; "mixé\td"; "" ]
  in
  frequency
    [
      (3, string_size ~gen:printable (int_bound 12));
      (2, map (String.concat "") (list_size (int_bound 4) nasty));
      (1, return "tricky\"\\\n\tvalue");
    ]

(* Parsers lowercase language tags (BCP 47 tags are case-insensitive), so
   only lowercase spellings round-trip bit-for-bit. *)
let gen_lang = QCheck.Gen.oneofl [ "en"; "en-us"; "fr"; "de-ch"; "zh-hans"; "x-a-very-long-tag" ]

let gen_datatype =
  QCheck.Gen.oneofl
    [
      "http://www.w3.org/2001/XMLSchema#string";
      "http://www.w3.org/2001/XMLSchema#token";
      "http://example.org/dt#custom";
      "urn:example:datatype";
    ]

let gen_term =
  let open QCheck.Gen in
  let name = map (fun n -> Printf.sprintf "n%d" n) (int_bound 20) in
  frequency
    [
      (4, map (fun n -> Term.iri ("http://example.org/" ^ n)) name);
      (1, map Term.blank name);
      (3, map Term.string_literal gen_literal_value);
      (2, map2 (fun lang v -> Term.literal ~lang v) gen_lang gen_literal_value);
      (2, map2 (fun dt v -> Term.typed_literal v ~datatype:dt) gen_datatype gen_literal_value);
      (1, map Term.int_literal (int_bound 1000));
    ]

let gen_triple =
  QCheck.Gen.(
    map3 (fun s p o -> Triple.make s p o)
      (frequency [ (3, map (fun n -> Term.iri ("http://example.org/s" ^ string_of_int n)) (int_bound 20)); (1, map (fun n -> Term.blank ("b" ^ string_of_int n)) (int_bound 5)) ])
      (map (fun n -> Term.iri ("http://example.org/p" ^ string_of_int n)) (int_bound 10))
      gen_term)

(* Term-level round-trip: [Ntriples.parse_term] documents itself as the
   inverse of [Term.to_string]; hold it to that over the full generator,
   escapes, language tags and typed literals included. *)
let prop_term_roundtrip =
  QCheck.Test.make ~name:"parse_term (to_string t) = t" ~count:500
    (QCheck.make ~print:Term.to_string gen_term)
    (fun t ->
      match Ntriples.parse_term (Term.to_string t) with
      | t' -> Term.equal t t'
      | exception Ntriples.Parse_error (_, msg) ->
          QCheck.Test.fail_reportf "%S failed to reparse: %s" (Term.to_string t) msg)

let arbitrary_triples = QCheck.make ~print:(fun l -> Ntriples.print_string l) QCheck.Gen.(list_size (int_bound 30) gen_triple)

let prop_nt_roundtrip =
  QCheck.Test.make ~name:"ntriples print/parse roundtrip" ~count:300 arbitrary_triples
    (fun triples ->
      let printed = Ntriples.print_string triples in
      let reparsed = Ntriples.parse_string printed in
      List.length reparsed = List.length triples
      && List.for_all2 Triple.equal triples reparsed)

(* ------------------------------------------------------------------ *)
(* Turtle                                                              *)
(* ------------------------------------------------------------------ *)

let test_turtle_basic () =
  let doc =
    {|@prefix ex: <http://example.org/> .
      ex:alice ex:knows ex:bob .
      ex:bob a ex:Person .|}
  in
  let triples = Turtle.parse_string doc in
  check_int "two triples" 2 (List.length triples);
  Alcotest.check triple_t "expansion"
    (Triple.make (Term.iri "http://example.org/alice") (Term.iri "http://example.org/knows")
       (Term.iri "http://example.org/bob"))
    (List.nth triples 0);
  Alcotest.check triple_t "a = rdf:type"
    (Triple.make (Term.iri "http://example.org/bob") (Term.iri Namespace.rdf_type)
       (Term.iri "http://example.org/Person"))
    (List.nth triples 1)

let test_turtle_lists () =
  let doc =
    {|@prefix ex: <http://example.org/> .
      ex:a ex:p ex:o1 , ex:o2 ;
           ex:q "v"@en ;
           ex:r 42 .|}
  in
  let triples = Turtle.parse_string doc in
  check_int "four triples" 4 (List.length triples);
  let objs =
    List.filter_map
      (fun (t : Triple.t) ->
        if Term.equal t.p (Term.iri "http://example.org/p") then Some t.o else None)
      triples
  in
  check_int "object list" 2 (List.length objs);
  let r =
    List.find (fun (t : Triple.t) -> Term.equal t.p (Term.iri "http://example.org/r")) triples
  in
  Alcotest.check term "integer literal" (Term.int_literal 42) r.o

let test_turtle_base_and_sparql_prefix () =
  let doc =
    {|BASE <http://example.org/>
      PREFIX ex: <http://example.org/ns#>
      <alice> ex:age 30 .|}
  in
  let triples = Turtle.parse_string doc in
  check_int "one triple" 1 (List.length triples);
  Alcotest.check term "base applied" (Term.iri "http://example.org/alice")
    (Triple.subject (List.hd triples))

let test_turtle_literals () =
  let doc =
    {|@prefix ex: <http://example.org/> .
      @prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
      ex:a ex:s "plain" ; ex:t "typed"^^xsd:string ; ex:d 3.14 ; ex:b true .|}
  in
  let triples = Turtle.parse_string doc in
  check_int "four" 4 (List.length triples);
  let find p = (List.find (fun (t : Triple.t) -> Term.equal t.p (Term.iri ("http://example.org/" ^ p))) triples).o in
  Alcotest.check term "plain" (Term.string_literal "plain") (find "s");
  Alcotest.check term "typed" (Term.typed_literal "typed" ~datatype:(Namespace.xsd "string")) (find "t");
  Alcotest.check term "decimal" (Term.typed_literal "3.14" ~datatype:(Namespace.xsd "decimal")) (find "d");
  Alcotest.check term "boolean" (Term.typed_literal "true" ~datatype:(Namespace.xsd "boolean")) (find "b")

let test_turtle_errors () =
  let expect_error doc =
    match Turtle.parse_string doc with
    | exception Turtle.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" doc
  in
  expect_error "ex:a ex:p ex:o .";                       (* unbound prefix *)
  expect_error "@prefix ex: <http://x/> . ex:a ex:p .";  (* missing object *)
  expect_error "@prefix ex: <http://x/> . ex:a ex:p ex:o"; (* missing dot *)
  expect_error "@prefix ex <http://x/> .";               (* malformed directive *)
  expect_error {|@prefix ex: <http://x/> . ex:a ex:p "v|}

let test_turtle_error_line () =
  let doc = "@prefix ex: <http://x/> .\n\nex:a ex:p\n" in
  match Turtle.parse_string doc with
  | exception Turtle.Parse_error (line, _) -> check_bool "line >= 3" true (line >= 3)
  | _ -> Alcotest.fail "no error"

let test_turtle_unsupported_constructs () =
  (* Collections and anonymous blank nodes are documented as out of
     scope: they must fail loudly, not parse wrongly. *)
  let expect_error doc =
    match Turtle.parse_string doc with
    | exception Turtle.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted unsupported construct %S" doc
  in
  expect_error "@prefix ex: <http://x/> . ex:a ex:p [ ex:q ex:o ] .";
  expect_error "@prefix ex: <http://x/> . ex:a ex:p ( ex:b ex:c ) ."

let test_ntriples_parse_term () =
  Alcotest.check term "iri" (Term.iri "http://x/a") (Ntriples.parse_term "<http://x/a>");
  Alcotest.check term "blank" (Term.blank "b0") (Ntriples.parse_term "_:b0");
  Alcotest.check term "plain" (Term.string_literal "v") (Ntriples.parse_term "\"v\"");
  Alcotest.check term "lang" (Term.literal ~lang:"en" "v") (Ntriples.parse_term "\"v\"@en");
  Alcotest.check term "typed" (Term.int_literal 7)
    (Ntriples.parse_term "\"7\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  List.iter
    (fun bad ->
      match Ntriples.parse_term bad with
      | exception Ntriples.Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted %S" bad)
    [ ""; "<http://x/a> extra"; "plainword"; "\"unterminated" ]

let test_turtle_serialize_roundtrip () =
  let ns = Namespace.create () in
  Namespace.add ns ~prefix:"ex" ~iri:"http://example.org/";
  let triples =
    [
      Triple.make (Term.iri "http://example.org/a") (Term.iri "http://example.org/p")
        (Term.iri "http://example.org/o1");
      Triple.make (Term.iri "http://example.org/a") (Term.iri "http://example.org/p")
        (Term.iri "http://example.org/o2");
      Triple.make (Term.iri "http://example.org/a") (Term.iri Namespace.rdf_type)
        (Term.iri "http://example.org/T");
      Triple.make (Term.iri "http://example.org/b") (Term.iri "http://example.org/q")
        (Term.literal ~lang:"en" "v");
    ]
  in
  let doc = Turtle.to_string ~namespaces:ns triples in
  let reparsed = Turtle.parse_string doc in
  Alcotest.(check (list triple_t)) "roundtrip (sorted)"
    (List.sort Triple.compare triples)
    (List.sort Triple.compare reparsed)

let test_turtle_large_export () =
  (* The serializer must handle big graphs without deep recursion: 50k
     triples across 10k subjects, then reparse and compare. *)
  let triples =
    List.init 50_000 (fun i ->
        Triple.make
          (Term.iri (Printf.sprintf "http://x/s%d" (i mod 10_000)))
          (Term.iri (Printf.sprintf "http://x/p%d" (i mod 7)))
          (Term.iri (Printf.sprintf "http://x/o%d" i)))
  in
  let doc = Turtle.to_string triples in
  let reparsed = Turtle.parse_string doc in
  check_int "all triples survive" (List.length triples) (List.length reparsed);
  check_bool "same set" true
    (Triple.Set.equal (Triple.Set.of_list triples) (Triple.Set.of_list reparsed))

let prop_turtle_roundtrip =
  QCheck.Test.make ~name:"turtle serialize/parse roundtrip" ~count:200 arbitrary_triples
    (fun triples ->
      let doc = Turtle.to_string triples in
      let reparsed = Turtle.parse_string doc in
      Triple.Set.equal (Triple.Set.of_list triples) (Triple.Set.of_list reparsed))

(* ------------------------------------------------------------------ *)
(* Graph                                                               *)
(* ------------------------------------------------------------------ *)

let mk s p o =
  Triple.make (Term.iri ("http://x/" ^ s)) (Term.iri ("http://x/" ^ p)) (Term.iri ("http://x/" ^ o))

let test_graph_basic () =
  let g = Graph.create () in
  check_bool "add new" true (Graph.add g (mk "s" "p" "o"));
  check_bool "add dup" false (Graph.add g (mk "s" "p" "o"));
  check_int "size" 1 (Graph.size g);
  check_bool "mem" true (Graph.mem g (mk "s" "p" "o"));
  check_bool "remove" true (Graph.remove g (mk "s" "p" "o"));
  check_bool "remove absent" false (Graph.remove g (mk "s" "p" "o"));
  check_int "empty again" 0 (Graph.size g)

let test_graph_patterns () =
  let g = Graph.of_triples [ mk "s1" "p1" "o1"; mk "s1" "p2" "o2"; mk "s2" "p1" "o1" ] in
  let pat_s1 = Graph.pattern ~s:(Term.iri "http://x/s1") () in
  check_int "s bound" 2 (Graph.count g pat_s1);
  let pat_po = Graph.pattern ~p:(Term.iri "http://x/p1") ~o:(Term.iri "http://x/o1") () in
  check_int "p,o bound" 2 (Graph.count g pat_po);
  check_int "wildcard" 3 (Graph.count g Graph.wildcard);
  check_int "no match" 0 (Graph.count g (Graph.pattern ~s:(Term.iri "http://x/zz") ()))

let test_graph_projections () =
  let g = Graph.of_triples [ mk "s1" "p1" "o1"; mk "s2" "p1" "o2" ] in
  check_int "subjects" 2 (Term.Set.cardinal (Graph.subjects g));
  check_int "predicates" 1 (Term.Set.cardinal (Graph.predicates g));
  check_int "objects" 2 (Term.Set.cardinal (Graph.objects g));
  let g2 = Graph.of_triples [ mk "s1" "p1" "o1"; mk "s9" "p9" "o9" ] in
  check_int "union" 3 (Graph.size (Graph.union g g2));
  check_bool "equal no" false (Graph.equal g g2);
  check_bool "equal yes" true (Graph.equal g (Graph.of_triples (Graph.to_list g)))

let prop_ntriples_fuzz =
  (* Arbitrary lines must either parse or raise Parse_error — nothing
     else (no assertion failures, no Invalid_argument escapes). *)
  QCheck.Test.make ~name:"ntriples parser never crashes on junk" ~count:500
    (QCheck.make QCheck.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 80)))
    (fun line ->
      match Ntriples.parse_line line with
      | Some _ | None -> true
      | exception Ntriples.Parse_error _ -> true)

let prop_turtle_fuzz =
  QCheck.Test.make ~name:"turtle parser never crashes on junk" ~count:500
    (QCheck.make QCheck.Gen.(string_size ~gen:printable (int_bound 120)))
    (fun doc ->
      match Turtle.parse_string doc with
      | _ -> true
      | exception Turtle.Parse_error _ -> true
      | exception Ntriples.Parse_error _ -> true)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "rdf"
    [
      ( "term",
        [
          Alcotest.test_case "constructors" `Quick test_term_constructors;
          Alcotest.test_case "predicates" `Quick test_term_predicates;
          Alcotest.test_case "order" `Quick test_term_order;
          Alcotest.test_case "to_string" `Quick test_term_to_string;
        ] );
      ( "triple",
        [
          Alcotest.test_case "make" `Quick test_triple_make;
          Alcotest.test_case "order" `Quick test_triple_order;
        ] );
      ( "namespace",
        [
          Alcotest.test_case "expand_shorten" `Quick test_namespace;
          Alcotest.test_case "longest_match" `Quick test_namespace_longest_match;
        ] );
      ( "ntriples",
        [
          Alcotest.test_case "simple" `Quick test_nt_parse_simple;
          Alcotest.test_case "literals" `Quick test_nt_parse_literals;
          Alcotest.test_case "blank" `Quick test_nt_parse_blank;
          Alcotest.test_case "escapes" `Quick test_nt_escapes;
          Alcotest.test_case "errors" `Quick test_nt_errors;
          Alcotest.test_case "error_lines" `Quick test_nt_error_line_numbers;
          Alcotest.test_case "doc_roundtrip" `Quick test_nt_roundtrip_doc;
          Alcotest.test_case "file_io" `Quick test_nt_file_io;
          Alcotest.test_case "parse_term" `Quick test_ntriples_parse_term;
          qt prop_term_roundtrip;
          qt prop_nt_roundtrip;
          qt prop_ntriples_fuzz;
        ] );
      ( "turtle",
        [
          Alcotest.test_case "basic" `Quick test_turtle_basic;
          Alcotest.test_case "lists" `Quick test_turtle_lists;
          Alcotest.test_case "base_sparql_prefix" `Quick test_turtle_base_and_sparql_prefix;
          Alcotest.test_case "literals" `Quick test_turtle_literals;
          Alcotest.test_case "errors" `Quick test_turtle_errors;
          Alcotest.test_case "error_line" `Quick test_turtle_error_line;
          Alcotest.test_case "unsupported" `Quick test_turtle_unsupported_constructs;
          Alcotest.test_case "serialize_roundtrip" `Quick test_turtle_serialize_roundtrip;
          Alcotest.test_case "large_export" `Slow test_turtle_large_export;
          qt prop_turtle_roundtrip;
          qt prop_turtle_fuzz;
        ] );
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "patterns" `Quick test_graph_patterns;
          Alcotest.test_case "projections" `Quick test_graph_projections;
        ] );
    ]
