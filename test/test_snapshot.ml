(* Tests for binary snapshots: roundtrips, id stability, corruption
   detection (failure injection on truncation and bit flips), and format
   edge cases. *)

open Hexa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type id3 = Hexastore.id_triple = { s : int; p : int; o : int }

let t3 s p o = { s; p; o }

let with_tmp f =
  let path = Filename.temp_file "hexa_snapshot" ".snap" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let sample_store () =
  let open Rdf in
  let triples =
    [
      Triple.make (Term.iri "http://x/s1") (Term.iri "http://x/p1") (Term.iri "http://x/o1");
      Triple.make (Term.iri "http://x/s1") (Term.iri "http://x/p1") (Term.string_literal "plain lit");
      Triple.make (Term.iri "http://x/s1") (Term.iri "http://x/p2") (Term.literal ~lang:"fr" "été");
      Triple.make (Term.blank "b0") (Term.iri "http://x/p2") (Term.int_literal 42);
      Triple.make (Term.iri "http://x/s2") (Term.iri "http://x/p1")
        (Term.string_literal "tricky\"\\\n\tvalue");
    ]
  in
  Hexastore.of_triples triples

let same_contents a b =
  List.of_seq (Hexastore.lookup a Pattern.wildcard)
  = List.of_seq (Hexastore.lookup b Pattern.wildcard)

let test_roundtrip_basic () =
  with_tmp (fun path ->
      let h = sample_store () in
      Snapshot.save h path;
      let h' = Snapshot.load path in
      check_int "size" (Hexastore.size h) (Hexastore.size h');
      check_bool "identical triples (same ids)" true (same_contents h h');
      Hexastore.check_invariant h';
      (* Dictionary ids are positionally identical. *)
      check_int "dict size" (Dict.Term_dict.size (Hexastore.dict h))
        (Dict.Term_dict.size (Hexastore.dict h'));
      for id = 0 to Dict.Term_dict.size (Hexastore.dict h) - 1 do
        check_bool "term preserved" true
          (Rdf.Term.equal
             (Dict.Term_dict.decode_term (Hexastore.dict h) id)
             (Dict.Term_dict.decode_term (Hexastore.dict h') id))
      done)

let test_roundtrip_empty () =
  with_tmp (fun path ->
      let h = Hexastore.create () in
      Snapshot.save h path;
      let h' = Snapshot.load path in
      check_int "empty" 0 (Hexastore.size h'))

let test_roundtrip_dict_only_terms () =
  (* Terms interned but not used by any surviving triple keep their ids. *)
  with_tmp (fun path ->
      let h = Hexastore.create () in
      let d = Hexastore.dict h in
      let ghost = Dict.Term_dict.encode_term d (Rdf.Term.iri "http://x/ghost") in
      ignore
        (Hexastore.add h
           (Rdf.Triple.make (Rdf.Term.iri "http://x/s") (Rdf.Term.iri "http://x/p")
              (Rdf.Term.iri "http://x/o")));
      Snapshot.save h path;
      let h' = Snapshot.load path in
      check_bool "ghost term id preserved" true
        (Rdf.Term.equal
           (Dict.Term_dict.decode_term (Hexastore.dict h') ghost)
           (Rdf.Term.iri "http://x/ghost")))

let test_corruption_bad_magic () =
  with_tmp (fun path ->
      let oc = open_out_bin path in
      output_string oc "NOTASNAP-and-more-bytes";
      close_out oc;
      match Snapshot.load path with
      | exception Snapshot.Corrupt _ -> ()
      | _ -> Alcotest.fail "bad magic accepted")

let magic_probe = "HEXSNAP1"

let test_corruption_truncation () =
  with_tmp (fun path ->
      let h = sample_store () in
      Snapshot.save h path;
      let full = In_channel.with_open_bin path In_channel.input_all in
      (* Truncate at several points; every prefix must be rejected. *)
      List.iter
        (fun keep ->
          let oc = open_out_bin path in
          output_string oc (String.sub full 0 keep);
          close_out oc;
          match Snapshot.load path with
          | exception Snapshot.Corrupt _ -> ()
          | _ -> Alcotest.failf "truncation to %d bytes accepted" keep)
        [ 4; String.length magic_probe; String.length full / 2; String.length full - 1 ])

let test_corruption_bitflip () =
  with_tmp (fun path ->
      let h = sample_store () in
      Snapshot.save h path;
      let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
      (* Flip a byte in the middle of the payload: checksum must catch it
         (or decoding fails structurally — either way, Corrupt). *)
      let pos = Bytes.length full / 2 in
      Bytes.set full pos (Char.chr (Char.code (Bytes.get full pos) lxor 0x5a));
      let oc = open_out_bin path in
      output_bytes oc full;
      close_out oc;
      match Snapshot.load path with
      | exception Snapshot.Corrupt _ -> ()
      | _ -> Alcotest.fail "bit flip accepted")

let test_corruption_trailing_garbage () =
  with_tmp (fun path ->
      let h = sample_store () in
      Snapshot.save h path;
      let oc = open_out_gen [ Open_append; Open_binary ] 0o644 path in
      output_string oc "extra";
      close_out oc;
      match Snapshot.load path with
      | exception Snapshot.Corrupt _ -> ()
      | _ -> Alcotest.fail "trailing garbage accepted")

let gen_triple = QCheck.Gen.(map3 t3 (int_bound 20) (int_bound 8) (int_bound 25))

let prop_roundtrip =
  QCheck.Test.make ~name:"snapshot roundtrip over random stores" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_bound 150) gen_triple))
    (fun triples ->
      (* Give ids real term spellings by going through a dictionary. *)
      let h = Hexastore.create () in
      let d = Hexastore.dict h in
      List.iter
        (fun (tr : id3) ->
          let term k n = Rdf.Term.iri (Printf.sprintf "http://x/%c%d" k n) in
          ignore
            (Hexastore.add h
               (Rdf.Triple.make (term 's' tr.s) (term 'p' tr.p) (term 'o' tr.o))))
        triples;
      ignore d;
      with_tmp (fun path ->
          Snapshot.save h path;
          let h' = Snapshot.load path in
          Hexastore.size h = Hexastore.size h' && same_contents h h'))

let test_channel_api () =
  let h = sample_store () in
  let buf_path = Filename.temp_file "hexa_chan" ".snap" in
  Fun.protect
    ~finally:(fun () -> Sys.remove buf_path)
    (fun () ->
      let oc = open_out_bin buf_path in
      Snapshot.save_channel h oc;
      close_out oc;
      let ic = open_in_bin buf_path in
      let h' = Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> Snapshot.load_channel ic) in
      check_bool "channel roundtrip" true (same_contents h h'))

let prop_fuzz_never_crashes =
  (* Arbitrary bytes (with a valid magic prefix half the time) must be
     rejected with Corrupt — never a crash, never a bogus store. *)
  QCheck.Test.make ~name:"loader rejects arbitrary bytes with Corrupt" ~count:300
    (QCheck.make
       QCheck.Gen.(pair bool (string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 200)))
    )
    (fun (with_magic, junk) ->
      let data = if with_magic then "HEXSNAP1" ^ junk else junk in
      with_tmp (fun path ->
          let oc = open_out_bin path in
          output_string oc data;
          close_out oc;
          match Snapshot.load path with
          | exception Snapshot.Corrupt _ -> true
          | exception Invalid_argument _ -> false  (* would be a real bug *)
          | _h ->
              (* Astronomically unlikely: junk that checksums correctly.
                 Accept only if it decodes to an empty store. *)
              false))

(* --- delta-aware snapshots --------------------------------------------- *)

let file_contents path = In_channel.with_open_bin path In_channel.input_all

(* [save_delta] flushes pending work before writing, so a store saved
   mid-delta round-trips to the fully merged view, and an immediate
   re-save is byte-identical (nothing left to flush). *)
let test_delta_flush_on_save () =
  with_tmp (fun path ->
      let dl = Delta.of_base ~insert_threshold:1000 ~delete_threshold:1000 (sample_store ()) in
      let open Rdf in
      check_bool "buffered insert" true
        (Delta.add dl
           (Triple.make (Term.iri "http://x/s9") (Term.iri "http://x/p1") (Term.iri "http://x/o9")));
      check_bool "buffered delete" true
        (Delta.remove dl
           (Triple.make (Term.iri "http://x/s1") (Term.iri "http://x/p1") (Term.iri "http://x/o1")));
      check_bool "non-empty insert buffer" true (Delta.pending_inserts dl > 0);
      check_bool "non-empty delete set" true (Delta.pending_deletes dl > 0);
      let merged_before = List.of_seq (Delta.lookup dl Pattern.wildcard) in
      Snapshot.save_delta dl path;
      (* Saving drained the buffers into the base... *)
      check_int "nothing pending after save" 0
        (Delta.pending_inserts dl + Delta.pending_deletes dl);
      (* ...and the file holds exactly the merged view. *)
      let h' = Snapshot.load path in
      check_int "size" 5 (Hexastore.size h');
      check_bool "merged view saved" true
        (merged_before = List.of_seq (Hexastore.lookup h' Pattern.wildcard));
      Hexastore.check_invariant h';
      (* Re-saving the now-quiescent delta is byte-identical. *)
      let first = file_contents path in
      Snapshot.save_delta dl path;
      check_bool "re-save byte-identical" true (String.equal first (file_contents path)))

let test_delta_load_roundtrip () =
  with_tmp (fun path ->
      let dl = Delta.of_base (sample_store ()) in
      ignore
        (Delta.add dl
           (Rdf.Triple.make (Rdf.Term.iri "http://x/s9") (Rdf.Term.iri "http://x/p9")
              (Rdf.Term.iri "http://x/o9")));
      Snapshot.save_delta dl path;
      let dl' = Snapshot.load_delta ~insert_threshold:7 ~delete_threshold:5 path in
      check_int "threshold carried" 7 (Delta.insert_threshold dl');
      check_int "sizes agree" (Delta.size dl) (Delta.size dl');
      check_bool "contents agree" true
        (List.of_seq (Delta.lookup dl Pattern.wildcard)
        = List.of_seq (Delta.lookup dl' Pattern.wildcard));
      check_bool "loaded delta starts quiescent" true
        (Delta.pending_inserts dl' = 0 && Delta.pending_deletes dl' = 0))

(* --- compressed representations (PR 10) -------------------------------- *)

(* The exact triple set baked into test/snapshots/pre_pr10.snap, a
   HEXSNAP1 file written before the codec-tagged format existed. *)
let golden_triples () =
  List.concat_map
    (fun i ->
      let s = Rdf.Term.iri (Printf.sprintf "http://example.org/s%d" i) in
      [
        Rdf.Triple.make s
          (Rdf.Term.iri "http://example.org/type")
          (Rdf.Term.iri (Printf.sprintf "http://example.org/Class%d" (i mod 3)));
        Rdf.Triple.make s
          (Rdf.Term.iri "http://example.org/value")
          (Rdf.Term.literal (string_of_int (i * 7)));
      ])
    (List.init 40 Fun.id)

let test_golden_v1_load () =
  (* A pre-PR10 snapshot must keep loading: as a raw store, with the
     same ids the old writer assigned (positional dictionary). *)
  let path = "snapshots/pre_pr10.snap" in
  let h = Snapshot.load path in
  check_int "golden size" 80 (Hexastore.size h);
  Alcotest.(check string) "v1 loads as raw" "raw" (Hexastore.repr_name h);
  Hexastore.check_invariant h;
  let expected = Hexastore.of_triples (golden_triples ()) in
  check_bool "golden contents (same ids)" true (same_contents expected h);
  (* Re-saving upgrades the container format; the upgraded file still
     round-trips to the same store. *)
  with_tmp (fun path2 ->
      Snapshot.save h path2;
      let h2 = Snapshot.load path2 in
      check_bool "v1 -> v2 rewrite preserves contents" true (same_contents h h2))

let compressed_sample kind =
  let h = Hexastore.create ~repr:kind () in
  List.iter (fun tr -> ignore (Hexastore.add h tr)) (golden_triples ());
  Hexastore.compress h;
  h

let test_compressed_roundtrip_bytes () =
  (* Saving a compressed store, loading it, and saving again must be
     byte-identical — the codec tag and the payload both survive. *)
  List.iter
    (fun kind ->
      let name = Vectors.Sorted_ivec.kind_name kind in
      with_tmp (fun p1 ->
          with_tmp (fun p2 ->
              let h = compressed_sample kind in
              Alcotest.(check string) (name ^ " store is compressed") name
                (Hexastore.repr_name h);
              Snapshot.save h p1;
              let h' = Snapshot.load p1 in
              Alcotest.(check string) (name ^ " survives the round trip") name
                (Hexastore.repr_name h');
              check_bool (name ^ " contents survive") true (same_contents h h');
              Hexastore.check_invariant h';
              Snapshot.save h' p2;
              check_bool (name ^ " re-save byte-identical") true
                (String.equal (file_contents p1) (file_contents p2)))))
    Vectors.Sorted_ivec.[ Packed; Delta_varint ]

let test_codec_tag_in_checksum () =
  (* Corrupting the repr byte (right after the magic) must be caught. *)
  with_tmp (fun path ->
      let h = compressed_sample Vectors.Sorted_ivec.Packed in
      Snapshot.save h path;
      let full = Bytes.of_string (file_contents path) in
      let pos = String.length "HEXSNAP2" in
      Bytes.set full pos (Char.chr (Char.code (Bytes.get full pos) lxor 0x01));
      let oc = open_out_bin path in
      output_bytes oc full;
      close_out oc;
      match Snapshot.load path with
      | exception Snapshot.Corrupt _ -> ()
      | _ -> Alcotest.fail "flipped codec tag accepted")

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "snapshot"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "basic" `Quick test_roundtrip_basic;
          Alcotest.test_case "empty" `Quick test_roundtrip_empty;
          Alcotest.test_case "ghost_terms" `Quick test_roundtrip_dict_only_terms;
          Alcotest.test_case "channels" `Quick test_channel_api;
          Alcotest.test_case "delta_flush_on_save" `Quick test_delta_flush_on_save;
          Alcotest.test_case "delta_load" `Quick test_delta_load_roundtrip;
          qt prop_roundtrip;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "bad_magic" `Quick test_corruption_bad_magic;
          Alcotest.test_case "truncation" `Quick test_corruption_truncation;
          Alcotest.test_case "bitflip" `Quick test_corruption_bitflip;
          Alcotest.test_case "trailing" `Quick test_corruption_trailing_garbage;
          qt prop_fuzz_never_crashes;
        ] );
      ( "repr",
        [
          Alcotest.test_case "golden_v1_load" `Quick test_golden_v1_load;
          Alcotest.test_case "compressed_roundtrip_bytes" `Quick
            test_compressed_roundtrip_bytes;
          Alcotest.test_case "codec_tag_checksummed" `Quick test_codec_tag_in_checksum;
        ] );
    ]
