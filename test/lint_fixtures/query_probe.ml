(* Fixture: query-probe.  Scanned as lib/query/, where the rule
   applies.  A bare probe fires; waivers only count inside comments, so
   the string-smuggled waiver before the last probe does not waive it
   (the PR 1 substring scanner got that wrong). *)

let bad1 v o = Sorted_ivec.mem v o

let ok1 v o = Sorted_ivec.mem v o (* lint: allow query-probe *)

(* lint: allow query-probe *)
let ok2 v o = Sorted_ivec.mem v o

let smuggled = "lint: allow query-probe"
let bad2 v o = Sorted_ivec.mem v o
