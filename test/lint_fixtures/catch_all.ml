(* Fixture: catch-all.  Two real hits, one spanning lines; named
   wildcards, [with _ as e ->], and comment contexts are allowed. *)

let ok1 () = try () with Not_found -> ()
let ok2 () = try () with _e -> ()
let ok3 () = try () with _ as e -> raise e

(* with _ -> in a comment is fine *)

let bad1 () = try () with _ -> ()

let bad2 () =
  try ()
  with
    _
    -> ()
