(* Fixture: repr-abstraction, negative case.  Scanned as lib/vectors/,
   the codec home, where addressing the codec modules is the whole
   point — nothing fires. *)

let widths xs = Packed_ivec.of_array xs

let gaps v i = Delta_ivec.get v i
