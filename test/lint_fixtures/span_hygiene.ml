(* Fixture: span-hygiene.  Scanned as lib/core/, where the rule
   applies (lib/telemetry is exempt).  Manual enter/exit pairs fire —
   qualified through either path — while [with_span] and comment-waived
   resource-lifetime spans pass.  A waiver smuggled in a string literal
   does not count. *)

let bad_enter name = Telemetry.Trace.enter_span name

let bad_exit h = Trace.exit_span h

let ok_wrapped name f = Telemetry.Trace.with_span name f

let ok_waived name = Telemetry.Trace.enter_span name (* lint: allow span-hygiene *)

(* lint: allow span-hygiene *)
let ok_waived_above h = Trace.exit_span h

let smuggled = "lint: allow span-hygiene"
let bad_smuggled name = Trace.enter_span name
