(* Fixture: domain-unsafe-global.  Four bad globals (unattested,
   unknown class, missing reason, string-smuggled attestation);
   attested globals, constructor functions, thunks, type annotations
   and function-local state are all fine. *)

let bad_unattested = ref 0

(* domain-safety: totally-safe — not a real class *)
let bad_unknown_class = ref []

(* domain-safety: guarded *)
let bad_missing_reason = Hashtbl.create 16

(* domain-safety: immutable-after-init — built once right here *)
let ok_attested : (int, int) Hashtbl.t = Hashtbl.create 8

(* domain-safety: test-only — flipped by tests only *)
let ok_ref = ref false

let ok_function () = ref 0

let ok_thunk = fun () -> Buffer.create 64

let ok_annotation_only : int ref option = None

let ok_local x =
  let acc = ref x in
  incr acc;
  !acc

let smuggled = "domain-safety: test-only — a string is not an attestation"
let bad_string_attested = ref 0
