(* Fixture: printf-in-lib.  Three real hits (Printf.printf,
   Format.printf, print_endline); formatter-taking calls and string or
   comment contexts are inert — including a multiline string literal. *)

let fmt ppf = Format.fprintf ppf "Printf.printf %s" "print_endline"

(* Printf.printf belongs in bin/, not lib/ *)

let multiline =
  "first string line
Printf.printf on a later line of the same string literal
still the same string"

let a () = Printf.printf "%d" 1
let b () = Format.printf "%d" 2
let c () = print_endline "x"
