(* Fixture: repr-abstraction.  Scanned as lib/core/, outside the codec
   home lib/vectors/, so naming a codec module fires — bare or
   dot-qualified.  Strings never fire, and waivers only count inside
   comments. *)

let bad1 xs = Packed_ivec.of_array xs

let bad2 v i = Vectors.Delta_ivec.get v i

let ok1 xs = Packed_ivec.of_array xs (* lint: allow repr-abstraction *)

(* lint: allow repr-abstraction *)
let ok2 v i = Delta_ivec.get v i

let named = "Packed_ivec mentioned in a string literal is fine"

let smuggled = "lint: allow repr-abstraction"
let bad3 xs = Delta_ivec.of_array xs
