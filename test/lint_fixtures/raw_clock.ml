(* Fixture: raw-clock.  Two real hits; longer dotted names must not
   match ([Sys.timestamp_like], [My_sys.time]), nor string or comment
   occurrences.  Scanned as lib/core/, where the rule applies. *)

let a = "Unix.gettimeofday quoted"

(* Sys.time in a comment *)

let b () = Sys.timestamp_like ()
let c () = My_sys.time ()

let bad1 () = Unix.gettimeofday ()
let bad2 () = Sys.time ()
