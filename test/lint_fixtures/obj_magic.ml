(* Fixture: obj-magic.  One real hit; every other occurrence sits in a
   string, comment, nested comment, or after a tricky char literal. *)

let doc = "Obj.magic in a string literal must not fire"

(* Obj.magic in a comment must not fire.
   (* nested: Obj.magic is still inside the comment *) and so is this *)

let quoted = {|Obj.magic in a quoted-string literal|}

let quote_char = '"'
let after_char = "Obj.magic — still a string even after the quote char literal"

let f x = Obj.magic x
