(* Tests for the token-level static analysis (PR 6): the Check.Lexer
   tokenizer, the lint fixture corpus with golden violation lists, the
   Check.Mutability inventory, and the lint telemetry counters.
   (missing-mli is directory-shaped and keeps its temp-dir test in
   test_check.ml; here scan_dir over the corpus checks it reports every
   interface-less fixture.) *)

module C = Check
module L = Check.Lexer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let qt = QCheck_alcotest.to_alcotest

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

let kinds_of src = Array.to_list (L.tokenize src).L.tokens |> List.map (fun t -> t.L.kind)
let texts_of src = Array.to_list (L.tokenize src).L.tokens |> List.map (fun t -> t.L.text)

let test_lexer_kinds () =
  check_bool "idents and ops" true
    (kinds_of "let x := A.f 'c' \"s\" (* c *) 1"
    = [ L.Ident; L.Ident; L.Op; L.Uident; L.Op; L.Ident; L.Char; L.String; L.Comment; L.Number ]);
  check_bool "assignment ops are single tokens" true
    (texts_of "a := b; r.f <- c" = [ "a"; ":="; "b"; ";"; "r"; "."; "f"; "<-"; "c" ]);
  (* Nested comments collapse to one token; strings inside comments are
     honored, so a comment closer inside them does not end the comment. *)
  check_int "nested comment is one token" 2
    (List.length (texts_of "(* a (* b *) \"*)\" c *) x"));
  check_bool "identifier primes stay identifiers" true
    (texts_of "x' + f'a'" = [ "x'"; "+"; "f'a'" ]);
  check_bool "type variable quote is punct" true (kinds_of "'a t" = [ L.Punct; L.Ident; L.Ident ]);
  check_bool "escaped char literals" true
    (kinds_of "'\\n' '\\xFF' '\\\\'" = [ L.Char; L.Char; L.Char ]);
  check_bool "quoted string literal" true (kinds_of "{q|raw \" |} body|q}" = [ L.String ]);
  check_bool "multiline string is one token" true
    (kinds_of "\"line1\nPrintf.printf\nline3\"" = [ L.String ])

let test_lexer_positions () =
  let src = "let a = 1\n  let b = \"x\"\n" in
  let t = L.tokenize src in
  Array.iter
    (fun (tok : L.token) ->
      (* Token positions agree with the binary-searched line table. *)
      let line, col = L.position t tok.L.pos in
      check_int ("line of " ^ tok.L.text) tok.L.line line;
      check_int ("col of " ^ tok.L.text) tok.L.col col;
      check_string ("slice of " ^ tok.L.text) tok.L.text
        (String.sub t.L.src tok.L.pos (String.length tok.L.text)))
    t.L.tokens;
  (* Naive oracle for the binary search, across every byte offset. *)
  let line = ref 1 and col = ref 1 in
  String.iteri
    (fun off c ->
      let l, cl = L.position t off in
      check_int (Printf.sprintf "line at %d" off) !line l;
      check_int (Printf.sprintf "col at %d" off) !col cl;
      if c = '\n' then begin
        incr line;
        col := 1
      end
      else incr col)
    src;
  check_string "line_text 1" "let a = 1" (L.line_text t 1);
  check_string "line_text 2" "  let b = \"x\"" (L.line_text t 2);
  check_string "line_text out of range" "" (L.line_text t 9)

let test_lexer_path_at () =
  let t = L.tokenize "Unix.gettimeofday () ; A.B.c ; Sys.timestamp ; lone" in
  let paths =
    Array.to_list t.L.tokens
    |> List.mapi (fun i _ -> i)
    |> List.filter_map (fun i ->
           if i > 0 && t.L.tokens.(i - 1).L.kind = L.Op && t.L.tokens.(i - 1).L.text = "." then
             None
           else Option.map fst (L.path_at t i))
  in
  check_bool "reassembled paths" true
    (paths = [ "Unix.gettimeofday"; "A.B.c"; "Sys.timestamp"; "lone" ])

(* Rebuild a source image from the token array: whitespace (newlines
   preserved) everywhere, each token blitted back at its offset. *)
let reserialize (t : L.t) =
  let b = Bytes.make (String.length t.L.src) ' ' in
  String.iteri (fun i c -> if c = '\n' then Bytes.set b i '\n') t.L.src;
  Array.iter
    (fun (tok : L.token) -> Bytes.blit_string tok.L.text 0 b tok.L.pos (String.length tok.L.text))
    t.L.tokens;
  Bytes.to_string b

let token_eq (a : L.token) (b : L.token) =
  a.L.kind = b.L.kind && String.equal a.L.text b.L.text && a.L.pos = b.L.pos
  && a.L.line = b.L.line && a.L.col = b.L.col

(* Coverage invariants the lexer promises for arbitrary input. *)
let coverage_ok src =
  let t = L.tokenize src in
  let covered = Array.make (String.length src) false in
  let ordered = ref true and prev_end = ref 0 in
  Array.iter
    (fun (tok : L.token) ->
      if tok.L.pos < !prev_end then ordered := false;
      prev_end := tok.L.pos + String.length tok.L.text;
      if not (String.equal tok.L.text (String.sub src tok.L.pos (String.length tok.L.text)))
      then ordered := false;
      String.iteri (fun k _ -> covered.(tok.L.pos + k) <- true) tok.L.text;
      let line, col = L.position t tok.L.pos in
      if line <> tok.L.line || col <> tok.L.col then ordered := false)
    t.L.tokens;
  let gaps_white = ref true in
  String.iteri
    (fun i c ->
      if (not covered.(i)) && not (c = ' ' || c = '\t' || c = '\n' || c = '\r') then
        gaps_white := false)
    src;
  !ordered && !gaps_white

let ocamlish_gen =
  let frag =
    QCheck.Gen.oneofl
      [
        "let x = ref 0\n"; "let f () =\n  Hashtbl.create 3\n"; "(* c *)"; "(* (* nest *) *)";
        "(* \"*)\" still comment *)"; "\"str \\\" esc\""; "{q|raw \" |} body|q}"; "'a'";
        "'\\n'"; "'\\xFF'"; "x'"; "f'a'"; "'a t"; "A.B.c"; "Unix.gettimeofday"; ":="; "<-";
        "->"; "mutable s : int;"; "123"; "1.5"; "0x1f"; "1."; "1..2"; "~-"; "|>";
        "with _ ->"; "with _e ->"; "incr n;"; "\"unterminated"; "(* unterminated"; "#load";
        " "; "\n"; "\t"; "\r\n"; "  ";
      ]
  in
  QCheck.Gen.map (String.concat "") (QCheck.Gen.list_size (QCheck.Gen.int_range 0 40) frag)

let arb_ocamlish = QCheck.make ~print:String.escaped ocamlish_gen

let prop_lexer_coverage =
  QCheck.Test.make ~name:"lexer covers every non-whitespace byte (ocaml-ish)" ~count:500
    arb_ocamlish coverage_ok

let prop_lexer_coverage_random =
  QCheck.Test.make ~name:"lexer covers every non-whitespace byte (random bytes)" ~count:500
    QCheck.string coverage_ok

let reserialize_ok src =
  let t = L.tokenize src in
  let t' = L.tokenize (reserialize t) in
  Array.length t.L.tokens = Array.length t'.L.tokens
  && Array.for_all2 token_eq t.L.tokens t'.L.tokens

let prop_lexer_reserialize =
  QCheck.Test.make ~name:"re-serializing tokens preserves source positions" ~count:500
    arb_ocamlish reserialize_ok

let prop_lexer_reserialize_random =
  QCheck.Test.make ~name:"re-serialize round-trip (random bytes)" ~count:500 QCheck.string
    reserialize_ok

(* ------------------------------------------------------------------ *)
(* Fixture corpus                                                      *)
(* ------------------------------------------------------------------ *)

let fixtures_dir = "lint_fixtures"

(* "path=..." plus "<line> <rule>" lines; '#' comments. *)
let parse_expected contents =
  let path = ref "fixture.ml" and wants = ref [] in
  String.split_on_char '\n' contents
  |> List.iter (fun line ->
         let line = String.trim line in
         if String.length line = 0 || line.[0] = '#' then ()
         else if String.length line > 5 && String.equal (String.sub line 0 5) "path=" then
           path := String.sub line 5 (String.length line - 5)
         else
           match String.index_opt line ' ' with
           | Some i ->
               wants :=
                 ( int_of_string (String.sub line 0 i),
                   String.sub line (i + 1) (String.length line - i - 1) )
                 :: !wants
           | None -> Alcotest.failf "unparseable expected line %S" line);
  (!path, List.sort compare !wants)

let violation_key (v : C.Violation.t) =
  let line =
    match String.rindex_opt v.C.Violation.path ':' with
    | Some i ->
        int_of_string
          (String.sub v.C.Violation.path (i + 1) (String.length v.C.Violation.path - i - 1))
    | None -> 0
  in
  let rule =
    match String.index_opt v.C.Violation.message ':' with
    | Some i -> String.sub v.C.Violation.message 0 i
    | None -> v.C.Violation.message
  in
  (line, rule)

let pp_keys keys =
  String.concat ", " (List.map (fun (l, r) -> Printf.sprintf "%d %s" l r) keys)

let fixture_bases () =
  Sys.readdir fixtures_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".expected")
  |> List.map (fun f -> Filename.chop_suffix f ".expected")
  |> List.sort compare

let test_fixture_corpus () =
  let bases = fixture_bases () in
  check_bool "corpus is non-trivial" true (List.length bases >= 6);
  List.iter
    (fun base ->
      let src = read_file (Filename.concat fixtures_dir (base ^ ".ml")) in
      let path, wants = parse_expected (read_file (Filename.concat fixtures_dir (base ^ ".expected"))) in
      let got = List.sort compare (List.map violation_key (C.Lint.scan_source ~path src)) in
      if got <> wants then
        Alcotest.failf "%s: expected [%s], got [%s]" base (pp_keys wants) (pp_keys got))
    bases

let test_fixture_dir_missing_mli () =
  (* scan_dir over the corpus reports missing-mli for every fixture .ml
     (none has an interface) on top of the content findings. *)
  let vs = C.Lint.scan_dir fixtures_dir in
  let missing =
    List.filter (fun (v : C.Violation.t) ->
        let msg = v.C.Violation.message in
        String.length msg >= 11 && String.equal (String.sub msg 0 11) "missing-mli")
      vs
  in
  check_int "one missing-mli per fixture" (List.length (fixture_bases ())) (List.length missing)

(* ------------------------------------------------------------------ *)
(* Mutability inventory                                                *)
(* ------------------------------------------------------------------ *)

let seeded_src =
  "(* domain-safety: test-only — toggled by tests *)\n"
  ^ "let g = ref 0\n" ^ "\n" ^ "type r = { mutable field : int }\n" ^ "\n"
  ^ "let f x =\n" ^ "  let l = ref x in\n" ^ "  l := 1;\n" ^ "  g := 2;\n"
  ^ "  Other.state := 3;\n" ^ "  incr g;\n" ^ "  ignore (Hashtbl.create 4);\n" ^ "  !l\n"

let test_mutability_classification () =
  let fr = C.Mutability.analyze_source ~path:"lib/core/x.ml" seeded_src in
  check_string "layer" "core" fr.C.Mutability.layer;
  check_int "one global" 1 (List.length fr.C.Mutability.globals);
  let g = List.hd fr.C.Mutability.globals in
  check_string "global name" "g" g.C.Mutability.g_name;
  check_string "global ctor" "ref" g.C.Mutability.g_ctor;
  (match g.C.Mutability.g_attestation with
  | Some (cls, reason) ->
      check_string "class" "test-only" cls;
      check_string "reason" "toggled by tests" reason
  | None -> Alcotest.fail "expected an attestation");
  check_int "one mutable field" 1 (List.length fr.C.Mutability.fields);
  (* ref in f plus Hashtbl.create; the global's own [ref 0] is not a
     local site. *)
  check_int "local creations" 2 (List.length fr.C.Mutability.locals);
  let count p = List.length (List.filter p fr.C.Mutability.assigns) in
  check_int "global assigns (g := and incr g)" 2
    (count (fun (t, _) -> match t with C.Mutability.Global _ -> true | _ -> false));
  check_int "qualified assigns" 1
    (count (fun (t, _) -> match t with C.Mutability.Qualified _ -> true | _ -> false));
  check_int "local assigns" 1
    (count (fun (t, _) -> match t with C.Mutability.Local _ -> true | _ -> false))

let test_mutability_non_globals () =
  let fr =
    C.Mutability.analyze_source ~path:"x.ml"
      ("let make () = ref 0\n" ^ "let thunk = fun () -> ref 1\n"
     ^ "let annotated : int ref option = None\n" ^ "let lazy_one = lazy (ref 2)\n")
  in
  check_int "no globals" 0 (List.length fr.C.Mutability.globals)

let test_mutability_classes () =
  List.iter
    (fun c ->
      match C.Mutability.class_of_string (C.Mutability.class_name c) with
      | Some c' -> check_bool (C.Mutability.class_name c) true (c = c')
      | None -> Alcotest.failf "class %s does not round-trip" (C.Mutability.class_name c))
    [
      C.Mutability.Immutable_after_init; C.Mutability.Guarded; C.Mutability.Telemetry_gated;
      C.Mutability.Test_only; C.Mutability.Atomic; C.Mutability.Domain_sharded;
    ];
  check_bool "unknown class rejected" true (C.Mutability.class_of_string "safe" = None)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  go 0

let test_mutability_report_render () =
  let report = C.Mutability.analyze_dirs [ fixtures_dir ] in
  let md = C.Mutability.to_markdown report in
  check_bool "markdown names the unattested global" true (contains md "bad_unattested");
  match Telemetry.Json.member "schema" (C.Mutability.to_json report) with
  | Some (Telemetry.Json.String s) -> check_string "json schema" "hexastore-domain-safety/v1" s
  | _ -> Alcotest.fail "json report lacks a schema field"

(* ------------------------------------------------------------------ *)
(* Lint telemetry                                                      *)
(* ------------------------------------------------------------------ *)

let test_lint_telemetry_counters () =
  let files = Telemetry.Metrics.counter "check.lint.files" in
  let tokens = Telemetry.Metrics.counter "check.lint.tokens" in
  let magic = Telemetry.Metrics.counter "check.lint.violations.obj-magic" in
  let f0 = Telemetry.Metrics.value files
  and t0 = Telemetry.Metrics.value tokens
  and m0 = Telemetry.Metrics.value magic in
  Telemetry.with_enabled true (fun () ->
      ignore (C.Lint.scan_source ~path:"x.ml" "let f x = Obj.magic x\n"));
  check_int "files counted" (f0 + 1) (Telemetry.Metrics.value files);
  check_bool "tokens counted" true (Telemetry.Metrics.value tokens > t0);
  check_int "violations counted" (m0 + 1) (Telemetry.Metrics.value magic);
  (* Disabled again: the scan must not move the counters. *)
  ignore (C.Lint.scan_source ~path:"x.ml" "let f x = Obj.magic x\n");
  check_int "gated off" (f0 + 1) (Telemetry.Metrics.value files)

let () =
  Alcotest.run "lint"
    [
      ( "lexer",
        [
          Alcotest.test_case "token kinds" `Quick test_lexer_kinds;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "path reassembly" `Quick test_lexer_path_at;
          qt prop_lexer_coverage;
          qt prop_lexer_coverage_random;
          qt prop_lexer_reserialize;
          qt prop_lexer_reserialize_random;
        ] );
      ( "fixtures",
        [
          Alcotest.test_case "golden corpus" `Quick test_fixture_corpus;
          Alcotest.test_case "missing-mli over corpus" `Quick test_fixture_dir_missing_mli;
        ] );
      ( "mutability",
        [
          Alcotest.test_case "classification" `Quick test_mutability_classification;
          Alcotest.test_case "non-globals" `Quick test_mutability_non_globals;
          Alcotest.test_case "class vocabulary" `Quick test_mutability_classes;
          Alcotest.test_case "report rendering" `Quick test_mutability_report_render;
        ] );
      ("telemetry", [ Alcotest.test_case "lint counters" `Quick test_lint_telemetry_counters ]);
    ]
