(* CLI front-end for [Check.Concurrent.stress]: one writer domain
   staging/flushing/compacting a delta store against N reader domains
   pinning snapshots and validating query results.  Exits 1 when the
   run produced violations, so the [@stress] alias fails the build.

   Usage: stress [--readers N] [--rounds N] [--ops N] [--domains N] [--seed N] *)

module CC = Check.Concurrent

let () =
  let cfg = ref CC.default_stress in
  let quiet = ref false in
  let spec =
    [
      ( "--readers",
        Arg.Int (fun n -> cfg := { !cfg with CC.readers = n }),
        "N reader domains querying pinned snapshots (default 2)" );
      ( "--rounds",
        Arg.Int (fun n -> cfg := { !cfg with CC.rounds = n }),
        "N writer flush/compact rounds (default 4)" );
      ( "--ops",
        Arg.Int (fun n -> cfg := { !cfg with CC.ops_per_round = n }),
        "N random mutations per round (default 64)" );
      ( "--domains",
        Arg.Int (fun n -> cfg := { !cfg with CC.domains = n }),
        "N executor fan-out width (default 2)" );
      ( "--seed",
        Arg.Int (fun n -> cfg := { !cfg with CC.seed = n }),
        "N PRNG seed (default 42)" );
      ("--quiet", Arg.Set quiet, " only print on failure");
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument: " ^ a)))
    "stress [options]: race a delta-store writer against reader domains";
  let c = !cfg in
  let r = CC.stress c in
  if not !quiet then
    Printf.printf
      "stress: readers=%d domains=%d seed=%d | %d ops, %d flushes, %d compactions, %d queries, %d violations\n"
      c.CC.readers c.CC.domains c.CC.seed r.CC.ops r.CC.flushes r.CC.compactions
      r.CC.queries
      (List.length r.CC.violations);
  if r.CC.violations <> [] then begin
    Format.printf "%a@." Check.Violation.pp_report r.CC.violations;
    exit 1
  end
