(* Tests for the correctness tooling layer (lib/check): the per-layer
   invariant validators, the differential model-checker against the naive
   reference store, the debug assertion hooks, and the source lint. *)

open Hexa
module C = Check
module Sorted_ivec = Vectors.Sorted_ivec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qt = QCheck_alcotest.to_alcotest

type id3 = Hexastore.id_triple = { s : int; p : int; o : int }

let t3 s p o = { s; p; o }

let no_violations what vs =
  if vs <> [] then
    Alcotest.failf "%s: expected no violations, got:@.%a" what C.Violation.pp_report vs

let some_violation what vs =
  if vs = [] then Alcotest.failf "%s: expected at least one violation, got none" what

let small_store () =
  let h = Hexastore.create () in
  List.iter
    (fun (s, p, o) -> ignore (Hexastore.add_ids h (t3 s p o)))
    [ (0, 1, 2); (0, 1, 3); (0, 2, 2); (1, 1, 2); (3, 4, 5); (2, 1, 0); (0, 1, 2) ];
  h

(* ------------------------------------------------------------------ *)
(* Invariant validators                                                *)
(* ------------------------------------------------------------------ *)

let test_store_clean () =
  no_violations "small store" (C.store (small_store ()));
  no_violations "empty store" (C.store (Hexastore.create ()))

let test_store_clean_after_deletes () =
  let h = small_store () in
  ignore (Hexastore.remove_ids h (t3 0 1 2));
  ignore (Hexastore.remove_ids h (t3 3 4 5));
  ignore (Hexastore.remove_ids h (t3 9 9 9));
  no_violations "store after deletes" (C.store h);
  (* Drain completely: pruning must leave a perfectly empty store. *)
  List.iter
    (fun tr -> ignore (Hexastore.remove_ids h tr))
    (Hexastore.fold (fun tr l -> tr :: l) h []);
  check_int "drained" 0 (Hexastore.size h);
  no_violations "drained store" (C.store h)

let test_store_lubm_bulk () =
  (* Acceptance: a freshly bulk-loaded LUBM-style workload store passes
     the whole catalogue with an empty violation list. *)
  let cfg = Workloads.Lubm.config ~universities:1 ~departments_per_university:1 () in
  let triples = Workloads.Lubm.generate cfg in
  let h = Hexastore.of_triples triples in
  check_bool "store is non-trivial" true (Hexastore.size h > 1000);
  no_violations "bulk-loaded LUBM store" (C.store h);
  (* Terminal-list sharing is also asserted directly, by physical
     equality, for every spo pair — not just through the checker. *)
  let shared = ref 0 in
  Index.iter
    (fun s v ->
      Pair_vector.iter
        (fun p ol ->
          (match Index.find_list (Hexastore.pso h) p s with
          | Some ol' -> check_bool "o-list shared spo/pso" true (ol == ol')
          | None -> Alcotest.fail "pso missing twin list");
          (match Hexastore.objects_of_sp h ~s ~p with
          | Some ol' -> check_bool "o-list shared with accessor table" true (ol == ol')
          | None -> Alcotest.fail "accessor table missing list");
          incr shared)
        v)
    (Hexastore.spo h);
  check_bool "visited many shared lists" true (!shared > 100)

let test_detects_total_corruption () =
  let h = small_store () in
  match Index.find_vector (Hexastore.spo h) 0 with
  | None -> Alcotest.fail "header 0 missing"
  | Some v ->
      Pair_vector.bump_total v 2;
      some_violation "bumped total" (C.store h);
      Pair_vector.bump_total v (-2);
      no_violations "restored total" (C.store h)

let test_detects_bogus_header () =
  let h = small_store () in
  ignore (Index.get_or_create_vector (Hexastore.spo h) 999);
  some_violation "empty vector under fresh header" (C.store h);
  ignore (Index.remove_header (Hexastore.spo h) 999);
  no_violations "header removed" (C.store h)

let test_detects_unshared_list () =
  let h = small_store () in
  (* Replace pso's reference with a value-equal copy: every count and
     query still answers correctly, but the 5x space bound is silently
     gone.  Only the physical-equality check can see this. *)
  let pso = Hexastore.pso h in
  (match Index.find_vector pso 1 with
  | None -> Alcotest.fail "pso header 1 missing"
  | Some v -> (
      match Pair_vector.find v 0 with
      | None -> Alcotest.fail "pso (1,0) missing"
      | Some l ->
          let copy = Sorted_ivec.copy l in
          ignore (Pair_vector.remove v 0);
          ignore (Pair_vector.get_or_insert v 0 (fun () -> copy))));
  some_violation "copied (unshared) terminal list" (C.store h)

let test_dictionary_bijective () =
  let d = Dict.Dictionary.create () in
  List.iter
    (fun s -> ignore (Dict.Dictionary.encode d s))
    [ "a"; "b"; "c"; "a"; "longer string"; "" ];
  no_violations "string dictionary" (C.Invariant.dictionary d);
  let td = Dict.Term_dict.create () in
  List.iter
    (fun t -> ignore (Dict.Term_dict.encode_term td t))
    [
      Rdf.Term.Iri "http://example.org/x";
      Rdf.Term.string_literal "x";
      Rdf.Term.Blank "x";
      Rdf.Term.Iri "http://example.org/x";
    ];
  check_int "spelling-colliding terms get distinct ids" 3 (Dict.Term_dict.size td);
  no_violations "term dictionary" (C.Invariant.term_dict td)

let test_dataset_coherent () =
  let d = Dataset.create () in
  let g = Rdf.Term.Iri "http://example.org/g" in
  let tr s p o = Rdf.Triple.make (Rdf.Term.Iri s) (Rdf.Term.Iri p) (Rdf.Term.Iri o) in
  ignore (Dataset.add d (tr "s" "p" "o"));
  ignore (Dataset.add d ~graph:g (tr "s" "p" "o"));
  ignore (Dataset.add d ~graph:g (tr "s2" "p" "o2"));
  no_violations "dataset" (C.Invariant.dataset d)

let test_snapshot_roundtrip () =
  (* Raw id-level stores (empty dictionary) are not snapshotable; the
     validator must say so rather than report opaque corruption. *)
  some_violation "id-only store is not snapshotable"
    (C.Invariant.snapshot_roundtrip (small_store ()));
  let h = Hexastore.create () in
  List.iter
    (fun t ->
      ignore
        (Hexastore.add h
           (Rdf.Triple.make (Rdf.Term.Iri t) (Rdf.Term.Iri "p") (Rdf.Term.string_literal t))))
    [ "a"; "b"; "c" ];
  no_violations "snapshot round-trip (terms)" (C.Invariant.snapshot_roundtrip h);
  let cfg = Workloads.Lubm.config ~universities:1 ~departments_per_university:1 () in
  let lubm = Hexastore.of_triples (Workloads.Lubm.generate cfg) in
  no_violations "snapshot round-trip (LUBM)" (C.Invariant.snapshot_roundtrip lubm)

(* ------------------------------------------------------------------ *)
(* Differential model-checker                                          *)
(* ------------------------------------------------------------------ *)

let test_model_basic () =
  let m = C.Model.create () in
  check_bool "add" true (C.Model.add m (t3 1 2 3));
  check_bool "re-add" false (C.Model.add m (t3 1 2 3));
  check_bool "add 2" true (C.Model.add m (t3 0 2 3));
  check_int "size" 2 (C.Model.size m);
  check_bool "mem" true (C.Model.mem m (t3 1 2 3));
  check_int "lookup ?s p=2" 2 (C.Model.count m (Pattern.make ~p:2 ()));
  check_bool "remove" true (C.Model.remove m (t3 1 2 3));
  check_bool "re-remove" false (C.Model.remove m (t3 1 2 3));
  check_int "size after remove" 1 (C.Model.size m)

let test_diff_deterministic () =
  let ops =
    C.Diff.
      [
        Insert (t3 0 0 0);
        Insert (t3 0 0 1);
        Insert (t3 0 0 0);
        Query (Pattern.make ~s:0 ());
        Delete (t3 0 0 0);
        Delete (t3 0 0 0);
        Query Pattern.wildcard;
        Insert (t3 1 0 1);
        Query (Pattern.make ~p:0 ~o:1 ());
        Delete (t3 0 0 1);
        Delete (t3 1 0 1);
        Query Pattern.wildcard;
      ]
  in
  match C.Diff.run ops with
  | [] -> ()
  | ds ->
      Alcotest.failf "unexpected divergences:@.%s"
        (String.concat "\n" (List.map C.Diff.divergence_to_string ds))

(* The acceptance-criteria workhorse: >= 1000 random op sequences, each
   diffed against the reference store with the full invariant check after
   every mutation.  QCheck shrinks any failure to a minimal sequence. *)
let prop_differential =
  QCheck.Test.make ~name:"hexastore = reference model on random op sequences" ~count:1000
    (C.Diff.arb_ops ())
    (fun ops ->
      match C.Diff.run ops with
      | [] -> true
      | ds ->
          QCheck.Test.fail_reportf "%s"
            (String.concat "\n" (List.map C.Diff.divergence_to_string ds)))

(* A second generator shape: wider id universe, longer sequences, no
   per-step invariant validation (pure black-box differential run). *)
let prop_differential_wide =
  QCheck.Test.make ~name:"differential (wide id universe)" ~count:200
    (C.Diff.arb_ops ~max_id:12 ~max_len:120 ())
    (fun ops ->
      match C.Diff.run ~validate:false ops with
      | [] -> true
      | ds ->
          QCheck.Test.fail_reportf "%s"
            (String.concat "\n" (List.map C.Diff.divergence_to_string ds)))

(* ------------------------------------------------------------------ *)
(* Delta layer                                                         *)
(* ------------------------------------------------------------------ *)

(* A store frozen mid-delta: populated base, pending inserts AND pending
   tombstones, thresholds high enough that nothing auto-flushes. *)
let mid_delta () =
  let d = Delta.create ~insert_threshold:1000 ~delete_threshold:1000 () in
  ignore
    (Delta.add_bulk_ids d
       (Array.of_list (List.map (fun (s, p, o) -> t3 s p o) [ (0, 1, 2); (0, 1, 3); (1, 1, 2); (3, 4, 5) ])));
  check_bool "buffered insert" true (Delta.add_ids d (t3 2 1 0));
  check_bool "buffered insert 2" true (Delta.add_ids d (t3 0 2 2));
  check_bool "tombstone" true (Delta.remove_ids d (t3 3 4 5));
  d

let test_delta_semantics () =
  let d = mid_delta () in
  check_int "pending inserts" 2 (Delta.pending_inserts d);
  check_int "pending deletes" 1 (Delta.pending_deletes d);
  check_int "merged size" 5 (Delta.size d);
  check_bool "merged mem: base triple" true (Delta.mem_ids d (t3 0 1 2));
  check_bool "merged mem: buffered triple" true (Delta.mem_ids d (t3 2 1 0));
  check_bool "merged mem: tombstoned triple" false (Delta.mem_ids d (t3 3 4 5));
  check_bool "duplicate of buffered insert" false (Delta.add_ids d (t3 2 1 0));
  check_bool "duplicate of base triple" false (Delta.add_ids d (t3 0 1 2));
  check_bool "delete of buffered insert" true (Delta.remove_ids d (t3 2 1 0));
  check_bool "it is gone" false (Delta.mem_ids d (t3 2 1 0));
  check_bool "resurrect tombstoned triple" true (Delta.add_ids d (t3 3 4 5));
  check_bool "tombstone cancelled" true (Delta.mem_ids d (t3 3 4 5));
  check_int "no tombstones left" 0 (Delta.pending_deletes d);
  check_bool "double delete" true (Delta.remove_ids d (t3 3 4 5));
  check_bool "re-delete fails" false (Delta.remove_ids d (t3 3 4 5))

let test_delta_frozen_mid_delta () =
  (* Acceptance criterion: zero violations on a store frozen mid-delta —
     both the base's own Check.store and the full delta coherence check. *)
  let d = mid_delta () in
  check_bool "delta is non-empty" true (Delta.pending_inserts d + Delta.pending_deletes d > 0);
  no_violations "Check.store on mid-delta base" (C.store (Delta.base d));
  no_violations "Check.delta mid-delta" (C.delta d);
  Delta.flush d;
  check_int "flush drains" 0 (Delta.pending_inserts d + Delta.pending_deletes d);
  no_violations "Check.delta after flush" (C.delta d);
  Delta.compact d;
  no_violations "Check.delta after compact" (C.delta d)

let test_delta_auto_flush () =
  let d = Delta.create ~insert_threshold:3 ~delete_threshold:2 () in
  ignore (Delta.add_ids d (t3 0 0 0));
  ignore (Delta.add_ids d (t3 0 0 1));
  check_int "below threshold: still buffered" 2 (Delta.pending_inserts d);
  ignore (Delta.add_ids d (t3 0 0 2));
  check_int "threshold crossed: auto-flushed" 0 (Delta.pending_inserts d);
  check_int "base holds the batch" 3 (Hexastore.size (Delta.base d));
  ignore (Delta.remove_ids d (t3 0 0 0));
  check_int "one tombstone buffered" 1 (Delta.pending_deletes d);
  ignore (Delta.remove_ids d (t3 0 0 1));
  check_int "delete threshold crossed" 0 (Delta.pending_deletes d);
  check_int "merged size" 1 (Delta.size d);
  no_violations "after auto-flushes" (C.delta d)

let test_delta_detects_corruption () =
  (* Sneak a buffered insert into the base behind the delta's back: the
     no-triple-in-both rule must fire. *)
  let d = mid_delta () in
  Delta.iter_pending_inserts (fun tr -> ignore (Hexastore.add_ids (Delta.base d) tr)) d;
  some_violation "insert buffered and in base" (C.delta d);
  (* And a tombstone for a triple the base never held. *)
  let d2 = mid_delta () in
  Delta.iter_pending_deletes (fun tr -> ignore (Hexastore.remove_ids (Delta.base d2) tr)) d2;
  some_violation "tombstone without base triple" (C.delta d2)

let test_delta_diff_deterministic () =
  let ops =
    C.Diff.
      [
        Insert (t3 0 0 0);
        Insert (t3 0 0 1);
        Flush;
        Insert (t3 0 0 0);
        Delete (t3 0 0 1);
        Query Pattern.wildcard;
        Compact;
        Insert (t3 1 0 1);
        Delete (t3 0 0 0);
        Query (Pattern.make ~p:0 ());
        Flush;
        Query Pattern.wildcard;
      ]
  in
  match C.Diff.run_delta ~insert_threshold:2 ~delete_threshold:2 ops with
  | [] -> ()
  | ds ->
      Alcotest.failf "unexpected divergences:@.%s"
        (String.concat "\n" (List.map C.Diff.divergence_to_string ds))

(* The delta-layer acceptance workhorse: >= 1000 random sequences that
   interleave flush/compact with mutations and queries, each run with
   generator-drawn auto-flush thresholds and the full Invariant.delta
   validation (flushed-clone cross-check included) after every mutation. *)
let prop_delta_differential =
  QCheck.Test.make ~name:"delta layer = reference model (flush/compact interleaved)" ~count:1000
    (QCheck.triple (QCheck.int_range 1 8) (QCheck.int_range 1 6) (C.Diff.arb_delta_ops ()))
    (fun (insert_threshold, delete_threshold, ops) ->
      match C.Diff.run_delta ~insert_threshold ~delete_threshold ops with
      | [] -> true
      | ds ->
          QCheck.Test.fail_reportf "thresholds (%d,%d): %s" insert_threshold delete_threshold
            (String.concat "\n" (List.map C.Diff.divergence_to_string ds)))

(* Wider universe, longer runs, default (never-firing) thresholds, no
   per-step validation: a pure black-box differential soak that keeps
   large buffers alive across many queries. *)
let prop_delta_differential_wide =
  QCheck.Test.make ~name:"delta differential (wide id universe)" ~count:200
    (C.Diff.arb_delta_ops ~max_id:12 ~max_len:120 ())
    (fun ops ->
      match C.Diff.run_delta ~validate:false ops with
      | [] -> true
      | ds ->
          QCheck.Test.fail_reportf "%s"
            (String.concat "\n" (List.map C.Diff.divergence_to_string ds)))

(* ------------------------------------------------------------------ *)
(* Debug assertion hooks                                               *)
(* ------------------------------------------------------------------ *)

let test_debug_off_by_default () =
  check_bool "Check.debug starts false" false !C.debug;
  let before = Debug.validation_count () in
  let h = small_store () in
  ignore (Hexastore.remove_ids h (t3 0 1 2));
  check_int "no validations ran with the guard off" before (Debug.validation_count ())

let test_debug_hooks_fire () =
  let before = Debug.validation_count () in
  C.debug := true;
  Fun.protect
    ~finally:(fun () -> C.debug := false)
    (fun () ->
      let h = Hexastore.create () in
      ignore (Hexastore.add_ids h (t3 1 2 3));
      ignore (Hexastore.add_ids h (t3 1 2 4));
      ignore (Hexastore.remove_ids h (t3 1 2 3));
      (* Failed mutations (duplicate insert, absent delete) skip the hook. *)
      ignore (Hexastore.add_ids h (t3 1 2 4));
      ignore (Hexastore.remove_ids h (t3 9 9 9));
      check_int "one validation per successful mutation" (before + 3)
        (Debug.validation_count ()))

(* ------------------------------------------------------------------ *)
(* Lint                                                                *)
(* ------------------------------------------------------------------ *)

(* Seeded sources are assembled from fragments so that the linter —
   which scans this repo's lib/, not test/ — could never be confused by
   this file, and so the clean-source checks below stay honest. *)
let bad_magic = "let f x = Obj." ^ "magic x\n"
let bad_printf = "let g () = Printf." ^ "printf \"%d\" 3\n"
let bad_catch = "let h () = try () with _ " ^ "-> ()\n"
let bad_catch_multiline = "let h () = try () with\n  _\n  " ^ "-> ()\n"
let bad_clock = "let t () = Unix." ^ "gettimeofday ()\n"
let bad_clock_sys = "let t () = Sys." ^ "time ()\n"

let count_rule vs = List.length vs

let test_lint_seeded_violations () =
  check_int "obj-magic" 1 (count_rule (C.Lint.scan_source ~path:"x.ml" bad_magic));
  check_int "printf" 1 (count_rule (C.Lint.scan_source ~path:"x.ml" bad_printf));
  check_int "catch-all" 1 (count_rule (C.Lint.scan_source ~path:"x.ml" bad_catch));
  check_int "catch-all across lines" 1
    (count_rule (C.Lint.scan_source ~path:"x.ml" bad_catch_multiline));
  check_int "all three content rules" 3
    (count_rule (C.Lint.scan_source ~path:"x.ml" (bad_magic ^ bad_printf ^ bad_catch)))

let test_lint_raw_clock () =
  check_int "raw gettimeofday" 1 (count_rule (C.Lint.scan_source ~path:"lib/core/x.ml" bad_clock));
  check_int "raw Sys clock" 1 (count_rule (C.Lint.scan_source ~path:"lib/core/x.ml" bad_clock_sys));
  (* The wrapping layer itself is exempt — that is where the clock lives. *)
  check_int "telemetry dir exempt" 0
    (count_rule (C.Lint.scan_source ~path:"lib/telemetry/clock.ml" bad_clock));
  (* Sys.time the token, not e.g. Sys.timestamp or My_sys.time. *)
  check_int "no false positives on longer names" 0
    (count_rule
       (C.Lint.scan_source ~path:"x.ml" ("let a = Sys." ^ "timestamp\nlet b = My_" ^ "sys.time\n")));
  check_int "clock in comment ignored" 0
    (count_rule (C.Lint.scan_source ~path:"x.ml" ("(* Unix." ^ "gettimeofday *)\nlet x = 1\n")))

let bad_probe = "let f v o = Sorted_ivec." ^ "mem v o\n"
let probe_waiver = "(* lint: " ^ "allow query-probe *)"

let test_lint_query_probe () =
  check_int "probe in query dir" 1
    (count_rule (C.Lint.scan_source ~path:"lib/query/x.ml" bad_probe));
  (* The rule is scoped: the same probe elsewhere is the normal API. *)
  check_int "probe outside query dir" 0
    (count_rule (C.Lint.scan_source ~path:"lib/core/x.ml" bad_probe));
  check_int "same-line waiver" 0
    (count_rule
       (C.Lint.scan_source ~path:"lib/query/x.ml"
          ("let f v o = Sorted_ivec." ^ "mem v o  " ^ probe_waiver ^ "\n")));
  check_int "line-above waiver" 0
    (count_rule
       (C.Lint.scan_source ~path:"lib/query/x.ml" (probe_waiver ^ "\n" ^ bad_probe)));
  check_int "waiver does not reach later lines" 1
    (count_rule
       (C.Lint.scan_source ~path:"lib/query/x.ml"
          (probe_waiver ^ "\nlet a = 1\n" ^ bad_probe)));
  check_int "probe in comment ignored" 0
    (count_rule
       (C.Lint.scan_source ~path:"lib/query/x.ml"
          ("(* Sorted_ivec." ^ "mem *)\nlet x = 1\n")))

let test_lint_clean_sources () =
  let clean =
    "let f x = x + 1\n"
    ^ "let g ppf = Format.fprintf ppf \"ok\"\n"
    ^ "let h () = try () with Not_found -> ()\n"
    ^ "let i () = try () with _e -> ()  (* named wildcard is allowed *)\n"
  in
  check_int "clean source" 0 (count_rule (C.Lint.scan_source ~path:"x.ml" clean));
  (* Occurrences inside comments and strings must not fire. *)
  let commented = "(* never use Obj." ^ "magic or Printf." ^ "printf or with _ " ^ "-> *)\nlet x = 1\n" in
  check_int "patterns in comments" 0 (count_rule (C.Lint.scan_source ~path:"x.ml" commented));
  let stringed = "let doc = \"Obj." ^ "magic with _ " ^ "->\"\n" in
  check_int "patterns in strings" 0 (count_rule (C.Lint.scan_source ~path:"x.ml" stringed))

let test_lint_missing_mli () =
  let dir = Filename.temp_file "lintdir" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let write name contents =
    let oc = open_out (Filename.concat dir name) in
    output_string oc contents;
    close_out oc
  in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      write "a.ml" "let x = 1\n";
      some_violation "ml without mli" (C.Lint.scan_dir dir);
      write "a.mli" "val x : int\n";
      no_violations "ml with mli" (C.Lint.scan_dir dir))

let test_lint_repo_tree_is_clean () =
  (* The gate the @lint alias runs, executed in-process on the real lib/
     tree (runtest executes in the build context where lib/ sources are
     not present, so locate them from the workspace root if available). *)
  let root =
    List.find_opt
      (fun d -> Sys.file_exists (Filename.concat d "lib"))
      [ "."; ".."; "../.."; "../../.." ]
  in
  match root with
  | None -> ()  (* sandboxed run without sources; the @lint alias covers it *)
  | Some r -> no_violations "repo lib/ tree" (C.Lint.scan_dir (Filename.concat r "lib"))

let () =
  Alcotest.run "check"
    [
      ( "invariant",
        [
          Alcotest.test_case "clean stores" `Quick test_store_clean;
          Alcotest.test_case "clean after deletes" `Quick test_store_clean_after_deletes;
          Alcotest.test_case "bulk-loaded LUBM store" `Quick test_store_lubm_bulk;
          Alcotest.test_case "detects total corruption" `Quick test_detects_total_corruption;
          Alcotest.test_case "detects bogus header" `Quick test_detects_bogus_header;
          Alcotest.test_case "detects unshared list" `Quick test_detects_unshared_list;
          Alcotest.test_case "dictionary bijectivity" `Quick test_dictionary_bijective;
          Alcotest.test_case "dataset coherence" `Quick test_dataset_coherent;
          Alcotest.test_case "snapshot round-trip" `Quick test_snapshot_roundtrip;
        ] );
      ( "model-checker",
        [
          Alcotest.test_case "reference model" `Quick test_model_basic;
          Alcotest.test_case "deterministic sequence" `Quick test_diff_deterministic;
          qt prop_differential;
          qt prop_differential_wide;
        ] );
      ( "delta",
        [
          Alcotest.test_case "buffered mutation semantics" `Quick test_delta_semantics;
          Alcotest.test_case "zero violations frozen mid-delta" `Quick test_delta_frozen_mid_delta;
          Alcotest.test_case "auto-flush thresholds" `Quick test_delta_auto_flush;
          Alcotest.test_case "detects buffer corruption" `Quick test_delta_detects_corruption;
          Alcotest.test_case "deterministic flush/compact sequence" `Quick
            test_delta_diff_deterministic;
          qt prop_delta_differential;
          qt prop_delta_differential_wide;
        ] );
      ( "debug-hooks",
        [
          Alcotest.test_case "off by default" `Quick test_debug_off_by_default;
          Alcotest.test_case "fire when enabled" `Quick test_debug_hooks_fire;
        ] );
      ( "lint",
        [
          Alcotest.test_case "seeded violations" `Quick test_lint_seeded_violations;
          Alcotest.test_case "raw clock" `Quick test_lint_raw_clock;
          Alcotest.test_case "query probe" `Quick test_lint_query_probe;
          Alcotest.test_case "clean sources" `Quick test_lint_clean_sources;
          Alcotest.test_case "missing mli" `Quick test_lint_missing_mli;
          Alcotest.test_case "repo tree clean" `Quick test_lint_repo_tree_is_clean;
        ] );
    ]
