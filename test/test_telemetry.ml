(* Tests for the PR-2 observability layer (lib/telemetry + the
   instrumentation it gates): the metrics registry, the disabled-mode
   zero-cost guarantee, the injectable clock, the span tracer, the JSON
   codec, EXPLAIN goldens on LUBM plans, and planner estimate accuracy
   (q-error) against exact execution counts. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

let ub = "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#"
let rdf_type = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

let sparql_prefix =
  "PREFIX ub: <" ^ ub ^ "> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "

let lubm_store =
  lazy
    (let cfg = Workloads.Lubm.config ~universities:1 ~departments_per_university:1 () in
     Hexa.Hexastore.of_triples (Workloads.Lubm.generate cfg))

let lubm_boxed () = Hexa.Store_sig.box_hexastore (Lazy.force lubm_store)

let parse text =
  (Query.Sparql.parse ~namespaces:(Rdf.Namespace.default ()) (sparql_prefix ^ text)).algebra

let with_events flag f =
  let saved = !Telemetry.Events.enabled in
  Telemetry.Events.enabled := flag;
  Fun.protect ~finally:(fun () -> Telemetry.Events.enabled := saved) f

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  let c = Telemetry.Metrics.counter "test.counters.a" in
  check_int "fresh counter is zero" 0 (Telemetry.Metrics.value c);
  Telemetry.with_enabled true (fun () ->
      Telemetry.Metrics.incr c;
      Telemetry.Metrics.incr c;
      Telemetry.Metrics.add c 40);
  check_int "incr and add accumulate" 42 (Telemetry.Metrics.value c);
  (* Registration is idempotent: same name, same cell. *)
  let c' = Telemetry.Metrics.counter "test.counters.a" in
  check_int "re-registration returns the same counter" 42 (Telemetry.Metrics.value c');
  check_bool "kind mismatch rejected" true
    (match Telemetry.Metrics.gauge "test.counters.a" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_gauges () =
  let g = Telemetry.Metrics.gauge "test.gauges.a" in
  Telemetry.with_enabled true (fun () ->
      Telemetry.Metrics.set g 1.5;
      Telemetry.Metrics.set g 2.5);
  check_float "last write wins" 2.5 (Telemetry.Metrics.gauge_value g)

let test_histograms () =
  let h = Telemetry.Metrics.histogram "test.histograms.a" in
  Telemetry.with_enabled true (fun () ->
      List.iter (Telemetry.Metrics.observe h) [ 1; 2; 3; 1000; 0 ]);
  check_int "count" 5 (Telemetry.Histogram.count h);
  check_int "sum" 1006 (Telemetry.Histogram.sum h);
  check_int "min" 0 (Option.get (Telemetry.Histogram.min_value h));
  check_int "max" 1000 (Option.get (Telemetry.Histogram.max_value h));
  check_float "mean" 201.2 (Telemetry.Histogram.mean h);
  let bucketed =
    Telemetry.Histogram.fold_buckets (fun acc ~le:_ ~count -> acc + count) 0 h
  in
  check_int "buckets hold every observation" 5 bucketed;
  Telemetry.Histogram.reset h;
  check_int "reset empties" 0 (Telemetry.Histogram.count h)

let test_snapshot_prefix () =
  let c1 = Telemetry.Metrics.counter "test.snap.one" in
  let c2 = Telemetry.Metrics.counter "test.snap.two" in
  ignore (Telemetry.Metrics.counter "test.other.three");
  Telemetry.with_enabled true (fun () ->
      Telemetry.Metrics.incr c1;
      Telemetry.Metrics.add c2 2);
  check_bool "prefix filters and sorts" true
    (let snap = Telemetry.Metrics.snapshot_counters ~prefix:"test.snap." () in
     snap = [ ("test.snap.one", 1); ("test.snap.two", 2) ]
     || (* other tests may have re-run and bumped further *)
     List.map fst snap = [ "test.snap.one"; "test.snap.two" ]);
  match Telemetry.Metrics.to_json () with
  | Telemetry.Json.Obj fields ->
      check_bool "to_json has the three sections" true
        (List.for_all (fun k -> List.mem_assoc k fields) [ "counters"; "gauges"; "histograms" ])
  | _ -> Alcotest.fail "Metrics.to_json did not return an object"

(* ------------------------------------------------------------------ *)
(* Disabled-mode guarantees                                            *)
(* ------------------------------------------------------------------ *)

let test_disabled_no_activity () =
  check_bool "telemetry starts disabled" false !Telemetry.enabled;
  let before = Telemetry.activity_count () in
  (* Exercise every instrumented layer: store probes, merge kernels,
     planner, executor. *)
  let boxed = lubm_boxed () in
  let q = parse "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?y . }" in
  check_bool "query ran" true (Query.Exec.count boxed q > 0);
  check_int "no hook mutated anything while disabled" before (Telemetry.activity_count ())

let test_disabled_counters_stay_zero () =
  let c = Telemetry.Metrics.counter "test.disabled.c" in
  let h = Telemetry.Metrics.histogram "test.disabled.h" in
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.add c 5;
  Telemetry.Metrics.observe h 7;
  ignore (Telemetry.Trace.with_span "test.disabled.span" (fun () -> 0));
  check_int "counter untouched" 0 (Telemetry.Metrics.value c);
  check_int "histogram untouched" 0 (Telemetry.Histogram.count h);
  check_bool "no span recorded" true
    (not (List.exists (fun s -> s.Telemetry.Trace.name = "test.disabled.span")
            (Telemetry.Trace.spans ())))

let test_disabled_zero_allocation () =
  let c = Telemetry.Metrics.counter "test.disabled.alloc" in
  let h = Telemetry.Metrics.histogram "test.disabled.alloc.h" in
  let nothing () = () in
  (* Warm up so any one-time allocation is done. *)
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.observe h 3;
  Telemetry.Trace.with_span "warm" nothing;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Telemetry.Metrics.incr c;
    Telemetry.Metrics.add c 2;
    Telemetry.Metrics.observe h 3;
    Telemetry.Trace.with_span "loop" nothing
  done;
  let after = Gc.minor_words () in
  check_float "disabled hooks allocate nothing" 0. (after -. before)

let test_enabled_hooks_fire () =
  let before = Telemetry.activity_count () in
  Telemetry.with_enabled true (fun () ->
      let boxed = lubm_boxed () in
      ignore (Query.Exec.count boxed (parse "SELECT ?x WHERE { ?x rdf:type ub:Course . }")));
  check_bool "hooks ran while enabled" true (Telemetry.activity_count () > before)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_injection () =
  Telemetry.Clock.with_source (Telemetry.Clock.fixed 5.) (fun () ->
      check_float "fixed" 5. (Telemetry.Clock.now ());
      check_float "fixed again" 5. (Telemetry.Clock.now ()));
  Telemetry.Clock.with_source (Telemetry.Clock.ticking ~start:1. ~step:0.5 ()) (fun () ->
      check_float "tick 1" 1. (Telemetry.Clock.now ());
      check_float "tick 2" 1.5 (Telemetry.Clock.now ());
      check_float "tick 3" 2. (Telemetry.Clock.now ()));
  (* Restored to the wall clock: two reads a real instant apart differ. *)
  let a = Telemetry.Clock.now () in
  check_bool "wall clock restored" true (a > 1e6)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_spans () =
  Telemetry.with_enabled true (fun () ->
      Telemetry.Trace.clear ();
      Telemetry.Clock.with_source (Telemetry.Clock.ticking ~start:0. ~step:1. ()) (fun () ->
          Telemetry.Trace.with_span "outer" (fun () ->
              Telemetry.Trace.with_span "inner" (fun () -> ()))));
  let spans = Telemetry.Trace.spans () in
  check_int "two spans" 2 (List.length spans);
  let inner = List.nth spans 0 and outer = List.nth spans 1 in
  check_string "inner completes first" "inner" inner.Telemetry.Trace.name;
  check_string "outer completes last" "outer" outer.Telemetry.Trace.name;
  check_int "inner depth" 1 inner.Telemetry.Trace.depth;
  check_int "outer depth" 0 outer.Telemetry.Trace.depth;
  (* Ticking clock: outer start=0, inner start=1, inner end=2, outer
     end=3 — so inner lasts 1 "second" and outer 3. *)
  check_float "inner duration" 1. inner.Telemetry.Trace.duration;
  check_float "outer duration" 3. outer.Telemetry.Trace.duration;
  Telemetry.Trace.clear ();
  check_int "clear empties" 0 (List.length (Telemetry.Trace.spans ()))

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Telemetry.Json.Obj
      [
        ("s", Telemetry.Json.String "a\"b\\c\n\t\x01é");
        ("i", Telemetry.Json.Int (-42));
        ("f", Telemetry.Json.Float 2.5);
        ("b", Telemetry.Json.Bool true);
        ("n", Telemetry.Json.Null);
        ("l", Telemetry.Json.List [ Telemetry.Json.Int 1; Telemetry.Json.Obj [] ]);
      ]
  in
  (match Telemetry.Json.of_string (Telemetry.Json.to_string doc) with
  | Ok doc' -> check_bool "round-trips" true (doc = doc')
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg);
  (match Telemetry.Json.of_string (Telemetry.Json.to_string ~indent:0 doc) with
  | Ok doc' -> check_bool "compact round-trips" true (doc = doc')
  | Error msg -> Alcotest.failf "compact round-trip failed: %s" msg);
  check_bool "trailing garbage rejected" true
    (Result.is_error (Telemetry.Json.of_string "{} x"));
  check_bool "unterminated rejected" true (Result.is_error (Telemetry.Json.of_string "[1, 2"));
  let nested = Telemetry.Json.Obj [ ("a", Telemetry.Json.Obj [ ("b", Telemetry.Json.Int 7) ]) ] in
  check_bool "path walks" true
    (match Telemetry.Json.path [ "a"; "b" ] nested with
    | Some v -> Telemetry.Json.to_float_opt v = Some 7.
    | None -> false)

(* ------------------------------------------------------------------ *)
(* JSON parser error paths                                             *)
(* ------------------------------------------------------------------ *)

let test_json_truncated () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "truncated %S rejected" s) true
        (Result.is_error (Telemetry.Json.of_string s)))
    [ ""; "{"; "{\"a\":"; "{\"a\": 1,"; "[1,"; "["; "\"abc"; "tru"; "fals"; "nul"; "-"; "1e" ]

let test_json_bad_escapes () =
  List.iter
    (fun s ->
      check_bool (Printf.sprintf "bad escape %S rejected" s) true
        (Result.is_error (Telemetry.Json.of_string s)))
    [ {|"\x"|}; {|"\u12"|}; {|"\uZZZZ"|}; {|"\|}; "\"a\nb\"" ]

let test_json_deep_nesting () =
  let nested depth = String.make depth '[' ^ String.make depth ']' in
  (match Telemetry.Json.of_string (nested 513) with
  | Error msg -> check_bool "default depth error names nesting" true
      (String.length msg > 0
      && Option.is_some
           (String.index_opt msg 'n' (* "nesting deeper than ..." *)))
  | Ok _ -> Alcotest.fail "513-deep document accepted at default max_depth");
  check_bool "512 deep passes at the default limit" true
    (Result.is_ok (Telemetry.Json.of_string (nested 512)));
  check_bool "shallow passes a tight limit" true
    (Result.is_ok (Telemetry.Json.of_string ~max_depth:10 (nested 10)));
  check_bool "tight limit rejects one past it" true
    (Result.is_error (Telemetry.Json.of_string ~max_depth:10 (nested 11)));
  (* Objects count toward the same depth budget as arrays. *)
  check_bool "deep objects rejected too" true
    (Result.is_error
       (Telemetry.Json.of_string ~max_depth:10
          (String.concat "" (List.init 11 (fun _ -> "{\"k\":"))
          ^ "null"
          ^ String.make 11 '}')))

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_events_ring () =
  with_events true (fun () ->
      Telemetry.Events.set_capacity 4;
      Fun.protect
        ~finally:(fun () -> Telemetry.Events.set_capacity 1024)
        (fun () ->
          check_int "resized" 4 (Telemetry.Events.capacity ());
          check_int "empty after resize" 0 (Telemetry.Events.recorded ());
          for i = 1 to 6 do
            Telemetry.Events.emit
              (Telemetry.Events.Query_start { label = Printf.sprintf "q%d" i })
          done;
          check_int "all emissions counted" 6 (Telemetry.Events.recorded ());
          check_int "overwrites counted as drops" 2 (Telemetry.Events.dropped ());
          let dump = Telemetry.Events.dump () in
          check_int "ring retains capacity" 4 (List.length dump);
          check_bool "oldest first, survivors are the newest" true
            (List.map (fun (e : Telemetry.Events.event) -> e.seq) dump = [ 2; 3; 4; 5 ]);
          (match (List.hd dump).Telemetry.Events.kind with
          | Telemetry.Events.Query_start { label } -> check_string "labels intact" "q3" label
          | _ -> Alcotest.fail "unexpected kind in dump");
          Telemetry.Events.clear ();
          check_int "clear empties" 0 (Telemetry.Events.recorded ());
          check_int "clear resets drops" 0 (Telemetry.Events.dropped ());
          check_int "dump empty after clear" 0 (List.length (Telemetry.Events.dump ()))))

let test_events_disabled () =
  with_events false (fun () ->
      let recorded = Telemetry.Events.recorded () in
      let activity = Telemetry.activity_count () in
      Telemetry.Events.emit (Telemetry.Events.Query_start { label = "silenced" });
      check_int "emit is a no-op when disabled" recorded (Telemetry.Events.recorded ());
      check_int "recorder never touches note_activity" activity (Telemetry.activity_count ()))

let test_events_always_on () =
  (* The recorder is the *always-on* layer: it records even while the
     telemetry master gate is off. *)
  check_bool "telemetry master gate is off" false !Telemetry.enabled;
  with_events true (fun () ->
      let before = Telemetry.Events.recorded () in
      Telemetry.Events.emit (Telemetry.Events.Delta_compact { pending = 3 });
      check_int "recorded with telemetry disabled" (before + 1) (Telemetry.Events.recorded ()))

let test_events_instrumentation () =
  with_events true (fun () ->
      Telemetry.Events.clear ();
      let boxed = lubm_boxed () in
      let q = parse "SELECT ?x WHERE { ?x rdf:type ub:Course . }" in
      ignore (Query.Exec.count boxed q);
      let kinds =
        List.map
          (fun (e : Telemetry.Events.event) -> Telemetry.Events.kind_name e.kind)
          (Telemetry.Events.dump ())
      in
      check_bool "query boundaries and plan choice narrated" true
        (kinds = [ "query.start"; "plan.choice"; "query.end" ]);
      (match (List.nth (Telemetry.Events.dump ()) 2).Telemetry.Events.kind with
      | Telemetry.Events.Query_end { label; rows } ->
          check_string "label names root op and pattern count" "project/1tp" label;
          check_bool "row count captured" true (rows > 0)
      | _ -> Alcotest.fail "last event is not query.end");
      (* Delta flushes narrate too. *)
      Telemetry.Events.clear ();
      let dl = Hexa.Delta.create () in
      let dict = Hexa.Delta.dict dl in
      ignore
        (Hexa.Delta.add_ids dl
           (Dict.Term_dict.encode_triple dict
              (Rdf.Triple.make
                 (Rdf.Term.iri "http://example.org/s")
                 (Rdf.Term.iri "http://example.org/p")
                 (Rdf.Term.iri "http://example.org/o"))));
      Hexa.Delta.flush dl;
      let flushes =
        List.filter_map
          (fun (e : Telemetry.Events.event) ->
            match e.kind with
            | Telemetry.Events.Delta_flush { pending; rebuild = _; auto } ->
                Some (pending, auto)
            | _ -> None)
          (Telemetry.Events.dump ())
      in
      check_bool "explicit flush recorded with its backlog" true (flushes = [ (1, false) ]))

let test_events_json_roundtrip () =
  with_events true (fun () ->
      Telemetry.Events.clear ();
      Telemetry.Events.emit
        (Telemetry.Events.Slow_query { label = "q"; wall_s = 0.25; plan = "project\n└─ bgp" });
      Telemetry.Events.emit (Telemetry.Events.Snapshot_save { path = "/tmp/x.hx"; triples = 9 });
      let json = Telemetry.Events.to_json () in
      let s = Telemetry.Json.to_string json in
      match Telemetry.Json.of_string s with
      | Error msg -> Alcotest.failf "events JSON does not parse: %s" msg
      | Ok j ->
          check_string "stable re-encoding" s (Telemetry.Json.to_string j);
          check_bool "accounting fields present" true
            (List.for_all
               (fun k -> Option.is_some (Telemetry.Json.member k j))
               [ "capacity"; "recorded"; "dropped"; "events" ]);
          (match Telemetry.Json.member "events" j with
          | Some (Telemetry.Json.List evs) -> check_int "both events exported" 2 (List.length evs)
          | _ -> Alcotest.fail "events is not a list"))

(* ------------------------------------------------------------------ *)
(* Per-query profiler and the slow-query log                           *)
(* ------------------------------------------------------------------ *)

let test_profile_diff () =
  Telemetry.with_enabled true (fun () ->
      let c = Telemetry.Metrics.counter "test.profile.steps" in
      let x, d =
        Telemetry.Profile.profiled (fun () ->
            Telemetry.Metrics.incr c;
            Telemetry.Metrics.add c 2;
            (* Allocate something visible to the GC accounting. *)
            List.init 1000 (fun i -> i))
      in
      check_int "thunk result passed through" 1000 (List.length x);
      check_int "counter movement attributed" 3
        (Telemetry.Profile.counter_delta d "test.profile.steps");
      check_int "absent counters read as zero" 0
        (Telemetry.Profile.counter_delta d "test.profile.absent");
      check_bool "prefix total covers the movement" true
        (Telemetry.Profile.counter_total ~prefix:"test.profile." d >= 3);
      check_bool "allocation observed" true (d.Telemetry.Profile.alloc_words > 0.);
      check_bool "wall time non-negative" true (d.Telemetry.Profile.wall_s >= 0.);
      (* Idle diffs are empty: nothing moved, nothing reported. *)
      let _, quiet = Telemetry.Profile.profiled (fun () -> ()) in
      check_int "quiet thunk has no counter deltas" 0
        (List.length quiet.Telemetry.Profile.counters))

let test_slow_query_log () =
  Telemetry.Profile.clear_slow_log ();
  let saved = Telemetry.Profile.slow_threshold_s () in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Profile.set_threshold_s saved;
      Telemetry.Profile.clear_slow_log ())
    (fun () ->
      (* Above-threshold work is not logged and its plan never rendered. *)
      Telemetry.Profile.set_threshold_s 3600.;
      let forced_fast = ref false in
      let _, d = Telemetry.Profile.profiled (fun () -> Sys.opaque_identity 1) in
      Telemetry.Profile.note ~label:"fast"
        ~plan:(fun () ->
          forced_fast := true;
          "plan")
        d;
      check_int "fast query not logged" 0 (Telemetry.Profile.slow_count ());
      check_bool "fast query's plan never forced" false !forced_fast;
      (* Zero threshold logs everything and emits into the ring. *)
      Telemetry.Profile.set_threshold_s 0.;
      with_events true (fun () ->
          Telemetry.Events.clear ();
          let _, d = Telemetry.Profile.profiled (fun () -> Sys.opaque_identity 1) in
          Telemetry.Profile.note ~label:"slow" ~plan:(fun () -> "project\n└─ bgp") d;
          check_int "slow query logged" 1 (Telemetry.Profile.slow_count ());
          (match Telemetry.Profile.slow_queries () with
          | [ sq ] ->
              check_string "label retained" "slow" sq.Telemetry.Profile.sq_label;
              check_string "analyze tree retained" "project\n└─ bgp"
                sq.Telemetry.Profile.sq_plan
          | l -> Alcotest.failf "expected 1 slow entry, got %d" (List.length l));
          check_bool "threshold crossing lands in the flight recorder" true
            (List.exists
               (fun (e : Telemetry.Events.event) ->
                 match e.kind with
                 | Telemetry.Events.Slow_query { label; plan; _ } ->
                     String.equal label "slow" && String.equal plan "project\n└─ bgp"
                 | _ -> false)
               (Telemetry.Events.dump ()));
          (* The JSON view parses and carries the threshold. *)
          let s = Telemetry.Json.to_string (Telemetry.Profile.slow_log_to_json ()) in
          match Telemetry.Json.of_string s with
          | Error msg -> Alcotest.failf "slow log JSON does not parse: %s" msg
          | Ok j ->
              check_bool "total exported" true
                (match Telemetry.Json.member "total" j with
                | Some (Telemetry.Json.Int 1) -> true
                | _ -> false)))

let test_slow_log_rotation () =
  Telemetry.Profile.clear_slow_log ();
  let saved = Telemetry.Profile.slow_threshold_s () in
  Fun.protect
    ~finally:(fun () ->
      Telemetry.Profile.set_threshold_s saved;
      Telemetry.Profile.clear_slow_log ())
    (fun () ->
      Telemetry.Profile.set_threshold_s 0.;
      with_events false (fun () ->
          for i = 1 to Telemetry.Profile.max_slow_entries + 10 do
            let _, d = Telemetry.Profile.profiled (fun () -> Sys.opaque_identity i) in
            Telemetry.Profile.note ~label:(Printf.sprintf "q%d" i) ~plan:(fun () -> "") d
          done);
      check_int "total counts rotated-out entries too"
        (Telemetry.Profile.max_slow_entries + 10)
        (Telemetry.Profile.slow_count ());
      let entries = Telemetry.Profile.slow_queries () in
      check_int "retention is bounded" Telemetry.Profile.max_slow_entries (List.length entries);
      check_string "oldest retained entry is the first survivor" "q11"
        (List.hd entries).Telemetry.Profile.sq_label)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_histogram_quantiles () =
  let h = Telemetry.Histogram.make "test.quantiles" in
  check_float "empty histogram reads zero" 0. (Telemetry.Histogram.quantile h 0.5);
  Telemetry.with_enabled true (fun () ->
      for i = 1 to 100 do
        Telemetry.Histogram.observe h i
      done);
  let q50 = Telemetry.Histogram.quantile h 0.5 in
  let q95 = Telemetry.Histogram.quantile h 0.95 in
  let q99 = Telemetry.Histogram.quantile h 0.99 in
  check_bool "p50 in the middle of 1..100" true (q50 >= 25. && q50 <= 75.);
  check_bool "monotone in q" true (q50 <= q95 && q95 <= q99);
  check_float "clamped below to the observed min" 1. (Telemetry.Histogram.quantile h 0.);
  check_float "clamped above to the observed max" 100. (Telemetry.Histogram.quantile h 1.);
  check_float "q below 0 clamps" 1. (Telemetry.Histogram.quantile h (-1.));
  check_float "q above 1 clamps" 100. (Telemetry.Histogram.quantile h 2.)

let test_chrome_trace () =
  Telemetry.with_enabled true (fun () ->
      Telemetry.Trace.clear ();
      Telemetry.Clock.with_source (Telemetry.Clock.ticking ~start:0. ~step:1. ()) (fun () ->
          Telemetry.Trace.with_span "outer" (fun () ->
              Telemetry.Trace.with_span "inner" (fun () -> ())));
      let json = Telemetry.Export.chrome_trace () in
      let s = Telemetry.Json.to_string json in
      (match Telemetry.Json.of_string s with
      | Error msg -> Alcotest.failf "chrome trace does not parse: %s" msg
      | Ok j -> check_string "stable re-encoding" s (Telemetry.Json.to_string j));
      match Telemetry.Json.member "traceEvents" json with
      | Some (Telemetry.Json.List [ meta; ev_inner; ev_outer ]) ->
          (* Single-domain dump: one lane-name metadata event, then the
             two spans on the historical tid=1 lane. *)
          (match Telemetry.Json.member "ph" meta with
          | Some (Telemetry.Json.String "M") -> ()
          | _ -> Alcotest.fail "first trace event is not thread metadata");
          let str k ev =
            match Telemetry.Json.member k ev with
            | Some (Telemetry.Json.String s) -> s
            | _ -> Alcotest.failf "missing string field %s" k
          in
          let num k ev =
            match Option.bind (Telemetry.Json.member k ev) Telemetry.Json.to_float_opt with
            | Some f -> f
            | None -> Alcotest.failf "missing numeric field %s" k
          in
          check_string "complete events" "X" (str "ph" ev_inner);
          check_string "category" "hexastore" (str "cat" ev_outer);
          check_string "span name" "inner" (str "name" ev_inner);
          (* Ticking clock: outer [0,3], inner [1,2] — microsecond units. *)
          check_float "inner ts" 1e6 (num "ts" ev_inner);
          check_float "inner dur" 1e6 (num "dur" ev_inner);
          check_float "outer dur" 3e6 (num "dur" ev_outer);
          check_float "depth in args" 1.
            (match Telemetry.Json.path [ "args"; "depth" ] ev_inner with
            | Some v -> Option.value ~default:(-1.) (Telemetry.Json.to_float_opt v)
            | None -> -1.)
      | _ -> Alcotest.fail "traceEvents is not a metadata + 2-span list")

let test_prometheus_exposition () =
  Telemetry.with_enabled true (fun () ->
      let c = Telemetry.Metrics.counter "test.prom.hits" in
      let h = Telemetry.Metrics.histogram "test.prom.sizes" in
      Telemetry.Metrics.add c 7;
      for i = 1 to 100 do
        Telemetry.Metrics.observe h i
      done);
  let text = Telemetry.Export.prometheus () in
  let lines = String.split_on_char '\n' text in
  let has_line pred = List.exists pred lines in
  let starts p l = String.length l >= String.length p && String.sub l 0 (String.length p) = p in
  check_string "dots sanitised" "test_prom_hits" (Telemetry.Export.metric_name "test.prom.hits");
  check_bool "counter TYPE line" true (has_line (( = ) "# TYPE test_prom_hits counter"));
  check_bool "counter sample" true (has_line (starts "test_prom_hits 7"));
  check_bool "histogram TYPE line" true (has_line (( = ) "# TYPE test_prom_sizes histogram"));
  check_bool "+Inf bucket closes the series" true
    (has_line (starts "test_prom_sizes_bucket{le=\"+Inf\"} 100"));
  check_bool "sum and count" true
    (has_line (starts "test_prom_sizes_sum 5050") && has_line (starts "test_prom_sizes_count 100"));
  check_bool "quantile companion family" true
    (List.for_all
       (fun q -> has_line (starts (Printf.sprintf "test_prom_sizes_quantile{quantile=\"%s\"}" q)))
       [ "0.5"; "0.95"; "0.99" ]);
  check_bool "ring accounting synthesised" true
    (has_line (starts "telemetry_events_recorded ")
    && has_line (starts "telemetry_events_dropped ")
    && has_line (starts "telemetry_events_capacity "));
  (* Cumulative buckets: counts along each _bucket series never decrease. *)
  let bucket_counts =
    List.filter_map
      (fun l ->
        if starts "test_prom_sizes_bucket{" l then
          String.rindex_opt l ' '
          |> Option.map (fun i -> float_of_string (String.sub l (i + 1) (String.length l - i - 1)))
        else None)
      lines
  in
  check_bool "buckets are cumulative" true
    (bucket_counts <> [] && List.sort compare bucket_counts = bucket_counts);
  (* Every sample line is "name[{labels}] value" with a finite value. *)
  List.iter
    (fun l ->
      if l <> "" && not (starts "# " l) then
        match String.rindex_opt l ' ' with
        | None -> Alcotest.failf "malformed sample line: %s" l
        | Some i -> (
            match float_of_string_opt (String.sub l (i + 1) (String.length l - i - 1)) with
            | Some _ -> ()
            | None -> Alcotest.failf "non-numeric sample value: %s" l))
    lines

let test_prometheus_empty_histogram () =
  ignore (Telemetry.Metrics.histogram "test.prom.empty");
  let lines = String.split_on_char '\n' (Telemetry.Export.prometheus ()) in
  let starts p l = String.length l >= String.length p && String.sub l 0 (String.length p) = p in
  check_bool "TYPE line still declared" true
    (List.exists (( = ) "# TYPE test_prom_empty histogram") lines);
  check_bool "+Inf bucket closes an empty series at zero" true
    (List.exists (starts "test_prom_empty_bucket{le=\"+Inf\"} 0") lines);
  check_bool "no quantile estimates without observations" false
    (List.exists (starts "test_prom_empty_quantile") lines)

let test_chrome_trace_escaping () =
  Telemetry.with_enabled true (fun () ->
      Telemetry.Trace.clear ();
      Telemetry.Trace.with_span "bad \"name\" \\lane\n\ttab \x01ctl" (fun () -> ());
      let s = Telemetry.Json.to_string (Telemetry.Export.chrome_trace ()) in
      match Telemetry.Json.of_string s with
      | Error msg -> Alcotest.failf "hostile span name broke the trace: %s" msg
      | Ok j -> check_string "stable re-encoding" s (Telemetry.Json.to_string j))

let test_cross_domain_parenting () =
  Telemetry.with_enabled true (fun () ->
      Telemetry.Trace.clear ();
      Telemetry.Trace.with_span_h "query" (fun h ->
          Domain.join
            (Domain.spawn (fun () ->
                 Telemetry.Trace.with_span ~parent:h "worker" (fun () -> ()))));
      let spans = Telemetry.Trace.spans () in
      let find name = List.find (fun (s : Telemetry.Trace.span) -> s.name = name) spans in
      let q = find "query" and w = find "worker" in
      check_int "worker depth is one under the query" (q.depth + 1) w.depth;
      check_bool "worker parent is the query span" true (w.parent = Some q.id);
      check_bool "spans ran on distinct domains" true (q.dom <> w.dom);
      (* Chrome rendering: each domain gets its own lane, announced by a
         metadata event, with stable 1-based tids in domain-id order. *)
      match Telemetry.Json.member "traceEvents" (Telemetry.Export.chrome_trace ()) with
      | Some (Telemetry.Json.List evs) ->
          let is_meta ev =
            match Telemetry.Json.member "ph" ev with
            | Some (Telemetry.Json.String "M") -> true
            | _ -> false
          in
          let metas, span_evs = List.partition is_meta evs in
          check_int "one lane-name event per domain" 2 (List.length metas);
          let tid ev =
            match Option.bind (Telemetry.Json.member "tid" ev) Telemetry.Json.to_float_opt with
            | Some f -> int_of_float f
            | None -> -1
          in
          check_bool "per-domain lanes are tids 1 and 2" true
            (List.sort_uniq compare (List.map tid span_evs) = [ 1; 2 ])
      | _ -> Alcotest.fail "no traceEvents")

let test_events_dom_tag () =
  with_events true (fun () ->
      Telemetry.Events.clear ();
      Telemetry.Events.emit (Telemetry.Events.Query_start { label = "here" });
      Domain.join
        (Domain.spawn (fun () ->
             Telemetry.Events.emit (Telemetry.Events.Query_start { label = "there" })));
      match Telemetry.Events.dump () with
      | [ a; b ] ->
          check_int "local event tagged with the emitting domain"
            (Domain.self () :> int)
            a.Telemetry.Events.dom;
          check_bool "spawned domain's event tagged differently" true
            (b.Telemetry.Events.dom <> a.Telemetry.Events.dom);
          check_bool "dom is serialised" true
            (Telemetry.Json.member "dom" (Telemetry.Events.event_to_json b) <> None)
      | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs))

let test_trace_dropped_counter () =
  Telemetry.with_enabled true (fun () ->
      Telemetry.Trace.clear ();
      let c = Telemetry.Metrics.counter "telemetry.trace.dropped" in
      let before = Telemetry.Metrics.value c in
      for _ = 1 to 8192 + 5 do
        Telemetry.Trace.with_span "overflow" (fun () -> ())
      done;
      check_int "buffer-full spans counted locally" 5 (Telemetry.Trace.dropped ());
      check_int "and mirrored into the registry" (before + 5) (Telemetry.Metrics.value c);
      Telemetry.Trace.clear ())

(* ------------------------------------------------------------------ *)
(* Encoder round-trips (qcheck)                                        *)
(* ------------------------------------------------------------------ *)

(* Stable re-encoding is the right property for printed JSON: parsing a
   printed float may legitimately reconstruct an Int (e.g. "2"), but the
   re-printed text must be identical. *)
let reencodes_stably json =
  let s = Telemetry.Json.to_string json in
  match Telemetry.Json.of_string s with
  | Ok j -> String.equal s (Telemetry.Json.to_string j)
  | Error msg -> QCheck.Test.fail_reportf "printed JSON does not parse: %s\n%s" msg s

let gen_json =
  QCheck.Gen.(
    sized_size (int_bound 3) (fix (fun self n ->
        let leaf =
          oneof
            [
              map (fun i -> Telemetry.Json.Int i) small_signed_int;
              map (fun f -> Telemetry.Json.Float f) (float_bound_exclusive 1000.);
              map (fun s -> Telemetry.Json.String s) string_printable;
              map (fun b -> Telemetry.Json.Bool b) bool;
              return Telemetry.Json.Null;
            ]
        in
        if n = 0 then leaf
        else
          oneof
            [
              leaf;
              map (fun l -> Telemetry.Json.List l) (list_size (int_bound 4) (self (n - 1)));
              map
                (fun kvs -> Telemetry.Json.Obj kvs)
                (list_size (int_bound 4) (pair string_printable (self (n - 1))));
            ])))

let qcheck_json_reencode =
  QCheck.Test.make ~name:"arbitrary Json.t re-encodes stably" ~count:500
    (QCheck.make ~print:(fun j -> Telemetry.Json.to_string ~indent:2 j) gen_json)
    reencodes_stably

let gen_event_kind =
  QCheck.Gen.(
    let s = string_printable in
    oneof
      [
        map (fun label -> Telemetry.Events.Query_start { label }) s;
        map2 (fun label rows -> Telemetry.Events.Query_end { label; rows }) s small_nat;
        map2 (fun label detail -> Telemetry.Events.Plan_choice { label; detail }) s s;
        map3
          (fun pending rebuild auto -> Telemetry.Events.Delta_flush { pending; rebuild; auto })
          small_nat bool bool;
        map (fun pending -> Telemetry.Events.Delta_compact { pending }) small_nat;
        map2 (fun path triples -> Telemetry.Events.Snapshot_save { path; triples }) s small_nat;
        map2 (fun path triples -> Telemetry.Events.Snapshot_load { path; triples }) s small_nat;
        map3
          (fun label wall_s plan -> Telemetry.Events.Slow_query { label; wall_s; plan })
          s (float_bound_exclusive 10.) s;
        map3
          (fun label planned (achieved, width) ->
            Telemetry.Events.Par_fanout { label; planned; achieved; width })
          s small_nat
          (pair small_nat (int_bound 64));
      ])

let gen_event =
  QCheck.Gen.(
    map3
      (fun seq (at, dom) kind -> { Telemetry.Events.seq; at; dom; kind })
      small_nat
      (pair (float_bound_exclusive 1e6) (int_bound 8))
      gen_event_kind)

let qcheck_event_reencode =
  QCheck.Test.make ~name:"flight-recorder events re-encode stably" ~count:500
    (QCheck.make
       ~print:(fun e -> Telemetry.Json.to_string ~indent:2 (Telemetry.Events.event_to_json e))
       gen_event)
    (fun e -> reencodes_stably (Telemetry.Events.event_to_json e))

let qcheck_span_reencode =
  QCheck.Test.make ~name:"trace spans re-encode stably as Chrome events" ~count:500
    (QCheck.make
       QCheck.Gen.(
         map3
           (fun name (start, duration) (depth, id, parent, dom) ->
             { Telemetry.Trace.name; start; duration; depth; id; parent; dom })
           string_printable
           (pair (float_bound_exclusive 1e9) (float_bound_exclusive 10.))
           (map3
              (fun depth (id, dom) parent -> (depth, 1 + id, parent, dom))
              (int_bound 12)
              (pair small_nat (int_bound 8))
              (oneof [ return None; map (fun p -> Some (1 + p)) small_nat ]))))
    (fun sp -> reencodes_stably (Telemetry.Export.span_to_trace_event sp))

let qt = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* EXPLAIN goldens (LUBM, deterministic seed 42)                       *)
(* ------------------------------------------------------------------ *)

let render plan = Format.asprintf "%a" Query.Exec.pp_explain plan

let test_explain_golden_single () =
  let plan = Query.Exec.explain (lubm_boxed ())
      (parse "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . }")
  in
  let expected =
    "project [?x]\n"
    ^ "└─ bgp 1 patterns\n"
    ^ "   └─ scan ?x <" ^ rdf_type ^ "> <" ^ ub
    ^ "GraduateStudent> . index=pos strategy=scan  (est=96 sel=2.53e-02)"
  in
  check_string "single-pattern plan" expected (render plan)

let test_explain_golden_repr () =
  (* The same plan over a compressed store carries a repr= annotation on
     its scan node (raw stores stay unannotated, so the goldens above
     double as the negative case). *)
  let compressed =
    let cfg = Workloads.Lubm.config ~universities:1 ~departments_per_university:1 () in
    let h = Hexa.Hexastore.create ~repr:Vectors.Sorted_ivec.Packed () in
    List.iter
      (fun tr -> ignore (Hexa.Hexastore.add h tr))
      (Workloads.Lubm.generate cfg);
    Hexa.Hexastore.compress h;
    Hexa.Store_sig.box_hexastore h
  in
  let plan =
    Query.Exec.explain compressed
      (parse "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . }")
  in
  let expected =
    "project [?x]\n"
    ^ "└─ bgp 1 patterns\n"
    ^ "   └─ scan ?x <" ^ rdf_type ^ "> <" ^ ub
    ^ "GraduateStudent> . index=pos strategy=scan repr=packed  (est=96 sel=2.53e-02)"
  in
  check_string "compressed-store plan" expected (render plan)

let test_explain_golden_hash () =
  (* The third step shares only ?x while the pipeline streams sorted on
     ?y (established by the FullProfessor scan), so the planner must
     fall back from merge to a hash join there. *)
  let plan =
    Query.Exec.explain (lubm_boxed ())
      (parse
         "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?y . ?y rdf:type \
          ub:FullProfessor . }")
  in
  let expected =
    "project [?x ?y]\n"
    ^ "└─ bgp 3 patterns, joins: 1 merge + 1 hash\n"
    ^ "   ├─ scan ?y <" ^ rdf_type ^ "> <" ^ ub
    ^ "FullProfessor> . index=pos strategy=scan  (est=7 sel=1.84e-03)\n"
    ^ "   ├─ scan ?x <" ^ ub ^ "advisor> ?y . index=pos strategy=merge(?y)  (est=96 sel=2.53e-02)\n"
    ^ "   └─ scan ?x <" ^ rdf_type ^ "> <" ^ ub
    ^ "GraduateStudent> . index=spo strategy=hash(?x)  (est=96 sel=2.53e-02)"
  in
  check_string "hash-join plan" expected (render plan)

let test_explain_golden_analyze () =
  (* A ticking clock makes every ANALYZE timing exactly one step
     (0.5 ms); row counts are exact, so the whole tree is a golden.  The
     flight recorder is silenced: its emissions also read the injectable
     clock and would consume ticks inside the measured regions. *)
  let q =
    parse
      "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?y . ?y rdf:type \
       ub:FullProfessor . }"
  in
  let plan =
    with_events false (fun () ->
        Telemetry.Clock.with_source (Telemetry.Clock.ticking ~start:0. ~step:0.0005 ()) (fun () ->
            Query.Exec.explain ~analyze:true (lubm_boxed ()) q))
  in
  let expected =
    "project [?x ?y]  rows=23 time=0.500ms\n"
    ^ "└─ bgp 3 patterns, joins: 1 merge + 1 hash  rows=23 time=0.500ms\n"
    ^ "   ├─ scan ?y <" ^ rdf_type ^ "> <" ^ ub
    ^ "FullProfessor> . index=pos strategy=scan  (est=7 sel=1.84e-03)  rows=7 time=0.500ms\n"
    ^ "   ├─ scan ?x <" ^ ub ^ "advisor> ?y . index=pos strategy=merge(?y)  (est=96 \
       sel=2.53e-02)  rows=23 time=0.500ms\n"
    ^ "   └─ scan ?x <" ^ rdf_type ^ "> <" ^ ub
    ^ "GraduateStudent> . index=spo strategy=hash(?x)  (est=96 sel=2.53e-02)  rows=23 \
       time=0.500ms"
  in
  check_string "3-pattern ANALYZE plan" expected (render plan)

let test_explain_analyze_matches_count () =
  (* Acceptance: ANALYZE row counts agree with Exec.count. *)
  let boxed = lubm_boxed () in
  List.iter
    (fun text ->
      let q = parse text in
      let plan = Query.Exec.explain ~analyze:true boxed q in
      check_int ("root rows = count for " ^ text) (Query.Exec.count boxed q)
        (Option.get plan.Query.Exec.actual_rows))
    [
      "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . }";
      "SELECT ?x ?c WHERE { ?x ub:takesCourse ?c . ?x rdf:type ub:GraduateStudent . }";
      "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?y . ?y rdf:type \
       ub:FullProfessor . }";
    ]

let test_explain_json_shape () =
  let plan =
    Query.Exec.explain (lubm_boxed ()) (parse "SELECT ?x WHERE { ?x rdf:type ub:Course . }")
  in
  let json = Query.Exec.explain_to_json plan in
  check_bool "op at root" true
    (match Telemetry.Json.member "op" json with
    | Some (Telemetry.Json.String "project") -> true
    | _ -> false);
  (* Encode and re-parse: the EXPLAIN export must stay within what the
     codec round-trips.  Floats carry 12 significant digits through the
     encoder, so compare the stable re-encoding, not the values. *)
  match Telemetry.Json.of_string (Telemetry.Json.to_string json) with
  | Ok json' ->
      check_string "explain JSON re-encodes identically" (Telemetry.Json.to_string json)
        (Telemetry.Json.to_string json')
  | Error msg -> Alcotest.failf "explain JSON failed to parse: %s" msg

(* ------------------------------------------------------------------ *)
(* Planner accuracy (q-error)                                          *)
(* ------------------------------------------------------------------ *)

let test_selectivity_exact_for_patterns () =
  (* The planner's per-pattern inputs are exact counts, not sampled
     estimates: Stats.selectivity × size must equal Exec.count on every
     single-pattern BGP (q-error exactly 1). *)
  let h = Lazy.force lubm_store in
  let boxed = lubm_boxed () in
  let dict = Hexa.Hexastore.dict h in
  let n = Hexa.Hexastore.size h in
  List.iter
    (fun text ->
      match parse text with
      | Query.Algebra.Project (_, Query.Algebra.Bgp [ tp ]) as q ->
          let pat_of = function
            | Query.Algebra.Var _ -> Some None
            | Query.Algebra.Term t -> (
                match Dict.Term_dict.find_term dict t with
                | None -> None
                | Some id -> Some (Some id))
          in
          (match (pat_of tp.Query.Algebra.s, pat_of tp.Query.Algebra.p, pat_of tp.Query.Algebra.o)
          with
          | Some s, Some p, Some o ->
              let sel = Hexa.Stats.selectivity h { Hexa.Pattern.s; p; o } in
              let estimated = int_of_float (Float.round (sel *. float_of_int n)) in
              check_int ("selectivity exact for " ^ text) (Query.Exec.count boxed q) estimated
          | _ -> Alcotest.failf "vocabulary missing for %s" text)
      | _ -> Alcotest.failf "not a single-pattern query: %s" text)
    [
      "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . }";
      "SELECT ?x WHERE { ?x rdf:type ub:FullProfessor . }";
      "SELECT ?x WHERE { ?x ub:advisor ?y . }";
      "SELECT ?x WHERE { ?x ub:takesCourse ?c . }";
    ]

let test_join_q_error_within_order_of_magnitude () =
  (* For multi-pattern queries the planner still uses the standalone
     per-pattern estimate at each step; EXPLAIN ANALYZE gives the rows
     each step actually produced.  Record the q-error of every scan and
     assert it stays within one order of magnitude on the LUBM queries
     (the store's exact per-pattern counts keep it tight). *)
  let boxed = lubm_boxed () in
  let q_errors = ref [] in
  let rec walk (node : Query.Exec.explain_node) =
    (match (node.op, node.estimate, node.actual_rows) with
    | "scan", Some est, Some rows when est > 0 && rows > 0 ->
        let q_err = Float.max (float_of_int est /. float_of_int rows)
            (float_of_int rows /. float_of_int est)
        in
        q_errors := (node.detail, q_err) :: !q_errors
    | _ -> ());
    List.iter walk node.children
  in
  List.iter
    (fun text -> walk (Query.Exec.explain ~analyze:true boxed (parse text)))
    [
      "SELECT ?x ?c WHERE { ?x ub:takesCourse ?c . ?x rdf:type ub:GraduateStudent . }";
      "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?y . ?y rdf:type \
       ub:FullProfessor . }";
      "SELECT ?x ?d WHERE { ?x ub:worksFor ?d . ?x rdf:type ub:FullProfessor . }";
    ]
  ;
  check_bool "collected several scans" true (List.length !q_errors >= 6);
  List.iter
    (fun (detail, q_err) ->
      Format.printf "q-error %.2f  %s@." q_err detail;
      if q_err > 10. then
        Alcotest.failf "q-error %.2f exceeds one order of magnitude for %s" q_err detail)
    (List.rev !q_errors)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "snapshot and json" `Quick test_snapshot_prefix;
        ] );
      ( "disabled-mode",
        [
          Alcotest.test_case "no activity" `Quick test_disabled_no_activity;
          Alcotest.test_case "counters stay zero" `Quick test_disabled_counters_stay_zero;
          Alcotest.test_case "zero allocation" `Quick test_disabled_zero_allocation;
          Alcotest.test_case "hooks fire when enabled" `Quick test_enabled_hooks_fire;
        ] );
      ("clock", [ Alcotest.test_case "injection" `Quick test_clock_injection ]);
      ( "trace",
        [
          Alcotest.test_case "spans" `Quick test_trace_spans;
          Alcotest.test_case "dropped counter" `Quick test_trace_dropped_counter;
        ] );
      ( "json",
        [
          Alcotest.test_case "round-trip" `Quick test_json_roundtrip;
          Alcotest.test_case "truncated input" `Quick test_json_truncated;
          Alcotest.test_case "bad escapes" `Quick test_json_bad_escapes;
          Alcotest.test_case "deep nesting" `Quick test_json_deep_nesting;
          qt qcheck_json_reencode;
        ] );
      ( "events",
        [
          Alcotest.test_case "ring wrap and drops" `Quick test_events_ring;
          Alcotest.test_case "disabled gate" `Quick test_events_disabled;
          Alcotest.test_case "always-on" `Quick test_events_always_on;
          Alcotest.test_case "query and delta narration" `Quick test_events_instrumentation;
          Alcotest.test_case "json round-trip" `Quick test_events_json_roundtrip;
          Alcotest.test_case "domain tagging" `Quick test_events_dom_tag;
          qt qcheck_event_reencode;
        ] );
      ( "profile",
        [
          Alcotest.test_case "diff attribution" `Quick test_profile_diff;
          Alcotest.test_case "slow-query log" `Quick test_slow_query_log;
          Alcotest.test_case "slow-log rotation" `Quick test_slow_log_rotation;
        ] );
      ( "export",
        [
          Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
          Alcotest.test_case "chrome trace" `Quick test_chrome_trace;
          Alcotest.test_case "chrome trace escaping" `Quick test_chrome_trace_escaping;
          Alcotest.test_case "cross-domain parenting and lanes" `Quick
            test_cross_domain_parenting;
          Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
          Alcotest.test_case "prometheus empty histogram" `Quick
            test_prometheus_empty_histogram;
          qt qcheck_span_reencode;
        ] );
      ( "explain",
        [
          Alcotest.test_case "golden single pattern" `Quick test_explain_golden_single;
          Alcotest.test_case "golden compressed repr" `Quick test_explain_golden_repr;
          Alcotest.test_case "golden hash join" `Quick test_explain_golden_hash;
          Alcotest.test_case "golden analyze join" `Quick test_explain_golden_analyze;
          Alcotest.test_case "analyze matches count" `Quick test_explain_analyze_matches_count;
          Alcotest.test_case "json shape" `Quick test_explain_json_shape;
        ] );
      ( "planner-accuracy",
        [
          Alcotest.test_case "per-pattern selectivity exact" `Quick
            test_selectivity_exact_for_patterns;
          Alcotest.test_case "join q-error within 10x" `Quick
            test_join_q_error_within_order_of_magnitude;
        ] );
    ]
