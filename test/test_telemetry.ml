(* Tests for the PR-2 observability layer (lib/telemetry + the
   instrumentation it gates): the metrics registry, the disabled-mode
   zero-cost guarantee, the injectable clock, the span tracer, the JSON
   codec, EXPLAIN goldens on LUBM plans, and planner estimate accuracy
   (q-error) against exact execution counts. *)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

let ub = "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#"
let rdf_type = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"

let sparql_prefix =
  "PREFIX ub: <" ^ ub ^ "> PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> "

let lubm_store =
  lazy
    (let cfg = Workloads.Lubm.config ~universities:1 ~departments_per_university:1 () in
     Hexa.Hexastore.of_triples (Workloads.Lubm.generate cfg))

let lubm_boxed () = Hexa.Store_sig.box_hexastore (Lazy.force lubm_store)

let parse text =
  (Query.Sparql.parse ~namespaces:(Rdf.Namespace.default ()) (sparql_prefix ^ text)).algebra

(* ------------------------------------------------------------------ *)
(* Metrics registry                                                    *)
(* ------------------------------------------------------------------ *)

let test_counters () =
  let c = Telemetry.Metrics.counter "test.counters.a" in
  check_int "fresh counter is zero" 0 (Telemetry.Metrics.value c);
  Telemetry.with_enabled true (fun () ->
      Telemetry.Metrics.incr c;
      Telemetry.Metrics.incr c;
      Telemetry.Metrics.add c 40);
  check_int "incr and add accumulate" 42 (Telemetry.Metrics.value c);
  (* Registration is idempotent: same name, same cell. *)
  let c' = Telemetry.Metrics.counter "test.counters.a" in
  check_int "re-registration returns the same counter" 42 (Telemetry.Metrics.value c');
  check_bool "kind mismatch rejected" true
    (match Telemetry.Metrics.gauge "test.counters.a" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_gauges () =
  let g = Telemetry.Metrics.gauge "test.gauges.a" in
  Telemetry.with_enabled true (fun () ->
      Telemetry.Metrics.set g 1.5;
      Telemetry.Metrics.set g 2.5);
  check_float "last write wins" 2.5 (Telemetry.Metrics.gauge_value g)

let test_histograms () =
  let h = Telemetry.Metrics.histogram "test.histograms.a" in
  Telemetry.with_enabled true (fun () ->
      List.iter (Telemetry.Metrics.observe h) [ 1; 2; 3; 1000; 0 ]);
  check_int "count" 5 (Telemetry.Histogram.count h);
  check_int "sum" 1006 (Telemetry.Histogram.sum h);
  check_int "min" 0 (Option.get (Telemetry.Histogram.min_value h));
  check_int "max" 1000 (Option.get (Telemetry.Histogram.max_value h));
  check_float "mean" 201.2 (Telemetry.Histogram.mean h);
  let bucketed =
    Telemetry.Histogram.fold_buckets (fun acc ~le:_ ~count -> acc + count) 0 h
  in
  check_int "buckets hold every observation" 5 bucketed;
  Telemetry.Histogram.reset h;
  check_int "reset empties" 0 (Telemetry.Histogram.count h)

let test_snapshot_prefix () =
  let c1 = Telemetry.Metrics.counter "test.snap.one" in
  let c2 = Telemetry.Metrics.counter "test.snap.two" in
  ignore (Telemetry.Metrics.counter "test.other.three");
  Telemetry.with_enabled true (fun () ->
      Telemetry.Metrics.incr c1;
      Telemetry.Metrics.add c2 2);
  check_bool "prefix filters and sorts" true
    (let snap = Telemetry.Metrics.snapshot_counters ~prefix:"test.snap." () in
     snap = [ ("test.snap.one", 1); ("test.snap.two", 2) ]
     || (* other tests may have re-run and bumped further *)
     List.map fst snap = [ "test.snap.one"; "test.snap.two" ]);
  match Telemetry.Metrics.to_json () with
  | Telemetry.Json.Obj fields ->
      check_bool "to_json has the three sections" true
        (List.for_all (fun k -> List.mem_assoc k fields) [ "counters"; "gauges"; "histograms" ])
  | _ -> Alcotest.fail "Metrics.to_json did not return an object"

(* ------------------------------------------------------------------ *)
(* Disabled-mode guarantees                                            *)
(* ------------------------------------------------------------------ *)

let test_disabled_no_activity () =
  check_bool "telemetry starts disabled" false !Telemetry.enabled;
  let before = Telemetry.activity_count () in
  (* Exercise every instrumented layer: store probes, merge kernels,
     planner, executor. *)
  let boxed = lubm_boxed () in
  let q = parse "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?y . }" in
  check_bool "query ran" true (Query.Exec.count boxed q > 0);
  check_int "no hook mutated anything while disabled" before (Telemetry.activity_count ())

let test_disabled_counters_stay_zero () =
  let c = Telemetry.Metrics.counter "test.disabled.c" in
  let h = Telemetry.Metrics.histogram "test.disabled.h" in
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.add c 5;
  Telemetry.Metrics.observe h 7;
  ignore (Telemetry.Trace.with_span "test.disabled.span" (fun () -> 0));
  check_int "counter untouched" 0 (Telemetry.Metrics.value c);
  check_int "histogram untouched" 0 (Telemetry.Histogram.count h);
  check_bool "no span recorded" true
    (not (List.exists (fun s -> s.Telemetry.Trace.name = "test.disabled.span")
            (Telemetry.Trace.spans ())))

let test_disabled_zero_allocation () =
  let c = Telemetry.Metrics.counter "test.disabled.alloc" in
  let h = Telemetry.Metrics.histogram "test.disabled.alloc.h" in
  let nothing () = () in
  (* Warm up so any one-time allocation is done. *)
  Telemetry.Metrics.incr c;
  Telemetry.Metrics.observe h 3;
  Telemetry.Trace.with_span "warm" nothing;
  let before = Gc.minor_words () in
  for _ = 1 to 10_000 do
    Telemetry.Metrics.incr c;
    Telemetry.Metrics.add c 2;
    Telemetry.Metrics.observe h 3;
    Telemetry.Trace.with_span "loop" nothing
  done;
  let after = Gc.minor_words () in
  check_float "disabled hooks allocate nothing" 0. (after -. before)

let test_enabled_hooks_fire () =
  let before = Telemetry.activity_count () in
  Telemetry.with_enabled true (fun () ->
      let boxed = lubm_boxed () in
      ignore (Query.Exec.count boxed (parse "SELECT ?x WHERE { ?x rdf:type ub:Course . }")));
  check_bool "hooks ran while enabled" true (Telemetry.activity_count () > before)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)
(* ------------------------------------------------------------------ *)

let test_clock_injection () =
  Telemetry.Clock.with_source (Telemetry.Clock.fixed 5.) (fun () ->
      check_float "fixed" 5. (Telemetry.Clock.now ());
      check_float "fixed again" 5. (Telemetry.Clock.now ()));
  Telemetry.Clock.with_source (Telemetry.Clock.ticking ~start:1. ~step:0.5 ()) (fun () ->
      check_float "tick 1" 1. (Telemetry.Clock.now ());
      check_float "tick 2" 1.5 (Telemetry.Clock.now ());
      check_float "tick 3" 2. (Telemetry.Clock.now ()));
  (* Restored to the wall clock: two reads a real instant apart differ. *)
  let a = Telemetry.Clock.now () in
  check_bool "wall clock restored" true (a > 1e6)

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_spans () =
  Telemetry.with_enabled true (fun () ->
      Telemetry.Trace.clear ();
      Telemetry.Clock.with_source (Telemetry.Clock.ticking ~start:0. ~step:1. ()) (fun () ->
          Telemetry.Trace.with_span "outer" (fun () ->
              Telemetry.Trace.with_span "inner" (fun () -> ()))));
  let spans = Telemetry.Trace.spans () in
  check_int "two spans" 2 (List.length spans);
  let inner = List.nth spans 0 and outer = List.nth spans 1 in
  check_string "inner completes first" "inner" inner.Telemetry.Trace.name;
  check_string "outer completes last" "outer" outer.Telemetry.Trace.name;
  check_int "inner depth" 1 inner.Telemetry.Trace.depth;
  check_int "outer depth" 0 outer.Telemetry.Trace.depth;
  (* Ticking clock: outer start=0, inner start=1, inner end=2, outer
     end=3 — so inner lasts 1 "second" and outer 3. *)
  check_float "inner duration" 1. inner.Telemetry.Trace.duration;
  check_float "outer duration" 3. outer.Telemetry.Trace.duration;
  Telemetry.Trace.clear ();
  check_int "clear empties" 0 (List.length (Telemetry.Trace.spans ()))

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Telemetry.Json.Obj
      [
        ("s", Telemetry.Json.String "a\"b\\c\n\t\x01é");
        ("i", Telemetry.Json.Int (-42));
        ("f", Telemetry.Json.Float 2.5);
        ("b", Telemetry.Json.Bool true);
        ("n", Telemetry.Json.Null);
        ("l", Telemetry.Json.List [ Telemetry.Json.Int 1; Telemetry.Json.Obj [] ]);
      ]
  in
  (match Telemetry.Json.of_string (Telemetry.Json.to_string doc) with
  | Ok doc' -> check_bool "round-trips" true (doc = doc')
  | Error msg -> Alcotest.failf "round-trip parse failed: %s" msg);
  (match Telemetry.Json.of_string (Telemetry.Json.to_string ~indent:0 doc) with
  | Ok doc' -> check_bool "compact round-trips" true (doc = doc')
  | Error msg -> Alcotest.failf "compact round-trip failed: %s" msg);
  check_bool "trailing garbage rejected" true
    (Result.is_error (Telemetry.Json.of_string "{} x"));
  check_bool "unterminated rejected" true (Result.is_error (Telemetry.Json.of_string "[1, 2"));
  let nested = Telemetry.Json.Obj [ ("a", Telemetry.Json.Obj [ ("b", Telemetry.Json.Int 7) ]) ] in
  check_bool "path walks" true
    (match Telemetry.Json.path [ "a"; "b" ] nested with
    | Some v -> Telemetry.Json.to_float_opt v = Some 7.
    | None -> false)

(* ------------------------------------------------------------------ *)
(* EXPLAIN goldens (LUBM, deterministic seed 42)                       *)
(* ------------------------------------------------------------------ *)

let render plan = Format.asprintf "%a" Query.Exec.pp_explain plan

let test_explain_golden_single () =
  let plan = Query.Exec.explain (lubm_boxed ())
      (parse "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . }")
  in
  let expected =
    "project [?x]\n"
    ^ "└─ bgp 1 patterns\n"
    ^ "   └─ scan ?x <" ^ rdf_type ^ "> <" ^ ub
    ^ "GraduateStudent> . index=pos strategy=scan  (est=96 sel=2.53e-02)"
  in
  check_string "single-pattern plan" expected (render plan)

let test_explain_golden_hash () =
  (* The third step shares only ?x while the pipeline streams sorted on
     ?y (established by the FullProfessor scan), so the planner must
     fall back from merge to a hash join there. *)
  let plan =
    Query.Exec.explain (lubm_boxed ())
      (parse
         "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?y . ?y rdf:type \
          ub:FullProfessor . }")
  in
  let expected =
    "project [?x ?y]\n"
    ^ "└─ bgp 3 patterns, joins: 1 merge + 1 hash\n"
    ^ "   ├─ scan ?y <" ^ rdf_type ^ "> <" ^ ub
    ^ "FullProfessor> . index=pos strategy=scan  (est=7 sel=1.84e-03)\n"
    ^ "   ├─ scan ?x <" ^ ub ^ "advisor> ?y . index=pos strategy=merge(?y)  (est=96 sel=2.53e-02)\n"
    ^ "   └─ scan ?x <" ^ rdf_type ^ "> <" ^ ub
    ^ "GraduateStudent> . index=spo strategy=hash(?x)  (est=96 sel=2.53e-02)"
  in
  check_string "hash-join plan" expected (render plan)

let test_explain_golden_analyze () =
  (* A ticking clock makes every ANALYZE timing exactly one step
     (0.5 ms); row counts are exact, so the whole tree is a golden. *)
  let q =
    parse
      "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?y . ?y rdf:type \
       ub:FullProfessor . }"
  in
  let plan =
    Telemetry.Clock.with_source (Telemetry.Clock.ticking ~start:0. ~step:0.0005 ()) (fun () ->
        Query.Exec.explain ~analyze:true (lubm_boxed ()) q)
  in
  let expected =
    "project [?x ?y]  rows=23 time=0.500ms\n"
    ^ "└─ bgp 3 patterns, joins: 1 merge + 1 hash  rows=23 time=0.500ms\n"
    ^ "   ├─ scan ?y <" ^ rdf_type ^ "> <" ^ ub
    ^ "FullProfessor> . index=pos strategy=scan  (est=7 sel=1.84e-03)  rows=7 time=0.500ms\n"
    ^ "   ├─ scan ?x <" ^ ub ^ "advisor> ?y . index=pos strategy=merge(?y)  (est=96 \
       sel=2.53e-02)  rows=23 time=0.500ms\n"
    ^ "   └─ scan ?x <" ^ rdf_type ^ "> <" ^ ub
    ^ "GraduateStudent> . index=spo strategy=hash(?x)  (est=96 sel=2.53e-02)  rows=23 \
       time=0.500ms"
  in
  check_string "3-pattern ANALYZE plan" expected (render plan)

let test_explain_analyze_matches_count () =
  (* Acceptance: ANALYZE row counts agree with Exec.count. *)
  let boxed = lubm_boxed () in
  List.iter
    (fun text ->
      let q = parse text in
      let plan = Query.Exec.explain ~analyze:true boxed q in
      check_int ("root rows = count for " ^ text) (Query.Exec.count boxed q)
        (Option.get plan.Query.Exec.actual_rows))
    [
      "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . }";
      "SELECT ?x ?c WHERE { ?x ub:takesCourse ?c . ?x rdf:type ub:GraduateStudent . }";
      "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?y . ?y rdf:type \
       ub:FullProfessor . }";
    ]

let test_explain_json_shape () =
  let plan =
    Query.Exec.explain (lubm_boxed ()) (parse "SELECT ?x WHERE { ?x rdf:type ub:Course . }")
  in
  let json = Query.Exec.explain_to_json plan in
  check_bool "op at root" true
    (match Telemetry.Json.member "op" json with
    | Some (Telemetry.Json.String "project") -> true
    | _ -> false);
  (* Encode and re-parse: the EXPLAIN export must stay within what the
     codec round-trips.  Floats carry 12 significant digits through the
     encoder, so compare the stable re-encoding, not the values. *)
  match Telemetry.Json.of_string (Telemetry.Json.to_string json) with
  | Ok json' ->
      check_string "explain JSON re-encodes identically" (Telemetry.Json.to_string json)
        (Telemetry.Json.to_string json')
  | Error msg -> Alcotest.failf "explain JSON failed to parse: %s" msg

(* ------------------------------------------------------------------ *)
(* Planner accuracy (q-error)                                          *)
(* ------------------------------------------------------------------ *)

let test_selectivity_exact_for_patterns () =
  (* The planner's per-pattern inputs are exact counts, not sampled
     estimates: Stats.selectivity × size must equal Exec.count on every
     single-pattern BGP (q-error exactly 1). *)
  let h = Lazy.force lubm_store in
  let boxed = lubm_boxed () in
  let dict = Hexa.Hexastore.dict h in
  let n = Hexa.Hexastore.size h in
  List.iter
    (fun text ->
      match parse text with
      | Query.Algebra.Project (_, Query.Algebra.Bgp [ tp ]) as q ->
          let pat_of = function
            | Query.Algebra.Var _ -> Some None
            | Query.Algebra.Term t -> (
                match Dict.Term_dict.find_term dict t with
                | None -> None
                | Some id -> Some (Some id))
          in
          (match (pat_of tp.Query.Algebra.s, pat_of tp.Query.Algebra.p, pat_of tp.Query.Algebra.o)
          with
          | Some s, Some p, Some o ->
              let sel = Hexa.Stats.selectivity h { Hexa.Pattern.s; p; o } in
              let estimated = int_of_float (Float.round (sel *. float_of_int n)) in
              check_int ("selectivity exact for " ^ text) (Query.Exec.count boxed q) estimated
          | _ -> Alcotest.failf "vocabulary missing for %s" text)
      | _ -> Alcotest.failf "not a single-pattern query: %s" text)
    [
      "SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . }";
      "SELECT ?x WHERE { ?x rdf:type ub:FullProfessor . }";
      "SELECT ?x WHERE { ?x ub:advisor ?y . }";
      "SELECT ?x WHERE { ?x ub:takesCourse ?c . }";
    ]

let test_join_q_error_within_order_of_magnitude () =
  (* For multi-pattern queries the planner still uses the standalone
     per-pattern estimate at each step; EXPLAIN ANALYZE gives the rows
     each step actually produced.  Record the q-error of every scan and
     assert it stays within one order of magnitude on the LUBM queries
     (the store's exact per-pattern counts keep it tight). *)
  let boxed = lubm_boxed () in
  let q_errors = ref [] in
  let rec walk (node : Query.Exec.explain_node) =
    (match (node.op, node.estimate, node.actual_rows) with
    | "scan", Some est, Some rows when est > 0 && rows > 0 ->
        let q_err = Float.max (float_of_int est /. float_of_int rows)
            (float_of_int rows /. float_of_int est)
        in
        q_errors := (node.detail, q_err) :: !q_errors
    | _ -> ());
    List.iter walk node.children
  in
  List.iter
    (fun text -> walk (Query.Exec.explain ~analyze:true boxed (parse text)))
    [
      "SELECT ?x ?c WHERE { ?x ub:takesCourse ?c . ?x rdf:type ub:GraduateStudent . }";
      "SELECT ?x ?y WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?y . ?y rdf:type \
       ub:FullProfessor . }";
      "SELECT ?x ?d WHERE { ?x ub:worksFor ?d . ?x rdf:type ub:FullProfessor . }";
    ]
  ;
  check_bool "collected several scans" true (List.length !q_errors >= 6);
  List.iter
    (fun (detail, q_err) ->
      Format.printf "q-error %.2f  %s@." q_err detail;
      if q_err > 10. then
        Alcotest.failf "q-error %.2f exceeds one order of magnitude for %s" q_err detail)
    (List.rev !q_errors)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_counters;
          Alcotest.test_case "gauges" `Quick test_gauges;
          Alcotest.test_case "histograms" `Quick test_histograms;
          Alcotest.test_case "snapshot and json" `Quick test_snapshot_prefix;
        ] );
      ( "disabled-mode",
        [
          Alcotest.test_case "no activity" `Quick test_disabled_no_activity;
          Alcotest.test_case "counters stay zero" `Quick test_disabled_counters_stay_zero;
          Alcotest.test_case "zero allocation" `Quick test_disabled_zero_allocation;
          Alcotest.test_case "hooks fire when enabled" `Quick test_enabled_hooks_fire;
        ] );
      ("clock", [ Alcotest.test_case "injection" `Quick test_clock_injection ]);
      ("trace", [ Alcotest.test_case "spans" `Quick test_trace_spans ]);
      ("json", [ Alcotest.test_case "round-trip" `Quick test_json_roundtrip ]);
      ( "explain",
        [
          Alcotest.test_case "golden single pattern" `Quick test_explain_golden_single;
          Alcotest.test_case "golden hash join" `Quick test_explain_golden_hash;
          Alcotest.test_case "golden analyze join" `Quick test_explain_golden_analyze;
          Alcotest.test_case "analyze matches count" `Quick test_explain_analyze_matches_count;
          Alcotest.test_case "json shape" `Quick test_explain_json_shape;
        ] );
      ( "planner-accuracy",
        [
          Alcotest.test_case "per-pattern selectivity exact" `Quick
            test_selectivity_exact_for_patterns;
          Alcotest.test_case "join q-error within 10x" `Quick
            test_join_q_error_within_order_of_magnitude;
        ] );
    ]
