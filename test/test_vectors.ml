(* Tests for the [vectors] substrate: dynamic arrays, sorted vectors and
   merge-join kernels.  Property tests compare every operation against a
   reference implementation over plain lists / Stdlib.Set. *)

open Vectors

module Iset = Set.Make (Int)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_int_list = Alcotest.(check (list int))

(* ------------------------------------------------------------------ *)
(* Dynarray_int                                                        *)
(* ------------------------------------------------------------------ *)

let test_dynarray_basic () =
  let v = Dynarray_int.create () in
  check_int "empty length" 0 (Dynarray_int.length v);
  check_bool "is_empty" true (Dynarray_int.is_empty v);
  for i = 0 to 99 do
    Dynarray_int.push v (i * 2)
  done;
  check_int "length after pushes" 100 (Dynarray_int.length v);
  check_int "get 0" 0 (Dynarray_int.get v 0);
  check_int "get 99" 198 (Dynarray_int.get v 99);
  Dynarray_int.set v 50 (-7);
  check_int "set/get" (-7) (Dynarray_int.get v 50)

let test_dynarray_bounds () =
  let v = Dynarray_int.of_list [ 1; 2; 3 ] in
  Alcotest.check_raises "get -1" (Invalid_argument "Dynarray_int: index -1 out of bounds [0,3)")
    (fun () -> ignore (Dynarray_int.get v (-1)));
  Alcotest.check_raises "get 3" (Invalid_argument "Dynarray_int: index 3 out of bounds [0,3)")
    (fun () -> ignore (Dynarray_int.get v 3));
  Alcotest.check_raises "pop empty" (Invalid_argument "Dynarray_int.pop: empty") (fun () ->
      ignore (Dynarray_int.pop (Dynarray_int.create ())))

let test_dynarray_push_pop () =
  let v = Dynarray_int.create ~capacity:1 () in
  Dynarray_int.push v 1;
  Dynarray_int.push v 2;
  Dynarray_int.push v 3;
  check_int "pop" 3 (Dynarray_int.pop v);
  check_int "last" 2 (Dynarray_int.last v);
  check_int "length" 2 (Dynarray_int.length v);
  Dynarray_int.clear v;
  check_int "cleared" 0 (Dynarray_int.length v)

let test_dynarray_insert_remove () =
  let v = Dynarray_int.of_list [ 1; 3; 4 ] in
  Dynarray_int.insert v 1 2;
  check_int_list "insert middle" [ 1; 2; 3; 4 ] (Dynarray_int.to_list v);
  Dynarray_int.insert v 4 5;
  check_int_list "insert end" [ 1; 2; 3; 4; 5 ] (Dynarray_int.to_list v);
  Dynarray_int.insert v 0 0;
  check_int_list "insert front" [ 0; 1; 2; 3; 4; 5 ] (Dynarray_int.to_list v);
  Dynarray_int.remove v 0;
  Dynarray_int.remove v 4;
  check_int_list "removes" [ 1; 2; 3; 4 ] (Dynarray_int.to_list v)

let test_dynarray_append_copy () =
  let a = Dynarray_int.of_list [ 1; 2 ] and b = Dynarray_int.of_list [ 3; 4 ] in
  Dynarray_int.append a b;
  check_int_list "append" [ 1; 2; 3; 4 ] (Dynarray_int.to_list a);
  let c = Dynarray_int.copy a in
  Dynarray_int.push c 9;
  check_int "copy is detached" 4 (Dynarray_int.length a);
  check_int "copy grew" 5 (Dynarray_int.length c)

let test_dynarray_sort_uniq () =
  let v = Dynarray_int.of_list [ 5; 1; 5; 3; 1; 3; 3 ] in
  Dynarray_int.sort_uniq v;
  check_int_list "sort_uniq" [ 1; 3; 5 ] (Dynarray_int.to_list v);
  let empty = Dynarray_int.create () in
  Dynarray_int.sort_uniq empty;
  check_int "sort_uniq empty" 0 (Dynarray_int.length empty)

let test_dynarray_iter_fold () =
  let v = Dynarray_int.of_list [ 1; 2; 3; 4 ] in
  check_int "fold sum" 10 (Dynarray_int.fold_left ( + ) 0 v);
  let acc = ref [] in
  Dynarray_int.iteri (fun i x -> acc := (i, x) :: !acc) v;
  Alcotest.(check (list (pair int int))) "iteri" [ (0, 1); (1, 2); (2, 3); (3, 4) ] (List.rev !acc);
  check_bool "exists" true (Dynarray_int.exists (fun x -> x = 3) v);
  check_bool "for_all" true (Dynarray_int.for_all (fun x -> x > 0) v);
  Dynarray_int.map_inplace (fun x -> x * x) v;
  check_int_list "map_inplace" [ 1; 4; 9; 16 ] (Dynarray_int.to_list v)

let test_dynarray_seq_sub () =
  let v = Dynarray_int.of_list [ 10; 20; 30; 40 ] in
  check_int_list "to_seq" [ 10; 20; 30; 40 ] (List.of_seq (Dynarray_int.to_seq v));
  Alcotest.(check (array int)) "sub" [| 20; 30 |] (Dynarray_int.sub v 1 2);
  Dynarray_int.truncate v 2;
  check_int_list "truncate" [ 10; 20 ] (Dynarray_int.to_list v)

let prop_dynarray_model =
  QCheck.Test.make ~name:"dynarray behaves like list under push/pop" ~count:500
    QCheck.(list small_int)
    (fun ops ->
      let v = Dynarray_int.create () in
      let model = ref [] in
      List.iter
        (fun x ->
          if x mod 5 = 0 && !model <> [] then begin
            let top = Dynarray_int.pop v in
            match !model with
            | m :: rest ->
                model := rest;
                if top <> m then QCheck.Test.fail_report "pop mismatch"
            | [] -> ()
          end
          else begin
            Dynarray_int.push v x;
            model := x :: !model
          end)
        ops;
      Dynarray_int.to_list v = List.rev !model)

(* ------------------------------------------------------------------ *)
(* Sorted_ivec                                                         *)
(* ------------------------------------------------------------------ *)

let test_sivec_add_mem () =
  let v = Sorted_ivec.create () in
  check_bool "add 5" true (Sorted_ivec.add v 5);
  check_bool "add 1" true (Sorted_ivec.add v 1);
  check_bool "add 9" true (Sorted_ivec.add v 9);
  check_bool "dup add" false (Sorted_ivec.add v 5);
  check_int_list "sorted" [ 1; 5; 9 ] (Sorted_ivec.to_list v);
  check_bool "mem 5" true (Sorted_ivec.mem v 5);
  check_bool "mem 4" false (Sorted_ivec.mem v 4);
  Sorted_ivec.check_invariant v

let test_sivec_remove () =
  let v = Sorted_ivec.of_list [ 3; 1; 4; 1; 5 ] in
  check_int_list "of_list dedups" [ 1; 3; 4; 5 ] (Sorted_ivec.to_list v);
  check_bool "remove present" true (Sorted_ivec.remove v 3);
  check_bool "remove absent" false (Sorted_ivec.remove v 3);
  check_int_list "after remove" [ 1; 4; 5 ] (Sorted_ivec.to_list v)

let test_sivec_bounds () =
  let v = Sorted_ivec.of_list [ 10; 20; 30 ] in
  check_int "min" 10 (Sorted_ivec.min_elt v);
  check_int "max" 30 (Sorted_ivec.max_elt v);
  check_int "rank 20" 1 (Sorted_ivec.rank v 20);
  check_int "rank 25" 2 (Sorted_ivec.rank v 25);
  check_int "rank 35" 3 (Sorted_ivec.rank v 35);
  Alcotest.(check (option int)) "find_geq 15" (Some 20) (Sorted_ivec.find_geq v 15);
  Alcotest.(check (option int)) "find_geq 30" (Some 30) (Sorted_ivec.find_geq v 30);
  Alcotest.(check (option int)) "find_geq 31" None (Sorted_ivec.find_geq v 31);
  Alcotest.check_raises "min empty" Not_found (fun () ->
      ignore (Sorted_ivec.min_elt (Sorted_ivec.create ())))

let test_sivec_of_sorted_array () =
  let v = Sorted_ivec.of_sorted_array [| 1; 2; 3 |] in
  check_int "len" 3 (Sorted_ivec.length v);
  Alcotest.check_raises "rejects unsorted"
    (Invalid_argument "Sorted_ivec.of_sorted_array: not strictly increasing") (fun () ->
      ignore (Sorted_ivec.of_sorted_array [| 1; 1; 2 |]))

let test_sivec_iter_from () =
  let v = Sorted_ivec.of_list [ 2; 4; 6; 8 ] in
  let acc = ref [] in
  Sorted_ivec.iter_from (fun x -> acc := x :: !acc) v 5;
  check_int_list "iter_from 5" [ 6; 8 ] (List.rev !acc);
  check_int_list "to_seq_from 4" [ 4; 6; 8 ] (List.of_seq (Sorted_ivec.to_seq_from v 4))

let test_sivec_subset () =
  let a = Sorted_ivec.of_list [ 2; 4 ] and b = Sorted_ivec.of_list [ 1; 2; 3; 4 ] in
  check_bool "subset yes" true (Sorted_ivec.subset a b);
  check_bool "subset no" false (Sorted_ivec.subset b a);
  check_bool "empty subset" true (Sorted_ivec.subset (Sorted_ivec.create ()) a);
  check_bool "not subset" false (Sorted_ivec.subset (Sorted_ivec.of_list [ 5 ]) b)

(* Binary-search bounds audit: empty vector, single element, absent keys
   at both ends, exact hits on the first and last element — every seam of
   [index_geq] and the operations derived from it.  (Elements are
   distinct by construction, so first- and last-occurrence semantics
   coincide; [index_geq] is the canonical lower bound.) *)
let test_sivec_search_bounds_audit () =
  let empty = Sorted_ivec.create () in
  check_int "empty index_geq" 0 (Sorted_ivec.index_geq empty 7);
  check_int "empty rank" 0 (Sorted_ivec.rank empty min_int);
  check_bool "empty mem" false (Sorted_ivec.mem empty 7);
  Alcotest.(check (option int)) "empty find_geq" None (Sorted_ivec.find_geq empty 7);
  let single = Sorted_ivec.of_list [ 42 ] in
  check_int "single below" 0 (Sorted_ivec.index_geq single 41);
  check_int "single exact" 0 (Sorted_ivec.index_geq single 42);
  check_int "single above" 1 (Sorted_ivec.index_geq single 43);
  check_bool "single mem exact" true (Sorted_ivec.mem single 42);
  check_bool "single mem below" false (Sorted_ivec.mem single 41);
  check_bool "single mem above" false (Sorted_ivec.mem single 43);
  let v = Sorted_ivec.of_list [ 10; 20; 30; 40 ] in
  check_int "absent below min" 0 (Sorted_ivec.index_geq v 9);
  check_int "absent above max" 4 (Sorted_ivec.index_geq v 41);
  check_bool "mem below min" false (Sorted_ivec.mem v 9);
  check_bool "mem above max" false (Sorted_ivec.mem v 41);
  Alcotest.(check (option int)) "find_geq below min" (Some 10) (Sorted_ivec.find_geq v 9);
  Alcotest.(check (option int)) "find_geq above max" None (Sorted_ivec.find_geq v 41);
  check_int "first exact" 0 (Sorted_ivec.index_geq v 10);
  check_int "last exact" 3 (Sorted_ivec.index_geq v 40);
  check_int "rank of max" 3 (Sorted_ivec.rank v 40);
  check_int "rank past max" 4 (Sorted_ivec.rank v 41);
  check_int "gap key lands right" 1 (Sorted_ivec.index_geq v 15);
  check_int "last gap key" 3 (Sorted_ivec.index_geq v 35);
  let acc = ref [] in
  Sorted_ivec.iter_from (fun x -> acc := x :: !acc) v 41;
  check_int_list "iter_from beyond max" [] !acc;
  check_int_list "to_seq_from below min" [ 10; 20; 30; 40 ]
    (List.of_seq (Sorted_ivec.to_seq_from v min_int));
  check_bool "remove below min" false (Sorted_ivec.remove (Sorted_ivec.of_list [ 1; 2 ]) 0);
  check_bool "remove above max" false (Sorted_ivec.remove (Sorted_ivec.of_list [ 1; 2 ]) 3)

let prop_sivec_index_geq_oracle =
  QCheck.Test.make ~name:"index_geq/mem/find_geq vs list oracle" ~count:500
    QCheck.(pair (list (int_bound 60)) (int_bound 70))
    (fun (xs, x) ->
      let v = Sorted_ivec.of_list xs in
      let elements = Iset.elements (Iset.of_list xs) in
      Sorted_ivec.index_geq v x = List.length (List.filter (fun e -> e < x) elements)
      && Sorted_ivec.mem v x = List.mem x elements
      && Sorted_ivec.find_geq v x = List.find_opt (fun e -> e >= x) elements)

let prop_sivec_set_model =
  QCheck.Test.make ~name:"sorted_ivec behaves like Set under add/remove/mem" ~count:500
    QCheck.(list (pair bool (int_bound 100)))
    (fun ops ->
      let v = Sorted_ivec.create () in
      let model = ref Iset.empty in
      List.iter
        (fun (is_add, x) ->
          if is_add then begin
            let added = Sorted_ivec.add v x in
            if added <> not (Iset.mem x !model) then QCheck.Test.fail_report "add result";
            model := Iset.add x !model
          end
          else begin
            let removed = Sorted_ivec.remove v x in
            if removed <> Iset.mem x !model then QCheck.Test.fail_report "remove result";
            model := Iset.remove x !model
          end)
        ops;
      Sorted_ivec.check_invariant v;
      Sorted_ivec.to_list v = Iset.elements !model)

let prop_sivec_ascending_adds_fast_path =
  QCheck.Test.make ~name:"ascending bulk adds keep invariant" ~count:200
    QCheck.(list (int_bound 10000))
    (fun xs ->
      let sorted = List.sort_uniq compare xs in
      let v = Sorted_ivec.create () in
      List.iter (fun x -> ignore (Sorted_ivec.add v x)) sorted;
      Sorted_ivec.check_invariant v;
      Sorted_ivec.to_list v = sorted)

(* ------------------------------------------------------------------ *)
(* Merge                                                               *)
(* ------------------------------------------------------------------ *)

let sv = Sorted_ivec.of_list

let test_merge_intersect () =
  check_int_list "basic" [ 2; 4 ] (Sorted_ivec.to_list (Merge.intersect (sv [ 1; 2; 3; 4 ]) (sv [ 2; 4; 6 ])));
  check_int_list "disjoint" [] (Sorted_ivec.to_list (Merge.intersect (sv [ 1; 3 ]) (sv [ 2; 4 ])));
  check_int_list "empty" [] (Sorted_ivec.to_list (Merge.intersect (sv []) (sv [ 1 ])));
  check_int "count" 2 (Merge.intersect_count (sv [ 1; 2; 3; 4 ]) (sv [ 2; 4; 6 ]))

let test_merge_union_diff () =
  check_int_list "union" [ 1; 2; 3; 4; 6 ]
    (Sorted_ivec.to_list (Merge.union (sv [ 1; 2; 3 ]) (sv [ 2; 4; 6 ])));
  check_int_list "diff" [ 1; 3 ] (Sorted_ivec.to_list (Merge.diff (sv [ 1; 2; 3 ]) (sv [ 2; 4 ])));
  check_int_list "union_many" [ 1; 2; 3; 4; 5 ]
    (Sorted_ivec.to_list (Merge.union_many [ sv [ 1; 4 ]; sv [ 2; 5 ]; sv [ 3 ]; sv [] ]));
  check_int_list "union_many empty" [] (Sorted_ivec.to_list (Merge.union_many []))

let test_merge_join_callback () =
  let acc = ref [] in
  Merge.merge_join (fun x -> acc := x :: !acc) (sv [ 1; 2; 3; 5 ]) (sv [ 2; 3; 4; 5 ]);
  check_int_list "merge_join hits" [ 2; 3; 5 ] (List.rev !acc)

let test_merge_arrays () =
  Alcotest.(check (array int)) "intersect_arrays" [| 3; 7 |]
    (Merge.intersect_arrays [| 1; 3; 5; 7 |] [| 2; 3; 6; 7; 9 |])

let test_merge_seq () =
  let s l = List.to_seq l in
  check_int_list "intersect_seq" [ 2; 4 ]
    (List.of_seq (Merge.intersect_seq (s [ 1; 2; 3; 4 ]) (s [ 2; 4; 8 ])));
  check_int_list "union_seq" [ 1; 2; 3 ] (List.of_seq (Merge.union_seq (s [ 1; 3 ]) (s [ 2; 3 ])));
  check_bool "ascending yes" true (Merge.is_strictly_ascending (s [ 1; 2; 9 ]));
  check_bool "ascending no" false (Merge.is_strictly_ascending (s [ 1; 1 ]))

let test_merge_gallop () =
  let small = sv [ 5; 500; 5000 ] in
  let large = sv (List.init 1000 (fun i -> i * 5)) in
  check_int_list "gallop" [ 5; 500 ] (Sorted_ivec.to_list (Merge.intersect_gallop small large));
  (* order of arguments must not matter *)
  check_int_list "gallop swapped" [ 5; 500 ]
    (Sorted_ivec.to_list (Merge.intersect_gallop large small))

let set_ops_gen =
  QCheck.(pair (list (int_bound 50)) (list (int_bound 50)))

let prop_merge_vs_set op name set_op =
  QCheck.Test.make ~name ~count:500 set_ops_gen (fun (xs, ys) ->
      let a = Sorted_ivec.of_list xs and b = Sorted_ivec.of_list ys in
      let sa = Iset.of_list xs and sb = Iset.of_list ys in
      Sorted_ivec.to_list (op a b) = Iset.elements (set_op sa sb))

let prop_intersect = prop_merge_vs_set Merge.intersect "intersect = Set.inter" Iset.inter

let prop_count_adaptive =
  QCheck.Test.make ~name:"intersect_count_adaptive = |Set.inter|" ~count:500 set_ops_gen
    (fun (xs, ys) ->
      let a = Sorted_ivec.of_list xs and b = Sorted_ivec.of_list ys in
      Merge.intersect_count_adaptive a b = Iset.cardinal (Iset.inter (Iset.of_list xs) (Iset.of_list ys)))

let test_count_adaptive_skewed () =
  (* Force the galloping branch: tiny vs large. *)
  let small = Sorted_ivec.of_list [ 3; 5000; 9999; 123456 ] in
  let large = Sorted_ivec.of_list (List.init 10000 (fun i -> i)) in
  Alcotest.(check int) "skewed count" 3 (Merge.intersect_count_adaptive small large);
  Alcotest.(check int) "swapped" 3 (Merge.intersect_count_adaptive large small);
  Alcotest.(check int) "empty" 0 (Merge.intersect_count_adaptive (Sorted_ivec.create ()) large)
let prop_union = prop_merge_vs_set Merge.union "union = Set.union" Iset.union
let prop_diff = prop_merge_vs_set Merge.diff "diff = Set.diff" Iset.diff
let prop_gallop = prop_merge_vs_set Merge.intersect_gallop "gallop = Set.inter" Iset.inter

let prop_union_many =
  QCheck.Test.make ~name:"union_many = fold Set.union" ~count:200
    QCheck.(list (list (int_bound 50)))
    (fun lists ->
      let vs = List.map Sorted_ivec.of_list lists in
      let expected = List.fold_left (fun acc l -> Iset.union acc (Iset.of_list l)) Iset.empty lists in
      Sorted_ivec.to_list (Merge.union_many vs) = Iset.elements expected)

(* List-based oracles for the remaining join kernels (satellite audit):
   the callback join, the count-only intersection, and the lazy sequence
   kernels must all agree with naive list filtering. *)

let oracle_inter xs ys =
  let sy = Iset.of_list ys in
  List.filter (fun x -> Iset.mem x sy) (Iset.elements (Iset.of_list xs))

let prop_merge_join_oracle =
  QCheck.Test.make ~name:"merge_join visits exactly the intersection, in order" ~count:500
    set_ops_gen
    (fun (xs, ys) ->
      let acc = ref [] in
      Merge.merge_join (fun x -> acc := x :: !acc) (Sorted_ivec.of_list xs)
        (Sorted_ivec.of_list ys);
      List.rev !acc = oracle_inter xs ys)

let prop_intersect_count_oracle =
  QCheck.Test.make ~name:"intersect_count = |list intersection|" ~count:500 set_ops_gen
    (fun (xs, ys) ->
      Merge.intersect_count (Sorted_ivec.of_list xs) (Sorted_ivec.of_list ys)
      = List.length (oracle_inter xs ys))

let prop_merge_seq_oracle =
  QCheck.Test.make ~name:"intersect_seq/union_seq vs list oracles" ~count:500 set_ops_gen
    (fun (xs, ys) ->
      let sx = List.to_seq (Iset.elements (Iset.of_list xs))
      and sy = List.to_seq (Iset.elements (Iset.of_list ys)) in
      let sx' = List.to_seq (Iset.elements (Iset.of_list xs))
      and sy' = List.to_seq (Iset.elements (Iset.of_list ys)) in
      List.of_seq (Merge.intersect_seq sx sy) = oracle_inter xs ys
      && List.of_seq (Merge.union_seq sx' sy')
         = Iset.elements (Iset.union (Iset.of_list xs) (Iset.of_list ys)))

let prop_merge_diff_oracle =
  QCheck.Test.make ~name:"diff = list filter oracle" ~count:500 set_ops_gen
    (fun (xs, ys) ->
      let sy = Iset.of_list ys in
      Sorted_ivec.to_list (Merge.diff (Sorted_ivec.of_list xs) (Sorted_ivec.of_list ys))
      = List.filter (fun x -> not (Iset.mem x sy)) (Iset.elements (Iset.of_list xs)))

(* The lazy delta-layer kernels: diff over int sequences, and the
   polymorphic union/diff used to merge base scans with buffered
   inserts and subtract tombstones. *)

let dedup_sorted l = Iset.elements (Iset.of_list l)

let prop_diff_seq_oracle =
  QCheck.Test.make ~name:"diff_seq = Set.diff" ~count:500 set_ops_gen
    (fun (xs, ys) ->
      let sx = List.to_seq (dedup_sorted xs) and sy = List.to_seq (dedup_sorted ys) in
      List.of_seq (Merge.diff_seq sx sy)
      = Iset.elements (Iset.diff (Iset.of_list xs) (Iset.of_list ys)))

(* Exercise the [~cmp] kernels with a non-trivial ordering: pairs under
   reversed-lexicographic compare, mimicking the per-shape triple
   comparators the delta layer feeds in. *)
let pair_ops_gen =
  QCheck.(
    pair
      (list (pair (int_bound 6) (int_bound 6)))
      (list (pair (int_bound 6) (int_bound 6))))

let cmp_rev (a1, a2) (b1, b2) =
  match compare a2 b2 with 0 -> compare a1 b1 | c -> c

module Pset = Set.Make (struct
  type t = int * int

  let compare = cmp_rev
end)

let prop_union_seq_by_oracle =
  QCheck.Test.make ~name:"union_seq_by ~cmp = Set.union (custom order)" ~count:500
    pair_ops_gen
    (fun (xs, ys) ->
      let sx = List.to_seq (Pset.elements (Pset.of_list xs))
      and sy = List.to_seq (Pset.elements (Pset.of_list ys)) in
      List.of_seq (Merge.union_seq_by ~cmp:cmp_rev sx sy)
      = Pset.elements (Pset.union (Pset.of_list xs) (Pset.of_list ys)))

let prop_diff_seq_by_oracle =
  QCheck.Test.make ~name:"diff_seq_by ~cmp = Set.diff (custom order)" ~count:500
    pair_ops_gen
    (fun (xs, ys) ->
      let sx = List.to_seq (Pset.elements (Pset.of_list xs))
      and sy = List.to_seq (Pset.elements (Pset.of_list ys)) in
      List.of_seq (Merge.diff_seq_by ~cmp:cmp_rev sx sy)
      = Pset.elements (Pset.diff (Pset.of_list xs) (Pset.of_list ys)))

let test_seq_by_laziness () =
  (* The merged sequence must not force its inputs beyond what the
     consumer demands — the delta layer relies on this to keep lookups
     on huge stores cheap when only a prefix is read. *)
  let forced = ref 0 in
  let counting n : int Seq.t =
    Seq.map
      (fun i ->
        incr forced;
        i)
      (Seq.init n (fun i -> i * 2))
  in
  let merged = Merge.union_seq_by ~cmp:compare (counting 1000) (counting 1000) in
  (match merged () with
  | Seq.Cons (x, _) -> check_int "first element" 0 x
  | Seq.Nil -> Alcotest.fail "unexpected empty merge");
  check_bool "inputs barely forced" true (!forced <= 4)

(* ------------------------------------------------------------------ *)
(* Galloping kernels (merge-join execution substrate)                  *)
(* ------------------------------------------------------------------ *)

(* [search_from v ~from x] is the resumable lower bound behind the
   merge-join seeks: the first index >= from whose element is >= x. *)
let oracle_search_from xs ~from x =
  let elements = Array.of_list (dedup_sorted xs) in
  let n = Array.length elements in
  let from = if from < 0 then 0 else from in
  let rec scan i = if i >= n then n else if elements.(i) >= x then i else scan (i + 1) in
  scan from

let prop_search_from_oracle =
  QCheck.Test.make ~name:"search_from = suffix lower bound oracle" ~count:500
    QCheck.(triple (list (int_bound 60)) (int_bound 20) (int_bound 70))
    (fun (xs, from, x) ->
      let v = Sorted_ivec.of_list xs in
      Sorted_ivec.search_from v ~from x = oracle_search_from xs ~from x
      (* anchored at the start it coincides with the plain lower bound *)
      && Sorted_ivec.search_from v ~from:0 x = Sorted_ivec.index_geq v x)

let test_search_from_edges () =
  let empty = Sorted_ivec.create () in
  check_int "empty" 0 (Sorted_ivec.search_from empty ~from:0 7);
  let v = sv [ 10; 20; 30; 40 ] in
  check_int "negative from clamps" 0 (Sorted_ivec.search_from v ~from:(-3) 5);
  check_int "from past end" 4 (Sorted_ivec.search_from v ~from:9 5);
  check_int "from at end" 4 (Sorted_ivec.search_from v ~from:4 5);
  check_int "already satisfied at from" 1 (Sorted_ivec.search_from v ~from:1 15);
  check_int "exact hit" 2 (Sorted_ivec.search_from v ~from:0 30);
  check_int "exact hit at from" 2 (Sorted_ivec.search_from v ~from:2 30);
  check_int "beyond max" 4 (Sorted_ivec.search_from v ~from:0 41);
  (* ascending resumable probes — the cursor pattern the seeks rely on *)
  let big = sv (List.init 10000 (fun i -> i * 3)) in
  let cursor = ref 0 in
  List.iter
    (fun x ->
      cursor := Sorted_ivec.search_from big ~from:!cursor x;
      check_int
        (Printf.sprintf "resumed probe %d" x)
        (Sorted_ivec.index_geq big x) !cursor)
    [ 0; 1; 299; 300; 8999; 29997; 29998; 50000 ]

let prop_merge_join_gallop_oracle =
  QCheck.Test.make ~name:"merge_join_gallop visits exactly the intersection, in order"
    ~count:500 set_ops_gen
    (fun (xs, ys) ->
      let acc = ref [] in
      Merge.merge_join_gallop
        (fun x -> acc := x :: !acc)
        (Sorted_ivec.of_list xs) (Sorted_ivec.of_list ys);
      List.rev !acc = oracle_inter xs ys)

let prop_inter_seq_by_oracle =
  QCheck.Test.make ~name:"inter_seq_by ~cmp = Set.inter (custom order)" ~count:500
    pair_ops_gen
    (fun (xs, ys) ->
      let sx = List.to_seq (Pset.elements (Pset.of_list xs))
      and sy = List.to_seq (Pset.elements (Pset.of_list ys)) in
      List.of_seq (Merge.inter_seq_by ~cmp:cmp_rev sx sy)
      = Pset.elements (Pset.inter (Pset.of_list xs) (Pset.of_list ys)))

(* Adversarial shapes for the galloping kernels: a tiny side against a
   huge one (the doubling bracket must overshoot and recover), in both
   argument orders. *)
let test_gallop_one_side_tiny () =
  let tiny = sv [ 3; 14000; 29997 ] in
  let huge = sv (List.init 10000 (fun i -> i * 3)) in
  let expected = [ 3; 29997 ] in
  check_int_list "intersect_gallop tiny-first" expected
    (Sorted_ivec.to_list (Merge.intersect_gallop tiny huge));
  check_int_list "intersect_gallop huge-first" expected
    (Sorted_ivec.to_list (Merge.intersect_gallop huge tiny));
  let run f a b =
    let acc = ref [] in
    f (fun x -> acc := x :: !acc) a b;
    List.rev !acc
  in
  check_int_list "merge_join_gallop tiny-first" expected (run Merge.merge_join_gallop tiny huge);
  check_int_list "merge_join_gallop huge-first" expected (run Merge.merge_join_gallop huge tiny);
  (* single-element operands: the degenerate bracket *)
  let one = sv [ 29997 ] in
  check_int_list "singleton hit" [ 29997 ] (run Merge.merge_join_gallop one huge);
  check_int_list "singleton miss" [] (run Merge.merge_join_gallop (sv [ 29998 ]) huge)

(* Interleaved runs: each side holds alternating blocks of 100, so the
   kernels must keep leapfrogging block-by-block with nothing in
   common, then agree fully when one side covers both phases. *)
let test_gallop_interleaved_runs () =
  let block base = List.init 100 (fun i -> base + i) in
  let evens = sv (List.concat_map block [ 0; 200; 400; 600 ])
  and odds = sv (List.concat_map block [ 100; 300; 500; 700 ]) in
  check_int_list "disjoint interleaved runs" []
    (Sorted_ivec.to_list (Merge.intersect_gallop evens odds));
  let acc = ref 0 in
  Merge.merge_join_gallop (fun _ -> incr acc) evens odds;
  check_int "merge_join_gallop disjoint runs" 0 !acc;
  let all = sv (List.concat_map block [ 0; 100; 200; 300; 400; 500; 600; 700 ]) in
  check_int_list "runs subset full" (Sorted_ivec.to_list evens)
    (Sorted_ivec.to_list (Merge.intersect_gallop evens all));
  Merge.merge_join_gallop (fun _ -> incr acc) odds all;
  check_int "merge_join_gallop runs subset" 400 !acc;
  (* search_from hopping across the run boundaries *)
  let cursor = ref 0 in
  List.iter
    (fun x ->
      cursor := Sorted_ivec.search_from evens ~from:!cursor x;
      check_int (Printf.sprintf "run-boundary probe %d" x) (Sorted_ivec.index_geq evens x)
        !cursor)
    [ 50; 100; 199; 250; 399; 650; 699; 701 ]

(* ------------------------------------------------------------------ *)
(* Pair_key                                                            *)
(* ------------------------------------------------------------------ *)
(* Compressed codecs (PR 10)                                           *)
(* ------------------------------------------------------------------ *)

let compressed_kinds = Sorted_ivec.[ Packed; Delta_varint ]
let kname = Sorted_ivec.kind_name
let check_string_list = Alcotest.(check (list string))

(* Hand-picked encodings that stress the block format: all-equal deltas
   (constant-gap runs pack to tiny widths), exact 128-block boundaries,
   2^30-range outliers that force the wide-cell path, and spans so large
   the frame-of-reference subtraction is the whole word. *)
let adversarial_cases =
  [
    ("empty", []);
    ("singleton", [ 7 ]);
    ("all-equal gaps", List.init 300 (fun i -> i * 7));
    ("dense run", List.init 400 (fun i -> i));
    ("one block exactly", List.init 128 (fun i -> (i * 3) + 1));
    ("one block plus one", List.init 129 (fun i -> (i * 3) + 1));
    ("2^30 outlier", [ 0; 1; 2; 1 lsl 30; (1 lsl 30) + 1; 1 lsl 61 ]);
    ("huge span", [ 0; max_int ]);
    ("full word incl. min_int", [ min_int; -1; 0; max_int ]);
  ]

let test_codec_roundtrip_adversarial () =
  List.iter
    (fun kind ->
      List.iter
        (fun (label, xs0) ->
          let name = Printf.sprintf "%s/%s" (kname kind) label in
          let xs = List.sort_uniq compare xs0 in
          let raw = Sorted_ivec.of_list xs in
          let c = Sorted_ivec.compress kind raw in
          check_int_list (name ^ " roundtrip") xs (Sorted_ivec.to_list c);
          check_bool (name ^ " equal raw") true (Sorted_ivec.equal c raw);
          check_string_list (name ^ " block headers") [] (Sorted_ivec.block_violations c);
          Sorted_ivec.check_invariant c;
          List.iteri (fun i x -> check_int (name ^ " get") x (Sorted_ivec.get c i)) xs;
          (* decompressing restores a mutable vector *)
          let back = Sorted_ivec.compress Sorted_ivec.Raw c in
          check_bool (name ^ " back to raw") false (Sorted_ivec.is_compressed back);
          check_int_list (name ^ " raw roundtrip") xs (Sorted_ivec.to_list back))
        adversarial_cases)
    compressed_kinds

let test_codec_frozen () =
  let c = Sorted_ivec.compress Sorted_ivec.Packed (Sorted_ivec.of_list [ 1; 2; 3 ]) in
  check_bool "is_compressed" true (Sorted_ivec.is_compressed c);
  Alcotest.check_raises "add" (Invalid_argument "Sorted_ivec.add: compressed vector is immutable")
    (fun () -> ignore (Sorted_ivec.add c 9));
  Alcotest.check_raises "remove"
    (Invalid_argument "Sorted_ivec.remove: compressed vector is immutable") (fun () ->
      ignore (Sorted_ivec.remove c 2));
  Alcotest.check_raises "clear"
    (Invalid_argument "Sorted_ivec.clear: compressed vector is immutable") (fun () ->
      Sorted_ivec.clear c);
  (* copy thaws: same elements, mutable again *)
  let cp = Sorted_ivec.copy c in
  check_bool "copy thaws" false (Sorted_ivec.is_compressed cp);
  check_bool "copy adds" true (Sorted_ivec.add cp 9)

(* A stream shared by several monotone runs, sliced the way the flat
   index slices its terminal stream; every read on a slice must agree
   with a raw rebuild of that run. *)
let test_codec_stream_slices () =
  let runs = [ [ 5; 9; 12 ]; [ 1; 2; 3; 4 ]; List.init 200 (fun i -> 2 * i); [ 42 ] ] in
  let flat = Array.of_list (List.concat runs) in
  let segments =
    let acc = ref 0 in
    Array.of_list
      (List.map
         (fun r ->
           let s = !acc in
           acc := s + List.length r;
           s)
         runs)
  in
  List.iter
    (fun kind ->
      let s = Sorted_ivec.stream_of_array kind ~segments flat in
      check_int (kname kind ^ " stream_length") (Array.length flat) (Sorted_ivec.stream_length s);
      Array.iteri (fun i x -> check_int (kname kind ^ " stream_get") x (Sorted_ivec.stream_get s i)) flat;
      check_string_list (kname kind ^ " stream_validate") [] (Sorted_ivec.stream_validate s);
      let off = ref 0 in
      List.iter
        (fun r ->
          let len = List.length r in
          let sl = Sorted_ivec.slice s ~off:!off ~len in
          let raw = Sorted_ivec.of_list r in
          check_int_list (kname kind ^ " slice") r (Sorted_ivec.to_list sl);
          let hi = List.fold_left max 0 r + 2 in
          for x = 0 to hi do
            check_int (kname kind ^ " slice index_geq") (Sorted_ivec.index_geq raw x)
              (Sorted_ivec.index_geq sl x);
            for from = 0 to len do
              check_int (kname kind ^ " slice search_from") (Sorted_ivec.search_from raw ~from x)
                (Sorted_ivec.search_from sl ~from x)
            done
          done;
          off := !off + len)
        runs)
    compressed_kinds

(* Segment-per-element streams: every delta block is a singleton, the
   degenerate block shape. *)
let test_codec_singleton_segments () =
  let n = 150 in
  let flat = Array.init n (fun i -> ((i * 13) mod 7) + i) in
  let segments = Array.init n (fun i -> i) in
  List.iter
    (fun kind ->
      let s = Sorted_ivec.stream_of_array kind ~segments flat in
      check_string_list (kname kind ^ " validate") [] (Sorted_ivec.stream_validate s);
      Array.iteri
        (fun i x ->
          check_int (kname kind ^ " get") x (Sorted_ivec.stream_get s i);
          let sl = Sorted_ivec.slice s ~off:i ~len:1 in
          check_int_list (kname kind ^ " slice") [ x ] (Sorted_ivec.to_list sl))
        flat)
    compressed_kinds

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec encode∘decode = id, monotone blocks" ~count:300
    QCheck.(list_of_size Gen.(int_range 0 350) (int_bound 100000))
    (fun xs ->
      let raw = Sorted_ivec.of_list xs in
      List.for_all
        (fun kind ->
          let c = Sorted_ivec.compress kind raw in
          Sorted_ivec.block_violations c = []
          && Sorted_ivec.to_list c = Sorted_ivec.to_list raw
          && Sorted_ivec.length c = Sorted_ivec.length raw
          && Sorted_ivec.equal c raw)
        compressed_kinds)

let prop_codec_search_oracle =
  QCheck.Test.make ~name:"compressed search_from/index_geq ≡ raw oracle" ~count:300
    QCheck.(
      triple (list_of_size Gen.(int_range 0 350) (int_bound 4000)) (int_bound 4200) small_nat)
    (fun (xs, x, from0) ->
      let raw = Sorted_ivec.of_list xs in
      let n = Sorted_ivec.length raw in
      let from = from0 mod (n + 1) in
      List.for_all
        (fun kind ->
          let c = Sorted_ivec.compress kind raw in
          Sorted_ivec.index_geq c x = Sorted_ivec.index_geq raw x
          && Sorted_ivec.search_from c ~from x = Sorted_ivec.search_from raw ~from x
          && Sorted_ivec.find_geq c x = Sorted_ivec.find_geq raw x
          && Sorted_ivec.mem c x = Sorted_ivec.mem raw x
          && Sorted_ivec.to_seq_from c x |> List.of_seq
             = (Sorted_ivec.to_seq_from raw x |> List.of_seq))
        compressed_kinds)

(* ------------------------------------------------------------------ *)

let test_pair_key_roundtrip () =
  List.iter
    (fun (a, b) ->
      let k = Pair_key.make a b in
      check_int "fst" a (Pair_key.fst k);
      check_int "snd" b (Pair_key.snd k);
      Alcotest.(check (pair int int)) "unpack" (a, b) (Pair_key.unpack k))
    [ (0, 0); (1, 2); (Pair_key.max_id, Pair_key.max_id); (12345, 678910) ]

let test_pair_key_bounds () =
  Alcotest.check_raises "negative"
    (Invalid_argument "Pair_key.make: id out of range (-1, 0)") (fun () ->
      ignore (Pair_key.make (-1) 0));
  Alcotest.check_raises "too large"
    (Invalid_argument
       (Printf.sprintf "Pair_key.make: id out of range (0, %d)" (Pair_key.max_id + 1)))
    (fun () -> ignore (Pair_key.make 0 (Pair_key.max_id + 1)))

let prop_pair_key =
  QCheck.Test.make ~name:"pair_key roundtrip" ~count:1000
    QCheck.(pair (int_bound 1000000) (int_bound 1000000))
    (fun (a, b) -> Pair_key.unpack (Pair_key.make a b) = (a, b))

let prop_pair_key_injective =
  QCheck.Test.make ~name:"pair_key injective" ~count:1000
    QCheck.(pair (pair (int_bound 10000) (int_bound 10000)) (pair (int_bound 10000) (int_bound 10000)))
    (fun ((a, b), (c, d)) ->
      (a, b) = (c, d) || Pair_key.make a b <> Pair_key.make c d)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "vectors"
    [
      ( "dynarray",
        [
          Alcotest.test_case "basic" `Quick test_dynarray_basic;
          Alcotest.test_case "bounds" `Quick test_dynarray_bounds;
          Alcotest.test_case "push_pop" `Quick test_dynarray_push_pop;
          Alcotest.test_case "insert_remove" `Quick test_dynarray_insert_remove;
          Alcotest.test_case "append_copy" `Quick test_dynarray_append_copy;
          Alcotest.test_case "sort_uniq" `Quick test_dynarray_sort_uniq;
          Alcotest.test_case "iter_fold" `Quick test_dynarray_iter_fold;
          Alcotest.test_case "seq_sub" `Quick test_dynarray_seq_sub;
          qt prop_dynarray_model;
        ] );
      ( "sorted_ivec",
        [
          Alcotest.test_case "add_mem" `Quick test_sivec_add_mem;
          Alcotest.test_case "remove" `Quick test_sivec_remove;
          Alcotest.test_case "bounds" `Quick test_sivec_bounds;
          Alcotest.test_case "of_sorted_array" `Quick test_sivec_of_sorted_array;
          Alcotest.test_case "iter_from" `Quick test_sivec_iter_from;
          Alcotest.test_case "subset" `Quick test_sivec_subset;
          Alcotest.test_case "search bounds audit" `Quick test_sivec_search_bounds_audit;
          Alcotest.test_case "search_from edges" `Quick test_search_from_edges;
          qt prop_sivec_index_geq_oracle;
          qt prop_sivec_set_model;
          qt prop_sivec_ascending_adds_fast_path;
          qt prop_search_from_oracle;
        ] );
      ( "merge",
        [
          Alcotest.test_case "intersect" `Quick test_merge_intersect;
          Alcotest.test_case "union_diff" `Quick test_merge_union_diff;
          Alcotest.test_case "merge_join" `Quick test_merge_join_callback;
          Alcotest.test_case "arrays" `Quick test_merge_arrays;
          Alcotest.test_case "seq" `Quick test_merge_seq;
          Alcotest.test_case "gallop" `Quick test_merge_gallop;
          Alcotest.test_case "count_adaptive_skewed" `Quick test_count_adaptive_skewed;
          qt prop_intersect;
          qt prop_count_adaptive;
          qt prop_union;
          qt prop_diff;
          qt prop_gallop;
          qt prop_union_many;
          qt prop_merge_join_oracle;
          qt prop_intersect_count_oracle;
          qt prop_merge_seq_oracle;
          qt prop_merge_diff_oracle;
          Alcotest.test_case "seq_by_laziness" `Quick test_seq_by_laziness;
          qt prop_diff_seq_oracle;
          qt prop_union_seq_by_oracle;
          qt prop_diff_seq_by_oracle;
          Alcotest.test_case "gallop_one_side_tiny" `Quick test_gallop_one_side_tiny;
          Alcotest.test_case "gallop_interleaved_runs" `Quick test_gallop_interleaved_runs;
          qt prop_merge_join_gallop_oracle;
          qt prop_inter_seq_by_oracle;
        ] );
      ( "codec",
        [
          Alcotest.test_case "adversarial roundtrips" `Quick test_codec_roundtrip_adversarial;
          Alcotest.test_case "frozen mutations" `Quick test_codec_frozen;
          Alcotest.test_case "stream slices" `Quick test_codec_stream_slices;
          Alcotest.test_case "singleton segments" `Quick test_codec_singleton_segments;
          qt prop_codec_roundtrip;
          qt prop_codec_search_oracle;
        ] );
      ( "pair_key",
        [
          Alcotest.test_case "roundtrip" `Quick test_pair_key_roundtrip;
          Alcotest.test_case "bounds" `Quick test_pair_key_bounds;
          qt prop_pair_key;
          qt prop_pair_key_injective;
        ] );
    ]
