(* Benchmark harness: regenerates every figure of the paper's evaluation
   (§5) plus the ablation benches DESIGN.md calls out.

   Figures 3–9   — Barton queries BQ1–BQ7 (fig 4, 5, 6, 8 with the
                   28-property restriction variants as well);
   Figures 10–14 — LUBM queries LQ1–LQ5;
   Figure 15     — memory usage on both data sets;
   abl-*         — load path, join kernel, dictionary and list-sharing
                   ablations.

   Output is one gnuplot-style series block per figure: response time
   (seconds) against store size (triples) per method, which is the shape
   of the paper's log-scale plots.  `--bechamel` runs the same query
   bodies under Bechamel's OLS estimator at the largest sweep size. *)

open Workloads

type mode =
  | Smoke  (** seconds-scale subset, for the [@bench-smoke] CI alias *)
  | Quick
  | Full

let mode_name = function Smoke -> "smoke" | Quick -> "quick" | Full -> "full"

(* ------------------------------------------------------------------- *)
(* Data environments (built once per run, shared across figures)        *)
(* ------------------------------------------------------------------- *)

let barton_cfg = function
  | Smoke -> Barton.config ~subjects:2_000 ~seed:7 ()
  | Quick -> Barton.config ~subjects:40_000 ~seed:7 ()
  | Full -> Barton.config ~subjects:350_000 ~seed:7 ()

let barton_sizes = function
  | Smoke -> [ 2_000; 8_000 ]
  | Quick -> [ 30_000; 60_000; 120_000; 240_000 ]
  | Full -> [ 250_000; 500_000; 1_000_000; 2_000_000 ]

let lubm_cfg = function
  | Smoke -> Lubm.config ~universities:1 ~departments_per_university:2 ~seed:42 ()
  | Quick -> Lubm.config ~universities:8 ~departments_per_university:4 ~seed:42 ()
  | Full -> Lubm.config ~universities:32 ~departments_per_university:8 ~seed:42 ()

let lubm_sizes = function
  | Smoke -> [ 2_000; 7_000 ]
  | Quick -> [ 30_000; 60_000; 120_000; 240_000 ]
  | Full -> [ 250_000; 500_000; 1_000_000; 2_000_000 ]

type env = {
  barton : Harness.sized_stores list Lazy.t;
  lubm : Harness.sized_stores list Lazy.t;
}

let make_env mode =
  {
    barton =
      lazy
        (Harness.build_prefixes ~kinds:Stores.all_kinds ~sizes:(barton_sizes mode)
           (Barton.generate_seq (barton_cfg mode)));
    lubm =
      lazy
        (Harness.build_prefixes ~kinds:Stores.all_kinds ~sizes:(lubm_sizes mode)
           (Lubm.generate_seq (lubm_cfg mode)));
  }

(* ------------------------------------------------------------------- *)
(* Figure machinery                                                     *)
(* ------------------------------------------------------------------- *)

let timing_repeats = 3

(* Run every (label, body) variant at every sweep point for every
   method.  A body may be [None] when the vocabulary is missing at that
   sweep point. *)
let sweep sized ~variants =
  List.concat_map
    (fun { Harness.n_triples; stores; dict } ->
      List.concat_map
        (fun store ->
          List.filter_map
            (fun (label_suffix, run) ->
              match run dict store with
              | None -> None
              | Some thunk ->
                  let seconds, _ = Harness.time ~warmup:1 ~repeats:timing_repeats thunk in
                  Some
                    {
                      Harness.size = n_triples;
                      method_ = Stores.name store ^ label_suffix;
                      seconds;
                    })
            variants)
        stores)
    sized

(* Every printed series is also retained, so [--json] can re-emit the
   whole run in machine-readable form at the end. *)
let collected : (string * string * Harness.point list) list ref = ref []

let print_series ~figure ~title points =
  collected := (figure, title, points) :: !collected;
  Format.printf "@[<v>%a@]@." (Harness.pp_series ~figure ~title) points

(* A Barton query body, made total over missing vocabulary. *)
let barton_variant ?restrict_label run =
  let label = match restrict_label with None -> "" | Some l -> l in
  ( label,
    fun dict store ->
      match Queries_barton.resolve_ids dict with
      | None -> None
      | Some ids -> Some (fun () -> run dict store ids) )

let barton_plain run = [ barton_variant run ]

let barton_with_28 run run28 =
  [
    barton_variant run;
    barton_variant ~restrict_label:" 28" (fun dict store ids ->
        run28 (Queries_barton.restriction_28 dict) dict store ids);
  ]

let lubm_variant run =
  ( "",
    fun dict store ->
      match Queries_lubm.resolve_ids dict with
      | None -> None
      | Some ids -> Some (fun () -> run store ids) )

(* Forcing results so the work cannot be optimised away. *)
let force_list l = ignore (List.length l)

let fig_barton env ~figure ~title variants =
  print_series ~figure ~title (sweep (Lazy.force env.barton) ~variants)

let fig_lubm env ~figure ~title run =
  print_series ~figure ~title (sweep (Lazy.force env.lubm) ~variants:[ lubm_variant run ])

(* ------------------------------------------------------------------- *)
(* The figures                                                          *)
(* ------------------------------------------------------------------- *)

let fig3 env =
  fig_barton env ~figure:"fig3" ~title:"Barton Query 1 (type counts)"
    (barton_plain (fun _ store ids -> force_list (Queries_barton.bq1 store ids)))

let fig4 env =
  fig_barton env ~figure:"fig4" ~title:"Barton Query 2 (property frequencies of Type:Text)"
    (barton_with_28
       (fun _ store ids -> force_list (Queries_barton.bq2 store ids))
       (fun restrict _ store ids -> force_list (Queries_barton.bq2 ~restrict store ids)))

let fig5 env =
  fig_barton env ~figure:"fig5" ~title:"Barton Query 3 (popular objects per property)"
    (barton_with_28
       (fun _ store ids -> force_list (Queries_barton.bq3 store ids))
       (fun restrict _ store ids -> force_list (Queries_barton.bq3 ~restrict store ids)))

let fig6 env =
  fig_barton env ~figure:"fig6" ~title:"Barton Query 4 (BQ3 over Text and Language:French)"
    (barton_with_28
       (fun _ store ids -> force_list (Queries_barton.bq4 store ids))
       (fun restrict _ store ids -> force_list (Queries_barton.bq4 ~restrict store ids)))

let fig7 env =
  fig_barton env ~figure:"fig7" ~title:"Barton Query 5 (inference via Records/Type)"
    (barton_plain (fun _ store ids -> force_list (Queries_barton.bq5 store ids)))

let fig8 env =
  fig_barton env ~figure:"fig8" ~title:"Barton Query 6 (known or inferred Text, aggregated)"
    (barton_with_28
       (fun _ store ids -> force_list (Queries_barton.bq6 store ids))
       (fun restrict _ store ids -> force_list (Queries_barton.bq6 ~restrict store ids)))

let fig9 env =
  fig_barton env ~figure:"fig9" ~title:"Barton Query 7 (Point 'end' selection)"
    (barton_plain (fun _ store ids -> force_list (Queries_barton.bq7 store ids)))

let fig10 env =
  fig_lubm env ~figure:"fig10" ~title:"LUBM Query 1 (all related to Course10)" (fun store ids ->
      force_list (Queries_lubm.lq1 store ids))

let fig11 env =
  fig_lubm env ~figure:"fig11" ~title:"LUBM Query 2 (all related to University0)"
    (fun store ids -> force_list (Queries_lubm.lq2 store ids))

let fig12 env =
  fig_lubm env ~figure:"fig12" ~title:"LUBM Query 3 (all about AssociateProfessor10)"
    (fun store ids ->
      let out, inc = Queries_lubm.lq3 store ids in
      force_list out;
      force_list inc)

let fig13 env =
  fig_lubm env ~figure:"fig13" ~title:"LUBM Query 4 (people in AP10's courses)"
    (fun store ids -> force_list (Queries_lubm.lq4 store ids))

let fig14 env =
  fig_lubm env ~figure:"fig14" ~title:"LUBM Query 5 (degree holders from AP10's universities)"
    (fun store ids -> force_list (Queries_lubm.lq5 store ids))

let fig15 env =
  let memory_points sized =
    List.concat_map
      (fun { Harness.n_triples; stores; _ } ->
        List.map
          (fun store ->
            {
              Harness.size = n_triples;
              method_ = Stores.name store;
              seconds = Harness.words_to_mb (Stores.memory_words store);
            })
          stores)
      sized
  in
  print_series ~figure:"fig15-barton" ~title:"Memory consumption, Barton data set (MB, not seconds)"
    (memory_points (Lazy.force env.barton));
  print_series ~figure:"fig15-lubm" ~title:"Memory consumption, LUBM data set (MB, not seconds)"
    (memory_points (Lazy.force env.lubm))

(* ------------------------------------------------------------------- *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------- *)

(* abl-load: two write scenarios.

   Full loads from empty: bulk (3-sort monotone appends) vs incremental
   (per-triple binary insertion) vs delta-staged (buffered batches
   drained through the bulk path, every auto-flush plus the final flush
   included — the fully amortized cost of staging a whole load).

   Small-batch updates onto an existing base of each sweep size:
   per-triple insertion pays six-index maintenance immediately, while
   delta staging accepts the batch into the write buffer — readable at
   once through the merged view — and defers index maintenance to the
   next flush, whose amortized price the full-load delta series shows. *)
let abl_load _env =
  let dict = Dict.Term_dict.create () in
  let triples =
    Array.of_seq
      (Seq.map (Dict.Term_dict.encode_triple dict)
         (Lubm.generate_seq (Lubm.config ~universities:8 ~departments_per_university:4 ())))
  in
  (* A batch of fresh terms (new entities, new vocabulary), disjoint
     from the LUBM data, sized to fit the delta's insert buffer. *)
  let update_k = 2048 in
  let updates =
    Array.init update_k (fun i ->
        Dict.Term_dict.encode_triple dict
          (Rdf.Triple.make
             (Rdf.Term.iri (Printf.sprintf "http://example.org/update/s%d" (i / 8)))
             (Rdf.Term.iri (Printf.sprintf "http://example.org/update/p%d" (i mod 8)))
             (Rdf.Term.iri (Printf.sprintf "http://example.org/update/o%d" i))))
  in
  let sizes =
    List.filter (fun n -> n < Array.length triples) [ 2_000; 8_000; 16_000 ]
    @ [ Array.length triples ]
  in
  let points =
    List.concat_map
      (fun n ->
        let prefix = Array.sub triples 0 n in
        let bulk_s, _ =
          Harness.time ~warmup:0 ~repeats:3 (fun () ->
              let h = Hexa.Hexastore.create ~dict () in
              Hexa.Hexastore.add_bulk_ids h prefix)
        in
        let incr_s, _ =
          Harness.time ~warmup:0 ~repeats:3 (fun () ->
              let h = Hexa.Hexastore.create ~dict () in
              Array.iter (fun tr -> ignore (Hexa.Hexastore.add_ids h tr)) prefix;
              n)
        in
        let delta_s, _ =
          Harness.time ~warmup:0 ~repeats:3 (fun () ->
              let dl = Hexa.Delta.create ~dict () in
              Array.iter (fun tr -> ignore (Hexa.Delta.add_ids dl tr)) prefix;
              Hexa.Delta.flush dl;
              n)
        in
        (* Update staging needs a pristine base per repetition (re-adding
           a triple already present is a cheap no-op, which would skew a
           reused base), so time single shots over fresh bulk loads and
           keep the best of three. *)
        let fresh_base () =
          let h = Hexa.Hexastore.create ~dict () in
          ignore (Hexa.Hexastore.add_bulk_ids h prefix);
          h
        in
        let best_of_3 f =
          let best = ref infinity in
          for _ = 1 to 3 do
            let dt = f () in
            if dt < !best then best := dt
          done;
          !best
        in
        let upd_triple_s =
          best_of_3 (fun () ->
              let h = fresh_base () in
              let t0 = Telemetry.Clock.now () in
              Array.iter (fun tr -> ignore (Hexa.Hexastore.add_ids h tr)) updates;
              Telemetry.Clock.now () -. t0)
        in
        let upd_delta_s =
          best_of_3 (fun () ->
              let b = fresh_base () in
              let base_n = Hexa.Hexastore.size b in
              let dl = Hexa.Delta.of_base b in
              let t0 = Telemetry.Clock.now () in
              Array.iter (fun tr -> ignore (Hexa.Delta.add_ids dl tr)) updates;
              let dt = Telemetry.Clock.now () -. t0 in
              assert (Hexa.Delta.size dl = base_n + update_k);
              dt)
        in
        [
          { Harness.size = n; method_ = "bulk"; seconds = bulk_s };
          { Harness.size = n; method_ = "incremental"; seconds = incr_s };
          { Harness.size = n; method_ = "delta"; seconds = delta_s };
          { Harness.size = n; method_ = "update-pertriple"; seconds = upd_triple_s };
          { Harness.size = n; method_ = "update-delta"; seconds = upd_delta_s };
        ])
      sizes
  in
  print_series ~figure:"abl-load"
    ~title:
      (Printf.sprintf
         "Hexastore write paths: full load (bulk/incremental/delta+flush) and %d-triple update \
          staging (seconds)"
         update_k)
    points

(* abl-join-kernel: first-step pairwise join kernels on real s-lists —
   linear merge vs galloping vs hash probe (§4.2's merge-join claim). *)
let abl_join_kernel env =
  match List.rev (Lazy.force env.barton) with
  | [] -> ()
  | { Harness.stores; dict; n_triples } :: _ -> (
      let hexa =
        List.find_map (function Stores.Hexa h -> Some h | Stores.Covp _ -> None) stores
      in
      match (hexa, Queries_barton.resolve_ids dict) with
      | Some h, Some ids ->
          let list_of p o =
            match Hexa.Hexastore.subjects_of_po h ~p ~o with
            | Some l -> l
            | None -> Vectors.Sorted_ivec.create ()
          in
          let text = list_of ids.type_p ids.text in
          let french = list_of ids.language ids.french in
          let hash_join a b =
            let tbl = Hashtbl.create (Vectors.Sorted_ivec.length a) in
            Vectors.Sorted_ivec.iter (fun x -> Hashtbl.replace tbl x ()) a;
            let hits = ref 0 in
            Vectors.Sorted_ivec.iter (fun x -> if Hashtbl.mem tbl x then incr hits) b;
            !hits
          in
          let bench name f =
            let s, _ = Harness.time ~warmup:1 ~repeats:5 f in
            { Harness.size = n_triples; method_ = name; seconds = s }
          in
          let points =
            [
              bench "merge-join" (fun () ->
                  Vectors.Sorted_ivec.length (Vectors.Merge.intersect text french));
              bench "gallop-join" (fun () ->
                  Vectors.Sorted_ivec.length (Vectors.Merge.intersect_gallop text french));
              bench "hash-join" (fun () -> hash_join text french);
            ]
          in
          print_series ~figure:"abl-join-kernel"
            ~title:"First-step pairwise join kernels on Text x French subject lists" points
      | _ -> ())

(* abl-join: the planner's per-step join strategies end to end — each
   BQ-class BGP runs through the generic executor twice, once with
   [Planner.nested_loop_only] forcing per-row index probes and once with
   the planner free to pick merge/hash steps.  Wall time comes from a
   telemetry-off timing loop; the index-probe count is the
   hexastore.probe.* counter delta of one traced run. *)
type join_arm = { arm_seconds : float; arm_probes : int }

type join_result = {
  jq : string;
  jq_triples : int;
  jq_rows : int;
  nested : join_arm;
  planned : join_arm;
}

let join_queries =
  let v n = Query.Algebra.Var n in
  let t term = Query.Algebra.Term term in
  let iri = Rdf.Term.iri in
  let tp = Query.Algebra.tp in
  [
    (* BQ2-class (restricted form): the Type:Text anchor joined with one
       property fetch, as BQ2's 28-property restriction issues per
       property (?s merge-joins against the pso scan of Language). *)
    ( "BQ2J",
      [
        tp (v "s") (t (iri Barton.type_p)) (t (iri Barton.text_type));
        tp (v "s") (t (iri Barton.language_p)) (v "l");
      ] );
    (* BQ4-class: a 3-arm star of fully-bound predicates over ?s. *)
    ( "BQ4J",
      [
        tp (v "s") (t (iri Barton.type_p)) (t (iri Barton.text_type));
        tp (v "s") (t (iri Barton.language_p)) (t (Rdf.Term.string_literal Barton.french));
        tp (v "s") (t (iri Barton.origin_p)) (t (iri Barton.dlc));
      ] );
    (* BQ7-class: selective anchor, then two property fetches with a
       free object each (?s merge-joins against pso scans). *)
    ( "BQ7J",
      [
        tp (v "s") (t (iri Barton.point_p)) (t (Rdf.Term.string_literal "end"));
        tp (v "s") (t (iri Barton.encoding_p)) (v "e");
        tp (v "s") (t (iri Barton.type_p)) (v "t");
      ] );
  ]

let join_cache : join_result list option ref = ref None

let join_results env =
  match !join_cache with
  | Some r -> r
  | None ->
      let results =
        match List.rev (Lazy.force env.barton) with
        | [] -> []
        | { Harness.stores; dict; n_triples } :: _ -> (
            let hexa =
              List.find_map (function Stores.Hexa h -> Some h | Stores.Covp _ -> None) stores
            in
            match (hexa, Queries_barton.resolve_ids dict) with
            | Some h, Some _ ->
                let store = Hexa.Store_sig.box_hexastore h in
                List.map
                  (fun (name, tps) ->
                    let body () = Query.Exec.count store (Query.Algebra.Bgp tps) in
                    let arm forced =
                      Query.Planner.nested_loop_only := forced;
                      Fun.protect
                        ~finally:(fun () -> Query.Planner.nested_loop_only := false)
                        (fun () ->
                          let seconds, rows =
                            Telemetry.with_enabled false (fun () ->
                                Harness.time ~warmup:1 ~repeats:timing_repeats body)
                          in
                          let sum_probes () =
                            List.fold_left
                              (fun acc (_, v) -> acc + v)
                              0
                              (Telemetry.Metrics.snapshot_counters
                                 ~prefix:"hexastore.probe." ())
                          in
                          let probes =
                            Telemetry.with_enabled true (fun () ->
                                let before = sum_probes () in
                                ignore (body ());
                                sum_probes () - before)
                          in
                          (rows, { arm_seconds = seconds; arm_probes = probes }))
                    in
                    let rows_nested, nested = arm true in
                    let rows_planned, planned = arm false in
                    assert (rows_nested = rows_planned);
                    { jq = name; jq_triples = n_triples; jq_rows = rows_planned; nested; planned })
                  join_queries
            | _ -> [])
      in
      join_cache := Some results;
      results

let abl_join env =
  match join_results env with
  | [] -> ()
  | results ->
      let points =
        List.concat_map
          (fun r ->
            [
              { Harness.size = r.jq_triples; method_ = r.jq ^ "-nested"; seconds = r.nested.arm_seconds };
              { Harness.size = r.jq_triples; method_ = r.jq ^ "-planned"; seconds = r.planned.arm_seconds };
              {
                Harness.size = r.jq_triples;
                method_ = r.jq ^ "-nested-probes";
                seconds = float_of_int r.nested.arm_probes;
              };
              {
                Harness.size = r.jq_triples;
                method_ = r.jq ^ "-planned-probes";
                seconds = float_of_int r.planned.arm_probes;
              };
            ])
          results
      in
      print_series ~figure:"abl-join"
        ~title:
          "Executor join strategies on BQ-class BGPs: nested-loop ablation vs planned \
           merge/hash (-probes series are index-probe counts, not seconds)"
        points

(* abl-dict: id-level pattern count vs term-level lookup (strings through
   the dictionary) — the per-query cost §4.1's dictionary encoding keeps
   out of the inner loops. *)
let abl_dict env =
  match List.rev (Lazy.force env.barton) with
  | [] -> ()
  | { Harness.stores; dict; n_triples } :: _ -> (
      let hexa =
        List.find_map (function Stores.Hexa h -> Some h | Stores.Covp _ -> None) stores
      in
      match (hexa, Queries_barton.resolve_ids dict) with
      | Some h, Some ids ->
          let type_term = Rdf.Term.iri Barton.type_p in
          let text_term = Rdf.Term.iri Barton.text_type in
          let id_s, _ =
            Harness.time ~warmup:1 ~repeats:5 (fun () ->
                let acc = ref 0 in
                for _ = 1 to 1000 do
                  acc :=
                    !acc + Hexa.Hexastore.count h (Hexa.Pattern.make ~p:ids.type_p ~o:ids.text ())
                done;
                !acc)
          in
          let term_s, _ =
            Harness.time ~warmup:1 ~repeats:5 (fun () ->
                let acc = ref 0 in
                for _ = 1 to 1000 do
                  acc := !acc + Hexa.Hexastore.count_terms h ~p:type_term ~o:text_term ()
                done;
                !acc)
          in
          print_series ~figure:"abl-dict"
            ~title:"1000 pattern counts: id-level vs term-level (dictionary) access"
            [
              { Harness.size = n_triples; method_ = "id-level"; seconds = id_s };
              { Harness.size = n_triples; method_ = "term-level"; seconds = term_s };
            ]
      | _ -> ())

(* abl-share: measured memory with shared terminal lists vs the
   hypothetical unshared layout (each twin ordering owning its own copy
   of every terminal list). *)
let abl_share env =
  let family idx =
    let acc = ref 0 in
    Hexa.Index.iter
      (fun _ v ->
        Hexa.Pair_vector.iter (fun _ l -> acc := !acc + Vectors.Sorted_ivec.memory_words l) v)
      idx;
    !acc
  in
  let points =
    List.concat_map
      (fun { Harness.n_triples; stores; _ } ->
        List.concat_map
          (function
            | Stores.Hexa h ->
                let shared = Hexa.Hexastore.memory_words h in
                let extra =
                  family (Hexa.Hexastore.spo h)
                  + family (Hexa.Hexastore.sop h)
                  + family (Hexa.Hexastore.pos h)
                in
                [
                  {
                    Harness.size = n_triples;
                    method_ = "shared";
                    seconds = Harness.words_to_mb shared;
                  };
                  {
                    Harness.size = n_triples;
                    method_ = "unshared";
                    seconds = Harness.words_to_mb (shared + extra);
                  };
                ]
            | Stores.Covp _ -> [])
          stores)
      (Lazy.force env.barton)
  in
  print_series ~figure:"abl-share"
    ~title:"Terminal-list sharing: measured vs hypothetical unshared memory (MB)" points

(* abl-star: §4.2's merge-join claim as an executor choice — a 3-arm star
   (Type:Text ∧ Language:French ∧ Origin:DLC) evaluated by the k-way
   merge-join operator vs. the generic index-nested-loop executor. *)
let abl_star env =
  match List.rev (Lazy.force env.barton) with
  | [] -> ()
  | { Harness.stores; dict; n_triples } :: _ -> (
      let hexa =
        List.find_map (function Stores.Hexa h -> Some h | Stores.Covp _ -> None) stores
      in
      match (hexa, Queries_barton.resolve_ids dict) with
      | Some h, Some ids ->
          let constraints =
            [
              { Query.Star.p = ids.type_p; o = Some ids.text };
              { Query.Star.p = ids.language; o = Some ids.french };
              { Query.Star.p = ids.origin; o = Some ids.dlc };
            ]
          in
          let tps =
            [
              Query.Algebra.tp (Query.Algebra.Var "s")
                (Query.Algebra.Term (Rdf.Term.iri Barton.type_p))
                (Query.Algebra.Term (Rdf.Term.iri Barton.text_type));
              Query.Algebra.tp (Query.Algebra.Var "s")
                (Query.Algebra.Term (Rdf.Term.iri Barton.language_p))
                (Query.Algebra.Term (Rdf.Term.string_literal Barton.french));
              Query.Algebra.tp (Query.Algebra.Var "s")
                (Query.Algebra.Term (Rdf.Term.iri Barton.origin_p))
                (Query.Algebra.Term (Rdf.Term.iri Barton.dlc));
            ]
          in
          let boxed = Hexa.Store_sig.box_hexastore h in
          let star_s, n_star =
            Harness.time ~repeats:5 (fun () -> Query.Star.count h constraints)
          in
          let exec_s, n_exec =
            Harness.time ~repeats:5 (fun () ->
                Query.Exec.count boxed
                  (Query.Algebra.Distinct
                     (Query.Algebra.Project ([ "s" ], Query.Algebra.Bgp tps))))
          in
          assert (n_star = n_exec);
          print_series ~figure:"abl-star"
            ~title:
              (Printf.sprintf
                 "3-arm star (Text ∧ French ∧ DLC, %d matches): merge-join vs nested-loop"
                 n_star)
            [
              { Harness.size = n_triples; method_ = "merge-join"; seconds = star_s };
              { Harness.size = n_triples; method_ = "nested-loop"; seconds = exec_s };
            ]
      | _ -> ())

(* abl-partial: the §6 index-selection direction — memory and query cost
   of a workload-recommended partial store against the full sextuple
   store, on the LUBM data. *)
let abl_partial env =
  match List.rev (Lazy.force env.lubm) with
  | [] -> ()
  | { Harness.stores; dict; n_triples } :: _ -> (
      let hexa =
        List.find_map (function Stores.Hexa h -> Some h | Stores.Covp _ -> None) stores
      in
      match (hexa, Queries_lubm.resolve_ids dict) with
      | Some full, Some ids ->
          (* The LUBM benchmark workload's shapes. *)
          let workload =
            [ (Hexa.Pattern.O, 4); (Hexa.Pattern.S, 2); (Hexa.Pattern.Sp, 2);
              (Hexa.Pattern.Po, 3); (Hexa.Pattern.P, 1) ]
          in
          let r = Hexa.Advisor.recommend workload in
          let partial = Hexa.Partial.create ~dict ~orderings:r.keep () in
          let all = Array.of_seq (Hexa.Hexastore.lookup full (Hexa.Pattern.wildcard)) in
          ignore (Hexa.Partial.add_bulk_ids partial all);
          let points =
            [
              {
                Harness.size = n_triples;
                method_ = "memory-full-MB";
                seconds = Harness.words_to_mb (Hexa.Hexastore.memory_words full);
              };
              {
                Harness.size = n_triples;
                method_ = "memory-partial-MB";
                seconds = Harness.words_to_mb (Hexa.Partial.memory_words partial);
              };
            ]
          in
          let timing name pat =
            let f_s, _ =
              Harness.time ~repeats:3 (fun () -> Seq.length (Hexa.Hexastore.lookup full pat))
            in
            let p_s, _ =
              Harness.time ~repeats:3 (fun () -> Seq.length (Hexa.Partial.lookup partial pat))
            in
            [
              { Harness.size = n_triples; method_ = name ^ "-full"; seconds = f_s };
              { Harness.size = n_triples; method_ = name ^ "-partial"; seconds = p_s };
            ]
          in
          let points =
            points
            @ timing "lookup-O" (Hexa.Pattern.make ~o:ids.course10 ())
            @ timing "lookup-S" (Hexa.Pattern.make ~s:ids.assoc_prof10 ())
            @ timing "lookup-So-dropped"
                (Hexa.Pattern.make ~s:ids.assoc_prof10 ~o:ids.course10 ())
          in
          print_series ~figure:"abl-partial"
            ~title:
              (Format.asprintf "Workload-selected partial store (%s) vs full sextuple store"
                 (String.concat "+" (List.map Hexa.Ordering.name r.keep)))
            points
      | _ -> ())

(* abl-cyclic: §2.2.2's Kowari-style scheme — the three cyclic orderings
   {spo, pos, osp} only.  The paper argues such indices "cannot provide,
   for example, a sorted list of the subjects defined for a given
   property"; here that shows up as non-native shapes (P, So, Sp's twin)
   answered by fallback traversals. *)
let abl_cyclic env =
  match List.rev (Lazy.force env.lubm) with
  | [] -> ()
  | { Harness.stores; dict; n_triples } :: _ -> (
      let hexa =
        List.find_map (function Stores.Hexa h -> Some h | Stores.Covp _ -> None) stores
      in
      match (hexa, Queries_lubm.resolve_ids dict) with
      | Some full, Some ids ->
          let cyclic =
            Hexa.Partial.create ~dict
              ~orderings:[ Hexa.Ordering.Spo; Hexa.Ordering.Pos; Hexa.Ordering.Osp ] ()
          in
          let all = Array.of_seq (Hexa.Hexastore.lookup full Hexa.Pattern.wildcard) in
          ignore (Hexa.Partial.add_bulk_ids cyclic all);
          let probe name pat =
            let h_s, n_h =
              Harness.time ~repeats:3 (fun () -> Seq.length (Hexa.Hexastore.lookup full pat))
            in
            let c_s, n_c =
              Harness.time ~repeats:3 (fun () -> Seq.length (Hexa.Partial.lookup cyclic pat))
            in
            assert (n_h = n_c);
            [
              { Harness.size = n_triples; method_ = name ^ "-hexastore"; seconds = h_s };
              { Harness.size = n_triples; method_ = name ^ "-cyclic3"; seconds = c_s };
            ]
          in
          let type_p = ids.type_p in
          (* The paper's §2.2.2 point verbatim: the cyclic indices "cannot
             provide ... a sorted list of the subjects defined for a given
             property".  The Hexastore reads pso's subject vector; the
             cyclic store must collect subjects from pos[p]'s s-lists and
             sort them. *)
          let sorted_subjects_full () =
            match Hexa.Index.find_vector (Hexa.Hexastore.pso full) type_p with
            | None -> 0
            | Some v -> Vectors.Sorted_ivec.length (Hexa.Pair_vector.keys v)
          in
          let sorted_subjects_cyclic () =
            let acc = Vectors.Dynarray_int.create () in
            Seq.iter
              (fun (tr : Dict.Term_dict.id_triple) -> Vectors.Dynarray_int.push acc tr.s)
              (Hexa.Partial.lookup cyclic (Hexa.Pattern.make ~p:type_p ()));
            Vectors.Dynarray_int.sort_uniq acc;
            Vectors.Dynarray_int.length acc
          in
          let full_s, n_f = Harness.time ~repeats:3 sorted_subjects_full in
          let cyc_s, n_c = Harness.time ~repeats:3 sorted_subjects_cyclic in
          assert (n_f = n_c);
          let points =
            probe "lookup-O" (Hexa.Pattern.make ~o:ids.course10 ())
            @ [
                {
                  Harness.size = n_triples;
                  method_ = "sorted-subjects-of-p-hexastore";
                  seconds = full_s;
                };
                {
                  Harness.size = n_triples;
                  method_ = "sorted-subjects-of-p-cyclic3";
                  seconds = cyc_s;
                };
              ]
            @ probe "lookup-So" (Hexa.Pattern.make ~s:ids.assoc_prof10 ~o:ids.university0 ())
            @ [
                {
                  Harness.size = n_triples;
                  method_ = "memory-hexastore-MB";
                  seconds = Harness.words_to_mb (Hexa.Hexastore.memory_words full);
                };
                {
                  Harness.size = n_triples;
                  method_ = "memory-cyclic3-MB";
                  seconds = Harness.words_to_mb (Hexa.Partial.memory_words cyclic);
                };
              ]
          in
          print_series ~figure:"abl-cyclic"
            ~title:"Kowari-style cyclic 3-index scheme (spo+pos+osp) vs the full Hexastore"
            points
      | _ -> ())

(* abl-usage: which of the six indices each benchmark query strategy
   reads on the Hexastore (the §6 observation that some indices are
   seldom used under a given workload). *)
let abl_usage _env =
  Format.printf "# figure abl-usage — index families read by each Hexastore query strategy@.";
  Format.printf "# query  indices@.";
  List.iter
    (fun (q, idx) -> Format.printf "%s %s@." q idx)
    [
      ("BQ1", "pos");
      ("BQ2", "pos,spo");
      ("BQ3", "pos,spo");
      ("BQ4", "pos,spo");
      ("BQ5", "pos,pso,spo");
      ("BQ6", "pos,pso,spo");
      ("BQ7", "pos,pso");
      ("LQ1", "osp");
      ("LQ2", "osp");
      ("LQ3", "spo,osp");
      ("LQ4", "spo,osp");
      ("LQ5", "sop,pos");
      ("(never)", "ops");
    ];
  Format.printf "@."

(* abl-telemetry: cost of the PR-2 instrumentation hooks.  The same
   bulk-load + 2000-count body runs with telemetry disabled (every hook
   is one flag read and a fall-through branch) and enabled (counters,
   histograms and spans recording); "telemetry-off" is the number that
   must not regress against pre-instrumentation baselines. *)
let telemetry_overhead () =
  let dict = Dict.Term_dict.create () in
  let triples =
    Array.of_seq
      (Seq.map (Dict.Term_dict.encode_triple dict)
         (Lubm.generate_seq (Lubm.config ~universities:1 ~departments_per_university:2 ())))
  in
  let probes = Array.sub triples 0 (min 2_000 (Array.length triples)) in
  let body () =
    let h = Hexa.Hexastore.create ~dict () in
    ignore (Hexa.Hexastore.add_bulk_ids h triples);
    let acc = ref 0 in
    Array.iter
      (fun (tr : Dict.Term_dict.id_triple) ->
        acc := !acc + Hexa.Hexastore.count h (Hexa.Pattern.make ~s:tr.s ~p:tr.p ()))
      probes;
    !acc
  in
  let off_s, n_off =
    Telemetry.with_enabled false (fun () -> Harness.time ~warmup:1 ~repeats:5 body)
  in
  let on_s, n_on =
    Telemetry.with_enabled true (fun () -> Harness.time ~warmup:1 ~repeats:5 body)
  in
  assert (n_off = n_on);
  (Array.length triples, off_s, on_s)

let abl_telemetry _env =
  let n, off_s, on_s = telemetry_overhead () in
  print_series ~figure:"abl-telemetry"
    ~title:
      (Printf.sprintf
         "Instrumentation cost, bulk-load of %d triples + 2000 counts (on/off = %.2fx)" n
         (on_s /. off_s))
    [
      { Harness.size = n; method_ = "telemetry-off"; seconds = off_s };
      { Harness.size = n; method_ = "telemetry-on"; seconds = on_s };
    ]

(* profiling: the PR-7 observability section.  Flight-recorder overhead
   is the on/off wall-time ratio of a repeated BGP count with the
   telemetry master gate off in both arms, so the only difference
   between them is the recorder's per-query emissions (the acceptance
   bar is < 5%).  One traced run under a zero slow-query threshold then
   exercises the profiler end to end — slow-log capture with its
   --analyze plan, an Events.Slow_query in the ring — and populates the
   scan-size histogram whose p50/p95/p99 the artifact reports. *)
let with_events flag f =
  let saved = !Telemetry.Events.enabled in
  Telemetry.Events.enabled := flag;
  Fun.protect ~finally:(fun () -> Telemetry.Events.enabled := saved) f

let profiling_json ~mode env =
  match List.rev (Lazy.force env.barton) with
  | [] -> Telemetry.Json.Null
  | { Harness.stores; dict; n_triples } :: _ -> (
      let hexa =
        List.find_map (function Stores.Hexa h -> Some h | Stores.Covp _ -> None) stores
      in
      match (hexa, Queries_barton.resolve_ids dict) with
      | Some h, Some _ ->
          let store = Hexa.Store_sig.box_hexastore h in
          let q = Query.Algebra.Bgp (List.assoc "BQ4J" join_queries) in
          let body () = Query.Exec.count store q in
          (* Per-sample inner loop: amortizes Harness.time's clock reads
             and gives the median something steadier than a single
             ~ms-scale count to chew on. *)
          let iterations = match mode with Smoke -> 10 | Quick | Full -> 30 in
          let loop () =
            let acc = ref 0 in
            for _ = 1 to iterations do
              acc := !acc + body ()
            done;
            !acc
          in
          let time_arm events_on =
            Telemetry.with_enabled false (fun () ->
                with_events events_on (fun () -> Harness.time ~warmup:2 ~repeats:7 loop))
          in
          let off_s, n_off = time_arm false in
          let recorded_before = Telemetry.Events.recorded () in
          let on_s, n_on = time_arm true in
          let recorder_events = Telemetry.Events.recorded () - recorded_before in
          assert (n_off = n_on);
          (* One fully-traced run: zero threshold forces a slow-log entry
             (and its Slow_query ring event) for a query that also feeds
             the scan-size histogram. *)
          let slow_before = Telemetry.Profile.slow_count () in
          let saved_threshold = Telemetry.Profile.slow_threshold_s () in
          let slow_entry =
            Telemetry.with_enabled true (fun () ->
                with_events true (fun () ->
                    Telemetry.Profile.set_threshold_s 0.;
                    Fun.protect
                      ~finally:(fun () -> Telemetry.Profile.set_threshold_s saved_threshold)
                      (fun () ->
                        let _, d = Telemetry.Profile.profiled body in
                        Telemetry.Profile.note ~label:(Query.Exec.query_label q)
                          ~plan:(fun () ->
                            Format.asprintf "%a" Query.Exec.pp_explain
                              (Query.Exec.explain ~analyze:true store q))
                          d;
                        d)))
          in
          let slow_logged = Telemetry.Profile.slow_count () - slow_before in
          let scan_h = Telemetry.Metrics.histogram "hexastore.scan.terminal_size" in
          let quantile qv = Telemetry.Histogram.quantile scan_h qv in
          Telemetry.Json.Obj
            [
              ("triples", Telemetry.Json.Int n_triples);
              ( "flight_recorder",
                Telemetry.Json.Obj
                  [
                    ("iterations", Telemetry.Json.Int iterations);
                    ("events_off_seconds", Telemetry.Json.Float off_s);
                    ("events_on_seconds", Telemetry.Json.Float on_s);
                    ("overhead_ratio", Telemetry.Json.Float (on_s /. off_s));
                    ("events_recorded", Telemetry.Json.Int recorder_events);
                    ("events_dropped", Telemetry.Json.Int (Telemetry.Events.dropped ()));
                    ("ring_capacity", Telemetry.Json.Int (Telemetry.Events.capacity ()));
                  ] );
              ( "slow_query",
                Telemetry.Json.Obj
                  [
                    ("threshold_ms", Telemetry.Json.Float 0.);
                    ("logged", Telemetry.Json.Int slow_logged);
                    ("label", Telemetry.Json.String (Query.Exec.query_label q));
                    ( "wall_ms",
                      Telemetry.Json.Float (slow_entry.Telemetry.Profile.wall_s *. 1e3) );
                    ( "probes",
                      Telemetry.Json.Int
                        (Telemetry.Profile.counter_total ~prefix:"hexastore.probe."
                           slow_entry) );
                  ] );
              ( "scan_terminal_size_quantiles",
                Telemetry.Json.Obj
                  [
                    ("count", Telemetry.Json.Int (Telemetry.Histogram.count scan_h));
                    ("p50", Telemetry.Json.Float (quantile 0.5));
                    ("p95", Telemetry.Json.Float (quantile 0.95));
                    ("p99", Telemetry.Json.Float (quantile 0.99));
                  ] );
            ]
      | _ -> Telemetry.Json.Null)

(* ------------------------------------------------------------------- *)
(* parallel: the PR-8 domain-pool speedup curve                         *)
(* ------------------------------------------------------------------- *)

(* Scan-heavy BGPs at executor fan-out widths 1/2/4 over the largest
   LUBM prefix.  Wall times are telemetry-off medians from
   [Harness.time]; separately, each arm's individual run latencies feed
   a [Telemetry.Histogram] whose p50/p95/p99 land in the JSON artifact.
   The planner's fan-out threshold is forced to 0 for widths > 1 so the
   quick-mode prefixes still split.  On a single-core host the curve
   records the (expected) absence of speedup — the validator only
   demands >1x when the artifact itself says cores >= 2. *)

type par_arm = {
  pa_width : int;
  pa_seconds : float;
  pa_p50_us : float;
  pa_p95_us : float;
  pa_p99_us : float;
}

type par_query = { pq : string; pq_rows : int; pq_arms : par_arm list }

(* One extra pass at the widest width with telemetry on: the pool's own
   accounting ([Query.Par.stats]) plus the task wait/run latency
   histograms from the registry — the PR-9 "pool" section of the JSON
   artifact. *)
type pool_figure = {
  pf_width : int;
  pf_stats : Query.Par.stats;
  pf_wait : Telemetry.Monitor.hist_sample option;
  pf_run : Telemetry.Monitor.hist_sample option;
}

let parallel_widths = [ 1; 2; 4 ]

let parallel_memo : (int * par_query list) option ref = ref None

let pool_memo : pool_figure option ref = ref None

let parallel_results env =
  match !parallel_memo with
  | Some r -> r
  | None ->
      let v name = Query.Algebra.Var name in
      let t iri = Query.Algebra.Term (Rdf.Term.iri iri) in
      let queries =
        [
          ("scan-all", [ Query.Algebra.tp (v "s") (v "p") (v "o") ]);
          ("scan-type", [ Query.Algebra.tp (v "x") (t Rdf.Namespace.rdf_type) (v "c") ]);
          ( "join-type-takes",
            [
              Query.Algebra.tp (v "x") (t Rdf.Namespace.rdf_type) (v "c");
              Query.Algebra.tp (v "x") (t (Rdf.Namespace.ub "takesCourse")) (v "y");
            ] );
          ( "join-member-email",
            [
              Query.Algebra.tp (v "x") (t (Rdf.Namespace.ub "memberOf")) (v "d");
              Query.Algebra.tp (v "x") (t (Rdf.Namespace.ub "emailAddress")) (v "e");
            ] );
        ]
      in
      let r =
        match List.rev (Lazy.force env.lubm) with
        | [] -> (0, [])
        | { Harness.stores; n_triples; dict = _ } :: _ -> (
            match
              List.find_map (function Stores.Hexa h -> Some h | Stores.Covp _ -> None) stores
            with
            | None -> (0, [])
            | Some h ->
                let boxed = Hexa.Store_sig.box_hexastore h in
                let lat_repeats = 8 in
                let arm name q width =
                  Query.Par.with_domains width (fun () ->
                      let saved = !Query.Planner.parallel_min_rows in
                      if width > 1 then Query.Planner.parallel_min_rows := 0;
                      Fun.protect
                        ~finally:(fun () -> Query.Planner.parallel_min_rows := saved)
                        (fun () ->
                          let run () = List.length (Query.Exec.run boxed q) in
                          let seconds, _ =
                            Telemetry.with_enabled false (fun () ->
                                Harness.time ~warmup:1 ~repeats:timing_repeats run)
                          in
                          let hist =
                            Telemetry.Histogram.make
                              (Printf.sprintf "bench.parallel.%s.d%d" name width)
                          in
                          for _ = 1 to lat_repeats do
                            let t0 = Telemetry.Clock.now () in
                            ignore (run ());
                            let us = (Telemetry.Clock.now () -. t0) *. 1e6 in
                            Telemetry.with_enabled true (fun () ->
                                Telemetry.Histogram.observe hist (max 1 (int_of_float us)))
                          done;
                          let quant p = Telemetry.Histogram.quantile hist p in
                          {
                            pa_width = width;
                            pa_seconds = seconds;
                            pa_p50_us = quant 0.5;
                            pa_p95_us = quant 0.95;
                            pa_p99_us = quant 0.99;
                          }))
                in
                let results =
                  List.map
                    (fun (name, tps) ->
                      let q = Query.Algebra.Bgp tps in
                      let rows = List.length (Query.Exec.run boxed q) in
                      { pq = name; pq_rows = rows; pq_arms = List.map (arm name q) parallel_widths })
                    queries
                in
                let () =
                  (* Pool accounting pass: same four BGPs, widest width,
                     telemetry on so the wait/run histograms fill.  Stats
                     are reset first so the lane/submitted/completed
                     invariants the validator checks hold exactly. *)
                  let width = List.fold_left max 1 parallel_widths in
                  Query.Par.with_domains width (fun () ->
                      let saved = !Query.Planner.parallel_min_rows in
                      Query.Planner.parallel_min_rows := 0;
                      Fun.protect
                        ~finally:(fun () -> Query.Planner.parallel_min_rows := saved)
                        (fun () ->
                          Query.Par.reset_stats ();
                          Telemetry.with_enabled true (fun () ->
                              List.iter
                                (fun (_, tps) ->
                                  ignore (Query.Exec.run boxed (Query.Algebra.Bgp tps)))
                                queries);
                          let find name =
                            List.fold_left
                              (fun acc (n, s) ->
                                match s with
                                | Telemetry.Monitor.S_histogram h when n = name -> Some h
                                | _ -> acc)
                              None
                              (Telemetry.Monitor.sample ()).Telemetry.Monitor.metrics
                          in
                          pool_memo :=
                            Some
                              {
                                pf_width = width;
                                pf_stats = Query.Par.stats ();
                                pf_wait = find "par.task.wait_us";
                                pf_run = find "par.task.run_us";
                              }))
                in
                (n_triples, results))
      in
      parallel_memo := Some r;
      (* Leave the process the way the remaining sections expect to find
         it: join the pool's worker domains and compact away this
         section's dead store copies.  Without this the workload medians
         measured next inflate several-fold from the parallel arms'
         leftover heap and domains — a measurement artifact that reads as
         a phantom PR-over-PR regression. *)
      Query.Par.shutdown ();
      Gc.compact ();
      r

let arm_at r w = List.find (fun a -> a.pa_width = w) r.pq_arms

let fig_parallel env =
  match parallel_results env with
  | _, [] -> ()
  | n_triples, results ->
      let points =
        List.concat_map
          (fun r ->
            let t1 = (arm_at r 1).pa_seconds in
            List.map
              (fun a ->
                {
                  Harness.size = n_triples;
                  method_ = Printf.sprintf "%s-d%d" r.pq a.pa_width;
                  seconds = a.pa_seconds;
                })
              r.pq_arms
            @ List.filter_map
                (fun a ->
                  if a.pa_width = 1 then None
                  else
                    Some
                      {
                        Harness.size = n_triples;
                        method_ = Printf.sprintf "%s-speedup-d%d" r.pq a.pa_width;
                        seconds = (if a.pa_seconds > 0. then t1 /. a.pa_seconds else 0.);
                      })
                r.pq_arms)
          results
      in
      let pool_points =
        match !pool_memo with
        | None -> []
        | Some p ->
            let s = p.pf_stats in
            let completed = max 1 s.Query.Par.completed in
            List.mapi
              (fun lane n ->
                {
                  Harness.size = n_triples;
                  method_ = Printf.sprintf "pool-util-lane%d" lane;
                  seconds = float_of_int n /. float_of_int completed;
                })
              (Array.to_list s.Query.Par.lane_tasks)
            @ List.concat_map
                (fun (tag, h) ->
                  match h with
                  | None -> []
                  | Some h ->
                      [
                        {
                          Harness.size = n_triples;
                          method_ = Printf.sprintf "pool-%s-p95-us" tag;
                          seconds = h.Telemetry.Monitor.hs_p95;
                        };
                      ])
                [ ("wait", p.pf_wait); ("run", p.pf_run) ]
      in
      print_series ~figure:"parallel"
        ~title:
          (Printf.sprintf
             "Domain-parallel BGP execution at widths 1/2/4 (%d cores; speedup series are \
              ratios, pool-util series are task fractions per lane, pool-*-p95 series are \
              microseconds)"
             (Domain.recommended_domain_count ()))
        (points @ pool_points)

let parallel_json env =
  match parallel_results env with
  | _, [] -> Telemetry.Json.Null
  | n_triples, results ->
      let arm_json a =
        Telemetry.Json.Obj
          [
            ("seconds", Telemetry.Json.Float a.pa_seconds);
            ("p50_us", Telemetry.Json.Float a.pa_p50_us);
            ("p95_us", Telemetry.Json.Float a.pa_p95_us);
            ("p99_us", Telemetry.Json.Float a.pa_p99_us);
          ]
      in
      let aggregate w =
        let tot1 = List.fold_left (fun acc r -> acc +. (arm_at r 1).pa_seconds) 0. results in
        let totw = List.fold_left (fun acc r -> acc +. (arm_at r w).pa_seconds) 0. results in
        if totw > 0. then tot1 /. totw else 0.
      in
      Telemetry.Json.Obj
        [
          ("cores", Telemetry.Json.Int (Domain.recommended_domain_count ()));
          ("widths", Telemetry.Json.List (List.map (fun w -> Telemetry.Json.Int w) parallel_widths));
          ("triples", Telemetry.Json.Int n_triples);
          ( "queries",
            Telemetry.Json.Obj
              (List.map
                 (fun r ->
                   ( r.pq,
                     Telemetry.Json.Obj
                       (("rows", Telemetry.Json.Int r.pq_rows)
                       :: List.map
                            (fun a -> (Printf.sprintf "d%d" a.pa_width, arm_json a))
                            r.pq_arms) ))
                 results) );
          ( "aggregate_speedup",
            Telemetry.Json.Obj
              (List.filter_map
                 (fun w ->
                   if w = 1 then None
                   else Some (Printf.sprintf "d%d" w, Telemetry.Json.Float (aggregate w)))
                 parallel_widths) );
        ]

let pool_json env =
  ignore (parallel_results env);
  match !pool_memo with
  | None -> Telemetry.Json.Null
  | Some p ->
      let s = p.pf_stats in
      let completed = max 1 s.Query.Par.completed in
      let hist_json = function
        | None -> Telemetry.Json.Null
        | Some h ->
            Telemetry.Json.Obj
              [
                ("count", Telemetry.Json.Int h.Telemetry.Monitor.hs_count);
                ("p50_us", Telemetry.Json.Float h.Telemetry.Monitor.hs_p50);
                ("p95_us", Telemetry.Json.Float h.Telemetry.Monitor.hs_p95);
                ("p99_us", Telemetry.Json.Float h.Telemetry.Monitor.hs_p99);
              ]
      in
      Telemetry.Json.Obj
        [
          ("width", Telemetry.Json.Int p.pf_width);
          ("submitted", Telemetry.Json.Int s.Query.Par.submitted);
          ("completed", Telemetry.Json.Int s.Query.Par.completed);
          ("caller_helped", Telemetry.Json.Int s.Query.Par.caller_helped);
          ("queue_depth", Telemetry.Json.Int s.Query.Par.queue_depth);
          ("in_flight", Telemetry.Json.Int s.Query.Par.in_flight);
          ( "lane_tasks",
            Telemetry.Json.List
              (List.map (fun n -> Telemetry.Json.Int n) (Array.to_list s.Query.Par.lane_tasks)) );
          ( "utilization",
            Telemetry.Json.List
              (List.map
                 (fun n -> Telemetry.Json.Float (float_of_int n /. float_of_int completed))
                 (Array.to_list s.Query.Par.lane_tasks)) );
          ("task_wait_us", hist_json p.pf_wait);
          ("task_run_us", hist_json p.pf_run);
        ]

(* ------------------------------------------------------------------- *)
(* Machine-readable emission (--json): the PR-2 benchmark artifact      *)
(* ------------------------------------------------------------------- *)

(* Wall time (telemetry off, so timings are clean), then one traced run
   whose hexastore.probe.* counter deltas say which indices the query
   actually read. *)
let query_summary store (name, run) =
  let seconds, _ =
    Telemetry.with_enabled false (fun () ->
        Harness.time ~warmup:1 ~repeats:timing_repeats (fun () -> run store))
  in
  let probes =
    Telemetry.with_enabled true (fun () ->
        let before = Telemetry.Metrics.snapshot_counters ~prefix:"hexastore.probe." () in
        run store;
        let after = Telemetry.Metrics.snapshot_counters ~prefix:"hexastore.probe." () in
        List.filter_map
          (fun (k, v) ->
            let v0 = Option.value ~default:0 (List.assoc_opt k before) in
            if v > v0 then Some (k, Telemetry.Json.Int (v - v0)) else None)
          after)
  in
  (name, Telemetry.Json.Obj [ ("seconds", Telemetry.Json.Float seconds); ("probes", Telemetry.Json.Obj probes) ])

let workload_summary sized queries_of =
  match List.rev sized with
  | [] -> Telemetry.Json.Null
  | { Harness.n_triples; stores; dict } :: _ -> (
      let hexa = List.find_opt (function Stores.Hexa _ -> true | Stores.Covp _ -> false) stores in
      match hexa with
      | None -> Telemetry.Json.Null
      | Some store ->
          Telemetry.Json.Obj
            [
              ("triples", Telemetry.Json.Int n_triples);
              ( "memory_mb",
                Telemetry.Json.Float (Harness.words_to_mb (Stores.memory_words store)) );
              ("queries", Telemetry.Json.Obj (List.map (query_summary store) (queries_of dict)));
            ])

let barton_queries dict =
  match Queries_barton.resolve_ids dict with
  | None -> []
  | Some ids ->
      [
        ("BQ1", fun s -> force_list (Queries_barton.bq1 s ids));
        ("BQ2", fun s -> force_list (Queries_barton.bq2 s ids));
        ("BQ3", fun s -> force_list (Queries_barton.bq3 s ids));
        ("BQ4", fun s -> force_list (Queries_barton.bq4 s ids));
        ("BQ5", fun s -> force_list (Queries_barton.bq5 s ids));
        ("BQ6", fun s -> force_list (Queries_barton.bq6 s ids));
        ("BQ7", fun s -> force_list (Queries_barton.bq7 s ids));
      ]

let lubm_queries dict =
  match Queries_lubm.resolve_ids dict with
  | None -> []
  | Some ids ->
      [
        ("LQ1", fun s -> force_list (Queries_lubm.lq1 s ids));
        ("LQ2", fun s -> force_list (Queries_lubm.lq2 s ids));
        ( "LQ3",
          fun s ->
            let out, inc = Queries_lubm.lq3 s ids in
            force_list out;
            force_list inc );
        ("LQ4", fun s -> force_list (Queries_lubm.lq4 s ids));
        ("LQ5", fun s -> force_list (Queries_lubm.lq5 s ids));
      ]

(* ------------------------------------------------------------------- *)
(* The PR-10 representation sweep (figures repr-memory / repr-wall)     *)
(* ------------------------------------------------------------------- *)

(* Each load workload's largest prefix rebuilt under every index
   representation — raw, frame-of-reference bit-packed, delta+varint —
   over the same shared dictionary, so the same resolved query ids run
   against every arm.  Memory comes from the exact per-structure
   accounting; wall time covers the full workload query suites plus the
   join figure's planned BGPs (the acceptance bar: >= 2.5x smaller with
   join wall within 1.3x of raw). *)

type repr_arm = {
  ra_repr : string;
  ra_memory_mb : float;
  ra_aggregate_s : float;
  ra_queries : (string * float) list;
}

type repr_workload = {
  rw_name : string;
  rw_triples : int;
  rw_arms : repr_arm list;
}

type repr_sweep = {
  rs_workloads : repr_workload list;
  rs_join_triples : int;
  rs_join : (string * float) list;  (* representation name, planned wall *)
}

let repr_kinds = Vectors.Sorted_ivec.[ Raw; Packed; Delta_varint ]

let repr_cache : repr_sweep option ref = ref None

let hexa_of stores =
  List.find_map (function Stores.Hexa h -> Some h | Stores.Covp _ -> None) stores

let rebuild_as kind h =
  let triples =
    Array.of_list (List.rev (Hexa.Hexastore.fold (fun tr acc -> tr :: acc) h []))
  in
  let fresh = Hexa.Hexastore.create ~dict:(Hexa.Hexastore.dict h) ~repr:kind () in
  ignore (Hexa.Hexastore.add_bulk_ids fresh triples);
  fresh

let repr_results env =
  match !repr_cache with
  | Some r -> r
  | None ->
      let workload rw_name sized queries_of =
        match List.rev sized with
        | [] -> None
        | { Harness.n_triples; stores; dict } :: _ ->
            Option.map
              (fun h ->
                let queries = queries_of dict in
                let arms =
                  List.map
                    (fun kind ->
                      let store = Stores.Hexa (rebuild_as kind h) in
                      let ra_queries =
                        List.map
                          (fun (qname, run) ->
                            let seconds, _ =
                              Telemetry.with_enabled false (fun () ->
                                  Harness.time ~warmup:1 ~repeats:timing_repeats (fun () ->
                                      run store))
                            in
                            (qname, seconds))
                          queries
                      in
                      {
                        ra_repr = Vectors.Sorted_ivec.kind_name kind;
                        ra_memory_mb = Harness.words_to_mb (Stores.memory_words store);
                        ra_aggregate_s = List.fold_left (fun a (_, s) -> a +. s) 0. ra_queries;
                        ra_queries;
                      })
                    repr_kinds
                in
                { rw_name; rw_triples = n_triples; rw_arms = arms })
              (hexa_of stores)
      in
      let rs_join_triples, rs_join =
        match List.rev (Lazy.force env.barton) with
        | [] -> (0, [])
        | { Harness.stores; dict; n_triples } :: _ -> (
            match (hexa_of stores, Queries_barton.resolve_ids dict) with
            | Some h, Some _ ->
                ( n_triples,
                  List.map
                    (fun kind ->
                      let store = Hexa.Store_sig.box_hexastore (rebuild_as kind h) in
                      let seconds =
                        List.fold_left
                          (fun acc (_, tps) ->
                            let s, _ =
                              Telemetry.with_enabled false (fun () ->
                                  Harness.time ~warmup:1 ~repeats:timing_repeats (fun () ->
                                      Query.Exec.count store (Query.Algebra.Bgp tps)))
                            in
                            acc +. s)
                          0. join_queries
                      in
                      (Vectors.Sorted_ivec.kind_name kind, seconds))
                    repr_kinds )
            | _ -> (0, []))
      in
      let r =
        {
          rs_workloads =
            List.filter_map Fun.id
              [
                workload "lubm" (Lazy.force env.lubm) lubm_queries;
                workload "barton" (Lazy.force env.barton) barton_queries;
              ];
          rs_join_triples;
          rs_join;
        }
      in
      repr_cache := Some r;
      r

let fig_repr env =
  let r = repr_results env in
  let mem_points =
    List.concat_map
      (fun w ->
        List.map
          (fun a ->
            {
              Harness.size = w.rw_triples;
              method_ = w.rw_name ^ "-" ^ a.ra_repr;
              seconds = a.ra_memory_mb;
            })
          w.rw_arms)
      r.rs_workloads
  in
  print_series ~figure:"repr-memory"
    ~title:"Index representation footprint per workload (MB, not seconds)" mem_points;
  let wall_points =
    List.concat_map
      (fun w ->
        List.map
          (fun a ->
            {
              Harness.size = w.rw_triples;
              method_ = w.rw_name ^ "-" ^ a.ra_repr;
              seconds = a.ra_aggregate_s;
            })
          w.rw_arms)
      r.rs_workloads
    @ List.map
        (fun (k, s) -> { Harness.size = r.rs_join_triples; method_ = "join-" ^ k; seconds = s })
        r.rs_join
  in
  print_series ~figure:"repr-wall"
    ~title:"Aggregate query wall time per index representation (workload suites + join BGPs)"
    wall_points

let repr_json env =
  let r = repr_results env in
  match r.rs_workloads with
  | [] -> Telemetry.Json.Null
  | _ ->
      let arm a =
        Telemetry.Json.Obj
          [
            ("memory_mb", Telemetry.Json.Float a.ra_memory_mb);
            ("aggregate_seconds", Telemetry.Json.Float a.ra_aggregate_s);
            ( "queries",
              Telemetry.Json.Obj
                (List.map (fun (q, s) -> (q, Telemetry.Json.Float s)) a.ra_queries) );
          ]
      in
      Telemetry.Json.Obj
        [
          ( "workloads",
            Telemetry.Json.Obj
              (List.map
                 (fun w ->
                   ( w.rw_name,
                     Telemetry.Json.Obj
                       (("triples", Telemetry.Json.Int w.rw_triples)
                       :: List.map (fun a -> (a.ra_repr, arm a)) w.rw_arms) ))
                 r.rs_workloads) );
          ( "join",
            Telemetry.Json.Obj
              (("triples", Telemetry.Json.Int r.rs_join_triples)
              :: List.map
                   (fun (k, s) ->
                     (k, Telemetry.Json.Obj [ ("aggregate_seconds", Telemetry.Json.Float s) ]))
                   r.rs_join) );
        ]

let figure_json (figure, title, points) =
  Telemetry.Json.Obj
    [
      ("figure", Telemetry.Json.String figure);
      ("title", Telemetry.Json.String title);
      ( "points",
        Telemetry.Json.List
          (List.map
             (fun { Harness.size; method_; seconds } ->
               Telemetry.Json.Obj
                 [
                   ("size", Telemetry.Json.Int size);
                   ("method", Telemetry.Json.String method_);
                   ("seconds", Telemetry.Json.Float seconds);
                 ])
             points) );
    ]

let join_json env =
  match join_results env with
  | [] -> Telemetry.Json.Null
  | results ->
      let arm a =
        Telemetry.Json.Obj
          [
            ("seconds", Telemetry.Json.Float a.arm_seconds);
            ("probes", Telemetry.Json.Int a.arm_probes);
          ]
      in
      Telemetry.Json.Obj
        [
          ("triples", Telemetry.Json.Int (List.hd results).jq_triples);
          ( "queries",
            Telemetry.Json.Obj
              (List.map
                 (fun r ->
                   ( r.jq,
                     Telemetry.Json.Obj
                       [
                         ("rows", Telemetry.Json.Int r.jq_rows);
                         ("nested", arm r.nested);
                         ("planned", arm r.planned);
                       ] ))
                 results) );
        ]

let emit_json ~mode ~path env =
  let overhead_triples, off_s, on_s = telemetry_overhead () in
  let json =
    Telemetry.Json.Obj
      [
        ("schema", Telemetry.Json.String "hexastore-bench/v1");
        ("pr", Telemetry.Json.Int 10);
        ("mode", Telemetry.Json.String (mode_name mode));
        ("join", join_json env);
        ("parallel", parallel_json env);
        ("pool", pool_json env);
        ("repr", repr_json env);
        ("profiling", profiling_json ~mode env);
        ( "workloads",
          Telemetry.Json.Obj
            [
              ("lubm", workload_summary (Lazy.force env.lubm) lubm_queries);
              ("barton", workload_summary (Lazy.force env.barton) barton_queries);
            ] );
        ( "telemetry_overhead",
          Telemetry.Json.Obj
            [
              ("triples", Telemetry.Json.Int overhead_triples);
              ("disabled_seconds", Telemetry.Json.Float off_s);
              ("enabled_seconds", Telemetry.Json.Float on_s);
              ("enabled_over_disabled", Telemetry.Json.Float (on_s /. off_s));
            ] );
        ("figures", Telemetry.Json.List (List.map figure_json (List.rev !collected)));
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Telemetry.Json.to_string ~indent:2 json);
      output_char oc '\n');
  Format.printf "# wrote %s@." path

(* ------------------------------------------------------------------- *)
(* Bechamel micro-benchmarks (one grouped test per figure)              *)
(* ------------------------------------------------------------------- *)

let bechamel_suite env =
  let open Bechamel in
  let sized_last l = List.nth l (List.length l - 1) in
  let barton = sized_last (Lazy.force env.barton) in
  let lubm = sized_last (Lazy.force env.lubm) in
  let barton_ids = Option.get (Queries_barton.resolve_ids barton.Harness.dict) in
  let lubm_ids = Option.get (Queries_lubm.resolve_ids lubm.Harness.dict) in
  let per_store sized run =
    List.map
      (fun store -> Test.make ~name:(Stores.name store) (Staged.stage (fun () -> run store)))
      sized.Harness.stores
  in
  let group name sized run = Test.make_grouped ~name (per_store sized run) in
  let tests =
    [
      group "fig3/BQ1" barton (fun s -> force_list (Queries_barton.bq1 s barton_ids));
      group "fig4/BQ2" barton (fun s -> force_list (Queries_barton.bq2 s barton_ids));
      group "fig5/BQ3" barton (fun s -> force_list (Queries_barton.bq3 s barton_ids));
      group "fig6/BQ4" barton (fun s -> force_list (Queries_barton.bq4 s barton_ids));
      group "fig7/BQ5" barton (fun s -> force_list (Queries_barton.bq5 s barton_ids));
      group "fig8/BQ6" barton (fun s -> force_list (Queries_barton.bq6 s barton_ids));
      group "fig9/BQ7" barton (fun s -> force_list (Queries_barton.bq7 s barton_ids));
      group "fig10/LQ1" lubm (fun s -> force_list (Queries_lubm.lq1 s lubm_ids));
      group "fig11/LQ2" lubm (fun s -> force_list (Queries_lubm.lq2 s lubm_ids));
      group "fig12/LQ3" lubm (fun s ->
          let o, i = Queries_lubm.lq3 s lubm_ids in
          force_list o;
          force_list i);
      group "fig13/LQ4" lubm (fun s -> force_list (Queries_lubm.lq4 s lubm_ids));
      group "fig14/LQ5" lubm (fun s -> force_list (Queries_lubm.lq5 s lubm_ids));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  Format.printf "# Bechamel OLS estimates (ns/run), monotonic clock@.";
  List.iter
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.all
          (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
          instance raw
      in
      let rows = Hashtbl.fold (fun name res acc -> (name, res) :: acc) ols [] in
      List.iter
        (fun (name, res) ->
          match Analyze.OLS.estimates res with
          | Some [ ns ] -> Format.printf "%-36s %14.0f ns/run@." name ns
          | _ -> Format.printf "%-36s (no estimate)@." name)
        (List.sort compare rows))
    tests

(* ------------------------------------------------------------------- *)
(* CLI                                                                  *)
(* ------------------------------------------------------------------- *)

let figures =
  [
    ("fig3", fig3); ("fig4", fig4); ("fig5", fig5); ("fig6", fig6); ("fig7", fig7);
    ("fig8", fig8); ("fig9", fig9); ("fig10", fig10); ("fig11", fig11); ("fig12", fig12);
    ("fig13", fig13); ("fig14", fig14); ("fig15", fig15);
    ("abl-load", abl_load); ("abl-join", abl_join); ("abl-join-kernel", abl_join_kernel);
    ("abl-dict", abl_dict);
    ("abl-share", abl_share); ("abl-star", abl_star); ("abl-partial", abl_partial);
    ("abl-cyclic", abl_cyclic); ("abl-usage", abl_usage); ("abl-telemetry", abl_telemetry);
    ("parallel", fig_parallel); ("repr", fig_repr);
  ]

let run_bench full smoke selected bechamel list_only json_path =
  if list_only then begin
    List.iter (fun (name, _) -> print_endline name) figures;
    0
  end
  else begin
    let mode = if smoke then Smoke else if full then Full else Quick in
    let env = make_env mode in
    Format.printf "# Hexastore benchmark harness — mode: %s@." (mode_name mode);
    if bechamel then bechamel_suite env
    else begin
      let to_run =
        match selected with
        | [] -> figures
        | names ->
            List.filter_map
              (fun n ->
                match List.assoc_opt n figures with
                | Some f -> Some (n, f)
                | None ->
                    Format.eprintf "unknown figure %S (use --list)@." n;
                    None)
              names
      in
      List.iter (fun (_, f) -> f env) to_run;
      Option.iter (fun path -> emit_json ~mode ~path env) json_path
    end;
    0
  end

let () =
  let open Cmdliner in
  let full =
    Arg.(value & flag & info [ "full" ] ~doc:"Full-size sweeps (paper-scale prefixes; slower).")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ] ~doc:"Tiny seconds-scale sweeps (CI smoke test; overrides --full).")
  in
  let figure =
    Arg.(
      value & opt_all string []
      & info [ "figure"; "f" ] ~docv:"ID" ~doc:"Run only this figure (repeatable); see --list.")
  in
  let bechamel =
    Arg.(value & flag & info [ "bechamel" ] ~doc:"Run the Bechamel micro-benchmark suite instead.")
  in
  let list_only = Arg.(value & flag & info [ "list" ] ~doc:"List figure ids and exit.") in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "After the figures, write the whole run (figure series, per-query wall times and \
             index-probe counters, memory, telemetry overhead) as JSON to $(docv).")
  in
  let term = Term.(const run_bench $ full $ smoke $ figure $ bechamel $ list_only $ json_path) in
  let info =
    Cmd.info "hexastore-bench"
      ~doc:
        "Regenerate the figures of 'Hexastore: Sextuple Indexing for Semantic Web Data Management'"
  in
  exit (Cmd.eval' (Cmd.v info term))
