lib/vectors/pair_key.ml: Printf
