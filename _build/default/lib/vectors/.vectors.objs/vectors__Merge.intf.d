lib/vectors/merge.mli: Seq Sorted_ivec
