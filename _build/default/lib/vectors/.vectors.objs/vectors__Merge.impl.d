lib/vectors/merge.ml: Array Dynarray_int Seq Sorted_ivec
