lib/vectors/sorted_ivec.ml: Array Dynarray_int Seq
