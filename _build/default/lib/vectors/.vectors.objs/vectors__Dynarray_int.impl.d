lib/vectors/dynarray_int.ml: Array Format Printf Seq
