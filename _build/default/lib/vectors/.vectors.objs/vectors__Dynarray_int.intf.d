lib/vectors/dynarray_int.mli: Format Seq
