lib/vectors/pair_key.mli:
