lib/vectors/sorted_ivec.mli: Format Seq
