(** Packing a pair of dictionary ids into one OCaml [int].

    The shared terminal-list tables of the Hexastore are keyed by pairs of
    resource ids — (s,p) for o-lists, (s,o) for p-lists, (p,o) for s-lists.
    Dictionary ids are dense and far below 2{^31}, and a native OCaml [int]
    has 63 bits, so a pair packs losslessly into one unboxed key and the
    tables can be plain [(int, _) Hashtbl.t] with no allocation per probe. *)

val max_id : int
(** Largest id that can participate in a packed pair (2{^31} - 1). *)

val make : int -> int -> int
(** [make a b] packs [(a, b)].
    @raise Invalid_argument if either component is negative or exceeds
    {!max_id}. *)

val fst : int -> int
val snd : int -> int

val unpack : int -> int * int
