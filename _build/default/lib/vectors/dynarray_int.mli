(** Growable arrays of unboxed integers.

    OCaml 5.1's standard library has no [Dynarray] (it appears in 5.2), and
    the Hexastore index structures need millions of append-heavy int
    sequences, so this module provides a minimal, allocation-friendly
    dynamic array specialised to [int].  Elements are stored unboxed in a
    flat [int array]; doubling growth gives amortised O(1) [push]. *)

type t

val create : ?capacity:int -> unit -> t
(** [create ?capacity ()] is an empty dynamic array.  [capacity] is the
    initial size of the backing store (default 8; clamped to at least 1). *)

val of_array : int array -> t
(** [of_array a] copies [a] into a fresh dynamic array. *)

val of_list : int list -> t

val length : t -> int

val is_empty : t -> bool

val capacity : t -> int
(** Current size of the backing store; [capacity v >= length v]. *)

val get : t -> int -> int
(** [get v i] is the [i]-th element.  @raise Invalid_argument if
    [i < 0 || i >= length v]. *)

val unsafe_get : t -> int -> int
(** [unsafe_get v i] is [get v i] without the bounds check.  Only for
    inner loops that have already established the bound. *)

val set : t -> int -> int -> unit
(** [set v i x] replaces the [i]-th element.  @raise Invalid_argument if
    out of bounds. *)

val push : t -> int -> unit
(** [push v x] appends [x], growing the backing store if needed. *)

val pop : t -> int
(** [pop v] removes and returns the last element.
    @raise Invalid_argument on an empty array. *)

val last : t -> int
(** @raise Invalid_argument on an empty array. *)

val clear : t -> unit
(** [clear v] sets the length to 0 without shrinking the backing store. *)

val truncate : t -> int -> unit
(** [truncate v n] shortens [v] to [n] elements.
    @raise Invalid_argument if [n < 0 || n > length v]. *)

val insert : t -> int -> int -> unit
(** [insert v i x] inserts [x] at position [i], shifting the suffix right.
    O(length - i).  @raise Invalid_argument if [i < 0 || i > length v]. *)

val remove : t -> int -> unit
(** [remove v i] deletes position [i], shifting the suffix left.
    @raise Invalid_argument if out of bounds. *)

val append : t -> t -> unit
(** [append dst src] pushes all of [src] onto [dst]. *)

val iter : (int -> unit) -> t -> unit

val iteri : (int -> int -> unit) -> t -> unit

val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a

val exists : (int -> bool) -> t -> bool

val for_all : (int -> bool) -> t -> bool

val map_inplace : (int -> int) -> t -> unit

val to_array : t -> int array

val to_list : t -> int list

val to_seq : t -> int Seq.t
(** Sequence of elements at the time each element is forced; concurrent
    mutation while consuming the sequence is unspecified. *)

val sub : t -> int -> int -> int array
(** [sub v pos len] copies the slice as a fresh array. *)

val copy : t -> t

val blit_into : t -> int array -> int -> unit
(** [blit_into v dst pos] copies all elements into [dst] at [pos]. *)

val sort : t -> unit
(** In-place ascending sort of the live elements. *)

val sort_uniq : t -> unit
(** [sort_uniq v] sorts ascending and removes duplicates in place. *)

val equal : t -> t -> bool
(** Structural equality on the live elements. *)

val memory_words : t -> int
(** Approximate heap footprint in machine words (backing store + header),
    used by the benchmark memory accounting. *)

val pp : Format.formatter -> t -> unit
