type t = {
  mutable data : int array;
  mutable len : int;
}

let create ?(capacity = 8) () =
  let capacity = max capacity 1 in
  { data = Array.make capacity 0; len = 0 }

let length v = v.len
let is_empty v = v.len = 0
let capacity v = Array.length v.data

let of_array a =
  let n = Array.length a in
  { data = (if n = 0 then Array.make 1 0 else Array.copy a); len = n }

let of_list l = of_array (Array.of_list l)

let check_index v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Dynarray_int: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check_index v i;
  Array.unsafe_get v.data i

let unsafe_get v i = Array.unsafe_get v.data i

let set v i x =
  check_index v i;
  Array.unsafe_set v.data i x

let ensure_capacity v n =
  let cap = Array.length v.data in
  if n > cap then begin
    let new_cap = max n (max 8 (2 * cap)) in
    let data = Array.make new_cap 0 in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure_capacity v (v.len + 1);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Dynarray_int.pop: empty";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let last v =
  if v.len = 0 then invalid_arg "Dynarray_int.last: empty";
  Array.unsafe_get v.data (v.len - 1)

let clear v = v.len <- 0

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Dynarray_int.truncate";
  v.len <- n

let insert v i x =
  if i < 0 || i > v.len then invalid_arg "Dynarray_int.insert";
  ensure_capacity v (v.len + 1);
  Array.blit v.data i v.data (i + 1) (v.len - i);
  Array.unsafe_set v.data i x;
  v.len <- v.len + 1

let remove v i =
  check_index v i;
  Array.blit v.data (i + 1) v.data i (v.len - i - 1);
  v.len <- v.len - 1

let append dst src =
  ensure_capacity dst (dst.len + src.len);
  Array.blit src.data 0 dst.data dst.len src.len;
  dst.len <- dst.len + src.len

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec loop i = i < v.len && (p (Array.unsafe_get v.data i) || loop (i + 1)) in
  loop 0

let for_all p v = not (exists (fun x -> not (p x)) v)

let map_inplace f v =
  for i = 0 to v.len - 1 do
    Array.unsafe_set v.data i (f (Array.unsafe_get v.data i))
  done

let to_array v = Array.sub v.data 0 v.len

let to_list v = Array.to_list (to_array v)

let to_seq v =
  let rec aux i () =
    if i >= v.len then Seq.Nil else Seq.Cons (Array.unsafe_get v.data i, aux (i + 1))
  in
  aux 0

let sub v pos len =
  if pos < 0 || len < 0 || pos + len > v.len then invalid_arg "Dynarray_int.sub";
  Array.sub v.data pos len

let copy v = { data = Array.copy v.data; len = v.len }

let blit_into v dst pos = Array.blit v.data 0 dst pos v.len

(* Sorting is done on a trimmed copy: [Array.sort] over the full backing
   store would mix live elements with stale slack. *)
let sort v =
  let a = to_array v in
  Array.sort compare a;
  Array.blit a 0 v.data 0 v.len

let sort_uniq v =
  sort v;
  if v.len > 1 then begin
    let w = ref 1 in
    for r = 1 to v.len - 1 do
      let x = Array.unsafe_get v.data r in
      if x <> Array.unsafe_get v.data (!w - 1) then begin
        Array.unsafe_set v.data !w x;
        incr w
      end
    done;
    v.len <- !w
  end

let equal a b =
  a.len = b.len
  &&
  let rec loop i =
    i >= a.len || (Array.unsafe_get a.data i = Array.unsafe_get b.data i && loop (i + 1))
  in
  loop 0

let memory_words v = Array.length v.data + 1 + 3

let pp ppf v =
  Format.fprintf ppf "[|%a|]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Format.pp_print_int)
    (to_list v)
