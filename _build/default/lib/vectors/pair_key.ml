let bits = 31
let max_id = (1 lsl bits) - 1

let make a b =
  if a < 0 || a > max_id || b < 0 || b > max_id then
    invalid_arg (Printf.sprintf "Pair_key.make: id out of range (%d, %d)" a b);
  (a lsl bits) lor b

let fst k = k lsr bits
let snd k = k land max_id
let unpack k = (fst k, snd k)
