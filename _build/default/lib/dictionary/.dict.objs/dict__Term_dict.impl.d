lib/dictionary/term_dict.ml: Array Dictionary Format Printf Rdf
