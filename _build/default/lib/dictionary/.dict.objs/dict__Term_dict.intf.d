lib/dictionary/term_dict.mli: Format Rdf
