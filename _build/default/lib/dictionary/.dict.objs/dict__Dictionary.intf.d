lib/dictionary/dictionary.mli:
