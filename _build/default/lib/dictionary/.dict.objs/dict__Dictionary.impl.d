lib/dictionary/dictionary.ml: Array Hashtbl Printf String Vectors
