type t = {
  by_string : (string, int) Hashtbl.t;
  mutable by_id : string array;  (* index = id; grows by doubling *)
  mutable next : int;
}

let max_ids = Vectors.Pair_key.max_id + 1

let create ?(initial_size = 1024) () =
  {
    by_string = Hashtbl.create initial_size;
    by_id = Array.make (max initial_size 1) "";
    next = 0;
  }

let size d = d.next

let find d s = Hashtbl.find_opt d.by_string s

let mem d s = Hashtbl.mem d.by_string s

let encode d s =
  match Hashtbl.find_opt d.by_string s with
  | Some id -> id
  | None ->
      if d.next >= max_ids then invalid_arg "Dictionary.encode: id space exhausted";
      let id = d.next in
      if id >= Array.length d.by_id then begin
        let bigger = Array.make (2 * Array.length d.by_id) "" in
        Array.blit d.by_id 0 bigger 0 id;
        d.by_id <- bigger
      end;
      d.by_id.(id) <- s;
      Hashtbl.add d.by_string s id;
      d.next <- id + 1;
      id

let decode d id =
  if id < 0 || id >= d.next then
    invalid_arg (Printf.sprintf "Dictionary.decode: unknown id %d" id);
  d.by_id.(id)

let iter f d =
  for id = 0 to d.next - 1 do
    f id d.by_id.(id)
  done

let fold f d acc =
  let acc = ref acc in
  iter (fun id s -> acc := f id s !acc) d;
  !acc

let memory_words d =
  let string_words = fold (fun _ s acc -> acc + 1 + ((String.length s + 8) / 8)) d 0 in
  (* hash table ≈ 3 words per binding + bucket array; id array. *)
  string_words + (3 * d.next) + Array.length d.by_id
