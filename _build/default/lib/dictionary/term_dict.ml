type id_triple = {
  s : int;
  p : int;
  o : int;
}

(* Terms are keyed by their unambiguous N-Triples spelling, so the
   underlying table is a plain string dictionary and decoding re-parses
   the tag.  A marker byte distinguishes the three cases cheaply. *)
type t = {
  strings : Dictionary.t;
  mutable terms : Rdf.Term.t array;  (* id -> term, grows with the dictionary *)
}

let create ?initial_size () =
  { strings = Dictionary.create ?initial_size (); terms = Array.make 1024 (Rdf.Term.Iri "-") }

let key_of_term t = Rdf.Term.to_string t

let store_term d id term =
  if id >= Array.length d.terms then begin
    let bigger = Array.make (max (2 * Array.length d.terms) (id + 1)) (Rdf.Term.Iri "-") in
    Array.blit d.terms 0 bigger 0 (Array.length d.terms);
    d.terms <- bigger
  end;
  d.terms.(id) <- term

let encode_term d term =
  let key = key_of_term term in
  let before = Dictionary.size d.strings in
  let id = Dictionary.encode d.strings key in
  if id >= before then store_term d id term;
  id

let find_term d term = Dictionary.find d.strings (key_of_term term)

let decode_term d id =
  if id < 0 || id >= Dictionary.size d.strings then
    invalid_arg (Printf.sprintf "Term_dict.decode_term: unknown id %d" id);
  d.terms.(id)

let encode_triple d (t : Rdf.Triple.t) =
  { s = encode_term d t.s; p = encode_term d t.p; o = encode_term d t.o }

let find_triple d (t : Rdf.Triple.t) =
  match (find_term d t.s, find_term d t.p, find_term d t.o) with
  | Some s, Some p, Some o -> Some { s; p; o }
  | _ -> None

let decode_triple d { s; p; o } =
  Rdf.Triple.make (decode_term d s) (decode_term d p) (decode_term d o)

let size d = Dictionary.size d.strings

let memory_words d = Dictionary.memory_words d.strings + Array.length d.terms

let pp_id d ppf id =
  if id >= 0 && id < size d then Rdf.Term.pp ppf (decode_term d id)
  else Format.fprintf ppf "?%d" id
