(** Dictionary encoding over RDF terms.

    The store-facing layer of the mapping table: encodes whole
    {!Rdf.Term.t} values (not just their strings) so that an IRI, a blank
    node and a literal with the same spelling get distinct ids, and encodes
    triples to id-triples ready for the six indices. *)

type t

(** An encoded triple: ids of subject, predicate, object. *)
type id_triple = {
  s : int;
  p : int;
  o : int;
}

val create : ?initial_size:int -> unit -> t

val encode_term : t -> Rdf.Term.t -> int
(** Id of the term, allocated on first sight. *)

val find_term : t -> Rdf.Term.t -> int option
(** Lookup without allocation. *)

val decode_term : t -> int -> Rdf.Term.t
(** @raise Invalid_argument on an unallocated id. *)

val encode_triple : t -> Rdf.Triple.t -> id_triple

val find_triple : t -> Rdf.Triple.t -> id_triple option
(** [None] when any of the three terms is unknown. *)

val decode_triple : t -> id_triple -> Rdf.Triple.t

val size : t -> int

val memory_words : t -> int

val pp_id : t -> Format.formatter -> int -> unit
(** Prints the term behind an id (or [?id] when unallocated); debug aid. *)
