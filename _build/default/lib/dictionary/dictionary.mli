(** Dictionary encoding of strings as dense integer ids.

    §4.1: "we map string URIs to integer identifiers.  Thus, apart from the
    six indices using identifiers (i.e., keys) for each RDF element value,
    a Hexastore also maintains a mapping table that maps these keys to
    their corresponding strings."

    Ids are allocated densely from 0 in first-seen order, so they double as
    array indices throughout the store.  The dictionary is append-only:
    RDF stores never garbage-collect the mapping table (a removed triple's
    terms may be re-added, and id stability keeps the indices valid). *)

type t

val create : ?initial_size:int -> unit -> t

val encode : t -> string -> int
(** [encode d s] is the id of [s], allocating a fresh one on first sight.
    @raise Invalid_argument once the id space (2{^31} ids) is exhausted. *)

val find : t -> string -> int option
(** Lookup without allocation: [None] when [s] was never encoded.  Queries
    use this so that asking about an unknown resource cannot grow the
    dictionary. *)

val decode : t -> int -> string
(** @raise Invalid_argument when [id] was never allocated. *)

val size : t -> int
(** Number of allocated ids; ids are exactly [0 .. size - 1]. *)

val mem : t -> string -> bool

val iter : (int -> string -> unit) -> t -> unit
(** In ascending id order. *)

val fold : (int -> string -> 'a -> 'a) -> t -> 'a -> 'a

val memory_words : t -> int
(** Approximate heap words used by the table and the stored strings. *)
