lib/core/snapshot.mli: Hexastore
