lib/core/covp.ml: Array Dict Hashtbl Hexastore Index Int List Option Pair_key Pair_vector Pattern Seq Sorted_ivec Vectors
