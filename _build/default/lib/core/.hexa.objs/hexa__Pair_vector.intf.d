lib/core/pair_vector.mli: Seq Vectors
