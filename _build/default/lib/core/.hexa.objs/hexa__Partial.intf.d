lib/core/partial.mli: Dict Ordering Pattern Seq
