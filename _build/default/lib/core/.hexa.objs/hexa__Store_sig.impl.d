lib/core/store_sig.ml: Array Covp Dict Hexastore List Partial Pattern Seq
