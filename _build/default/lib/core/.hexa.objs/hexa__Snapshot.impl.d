lib/core/snapshot.ml: Array Bytes Char Dict Fun Hexastore Int64 Pattern Printf Rdf Seq String Sys
