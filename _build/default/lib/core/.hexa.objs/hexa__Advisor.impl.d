lib/core/advisor.ml: Format Hashtbl Hexastore Index List Option Ordering Pair_vector Pattern String Vectors
