lib/core/dataset.ml: Array Dict Hashtbl Hexastore List Pattern Rdf Seq
