lib/core/pair_vector.ml: Array Dynarray_int Seq Sorted_ivec Vectors
