lib/core/index.mli: Pair_vector Vectors
