lib/core/dataset.mli: Dict Hexastore Pattern Rdf Seq
