lib/core/advisor.mli: Format Hexastore Ordering Pattern
