lib/core/ordering.mli: Format Pattern Set
