lib/core/covp.mli: Dict Hexastore Pair_vector Pattern Rdf Seq Vectors
