lib/core/hexastore.mli: Dict Index Pattern Rdf Seq Vectors
