lib/core/stats.ml: Format Hexastore Index List Pair_vector Sorted_ivec Vectors
