lib/core/partial.ml: Array Dict Hashtbl Index List Option Ordering Pair_key Pair_vector Pattern Seq Sorted_ivec Vectors
