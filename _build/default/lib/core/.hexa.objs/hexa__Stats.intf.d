lib/core/stats.mli: Format Hexastore Pattern
