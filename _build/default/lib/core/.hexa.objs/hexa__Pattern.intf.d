lib/core/pattern.mli: Dict Format
