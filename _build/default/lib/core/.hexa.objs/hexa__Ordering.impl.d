lib/core/ordering.ml: Format Pattern Set Stdlib
