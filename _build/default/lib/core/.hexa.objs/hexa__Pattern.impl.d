lib/core/pattern.ml: Dict Format
