lib/core/hexastore.ml: Array Dict Hashtbl Index Int List Option Pair_key Pair_vector Pattern Seq Sorted_ivec Vectors
