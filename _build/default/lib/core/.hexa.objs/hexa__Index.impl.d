lib/core/index.ml: Hashtbl List Pair_vector Vectors
