open Vectors

type kind =
  | Covp1
  | Covp2

type t = {
  kind : kind;
  dict : Dict.Term_dict.t;
  pso : Index.t;                                  (* p -> subject vector -> o-list *)
  o_lists : (int, Sorted_ivec.t) Hashtbl.t;       (* (p,s) -> objects *)
  pos : Index.t option;                           (* p -> object vector -> s-list; Covp2 *)
  s_lists : (int, Sorted_ivec.t) Hashtbl.t;       (* (p,o) -> subjects; Covp2 *)
  mutable restriction : Sorted_ivec.t option;     (* the "28 properties" set *)
  mutable size : int;
}

let create ?dict kind =
  let dict = match dict with Some d -> d | None -> Dict.Term_dict.create () in
  {
    kind;
    dict;
    pso = Index.create ();
    o_lists = Hashtbl.create 1024;
    pos = (match kind with Covp1 -> None | Covp2 -> Some (Index.create ()));
    s_lists = Hashtbl.create 1024;
    restriction = None;
    size = 0;
  }

let kind t = t.kind
let dict t = t.dict
let size t = t.size

let get_or_create_list table key =
  match Hashtbl.find_opt table key with
  | Some l -> l
  | None ->
      let l = Sorted_ivec.create ~capacity:2 () in
      Hashtbl.add table key l;
      l

let link index ~first ~second l =
  let v = Index.get_or_create_vector index first in
  ignore (Pair_vector.get_or_insert v second (fun () -> l));
  Pair_vector.bump_total v 1

let add_ids t ({ s; p; o } : Hexastore.id_triple) =
  let o_list = get_or_create_list t.o_lists (Pair_key.make p s) in
  if not (Sorted_ivec.add o_list o) then false
  else begin
    link t.pso ~first:p ~second:s o_list;
    (match t.pos with
    | None -> ()
    | Some pos ->
        let s_list = get_or_create_list t.s_lists (Pair_key.make p o) in
        ignore (Sorted_ivec.add s_list s);
        link pos ~first:p ~second:o s_list);
    t.size <- t.size + 1;
    true
  end

let mem_ids t ({ s; p; o } : Hexastore.id_triple) =
  match Hashtbl.find_opt t.o_lists (Pair_key.make p s) with
  | None -> false
  | Some l -> Sorted_ivec.mem l o

let unlink index ~first ~second ~list_empty =
  match Index.find_vector index first with
  | None -> assert false
  | Some v ->
      Pair_vector.bump_total v (-1);
      if list_empty then begin
        ignore (Pair_vector.remove v second);
        if Pair_vector.length v = 0 then ignore (Index.remove_header index first)
      end

let remove_ids t ({ s; p; o } : Hexastore.id_triple) =
  let key_ps = Pair_key.make p s in
  match Hashtbl.find_opt t.o_lists key_ps with
  | None -> false
  | Some o_list ->
      if not (Sorted_ivec.remove o_list o) then false
      else begin
        let o_empty = Sorted_ivec.is_empty o_list in
        if o_empty then Hashtbl.remove t.o_lists key_ps;
        unlink t.pso ~first:p ~second:s ~list_empty:o_empty;
        (match t.pos with
        | None -> ()
        | Some pos ->
            let key_po = Pair_key.make p o in
            (match Hashtbl.find_opt t.s_lists key_po with
            | None -> assert false
            | Some s_list ->
                ignore (Sorted_ivec.remove s_list s);
                let s_empty = Sorted_ivec.is_empty s_list in
                if s_empty then Hashtbl.remove t.s_lists key_po;
                unlink pos ~first:p ~second:o ~list_empty:s_empty));
        t.size <- t.size - 1;
        true
      end

let cmp_pso (a : Hexastore.id_triple) (b : Hexastore.id_triple) =
  let c = Int.compare a.p b.p in
  if c <> 0 then c
  else
    let c = Int.compare a.s b.s in
    if c <> 0 then c else Int.compare a.o b.o

let cmp_pos (a : Hexastore.id_triple) (b : Hexastore.id_triple) =
  let c = Int.compare a.p b.p in
  if c <> 0 then c
  else
    let c = Int.compare a.o b.o in
    if c <> 0 then c else Int.compare a.s b.s

let add_bulk_ids t triples =
  let arr = Array.copy triples in
  Array.sort cmp_pso arr;
  let fresh = ref [] in
  let fresh_count = ref 0 in
  Array.iter
    (fun (tr : Hexastore.id_triple) ->
      let o_list = get_or_create_list t.o_lists (Pair_key.make tr.p tr.s) in
      if Sorted_ivec.add o_list tr.o then begin
        link t.pso ~first:tr.p ~second:tr.s o_list;
        fresh := tr :: !fresh;
        incr fresh_count
      end)
    arr;
  (match t.pos with
  | None -> ()
  | Some pos ->
      let fresh = Array.of_list !fresh in
      Array.sort cmp_pos fresh;
      Array.iter
        (fun (tr : Hexastore.id_triple) ->
          let s_list = get_or_create_list t.s_lists (Pair_key.make tr.p tr.o) in
          ignore (Sorted_ivec.add s_list tr.s);
          link pos ~first:tr.p ~second:tr.o s_list)
        fresh);
  t.size <- t.size + !fresh_count;
  !fresh_count

let add t triple = add_ids t (Dict.Term_dict.encode_triple t.dict triple)

let of_triples kind triples =
  let t = create kind in
  let ids = Array.of_list (List.map (Dict.Term_dict.encode_triple t.dict) triples) in
  ignore (add_bulk_ids t ids);
  t

let properties t = Index.headers t.pso

let restrict_properties t ps =
  t.restriction <- Option.map (fun l -> Sorted_ivec.of_list l) ps

let scan_properties t =
  match t.restriction with Some r -> r | None -> properties t

let subject_vector t p = Index.find_vector t.pso p

let object_vector t p =
  match t.pos with None -> None | Some pos -> Index.find_vector pos p

let objects_of_sp t ~s ~p = Hashtbl.find_opt t.o_lists (Pair_key.make p s)

let subjects_of_po t ~p ~o =
  match t.pos with
  | Some pos -> Index.find_list pos p o
  | None -> (
      (* Covp1 has no object-sorted copy: scan the property's subject
         table, probing each subject's o-list — the expensive path. *)
      match Index.find_vector t.pso p with
      | None -> None
      | Some v ->
          let out = Sorted_ivec.create () in
          Pair_vector.iter (fun s ol -> if Sorted_ivec.mem ol o then ignore (Sorted_ivec.add out s)) v;
          if Sorted_ivec.is_empty out then None else Some out)

(* --- lookup ----------------------------------------------------------- *)

let seq_of_list_opt = function None -> Seq.empty | Some l -> Sorted_ivec.to_seq l

(* Iterate the (restricted) property tables lazily. *)
let scan_tables t f =
  Seq.concat_map f (Sorted_ivec.to_seq (scan_properties t))

let lookup t (pat : Pattern.t) : Hexastore.id_triple Seq.t =
  match Pattern.shape pat with
  | Pattern.All ->
      let tr : Hexastore.id_triple =
        { s = Option.get pat.s; p = Option.get pat.p; o = Option.get pat.o }
      in
      if mem_ids t tr then Seq.return tr else Seq.empty
  | Pattern.Sp ->
      let s = Option.get pat.s and p = Option.get pat.p in
      Seq.map
        (fun o : Hexastore.id_triple -> { s; p; o })
        (seq_of_list_opt (objects_of_sp t ~s ~p))
  | Pattern.P ->
      let p = Option.get pat.p in
      (match Index.find_vector t.pso p with
      | None -> Seq.empty
      | Some v ->
          Seq.concat_map
            (fun (s, ol) ->
              Seq.map (fun o : Hexastore.id_triple -> { s; p; o }) (Sorted_ivec.to_seq ol))
            (Pair_vector.to_seq v))
  | Pattern.Po ->
      let p = Option.get pat.p and o = Option.get pat.o in
      Seq.map
        (fun s : Hexastore.id_triple -> { s; p; o })
        (seq_of_list_opt (subjects_of_po t ~p ~o))
  | Pattern.S ->
      (* Unbound property: consult every property table for this subject. *)
      let s = Option.get pat.s in
      scan_tables t (fun p ->
          Seq.map
            (fun o : Hexastore.id_triple -> { s; p; o })
            (seq_of_list_opt (objects_of_sp t ~s ~p)))
  | Pattern.So ->
      let s = Option.get pat.s and o = Option.get pat.o in
      scan_tables t (fun p ->
          match objects_of_sp t ~s ~p with
          | Some ol when Sorted_ivec.mem ol o -> Seq.return ({ s; p; o } : Hexastore.id_triple)
          | _ -> Seq.empty)
  | Pattern.O ->
      let o = Option.get pat.o in
      (match t.pos with
      | Some pos ->
          scan_tables t (fun p ->
              Seq.map
                (fun s : Hexastore.id_triple -> { s; p; o })
                (seq_of_list_opt (Index.find_list pos p o)))
      | None ->
          (* Covp1: full scan of each table, filtering on object. *)
          scan_tables t (fun p ->
              match Index.find_vector t.pso p with
              | None -> Seq.empty
              | Some v ->
                  Seq.filter_map
                    (fun (s, ol) ->
                      if Sorted_ivec.mem ol o then Some ({ s; p; o } : Hexastore.id_triple)
                      else None)
                    (Pair_vector.to_seq v)))
  | Pattern.None_bound ->
      scan_tables t (fun p ->
          match Index.find_vector t.pso p with
          | None -> Seq.empty
          | Some v ->
              Seq.concat_map
                (fun (s, ol) ->
                  Seq.map (fun o : Hexastore.id_triple -> { s; p; o }) (Sorted_ivec.to_seq ol))
                (Pair_vector.to_seq v))

let count t pat =
  match Pattern.shape pat with
  | Pattern.All -> if mem_ids t { s = Option.get pat.s; p = Option.get pat.p; o = Option.get pat.o } then 1 else 0
  | Pattern.Sp -> (
      match objects_of_sp t ~s:(Option.get pat.s) ~p:(Option.get pat.p) with
      | None -> 0
      | Some l -> Sorted_ivec.length l)
  | Pattern.P -> (
      match Index.find_vector t.pso (Option.get pat.p) with
      | None -> 0
      | Some v -> Pair_vector.total v)
  | Pattern.Po -> (
      match subjects_of_po t ~p:(Option.get pat.p) ~o:(Option.get pat.o) with
      | None -> 0
      | Some l -> Sorted_ivec.length l)
  | Pattern.S | Pattern.So | Pattern.O -> Seq.length (lookup t pat)
  | Pattern.None_bound -> t.size

let lists_memory table =
  Hashtbl.fold (fun _ l acc -> acc + 2 + Sorted_ivec.memory_words l) table 16

let memory_words t =
  Index.memory_words t.pso + lists_memory t.o_lists
  + (match t.pos with None -> 0 | Some pos -> Index.memory_words pos + lists_memory t.s_lists)

let check_invariant t =
  Index.check_invariant t.pso;
  assert (Index.total t.pso = t.size);
  match t.pos with
  | None -> ()
  | Some pos ->
      Index.check_invariant pos;
      assert (Index.total pos = t.size)
