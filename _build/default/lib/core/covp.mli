(** The COVP baselines: the paper's representation of Abadi et al.'s
    column-oriented vertical partitioning (§5).

    [COVP1] is the single-index property-oriented store — the [pso]
    indexing alone, i.e. one two-column table per property, sorted by
    subject, with same-subject objects grouped.  [COVP2] adds the second,
    object-sorted copy of each property table — the [pos] indexing.

    Crucially, these stores answer non-property-bound accesses the way the
    vertically partitioned architecture must: by consulting *every*
    property table and combining the results (§2.2.3, §5.2).  That cost is
    the phenomenon the benchmark figures exist to show, so the lookup
    implementations below spell those scans out rather than delegating to
    a Hexastore. *)

type kind =
  | Covp1  (** pso only *)
  | Covp2  (** pso + pos *)

type t

val create : ?dict:Dict.Term_dict.t -> kind -> t

val kind : t -> kind

val dict : t -> Dict.Term_dict.t

val size : t -> int

val add_ids : t -> Hexastore.id_triple -> bool
val remove_ids : t -> Hexastore.id_triple -> bool
val mem_ids : t -> Hexastore.id_triple -> bool

val add_bulk_ids : t -> Hexastore.id_triple array -> int

val add : t -> Rdf.Triple.t -> bool
val of_triples : kind -> Rdf.Triple.t list -> t

val lookup : t -> Pattern.t -> Hexastore.id_triple Seq.t
(** Pattern access with the architecture's native strategies:
    property-bound shapes are index lookups; property-unbound shapes scan
    the (possibly restricted, see {!restrict_properties}) property tables.
    Results within one property table come sorted; across tables they
    follow property order. *)

val count : t -> Pattern.t -> int
(** Exact but computed with the same access paths as {!lookup} — i.e. the
    property-unbound shapes pay the scan. *)

val properties : t -> Vectors.Sorted_ivec.t
(** Ids of all properties that have a table. *)

val subject_vector : t -> int -> Pair_vector.t option
(** The property's subject-sorted table ([pso]). *)

val object_vector : t -> int -> Pair_vector.t option
(** The property's object-sorted table ([pos]); [None] under {!Covp1}. *)

val objects_of_sp : t -> s:int -> p:int -> Vectors.Sorted_ivec.t option
val subjects_of_po : t -> p:int -> o:int -> Vectors.Sorted_ivec.t option
(** Under {!Covp1} this must scan the property's subject table —
    the expensive path the paper describes. *)

val restrict_properties : t -> int list option -> unit
(** Install (or clear) the pre-selected property set used by
    property-unbound scans — the "28 properties" assumption of [5] that
    §5 evaluates with and without.  Bound-property lookups are
    unaffected. *)

val scan_properties : t -> Vectors.Sorted_ivec.t
(** The property set unbound-property scans traverse: all properties, or
    the restriction installed by {!restrict_properties}. *)

val memory_words : t -> int

val check_invariant : t -> unit
