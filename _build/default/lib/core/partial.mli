(** A partial Hexastore: only a chosen subset of the six orderings.

    §6 observes that "some indices may not contribute to query efficiency
    based on a given workload.  For example, the ops index has been seldom
    used in our experiments.  A subject for future research concerns the
    selection of the most suitable indices for a given RDF data set based
    on the query workload at hand."  This module is that store: it
    materialises any non-empty subset of {spo, sop, pso, pos, osp, ops}
    (terminal lists still shared within a twin pair when both are kept)
    and answers {e every} pattern shape regardless — natively when the
    shape's ordering is present, otherwise through the cheapest present
    ordering (filtered traversal, falling back to a full scan only when
    no bound position leads a materialised ordering).

    {!Advisor} picks the subset from a workload. *)

type t

val create : ?dict:Dict.Term_dict.t -> orderings:Ordering.t list -> unit -> t
(** @raise Invalid_argument when [orderings] is empty. *)

val orderings : t -> Ordering.Set.t

val dict : t -> Dict.Term_dict.t

val size : t -> int

val add_ids : t -> Dict.Term_dict.id_triple -> bool

val add_bulk_ids : t -> Dict.Term_dict.id_triple array -> int

val mem_ids : t -> Dict.Term_dict.id_triple -> bool
(** O(log) through any present terminal-list family. *)

val lookup : t -> Pattern.t -> Dict.Term_dict.id_triple Seq.t
(** Always correct; cost depends on whether the shape's ordering (or a
    useful substitute) is materialised. *)

val count : t -> Pattern.t -> int

val is_native : t -> Pattern.shape -> bool
(** Whether the shape is served by its preferred ordering. *)

val memory_words : t -> int

val check_invariant : t -> unit
(** Present orderings are mutually consistent and sorted. *)
