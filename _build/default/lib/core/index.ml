type t = {
  headers : (int, Pair_vector.t) Hashtbl.t;
}

let create ?(initial_headers = 64) () = { headers = Hashtbl.create initial_headers }

let header_count t = Hashtbl.length t.headers

let find_vector t h = Hashtbl.find_opt t.headers h

let get_or_create_vector t h =
  match Hashtbl.find_opt t.headers h with
  | Some v -> v
  | None ->
      let v = Pair_vector.create () in
      Hashtbl.add t.headers h v;
      v

let find_list t first second =
  match find_vector t first with None -> None | Some v -> Pair_vector.find v second

let remove_header t h =
  if Hashtbl.mem t.headers h then begin
    Hashtbl.remove t.headers h;
    true
  end
  else false

let iter f t = Hashtbl.iter f t.headers

let iter_sorted f t =
  let hs = Hashtbl.fold (fun h _ acc -> h :: acc) t.headers [] in
  List.iter (fun h -> f h (Hashtbl.find t.headers h)) (List.sort compare hs)

let headers t =
  let v = Vectors.Dynarray_int.create ~capacity:(max 1 (header_count t)) () in
  Hashtbl.iter (fun h _ -> Vectors.Dynarray_int.push v h) t.headers;
  Vectors.Dynarray_int.sort_uniq v;
  Vectors.Sorted_ivec.of_sorted_array (Vectors.Dynarray_int.to_array v)

let total t = Hashtbl.fold (fun _ v acc -> acc + Pair_vector.total v) t.headers 0

let memory_words t =
  Hashtbl.fold (fun _ v acc -> acc + 3 + Pair_vector.memory_words v) t.headers 16

let check_invariant t = iter (fun _ v -> Pair_vector.check_invariant v) t
