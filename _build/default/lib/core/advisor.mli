(** Workload-driven index selection (the research direction of §6).

    Given a workload — pattern shapes with frequencies — the advisor
    determines which of the six orderings those shapes use natively,
    recommends the subset worth materialising, and estimates the memory
    a {!Partial} store over that subset would save relative to the full
    Hexastore. *)

type workload = (Pattern.shape * int) list
(** Shape frequencies; order and duplicate shapes are tolerated. *)

val workload_of_patterns : Pattern.t list -> workload
(** Tally a list of observed patterns into a workload. *)

val orderings_used : workload -> Ordering.Set.t
(** The native ordering of each shape appearing with positive
    frequency. *)

(** A recommendation. *)
type recommendation = {
  keep : Ordering.t list;          (** orderings to materialise, sorted *)
  drop : Ordering.t list;          (** the complement *)
  native_fraction : float;         (** workload fraction served natively *)
}

val recommend : workload -> recommendation
(** Keep exactly the orderings the workload touches (never empty — [spo]
    is kept as the data holder for an empty workload).  Shapes [All] and
    [Sp] count as native whenever either twin of the o-list family is
    kept. *)

val estimate_memory_words : Hexastore.t -> Ordering.t list -> int
(** Structural words a {!Partial} store keeping exactly these orderings
    would use for this store's data: the kept indices' headers/vectors
    plus each kept family's terminal lists (counted once per family). *)

val savings_fraction : Hexastore.t -> Ordering.t list -> float
(** [1 - estimate/full]; 0 when everything is kept. *)

val pp_recommendation : Format.formatter -> recommendation -> unit
