type t = {
  dict : Dict.Term_dict.t;
  default : Hexastore.t;
  named : (Rdf.Term.t, Hexastore.t) Hashtbl.t;
}

let create ?dict () =
  let dict = match dict with Some d -> d | None -> Dict.Term_dict.create () in
  { dict; default = Hexastore.create ~dict (); named = Hashtbl.create 8 }

let dict t = t.dict
let default_graph t = t.default

let graph t name = Hashtbl.find_opt t.named name

let get_or_create_graph t name =
  (match name with
  | Rdf.Term.Literal _ -> invalid_arg "Dataset.get_or_create_graph: literal graph name"
  | Rdf.Term.Iri _ | Rdf.Term.Blank _ -> ());
  match Hashtbl.find_opt t.named name with
  | Some h -> h
  | None ->
      let h = Hexastore.create ~dict:t.dict () in
      Hashtbl.add t.named name h;
      h

let drop_graph t name =
  if Hashtbl.mem t.named name then begin
    Hashtbl.remove t.named name;
    true
  end
  else false

let graph_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.named [] |> List.sort Rdf.Term.compare

let target t = function None -> t.default | Some name -> get_or_create_graph t name

let add t ?graph triple = Hexastore.add (target t graph) triple

let remove t ?graph triple =
  match graph with
  | None -> Hexastore.remove t.default triple
  | Some name -> (
      (* Removal must not create an empty graph as a side effect. *)
      match Hashtbl.find_opt t.named name with
      | None -> false
      | Some h -> Hexastore.remove h triple)

let size t =
  Hashtbl.fold (fun _ h acc -> acc + Hexastore.size h) t.named (Hexastore.size t.default)

let lookup t ?graph pat =
  match graph with
  | None -> Hexastore.lookup t.default pat
  | Some name -> (
      match Hashtbl.find_opt t.named name with
      | None -> Seq.empty
      | Some h -> Hexastore.lookup h pat)

let lookup_all t pat =
  let tagged name h = Seq.map (fun tr -> (name, tr)) (Hexastore.lookup h pat) in
  let named = graph_names t in
  List.fold_left
    (fun acc name -> Seq.append acc (tagged (Some name) (Hashtbl.find t.named name)))
    (tagged None t.default) named

let union_store t =
  let out = Hexastore.create ~dict:t.dict () in
  let load h =
    ignore (Hexastore.add_bulk_ids out (Array.of_seq (Hexastore.lookup h Pattern.wildcard)))
  in
  load t.default;
  Hashtbl.iter (fun _ h -> load h) t.named;
  out

let memory_words t =
  Hashtbl.fold
    (fun _ h acc -> acc + Hexastore.memory_words h)
    t.named
    (Hexastore.memory_words t.default)
