(** Named graphs: an RDF dataset over Hexastores.

    §2.2.2 discusses the quad-oriented stores (Harth & Decker's six
    indices over {s,p,o,c}, Kowari's models) that add a context/model
    dimension; the Hexastore itself indexes triples.  A dataset composes
    the two designs the natural way: one default graph plus any number of
    named graphs, each its own fully-indexed Hexastore, all sharing a
    single dictionary so ids (and therefore merge-joins) work across
    graphs. *)

type t

val create : ?dict:Dict.Term_dict.t -> unit -> t

val dict : t -> Dict.Term_dict.t

val default_graph : t -> Hexastore.t

val graph : t -> Rdf.Term.t -> Hexastore.t option
(** The named graph, if it exists.  Graph names are IRIs or blank
    nodes. *)

val get_or_create_graph : t -> Rdf.Term.t -> Hexastore.t
(** @raise Invalid_argument when the name is a literal. *)

val drop_graph : t -> Rdf.Term.t -> bool
(** Remove a named graph wholesale; [false] if absent. *)

val graph_names : t -> Rdf.Term.t list
(** Sorted names of the non-default graphs. *)

val add : t -> ?graph:Rdf.Term.t -> Rdf.Triple.t -> bool
(** Insert into the named graph (created on demand) or, without [graph],
    the default graph. *)

val remove : t -> ?graph:Rdf.Term.t -> Rdf.Triple.t -> bool

val size : t -> int
(** Total statements across all graphs (a triple present in two graphs
    counts twice, as in SPARQL datasets). *)

val lookup :
  t -> ?graph:Rdf.Term.t -> Pattern.t -> Dict.Term_dict.id_triple Seq.t
(** Pattern access against one graph (default graph when omitted). *)

val lookup_all : t -> Pattern.t -> (Rdf.Term.t option * Dict.Term_dict.id_triple) Seq.t
(** Across every graph, tagging each match with its graph name
    ([None] = default graph) — the quad-level access of [§2.2.2]'s
    schemes, answered by per-graph sextuple indices. *)

val union_store : t -> Hexastore.t
(** A fresh Hexastore over the union of all graphs (the RDF merge),
    sharing the dataset's dictionary. *)

val memory_words : t -> int
