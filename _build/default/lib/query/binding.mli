(** Solution mappings: variable → value bindings produced by query
    evaluation. *)

(** A bound value: a dictionary id (RDF term) or a plain integer produced
    by an aggregate. *)
type value =
  | Id of int
  | Int of int

type t
(** An immutable solution mapping. *)

val empty : t

val bind : t -> string -> value -> t
(** [bind b v x] extends the mapping.  Rebinding an already-bound variable
    to a different value raises [Invalid_argument]; query evaluation is
    expected to check compatibility with {!get} first. *)

val get : t -> string -> value option

val mem : t -> string -> bool

val vars : t -> string list
(** Bound variables, sorted. *)

val to_list : t -> (string * value) list
(** Sorted by variable; canonical form used for DISTINCT and equality. *)

val compatible : t -> string -> value -> bool
(** [compatible b v x] is true when [v] is unbound or bound to [x]. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val term : Dict.Term_dict.t -> value -> Rdf.Term.t option
(** Decode a value: [Id] decodes through the dictionary, [Int] becomes an
    [xsd:integer] literal. *)

val value_to_string : Dict.Term_dict.t -> value -> string

val pp : Dict.Term_dict.t -> Format.formatter -> t -> unit
