(** Query evaluation over any {!Hexa.Store_sig.boxed} store.

    BGPs run as index nested-loop joins: patterns are ordered by
    {!Planner.order_bgp}, then each solution drives a pattern lookup in
    the store's best index for that shape — on the Hexastore every such
    step streams from a sorted vector or list. *)

val run_seq : Hexa.Store_sig.boxed -> Algebra.t -> Binding.t Seq.t
(** Lazy evaluation; blocking operators (group, order) materialise
    internally. *)

val run : Hexa.Store_sig.boxed -> Algebra.t -> Binding.t list

val ask : Hexa.Store_sig.boxed -> Algebra.t -> bool
(** True iff the query has at least one solution. *)

val count : Hexa.Store_sig.boxed -> Algebra.t -> int

val construct :
  Hexa.Store_sig.boxed -> template:Algebra.tp list -> Algebra.t -> Rdf.Triple.t list
(** Instantiate a CONSTRUCT template once per solution.  Instantiations
    with an unbound variable, a literal subject or a non-IRI predicate
    are skipped (standard CONSTRUCT semantics); the result is sorted and
    de-duplicated. *)

val compare_values : Dict.Term_dict.t -> Binding.value -> Binding.value -> int
(** Value order used by filters and ORDER BY: numbers (aggregate ints and
    numeric literals) compare numerically and sort before other terms,
    which compare by their N-Triples spelling. *)
