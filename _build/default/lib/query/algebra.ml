type atom =
  | Var of string
  | Term of Rdf.Term.t

type tp = {
  s : atom;
  p : atom;
  o : atom;
}

type expr =
  | E_atom of atom
  | E_eq of expr * expr
  | E_neq of expr * expr
  | E_lt of expr * expr
  | E_le of expr * expr
  | E_gt of expr * expr
  | E_ge of expr * expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_bound of string

type aggregate =
  | Count_all
  | Count_var of string
  | Count_distinct of string

type order = {
  key : string;
  descending : bool;
}

type t =
  | Bgp of tp list
  | Join of t * t
  | Left_join of t * t
  | Union of t * t
  | Values of string list * Rdf.Term.t option list list
  | Filter of expr * t
  | Distinct of t
  | Project of string list * t
  | Extend_group of string list * (string * aggregate) list * t
  | Order_by of order list * t
  | Slice of int option * int option * t

let tp s p o = { s; p; o }

let vars_of_atom = function Var v -> [ v ] | Term _ -> []

let vars_of_tp { s; p; o } =
  List.sort_uniq compare (vars_of_atom s @ vars_of_atom p @ vars_of_atom o)

let rec vars_of_expr = function
  | E_atom a -> vars_of_atom a
  | E_eq (a, b) | E_neq (a, b) | E_lt (a, b) | E_le (a, b) | E_gt (a, b) | E_ge (a, b)
  | E_and (a, b) | E_or (a, b) ->
      vars_of_expr a @ vars_of_expr b
  | E_not e -> vars_of_expr e
  | E_bound v -> [ v ]

let rec vars_of = function
  | Bgp tps -> List.sort_uniq compare (List.concat_map vars_of_tp tps)
  | Join (a, b) | Left_join (a, b) | Union (a, b) ->
      List.sort_uniq compare (vars_of a @ vars_of b)
  | Values (vs, _) -> List.sort_uniq compare vs
  | Filter (e, q) -> List.sort_uniq compare (vars_of_expr e @ vars_of q)
  | Distinct q | Order_by (_, q) | Slice (_, _, q) -> vars_of q
  | Project (vs, q) -> List.sort_uniq compare (vs @ vars_of q)
  | Extend_group (keys, aggs, q) ->
      List.sort_uniq compare (keys @ List.map fst aggs @ vars_of q)

let pp_atom ppf = function
  | Var v -> Format.fprintf ppf "?%s" v
  | Term t -> Rdf.Term.pp ppf t

let pp_tp ppf { s; p; o } = Format.fprintf ppf "%a %a %a ." pp_atom s pp_atom p pp_atom o

let rec pp_expr ppf = function
  | E_atom a -> pp_atom ppf a
  | E_eq (a, b) -> Format.fprintf ppf "(%a = %a)" pp_expr a pp_expr b
  | E_neq (a, b) -> Format.fprintf ppf "(%a != %a)" pp_expr a pp_expr b
  | E_lt (a, b) -> Format.fprintf ppf "(%a < %a)" pp_expr a pp_expr b
  | E_le (a, b) -> Format.fprintf ppf "(%a <= %a)" pp_expr a pp_expr b
  | E_gt (a, b) -> Format.fprintf ppf "(%a > %a)" pp_expr a pp_expr b
  | E_ge (a, b) -> Format.fprintf ppf "(%a >= %a)" pp_expr a pp_expr b
  | E_and (a, b) -> Format.fprintf ppf "(%a && %a)" pp_expr a pp_expr b
  | E_or (a, b) -> Format.fprintf ppf "(%a || %a)" pp_expr a pp_expr b
  | E_not e -> Format.fprintf ppf "!%a" pp_expr e
  | E_bound v -> Format.fprintf ppf "bound(?%s)" v

let pp_aggregate ppf = function
  | Count_all -> Format.pp_print_string ppf "COUNT(*)"
  | Count_var v -> Format.fprintf ppf "COUNT(?%s)" v
  | Count_distinct v -> Format.fprintf ppf "COUNT(DISTINCT ?%s)" v

let rec pp ppf = function
  | Bgp tps ->
      Format.fprintf ppf "@[<v 2>BGP {@,%a@]@,}"
        (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_tp)
        tps
  | Join (a, b) -> Format.fprintf ppf "@[<v 2>JOIN(@,%a,@,%a)@]" pp a pp b
  | Left_join (a, b) -> Format.fprintf ppf "@[<v 2>OPTIONAL(@,%a,@,%a)@]" pp a pp b
  | Union (a, b) -> Format.fprintf ppf "@[<v 2>UNION(@,%a,@,%a)@]" pp a pp b
  | Values (vs, rows) ->
      Format.fprintf ppf "VALUES [%s] (%d rows)" (String.concat " " vs) (List.length rows)
  | Filter (e, q) -> Format.fprintf ppf "@[<v 2>FILTER %a(@,%a)@]" pp_expr e pp q
  | Distinct q -> Format.fprintf ppf "@[<v 2>DISTINCT(@,%a)@]" pp q
  | Project (vs, q) ->
      Format.fprintf ppf "@[<v 2>PROJECT [%a](@,%a)@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           (fun ppf v -> Format.fprintf ppf "?%s" v))
        vs pp q
  | Extend_group (keys, aggs, q) ->
      Format.fprintf ppf "@[<v 2>GROUP [%a] [%a](@,%a)@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           (fun ppf v -> Format.fprintf ppf "?%s" v))
        keys
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           (fun ppf (v, a) -> Format.fprintf ppf "?%s=%a" v pp_aggregate a))
        aggs pp q
  | Order_by (orders, q) ->
      Format.fprintf ppf "@[<v 2>ORDER [%a](@,%a)@]"
        (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
           (fun ppf { key; descending } ->
             Format.fprintf ppf "%s?%s" (if descending then "-" else "") key))
        orders pp q
  | Slice (off, lim, q) ->
      Format.fprintf ppf "@[<v 2>SLICE off=%a lim=%a(@,%a)@]"
        (Format.pp_print_option Format.pp_print_int)
        off
        (Format.pp_print_option Format.pp_print_int)
        lim pp q
