exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

(* --- lexer ----------------------------------------------------------- *)

type token =
  | Kw of string            (* uppercased keyword *)
  | Var of string           (* without the sigil *)
  | Iriref of string
  | Pname of string
  | Str of string
  | Langtag of string
  | Hathat
  | Integer of string
  | Decimal of string
  | Boolean of bool
  | Tok_a
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Dot
  | Semi
  | Comma
  | Star
  | Op of string            (* = != < <= > >= && || ! *)

type lexed = { tok : token; tline : int }

let keywords =
  [ "SELECT"; "ASK"; "WHERE"; "FILTER"; "UNION"; "DISTINCT"; "GROUP"; "BY"; "ORDER";
    "LIMIT"; "OFFSET"; "COUNT"; "AS"; "PREFIX"; "BASE"; "DESC"; "ASC"; "BOUND"; "OPTIONAL";
    "CONSTRUCT"; "VALUES"; "UNDEF" ]

let is_pname_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let is_var_char c =
  match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false

let tokenize text =
  let n = String.length text in
  let line = ref 1 in
  let toks = ref [] in
  let push tok = toks := { tok; tline = !line } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some text.[!i + k] else None in
  while !i < n do
    (match text.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '#' ->
        while !i < n && text.[!i] <> '\n' do
          incr i
        done
    | '{' -> push Lbrace; incr i
    | '}' -> push Rbrace; incr i
    | '(' -> push Lparen; incr i
    | ')' -> push Rparen; incr i
    | ';' -> push Semi; incr i
    | ',' -> push Comma; incr i
    | '*' -> push Star; incr i
    | '=' -> push (Op "="); incr i
    | '!' when peek 1 = Some '=' -> push (Op "!="); i := !i + 2
    | '!' -> push (Op "!"); incr i
    | '<' when peek 1 = Some '=' -> push (Op "<="); i := !i + 2
    | '>' when peek 1 = Some '=' -> push (Op ">="); i := !i + 2
    | '>' -> push (Op ">"); incr i
    | '&' when peek 1 = Some '&' -> push (Op "&&"); i := !i + 2
    | '|' when peek 1 = Some '|' -> push (Op "||"); i := !i + 2
    | '<' -> (
        (* IRI or less-than: an IRI has no whitespace before '>'. *)
        let j = ref (!i + 1) in
        let ok = ref true in
        while !ok && !j < n && text.[!j] <> '>' do
          (match text.[!j] with ' ' | '\t' | '\n' -> ok := false | _ -> incr j)
        done;
        if !ok && !j < n && text.[!j] = '>' then begin
          push (Iriref (String.sub text (!i + 1) (!j - !i - 1)));
          i := !j + 1
        end
        else begin
          push (Op "<");
          incr i
        end)
    | '?' | '$' ->
        let start = !i + 1 in
        let j = ref start in
        while !j < n && is_var_char text.[!j] do
          incr j
        done;
        if !j = start then fail !line "empty variable name";
        push (Var (String.sub text start (!j - start)));
        i := !j
    | '"' ->
        let buf = Buffer.create 16 in
        let j = ref (!i + 1) in
        let fin = ref false in
        while not !fin do
          if !j >= n then fail !line "unterminated string";
          (match text.[!j] with
          | '"' ->
              fin := true;
              incr j
          | '\\' ->
              if !j + 1 >= n then fail !line "dangling backslash";
              Buffer.add_char buf '\\';
              Buffer.add_char buf text.[!j + 1];
              j := !j + 2
          | c ->
              Buffer.add_char buf c;
              incr j)
        done;
        (try push (Str (Rdf.Ntriples.unescape (Buffer.contents buf)))
         with Rdf.Ntriples.Parse_error (_, m) -> fail !line "%s" m);
        i := !j
    | '@' ->
        let start = !i + 1 in
        let j = ref start in
        while
          !j < n
          && match text.[!j] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> true | _ -> false
        do
          incr j
        done;
        if !j = start then fail !line "empty language tag";
        push (Langtag (String.lowercase_ascii (String.sub text start (!j - start))));
        i := !j
    | '^' when peek 1 = Some '^' ->
        push Hathat;
        i := !i + 2
    | '.' when (match peek 1 with Some ('0' .. '9') -> false | _ -> true) ->
        push Dot;
        incr i
    | '0' .. '9' | '+' | '-' | '.' ->
        let start = !i in
        let j = ref !i in
        if !j < n && (text.[!j] = '+' || text.[!j] = '-') then incr j;
        while !j < n && text.[!j] >= '0' && text.[!j] <= '9' do
          incr j
        done;
        if !j < n && text.[!j] = '.' && !j + 1 < n && text.[!j + 1] >= '0' && text.[!j + 1] <= '9'
        then begin
          incr j;
          while !j < n && text.[!j] >= '0' && text.[!j] <= '9' do
            incr j
          done;
          push (Decimal (String.sub text start (!j - start)))
        end
        else if !j = start + (if text.[start] = '+' || text.[start] = '-' then 1 else 0) then
          fail !line "malformed number"
        else push (Integer (String.sub text start (!j - start)));
        i := !j
    | 'a' when (match peek 1 with Some c when is_pname_char c -> false | _ -> true) ->
        push Tok_a;
        incr i
    | c when is_pname_char c ->
        let start = !i in
        let j = ref !i in
        while !j < n && is_pname_char text.[!j] do
          incr j
        done;
        while !j > start && text.[!j - 1] = '.' do
          decr j
        done;
        let word = String.sub text start (!j - start) in
        let upper = String.uppercase_ascii word in
        if word = "true" then push (Boolean true)
        else if word = "false" then push (Boolean false)
        else if List.mem upper keywords && not (String.contains word ':') then push (Kw upper)
        else if String.contains word ':' then push (Pname word)
        else fail !line "bare word %S" word;
        i := !j
    | c -> fail !line "unexpected character %C" c)
  done;
  List.rev !toks

(* --- parser ---------------------------------------------------------- *)

type state = {
  mutable toks : lexed list;
  mutable last_line : int;
  ns : Rdf.Namespace.table;
  mutable base : string;
}

let peek_tok st = match st.toks with [] -> None | t :: _ -> Some t.tok


let next st =
  match st.toks with
  | [] -> fail st.last_line "unexpected end of query"
  | t :: rest ->
      st.toks <- rest;
      st.last_line <- t.tline;
      t

let cur_line st = match st.toks with { tline; _ } :: _ -> tline | [] -> st.last_line

let expect st tok what =
  let { tok = got; tline } = next st in
  if got <> tok then fail tline "expected %s" what

let expand_pname st line pname =
  match Rdf.Namespace.expand st.ns pname with
  | iri -> iri
  | exception Not_found -> fail line "unbound prefix in %S" pname
  | exception Invalid_argument _ -> fail line "malformed prefixed name %S" pname

let resolve_iri st raw =
  let has_scheme =
    match String.index_opt raw ':' with
    | Some i ->
        i > 0
        && String.for_all
             (fun c ->
               match c with
               | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '+' | '-' | '.' -> true
               | _ -> false)
             (String.sub raw 0 i)
    | None -> false
  in
  if has_scheme || st.base = "" then raw else st.base ^ raw

let parse_prologue st =
  let rec loop () =
    match peek_tok st with
    | Some (Kw "PREFIX") -> (
        ignore (next st);
        let { tok; tline } = next st in
        match tok with
        | Pname p when String.length p > 0 && p.[String.length p - 1] = ':' -> (
            let prefix = String.sub p 0 (String.length p - 1) in
            let { tok; tline } = next st in
            match tok with
            | Iriref iri ->
                Rdf.Namespace.add st.ns ~prefix ~iri:(resolve_iri st iri);
                loop ()
            | _ -> fail tline "expected IRI in PREFIX")
        | _ -> fail tline "expected \"prefix:\" in PREFIX")
    | Some (Kw "BASE") -> (
        ignore (next st);
        let { tok; tline } = next st in
        match tok with
        | Iriref iri ->
            st.base <- iri;
            loop ()
        | _ -> fail tline "expected IRI in BASE")
    | _ -> ()
  in
  loop ()

let parse_term_atom st =
  let { tok; tline } = next st in
  match tok with
  | Var v -> Algebra.Var v
  | Iriref raw -> Algebra.Term (Rdf.Term.iri (resolve_iri st raw))
  | Pname p -> Algebra.Term (Rdf.Term.iri (expand_pname st tline p))
  | Tok_a -> Algebra.Term (Rdf.Term.iri Rdf.Namespace.rdf_type)
  | Integer s -> Algebra.Term (Rdf.Term.typed_literal s ~datatype:(Rdf.Namespace.xsd "integer"))
  | Decimal s -> Algebra.Term (Rdf.Term.typed_literal s ~datatype:(Rdf.Namespace.xsd "decimal"))
  | Boolean b ->
      Algebra.Term (Rdf.Term.typed_literal (string_of_bool b) ~datatype:(Rdf.Namespace.xsd "boolean"))
  | Str value -> (
      match peek_tok st with
      | Some (Langtag lang) ->
          ignore (next st);
          Algebra.Term (Rdf.Term.literal ~lang value)
      | Some Hathat -> (
          ignore (next st);
          let { tok; tline } = next st in
          match tok with
          | Iriref raw -> Algebra.Term (Rdf.Term.literal ~datatype:(resolve_iri st raw) value)
          | Pname p -> Algebra.Term (Rdf.Term.literal ~datatype:(expand_pname st tline p) value)
          | _ -> fail tline "expected datatype IRI")
      | _ -> Algebra.Term (Rdf.Term.string_literal value))
  | _ -> fail tline "expected a term or variable"

(* triples block: subject, then semicolon-separated predicates each
   with comma-separated objects *)
let parse_triples_block st =
  let out = ref [] in
  let subject = parse_term_atom st in
  let rec predicates () =
    let p = parse_term_atom st in
    let rec objects () =
      let o = parse_term_atom st in
      out := Algebra.tp subject p o :: !out;
      match peek_tok st with
      | Some Comma ->
          ignore (next st);
          objects ()
      | _ -> ()
    in
    objects ();
    match peek_tok st with
    | Some Semi -> (
        ignore (next st);
        match peek_tok st with
        | Some (Dot | Rbrace) | None -> ()
        | _ -> predicates ())
    | _ -> ()
  in
  predicates ();
  List.rev !out

(* VALUES ?x { t1 t2 }  or  VALUES (?x ?y) { (t1 t2) (t3 t4) } *)
let parse_values_term st =
  match peek_tok st with
  | Some (Kw "UNDEF") ->
      ignore (next st);
      None
  | _ -> (
      match parse_term_atom st with
      | Algebra.Term t -> Some t
      | Algebra.Var _ -> fail (cur_line st) "variables are not allowed in VALUES data")

let parse_values st =
  let vars =
    match peek_tok st with
    | Some (Var v) ->
        ignore (next st);
        [ v ]
    | Some Lparen ->
        ignore (next st);
        let rec vars acc =
          match peek_tok st with
          | Some (Var v) ->
              ignore (next st);
              vars (v :: acc)
          | Some Rparen ->
              ignore (next st);
              List.rev acc
          | _ -> fail (cur_line st) "expected variable or ')' in VALUES header"
        in
        vars []
    | _ -> fail (cur_line st) "expected variable or '(' after VALUES"
  in
  if vars = [] then fail (cur_line st) "empty VALUES header";
  expect st Lbrace "'{' opening VALUES data";
  let rows = ref [] in
  let rec loop () =
    match peek_tok st with
    | Some Rbrace -> ignore (next st)
    | Some Lparen when List.length vars > 1 || peek_tok st = Some Lparen ->
        ignore (next st);
        let row = List.map (fun _ -> parse_values_term st) vars in
        expect st Rparen "')' closing a VALUES row";
        rows := row :: !rows;
        loop ()
    | Some _ when List.length vars = 1 ->
        rows := [ parse_values_term st ] :: !rows;
        loop ()
    | _ -> fail (cur_line st) "malformed VALUES data"
  in
  loop ();
  Algebra.Values (vars, List.rev !rows)

(* filter expressions, precedence: ! > comparison > && > || *)
let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  match peek_tok st with
  | Some (Op "||") ->
      ignore (next st);
      Algebra.E_or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_cmp st in
  match peek_tok st with
  | Some (Op "&&") ->
      ignore (next st);
      Algebra.E_and (left, parse_and st)
  | _ -> left

and parse_cmp st =
  let left = parse_unary st in
  match peek_tok st with
  | Some (Op (("=" | "!=" | "<" | "<=" | ">" | ">=") as op)) ->
      ignore (next st);
      let right = parse_unary st in
      (match op with
      | "=" -> Algebra.E_eq (left, right)
      | "!=" -> Algebra.E_neq (left, right)
      | "<" -> Algebra.E_lt (left, right)
      | "<=" -> Algebra.E_le (left, right)
      | ">" -> Algebra.E_gt (left, right)
      | ">=" -> Algebra.E_ge (left, right)
      | _ -> assert false)
  | _ -> left

and parse_unary st =
  match peek_tok st with
  | Some (Op "!") ->
      ignore (next st);
      Algebra.E_not (parse_unary st)
  | Some (Kw "BOUND") -> (
      ignore (next st);
      expect st Lparen "'(' after BOUND";
      let { tok; tline } = next st in
      match tok with
      | Var v ->
          expect st Rparen "')'";
          Algebra.E_bound v
      | _ -> fail tline "expected variable in BOUND")
  | Some Lparen ->
      ignore (next st);
      let e = parse_expr st in
      expect st Rparen "')'";
      e
  | _ -> Algebra.E_atom (parse_term_atom st)

(* group graph pattern *)
let rec parse_group st =
  expect st Lbrace "'{'";
  let tps = ref [] in
  let extra = ref [] in
  let optionals = ref [] in
  let filters = ref [] in
  let rec loop () =
    match peek_tok st with
    | Some Rbrace -> ignore (next st)
    | Some Dot ->
        ignore (next st);
        loop ()
    | Some (Kw "FILTER") ->
        ignore (next st);
        let e =
          match peek_tok st with
          | Some Lparen ->
              ignore (next st);
              let e = parse_expr st in
              expect st Rparen "')'";
              e
          | _ -> parse_expr st
        in
        filters := e :: !filters;
        loop ()
    | Some (Kw "VALUES") ->
        ignore (next st);
        extra := parse_values st :: !extra;
        loop ()
    | Some (Kw "OPTIONAL") ->
        ignore (next st);
        let g = parse_group st in
        optionals := g :: !optionals;
        loop ()
    | Some Lbrace ->
        (* nested group, possibly a UNION chain *)
        let g = parse_union_chain st in
        extra := g :: !extra;
        loop ()
    | Some _ ->
        tps := !tps @ parse_triples_block st;
        loop ()
    | None -> fail st.last_line "unterminated group pattern"
  in
  loop ();
  let base : Algebra.t =
    match (!tps, List.rev !extra) with
    | [], [] -> Algebra.Bgp []
    | [], [ g ] -> g
    | tps, extras -> List.fold_left (fun acc g -> Algebra.Join (acc, g)) (Algebra.Bgp tps) extras
  in
  let base =
    List.fold_left (fun acc g -> Algebra.Left_join (acc, g)) base (List.rev !optionals)
  in
  List.fold_left (fun acc e -> Algebra.Filter (e, acc)) base (List.rev !filters)

and parse_union_chain st =
  let first = parse_group st in
  let rec loop acc =
    match peek_tok st with
    | Some (Kw "UNION") ->
        ignore (next st);
        let g = parse_group st in
        loop (Algebra.Union (acc, g))
    | _ -> acc
  in
  loop first

(* SELECT projection *)
type proj_item =
  | P_var of string
  | P_agg of string * Algebra.aggregate  (* output var, aggregate *)

let parse_count st =
  expect st Lparen "'(' after COUNT";
  let agg =
    match peek_tok st with
    | Some Star ->
        ignore (next st);
        Algebra.Count_all
    | Some (Kw "DISTINCT") -> (
        ignore (next st);
        let { tok; tline } = next st in
        match tok with
        | Var v -> Algebra.Count_distinct v
        | _ -> fail tline "expected variable after DISTINCT")
    | _ -> (
        let { tok; tline } = next st in
        match tok with Var v -> Algebra.Count_var v | _ -> fail tline "expected variable or * in COUNT")
  in
  expect st Rparen "')'";
  agg

let parse_projection st =
  let items = ref [] in
  let star = ref false in
  let rec loop () =
    match peek_tok st with
    | Some Star ->
        ignore (next st);
        star := true;
        loop ()
    | Some (Var v) ->
        ignore (next st);
        items := P_var v :: !items;
        loop ()
    | Some Lparen -> (
        ignore (next st);
        let { tok; tline } = next st in
        match tok with
        | Kw "COUNT" -> (
            let agg = parse_count st in
            let { tok; tline } = next st in
            match tok with
            | Kw "AS" -> (
                let { tok; tline } = next st in
                match tok with
                | Var v ->
                    expect st Rparen "')'";
                    items := P_agg (v, agg) :: !items;
                    loop ()
                | _ -> fail tline "expected variable after AS")
            | _ -> fail tline "expected AS in aggregate projection")
        | _ -> fail tline "expected COUNT in projection")
    | _ -> ()
  in
  loop ();
  (!star, List.rev !items)

type query = {
  algebra : Algebra.t;
  projection : string list;
  is_ask : bool;
  template : Algebra.tp list option;
}

let parse_modifiers st body proj_vars =
  (* GROUP BY / ORDER BY / LIMIT / OFFSET, in any sensible order. *)
  let group = ref [] and orders = ref [] and limit = ref None and offset = ref None in
  let rec loop () =
    match peek_tok st with
    | Some (Kw "GROUP") -> (
        ignore (next st);
        match next st with
        | { tok = Kw "BY"; _ } ->
            let rec vars () =
              match peek_tok st with
              | Some (Var v) ->
                  ignore (next st);
                  group := v :: !group;
                  vars ()
              | _ -> ()
            in
            vars ();
            if !group = [] then fail (cur_line st) "empty GROUP BY";
            loop ()
        | { tline; _ } -> fail tline "expected BY after GROUP")
    | Some (Kw "ORDER") -> (
        ignore (next st);
        match next st with
        | { tok = Kw "BY"; _ } ->
            let rec keys () =
              match peek_tok st with
              | Some (Var v) ->
                  ignore (next st);
                  orders := { Algebra.key = v; descending = false } :: !orders;
                  keys ()
              | Some (Kw (("ASC" | "DESC") as dir)) -> (
                  ignore (next st);
                  expect st Lparen "'('";
                  let { tok; tline } = next st in
                  match tok with
                  | Var v ->
                      expect st Rparen "')'";
                      orders := { Algebra.key = v; descending = dir = "DESC" } :: !orders;
                      keys ()
                  | _ -> fail tline "expected variable")
              | _ -> ()
            in
            keys ();
            if !orders = [] then fail (cur_line st) "empty ORDER BY";
            loop ()
        | { tline; _ } -> fail tline "expected BY after ORDER")
    | Some (Kw "LIMIT") -> (
        ignore (next st);
        match next st with
        | { tok = Integer n; _ } ->
            limit := Some (int_of_string n);
            loop ()
        | { tline; _ } -> fail tline "expected integer after LIMIT")
    | Some (Kw "OFFSET") -> (
        ignore (next st);
        match next st with
        | { tok = Integer n; _ } ->
            offset := Some (int_of_string n);
            loop ()
        | { tline; _ } -> fail tline "expected integer after OFFSET")
    | Some _ -> fail (cur_line st) "unexpected token after query body"
    | None -> ()
  in
  loop ();
  (body, List.rev !group, List.rev !orders, !limit, !offset, proj_vars)

let parse ?namespaces text =
  let ns = Rdf.Namespace.create () in
  (match namespaces with
  | Some t -> List.iter (fun (prefix, iri) -> Rdf.Namespace.add ns ~prefix ~iri) (Rdf.Namespace.prefixes t)
  | None -> ());
  let st = { toks = tokenize text; last_line = 1; ns; base = "" } in
  parse_prologue st;
  let { tok; tline } = next st in
  match tok with
  | Kw "ASK" ->
      let body = parse_union_chain st in
      (match peek_tok st with
      | None -> ()
      | Some _ -> fail (cur_line st) "unexpected token after ASK pattern");
      { algebra = body; projection = []; is_ask = true; template = None }
  | Kw "SELECT" ->
      let distinct =
        match peek_tok st with
        | Some (Kw "DISTINCT") ->
            ignore (next st);
            true
        | _ -> false
      in
      let star, items = parse_projection st in
      if (not star) && items = [] then fail (cur_line st) "empty SELECT projection";
      (match peek_tok st with
      | Some (Kw "WHERE") -> ignore (next st)
      | _ -> ());
      let body = parse_union_chain st in
      let body, group, orders, limit, offset, () = parse_modifiers st body () in
      let aggs = List.filter_map (function P_agg (v, a) -> Some (v, a) | P_var _ -> None) items in
      let proj_vars =
        if star then Algebra.vars_of body
        else List.map (function P_var v -> v | P_agg (v, _) -> v) items
      in
      let body =
        if aggs <> [] || group <> [] then Algebra.Extend_group (group, aggs, body) else body
      in
      let body = if orders <> [] then Algebra.Order_by (orders, body) else body in
      let body = Algebra.Project (proj_vars, body) in
      let body = if distinct then Algebra.Distinct body else body in
      let body =
        match (offset, limit) with
        | None, None -> body
        | _ -> Algebra.Slice (offset, limit, body)
      in
      { algebra = body; projection = proj_vars; is_ask = false; template = None }
  | Kw "CONSTRUCT" ->
      expect st Lbrace "'{' opening the template";
      let template = ref [] in
      let rec tmpl () =
        match peek_tok st with
        | Some Rbrace -> ignore (next st)
        | Some Dot ->
            ignore (next st);
            tmpl ()
        | Some _ ->
            template := !template @ parse_triples_block st;
            tmpl ()
        | None -> fail st.last_line "unterminated CONSTRUCT template"
      in
      tmpl ();
      (match peek_tok st with
      | Some (Kw "WHERE") -> ignore (next st)
      | _ -> ());
      let body = parse_union_chain st in
      let body, group, orders, limit, offset, () = parse_modifiers st body () in
      if group <> [] then fail (cur_line st) "GROUP BY is not allowed with CONSTRUCT";
      let body = if orders <> [] then Algebra.Order_by (orders, body) else body in
      let body =
        match (offset, limit) with
        | None, None -> body
        | _ -> Algebra.Slice (offset, limit, body)
      in
      {
        algebra = body;
        projection = Algebra.vars_of body;
        is_ask = false;
        template = Some !template;
      }
  | _ -> fail tline "expected SELECT, ASK or CONSTRUCT"
