(** Result-set formatting for the CLI and examples. *)

val to_table :
  Dict.Term_dict.t -> columns:string list -> Binding.t list -> string list list
(** Rows of decoded cell strings, one per solution, in [columns] order;
    unbound cells render as [""]. *)

val pp :
  Dict.Term_dict.t -> columns:string list -> Format.formatter -> Binding.t list -> unit
(** An aligned ASCII table with a header row and a row count footer. *)

val to_csv : Dict.Term_dict.t -> columns:string list -> Binding.t list -> string
(** RFC-4180-ish CSV (cells quoted when they contain a comma, quote or
    newline). *)
