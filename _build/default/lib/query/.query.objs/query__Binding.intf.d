lib/query/binding.mli: Dict Format Rdf
