lib/query/algebra.mli: Format Rdf
