lib/query/exec.mli: Algebra Binding Dict Hexa Rdf Seq
