lib/query/results.ml: Binding Buffer Format List String
