lib/query/ppath.mli: Format Hexa Rdf Vectors
