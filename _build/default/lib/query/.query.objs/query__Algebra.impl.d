lib/query/algebra.ml: Format List Rdf String
