lib/query/path.mli: Hexa Vectors
