lib/query/results.mli: Binding Dict Format
