lib/query/star.ml: Algebra Array Dict Hexa List Option Sorted_ivec Vectors
