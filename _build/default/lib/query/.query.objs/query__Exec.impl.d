lib/query/exec.ml: Algebra Binding Dict Float Hashtbl Hexa List Map Planner Rdf Seq
