lib/query/path.ml: Hexa List Sorted_ivec Vectors
