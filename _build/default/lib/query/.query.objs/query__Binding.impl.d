lib/query/binding.ml: Dict Format List Map Printf Rdf Stdlib String
