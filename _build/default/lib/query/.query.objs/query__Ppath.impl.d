lib/query/ppath.ml: Dict Format Hexa List Merge Printf Rdf Sorted_ivec String Vectors
