lib/query/sparql.ml: Algebra Buffer List Printf Rdf String
