lib/query/star.mli: Algebra Hexa Vectors
