lib/query/sparql.mli: Algebra Rdf
