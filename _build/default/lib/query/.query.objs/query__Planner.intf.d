lib/query/planner.mli: Algebra Hexa
