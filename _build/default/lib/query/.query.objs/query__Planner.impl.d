lib/query/planner.ml: Algebra Dict Hexa List
