(** Merge-join evaluation of star-shaped basic graph patterns.

    A star pattern asks for the subjects satisfying several
    (property, object) constraints at once — the paper's recurring shape
    ("people involved in both of two particular university courses",
    BQ4's Type:Text ∧ Language:French, …).  §4.2's argument is that the
    Hexastore answers these with {e linear merge-joins} over sorted
    vectors, never hash joins over unsorted extractions: each constraint
    with a bound object contributes the shared s-list of (p, o); a
    constraint with a free object contributes the subject vector of the
    [pso] index.  This module intersects those sorted sources k-ways,
    smallest first, galloping when operand sizes are skewed.

    The generic {!Exec} engine evaluates the same queries by index
    nested-loop joins; [abl-star] in the bench harness compares the
    two. *)

(** One arm of the star: property id, optionally a required object id. *)
type constraint_ = {
  p : int;
  o : int option;
}

val subjects : Hexa.Hexastore.t -> constraint_ list -> Vectors.Sorted_ivec.t
(** Subjects satisfying every constraint, as a fresh sorted vector.  An
    empty constraint list yields all subjects of the store.  A property
    absent from the store yields the empty result. *)

val count : Hexa.Hexastore.t -> constraint_ list -> int

val of_bgp : Hexa.Hexastore.t -> Algebra.tp list -> (string * constraint_ list) option
(** Recognise a star BGP: every pattern must share one subject variable,
    have a constant property known to the dictionary, and a constant or
    ignored (distinct-variable) object.  Returns the subject variable and
    the constraints, or [None] when the BGP is not a star.  Unknown
    constant terms produce an unsatisfiable constraint (property id -1),
    which {!subjects} answers with the empty vector. *)
