open Algebra

(* --- value comparison ------------------------------------------------- *)

let numeric_of_term = function
  | Rdf.Term.Literal { value; datatype = Some dt; _ }
    when dt = Rdf.Namespace.xsd "integer" || dt = Rdf.Namespace.xsd "decimal"
         || dt = Rdf.Namespace.xsd "double" || dt = Rdf.Namespace.xsd "int"
         || dt = Rdf.Namespace.xsd "long" ->
      float_of_string_opt value
  | _ -> None

let numeric_of_value dict = function
  | Binding.Int n -> Some (float_of_int n)
  | Binding.Id _ as v -> (
      match Binding.term dict v with None -> None | Some t -> numeric_of_term t)

let compare_values dict a b =
  match (numeric_of_value dict a, numeric_of_value dict b) with
  | Some x, Some y -> compare x y
  | Some _, None -> -1
  | None, Some _ -> 1
  | None, None ->
      compare (Binding.value_to_string dict a) (Binding.value_to_string dict b)

(* --- filter evaluation ------------------------------------------------ *)

exception Filter_error
(* SPARQL's "error" outcome: the solution is dropped. *)

let value_of_atom dict binding = function
  | Var v -> ( match Binding.get binding v with Some x -> x | None -> raise Filter_error)
  | Term t -> (
      match Dict.Term_dict.find_term dict t with
      | Some id -> Binding.Id id
      | None ->
          (* A constant not in the dictionary can still be compared by
             value; encode it transiently as its numeric/string form. *)
          (match numeric_of_term t with
          | Some f when Float.is_integer f -> Binding.Int (int_of_float f)
          | _ -> raise Filter_error))

let rec eval_value dict binding = function
  | E_atom a -> value_of_atom dict binding a
  | _ -> raise Filter_error

and eval_bool dict binding expr =
  match expr with
  | E_atom _ -> raise Filter_error
  | E_bound v -> Binding.mem binding v
  | E_not e -> not (eval_bool dict binding e)
  | E_and (a, b) -> eval_bool dict binding a && eval_bool dict binding b
  | E_or (a, b) -> eval_bool dict binding a || eval_bool dict binding b
  | E_eq (a, b) -> cmp dict binding a b = 0
  | E_neq (a, b) -> cmp dict binding a b <> 0
  | E_lt (a, b) -> cmp dict binding a b < 0
  | E_le (a, b) -> cmp dict binding a b <= 0
  | E_gt (a, b) -> cmp dict binding a b > 0
  | E_ge (a, b) -> cmp dict binding a b >= 0

and cmp dict binding a b =
  compare_values dict (eval_value dict binding a) (eval_value dict binding b)

let filter_pass dict binding expr =
  match eval_bool dict binding expr with
  | ok -> ok
  | exception Filter_error -> false

(* --- BGP evaluation --------------------------------------------------- *)

(* Resolve a pattern position under the current solution.  [None] means
   the whole pattern can match nothing (unknown constant). *)
let resolve dict binding = function
  | Term t -> (
      match Dict.Term_dict.find_term dict t with None -> None | Some id -> Some (Some id))
  | Var v -> (
      match Binding.get binding v with
      | Some (Binding.Id id) -> Some (Some id)
      | Some (Binding.Int _) -> None  (* an aggregate value is not a term *)
      | None -> Some None)

let extend_with binding (tp : tp) (tr : Dict.Term_dict.id_triple) =
  (* Bind this pattern's variables to the matched triple, rejecting
     solutions where a repeated variable would take two values. *)
  let step pos_atom value binding =
    match binding with
    | None -> None
    | Some b -> (
        match pos_atom with
        | Term _ -> Some b
        | Var v ->
            if Binding.compatible b v (Binding.Id value) then
              Some (Binding.bind b v (Binding.Id value))
            else None)
  in
  Some binding |> step tp.s tr.s |> step tp.p tr.p |> step tp.o tr.o

let eval_tp store (tp : tp) binding =
  let dict = Hexa.Store_sig.dict store in
  match (resolve dict binding tp.s, resolve dict binding tp.p, resolve dict binding tp.o) with
  | Some s, Some p, Some o ->
      Hexa.Store_sig.lookup store { Hexa.Pattern.s; p; o }
      |> Seq.filter_map (extend_with binding tp)
  | _ -> Seq.empty

let eval_bgp store tps =
  let ordered = Planner.order_bgp store tps in
  List.fold_left
    (fun sols tp -> Seq.concat_map (eval_tp store tp) sols)
    (Seq.return Binding.empty) ordered

(* --- joins ------------------------------------------------------------ *)

let merge_bindings a b =
  let rec loop acc = function
    | [] -> Some acc
    | (v, x) :: rest ->
        if Binding.compatible acc v x then loop (Binding.bind acc v x) rest else None
  in
  loop a (Binding.to_list b)

(* --- grouping --------------------------------------------------------- *)

module Key = struct
  type t = Binding.value option list

  let compare = compare
end

module Kmap = Map.Make (Key)

let eval_group keys aggs solutions =
  let groups =
    List.fold_left
      (fun m sol ->
        let key = List.map (Binding.get sol) keys in
        let bucket = match Kmap.find_opt key m with Some b -> b | None -> [] in
        Kmap.add key (sol :: bucket) m)
      Kmap.empty solutions
  in
  (* SPARQL: an empty solution multiset with aggregates yields one group. *)
  let groups =
    if Kmap.is_empty groups && keys = [] then Kmap.singleton [] [] else groups
  in
  Kmap.fold
    (fun key bucket acc ->
      let base =
        List.fold_left2
          (fun b v value ->
            match value with None -> b | Some x -> Binding.bind b v x)
          Binding.empty keys key
      in
      let with_aggs =
        List.fold_left
          (fun b (out, agg) ->
            let n =
              match agg with
              | Count_all -> List.length bucket
              | Count_var v ->
                  List.length (List.filter (fun sol -> Binding.mem sol v) bucket)
              | Count_distinct v ->
                  List.sort_uniq compare
                    (List.filter_map (fun sol -> Binding.get sol v) bucket)
                  |> List.length
            in
            Binding.bind b out (Binding.Int n))
          base aggs
      in
      with_aggs :: acc)
    groups []
  |> List.rev

(* --- top-level evaluation --------------------------------------------- *)

let rec eval store (q : Algebra.t) : Binding.t Seq.t =
  let dict = Hexa.Store_sig.dict store in
  match q with
  | Bgp tps -> eval_bgp store tps
  | Join (a, b) ->
      let right = List.of_seq (eval store b) in
      Seq.concat_map
        (fun sa -> List.to_seq (List.filter_map (merge_bindings sa) right))
        (eval store a)
  | Left_join (a, b) ->
      let right = List.of_seq (eval store b) in
      Seq.concat_map
        (fun sa ->
          match List.filter_map (merge_bindings sa) right with
          | [] -> Seq.return sa
          | merged -> List.to_seq merged)
        (eval store a)
  | Union (a, b) -> Seq.append (eval store a) (eval store b)
  | Values (vs, rows) ->
      (* Rows with a term unknown to the dictionary cannot join with any
         data; they are dropped (documented subset behaviour). *)
      List.to_seq rows
      |> Seq.filter_map (fun row ->
             let rec build b vars cells =
               match (vars, cells) with
               | [], [] -> Some b
               | v :: vars, cell :: cells -> (
                   match cell with
                   | None -> build b vars cells
                   | Some term -> (
                       match Dict.Term_dict.find_term dict term with
                       | Some id -> build (Binding.bind b v (Binding.Id id)) vars cells
                       | None -> None))
               | _ -> None
             in
             build Binding.empty vs row)
  | Filter (expr, q) -> Seq.filter (fun sol -> filter_pass dict sol expr) (eval store q)
  | Distinct q ->
      let seen = Hashtbl.create 64 in
      Seq.filter
        (fun sol ->
          let key = Binding.to_list sol in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        (eval store q)
  | Project (vs, q) ->
      Seq.map
        (fun sol ->
          List.fold_left
            (fun b v ->
              match Binding.get sol v with None -> b | Some x -> Binding.bind b v x)
            Binding.empty vs)
        (eval store q)
  | Extend_group (keys, aggs, q) ->
      List.to_seq (eval_group keys aggs (List.of_seq (eval store q)))
  | Order_by (orders, q) ->
      let sols = List.of_seq (eval store q) in
      let cmp a b =
        let rec loop = function
          | [] -> 0
          | { key; descending } :: rest ->
              let c =
                match (Binding.get a key, Binding.get b key) with
                | None, None -> 0
                | None, Some _ -> -1
                | Some _, None -> 1
                | Some x, Some y -> compare_values dict x y
              in
              if c <> 0 then if descending then -c else c else loop rest
        in
        loop orders
      in
      List.to_seq (List.stable_sort cmp sols)
  | Slice (offset, limit, q) ->
      let s = eval store q in
      let s = match offset with None -> s | Some n -> Seq.drop n s in
      (match limit with None -> s | Some n -> Seq.take n s)

let run_seq store q = eval store q

let run store q = List.of_seq (eval store q)

let ask store q = not (Seq.is_empty (eval store q))

let count store q = Seq.length (eval store q)

let construct store ~template q =
  let dict = Hexa.Store_sig.dict store in
  let term_of_atom sol = function
    | Term t -> Some t
    | Var v -> (
        match Binding.get sol v with None -> None | Some value -> Binding.term dict value)
  in
  let instantiate sol (tp : tp) =
    match (term_of_atom sol tp.s, term_of_atom sol tp.p, term_of_atom sol tp.o) with
    | Some s, Some p, Some o -> (
        match Rdf.Triple.make s p o with
        | triple -> Some triple
        | exception Invalid_argument _ -> None)
    | _ -> None
  in
  let out =
    Seq.fold_left
      (fun acc sol ->
        List.fold_left
          (fun acc tp ->
            match instantiate sol tp with
            | Some triple -> Rdf.Triple.Set.add triple acc
            | None -> acc)
          acc template)
      Rdf.Triple.Set.empty (eval store q)
  in
  Rdf.Triple.Set.elements out
