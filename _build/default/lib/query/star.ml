open Vectors

type constraint_ = {
  p : int;
  o : int option;
}

(* A sorted source of subject ids: either a terminal s-list or the key
   column of a pso pair-vector — accessed in place, never copied. *)
type source =
  | Ivec of Sorted_ivec.t
  | Keys of Hexa.Pair_vector.t
  | Empty

let source_length = function
  | Ivec v -> Sorted_ivec.length v
  | Keys v -> Hexa.Pair_vector.length v
  | Empty -> 0

let source_get src i =
  match src with
  | Ivec v -> Sorted_ivec.get v i
  | Keys v -> Hexa.Pair_vector.key_at v i
  | Empty -> invalid_arg "Star.source_get"

(* First index with value >= x, galloping forward from [from]. *)
let seek src ~from x =
  let n = source_length src in
  let step = ref 1 in
  let lo = ref from in
  while !lo + !step < n && source_get src (!lo + !step) < x do
    lo := !lo + !step;
    step := !step * 2
  done;
  let hi = ref (min n (!lo + !step + 1)) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if source_get src mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

let source_of h { p; o } =
  if p < 0 then Empty
  else
    match o with
    | Some o -> (
        match Hexa.Hexastore.subjects_of_po h ~p ~o with Some l -> Ivec l | None -> Empty)
    | None -> (
        match Hexa.Index.find_vector (Hexa.Hexastore.pso h) p with
        | Some v -> Keys v
        | None -> Empty)

(* Leapfrog-style k-way intersection: drive from the smallest source and
   seek the others forward; every cursor is monotone. *)
let intersect_sources sources =
  match List.sort (fun a b -> compare (source_length a) (source_length b)) sources with
  | [] -> None
  | smallest :: rest ->
      let out = Sorted_ivec.create ~capacity:(max 1 (source_length smallest)) () in
      let cursors = Array.of_list rest in
      let positions = Array.make (Array.length cursors) 0 in
      let n0 = source_length smallest in
      (try
         for i = 0 to n0 - 1 do
           let x = source_get smallest i in
           let ok = ref true in
           Array.iteri
             (fun k src ->
               if !ok then begin
                 let j = seek src ~from:positions.(k) x in
                 positions.(k) <- j;
                 if j >= source_length src then raise Exit;
                 if source_get src j <> x then ok := false
               end)
             cursors;
           if !ok then ignore (Sorted_ivec.add out x)
         done
       with Exit -> ());
      Some out

let subjects h constraints =
  match constraints with
  | [] -> Hexa.Hexastore.subjects h
  | _ -> (
      let sources = List.map (source_of h) constraints in
      if List.exists (fun s -> source_length s = 0) sources then Sorted_ivec.create ()
      else
        match intersect_sources sources with
        | Some out -> out
        | None -> Sorted_ivec.create ())

let count h constraints = Sorted_ivec.length (subjects h constraints)

let of_bgp h (tps : Algebra.tp list) =
  let dict = Hexa.Hexastore.dict h in
  let subject_var = function
    | { Algebra.s = Algebra.Var v; _ } -> Some v
    | _ -> None
  in
  match tps with
  | [] -> None
  | first :: _ -> (
      match subject_var first with
      | None -> None
      | Some v ->
          let vars_ok =
            List.for_all (fun tp -> subject_var tp = Some v) tps
          in
          if not vars_ok then None
          else
            let constraint_of (tp : Algebra.tp) =
              match (tp.p, tp.o) with
              | Algebra.Var _, _ -> None  (* property must be constant *)
              | Algebra.Term pt, o -> (
                  let pid =
                    match Dict.Term_dict.find_term dict pt with Some id -> id | None -> -1
                  in
                  match o with
                  | Algebra.Term ot -> (
                      match Dict.Term_dict.find_term dict ot with
                      | Some oid -> Some { p = pid; o = Some oid }
                      | None -> Some { p = -1; o = None })
                  | Algebra.Var ov ->
                      (* Free object: only usable if the variable is not
                         the subject variable itself. *)
                      if ov = v then None else Some { p = pid; o = None })
            in
            (* Free-object variables must be pairwise distinct, or the BGP
               is an object join, not a star. *)
            let obj_vars =
              List.filter_map
                (fun (tp : Algebra.tp) ->
                  match tp.o with Algebra.Var ov -> Some ov | Algebra.Term _ -> None)
                tps
            in
            let distinct = List.length (List.sort_uniq compare obj_vars) = List.length obj_vars in
            if not distinct then None
            else
              let constraints = List.map constraint_of tps in
              if List.exists Option.is_none constraints then None
              else Some (v, List.map Option.get constraints))
