open Vectors

(* One step: given (start, node) pairs sorted by node, join node against
   the subjects of property [p] (the pso index) and fan out to that
   subject's objects.  Sorting the frontier by node is the single sort
   §4.3's sort-merge joins pay per step. *)
let step h p pairs =
  match Hexa.Index.find_vector (Hexa.Hexastore.pso h) p with
  | None -> []
  | Some v ->
      let sorted = List.sort (fun (_, a) (_, b) -> compare a b) pairs in
      let out = ref [] in
      let nv = Hexa.Pair_vector.length v in
      (* Merge walk: both the frontier and the subject vector are sorted. *)
      let rec walk pairs i =
        match pairs with
        | [] -> ()
        | (start, node) :: rest ->
            let i = ref i in
            while !i < nv && Hexa.Pair_vector.key_at v !i < node do
              incr i
            done;
            if !i < nv && Hexa.Pair_vector.key_at v !i = node then
              Sorted_ivec.iter
                (fun o -> out := (start, o) :: !out)
                (Hexa.Pair_vector.payload_at v !i);
            walk rest !i
      in
      walk sorted 0;
      List.sort_uniq compare !out

let follow h path =
  match path with
  | [] -> []
  | p0 :: rest ->
      (* First hop needs no join at all: stream the pso index of p0. *)
      let init =
        match Hexa.Index.find_vector (Hexa.Hexastore.pso h) p0 with
        | None -> []
        | Some v ->
            let out = ref [] in
            Hexa.Pair_vector.iter
              (fun s ol -> Sorted_ivec.iter (fun o -> out := (s, o) :: !out) ol)
              v;
            List.rev !out
      in
      let pairs = List.fold_left (fun pairs p -> step h p pairs) init rest in
      List.sort_uniq compare pairs

let follow_from h ~start path =
  let frontier = ref (Sorted_ivec.singleton start) in
  List.iter
    (fun p ->
      let next = Sorted_ivec.create () in
      Sorted_ivec.iter
        (fun node ->
          match Hexa.Hexastore.objects_of_sp h ~s:node ~p with
          | None -> ()
          | Some ol -> Sorted_ivec.iter (fun o -> ignore (Sorted_ivec.add next o)) ol)
        !frontier;
      frontier := next)
    path;
  !frontier

let count_pairs h path = List.length (follow h path)

let join_steps path = max 0 (List.length path - 1)
