(** Path-expression evaluation (§4.3 of the paper).

    A path expression follows a chain of properties p{_1}/p{_2}/…/p{_n}
    through subject→object edges.  §4.3's point is that the Hexastore's
    inclusion of both [pso] and [pos] makes the first of the n−1
    subject-object joins a linear merge-join and each later one a single
    sort-merge join — no pre-materialised path tables needed.

    Paths are evaluated over dictionary ids. *)

val follow : Hexa.Hexastore.t -> int list -> (int * int) list
(** [follow h [p1; …; pn]] is the list of (start, end) id pairs connected
    by the property chain, sorted and de-duplicated.  The empty chain
    yields the identity over no nodes, i.e. [[]]. *)

val follow_from : Hexa.Hexastore.t -> start:int -> int list -> Vectors.Sorted_ivec.t
(** Nodes reachable from [start] along the chain. *)

val count_pairs : Hexa.Hexastore.t -> int list -> int
(** [List.length (follow h path)] without building the list twice. *)

val join_steps : int list -> int
(** Number of pairwise joins a chain of this length needs (n − 1, per
    §4.3); exposed for the path-query example's narration. *)
