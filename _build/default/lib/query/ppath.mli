(** Property-path expressions (SPARQL 1.1 style) over a Hexastore.

    Generalises {!Path}'s fixed chains to the full path algebra —
    sequence, alternative, inverse, optional, and the transitive
    closures [+] and [*] that §4.3 frames as the RDF instance of the
    transitive-closure problem.  Closures are evaluated on demand by
    frontier search over the store's sorted indices ([pso] forward,
    [pos] backward), never by materialising path tables.

    Surface syntax accepted by {!parse} (binding tightest to loosest:
    grouping, [^], postfix [+ * ?], [/], [|]):
    {v
path := path '|' path          alternative
      | path '/' path          sequence
      | '^' path               inverse
      | path '+'               one or more
      | path '*'               zero or more
      | path '?'               zero or one
      | '(' path ')'
      | <iri> | prefix:local   a property
    v} *)

type t =
  | Pred of string          (** property IRI *)
  | Inv of t
  | Seq of t * t
  | Alt of t * t
  | Plus of t
  | Star of t
  | Opt of t

exception Parse_error of string

val parse : ?namespaces:Rdf.Namespace.table -> string -> t
(** @raise Parse_error on malformed syntax or unbound prefixes. *)

val eval_from : Hexa.Hexastore.t -> start:int -> t -> Vectors.Sorted_ivec.t
(** Nodes reachable from [start] along the path.  [Star] includes
    [start] itself. *)

val eval_into : Hexa.Hexastore.t -> t -> target:int -> Vectors.Sorted_ivec.t
(** Nodes from which [target] is reachable — [eval_from] over the
    inverted path, using the object-sorted indices. *)

val holds : Hexa.Hexastore.t -> t -> s:int -> o:int -> bool

val pairs : Hexa.Hexastore.t -> t -> (int * int) list
(** All (start, end) pairs, sorted and de-duplicated.  For closure paths
    this enumerates sources and runs a frontier search from each —
    O(nodes × reachable); fine at in-memory scale, and exactly the
    computation §4.3 says should not be pre-materialised. *)

val pp : Format.formatter -> t -> unit
