let id_of_atom dict = function
  | Algebra.Var _ -> Some None  (* wildcard *)
  | Algebra.Term t -> (
      match Dict.Term_dict.find_term dict t with
      | None -> None  (* unknown constant: the pattern can match nothing *)
      | Some id -> Some (Some id))

let estimate store (tp : Algebra.tp) =
  let dict = Hexa.Store_sig.dict store in
  match (id_of_atom dict tp.s, id_of_atom dict tp.p, id_of_atom dict tp.o) with
  | Some s, Some p, Some o -> Hexa.Store_sig.count store { Hexa.Pattern.s; p; o }
  | _ -> 0

let order_bgp store tps =
  let numbered = List.mapi (fun i tp -> (i, tp, estimate store tp)) tps in
  let shares_var bound tp =
    List.exists (fun v -> List.mem v bound) (Algebra.vars_of_tp tp)
  in
  let rec pick bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        (* Prefer patterns connected to what is already bound; among those
           (or among all, when none connects), the smallest estimate. *)
        let connected = List.filter (fun (_, tp, _) -> shares_var bound tp) remaining in
        let pool = if connected = [] then remaining else connected in
        let best =
          List.fold_left
            (fun best ((i, _, est) as cand) ->
              match best with
              | None -> Some cand
              | Some (bi, _, best_est) ->
                  if est < best_est || (est = best_est && i < bi) then Some cand else best)
            None pool
        in
        (match best with
        | None -> List.rev acc
        | Some (i, tp, _) ->
            let remaining = List.filter (fun (j, _, _) -> j <> i) remaining in
            let bound = List.sort_uniq compare (bound @ Algebra.vars_of_tp tp) in
            pick bound remaining (tp :: acc))
  in
  pick [] numbered []
