type value =
  | Id of int
  | Int of int

module Smap = Map.Make (String)

type t = value Smap.t

let empty = Smap.empty

let get b v = Smap.find_opt v b

let mem b v = Smap.mem v b

let bind b v x =
  match Smap.find_opt v b with
  | Some existing when existing <> x ->
      invalid_arg (Printf.sprintf "Binding.bind: %s already bound" v)
  | _ -> Smap.add v x b

let vars b = List.map fst (Smap.bindings b)

let to_list b = Smap.bindings b

let compatible b v x = match Smap.find_opt v b with None -> true | Some y -> y = x

let equal = Smap.equal ( = )

let compare = Smap.compare Stdlib.compare

let term dict = function
  | Id id -> ( try Some (Dict.Term_dict.decode_term dict id) with Invalid_argument _ -> None)
  | Int n -> Some (Rdf.Term.int_literal n)

let value_to_string dict v =
  match v with
  | Int n -> string_of_int n
  | Id id -> (
      match term dict v with
      | Some t -> Rdf.Term.to_string t
      | None -> Printf.sprintf "?id:%d" id)

let pp dict ppf b =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (v, x) -> Format.fprintf ppf "%s=%s" v (value_to_string dict x)))
    (to_list b)
