let cell dict sol col =
  match Binding.get sol col with
  | None -> ""
  | Some v -> Binding.value_to_string dict v

let to_table dict ~columns solutions =
  List.map (fun sol -> List.map (cell dict sol) columns) solutions

let pp dict ~columns ppf solutions =
  let rows = to_table dict ~columns solutions in
  let headers = List.map (fun c -> "?" ^ c) columns in
  let widths =
    List.fold_left
      (fun ws row -> List.map2 (fun w c -> max w (String.length c)) ws row)
      (List.map String.length headers)
      rows
  in
  let pp_row ppf row =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        Format.fprintf ppf "%s%s  " c (String.make (w - String.length c) ' '))
      row
  in
  let rule = String.concat "" (List.map (fun w -> String.make (w + 2) '-') widths) in
  Format.fprintf ppf "%a@,%s@," pp_row headers rule;
  List.iter (fun row -> Format.fprintf ppf "%a@," pp_row row) rows;
  Format.fprintf ppf "(%d row%s)" (List.length rows) (if List.length rows = 1 then "" else "s")

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv dict ~columns solutions =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (String.concat "," (List.map csv_escape columns));
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (String.concat "," (List.map csv_escape row));
      Buffer.add_char buf '\n')
    (to_table dict ~columns solutions);
  Buffer.contents buf
