(** A SPARQL-subset parser.

    Covers the query forms the examples, CLI and tests use:

    - [PREFIX] / [BASE] prologue;
    - [SELECT] with a variable list, [*], [DISTINCT], and
      COUNT-aggregates bound with AS — count of all rows, of a
      variable's bound occurrences, or of its distinct values;
    - [ASK] and [CONSTRUCT] (template of triple patterns + WHERE);
    - group graph patterns with triple patterns ([;]/[,] lists and [a]
      supported), nested groups, [UNION], [OPTIONAL], and [FILTER] with
      [=, !=, <, <=, >, >=, &&, ||, !, BOUND];
    - [VALUES] inline data (single- and multi-variable forms, [UNDEF]);
    - [GROUP BY], [ORDER BY] (with [ASC]/[DESC]), [LIMIT], [OFFSET].

    Rows of [VALUES] whose terms are unknown to the store's dictionary
    are dropped (they could never join with stored data).

    Not covered: [DESCRIBE], property paths
    (see {!Path} for the §4.3 evaluator), subqueries, [VALUES]. *)

exception Parse_error of int * string
(** Line-numbered syntax error (1-based). *)

type query = {
  algebra : Algebra.t;
  projection : string list;
      (** Variables of the result rows, in SELECT order.  For [SELECT *]
          this is every variable of the pattern; for [ASK] it is empty. *)
  is_ask : bool;
  template : Algebra.tp list option;
      (** [Some tps] for CONSTRUCT queries: instantiate with
          {!Exec.construct}. *)
}

val parse : ?namespaces:Rdf.Namespace.table -> string -> query
(** Parse a query.  [namespaces] provides pre-bound prefixes (the query's
    own [PREFIX] directives are added to a copy, not to the caller's
    table). *)
