(** Greedy selectivity-based join ordering for basic graph patterns.

    The Hexastore answers any pattern shape with exact cardinalities in
    O(log) time ({!Hexa.Hexastore.count}), which makes the textbook greedy
    strategy effective: repeatedly pick the remaining triple pattern with
    the smallest estimated result, preferring patterns that share an
    already-bound variable (so every step is a join, not a product). *)

val estimate : Hexa.Store_sig.boxed -> Algebra.tp -> int
(** Upper-bound cardinality of a pattern evaluated with no bindings:
    constants resolve through the dictionary (an unknown constant gives
    0), variables are wildcards. *)

val order_bgp : Hexa.Store_sig.boxed -> Algebra.tp list -> Algebra.tp list
(** Execution order for the patterns of a BGP.  Deterministic: ties break
    on the original position. *)
