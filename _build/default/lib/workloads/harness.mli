(** Benchmark harness: timing, prefix sweeps and series output.

    The paper's figures plot query response time against the number of
    triples in the store, per method, on log axes.  A {!sweep} builds
    each competitor at progressively larger prefixes of a generated data
    set (all over one shared dictionary) and times each query at each
    size; the output is a gnuplot-style series block per figure. *)

val time : ?warmup:int -> ?repeats:int -> (unit -> 'a) -> float * 'a
(** [time f] is the median wall-clock seconds over [repeats] (default 3)
    timed runs after [warmup] (default 1) untimed ones, and [f]'s result
    from the last run. *)

type sized_stores = {
  n_triples : int;     (** store size at this sweep point *)
  stores : Stores.t list;  (** one per requested kind, sharing a dictionary *)
  dict : Dict.Term_dict.t;
}

val build_prefixes :
  kinds:Stores.kind list -> sizes:int list -> Rdf.Triple.t Seq.t -> sized_stores list
(** Encode the data set once into a shared dictionary and load each
    requested prefix size into fresh stores.  Sizes beyond the data set's
    length are clamped (duplicates collapse). *)

(** One measured point of a figure. *)
type point = {
  size : int;
  method_ : string;
  seconds : float;
}

val pp_series : figure:string -> title:string -> Format.formatter -> point list -> unit
(** Print a figure block:
    {v
# figure fig10 — LUBM Query 1
# triples  method  seconds
50000 Hexastore 0.000012
...
    v} *)

val words_to_mb : int -> float
