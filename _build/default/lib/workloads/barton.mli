(** Barton-like synthetic catalog data.

    The paper's first data set is the MIT Libraries Barton catalog
    (61M triples, 285 unique properties, "quite irregular" structure,
    §5.1.1).  The real dump is not redistributable here, so this module
    generates a *shape-faithful* substitute (documented in DESIGN.md):

    - exactly 285 distinct properties, the "vast majority" of which
      "appear infrequently" (Zipf-tailed assignment);
    - a dominant [Type] property whose object distribution includes a
      frequent [Text] type and a [Date] type;
    - [Language] (including [French]), [Origin] (including [DLC]),
      [Records] (resource → resource), [Point] (["end"]/["start"], on
      dates), and [Encoding] — the properties BQ1–BQ7 touch — wired so
      every benchmark query has non-trivial, size-scaling answers.

    Deterministic for a given (seed, size). *)

type config = {
  subjects : int;  (** number of catalog records; ≈ 5–6 triples each *)
  seed : int;
}

val default_config : config
(** 50,000 subjects ≈ 280k triples. *)

val config : ?subjects:int -> ?seed:int -> unit -> config

val total_properties : int
(** 285, as in the paper. *)

val generate : config -> Rdf.Triple.t list

val generate_seq : config -> Rdf.Triple.t Seq.t
(** Lazily generated; the returned sequence owns generator state and must
    be consumed at most once (call again for a fresh stream). *)

(** Vocabulary IRIs used by the queries. *)

val type_p : string
(** The catalog's [Type] property (rdf:type). *)

val language_p : string
val origin_p : string
val records_p : string
val point_p : string
val encoding_p : string

val text_type : string
val date_type : string
val french : string
(** The [Language: French] object (a literal in the data; exposed here as
    the literal's string value). *)

val dlc : string
(** The [Origin: DLC] object IRI. *)

val tail_property : int -> string
(** [tail_property k] is the k-th of the 278 rare "tail" properties. *)

val properties_28 : string list
(** A 28-property subset in the spirit of the pre-selected set of [5]:
    the six query-relevant properties plus the 22 most frequent tail
    properties. *)
