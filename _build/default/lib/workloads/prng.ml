type t = {
  mutable state : int64;
  mutable zipf_cache : (int * float * float array) option;
      (* (n, s, cumulative weights) of the last zipf distribution used *)
}

let create seed = { state = Int64.of_int seed; zipf_cache = None }

(* SplitMix64 (Steele, Lea, Flood 2014). *)
let next_u64 g =
  g.state <- Int64.add g.state 0x9E3779B97F4A7C15L;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next g = Int64.to_int (Int64.shift_right_logical (next_u64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  next g mod n

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g = Int64.to_float (Int64.shift_right_logical (next_u64 g) 11) /. 9007199254740992.0

let bool g = Int64.logand (next_u64 g) 1L = 1L

let chance g p = float g < p

let choice g a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int g (Array.length a))

let weighted g choices =
  if choices = [] then invalid_arg "Prng.weighted: empty list";
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. choices in
  if total <= 0. then invalid_arg "Prng.weighted: non-positive total weight";
  let x = float g *. total in
  let rec pick acc = function
    | [] -> fst (List.hd (List.rev choices))
    | (v, w) :: rest -> if x < acc +. w then v else pick (acc +. w) rest
  in
  pick 0. choices

let zipf g ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf: n must be positive";
  let cumulative =
    match g.zipf_cache with
    | Some (cn, cs, c) when cn = n && cs = s -> c
    | _ ->
        let c = Array.make n 0. in
        let acc = ref 0. in
        for k = 0 to n - 1 do
          acc := !acc +. (1. /. Float.pow (float_of_int (k + 1)) s);
          c.(k) <- !acc
        done;
        g.zipf_cache <- Some (n, s, c);
        c
  in
  let x = float g *. cumulative.(n - 1) in
  (* Binary search for the first cumulative weight >= x. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cumulative.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo
