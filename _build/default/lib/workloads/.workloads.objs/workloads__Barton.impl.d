lib/workloads/barton.ml: Fun List Namespace Printf Prng Rdf Seq Term Triple Vectors
