lib/workloads/queries_barton.mli: Dict Stores
