lib/workloads/harness.mli: Dict Format Rdf Seq Stores
