lib/workloads/prng.mli:
