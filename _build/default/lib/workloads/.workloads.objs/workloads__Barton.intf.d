lib/workloads/barton.mli: Rdf Seq
