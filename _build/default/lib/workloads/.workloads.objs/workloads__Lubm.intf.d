lib/workloads/lubm.mli: Rdf Seq
