lib/workloads/queries_lubm.ml: Covp Dict Hexa Hexastore Index List Lubm Pair_vector Rdf Stores Vectors
