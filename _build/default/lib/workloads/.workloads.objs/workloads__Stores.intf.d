lib/workloads/stores.mli: Dict Hexa
