lib/workloads/stores.ml: Hexa
