lib/workloads/queries_lubm.mli: Dict Stores
