lib/workloads/harness.ml: Array Dict Float Format List Seq Stores Unix
