lib/workloads/lubm.ml: Array Fun List Namespace Printf Prng Rdf Seq Term Triple
