lib/workloads/queries_barton.ml: Barton Covp Dict Hashtbl Hexa Hexastore Index List Option Pair_vector Rdf Stores Vectors
