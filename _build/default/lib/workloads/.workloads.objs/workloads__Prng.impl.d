lib/workloads/prng.ml: Array Float Int64 List
