(** LUBM-like synthetic data (Guo, Heflin, Pan [23]).

    Models "information encountered in an academic setting" — the paper's
    second data set (§5.1.2): universities with departments, professors of
    three ranks, lecturers, under/graduate students, courses, advisors and
    the three degree properties, over exactly 18 predicates.  IRIs follow
    the LUBM naming convention
    ([http://www.Department<d>.University<u>.edu/<Entity><k>]), so the
    benchmark queries' anchor resources ([Course10], [University0],
    [AssociateProfessor10]) exist by construction.

    Generation is deterministic for a given (seed, shape). *)

type config = {
  universities : int;
  departments_per_university : int;
  seed : int;
}

val default_config : config
(** 10 universities × 4 departments — a few hundred thousand triples. *)

val config : ?universities:int -> ?departments_per_university:int -> ?seed:int -> unit -> config

val predicates : string list
(** The 18 predicate IRIs the generator emits. *)

val generate : config -> Rdf.Triple.t list
(** The full data set.  Triple order is generation order (stable), so a
    prefix of the list is the "progressively larger prefix" the paper's
    sweeps use. *)

val generate_seq : config -> Rdf.Triple.t Seq.t
(** Same triples, lazily; the returned sequence owns generator state and
    must be consumed at most once (call again for a fresh stream). *)

(** Anchor resources used by the benchmark queries (full IRIs). *)

val university : int -> string
val department : u:int -> d:int -> string
val course10 : string
(** [Course10] of Department0.University0. *)

val associate_professor10 : string
(** [AssociateProfessor10] of Department0.University0. *)

val ub : string -> string
(** Ontology-term IRI, e.g. [ub "takesCourse"]. *)
