type t =
  | Hexa of Hexa.Hexastore.t
  | Covp of Hexa.Covp.t

type kind =
  | K_hexastore
  | K_covp1
  | K_covp2

let all_kinds = [ K_hexastore; K_covp1; K_covp2 ]

let kind_name = function
  | K_hexastore -> "Hexastore"
  | K_covp1 -> "COVP1"
  | K_covp2 -> "COVP2"

let create ?dict kind =
  match kind with
  | K_hexastore -> Hexa (Hexa.Hexastore.create ?dict ())
  | K_covp1 -> Covp (Hexa.Covp.create ?dict Hexa.Covp.Covp1)
  | K_covp2 -> Covp (Hexa.Covp.create ?dict Hexa.Covp.Covp2)

let name = function
  | Hexa _ -> "Hexastore"
  | Covp c -> ( match Hexa.Covp.kind c with Hexa.Covp.Covp1 -> "COVP1" | Hexa.Covp.Covp2 -> "COVP2")

let dict = function Hexa h -> Hexa.Hexastore.dict h | Covp c -> Hexa.Covp.dict c

let size = function Hexa h -> Hexa.Hexastore.size h | Covp c -> Hexa.Covp.size c

let load t triples =
  match t with
  | Hexa h -> Hexa.Hexastore.add_bulk_ids h triples
  | Covp c -> Hexa.Covp.add_bulk_ids c triples

let memory_words = function
  | Hexa h -> Hexa.Hexastore.memory_words h
  | Covp c -> Hexa.Covp.memory_words c

let boxed = function
  | Hexa h -> Hexa.Store_sig.box_hexastore h
  | Covp c -> Hexa.Store_sig.box_covp c
