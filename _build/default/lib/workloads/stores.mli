(** The three competitor stores of §5, as one sum type.

    The benchmark queries ({!Queries_barton}, {!Queries_lubm}) implement a
    distinct execution strategy per competitor, following §5.2's
    descriptions; this module just gives the harness a uniform way to
    build, load and measure them. *)

type t =
  | Hexa of Hexa.Hexastore.t
  | Covp of Hexa.Covp.t

(** Which competitor to build. *)
type kind =
  | K_hexastore
  | K_covp1
  | K_covp2

val all_kinds : kind list
(** In presentation order: Hexastore, COVP1, COVP2. *)

val kind_name : kind -> string

val create : ?dict:Dict.Term_dict.t -> kind -> t
(** Stores built over a shared dictionary agree on ids, which the answer
    cross-checks rely on. *)

val name : t -> string

val dict : t -> Dict.Term_dict.t

val size : t -> int

val load : t -> Dict.Term_dict.id_triple array -> int
(** Bulk load; returns the number of new triples. *)

val memory_words : t -> int

val boxed : t -> Hexa.Store_sig.boxed
(** For running the generic query engine over a competitor. *)
