open Rdf

type config = {
  universities : int;
  departments_per_university : int;
  seed : int;
}

let default_config = { universities = 10; departments_per_university = 4; seed = 42 }

let config ?(universities = 10) ?(departments_per_university = 4) ?(seed = 42) () =
  { universities; departments_per_university; seed }

let ub = Namespace.ub

let predicates =
  List.map ub
    [
      "name"; "emailAddress"; "telephone"; "worksFor"; "memberOf"; "subOrganizationOf";
      "undergraduateDegreeFrom"; "mastersDegreeFrom"; "doctoralDegreeFrom"; "teacherOf";
      "takesCourse"; "advisor"; "teachingAssistantOf"; "researchInterest";
      "publicationAuthor"; "headOf"; "officeNumber";
    ]
  @ [ Namespace.rdf_type ]

let university u = Printf.sprintf "http://www.University%d.edu" u

let department ~u ~d = Printf.sprintf "http://www.Department%d.University%d.edu" d u

let entity ~u ~d kind k = Printf.sprintf "%s/%s%d" (department ~u ~d) kind k

let course10 = entity ~u:0 ~d:0 "Course" 10

let associate_professor10 = entity ~u:0 ~d:0 "AssociateProfessor" 10

(* Entity population per department; AssociateProfessor10 and Course10
   must exist in Department0.University0, so the minima stay above 10. *)
let full_professors = 7
let assoc_professors = 12
let assist_professors = 8
let lecturers = 5
let courses_per_faculty = 2

let interests = [| "Agents"; "Databases"; "Graphics"; "AI"; "Systems"; "Theory"; "Networks" |]

let generate_seq cfg =
  let rng = Prng.create cfg.seed in
  let iri = Term.iri in
  let lit = Term.string_literal in
  let typ = iri Namespace.rdf_type in
  let p name = iri (ub name) in
  let p_name = p "name" and p_email = p "emailAddress" and p_tel = p "telephone" in
  let p_works = p "worksFor" and p_member = p "memberOf" and p_suborg = p "subOrganizationOf" in
  let p_ug = p "undergraduateDegreeFrom" and p_ms = p "mastersDegreeFrom" in
  let p_phd = p "doctoralDegreeFrom" in
  let p_teaches = p "teacherOf" and p_takes = p "takesCourse" and p_advisor = p "advisor" in
  let p_ta = p "teachingAssistantOf" and p_interest = p "researchInterest" in
  let p_pub_author = p "publicationAuthor" and p_head = p "headOf" and p_office = p "officeNumber" in
  let c name = iri (ub name) in
  let some_university () = iri (university (Prng.int rng cfg.universities)) in

  (* The data set is assembled department by department; each department
     yields a burst of triples, streamed lazily so prefixes of any size
     can be taken without building the whole list. *)
  let department_triples u d =
    let dept = iri (department ~u ~d) in
    let univ = iri (university u) in
    let out = ref [] in
    let emit s pr o = out := Triple.make s pr o :: !out in
    emit dept typ (c "Department");
    emit dept p_suborg univ;
    emit univ typ (c "University");
    emit univ p_name (lit (Printf.sprintf "University%d" u));

    let faculty = ref [] in
    let courses = ref [] in
    let next_course = ref 0 in
    let mk_person kind class_name k =
      let person = iri (entity ~u ~d kind k) in
      emit person typ (c class_name);
      emit person p_name (lit (Printf.sprintf "%s%d_%d_%d" kind k d u));
      emit person p_email (lit (Printf.sprintf "%s%d@dept%d.univ%d.edu" kind k d u));
      emit person p_tel (lit (Printf.sprintf "+41-%04d-%04d" (Prng.int rng 10000) (Prng.int rng 10000)));
      person
    in
    let mk_faculty kind class_name k =
      let person = mk_person kind class_name k in
      emit person p_works dept;
      emit person p_ug (some_university ());
      emit person p_ms (some_university ());
      emit person p_phd (some_university ());
      emit person p_interest (lit (Prng.choice rng interests));
      emit person p_office (lit (string_of_int (Prng.int_in rng 100 999)));
      for _ = 1 to courses_per_faculty do
        let course = iri (entity ~u ~d "Course" !next_course) in
        incr next_course;
        emit course typ (c "Course");
        emit course p_name (lit (Printf.sprintf "Course%d_%d_%d" (!next_course - 1) d u));
        emit person p_teaches course;
        courses := course :: !courses
      done;
      faculty := person :: !faculty;
      person
    in
    for k = 0 to full_professors - 1 do
      let prof = mk_faculty "FullProfessor" "FullProfessor" k in
      if k = 0 then emit prof p_head dept
    done;
    for k = 0 to assoc_professors - 1 do
      ignore (mk_faculty "AssociateProfessor" "AssociateProfessor" k)
    done;
    for k = 0 to assist_professors - 1 do
      ignore (mk_faculty "AssistantProfessor" "AssistantProfessor" k)
    done;
    for k = 0 to lecturers - 1 do
      ignore (mk_faculty "Lecturer" "Lecturer" k)
    done;

    let faculty = Array.of_list !faculty in
    let courses = Array.of_list !courses in
    let n_faculty = Array.length faculty in

    (* Undergraduates: ~9 per faculty member. *)
    let undergrads = n_faculty * 9 in
    for k = 0 to undergrads - 1 do
      let s = mk_person "UndergraduateStudent" "UndergraduateStudent" k in
      emit s p_member dept;
      for _ = 1 to Prng.int_in rng 2 4 do
        emit s p_takes (Prng.choice rng courses)
      done
    done;

    (* Graduate students: ~3 per faculty member; advisor, prior degree,
       some are teaching assistants, some co-author publications. *)
    let grads = n_faculty * 3 in
    for k = 0 to grads - 1 do
      let s = mk_person "GraduateStudent" "GraduateStudent" k in
      emit s p_member dept;
      emit s p_advisor (Prng.choice rng faculty);
      emit s p_ug (some_university ());
      for _ = 1 to Prng.int_in rng 1 3 do
        emit s p_takes (Prng.choice rng courses)
      done;
      if Prng.chance rng 0.25 then emit s p_ta (Prng.choice rng courses)
    done;

    (* Publications: authored by faculty and grad students. *)
    let pubs = n_faculty * 2 in
    for k = 0 to pubs - 1 do
      let pub = iri (entity ~u ~d "Publication" k) in
      emit pub typ (c "Publication");
      emit pub p_pub_author (Prng.choice rng faculty)
    done;
    List.rev !out
  in
  Seq.concat_map
    (fun u ->
      Seq.concat_map
        (fun d -> List.to_seq (department_triples u d))
        (Seq.init cfg.departments_per_university Fun.id))
    (Seq.init cfg.universities Fun.id)

let generate cfg = List.of_seq (generate_seq cfg)
