open Rdf

type config = {
  subjects : int;
  seed : int;
}

let default_config = { subjects = 50_000; seed = 7 }

let config ?(subjects = 50_000) ?(seed = 7) () = { subjects; seed }

let bt = Namespace.bt

let type_p = Namespace.rdf_type
let language_p = bt "language"
let origin_p = bt "origin"
let records_p = bt "records"
let point_p = bt "point"
let encoding_p = bt "encoding"

let text_type = bt "Text"
let date_type = bt "Date"
let notated_music_type = bt "NotatedMusic"
let manuscript_type = bt "Manuscript"
let cartographic_type = bt "Cartographic"
let sound_type = bt "SoundRecording"

let french = "French"
let dlc = bt "DLC"

let n_tail = 279  (* 279 tail + 6 query properties = 285 *)

let total_properties = n_tail + 6

let tail_property k = bt (Printf.sprintf "tailProperty%03d" k)

let properties_28 =
  [ type_p; language_p; origin_p; records_p; point_p; encoding_p ]
  @ List.init 22 tail_property

let subject_iri i = Printf.sprintf "http://library.example.edu/record/%07d" i

let type_distribution =
  [
    (text_type, 0.35);
    (notated_music_type, 0.08);
    (manuscript_type, 0.10);
    (cartographic_type, 0.07);
    (sound_type, 0.10);
    (date_type, 0.12);
    (bt "Periodical", 0.08);
    (bt "Globe", 0.04);
    (bt "Kit", 0.03);
    (bt "MixedMaterial", 0.13);
  ]

let language_distribution =
  [ ("English", 0.55); (french, 0.15); ("German", 0.12); ("Spanish", 0.10); ("Latin", 0.08) ]

(* Index of a type in the distribution: catalog records of different
   types use different (overlapping) bands of the tail-property
   vocabulary, reproducing the real catalog's trait that no one record
   type touches anywhere near all 285 properties. *)
let type_index ty =
  let rec find i = function
    | [] -> 0
    | (t, _) :: rest -> if t = ty then i else find (i + 1) rest
  in
  find 0 type_distribution

let band_width = 100
let band_stride = 28

let generate_seq cfg =
  let rng = Prng.create cfg.seed in
  let iri = Term.iri in
  let lit = Term.string_literal in
  let t_type = iri type_p and t_lang = iri language_p and t_origin = iri origin_p in
  let t_records = iri records_p and t_point = iri point_p and t_enc = iri encoding_p in
  let origins = [ (dlc, 0.45); (bt "OCoLC", 0.30); (bt "MH", 0.15); (bt "NNC", 0.10) ] in
  let encodings = [| "marc8"; "utf8"; "latin1" |] in
  (* Earlier Text-typed records, tracked so Records edges can point at
     them preferentially: in the catalog, records overwhelmingly
     'record' Text documents, which is what keeps BQ5's non-Text
     inference table small and BQ6's inferred-Text set large. *)
  let text_ids = Vectors.Dynarray_int.create () in
  let subject_triples i =
    let s = iri (subject_iri i) in
    let out = ref [] in
    let emit p o = out := Triple.make s p o :: !out in
    (* Every record has a type. *)
    let ty = Prng.weighted rng type_distribution in
    emit t_type (iri ty);
    (* Dates carry Point and Encoding — the BQ7 path. *)
    if ty = date_type then begin
      emit t_point (lit (if Prng.chance rng 0.5 then "end" else "start"));
      emit t_enc (lit (Prng.choice rng encodings))
    end;
    (* Language on ~60% of records. *)
    if Prng.chance rng 0.6 then
      emit t_lang (lit (Prng.weighted rng language_distribution));
    (* Origin on ~35%. *)
    if Prng.chance rng 0.35 then emit t_origin (iri (Prng.weighted rng origins));
    (* Records: ~15% of records point at an earlier record (BQ5's
       inference edge), preferentially a Text one.  Earlier targets keep
       the reference resolvable in every prefix of the stream. *)
    if i > 0 && Prng.chance rng 0.15 then begin
      (* Targets concentrate on an early pool of Text records: popular
         catalog items are recorded many times over, so the distinct
         object count of the Records property stays far below its triple
         count (as in the real catalog). *)
      let n_text = min (Vectors.Dynarray_int.length text_ids) 2000 in
      let target =
        if n_text > 0 && Prng.chance rng 0.85 then
          Vectors.Dynarray_int.get text_ids (Prng.int rng n_text)
        else Prng.int rng i
      in
      emit t_records (iri (subject_iri target))
    end;
    if ty = text_type then Vectors.Dynarray_int.push text_ids i;
    (* Tail properties: 1–4 Zipf draws from the type's band of the 279
       rare properties; objects repeat within a small pool so BQ3's
       "popular object" counts are non-trivial. *)
    let band_start = type_index ty * band_stride in
    let draws = Prng.int_in rng 1 4 in
    for _ = 1 to draws do
      let k = (band_start + Prng.zipf rng ~n:band_width ~s:1.1) mod n_tail in
      let o =
        if Prng.chance rng 0.5 then lit (Printf.sprintf "value%d" (Prng.int rng 40))
        else iri (bt (Printf.sprintf "entity%d" (Prng.int rng 200)))
      in
      emit (iri (tail_property k)) o
    done;
    List.rev !out
  in
  (* Seed records: one dedicated, typeless subject per tail property, so
     all 285 properties exist at every reasonable prefix without
     polluting any type's property vocabulary. *)
  let seed_triples k =
    [
      Triple.make
        (iri (Printf.sprintf "http://library.example.edu/record/seed%03d" k))
        (iri (tail_property k)) (lit "seed");
    ]
  in
  Seq.append
    (Seq.concat_map (fun k -> List.to_seq (seed_triples k)) (Seq.init n_tail Fun.id))
    (Seq.concat_map (fun i -> List.to_seq (subject_triples i)) (Seq.init cfg.subjects Fun.id))

let generate cfg = List.of_seq (generate_seq cfg)
