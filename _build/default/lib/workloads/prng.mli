(** Deterministic pseudo-random numbers for the workload generators.

    SplitMix64: tiny, fast, and — unlike [Stdlib.Random] — guaranteed
    stable across OCaml versions, so a seed pins a data set byte-for-byte
    and every benchmark run sees identical input. *)

type t

val create : int -> t
(** Seeded generator. *)

val next : t -> int
(** Next 62-bit non-negative integer. *)

val int : t -> int -> int
(** [int g n] is uniform in [0, n).  @raise Invalid_argument if [n <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance g p] is true with probability [p]. *)

val choice : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val weighted : t -> ('a * float) list -> 'a
(** Choice by relative weight.  @raise Invalid_argument on an empty list
    or non-positive total weight. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [0, n): rank k drawn with probability
    proportional to 1/(k+1){^s}.  Used for the Barton generator's
    heavy-tailed property frequencies.  O(n) setup is cached per (n, s)
    inside {!t}. *)
