open Hexa
module SV = Vectors.Sorted_ivec
module Merge = Vectors.Merge

type ids = {
  course10 : int;
  university0 : int;
  assoc_prof10 : int;
  type_p : int;
  university_class : int;
  teacher_of : int;
  degree_props : int list;
}

let resolve_ids dict =
  let iri s = Dict.Term_dict.find_term dict (Rdf.Term.iri s) in
  match
    ( iri Lubm.course10, iri (Lubm.university 0), iri Lubm.associate_professor10,
      iri Rdf.Namespace.rdf_type, iri (Lubm.ub "University"), iri (Lubm.ub "teacherOf"),
      iri (Lubm.ub "undergraduateDegreeFrom"), iri (Lubm.ub "mastersDegreeFrom"),
      iri (Lubm.ub "doctoralDegreeFrom") )
  with
  | ( Some course10, Some university0, Some assoc_prof10, Some type_p, Some university_class,
      Some teacher_of, Some ug, Some ms, Some phd ) ->
      Some
        {
          course10;
          university0;
          assoc_prof10;
          type_p;
          university_class;
          teacher_of;
          degree_props = [ ug; ms; phd ];
        }
  | _ -> None

let empty_sv = SV.create ~capacity:1 ()

(* --- object-bound retrieval: who relates to [o]? ----------------------- *)

(* (subject, property) pairs for every triple with object [o], using each
   competitor's native access path. *)
let related_to store o =
  match store with
  | Stores.Hexa h -> (
      (* Direct osp lookup: subject vector with property lists. *)
      match Index.find_vector (Hexastore.osp h) o with
      | None -> []
      | Some v ->
          let out = ref [] in
          Pair_vector.iter (fun s pl -> SV.iter (fun p -> out := (s, p) :: !out) pl) v;
          List.sort compare !out)
  | Stores.Covp c ->
      let out = ref [] in
      SV.iter
        (fun p ->
          match Covp.object_vector c p with
          | Some v -> (
              (* COVP2: one pos probe per property table. *)
              match Pair_vector.find v o with
              | None -> ()
              | Some sl -> SV.iter (fun s -> out := (s, p) :: !out) sl)
          | None -> (
              (* COVP1: scan the property's subject table, probing each
                 subject's o-list. *)
              match Covp.subject_vector c p with
              | None -> ()
              | Some v ->
                  Pair_vector.iter
                    (fun s ol -> if SV.mem ol o then out := (s, p) :: !out)
                    v))
        (Covp.properties c);
      List.sort compare !out

let lq1 store ids = related_to store ids.course10

let lq2 store ids = related_to store ids.university0

(* --- LQ3: everything about AssociateProfessor10 ------------------------ *)

let lq3 store ids =
  let x = ids.assoc_prof10 in
  let outgoing =
    match store with
    | Stores.Hexa h -> (
        (* One spo lookup. *)
        match Index.find_vector (Hexastore.spo h) x with
        | None -> []
        | Some v ->
            let out = ref [] in
            Pair_vector.iter (fun p ol -> SV.iter (fun o -> out := (p, o) :: !out) ol) v;
            List.sort compare !out)
    | Stores.Covp c ->
        (* Both COVP variants: probe every property table by subject. *)
        let out = ref [] in
        SV.iter
          (fun p ->
            match Covp.objects_of_sp c ~s:x ~p with
            | None -> ()
            | Some ol -> SV.iter (fun o -> out := (p, o) :: !out) ol)
          (Covp.properties c);
        List.sort compare !out
  in
  let incoming = related_to store x in
  (outgoing, incoming)

(* --- LQ4: people in AP10's courses, grouped by course ------------------ *)

let objects_sp store ~s ~p =
  match store with
  | Stores.Hexa h -> (
      match Hexastore.objects_of_sp h ~s ~p with Some l -> l | None -> empty_sv)
  | Stores.Covp c -> (
      match Covp.objects_of_sp c ~s ~p with Some l -> l | None -> empty_sv)

let lq4 store ids =
  let courses = objects_sp store ~s:ids.assoc_prof10 ~p:ids.teacher_of in
  SV.fold
    (fun acc course ->
      let people =
        List.sort_uniq compare (List.map fst (related_to store course))
      in
      (course, people) :: acc)
    [] courses
  |> List.rev

(* --- LQ5: degree-holders from AP10's universities ---------------------- *)

let lq5 store ids =
  (* Step 1: the objects AP10 is related to. *)
  let t =
    match store with
    | Stores.Hexa h -> (
        (* Directly the object vector of AP10 in sop indexing. *)
        match Index.find_vector (Hexastore.sop h) ids.assoc_prof10 with
        | None -> empty_sv
        | Some v -> Pair_vector.keys v)
    | Stores.Covp c ->
        (* Scan all pso property tables for AP10's objects. *)
        let objs = ref [] in
        SV.iter
          (fun p ->
            match Covp.objects_of_sp c ~s:ids.assoc_prof10 ~p with
            | None -> ()
            | Some ol -> SV.iter (fun o -> objs := o :: !objs) ol)
          (Covp.properties c);
        SV.of_list !objs
  in
  (* Step 2: refine t to universities. *)
  let universities =
    match store with
    | Stores.Hexa h -> (
        match Hexastore.subjects_of_po h ~p:ids.type_p ~o:ids.university_class with
        | None -> empty_sv
        | Some unis -> Merge.intersect t unis)
    | Stores.Covp c -> (
        match Covp.kind c with
        | Covp.Covp2 -> (
            match Covp.subjects_of_po c ~p:ids.type_p ~o:ids.university_class with
            | None -> empty_sv
            | Some unis -> Merge.intersect t unis)
        | Covp.Covp1 -> (
            (* Join t with the Type subject vector, filtering on the
               University object. *)
            match Covp.subject_vector c ids.type_p with
            | None -> empty_sv
            | Some v ->
                let out = SV.create () in
                let nv = Pair_vector.length v and nt = SV.length t in
                let i = ref 0 and j = ref 0 in
                while !i < nv && !j < nt do
                  let s = Pair_vector.key_at v !i and x = SV.get t !j in
                  if s = x then begin
                    if SV.mem (Pair_vector.payload_at v !i) ids.university_class then
                      ignore (SV.add out s);
                    incr i;
                    incr j
                  end
                  else if s < x then incr i
                  else incr j
                done;
                out))
  in
  (* Step 3: degree-holders per university. *)
  let subjects_po p o =
    match store with
    | Stores.Hexa h -> (
        match Hexastore.subjects_of_po h ~p ~o with Some l -> l | None -> empty_sv)
    | Stores.Covp c -> (
        match Covp.subjects_of_po c ~p ~o with Some l -> l | None -> empty_sv)
  in
  SV.fold
    (fun acc u ->
      let people =
        List.fold_left
          (fun acc p -> Merge.union acc (subjects_po p u))
          (SV.create ()) ids.degree_props
      in
      (u, SV.to_list people) :: acc)
    [] universities
  |> List.rev
