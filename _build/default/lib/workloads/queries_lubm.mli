(** The five LUBM benchmark queries (§5.2.2), one execution strategy per
    competitor, following the paper's descriptions.

    All five are "general-purpose" queries that bind a subject or an
    object rather than a property, which is exactly where the
    property-oriented baselines must consult every property table and the
    Hexastore can answer from [osp]/[sop]/[ops] directly.

    Results are sorted and canonical for cross-store equality checks. *)

type ids = {
  course10 : int;
  university0 : int;
  assoc_prof10 : int;
  type_p : int;
  university_class : int;
  teacher_of : int;
  degree_props : int list;  (** the three *DegreeFrom properties *)
}

val resolve_ids : Dict.Term_dict.t -> ids option

val lq1 : Stores.t -> ids -> (int * int) list
(** Everything related to Course10: (subject, property), sorted. *)

val lq2 : Stores.t -> ids -> (int * int) list
(** Everything related to University0. *)

val lq3 : Stores.t -> ids -> (int * int) list * (int * int) list
(** Immediate information about AssociateProfessor10: outgoing (property,
    object) and incoming (subject, property) statements. *)

val lq4 : Stores.t -> ids -> (int * int list) list
(** People related to the courses AssociateProfessor10 teaches, grouped
    by course: (course, sorted related subjects). *)

val lq5 : Stores.t -> ids -> (int * int list) list
(** People holding any degree from a university AssociateProfessor10 is
    related to, grouped by university: (university, sorted people). *)
