(** The seven Barton benchmark queries (§5.2.1), one execution strategy
    per competitor, following the paper's descriptions to the letter:
    COVP1 has only the [pso] indexing, COVP2 adds [pos], the Hexastore
    uses whichever of its six indices fits.

    All queries work on dictionary ids; {!ids} resolves the vocabulary
    once per store.  The [?restrict] argument reproduces the
    "28 pre-selected properties" assumption of [5]: when set, the
    property-unbound aggregation steps of BQ2/3/4/6 only consider those
    properties (on every competitor, as in the paper's [_28] variants).

    Every function returns fully sorted, canonical results so that the
    test suite can assert Hexastore ≡ COVP1 ≡ COVP2 answer equality. *)

type ids = {
  type_p : int;
  text : int;
  language : int;
  french : int;
  origin : int;
  dlc : int;
  records : int;
  point : int;
  end_point : int;
  encoding : int;
}

val resolve_ids : Dict.Term_dict.t -> ids option
(** [None] when the vocabulary is absent (e.g. an empty store). *)

val restriction_28 : Dict.Term_dict.t -> int list
(** Ids of {!Barton.properties_28} (those present in the dictionary). *)

val bq1 : Stores.t -> ids -> (int * int) list
(** Counts of each Type object: (type id, subject count), sorted. *)

val bq2 : ?restrict:int list -> Stores.t -> ids -> (int * int) list
(** Property frequencies over Type:Text subjects: (property, frequency),
    sorted by property. *)

val bq3 : ?restrict:int list -> Stores.t -> ids -> (int * (int * int) list) list
(** Per property, the objects appearing more than once among Type:Text
    subjects, with their counts. *)

val bq4 : ?restrict:int list -> Stores.t -> ids -> (int * (int * int) list) list
(** As {!bq3} over subjects that are Type:Text {e and} Language:French. *)

val bq5 : Stores.t -> ids -> (int * int) list
(** Inference: (subject, inferred type) for Origin:DLC subjects whose
    recorded resource has a non-Text type. *)

val bq6 : ?restrict:int list -> Stores.t -> ids -> (int * int) list
(** {!bq2}-style frequencies over subjects known or inferred
    ({!bq5}-style, selecting Text) to be Type:Text. *)

val bq7 : Stores.t -> ids -> (int * int list * int list) list
(** For subjects with Point "end": (subject, encodings, types). *)
