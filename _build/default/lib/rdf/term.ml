type literal = {
  value : string;
  lang : string option;
  datatype : string option;
}

type t =
  | Iri of string
  | Blank of string
  | Literal of literal

let xsd_integer = "http://www.w3.org/2001/XMLSchema#integer"

let iri s =
  if s = "" then invalid_arg "Term.iri: empty";
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' | '\n' | '\r' | '<' | '>' ->
          invalid_arg (Printf.sprintf "Term.iri: illegal character %C in %S" c s)
      | _ -> ())
    s;
  Iri s

let is_label_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.'

let blank s =
  if s = "" then invalid_arg "Term.blank: empty label";
  String.iter
    (fun c -> if not (is_label_char c) then invalid_arg "Term.blank: illegal label character")
    s;
  Blank s

let literal ?lang ?datatype value =
  match (lang, datatype) with
  | Some _, Some _ -> invalid_arg "Term.literal: both lang and datatype given"
  | _ -> Literal { value; lang; datatype }

let string_literal value = Literal { value; lang = None; datatype = None }
let typed_literal value ~datatype = Literal { value; lang = None; datatype = Some datatype }
let int_literal n = typed_literal (string_of_int n) ~datatype:xsd_integer

let is_iri = function Iri _ -> true | Blank _ | Literal _ -> false
let is_blank = function Blank _ -> true | Iri _ | Literal _ -> false
let is_literal = function Literal _ -> true | Iri _ | Blank _ -> false

let as_iri = function Iri s -> Some s | Blank _ | Literal _ -> None
let literal_value = function Literal l -> Some l.value | Iri _ | Blank _ -> None

let compare_option cmp a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some x, Some y -> cmp x y

let compare a b =
  match (a, b) with
  | Iri x, Iri y -> String.compare x y
  | Iri _, (Blank _ | Literal _) -> -1
  | Blank _, Iri _ -> 1
  | Blank x, Blank y -> String.compare x y
  | Blank _, Literal _ -> -1
  | Literal _, (Iri _ | Blank _) -> 1
  | Literal x, Literal y ->
      let c = String.compare x.value y.value in
      if c <> 0 then c
      else
        let c = compare_option String.compare x.lang y.lang in
        if c <> 0 then c else compare_option String.compare x.datatype y.datatype

let equal a b = compare a b = 0

let hash = Hashtbl.hash

(* N-Triples string escaping for literal values. *)
let escape_literal s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string = function
  | Iri s -> "<" ^ s ^ ">"
  | Blank l -> "_:" ^ l
  | Literal { value; lang = Some lang; _ } -> "\"" ^ escape_literal value ^ "\"@" ^ lang
  | Literal { value; datatype = Some dt; _ } -> "\"" ^ escape_literal value ^ "\"^^<" ^ dt ^ ">"
  | Literal { value; _ } -> "\"" ^ escape_literal value ^ "\""

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
