type table = (string, string) Hashtbl.t

let rdf_ns = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
let rdfs_ns = "http://www.w3.org/2000/01/rdf-schema#"
let xsd_ns = "http://www.w3.org/2001/XMLSchema#"
let ub_ns = "http://www.lehigh.edu/~zhp2/2004/0401/univ-bench.owl#"
let bt_ns = "http://simile.mit.edu/2006/01/ontologies/mods3#"
let rdf_type = rdf_ns ^ "type"

let ub local = ub_ns ^ local
let bt local = bt_ns ^ local
let xsd local = xsd_ns ^ local

let create () : table = Hashtbl.create 16

let add t ~prefix ~iri = Hashtbl.replace t prefix iri

let default () =
  let t = create () in
  add t ~prefix:"rdf" ~iri:rdf_ns;
  add t ~prefix:"rdfs" ~iri:rdfs_ns;
  add t ~prefix:"xsd" ~iri:xsd_ns;
  add t ~prefix:"ub" ~iri:ub_ns;
  add t ~prefix:"bt" ~iri:bt_ns;
  t

let lookup t prefix = Hashtbl.find_opt t prefix

let expand t curie =
  match String.index_opt curie ':' with
  | None -> invalid_arg (Printf.sprintf "Namespace.expand: no colon in %S" curie)
  | Some i ->
      let prefix = String.sub curie 0 i in
      let local = String.sub curie (i + 1) (String.length curie - i - 1) in
      (match lookup t prefix with
      | Some ns -> ns ^ local
      | None -> raise Not_found)

let shorten t iri =
  let best = ref None in
  Hashtbl.iter
    (fun prefix ns ->
      let n = String.length ns in
      if n <= String.length iri && String.sub iri 0 n = ns then
        match !best with
        | Some (_, best_ns) when String.length best_ns >= n -> ()
        | _ -> best := Some (prefix, ns))
    t;
  match !best with
  | None -> None
  | Some (prefix, ns) ->
      let local = String.sub iri (String.length ns) (String.length iri - String.length ns) in
      Some (prefix ^ ":" ^ local)

let prefixes t =
  Hashtbl.fold (fun prefix ns acc -> (prefix, ns) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
