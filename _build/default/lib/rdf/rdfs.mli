(** RDFS-lite forward-chaining inference.

    The paper's BQ5/BQ6 perform application-level inference, and §4.3
    frames path-following as a transitive-closure problem.  This module
    provides the standard schema-level counterpart: materialising the
    RDFS entailments of a triple set so they can be loaded into a store
    and queried like asserted data.

    Implemented rules (the RDFS core):

    - [rdfs5]  subPropertyOf is transitive;
    - [rdfs7]  [x p y], [p subPropertyOf q] ⊢ [x q y];
    - [rdfs11] subClassOf is transitive;
    - [rdfs9]  [x type A], [A subClassOf B] ⊢ [x type B];
    - [rdfs2]  [x p y], [p domain C] ⊢ [x type C];
    - [rdfs3]  [x p y], [p range C] ⊢ [y type C] (when [y] can be a
      subject, i.e. is not a literal).

    Computation is a fixpoint; cyclic schemas (A ⊑ B ⊑ A) terminate and
    simply make the classes mutually subsuming. *)

val subclass_of : string
val subproperty_of : string
val domain : string
val range : string
(** The rdfs: vocabulary IRIs used by the rules. *)

val entail : Triple.t list -> Triple.t list
(** All triples entailed but not asserted, sorted and de-duplicated.
    Schema triples (subClassOf/subPropertyOf closures) are included. *)

val closure : Triple.t list -> Triple.t list
(** Asserted ∪ entailed, sorted. *)

val entailment_count : Triple.t list -> int
(** [List.length (entail triples)]. *)
