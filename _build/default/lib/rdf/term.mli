(** RDF terms: IRIs, blank nodes and literals.

    The RDF data model (Manola & Miller, "RDF Primer") underlying the
    paper's triples 〈s, p, o〉.  Subjects are IRIs or blank nodes,
    predicates are IRIs, objects are any term.  Literals carry an optional
    language tag or an optional datatype IRI (mutually exclusive, per the
    RDF 1.0 abstract syntax the paper's data uses). *)

type literal = private {
  value : string;
  lang : string option;      (** language tag, lowercase, e.g. ["en"] *)
  datatype : string option;  (** datatype IRI *)
}

type t =
  | Iri of string
  | Blank of string  (** blank node label, without the [_:] prefix *)
  | Literal of literal

val iri : string -> t
(** @raise Invalid_argument on the empty string or embedded whitespace/[<>]. *)

val blank : string -> t
(** @raise Invalid_argument on an empty or non [A-Za-z0-9_.-] label. *)

val literal : ?lang:string -> ?datatype:string -> string -> t
(** @raise Invalid_argument when both [lang] and [datatype] are given. *)

val string_literal : string -> t
(** Plain literal with neither language nor datatype. *)

val typed_literal : string -> datatype:string -> t

val int_literal : int -> t
(** Literal typed [xsd:integer]. *)

val is_iri : t -> bool
val is_blank : t -> bool
val is_literal : t -> bool

val as_iri : t -> string option
(** The IRI string if the term is an IRI. *)

val literal_value : t -> string option

val compare : t -> t -> int
(** Total order: IRIs < blanks < literals, then lexicographic. *)

val equal : t -> t -> bool

val hash : t -> int

val to_string : t -> string
(** N-Triples surface syntax: [<iri>], [_:label], ["value"@lang],
    ["value"^^<dt>]. *)

val pp : Format.formatter -> t -> unit

val escape_literal : string -> string
(** N-Triples/Turtle escaping of a literal value's characters
    (backslash, double quote, newline, carriage return, tab). *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
