(** N-Triples parsing and serialization.

    The paper's pipeline converts the Barton RDF/XML dump "to triples"; the
    interchange format this repository standardises on is W3C N-Triples
    (one triple per line).  Since OCaml RDF parsing libraries are sparse,
    this is a from-scratch implementation: full string escape handling
    (tab, backspace, newline, carriage return, form feed, quote, backslash,
    [\uXXXX], [\UXXXXXXXX]), language tags, datatype IRIs,
    blank nodes and comment/blank-line skipping. *)

exception Parse_error of int * string
(** [Parse_error (line, message)]; [line] is 1-based.  Lines are counted
    across [parse_string]/channel input; [parse_line] reports line 0. *)

val parse_line : ?line:int -> string -> Triple.t option
(** Parse one line.  [None] for blank lines and [#] comments.
    @raise Parse_error on malformed input. *)

val parse_string : string -> Triple.t list
(** Parse a whole document (newline-separated statements). *)

val parse_seq : string Seq.t -> Triple.t Seq.t
(** Lazily parse a sequence of lines; errors surface when forced. *)

val of_channel : in_channel -> Triple.t list

val load_file : string -> Triple.t list

val to_string : Triple.t -> string
(** One N-Triples statement without trailing newline. *)

val print_string : Triple.t list -> string
(** Document text, one statement per line, trailing newline. *)

val to_channel : out_channel -> Triple.t Seq.t -> int
(** Writes statements; returns the number written. *)

val save_file : string -> Triple.t list -> unit

val parse_term : string -> Term.t
(** Parse a single term in N-Triples spelling ([<iri>], [_:label],
    ["literal"@lang], ["literal"^^<dt>]) — the inverse of
    {!Term.to_string}.  @raise Parse_error on malformed input. *)

val unescape : string -> string
(** Resolve N-Triples string escapes.
    @raise Parse_error (line 0) on malformed escapes. *)

val escape : string -> string
(** Inverse of {!unescape} for the characters N-Triples requires. *)
