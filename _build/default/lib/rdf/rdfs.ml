let subclass_of = Namespace.rdfs_ns ^ "subClassOf"
let subproperty_of = Namespace.rdfs_ns ^ "subPropertyOf"
let domain = Namespace.rdfs_ns ^ "domain"
let range = Namespace.rdfs_ns ^ "range"

module Tmap = Term.Map

(* Transitive closure of a Term -> Term.Set.t successor map, by repeated
   propagation until fixpoint (schemas are small; simplicity over
   asymptotics, as in §4.3's observation that scalable general transitive
   closure is its own research problem). *)
let transitive_closure successors =
  let get m k = match Tmap.find_opt k m with Some s -> s | None -> Term.Set.empty in
  let rec fix m =
    let changed = ref false in
    let m' =
      Tmap.mapi
        (fun _ succ ->
          let bigger =
            Term.Set.fold (fun next acc -> Term.Set.union acc (get m next)) succ succ
          in
          if Term.Set.cardinal bigger > Term.Set.cardinal succ then changed := true;
          bigger)
        m
    in
    if !changed then fix m' else m'
  in
  fix successors

let edge_map pred triples =
  List.fold_left
    (fun m (t : Triple.t) ->
      if Term.equal t.p pred then
        let existing = match Tmap.find_opt t.s m with Some s -> s | None -> Term.Set.empty in
        Tmap.add t.s (Term.Set.add t.o existing) m
      else m)
    Tmap.empty triples

let closure triples =
  let rdf_type = Term.iri Namespace.rdf_type in
  let t_subclass = Term.iri subclass_of in
  let t_subprop = Term.iri subproperty_of in
  let subclasses = transitive_closure (edge_map t_subclass triples) in
  let subprops = transitive_closure (edge_map t_subprop triples) in
  let domains = edge_map (Term.iri domain) triples in
  let ranges = edge_map (Term.iri range) triples in
  let get m k = match Tmap.find_opt k m with Some s -> s | None -> Term.Set.empty in
  let out = ref Triple.Set.empty in
  let emit s p o =
    (* Skip structurally invalid conclusions (literal subjects). *)
    if not (Term.is_literal s) then out := Triple.Set.add (Triple.make s p o) !out
  in
  List.iter (fun t -> out := Triple.Set.add t !out) triples;
  (* Schema closures (rdfs5, rdfs11). *)
  Tmap.iter (fun c supers -> Term.Set.iter (fun d -> emit c t_subclass d) supers) subclasses;
  Tmap.iter (fun p supers -> Term.Set.iter (fun q -> emit p t_subprop q) supers) subprops;
  (* Instance rules: one pass over the asserted triples is sufficient
     because the schema maps are already transitively closed and the
     derived statements only use closed properties (type / super
     properties), whose own domains/ranges we fold in below. *)
  let apply_property_rules (t : Triple.t) =
    (* rdfs7 with closed subPropertyOf. *)
    let supers = get subprops t.p in
    Term.Set.iter (fun q -> emit t.s q t.o) supers;
    (* rdfs2/rdfs3 for the property and all its super properties. *)
    let all_props = Term.Set.add t.p supers in
    Term.Set.iter
      (fun p ->
        Term.Set.iter (fun c -> emit t.s rdf_type c) (get domains p);
        if not (Term.is_literal t.o) then
          Term.Set.iter (fun c -> emit t.o rdf_type c) (get ranges p))
      all_props
  in
  List.iter apply_property_rules triples;
  (* rdfs9 with closed subClassOf, applied to asserted and just-derived
     type statements alike: collect all type statements first. *)
  let typed =
    Triple.Set.fold
      (fun (t : Triple.t) acc -> if Term.equal t.p rdf_type then (t.s, t.o) :: acc else acc)
      !out []
  in
  List.iter
    (fun (x, klass) -> Term.Set.iter (fun super -> emit x rdf_type super) (get subclasses klass))
    typed;
  Triple.Set.elements !out

let entail triples =
  let asserted = Triple.Set.of_list triples in
  List.filter (fun t -> not (Triple.Set.mem t asserted)) (closure triples)

let entailment_count triples = List.length (entail triples)
