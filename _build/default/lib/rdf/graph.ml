type t = { mutable set : Triple.Set.t }

type pattern = {
  s : Term.t option;
  p : Term.t option;
  o : Term.t option;
}

let wildcard = { s = None; p = None; o = None }

let pattern ?s ?p ?o () = { s; p; o }

let create () = { set = Triple.Set.empty }

let add g t =
  if Triple.Set.mem t g.set then false
  else begin
    g.set <- Triple.Set.add t g.set;
    true
  end

let add_list g ts = List.iter (fun t -> ignore (add g t)) ts

let of_triples ts =
  let g = create () in
  add_list g ts;
  g

let remove g t =
  if Triple.Set.mem t g.set then begin
    g.set <- Triple.Set.remove t g.set;
    true
  end
  else false

let mem g t = Triple.Set.mem t g.set

let size g = Triple.Set.cardinal g.set

let matches pat (t : Triple.t) =
  let ok part = function None -> true | Some term -> Term.equal part term in
  ok t.s pat.s && ok t.p pat.p && ok t.o pat.o

let find g pat = Triple.Set.elements (Triple.Set.filter (matches pat) g.set)

let count g pat = Triple.Set.fold (fun t n -> if matches pat t then n + 1 else n) g.set 0

let fold f g acc = Triple.Set.fold f g.set acc

let iter f g = Triple.Set.iter f g.set

let to_list g = Triple.Set.elements g.set

let collect f g = fold (fun t acc -> Term.Set.add (f t) acc) g Term.Set.empty

let subjects g = collect Triple.subject g
let predicates g = collect Triple.predicate g
let objects g = collect Triple.object_ g

let union a b = { set = Triple.Set.union a.set b.set }

let equal a b = Triple.Set.equal a.set b.set

let pp ppf g =
  Format.pp_print_list ~pp_sep:Format.pp_print_newline Triple.pp ppf (to_list g)
