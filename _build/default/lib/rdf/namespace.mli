(** IRI namespaces and CURIE (prefix:local) handling.

    The dictionary-encoded stores never see prefixes — this module serves
    the parsers, serializers, generators and the CLI, where spelling out
    full IRIs would be unreadable. *)

type table
(** A mutable prefix → namespace-IRI table. *)

val create : unit -> table
(** An empty table. *)

val default : unit -> table
(** A table preloaded with the vocabularies this repository uses:
    [rdf], [rdfs], [xsd], [ub] (LUBM benchmark ontology) and [bt]
    (the Barton-like catalog vocabulary). *)

val add : table -> prefix:string -> iri:string -> unit
(** [add t ~prefix ~iri] binds [prefix]; rebinding replaces silently
    (Turtle semantics). *)

val lookup : table -> string -> string option
(** Namespace IRI bound to a prefix, if any. *)

val expand : table -> string -> string
(** [expand t "ub:Course"] is the full IRI.
    @raise Not_found when the prefix is unbound.
    @raise Invalid_argument when the string has no colon. *)

val shorten : table -> string -> string option
(** [shorten t iri] is [Some "prefix:local"] for the longest matching
    namespace, or [None]. *)

val prefixes : table -> (string * string) list
(** All bindings, sorted by prefix. *)

(** Frequently used full IRIs. *)

val rdf_type : string
val rdf_ns : string
val rdfs_ns : string
val xsd_ns : string
val ub_ns : string
(** LUBM ontology namespace ("univ-bench"). *)

val bt_ns : string
(** Barton-like catalog namespace used by the synthetic generator. *)

val ub : string -> string
(** [ub "Course"] is the full LUBM-ontology IRI. *)

val bt : string -> string
(** [bt "records"] is the full Barton-vocabulary IRI. *)

val xsd : string -> string
