exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

(* --- tokenizer ------------------------------------------------------ *)

type token =
  | Iriref of string
  | Pname of string         (* "prefix:local", colon included *)
  | Bnode of string
  | Str of string            (* unescaped string body *)
  | Langtag of string
  | Hathat
  | Integer of string
  | Decimal of string
  | Boolean of bool
  | Kw_a
  | Kw_prefix               (* @prefix or PREFIX *)
  | Kw_base
  | Dot
  | Semi
  | Comma

type lexed = { tok : token; tline : int }

let is_pname_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' -> true
  | _ -> false

let tokenize text =
  let n = String.length text in
  let line = ref 1 in
  let toks = ref [] in
  let push tok = toks := { tok; tline = !line } :: !toks in
  let i = ref 0 in
  let peek k = if !i + k < n then Some text.[!i + k] else None in
  while !i < n do
    (match text.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '#' ->
        while !i < n && text.[!i] <> '\n' do
          incr i
        done
    | '<' ->
        let start = !i + 1 in
        let j = ref start in
        while !j < n && text.[!j] <> '>' && text.[!j] <> '\n' do
          incr j
        done;
        if !j >= n || text.[!j] <> '>' then fail !line "unterminated IRI";
        push (Iriref (String.sub text start (!j - start)));
        i := !j + 1
    | '"' ->
        let buf = Buffer.create 16 in
        let j = ref (!i + 1) in
        let fin = ref false in
        while not !fin do
          if !j >= n then fail !line "unterminated string";
          (match text.[!j] with
          | '"' ->
              fin := true;
              incr j
          | '\\' ->
              if !j + 1 >= n then fail !line "dangling backslash";
              Buffer.add_char buf '\\';
              Buffer.add_char buf text.[!j + 1];
              j := !j + 2
          | '\n' -> fail !line "newline in single-quoted string"
          | c ->
              Buffer.add_char buf c;
              incr j)
        done;
        (try push (Str (Ntriples.unescape (Buffer.contents buf)))
         with Ntriples.Parse_error (_, m) -> fail !line "%s" m);
        i := !j
    | '@' ->
        let start = !i + 1 in
        let j = ref start in
        while
          !j < n
          && match text.[!j] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> true | _ -> false
        do
          incr j
        done;
        let word = String.sub text start (!j - start) in
        (match String.lowercase_ascii word with
        | "prefix" -> push Kw_prefix
        | "base" -> push Kw_base
        | "" -> fail !line "empty @ directive"
        | _ -> push (Langtag (String.lowercase_ascii word)));
        i := !j
    | '^' when peek 1 = Some '^' ->
        push Hathat;
        i := !i + 2
    | '.' when (match peek 1 with Some ('0' .. '9') -> false | _ -> true) ->
        push Dot;
        incr i
    | ';' ->
        push Semi;
        incr i
    | ',' ->
        push Comma;
        incr i
    | '_' when peek 1 = Some ':' ->
        let start = !i + 2 in
        let j = ref start in
        while
          !j < n
          &&
          match text.[!j] with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
          | _ -> false
        do
          incr j
        done;
        if !j = start then fail !line "empty blank node label";
        push (Bnode (String.sub text start (!j - start)));
        i := !j
    | '+' | '-' | '0' .. '9' | '.' ->
        let start = !i in
        let j = ref !i in
        if text.[!j] = '+' || text.[!j] = '-' then incr j;
        let digits = ref 0 in
        while !j < n && text.[!j] >= '0' && text.[!j] <= '9' do
          incr j;
          incr digits
        done;
        let is_decimal =
          !j < n && text.[!j] = '.' && !j + 1 < n && text.[!j + 1] >= '0' && text.[!j + 1] <= '9'
        in
        if is_decimal then begin
          incr j;
          while !j < n && text.[!j] >= '0' && text.[!j] <= '9' do
            incr j;
            incr digits
          done;
          if !digits = 0 then fail !line "malformed number";
          push (Decimal (String.sub text start (!j - start)))
        end
        else begin
          if !digits = 0 then fail !line "malformed number";
          push (Integer (String.sub text start (!j - start)))
        end;
        i := !j
    | 'a' when (match peek 1 with Some c when is_pname_char c -> false | _ -> true) ->
        push Kw_a;
        incr i
    | c when is_pname_char c || c = ':' ->
        let start = !i in
        let j = ref !i in
        while !j < n && is_pname_char text.[!j] do
          incr j
        done;
        (* A pname must not end in '.': the dot terminates the statement. *)
        while !j > start && text.[!j - 1] = '.' do
          decr j
        done;
        let word = String.sub text start (!j - start) in
        (match word with
        | "true" -> push (Boolean true)
        | "false" -> push (Boolean false)
        | "PREFIX" | "prefix" when not (String.contains word ':') -> push Kw_prefix
        | "BASE" | "base" when not (String.contains word ':') -> push Kw_base
        | _ when String.contains word ':' -> push (Pname word)
        | _ -> fail !line "bare word %S (prefixed name needs a colon)" word);
        i := !j
    | c -> fail !line "unexpected character %C" c)
  done;
  List.rev !toks

(* --- parser --------------------------------------------------------- *)

type state = {
  mutable toks : lexed list;
  mutable last_line : int;  (* line of the last consumed token, for EOF errors *)
  ns : Namespace.table;
  mutable base : string;
  out : Triple.t list ref;
}

let cur_line st = match st.toks with { tline; _ } :: _ -> tline | [] -> st.last_line

let next st =
  match st.toks with
  | [] -> fail st.last_line "unexpected end of input"
  | t :: rest ->
      st.toks <- rest;
      st.last_line <- t.tline;
      t

let peek_tok st = match st.toks with [] -> None | t :: _ -> Some t.tok

let resolve_iri st raw =
  (* Relative IRI resolution limited to simple concatenation with @base,
     which is all the test corpus needs. *)
  let has_scheme =
    match String.index_opt raw ':' with
    | Some i ->
        i > 0
        && String.for_all
             (fun c ->
               match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '+' | '-' | '.' -> true | _ -> false)
             (String.sub raw 0 i)
    | None -> false
  in
  if has_scheme || st.base = "" then raw else st.base ^ raw

let expand_pname st line pname =
  match Namespace.expand st.ns pname with
  | iri -> iri
  | exception Not_found -> fail line "unbound prefix in %S" pname
  | exception Invalid_argument _ -> fail line "malformed prefixed name %S" pname

let term_of_iriref st line raw =
  try Term.iri (resolve_iri st raw) with Invalid_argument msg -> fail line "%s" msg

let parse_verb st =
  let { tok; tline } = next st in
  match tok with
  | Kw_a -> Term.iri Namespace.rdf_type
  | Iriref raw -> term_of_iriref st tline raw
  | Pname p -> Term.iri (expand_pname st tline p)
  | _ -> fail tline "expected predicate"

let parse_object st =
  let { tok; tline } = next st in
  match tok with
  | Iriref raw -> term_of_iriref st tline raw
  | Pname p -> Term.iri (expand_pname st tline p)
  | Bnode b -> Term.blank b
  | Integer s -> Term.typed_literal s ~datatype:(Namespace.xsd "integer")
  | Decimal s -> Term.typed_literal s ~datatype:(Namespace.xsd "decimal")
  | Boolean b -> Term.typed_literal (string_of_bool b) ~datatype:(Namespace.xsd "boolean")
  | Str value -> (
      match peek_tok st with
      | Some (Langtag lang) ->
          ignore (next st);
          Term.literal ~lang value
      | Some Hathat -> (
          ignore (next st);
          let { tok; tline } = next st in
          match tok with
          | Iriref raw -> Term.literal ~datatype:(resolve_iri st raw) value
          | Pname p -> Term.literal ~datatype:(expand_pname st tline p) value
          | _ -> fail tline "expected datatype IRI after ^^")
      | _ -> Term.string_literal value)
  | _ -> fail tline "expected object"

let parse_subject st =
  let { tok; tline } = next st in
  match tok with
  | Iriref raw -> term_of_iriref st tline raw
  | Pname p -> Term.iri (expand_pname st tline p)
  | Bnode b -> Term.blank b
  | _ -> fail tline "expected subject"

let rec parse_predicate_object_list st subject =
  let p = parse_verb st in
  let rec objects () =
    let o = parse_object st in
    let line = cur_line st in
    (try st.out := Triple.make subject p o :: !(st.out)
     with Invalid_argument msg -> fail line "%s" msg);
    match peek_tok st with
    | Some Comma ->
        ignore (next st);
        objects ()
    | _ -> ()
  in
  objects ();
  match peek_tok st with
  | Some Semi -> (
      ignore (next st);
      (* allow trailing ';' before '.' *)
      match peek_tok st with
      | Some Dot | None -> ()
      | Some _ -> parse_predicate_object_list st subject)
  | _ -> ()

let parse_directive st kw =
  match kw with
  | Kw_prefix -> (
      let { tok; tline } = next st in
      match tok with
      | Pname p when String.length p > 0 && p.[String.length p - 1] = ':' -> (
          let prefix = String.sub p 0 (String.length p - 1) in
          let { tok; tline } = next st in
          match tok with
          | Iriref iri ->
              Namespace.add st.ns ~prefix ~iri:(resolve_iri st iri);
              (match peek_tok st with
              | Some Dot -> ignore (next st)
              | _ -> () (* SPARQL-style PREFIX has no dot *))
          | _ -> fail tline "expected namespace IRI in @prefix")
      | _ -> fail tline "expected \"prefix:\" in @prefix")
  | Kw_base -> (
      let { tok; tline } = next st in
      match tok with
      | Iriref iri ->
          st.base <- iri;
          (match peek_tok st with Some Dot -> ignore (next st) | _ -> ())
      | _ -> fail tline "expected IRI in @base")
  | _ -> assert false

let parse_string ?namespaces text =
  let ns = match namespaces with Some t -> t | None -> Namespace.create () in
  let st = { toks = tokenize text; last_line = 1; ns; base = ""; out = ref [] } in
  let rec loop () =
    match peek_tok st with
    | None -> ()
    | Some (Kw_prefix | Kw_base) ->
        let { tok; _ } = next st in
        parse_directive st tok;
        loop ()
    | Some _ ->
        let s = parse_subject st in
        parse_predicate_object_list st s;
        let { tok; tline } = next st in
        (match tok with Dot -> () | _ -> fail tline "expected '.' at end of statement");
        loop ()
  in
  loop ();
  List.rev !(st.out)

let load_file ?namespaces path =
  let ic = open_in path in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse_string ?namespaces text

(* --- serializer ----------------------------------------------------- *)

let term_str ns t =
  match t with
  | Term.Iri iri -> (
      match Namespace.shorten ns iri with
      | Some curie when not (String.contains curie '/') -> curie
      | _ -> "<" ^ iri ^ ">")
  | _ -> Term.to_string t

let to_string ?namespaces triples =
  let ns = match namespaces with Some t -> t | None -> Namespace.default () in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (prefix, iri) -> Buffer.add_string buf (Printf.sprintf "@prefix %s: <%s> .\n" prefix iri))
    (Namespace.prefixes ns);
  if Namespace.prefixes ns <> [] then Buffer.add_char buf '\n';
  let sorted = Array.of_list (List.sort_uniq Triple.compare triples) in
  (* Iterative grouping (subject then predicate): recursion here would be
     O(subjects) deep and overflow on large exports. *)
  let n = Array.length sorted in
  let emit_pred p =
    let pred = if Term.equal p (Term.iri Namespace.rdf_type) then "a" else term_str ns p in
    Buffer.add_string buf pred;
    Buffer.add_char buf ' '
  in
  let i = ref 0 in
  while !i < n do
    let t = sorted.(!i) in
    Buffer.add_string buf (term_str ns t.Triple.s);
    Buffer.add_char buf ' ';
    let subject = t.Triple.s in
    let first_pred = ref true in
    while !i < n && Term.equal sorted.(!i).Triple.s subject do
      let p = sorted.(!i).Triple.p in
      if not !first_pred then Buffer.add_string buf " ;\n    ";
      first_pred := false;
      emit_pred p;
      let first_obj = ref true in
      while
        !i < n && Term.equal sorted.(!i).Triple.s subject && Term.equal sorted.(!i).Triple.p p
      do
        if not !first_obj then Buffer.add_string buf ", ";
        first_obj := false;
        Buffer.add_string buf (term_str ns sorted.(!i).Triple.o);
        incr i
      done
    done;
    Buffer.add_string buf " .\n"
  done;
  Buffer.contents buf
