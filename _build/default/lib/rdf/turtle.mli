(** A Turtle-subset parser.

    Covers the Turtle features the examples, tests and CLI need:

    - [@prefix] / [@base] directives (and SPARQL-style [PREFIX]/[BASE]);
    - IRIs in angle brackets and prefixed names ([ub:Course]);
    - [a] as [rdf:type];
    - predicate lists ([;]) and object lists ([,]);
    - blank node labels ([_:b0]);
    - string literals (["…"] with [@lang] or [^^datatype]), integers,
      decimals and booleans (typed with the matching XSD datatype);
    - [#] comments.

    Not covered (documented limitation; the workloads never produce them):
    collections [( … )], anonymous blank nodes [[ … ]], triple-quoted
    strings. *)

exception Parse_error of int * string
(** Line-numbered syntax error (1-based). *)

val parse_string : ?namespaces:Namespace.table -> string -> Triple.t list
(** Parse a Turtle document.  When [namespaces] is given, directives are
    recorded into it (and its pre-existing bindings are usable in the
    document); otherwise a fresh empty table is used. *)

val load_file : ?namespaces:Namespace.table -> string -> Triple.t list

val to_string : ?namespaces:Namespace.table -> Triple.t list -> string
(** Serialize with prefix shortening and subject/predicate grouping
    ([;] / [,]).  Defaults to {!Namespace.default} prefixes. *)
