type t = {
  s : Term.t;
  p : Term.t;
  o : Term.t;
}

let make s p o =
  (match s with
  | Term.Literal _ -> invalid_arg "Triple.make: literal subject"
  | Term.Iri _ | Term.Blank _ -> ());
  (match p with
  | Term.Iri _ -> ()
  | Term.Blank _ | Term.Literal _ -> invalid_arg "Triple.make: predicate must be an IRI");
  { s; p; o }

let subject t = t.s
let predicate t = t.p
let object_ t = t.o

let compare a b =
  let c = Term.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Term.compare a.p b.p in
    if c <> 0 then c else Term.compare a.o b.o

let equal a b = compare a b = 0

let to_string t =
  Printf.sprintf "%s %s %s ." (Term.to_string t.s) (Term.to_string t.p) (Term.to_string t.o)

let pp ppf t = Format.pp_print_string ppf (to_string t)

module Set = Set.Make (struct
  type nonrec t = t

  let compare = compare
end)
