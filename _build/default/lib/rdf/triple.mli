(** RDF triples 〈s, p, o〉 — the statements of the paper's data model. *)

type t = {
  s : Term.t;  (** subject: IRI or blank node *)
  p : Term.t;  (** predicate: IRI *)
  o : Term.t;  (** object: any term *)
}

val make : Term.t -> Term.t -> Term.t -> t
(** [make s p o] builds a triple.
    @raise Invalid_argument when [s] is a literal or [p] is not an IRI. *)

val subject : t -> Term.t
val predicate : t -> Term.t
val object_ : t -> Term.t

val compare : t -> t -> int
(** Lexicographic (s, p, o) order under {!Term.compare}. *)

val equal : t -> t -> bool

val to_string : t -> string
(** N-Triples statement, terminated by [" ."]. *)

val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
