lib/rdf/rdfs.ml: List Namespace Term Triple
