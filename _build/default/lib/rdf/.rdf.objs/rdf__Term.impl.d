lib/rdf/term.ml: Buffer Format Hashtbl Map Printf Set String
