lib/rdf/turtle.ml: Array Buffer Fun List Namespace Ntriples Printf String Term Triple
