lib/rdf/term.mli: Format Map Set
