lib/rdf/rdfs.mli: Triple
