lib/rdf/ntriples.mli: Seq Term Triple
