lib/rdf/ntriples.ml: Buffer Char Fun List Printf Seq String Term Triple Uchar
