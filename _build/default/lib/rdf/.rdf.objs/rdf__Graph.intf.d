lib/rdf/graph.mli: Format Term Triple
