lib/rdf/namespace.mli:
