lib/rdf/graph.ml: Format List Term Triple
