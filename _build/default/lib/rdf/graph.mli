(** A naive in-memory RDF graph.

    A mutable set of triples with pattern scanning.  It is deliberately
    simple — O(n) pattern matching over a [Triple.Set] — because its role
    is to be the *reference model* that the Hexastore and the COVP
    baselines are property-tested against, and a convenience container for
    parsers and examples.  It is not an index. *)

type t

(** A triple pattern: [None] positions are wildcards. *)
type pattern = {
  s : Term.t option;
  p : Term.t option;
  o : Term.t option;
}

val wildcard : pattern
(** Matches every triple. *)

val pattern : ?s:Term.t -> ?p:Term.t -> ?o:Term.t -> unit -> pattern

val create : unit -> t

val of_triples : Triple.t list -> t

val add : t -> Triple.t -> bool
(** [false] when the triple was already present. *)

val add_list : t -> Triple.t list -> unit

val remove : t -> Triple.t -> bool

val mem : t -> Triple.t -> bool

val size : t -> int

val matches : pattern -> Triple.t -> bool

val find : t -> pattern -> Triple.t list
(** All matching triples in (s, p, o) order. *)

val count : t -> pattern -> int

val fold : (Triple.t -> 'a -> 'a) -> t -> 'a -> 'a

val iter : (Triple.t -> unit) -> t -> unit

val to_list : t -> Triple.t list
(** Sorted (s, p, o). *)

val subjects : t -> Term.Set.t
val predicates : t -> Term.Set.t
val objects : t -> Term.Set.t

val union : t -> t -> t
(** Fresh graph with the triples of both. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
