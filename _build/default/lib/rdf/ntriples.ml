exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let escape = Term.escape_literal

let hex_value line c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> fail line "invalid hex digit %C" c

let unescape_at line s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec loop i =
    if i >= n then Buffer.contents buf
    else
      match s.[i] with
      | '\\' ->
          if i + 1 >= n then fail line "dangling backslash";
          (match s.[i + 1] with
          | 't' ->
              Buffer.add_char buf '\t';
              loop (i + 2)
          | 'b' ->
              Buffer.add_char buf '\b';
              loop (i + 2)
          | 'n' ->
              Buffer.add_char buf '\n';
              loop (i + 2)
          | 'r' ->
              Buffer.add_char buf '\r';
              loop (i + 2)
          | 'f' ->
              Buffer.add_char buf '\012';
              loop (i + 2)
          | '"' ->
              Buffer.add_char buf '"';
              loop (i + 2)
          | '\'' ->
              Buffer.add_char buf '\'';
              loop (i + 2)
          | '\\' ->
              Buffer.add_char buf '\\';
              loop (i + 2)
          | 'u' ->
              if i + 5 >= n then fail line "truncated \\u escape";
              let v = ref 0 in
              for k = i + 2 to i + 5 do
                v := (!v * 16) + hex_value line s.[k]
              done;
              add_uchar !v;
              loop (i + 6)
          | 'U' ->
              if i + 9 >= n then fail line "truncated \\U escape";
              let v = ref 0 in
              for k = i + 2 to i + 9 do
                v := (!v * 16) + hex_value line s.[k]
              done;
              add_uchar !v;
              loop (i + 10)
          | c -> fail line "unknown escape \\%c" c)
      | c ->
          Buffer.add_char buf c;
          loop (i + 1)
  and add_uchar v =
    if not (Uchar.is_valid v) then fail line "invalid unicode code point U+%04X" v;
    Buffer.add_utf_8_uchar buf (Uchar.of_int v)
  in
  loop 0

let unescape s = unescape_at 0 s

(* --- scanner ------------------------------------------------------- *)

type cursor = {
  text : string;
  mutable pos : int;
  line : int;
}

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.text && (c.text.[c.pos] = ' ' || c.text.[c.pos] = '\t')
  do
    c.pos <- c.pos + 1
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> c.pos <- c.pos + 1
  | Some x -> fail c.line "expected %C, found %C at column %d" ch x c.pos
  | None -> fail c.line "expected %C, found end of line" ch

let scan_iriref c =
  expect c '<';
  let start = c.pos in
  let n = String.length c.text in
  while c.pos < n && c.text.[c.pos] <> '>' do
    c.pos <- c.pos + 1
  done;
  if c.pos >= n then fail c.line "unterminated IRI";
  let raw = String.sub c.text start (c.pos - start) in
  c.pos <- c.pos + 1;
  (* IRIs may use \u escapes too. *)
  let iri = if String.contains raw '\\' then unescape_at c.line raw else raw in
  try Term.iri iri with Invalid_argument msg -> fail c.line "%s" msg

let scan_blank c =
  expect c '_';
  expect c ':';
  let start = c.pos in
  let n = String.length c.text in
  while
    c.pos < n
    &&
    match c.text.[c.pos] with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' -> true
    | _ -> false
  do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c.line "empty blank node label";
  try Term.blank (String.sub c.text start (c.pos - start))
  with Invalid_argument msg -> fail c.line "%s" msg

let scan_langtag c =
  expect c '@';
  let start = c.pos in
  let n = String.length c.text in
  while
    c.pos < n
    &&
    match c.text.[c.pos] with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> true | _ -> false
  do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then fail c.line "empty language tag";
  String.lowercase_ascii (String.sub c.text start (c.pos - start))

let scan_literal c =
  expect c '"';
  let buf = Buffer.create 16 in
  let n = String.length c.text in
  let rec scan () =
    if c.pos >= n then fail c.line "unterminated string literal"
    else
      match c.text.[c.pos] with
      | '"' -> c.pos <- c.pos + 1
      | '\\' ->
          if c.pos + 1 >= n then fail c.line "dangling backslash";
          Buffer.add_char buf '\\';
          Buffer.add_char buf c.text.[c.pos + 1];
          c.pos <- c.pos + 2;
          scan ()
      | ch ->
          Buffer.add_char buf ch;
          c.pos <- c.pos + 1;
          scan ()
  in
  scan ();
  let value = unescape_at c.line (Buffer.contents buf) in
  match peek c with
  | Some '@' ->
      let lang = scan_langtag c in
      Term.literal ~lang value
  | Some '^' ->
      expect c '^';
      expect c '^';
      (match scan_iriref c with
      | Term.Iri dt -> Term.literal ~datatype:dt value
      | _ -> assert false)
  | _ -> Term.string_literal value

let scan_subject c =
  match peek c with
  | Some '<' -> scan_iriref c
  | Some '_' -> scan_blank c
  | Some ch -> fail c.line "unexpected %C at start of subject" ch
  | None -> fail c.line "missing subject"

let scan_object c =
  match peek c with
  | Some '<' -> scan_iriref c
  | Some '_' -> scan_blank c
  | Some '"' -> scan_literal c
  | Some ch -> fail c.line "unexpected %C at start of object" ch
  | None -> fail c.line "missing object"

let parse_term text =
  let c = { text; pos = 0; line = 0 } in
  skip_ws c;
  let term = scan_object c in
  skip_ws c;
  (match peek c with
  | None -> ()
  | Some ch -> fail 0 "trailing garbage %C after term" ch);
  term

let parse_line ?(line = 0) text =
  let c = { text; pos = 0; line } in
  skip_ws c;
  match peek c with
  | None -> None
  | Some '#' -> None
  | Some _ ->
      let s = scan_subject c in
      skip_ws c;
      let p =
        match peek c with
        | Some '<' -> scan_iriref c
        | Some ch -> fail line "predicate must be an IRI, found %C" ch
        | None -> fail line "missing predicate"
      in
      skip_ws c;
      let o = scan_object c in
      skip_ws c;
      expect c '.';
      skip_ws c;
      (match peek c with
      | None -> ()
      | Some '#' -> ()
      | Some ch -> fail line "trailing garbage %C after statement" ch);
      Some (Triple.make s p o)

let lines_of_string text = String.split_on_char '\n' text |> List.to_seq

let parse_seq lines =
  let numbered = Seq.mapi (fun i l -> (i + 1, l)) lines in
  Seq.filter_map (fun (line, text) -> parse_line ~line text) numbered

let parse_string text = List.of_seq (parse_seq (lines_of_string text))

let seq_of_channel ic =
  let rec next () =
    match input_line ic with
    | line -> Seq.Cons (line, next)
    | exception End_of_file -> Seq.Nil
  in
  next

let of_channel ic = List.of_seq (parse_seq (seq_of_channel ic))

let load_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> of_channel ic)

let to_string t = Triple.to_string t

let print_string triples =
  let buf = Buffer.create 1024 in
  List.iter
    (fun t ->
      Buffer.add_string buf (to_string t);
      Buffer.add_char buf '\n')
    triples;
  Buffer.contents buf

let to_channel oc triples =
  let count = ref 0 in
  Seq.iter
    (fun t ->
      output_string oc (to_string t);
      output_char oc '\n';
      incr count)
    triples;
  !count

let save_file path triples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> ignore (to_channel oc (List.to_seq triples)))
