bin/datagen.mli:
