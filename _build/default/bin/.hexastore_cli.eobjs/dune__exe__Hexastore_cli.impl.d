bin/hexastore_cli.ml: Arg Cmd Cmdliner Dict Filename Format Fun Hexa List Printf Query Rdf String Term
