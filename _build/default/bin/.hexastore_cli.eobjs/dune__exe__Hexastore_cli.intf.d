bin/hexastore_cli.mli:
