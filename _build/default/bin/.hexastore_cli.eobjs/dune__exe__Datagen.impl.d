bin/datagen.ml: Arg Cmd Cmdliner Format Fun Rdf Term Workloads
