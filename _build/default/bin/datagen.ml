(* datagen — emit the benchmark data sets as N-Triples.

   Generates either the LUBM-like academic data set or the Barton-like
   library catalog (see DESIGN.md for the substitution rationale) so the
   benchmark inputs can be inspected, version-pinned, or loaded into
   other triple stores. *)

open Cmdliner

let write_seq out triples =
  let emit oc = Rdf.Ntriples.to_channel oc triples in
  match out with
  | None -> emit stdout
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> emit oc)

let out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (default: stdout).")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"PRNG seed.")

let lubm_cmd =
  let unis = Arg.(value & opt int 10 & info [ "universities" ] ~docv:"N") in
  let depts = Arg.(value & opt int 4 & info [ "departments" ] ~docv:"N" ~doc:"Departments per university.") in
  let run out seed universities departments_per_university =
    let cfg = Workloads.Lubm.config ~universities ~departments_per_university ~seed () in
    let n = write_seq out (Workloads.Lubm.generate_seq cfg) in
    Format.eprintf "wrote %d LUBM-like triples@." n
  in
  Cmd.v
    (Cmd.info "lubm" ~doc:"Generate the LUBM-like academic data set (§5.1.2).")
    Term.(const run $ out_arg $ seed_arg $ unis $ depts)

let barton_cmd =
  let subjects = Arg.(value & opt int 50_000 & info [ "subjects" ] ~docv:"N" ~doc:"Catalog records.") in
  let run out seed subjects =
    let cfg = Workloads.Barton.config ~subjects ~seed () in
    let n = write_seq out (Workloads.Barton.generate_seq cfg) in
    Format.eprintf "wrote %d Barton-like triples@." n
  in
  Cmd.v
    (Cmd.info "barton" ~doc:"Generate the Barton-like library catalog data set (§5.1.1).")
    Term.(const run $ out_arg $ seed_arg $ subjects)

let () =
  let info = Cmd.info "datagen" ~version:"1.0.0" ~doc:"Benchmark data set generator." in
  exit (Cmd.eval (Cmd.group info [ lubm_cmd; barton_cmd ]))
