(* Tests for the [dictionary] library: string interning and term-level
   encoding. *)

open Dict

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let test_dict_basic () =
  let d = Dictionary.create () in
  check_int "empty" 0 (Dictionary.size d);
  let a = Dictionary.encode d "alpha" in
  let b = Dictionary.encode d "beta" in
  check_int "ids dense from zero" 0 a;
  check_int "second id" 1 b;
  check_int "idempotent" a (Dictionary.encode d "alpha");
  check_int "size" 2 (Dictionary.size d);
  check_string "decode a" "alpha" (Dictionary.decode d a);
  check_string "decode b" "beta" (Dictionary.decode d b);
  check_bool "mem" true (Dictionary.mem d "alpha");
  check_bool "not mem" false (Dictionary.mem d "gamma");
  Alcotest.(check (option int)) "find" (Some 0) (Dictionary.find d "alpha");
  Alcotest.(check (option int)) "find misses without alloc" None (Dictionary.find d "gamma");
  check_int "find did not allocate" 2 (Dictionary.size d)

let test_dict_decode_errors () =
  let d = Dictionary.create () in
  ignore (Dictionary.encode d "x");
  Alcotest.check_raises "unknown id" (Invalid_argument "Dictionary.decode: unknown id 5")
    (fun () -> ignore (Dictionary.decode d 5));
  Alcotest.check_raises "negative id" (Invalid_argument "Dictionary.decode: unknown id -1")
    (fun () -> ignore (Dictionary.decode d (-1)))

let test_dict_growth () =
  let d = Dictionary.create ~initial_size:2 () in
  for i = 0 to 9999 do
    check_int "sequential ids" i (Dictionary.encode d (string_of_int i))
  done;
  check_int "all kept" 10000 (Dictionary.size d);
  check_string "early decode survives growth" "0" (Dictionary.decode d 0);
  check_string "late decode" "9999" (Dictionary.decode d 9999)

let test_dict_iter_fold () =
  let d = Dictionary.create () in
  List.iter (fun s -> ignore (Dictionary.encode d s)) [ "a"; "b"; "c" ];
  let seen = ref [] in
  Dictionary.iter (fun id s -> seen := (id, s) :: !seen) d;
  Alcotest.(check (list (pair int string))) "iter order" [ (0, "a"); (1, "b"); (2, "c") ]
    (List.rev !seen);
  check_int "fold count" 3 (Dictionary.fold (fun _ _ n -> n + 1) d 0);
  check_bool "memory positive" true (Dictionary.memory_words d > 0)

let prop_dict_roundtrip =
  QCheck.Test.make ~name:"encode/decode roundtrip over random strings" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_bound 50) (string_size ~gen:printable (int_bound 20))))
    (fun strings ->
      let d = Dictionary.create () in
      let ids = List.map (Dictionary.encode d) strings in
      List.for_all2 (fun s id -> Dictionary.decode d id = s) strings ids)

let prop_dict_injective =
  QCheck.Test.make ~name:"distinct strings get distinct ids" ~count:300
    (QCheck.make QCheck.Gen.(pair (string_size (int_bound 10)) (string_size (int_bound 10))))
    (fun (a, b) ->
      let d = Dictionary.create () in
      let ia = Dictionary.encode d a and ib = Dictionary.encode d b in
      (a = b) = (ia = ib))

(* ------------------------------------------------------------------ *)
(* Term_dict                                                           *)
(* ------------------------------------------------------------------ *)

open Rdf

let term_t = Alcotest.testable Term.pp Term.equal
let triple_t = Alcotest.testable Triple.pp Triple.equal

let test_term_dict_roundtrip () =
  let d = Term_dict.create () in
  let terms =
    [
      Term.iri "http://x/a";
      Term.blank "b0";
      Term.string_literal "v";
      Term.literal ~lang:"en" "v";
      Term.int_literal 42;
    ]
  in
  let ids = List.map (Term_dict.encode_term d) terms in
  List.iteri
    (fun i id -> Alcotest.check term_t "roundtrip" (List.nth terms i) (Term_dict.decode_term d id))
    ids;
  check_int "five ids" 5 (Term_dict.size d)

let test_term_dict_distinguishes_kinds () =
  let d = Term_dict.create () in
  (* Same spelling, three different kinds of term: must get three ids. *)
  let i = Term_dict.encode_term d (Term.iri "http://x/v") in
  let l = Term_dict.encode_term d (Term.string_literal "http://x/v") in
  let b = Term_dict.encode_term d (Term.blank "v") in
  check_bool "iri <> literal" true (i <> l);
  check_bool "literal <> blank" true (l <> b);
  (* Literal with/without lang are distinct too. *)
  let plain = Term_dict.encode_term d (Term.string_literal "x") in
  let lang = Term_dict.encode_term d (Term.literal ~lang:"en" "x") in
  check_bool "plain <> lang" true (plain <> lang)

let test_term_dict_triples () =
  let d = Term_dict.create () in
  let t =
    Triple.make (Term.iri "http://x/s") (Term.iri "http://x/p") (Term.string_literal "o")
  in
  let enc = Term_dict.encode_triple d t in
  Alcotest.check triple_t "triple roundtrip" t (Term_dict.decode_triple d enc);
  (match Term_dict.find_triple d t with
  | Some enc' -> check_bool "find_triple finds" true (enc = enc')
  | None -> Alcotest.fail "find_triple missed");
  let unknown =
    Triple.make (Term.iri "http://x/s") (Term.iri "http://x/p") (Term.string_literal "nope")
  in
  check_bool "find_triple misses unknown" true (Term_dict.find_triple d unknown = None);
  check_int "find did not allocate" 3 (Term_dict.size d)

let test_term_dict_find () =
  let d = Term_dict.create () in
  Alcotest.(check (option int)) "find before" None (Term_dict.find_term d (Term.iri "http://x/a"));
  let id = Term_dict.encode_term d (Term.iri "http://x/a") in
  Alcotest.(check (option int)) "find after" (Some id) (Term_dict.find_term d (Term.iri "http://x/a"))

let gen_term =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun n -> Term.iri (Printf.sprintf "http://example.org/r%d" n)) (int_bound 50));
        (1, map (fun n -> Term.blank (Printf.sprintf "b%d" n)) (int_bound 10));
        (2, map Term.string_literal (string_size ~gen:printable (int_bound 15)));
        (1, map (fun n -> Term.literal ~lang:"fr" (string_of_int n)) (int_bound 50));
      ])

let prop_term_dict_roundtrip =
  QCheck.Test.make ~name:"term encode/decode roundtrip" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_bound 50) gen_term))
    (fun terms ->
      let d = Term_dict.create () in
      let ids = List.map (Term_dict.encode_term d) terms in
      List.for_all2 (fun t id -> Term.equal t (Term_dict.decode_term d id)) terms ids)

let prop_term_dict_stable =
  QCheck.Test.make ~name:"re-encoding returns the same id" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_bound 50) gen_term))
    (fun terms ->
      let d = Term_dict.create () in
      let first = List.map (Term_dict.encode_term d) terms in
      let second = List.map (Term_dict.encode_term d) terms in
      first = second)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "dictionary"
    [
      ( "dictionary",
        [
          Alcotest.test_case "basic" `Quick test_dict_basic;
          Alcotest.test_case "decode_errors" `Quick test_dict_decode_errors;
          Alcotest.test_case "growth" `Quick test_dict_growth;
          Alcotest.test_case "iter_fold" `Quick test_dict_iter_fold;
          qt prop_dict_roundtrip;
          qt prop_dict_injective;
        ] );
      ( "term_dict",
        [
          Alcotest.test_case "roundtrip" `Quick test_term_dict_roundtrip;
          Alcotest.test_case "kinds" `Quick test_term_dict_distinguishes_kinds;
          Alcotest.test_case "triples" `Quick test_term_dict_triples;
          Alcotest.test_case "find" `Quick test_term_dict_find;
          qt prop_term_dict_roundtrip;
          qt prop_term_dict_stable;
        ] );
    ]
