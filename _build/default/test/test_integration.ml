(* End-to-end integration: generated data flows through parsing,
   snapshotting, all four store kinds, the SPARQL engine, inference and
   paths — with answers cross-checked between independent code paths. *)

open Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let lubm_triples =
  lazy (Lubm.generate (Lubm.config ~universities:1 ~departments_per_university:2 ~seed:9 ()))

(* ------------------------------------------------------------------ *)
(* N-Triples file -> store -> snapshot -> store: one pipeline          *)
(* ------------------------------------------------------------------ *)

let test_pipeline_roundtrip () =
  let triples = Lazy.force lubm_triples in
  let nt_path = Filename.temp_file "hexa_integration" ".nt" in
  let snap_path = Filename.temp_file "hexa_integration" ".snap" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove nt_path;
      Sys.remove snap_path)
    (fun () ->
      (* write N-Triples, parse back, load, snapshot, reload *)
      Rdf.Ntriples.save_file nt_path triples;
      let reparsed = Rdf.Ntriples.load_file nt_path in
      let h1 = Hexa.Hexastore.of_triples reparsed in
      Hexa.Snapshot.save h1 snap_path;
      let h2 = Hexa.Snapshot.load snap_path in
      check_int "sizes agree" (Hexa.Hexastore.size h1) (Hexa.Hexastore.size h2);
      Hexa.Hexastore.check_invariant h2;
      (* The same SPARQL query gives identical answers on both. *)
      let q =
        Query.Sparql.parse ~namespaces:(Rdf.Namespace.default ())
          "SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x a ?t } GROUP BY ?t ORDER BY DESC(?n)"
      in
      let run h =
        Query.Exec.run (Hexa.Store_sig.box_hexastore h) q.algebra
        |> List.map (fun sol ->
               ( Query.Binding.value_to_string (Hexa.Hexastore.dict h)
                   (Option.get (Query.Binding.get sol "t")),
                 Query.Binding.get sol "n" ))
      in
      check_bool "query results identical through snapshot" true (run h1 = run h2))

(* ------------------------------------------------------------------ *)
(* SPARQL answers agree across all four store kinds                    *)
(* ------------------------------------------------------------------ *)

let queries =
  [
    "SELECT ?x WHERE { ?x a ub:FullProfessor }";
    "SELECT ?x ?c WHERE { ?x ub:teacherOf ?c . ?x a ub:AssociateProfessor }";
    "SELECT ?s WHERE { ?s ub:advisor ?a . ?a ub:worksFor ?d . ?d ub:subOrganizationOf ?u }";
    "SELECT DISTINCT ?u WHERE { ?x ub:undergraduateDegreeFrom ?u }";
    "SELECT ?x WHERE { { ?x a ub:Lecturer } UNION { ?x a ub:FullProfessor } }";
    "SELECT ?x ?a WHERE { ?x a ub:GraduateStudent . OPTIONAL { ?x ub:advisor ?a } } LIMIT 50";
    "SELECT ?t (COUNT(?x) AS ?n) WHERE { ?x a ?t } GROUP BY ?t ORDER BY ?t";
    "ASK { ?x ub:teacherOf ?c }";
  ]

let test_sparql_across_stores () =
  let triples = Lazy.force lubm_triples in
  let dict = Dict.Term_dict.create () in
  let encoded = Array.of_list (List.map (Dict.Term_dict.encode_triple dict) triples) in
  let stores =
    List.map
      (fun kind ->
        let s = Stores.create ~dict kind in
        ignore (Stores.load s encoded);
        Stores.boxed s)
      Stores.all_kinds
  in
  (* Plus a partial store holding only three orderings. *)
  let partial =
    Hexa.Partial.create ~dict
      ~orderings:[ Hexa.Ordering.Spo; Hexa.Ordering.Pos; Hexa.Ordering.Osp ] ()
  in
  ignore (Hexa.Partial.add_bulk_ids partial encoded);
  let stores = stores @ [ Hexa.Store_sig.box_partial partial ] in
  let ns = Rdf.Namespace.default () in
  List.iter
    (fun text ->
      let q = Query.Sparql.parse ~namespaces:ns text in
      let canon store =
        if q.is_ask then [ [ string_of_bool (Query.Exec.ask store q.algebra) ] ]
        else
          Query.Exec.run store q.algebra
          |> List.map (fun sol ->
                 List.map
                   (fun v ->
                     match Query.Binding.get sol v with
                     | None -> ""
                     | Some value -> Query.Binding.value_to_string dict value)
                   q.projection)
          |> List.sort compare
      in
      match stores with
      | reference :: others ->
          let expected = canon reference in
          List.iter
            (fun store ->
              check_bool
                (Printf.sprintf "%s agrees on %s" (Hexa.Store_sig.name store) text)
                true
                (canon store = expected))
            others
      | [] -> ())
    queries

(* ------------------------------------------------------------------ *)
(* Inference + engine: closure results become queryable                *)
(* ------------------------------------------------------------------ *)

let test_rdfs_closure_via_engine () =
  let ub = Rdf.Namespace.ub in
  let schema =
    [
      Rdf.Triple.make (Rdf.Term.iri (ub "FullProfessor"))
        (Rdf.Term.iri Rdf.Rdfs.subclass_of) (Rdf.Term.iri (ub "Professor"));
      Rdf.Triple.make (Rdf.Term.iri (ub "AssociateProfessor"))
        (Rdf.Term.iri Rdf.Rdfs.subclass_of) (Rdf.Term.iri (ub "Professor"));
      Rdf.Triple.make (Rdf.Term.iri (ub "Professor"))
        (Rdf.Term.iri Rdf.Rdfs.subclass_of) (Rdf.Term.iri (ub "Faculty"));
    ]
  in
  let triples = schema @ Lazy.force lubm_triples in
  let asserted = Hexa.Hexastore.of_triples triples in
  let closed = Hexa.Hexastore.of_triples (Rdf.Rdfs.closure triples) in
  let count h cls =
    Hexa.Hexastore.count_terms h ~p:(Rdf.Term.iri Rdf.Namespace.rdf_type)
      ~o:(Rdf.Term.iri (ub cls)) ()
  in
  check_int "no Faculty before closure" 0 (count asserted "Faculty");
  let full = count asserted "FullProfessor" and assoc = count asserted "AssociateProfessor" in
  check_bool "professors exist" true (full > 0 && assoc > 0);
  check_int "Professor = Full + Assoc" (full + assoc) (count closed "Professor");
  check_int "Faculty = Professor" (count closed "Professor") (count closed "Faculty")

(* ------------------------------------------------------------------ *)
(* Paths: Ppath closure = Path chain on closure-free chains            *)
(* ------------------------------------------------------------------ *)

let test_ppath_matches_path_on_chains () =
  let triples = Lazy.force lubm_triples in
  let h = Hexa.Hexastore.of_triples triples in
  let d = Hexa.Hexastore.dict h in
  let pid name = Option.get (Dict.Term_dict.find_term d (Rdf.Term.iri (Lubm.ub name))) in
  let chain = [ pid "advisor"; pid "worksFor" ] in
  let ppath =
    Query.Ppath.Seq
      (Query.Ppath.Pred (Lubm.ub "advisor"), Query.Ppath.Pred (Lubm.ub "worksFor"))
  in
  let via_path = List.sort_uniq compare (Query.Path.follow h chain) in
  let via_ppath = Query.Ppath.pairs h ppath in
  check_bool "Path.follow = Ppath.pairs" true (via_path = via_ppath)

(* ------------------------------------------------------------------ *)
(* Star vs queries_lubm on real generated data                         *)
(* ------------------------------------------------------------------ *)

let test_star_on_lubm () =
  let triples = Lazy.force lubm_triples in
  let h = Hexa.Hexastore.of_triples triples in
  let d = Hexa.Hexastore.dict h in
  let id iri = Option.get (Dict.Term_dict.find_term d (Rdf.Term.iri iri)) in
  (* Grad students advised by AP10: star over type + advisor. *)
  let star =
    Query.Star.subjects h
      [
        { Query.Star.p = id Rdf.Namespace.rdf_type; o = Some (id (Lubm.ub "GraduateStudent")) };
        { Query.Star.p = id (Lubm.ub "advisor"); o = Some (id Lubm.associate_professor10) };
      ]
  in
  (* Same through the generic engine. *)
  let q =
    Query.Sparql.parse ~namespaces:(Rdf.Namespace.default ())
      (Printf.sprintf
         "SELECT ?x WHERE { ?x a ub:GraduateStudent . ?x ub:advisor <%s> }"
         Lubm.associate_professor10)
  in
  let via_engine =
    Query.Exec.run (Hexa.Store_sig.box_hexastore h) q.algebra
    |> List.filter_map (fun sol ->
           match Query.Binding.get sol "x" with
           | Some (Query.Binding.Id i) -> Some i
           | _ -> None)
    |> List.sort_uniq compare
  in
  check_bool "star = engine" true (Vectors.Sorted_ivec.to_list star = via_engine)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "nt_snapshot_roundtrip" `Quick test_pipeline_roundtrip;
          Alcotest.test_case "sparql_across_stores" `Quick test_sparql_across_stores;
          Alcotest.test_case "rdfs_closure" `Quick test_rdfs_closure_via_engine;
          Alcotest.test_case "ppath_vs_path" `Quick test_ppath_matches_path_on_chains;
          Alcotest.test_case "star_on_lubm" `Quick test_star_on_lubm;
        ] );
    ]
