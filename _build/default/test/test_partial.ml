(* Tests for the §6 future-work features: orderings as values, the
   partial Hexastore (any subset of the six indices, still answering all
   eight pattern shapes), and the workload-driven index advisor. *)

open Hexa

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type id3 = Hexastore.id_triple = { s : int; p : int; o : int }

let t3 s p o = { s; p; o }

let sorted_triples seq =
  List.sort (fun (a : id3) b -> compare (a.s, a.p, a.o) (b.s, b.p, b.o)) (List.of_seq seq)

let all_patterns max_id =
  let opts = None :: List.init max_id (fun i -> Some i) in
  List.concat_map
    (fun s -> List.concat_map (fun p -> List.map (fun o -> { Pattern.s; p; o }) opts) opts)
    opts

(* ------------------------------------------------------------------ *)
(* Ordering                                                            *)
(* ------------------------------------------------------------------ *)

let test_ordering_names () =
  check_int "six orderings" 6 (List.length Ordering.all);
  List.iter
    (fun ord ->
      match Ordering.of_name (Ordering.name ord) with
      | Some ord' -> check_bool "name roundtrip" true (Ordering.equal ord ord')
      | None -> Alcotest.fail "of_name failed")
    Ordering.all;
  check_bool "unknown name" true (Ordering.of_name "xyz" = None)

let test_ordering_twins () =
  List.iter
    (fun ord ->
      check_bool "twin is involutive" true (Ordering.equal (Ordering.twin (Ordering.twin ord)) ord);
      check_bool "twin differs" false (Ordering.equal (Ordering.twin ord) ord))
    Ordering.all;
  check_bool "spo twin pso" true (Ordering.equal (Ordering.twin Ordering.Spo) Ordering.Pso);
  check_bool "sop twin osp" true (Ordering.equal (Ordering.twin Ordering.Sop) Ordering.Osp);
  check_bool "pos twin ops" true (Ordering.equal (Ordering.twin Ordering.Pos) Ordering.Ops)

let test_ordering_for_shape () =
  let open Pattern in
  let cases =
    [ (Sp, Ordering.Spo); (So, Ordering.Sop); (Po, Ordering.Pos);
      (S, Ordering.Spo); (P, Ordering.Pso); (O, Ordering.Osp) ]
  in
  List.iter
    (fun (shape, expected) ->
      check_bool "native ordering" true (Ordering.equal (Ordering.for_shape shape) expected))
    cases

(* ------------------------------------------------------------------ *)
(* Partial                                                             *)
(* ------------------------------------------------------------------ *)

let data = List.init 120 (fun i -> t3 (i mod 7) (i mod 4) (i mod 9))

let test_partial_requires_ordering () =
  Alcotest.check_raises "empty subset"
    (Invalid_argument "Partial.create: at least one ordering required") (fun () ->
      ignore (Partial.create ~orderings:[] ()))

let test_partial_basics () =
  let p = Partial.create ~orderings:[ Ordering.Spo ] () in
  check_bool "add" true (Partial.add_ids p (t3 1 2 3));
  check_bool "dup" false (Partial.add_ids p (t3 1 2 3));
  check_bool "mem" true (Partial.mem_ids p (t3 1 2 3));
  check_bool "not mem" false (Partial.mem_ids p (t3 1 2 4));
  check_int "size" 1 (Partial.size p);
  Partial.check_invariant p

let subsets =
  (* A representative mix: singletons of each family, pairs, the paper's
     workload-driven subset, and the full six. *)
  [
    [ Ordering.Spo ];
    [ Ordering.Pso ];
    [ Ordering.Sop ];
    [ Ordering.Pos ];
    [ Ordering.Osp ];
    [ Ordering.Ops ];
    [ Ordering.Spo; Ordering.Pos ];
    [ Ordering.Pso; Ordering.Osp ];
    [ Ordering.Spo; Ordering.Pso; Ordering.Pos; Ordering.Osp ];
    Ordering.all;
  ]

let test_partial_equals_full_on_all_patterns () =
  let h = Hexastore.create () in
  List.iter (fun tr -> ignore (Hexastore.add_ids h tr)) data;
  List.iter
    (fun orderings ->
      let p = Partial.create ~orderings () in
      List.iter (fun tr -> ignore (Partial.add_ids p tr)) data;
      Partial.check_invariant p;
      check_int "same size" (Hexastore.size h) (Partial.size p);
      List.iter
        (fun pat ->
          let label =
            Format.asprintf "{%s} lookup %a"
              (String.concat "," (List.map Ordering.name orderings))
              Pattern.pp pat
          in
          check_bool label true
            (sorted_triples (Partial.lookup p pat) = sorted_triples (Hexastore.lookup h pat));
          check_int (label ^ " count") (Hexastore.count h pat) (Partial.count p pat))
        (all_patterns 10))
    subsets

let test_partial_bulk () =
  List.iter
    (fun orderings ->
      let p1 = Partial.create ~orderings () in
      List.iter (fun tr -> ignore (Partial.add_ids p1 tr)) data;
      let p2 = Partial.create ~orderings () in
      let added = Partial.add_bulk_ids p2 (Array.of_list data) in
      check_int "bulk size" (Partial.size p1) (Partial.size p2);
      check_int "bulk new count" (Partial.size p1) added;
      Partial.check_invariant p2;
      check_bool "same content" true
        (sorted_triples (Partial.lookup p1 Pattern.wildcard)
        = sorted_triples (Partial.lookup p2 Pattern.wildcard));
      check_int "re-bulk adds none" 0 (Partial.add_bulk_ids p2 (Array.of_list data)))
    subsets

let test_partial_native () =
  let p = Partial.create ~orderings:[ Ordering.Pso ] () in
  check_bool "P native" true (Partial.is_native p Pattern.P);
  check_bool "O not native" false (Partial.is_native p Pattern.O);
  (* Sp is native through the twin's shared family. *)
  check_bool "Sp native via twin" true (Partial.is_native p Pattern.Sp);
  check_bool "All native via twin" true (Partial.is_native p Pattern.All)

let test_partial_memory_less_than_full () =
  let h = Hexastore.create () in
  let p = Partial.create ~orderings:[ Ordering.Spo; Ordering.Pos ] () in
  List.iter
    (fun tr ->
      ignore (Hexastore.add_ids h tr);
      ignore (Partial.add_ids p tr))
    data;
  check_bool "partial smaller" true (Partial.memory_words p < Hexastore.memory_words h)

let gen_triple = QCheck.Gen.(map3 t3 (int_bound 8) (int_bound 5) (int_bound 10))

let gen_subset =
  QCheck.Gen.(
    map
      (fun bits ->
        let chosen = List.filteri (fun i _ -> (bits lsr i) land 1 = 1) Ordering.all in
        if chosen = [] then [ Ordering.Spo ] else chosen)
      (int_range 1 63))

let prop_partial_model =
  QCheck.Test.make ~name:"partial store = full hexastore on all patterns, random subsets"
    ~count:120
    (QCheck.make
       QCheck.Gen.(pair gen_subset (list_size (int_bound 100) gen_triple)))
    (fun (orderings, triples) ->
      let h = Hexastore.create () in
      let p = Partial.create ~orderings () in
      List.iter
        (fun tr ->
          ignore (Hexastore.add_ids h tr);
          ignore (Partial.add_ids p tr))
        triples;
      Partial.check_invariant p;
      Partial.size p = Hexastore.size h
      && List.for_all
           (fun pat ->
             sorted_triples (Partial.lookup p pat) = sorted_triples (Hexastore.lookup h pat)
             && Partial.count p pat = Hexastore.count h pat)
           (all_patterns 11))

let test_partial_boxed_sparql () =
  (* The generic SPARQL engine runs over a partial store unchanged. *)
  let p = Partial.create ~orderings:[ Ordering.Pso; Ordering.Osp ] () in
  let d = Partial.dict p in
  let ex n = Rdf.Term.iri ("http://example.org/" ^ n) in
  List.iter
    (fun (s, pr, o) ->
      ignore (Partial.add_ids p (Dict.Term_dict.encode_triple d (Rdf.Triple.make (ex s) (ex pr) (ex o)))))
    [ ("a", "knows", "b"); ("b", "knows", "c"); ("a", "type", "Person") ];
  let boxed = Store_sig.box_partial p in
  Alcotest.(check string) "boxed name" "Partial" (Store_sig.name boxed);
  let q =
    Query.Sparql.parse
      "PREFIX ex: <http://example.org/> SELECT ?x WHERE { ?x ex:knows ?y . ?y ex:knows ?z }"
  in
  check_int "two-hop chain" 1 (List.length (Query.Exec.run boxed q.algebra))

(* ------------------------------------------------------------------ *)
(* Advisor                                                             *)
(* ------------------------------------------------------------------ *)

let test_advisor_workload_tally () =
  let patterns =
    [ Pattern.make ~p:1 (); Pattern.make ~p:2 (); Pattern.make ~o:3 (); Pattern.wildcard ]
  in
  let w = Advisor.workload_of_patterns patterns in
  check_int "three shapes" 3 (List.length w);
  check_bool "P counted twice" true (List.mem (Pattern.P, 2) w)

let test_advisor_recommend () =
  let w = [ (Pattern.P, 100); (Pattern.O, 10); (Pattern.Sp, 5) ] in
  let r = Advisor.recommend w in
  check_bool "keeps pso" true (List.mem Ordering.Pso r.keep);
  check_bool "keeps osp" true (List.mem Ordering.Osp r.keep);
  check_bool "keeps spo (Sp)" true (List.mem Ordering.Spo r.keep);
  check_bool "drops ops" true (List.mem Ordering.Ops r.drop);
  check_bool "drops sop" true (List.mem Ordering.Sop r.drop);
  check_bool "fully native" true (r.native_fraction = 1.0);
  check_int "keep+drop = 6" 6 (List.length r.keep + List.length r.drop)

let test_advisor_empty_workload () =
  let r = Advisor.recommend [] in
  Alcotest.(check (list string)) "spo only" [ "spo" ] (List.map Ordering.name r.keep);
  check_bool "vacuously native" true (r.native_fraction = 1.0)

let test_advisor_sp_via_twin () =
  (* A workload of only Sp lookups is natively served by pso alone
     (shared o-lists); the advisor reports it native once pso is kept. *)
  let r = Advisor.recommend [ (Pattern.P, 1); (Pattern.Sp, 1) ] in
  check_bool "native via twin" true (r.native_fraction = 1.0)

let test_advisor_memory_estimates () =
  let h = Hexastore.create () in
  List.iter (fun tr -> ignore (Hexastore.add_ids h tr)) data;
  let full = Advisor.estimate_memory_words h Ordering.all in
  let actual = Hexastore.memory_words h in
  check_bool "full estimate close to actual" true
    (abs (full - actual) * 10 < actual);
  let partial_est = Advisor.estimate_memory_words h [ Ordering.Spo; Ordering.Pso ] in
  check_bool "subset cheaper" true (partial_est < full);
  let s = Advisor.savings_fraction h [ Ordering.Spo ] in
  check_bool "savings in (0,1)" true (s > 0. && s < 1.);
  check_bool "keeping all saves ~nothing" true
    (abs_float (Advisor.savings_fraction h Ordering.all) < 0.1)

let prop_advisor_estimate_matches_partial =
  QCheck.Test.make ~name:"advisor memory estimate ≈ actual partial store memory" ~count:60
    (QCheck.make QCheck.Gen.(pair gen_subset (list_size (int_bound 120) gen_triple)))
    (fun (orderings, triples) ->
      let h = Hexastore.create () in
      let p = Partial.create ~orderings () in
      List.iter
        (fun tr ->
          ignore (Hexastore.add_ids h tr);
          ignore (Partial.add_ids p tr))
        triples;
      let est = Advisor.estimate_memory_words h orderings in
      let actual = Partial.memory_words p in
      (* Allocation slack differs; require agreement within 40%. *)
      actual = 0 || abs (est - actual) * 10 <= actual * 4)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "partial"
    [
      ( "ordering",
        [
          Alcotest.test_case "names" `Quick test_ordering_names;
          Alcotest.test_case "twins" `Quick test_ordering_twins;
          Alcotest.test_case "for_shape" `Quick test_ordering_for_shape;
        ] );
      ( "partial",
        [
          Alcotest.test_case "requires_ordering" `Quick test_partial_requires_ordering;
          Alcotest.test_case "basics" `Quick test_partial_basics;
          Alcotest.test_case "equals_full" `Quick test_partial_equals_full_on_all_patterns;
          Alcotest.test_case "bulk" `Quick test_partial_bulk;
          Alcotest.test_case "native" `Quick test_partial_native;
          Alcotest.test_case "memory" `Quick test_partial_memory_less_than_full;
          Alcotest.test_case "boxed_sparql" `Quick test_partial_boxed_sparql;
          qt prop_partial_model;
        ] );
      ( "advisor",
        [
          Alcotest.test_case "tally" `Quick test_advisor_workload_tally;
          Alcotest.test_case "recommend" `Quick test_advisor_recommend;
          Alcotest.test_case "empty" `Quick test_advisor_empty_workload;
          Alcotest.test_case "sp_via_twin" `Quick test_advisor_sp_via_twin;
          Alcotest.test_case "memory" `Quick test_advisor_memory_estimates;
          qt prop_advisor_estimate_matches_partial;
        ] );
    ]
