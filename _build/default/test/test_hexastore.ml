(* Tests for the [hexa] core: patterns, pair vectors, the Hexastore's six
   indices with shared terminal lists, the COVP baselines, bulk loading,
   deletion, counting and the 5x space bound.  The reference model is a
   plain set of id-triples. *)

open Hexa
module Sorted_ivec = Vectors.Sorted_ivec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

type id3 = Hexastore.id_triple = { s : int; p : int; o : int }

module T3 = struct
  type t = id3

  let compare (a : t) (b : t) = compare (a.s, a.p, a.o) (b.s, b.p, b.o)
end

module T3set = Set.Make (T3)

let t3 s p o = { s; p; o }

let sorted_triples seq = List.sort T3.compare (List.of_seq seq)

let triple_list =
  Alcotest.testable
    (Fmt.Dump.list (fun ppf (t : id3) -> Fmt.pf ppf "(%d,%d,%d)" t.s t.p t.o))
    (fun a b -> List.equal (fun x y -> T3.compare x y = 0) a b)

(* Every subset of positions bound, for a given triple id universe. *)
let all_patterns max_id =
  let opts = None :: List.init max_id (fun i -> Some i) in
  List.concat_map
    (fun s ->
      List.concat_map
        (fun p -> List.map (fun o -> { Pattern.s; p; o }) opts)
        opts)
    opts

(* ------------------------------------------------------------------ *)
(* Pattern                                                             *)
(* ------------------------------------------------------------------ *)

let test_pattern_shapes () =
  let open Pattern in
  let cases =
    [
      (make ~s:1 ~p:2 ~o:3 (), All, 3);
      (make ~s:1 ~p:2 (), Sp, 2);
      (make ~s:1 ~o:3 (), So, 2);
      (make ~p:2 ~o:3 (), Po, 2);
      (make ~s:1 (), S, 1);
      (make ~p:2 (), P, 1);
      (make ~o:3 (), O, 1);
      (wildcard, None_bound, 0);
    ]
  in
  List.iter
    (fun (pat, expected_shape, expected_bound) ->
      check_bool "shape" true (shape pat = expected_shape);
      check_int "bound_count" expected_bound (bound_count pat))
    cases

let test_pattern_matches () =
  let tr = t3 1 2 3 in
  check_bool "wildcard" true (Pattern.matches Pattern.wildcard tr);
  check_bool "exact" true (Pattern.matches (Pattern.make ~s:1 ~p:2 ~o:3 ()) tr);
  check_bool "wrong s" false (Pattern.matches (Pattern.make ~s:9 ()) tr);
  check_bool "of_triple" true (Pattern.matches (Pattern.of_triple tr) tr)

(* ------------------------------------------------------------------ *)
(* Pair_vector                                                         *)
(* ------------------------------------------------------------------ *)

let test_pair_vector_basic () =
  let v = Pair_vector.create () in
  check_int "empty" 0 (Pair_vector.length v);
  let l5 = Pair_vector.get_or_insert v 5 (fun () -> Sorted_ivec.of_list [ 50 ]) in
  Pair_vector.bump_total v 1;
  let l1 = Pair_vector.get_or_insert v 1 (fun () -> Sorted_ivec.of_list [ 10 ]) in
  Pair_vector.bump_total v 1;
  let l9 = Pair_vector.get_or_insert v 9 (fun () -> Sorted_ivec.of_list [ 90 ]) in
  Pair_vector.bump_total v 1;
  check_int "three keys" 3 (Pair_vector.length v);
  check_int "sorted key order" 1 (Pair_vector.key_at v 0);
  check_int "sorted key order" 5 (Pair_vector.key_at v 1);
  check_int "sorted key order" 9 (Pair_vector.key_at v 2);
  (* get_or_insert on existing key returns the existing payload ref. *)
  let l5' = Pair_vector.get_or_insert v 5 (fun () -> Alcotest.fail "mk called for existing key") in
  check_bool "same ref" true (l5 == l5');
  check_bool "find" true (Pair_vector.find v 1 = Some l1);
  check_bool "find miss" true (Pair_vector.find v 7 = None);
  check_bool "payload_at" true (Pair_vector.payload_at v 2 == l9);
  Pair_vector.check_invariant v

let test_pair_vector_totals () =
  let v = Pair_vector.create () in
  ignore (Pair_vector.get_or_insert v 1 (fun () -> Sorted_ivec.of_list [ 10; 11 ]));
  Pair_vector.bump_total v 2;
  check_int "total" 2 (Pair_vector.total v);
  Pair_vector.check_invariant v;
  Pair_vector.bump_total v (-1);
  check_int "bumped down" 1 (Pair_vector.total v)

let test_pair_vector_remove () =
  let v = Pair_vector.create () in
  ignore (Pair_vector.get_or_insert v 1 (fun () -> Sorted_ivec.create ()));
  ignore (Pair_vector.get_or_insert v 2 (fun () -> Sorted_ivec.create ()));
  check_bool "remove" true (Pair_vector.remove v 1);
  check_bool "remove gone" false (Pair_vector.remove v 1);
  check_int "one left" 1 (Pair_vector.length v);
  check_int "survivor" 2 (Pair_vector.key_at v 0)

(* ------------------------------------------------------------------ *)
(* Hexastore: basics                                                   *)
(* ------------------------------------------------------------------ *)

let test_hexa_add_mem () =
  let h = Hexastore.create () in
  check_bool "add" true (Hexastore.add_ids h (t3 1 2 3));
  check_bool "dup" false (Hexastore.add_ids h (t3 1 2 3));
  check_bool "mem" true (Hexastore.mem_ids h (t3 1 2 3));
  check_bool "not mem" false (Hexastore.mem_ids h (t3 1 2 4));
  check_int "size" 1 (Hexastore.size h);
  Hexastore.check_invariant h

let test_hexa_all_patterns_figure1 () =
  (* The Figure 1 sample: ids are small ints standing for the resources. *)
  let h = Hexastore.create () in
  let data = [ t3 1 10 100; t3 1 11 101; t3 2 10 100; t3 2 12 102; t3 3 11 101; t3 3 12 100 ] in
  List.iter (fun tr -> ignore (Hexastore.add_ids h tr)) data;
  let model = T3set.of_list data in
  List.iter
    (fun pat ->
      let expected = T3set.elements (T3set.filter (Pattern.matches pat) model) in
      let got = sorted_triples (Hexastore.lookup h pat) in
      Alcotest.check triple_list (Format.asprintf "lookup %a" Pattern.pp pat) expected got;
      check_int
        (Format.asprintf "count %a" Pattern.pp pat)
        (List.length expected) (Hexastore.count h pat))
    (all_patterns 15);
  Hexastore.check_invariant h

let test_hexa_accessors () =
  let h = Hexastore.create () in
  List.iter
    (fun tr -> ignore (Hexastore.add_ids h tr))
    [ t3 1 2 3; t3 1 2 4; t3 5 2 3; t3 1 6 3 ];
  (match Hexastore.objects_of_sp h ~s:1 ~p:2 with
  | Some l -> Alcotest.(check (list int)) "o_s(p)" [ 3; 4 ] (Sorted_ivec.to_list l)
  | None -> Alcotest.fail "missing o-list");
  (match Hexastore.properties_of_so h ~s:1 ~o:3 with
  | Some l -> Alcotest.(check (list int)) "p_s(o)" [ 2; 6 ] (Sorted_ivec.to_list l)
  | None -> Alcotest.fail "missing p-list");
  (match Hexastore.subjects_of_po h ~p:2 ~o:3 with
  | Some l -> Alcotest.(check (list int)) "s_p(o)" [ 1; 5 ] (Sorted_ivec.to_list l)
  | None -> Alcotest.fail "missing s-list");
  Alcotest.(check (list int)) "subjects" [ 1; 5 ] (Sorted_ivec.to_list (Hexastore.subjects h));
  Alcotest.(check (list int)) "properties" [ 2; 6 ] (Sorted_ivec.to_list (Hexastore.properties h));
  Alcotest.(check (list int)) "objects" [ 3; 4 ] (Sorted_ivec.to_list (Hexastore.objects h))

let test_hexa_sharing () =
  (* §4.1: twin orderings share terminal lists *physically*. *)
  let h = Hexastore.create () in
  List.iter (fun tr -> ignore (Hexastore.add_ids h tr)) [ t3 1 2 3; t3 1 2 4; t3 5 2 3 ];
  let l1 = Index.find_list (Hexastore.spo h) 1 2 in
  let l2 = Index.find_list (Hexastore.pso h) 2 1 in
  (match (l1, l2) with
  | Some a, Some b -> check_bool "spo/pso share o-lists" true (a == b)
  | _ -> Alcotest.fail "missing lists");
  let l3 = Index.find_list (Hexastore.sop h) 1 3 in
  let l4 = Index.find_list (Hexastore.osp h) 3 1 in
  (match (l3, l4) with
  | Some a, Some b -> check_bool "sop/osp share p-lists" true (a == b)
  | _ -> Alcotest.fail "missing lists");
  let l5 = Index.find_list (Hexastore.pos h) 2 3 in
  let l6 = Index.find_list (Hexastore.ops h) 3 2 in
  (match (l5, l6) with
  | Some a, Some b -> check_bool "pos/ops share s-lists" true (a == b)
  | _ -> Alcotest.fail "missing lists")

let test_hexa_remove () =
  let h = Hexastore.create () in
  let data = [ t3 1 2 3; t3 1 2 4; t3 5 2 3; t3 1 6 3 ] in
  List.iter (fun tr -> ignore (Hexastore.add_ids h tr)) data;
  check_bool "remove present" true (Hexastore.remove_ids h (t3 1 2 3));
  check_bool "remove again" false (Hexastore.remove_ids h (t3 1 2 3));
  check_bool "gone" false (Hexastore.mem_ids h (t3 1 2 3));
  check_bool "sibling kept" true (Hexastore.mem_ids h (t3 1 2 4));
  check_int "size" 3 (Hexastore.size h);
  Hexastore.check_invariant h;
  (* Remove everything: all headers must be pruned. *)
  List.iter (fun tr -> ignore (Hexastore.remove_ids h tr)) data;
  check_int "empty" 0 (Hexastore.size h);
  check_int "no subjects" 0 (Sorted_ivec.length (Hexastore.subjects h));
  check_int "no properties" 0 (Sorted_ivec.length (Hexastore.properties h));
  check_int "no objects" 0 (Sorted_ivec.length (Hexastore.objects h));
  Hexastore.check_invariant h

let test_hexa_remove_reinsert () =
  let h = Hexastore.create () in
  ignore (Hexastore.add_ids h (t3 1 2 3));
  ignore (Hexastore.remove_ids h (t3 1 2 3));
  check_bool "reinsert" true (Hexastore.add_ids h (t3 1 2 3));
  check_bool "mem" true (Hexastore.mem_ids h (t3 1 2 3));
  check_int "size" 1 (Hexastore.size h);
  Hexastore.check_invariant h

let test_hexa_bulk_equals_incremental () =
  let data =
    Array.init 200 (fun i -> t3 (i mod 7) (i mod 5) (i mod 11))
  in
  let h1 = Hexastore.create () in
  Array.iter (fun tr -> ignore (Hexastore.add_ids h1 tr)) data;
  let h2 = Hexastore.create () in
  let added = Hexastore.add_bulk_ids h2 data in
  check_int "same size" (Hexastore.size h1) (Hexastore.size h2);
  check_int "bulk reports new count" (Hexastore.size h1) added;
  Hexastore.check_invariant h2;
  Alcotest.check triple_list "same contents"
    (sorted_triples (Hexastore.lookup h1 Pattern.wildcard))
    (sorted_triples (Hexastore.lookup h2 Pattern.wildcard));
  (* Bulk into a non-empty store deduplicates against existing content. *)
  check_int "re-bulk adds nothing" 0 (Hexastore.add_bulk_ids h2 data)

let test_hexa_term_level () =
  let open Rdf in
  let tr a b c =
    Triple.make (Term.iri ("http://x/" ^ a)) (Term.iri ("http://x/" ^ b))
      (Term.iri ("http://x/" ^ c))
  in
  let h = Hexastore.of_triples [ tr "s1" "p1" "o1"; tr "s1" "p2" "o2"; tr "s2" "p1" "o1" ] in
  check_int "size" 3 (Hexastore.size h);
  check_bool "mem" true (Hexastore.mem h (tr "s1" "p1" "o1"));
  check_bool "not mem" false (Hexastore.mem h (tr "s1" "p1" "o9"));
  check_int "find by s" 2
    (Seq.length (Hexastore.find h ~s:(Term.iri "http://x/s1") ()));
  check_int "find unknown term is empty" 0
    (Seq.length (Hexastore.find h ~s:(Term.iri "http://x/unknown") ()));
  check_int "count_terms" 2 (Hexastore.count_terms h ~p:(Term.iri "http://x/p1") ());
  check_bool "remove" true (Hexastore.remove h (tr "s1" "p1" "o1"));
  check_int "size after remove" 2 (Hexastore.size h);
  check_int "to_triples" 2 (List.length (Hexastore.to_triples h))

let test_hexa_space_bound () =
  (* Worst case for space: every resource id appears exactly once. *)
  let h = Hexastore.create () in
  for i = 0 to 99 do
    ignore (Hexastore.add_ids h (t3 (3 * i) ((3 * i) + 1) ((3 * i) + 2)))
  done;
  let epr = Stats.entries_per_triple h in
  check_bool "worst case reaches 5" true (epr = 5.0);
  (* Heavy sharing: far below 5. *)
  let h2 = Hexastore.create () in
  for i = 0 to 99 do
    ignore (Hexastore.add_ids h2 (t3 1 2 i))
  done;
  (* Headers/vectors amortise across the 100 triples: ~3.02 entries per
     occurrence here versus the 5.0 worst case above. *)
  check_bool "sharing reduces entries" true (Stats.entries_per_triple h2 < 3.5)

let test_hexa_soak () =
  (* A long randomized add/remove session against the set model, with a
     full structural check at the end (not per step — O(n) each). *)
  let rng = ref 123456789 in
  let next () =
    rng := (!rng * 1103515245) + 12345 land max_int;
    abs !rng
  in
  let h = Hexastore.create () in
  let model = ref T3set.empty in
  for _ = 1 to 20_000 do
    let tr = t3 (next () mod 40) (next () mod 12) (next () mod 50) in
    if next () mod 3 = 0 then begin
      let removed = Hexastore.remove_ids h tr in
      check_bool "remove agrees with model" (T3set.mem tr !model) removed;
      model := T3set.remove tr !model
    end
    else begin
      let added = Hexastore.add_ids h tr in
      check_bool "add agrees with model" (not (T3set.mem tr !model)) added;
      model := T3set.add tr !model
    end
  done;
  check_int "final size" (T3set.cardinal !model) (Hexastore.size h);
  Hexastore.check_invariant h;
  Alcotest.check triple_list "final contents"
    (T3set.elements !model)
    (sorted_triples (Hexastore.lookup h Pattern.wildcard))

let test_stats () =
  let h = Hexastore.create () in
  List.iter
    (fun tr -> ignore (Hexastore.add_ids h tr))
    [ t3 1 2 3; t3 1 2 4; t3 5 2 3; t3 1 6 3 ];
  let s = Stats.summary h in
  check_int "triples" 4 s.triples;
  check_int "subjects" 2 s.distinct_subjects;
  check_int "properties" 2 s.distinct_properties;
  check_int "objects" 2 s.distinct_objects;
  check_bool "memory positive" true (s.memory_words > 0);
  (match Stats.property_histogram h with
  | (p, n) :: _ ->
      check_int "top property" 2 p;
      check_int "top count" 3 n
  | [] -> Alcotest.fail "empty histogram");
  check_bool "selectivity p=2" true (abs_float (Stats.selectivity h (Pattern.make ~p:2 ()) -. 0.75) < 1e-9)

(* ------------------------------------------------------------------ *)
(* COVP baselines                                                      *)
(* ------------------------------------------------------------------ *)

let covp_kinds = [ (Covp.Covp1, "covp1"); (Covp.Covp2, "covp2") ]

let test_covp_basics () =
  List.iter
    (fun (kind, label) ->
      let c = Covp.create kind in
      check_bool (label ^ " add") true (Covp.add_ids c (t3 1 2 3));
      check_bool (label ^ " dup") false (Covp.add_ids c (t3 1 2 3));
      check_bool (label ^ " mem") true (Covp.mem_ids c (t3 1 2 3));
      check_int (label ^ " size") 1 (Covp.size c);
      check_bool (label ^ " remove") true (Covp.remove_ids c (t3 1 2 3));
      check_int (label ^ " empty") 0 (Covp.size c);
      Covp.check_invariant c)
    covp_kinds

let test_covp_matches_hexastore () =
  (* All three stores must give identical answers on every pattern. *)
  let data = List.init 300 (fun i -> t3 (i mod 9) (i mod 4) (i mod 13)) in
  let h = Hexastore.create () in
  List.iter (fun tr -> ignore (Hexastore.add_ids h tr)) data;
  List.iter
    (fun (kind, label) ->
      let c = Covp.create kind in
      List.iter (fun tr -> ignore (Covp.add_ids c tr)) data;
      check_int (label ^ " size") (Hexastore.size h) (Covp.size c);
      List.iter
        (fun pat ->
          Alcotest.check triple_list
            (Format.asprintf "%s lookup %a" label Pattern.pp pat)
            (sorted_triples (Hexastore.lookup h pat))
            (sorted_triples (Covp.lookup c pat));
          check_int
            (Format.asprintf "%s count %a" label Pattern.pp pat)
            (Hexastore.count h pat) (Covp.count c pat))
        (all_patterns 14))
    covp_kinds

let test_covp_bulk () =
  let data = Array.init 200 (fun i -> t3 (i mod 7) (i mod 5) (i mod 11)) in
  List.iter
    (fun (kind, label) ->
      let c1 = Covp.create kind in
      Array.iter (fun tr -> ignore (Covp.add_ids c1 tr)) data;
      let c2 = Covp.create kind in
      let added = Covp.add_bulk_ids c2 data in
      check_int (label ^ " bulk size") (Covp.size c1) (Covp.size c2);
      check_int (label ^ " bulk count") (Covp.size c1) added;
      Covp.check_invariant c2;
      Alcotest.check triple_list (label ^ " same contents")
        (sorted_triples (Covp.lookup c1 Pattern.wildcard))
        (sorted_triples (Covp.lookup c2 Pattern.wildcard)))
    covp_kinds

let test_covp_restriction () =
  let c = Covp.create Covp.Covp2 in
  List.iter (fun tr -> ignore (Covp.add_ids c tr)) [ t3 1 2 3; t3 1 4 3; t3 1 5 6 ];
  check_int "unrestricted S scan" 3 (Covp.count c (Pattern.make ~s:1 ()));
  Covp.restrict_properties c (Some [ 2; 5 ]);
  check_int "restricted S scan" 2 (Covp.count c (Pattern.make ~s:1 ()));
  check_int "restricted O scan" 1 (Covp.count c (Pattern.make ~o:3 ()));
  (* Property-bound lookups ignore the restriction. *)
  check_int "bound-p lookup unaffected" 1 (Covp.count c (Pattern.make ~p:4 ()));
  Covp.restrict_properties c None;
  check_int "cleared" 3 (Covp.count c (Pattern.make ~s:1 ()))

let test_covp1_po_scan () =
  (* Covp1's subjects_of_po must fall back to scanning the table. *)
  let c = Covp.create Covp.Covp1 in
  List.iter (fun tr -> ignore (Covp.add_ids c tr)) [ t3 1 2 3; t3 5 2 3; t3 7 2 4 ];
  (match Covp.subjects_of_po c ~p:2 ~o:3 with
  | Some l -> Alcotest.(check (list int)) "scan result" [ 1; 5 ] (Sorted_ivec.to_list l)
  | None -> Alcotest.fail "missing");
  check_bool "no match" true (Covp.subjects_of_po c ~p:2 ~o:9 = None);
  check_bool "covp1 has no object_vector" true (Covp.object_vector c 2 = None);
  let c2 = Covp.create Covp.Covp2 in
  ignore (Covp.add_ids c2 (t3 1 2 3));
  check_bool "covp2 has object_vector" true (Covp.object_vector c2 2 <> None)

(* ------------------------------------------------------------------ *)
(* Store_sig boxing                                                    *)
(* ------------------------------------------------------------------ *)

let test_store_sig () =
  let h = Hexastore.create () in
  ignore (Hexastore.add_ids h (t3 1 2 3));
  let b = Store_sig.box_hexastore h in
  Alcotest.(check string) "name" "Hexastore" (Store_sig.name b);
  check_int "size" 1 (Store_sig.size b);
  check_int "lookup" 1 (Seq.length (Store_sig.lookup b Pattern.wildcard));
  check_int "count" 1 (Store_sig.count b (Pattern.make ~s:1 ()));
  let c = Covp.create Covp.Covp1 in
  Alcotest.(check string) "covp1 name" "COVP1" (Store_sig.name (Store_sig.box_covp c));
  let c2 = Covp.create Covp.Covp2 in
  Alcotest.(check string) "covp2 name" "COVP2" (Store_sig.name (Store_sig.box_covp c2))

(* ------------------------------------------------------------------ *)
(* Property tests: model-based across all three stores                 *)
(* ------------------------------------------------------------------ *)

let gen_triple = QCheck.Gen.(map3 t3 (int_bound 8) (int_bound 5) (int_bound 10))

let gen_ops =
  (* true = add, false = remove *)
  QCheck.Gen.(list_size (int_bound 120) (pair bool gen_triple))

let print_ops ops =
  String.concat "; "
    (List.map (fun (add, (tr : id3)) ->
         Printf.sprintf "%s(%d,%d,%d)" (if add then "+" else "-") tr.s tr.p tr.o)
        ops)

let arbitrary_ops = QCheck.make ~print:print_ops gen_ops

let model_apply ops =
  List.fold_left
    (fun m (add, tr) -> if add then T3set.add tr m else T3set.remove tr m)
    T3set.empty ops

let prop_hexa_model =
  QCheck.Test.make ~name:"hexastore = set model under add/remove, all patterns" ~count:200
    arbitrary_ops
    (fun ops ->
      let h = Hexastore.create () in
      List.iter
        (fun (add, tr) ->
          if add then ignore (Hexastore.add_ids h tr) else ignore (Hexastore.remove_ids h tr))
        ops;
      let model = model_apply ops in
      Hexastore.check_invariant h;
      Hexastore.size h = T3set.cardinal model
      && List.for_all
           (fun pat ->
             let expected = T3set.elements (T3set.filter (Pattern.matches pat) model) in
             sorted_triples (Hexastore.lookup h pat) = expected
             && Hexastore.count h pat = List.length expected)
           (all_patterns 11))

let prop_covp_equiv kind name =
  QCheck.Test.make ~name ~count:150 arbitrary_ops (fun ops ->
      let h = Hexastore.create () and c = Covp.create kind in
      List.iter
        (fun (add, tr) ->
          if add then begin
            ignore (Hexastore.add_ids h tr);
            ignore (Covp.add_ids c tr)
          end
          else begin
            ignore (Hexastore.remove_ids h tr);
            ignore (Covp.remove_ids c tr)
          end)
        ops;
      Covp.check_invariant c;
      Covp.size c = Hexastore.size h
      && List.for_all
           (fun pat ->
             sorted_triples (Covp.lookup c pat) = sorted_triples (Hexastore.lookup h pat)
             && Covp.count c pat = Hexastore.count h pat)
           (all_patterns 11))

let prop_covp1_equiv = prop_covp_equiv Covp.Covp1 "covp1 = hexastore on all patterns"
let prop_covp2_equiv = prop_covp_equiv Covp.Covp2 "covp2 = hexastore on all patterns"

let prop_bulk_equiv =
  QCheck.Test.make ~name:"bulk load = incremental load" ~count:150
    (QCheck.make QCheck.Gen.(list_size (int_bound 150) gen_triple))
    (fun triples ->
      let h1 = Hexastore.create () in
      List.iter (fun tr -> ignore (Hexastore.add_ids h1 tr)) triples;
      let h2 = Hexastore.create () in
      ignore (Hexastore.add_bulk_ids h2 (Array.of_list triples));
      Hexastore.check_invariant h2;
      sorted_triples (Hexastore.lookup h1 Pattern.wildcard)
      = sorted_triples (Hexastore.lookup h2 Pattern.wildcard))

let prop_space_bound =
  QCheck.Test.make ~name:"entries per resource occurrence never exceed 5" ~count:150
    (QCheck.make QCheck.Gen.(list_size (int_bound 150) gen_triple))
    (fun triples ->
      let h = Hexastore.create () in
      List.iter (fun tr -> ignore (Hexastore.add_ids h tr)) triples;
      Stats.entries_per_triple h <= 5.0 +. 1e-9)

let prop_lookup_sorted =
  QCheck.Test.make ~name:"single-header lookups stream in sorted order" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_bound 100) gen_triple))
    (fun triples ->
      let h = Hexastore.create () in
      List.iter (fun tr -> ignore (Hexastore.add_ids h tr)) triples;
      let ascending proj seq =
        let l = List.map proj (List.of_seq seq) in
        List.sort compare l = l
      in
      (* o-lists for (s,p) arrive sorted; s-lists for (p,o) arrive sorted. *)
      List.for_all
        (fun (tr : id3) ->
          ascending (fun (x : id3) -> x.o) (Hexastore.lookup h (Pattern.make ~s:tr.s ~p:tr.p ()))
          && ascending (fun (x : id3) -> x.s) (Hexastore.lookup h (Pattern.make ~p:tr.p ~o:tr.o ()))
          && ascending (fun (x : id3) -> x.p) (Hexastore.lookup h (Pattern.make ~s:tr.s ~o:tr.o ())))
        triples)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "hexastore"
    [
      ( "pattern",
        [
          Alcotest.test_case "shapes" `Quick test_pattern_shapes;
          Alcotest.test_case "matches" `Quick test_pattern_matches;
        ] );
      ( "pair_vector",
        [
          Alcotest.test_case "basic" `Quick test_pair_vector_basic;
          Alcotest.test_case "totals" `Quick test_pair_vector_totals;
          Alcotest.test_case "remove" `Quick test_pair_vector_remove;
        ] );
      ( "hexastore",
        [
          Alcotest.test_case "add_mem" `Quick test_hexa_add_mem;
          Alcotest.test_case "all_patterns" `Quick test_hexa_all_patterns_figure1;
          Alcotest.test_case "accessors" `Quick test_hexa_accessors;
          Alcotest.test_case "sharing" `Quick test_hexa_sharing;
          Alcotest.test_case "remove" `Quick test_hexa_remove;
          Alcotest.test_case "remove_reinsert" `Quick test_hexa_remove_reinsert;
          Alcotest.test_case "bulk" `Quick test_hexa_bulk_equals_incremental;
          Alcotest.test_case "term_level" `Quick test_hexa_term_level;
          Alcotest.test_case "space_bound" `Quick test_hexa_space_bound;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "soak" `Slow test_hexa_soak;
        ] );
      ( "covp",
        [
          Alcotest.test_case "basics" `Quick test_covp_basics;
          Alcotest.test_case "matches_hexastore" `Quick test_covp_matches_hexastore;
          Alcotest.test_case "bulk" `Quick test_covp_bulk;
          Alcotest.test_case "restriction" `Quick test_covp_restriction;
          Alcotest.test_case "covp1_po_scan" `Quick test_covp1_po_scan;
        ] );
      ("store_sig", [ Alcotest.test_case "boxing" `Quick test_store_sig ]);
      ( "properties",
        [
          qt prop_hexa_model;
          qt prop_covp1_equiv;
          qt prop_covp2_equiv;
          qt prop_bulk_equiv;
          qt prop_space_bound;
          qt prop_lookup_sorted;
        ] );
    ]
