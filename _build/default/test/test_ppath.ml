(* Tests for property-path expressions: the parser, each operator, the
   closure fixpoint (cycles included), inverse evaluation and all-pairs
   enumeration — cross-checked against a brute-force graph walker. *)

open Query

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ex n = Rdf.Term.iri ("http://example.org/" ^ n)
let exs n = "http://example.org/" ^ n

let ns =
  let t = Rdf.Namespace.create () in
  Rdf.Namespace.add t ~prefix:"ex" ~iri:"http://example.org/";
  t

let parse s = Ppath.parse ~namespaces:ns s

(* A little org chart with a reporting cycle at the top. *)
let graph =
  let t s p o = Rdf.Triple.make (ex s) (ex p) (ex o) in
  [
    t "a" "reportsTo" "b";
    t "b" "reportsTo" "c";
    t "c" "reportsTo" "b";  (* cycle b <-> c *)
    t "d" "reportsTo" "c";
    t "a" "mentors" "d";
    t "b" "worksAt" "hq";
    t "c" "worksAt" "hq";
    t "d" "worksAt" "lab";
  ]

let store () = Hexa.Hexastore.of_triples graph

let id h n = Option.get (Dict.Term_dict.find_term (Hexa.Hexastore.dict h) (ex n))

let names h ivec =
  Vectors.Sorted_ivec.to_list ivec
  |> List.map (fun i ->
         match Dict.Term_dict.decode_term (Hexa.Hexastore.dict h) i with
         | Rdf.Term.Iri iri -> String.sub iri 19 (String.length iri - 19)
         | t -> Rdf.Term.to_string t)
  |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_shapes () =
  check_bool "pred" true (parse "ex:p" = Ppath.Pred (exs "p"));
  check_bool "iri" true (parse "<http://example.org/p>" = Ppath.Pred (exs "p"));
  check_bool "seq" true (parse "ex:a/ex:b" = Ppath.Seq (Pred (exs "a"), Pred (exs "b")));
  check_bool "alt" true (parse "ex:a|ex:b" = Ppath.Alt (Pred (exs "a"), Pred (exs "b")));
  check_bool "inv" true (parse "^ex:a" = Ppath.Inv (Pred (exs "a")));
  check_bool "plus" true (parse "ex:a+" = Ppath.Plus (Pred (exs "a")));
  check_bool "star" true (parse "ex:a*" = Ppath.Star (Pred (exs "a")));
  check_bool "opt" true (parse "ex:a?" = Ppath.Opt (Pred (exs "a")));
  (* precedence: / binds tighter than |, postfix tighter than /. *)
  check_bool "seq in alt" true
    (parse "ex:a/ex:b|ex:c"
    = Ppath.Alt (Seq (Pred (exs "a"), Pred (exs "b")), Pred (exs "c")));
  check_bool "postfix before seq" true
    (parse "ex:a+/ex:b" = Ppath.Seq (Plus (Pred (exs "a")), Pred (exs "b")));
  check_bool "parens" true
    (parse "(ex:a|ex:b)/ex:c"
    = Ppath.Seq (Alt (Pred (exs "a"), Pred (exs "b")), Pred (exs "c")))

let test_parse_errors () =
  let expect s =
    match parse s with
    | exception Ppath.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  expect "";
  expect "ex:a/";
  expect "(ex:a";
  expect "nope:a";
  expect "bareword";
  expect "ex:a )"

let test_parse_pp_roundtrip () =
  List.iter
    (fun s ->
      let p = parse s in
      let printed = Format.asprintf "%a" Ppath.pp p in
      check_bool ("pp parses back: " ^ s) true (parse printed = p))
    [ "ex:a"; "ex:a/ex:b"; "ex:a|ex:b/ex:c"; "^ex:a+"; "(ex:a|ex:b)+"; "ex:a?/ex:b*" ]

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let test_eval_pred_seq () =
  let h = store () in
  Alcotest.(check (list string)) "one hop" [ "b" ]
    (names h (Ppath.eval_from h ~start:(id h "a") (parse "ex:reportsTo")));
  Alcotest.(check (list string)) "two hops" [ "c" ]
    (names h (Ppath.eval_from h ~start:(id h "a") (parse "ex:reportsTo/ex:reportsTo")));
  Alcotest.(check (list string)) "chain to site" [ "hq" ]
    (names h (Ppath.eval_from h ~start:(id h "a") (parse "ex:reportsTo/ex:worksAt")))

let test_eval_alt_opt () =
  let h = store () in
  Alcotest.(check (list string)) "alt" [ "b"; "d" ]
    (names h (Ppath.eval_from h ~start:(id h "a") (parse "ex:reportsTo|ex:mentors")));
  Alcotest.(check (list string)) "opt keeps start" [ "a"; "b" ]
    (names h (Ppath.eval_from h ~start:(id h "a") (parse "ex:reportsTo?")))

let test_eval_closures_with_cycle () =
  let h = store () in
  (* a -> b -> c -> b ... : plus reaches {b, c}; star adds a. *)
  Alcotest.(check (list string)) "plus over cycle" [ "b"; "c" ]
    (names h (Ppath.eval_from h ~start:(id h "a") (parse "ex:reportsTo+")));
  Alcotest.(check (list string)) "star includes start" [ "a"; "b"; "c" ]
    (names h (Ppath.eval_from h ~start:(id h "a") (parse "ex:reportsTo*")));
  (* Everybody's management chain works at hq. *)
  Alcotest.(check (list string)) "chain offices" [ "hq" ]
    (names h (Ppath.eval_from h ~start:(id h "a") (parse "ex:reportsTo+/ex:worksAt")))

let test_eval_inverse () =
  let h = store () in
  Alcotest.(check (list string)) "direct reports of c" [ "b"; "d" ]
    (names h (Ppath.eval_from h ~start:(id h "c") (parse "^ex:reportsTo")));
  Alcotest.(check (list string)) "all under c (inverse closure)" [ "a"; "b"; "c"; "d" ]
    (names h (Ppath.eval_from h ~start:(id h "c") (parse "^ex:reportsTo+")));
  (* eval_into is the mirror image of eval_from on the inverse. *)
  Alcotest.(check (list string)) "into = inverse from" [ "a"; "b"; "c"; "d" ]
    (names h (Ppath.eval_into h (parse "ex:reportsTo+") ~target:(id h "c")))

let test_holds_and_pairs () =
  let h = store () in
  check_bool "holds" true (Ppath.holds h (parse "ex:reportsTo+") ~s:(id h "a") ~o:(id h "c"));
  check_bool "not holds" false (Ppath.holds h (parse "ex:mentors") ~s:(id h "b") ~o:(id h "a"));
  let pairs = Ppath.pairs h (parse "ex:reportsTo/ex:worksAt") in
  check_int "pairs count" 4 (List.length pairs);
  check_bool "pairs sorted uniq" true (List.sort_uniq compare pairs = pairs)

let test_unknown_property_empty () =
  let h = store () in
  check_int "empty" 0
    (Vectors.Sorted_ivec.length (Ppath.eval_from h ~start:(id h "a") (parse "ex:nothing")));
  check_int "empty pairs" 0 (List.length (Ppath.pairs h (parse "ex:nothing")))

(* Brute-force reference evaluator over the triple list. *)
let rec brute h triples start = function
  | Ppath.Pred iri ->
      List.filter_map
        (fun (t : Rdf.Triple.t) ->
          if Rdf.Term.equal t.s start && Rdf.Term.equal t.p (Rdf.Term.iri iri) then Some t.o
          else None)
        triples
  | Ppath.Inv inner ->
      (* nodes y such that start ∈ inner(y): brute over all subjects/objects *)
      let nodes =
        List.sort_uniq Rdf.Term.compare
          (List.concat_map (fun (t : Rdf.Triple.t) -> [ t.s; t.o ]) triples)
      in
      List.filter
        (fun y -> List.exists (Rdf.Term.equal start) (brute h triples y inner))
        nodes
  | Ppath.Seq (a, b) ->
      List.sort_uniq Rdf.Term.compare
        (List.concat_map (fun mid -> brute h triples mid b) (brute h triples start a))
  | Ppath.Alt (a, b) ->
      List.sort_uniq Rdf.Term.compare (brute h triples start a @ brute h triples start b)
  | Ppath.Opt inner -> List.sort_uniq Rdf.Term.compare (start :: brute h triples start inner)
  | Ppath.Star inner ->
      let rec fix reached frontier =
        let next =
          List.sort_uniq Rdf.Term.compare
            (List.concat_map (fun x -> brute h triples x inner) frontier)
        in
        let fresh = List.filter (fun x -> not (List.exists (Rdf.Term.equal x) reached)) next in
        if fresh = [] then reached else fix (reached @ fresh) fresh
      in
      List.sort_uniq Rdf.Term.compare (fix [ start ] [ start ])
  | Ppath.Plus inner ->
      let first = brute h triples start inner in
      List.sort_uniq Rdf.Term.compare
        (List.concat_map (fun x -> brute h triples x (Ppath.Star inner)) first)

let gen_path =
  let open QCheck.Gen in
  let pred = map (fun i -> Ppath.Pred (exs (List.nth [ "reportsTo"; "mentors"; "worksAt" ] (i mod 3)))) (int_bound 2) in
  sized_size (int_bound 3) (fun depth ->
      fix
        (fun self depth ->
          if depth = 0 then pred
          else
            frequency
              [
                (3, pred);
                (2, map2 (fun a b -> Ppath.Seq (a, b)) (self (depth - 1)) (self (depth - 1)));
                (2, map2 (fun a b -> Ppath.Alt (a, b)) (self (depth - 1)) (self (depth - 1)));
                (1, map (fun p -> Ppath.Inv p) (self (depth - 1)));
                (1, map (fun p -> Ppath.Plus p) (self (depth - 1)));
                (1, map (fun p -> Ppath.Star p) (self (depth - 1)));
                (1, map (fun p -> Ppath.Opt p) (self (depth - 1)));
              ])
        depth)

let prop_matches_brute_force =
  QCheck.Test.make ~name:"path evaluation = brute-force walker" ~count:300
    (QCheck.make ~print:(Format.asprintf "%a" Ppath.pp)
       gen_path)
    (fun path ->
      let h = store () in
      List.for_all
        (fun start_name ->
          let got = names h (Ppath.eval_from h ~start:(id h start_name) path) in
          let expected =
            brute h graph (ex start_name) path
            |> List.map (fun t ->
                   match t with
                   | Rdf.Term.Iri iri -> String.sub iri 19 (String.length iri - 19)
                   | t -> Rdf.Term.to_string t)
            |> List.sort_uniq compare
          in
          got = expected)
        [ "a"; "b"; "c"; "d"; "hq" ])

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "ppath"
    [
      ( "parser",
        [
          Alcotest.test_case "shapes" `Quick test_parse_shapes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pp_roundtrip" `Quick test_parse_pp_roundtrip;
        ] );
      ( "eval",
        [
          Alcotest.test_case "pred_seq" `Quick test_eval_pred_seq;
          Alcotest.test_case "alt_opt" `Quick test_eval_alt_opt;
          Alcotest.test_case "closures" `Quick test_eval_closures_with_cycle;
          Alcotest.test_case "inverse" `Quick test_eval_inverse;
          Alcotest.test_case "holds_pairs" `Quick test_holds_and_pairs;
          Alcotest.test_case "unknown" `Quick test_unknown_property_empty;
          qt prop_matches_brute_force;
        ] );
    ]
