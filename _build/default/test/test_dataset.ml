(* Tests for the named-graph dataset layer: graph isolation, the shared
   dictionary, cross-graph (quad-level) lookup, and the RDF merge. *)

open Hexa
open Rdf

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ex n = Term.iri ("http://example.org/" ^ n)
let t s p o = Triple.make (ex s) (ex p) (ex o)
let g1 = ex "graph1"
let g2 = ex "graph2"

let sample () =
  let d = Dataset.create () in
  ignore (Dataset.add d (t "a" "p" "b"));
  ignore (Dataset.add d ~graph:g1 (t "a" "p" "c"));
  ignore (Dataset.add d ~graph:g1 (t "x" "q" "y"));
  ignore (Dataset.add d ~graph:g2 (t "a" "p" "b"));  (* same triple as default *)
  d

let test_isolation () =
  let d = sample () in
  check_int "default size" 1 (Hexastore.size (Dataset.default_graph d));
  check_int "g1 size" 2 (Hexastore.size (Option.get (Dataset.graph d g1)));
  check_int "g2 size" 1 (Hexastore.size (Option.get (Dataset.graph d g2)));
  check_int "total counts duplicates" 4 (Dataset.size d);
  check_bool "unknown graph" true (Dataset.graph d (ex "nope") = None);
  Alcotest.(check (list string)) "graph names" [ "<http://example.org/graph1>"; "<http://example.org/graph2>" ]
    (List.map Term.to_string (Dataset.graph_names d))

let test_shared_dictionary () =
  let d = sample () in
  (* "a" got one id, visible identically from every graph. *)
  let id = Option.get (Dict.Term_dict.find_term (Dataset.dict d) (ex "a")) in
  let in_graph ?graph () =
    List.of_seq (Dataset.lookup d ?graph (Pattern.make ~s:id ()))
  in
  check_int "a in default" 1 (List.length (in_graph ()));
  check_int "a in g1" 1 (List.length (in_graph ~graph:g1 ()));
  check_int "a in g2" 1 (List.length (in_graph ~graph:g2 ()));
  check_int "a in unknown graph" 0 (List.length (in_graph ~graph:(ex "nope") ()))

let test_lookup_all_tags_graphs () =
  let d = sample () in
  let id = Option.get (Dict.Term_dict.find_term (Dataset.dict d) (ex "a")) in
  let hits = List.of_seq (Dataset.lookup_all d (Pattern.make ~s:id ())) in
  check_int "three graphs match" 3 (List.length hits);
  let tags = List.sort compare (List.map (fun (g, _) -> Option.map Term.to_string g) hits) in
  Alcotest.(check (list (option string))) "tags"
    [ None; Some "<http://example.org/graph1>"; Some "<http://example.org/graph2>" ]
    tags

let test_union_store () =
  let d = sample () in
  let merged = Dataset.union_store d in
  (* 4 statements, but a-p-b occurs twice → 3 distinct triples. *)
  check_int "merge deduplicates" 3 (Hexastore.size merged);
  Hexastore.check_invariant merged;
  check_bool "merge shares dict" true (Dataset.dict d == Hexastore.dict merged)

let test_remove_and_drop () =
  let d = sample () in
  check_bool "remove from g1" true (Dataset.remove d ~graph:g1 (t "a" "p" "c"));
  check_bool "remove absent" false (Dataset.remove d ~graph:g1 (t "a" "p" "c"));
  (* Removing from an unknown graph must not create it. *)
  check_bool "remove from unknown" false (Dataset.remove d ~graph:(ex "ghost") (t "a" "p" "b"));
  check_bool "ghost not created" true (Dataset.graph d (ex "ghost") = None);
  check_bool "drop g2" true (Dataset.drop_graph d g2);
  check_bool "drop again" false (Dataset.drop_graph d g2);
  check_int "sizes after" 2 (Dataset.size d)

let test_graph_name_validation () =
  let d = Dataset.create () in
  (try
     ignore (Dataset.get_or_create_graph d (Term.string_literal "bad"));
     Alcotest.fail "literal graph name accepted"
   with Invalid_argument _ -> ());
  (* Blank node graph names are allowed. *)
  ignore (Dataset.get_or_create_graph d (Term.blank "b0"));
  check_int "blank graph exists" 1 (List.length (Dataset.graph_names d));
  check_bool "memory accounted" true (Dataset.memory_words d > 0)

let () =
  Alcotest.run "dataset"
    [
      ( "dataset",
        [
          Alcotest.test_case "isolation" `Quick test_isolation;
          Alcotest.test_case "shared_dict" `Quick test_shared_dictionary;
          Alcotest.test_case "lookup_all" `Quick test_lookup_all_tags_graphs;
          Alcotest.test_case "union" `Quick test_union_store;
          Alcotest.test_case "remove_drop" `Quick test_remove_and_drop;
          Alcotest.test_case "names" `Quick test_graph_name_validation;
        ] );
    ]
