(* Tests for the [workloads] library: the deterministic PRNG, the two
   data-set generators, and — most importantly — answer equality of the
   twelve benchmark queries across Hexastore, COVP1 and COVP2. *)

open Workloads

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Prng                                                                *)
(* ------------------------------------------------------------------ *)

let test_prng_deterministic () =
  let a = Prng.create 1 and b = Prng.create 1 in
  for _ = 1 to 100 do
    check_int "same stream" (Prng.next a) (Prng.next b)
  done;
  let c = Prng.create 2 in
  check_bool "different seed differs" true
    (List.init 10 (fun _ -> Prng.next (Prng.create 1)) <> List.init 10 (fun _ -> Prng.next c))

let test_prng_ranges () =
  let g = Prng.create 3 in
  for _ = 1 to 1000 do
    let x = Prng.int g 10 in
    check_bool "int in range" true (x >= 0 && x < 10);
    let y = Prng.int_in g 5 7 in
    check_bool "int_in range" true (y >= 5 && y <= 7);
    let f = Prng.float g in
    check_bool "float range" true (f >= 0. && f < 1.)
  done;
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int g 0))

let test_prng_weighted () =
  let g = Prng.create 4 in
  let n = 10000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Prng.weighted g [ ("a", 0.9); ("b", 0.1) ] = "a" then incr hits
  done;
  check_bool "weighted ratio roughly 0.9" true
    (abs_float ((float_of_int !hits /. float_of_int n) -. 0.9) < 0.03)

let test_prng_zipf () =
  let g = Prng.create 5 in
  let n = 50 in
  let counts = Array.make n 0 in
  for _ = 1 to 20000 do
    let k = Prng.zipf g ~n ~s:1.1 in
    check_bool "zipf in range" true (k >= 0 && k < n);
    counts.(k) <- counts.(k) + 1
  done;
  check_bool "rank 0 dominates" true (counts.(0) > counts.(5));
  check_bool "heavy head" true (counts.(0) > counts.(n - 1) * 5)

(* ------------------------------------------------------------------ *)
(* LUBM generator                                                      *)
(* ------------------------------------------------------------------ *)

let small_lubm = Lubm.config ~universities:2 ~departments_per_university:2 ~seed:42 ()

let test_lubm_deterministic () =
  let a = Lubm.generate small_lubm and b = Lubm.generate small_lubm in
  check_int "same size" (List.length a) (List.length b);
  check_bool "identical" true (List.for_all2 Rdf.Triple.equal a b);
  let c = Lubm.generate { small_lubm with seed = 43 } in
  check_bool "different seed differs" true
    (not (List.length a = List.length c && List.for_all2 Rdf.Triple.equal a c))

let test_lubm_shape () =
  let triples = Lubm.generate small_lubm in
  check_bool "non-trivial size" true (List.length triples > 5000);
  (* Exactly the 18 predicates of the paper. *)
  let preds =
    List.sort_uniq compare
      (List.map (fun (t : Rdf.Triple.t) -> Rdf.Term.to_string t.p) triples)
  in
  check_int "18 predicates" 18 (List.length preds);
  check_int "predicates list agrees" 18 (List.length Lubm.predicates);
  List.iter
    (fun p -> check_bool ("declared predicate used: " ^ p) true (List.mem ("<" ^ p ^ ">") preds))
    Lubm.predicates

let test_lubm_anchors () =
  let triples = Lubm.generate small_lubm in
  let mentions iri =
    List.exists
      (fun (t : Rdf.Triple.t) ->
        Rdf.Term.equal t.s (Rdf.Term.iri iri) || Rdf.Term.equal t.o (Rdf.Term.iri iri))
      triples
  in
  check_bool "Course10 exists" true (mentions Lubm.course10);
  check_bool "University0 exists" true (mentions (Lubm.university 0));
  check_bool "AssociateProfessor10 exists" true (mentions Lubm.associate_professor10)

let test_lubm_seq_matches_list () =
  let a = Lubm.generate small_lubm in
  let b = List.of_seq (Lubm.generate_seq small_lubm) in
  check_bool "seq = list" true (List.for_all2 Rdf.Triple.equal a b)

(* ------------------------------------------------------------------ *)
(* Barton generator                                                    *)
(* ------------------------------------------------------------------ *)

let small_barton = Barton.config ~subjects:3000 ~seed:7 ()

let test_barton_deterministic () =
  let a = Barton.generate small_barton and b = Barton.generate small_barton in
  check_bool "identical" true (List.for_all2 Rdf.Triple.equal a b)

let test_barton_shape () =
  let triples = Barton.generate small_barton in
  let n = List.length triples in
  check_bool "≈5-6 triples per subject" true (n > 4 * 3000 && n < 8 * 3000);
  let preds =
    List.sort_uniq compare
      (List.map (fun (t : Rdf.Triple.t) -> Rdf.Term.to_string t.p) triples)
  in
  check_int "285 unique properties" Barton.total_properties (List.length preds);
  (* Type is the dominant property (every subject has one). *)
  let count p =
    List.length
      (List.filter (fun (t : Rdf.Triple.t) -> Rdf.Term.equal t.p (Rdf.Term.iri p)) triples)
  in
  check_int "every subject typed" 3000 (count Barton.type_p);
  check_bool "language frequent" true (count Barton.language_p > 1000);
  check_bool "records present" true (count Barton.records_p > 100);
  check_bool "point present" true (count Barton.point_p > 50)

let test_barton_banded_vocabulary () =
  (* Records of one type must use a strict subset of the 285 properties
     (the real catalog's per-type vocabulary trait that BQ2/BQ3 rely on). *)
  let triples = Barton.generate small_barton in
  let text = Rdf.Term.iri Barton.text_type in
  let type_p = Rdf.Term.iri Barton.type_p in
  let text_subjects =
    List.filter_map
      (fun (t : Rdf.Triple.t) ->
        if Rdf.Term.equal t.p type_p && Rdf.Term.equal t.o text then Some t.s else None)
      triples
  in
  let props =
    List.sort_uniq compare
      (List.filter_map
         (fun (t : Rdf.Triple.t) ->
           if List.exists (Rdf.Term.equal t.s) text_subjects then
             Some (Rdf.Term.to_string t.p)
           else None)
         triples)
  in
  check_bool "Text vocabulary is a strict subset" true
    (List.length props < Barton.total_properties / 2)

let test_barton_query_relevant_shape () =
  let triples = Barton.generate small_barton in
  let h = Hexa.Hexastore.of_triples triples in
  let d = Hexa.Hexastore.dict h in
  match Queries_barton.resolve_ids d with
  | None -> Alcotest.fail "vocabulary missing"
  | Some ids ->
      let count pat = Hexa.Hexastore.count h pat in
      check_bool "Text subjects exist" true
        (count (Hexa.Pattern.make ~p:ids.type_p ~o:ids.text ()) > 300);
      check_bool "French subjects exist" true
        (count (Hexa.Pattern.make ~p:ids.language ~o:ids.french ()) > 50);
      check_bool "DLC subjects exist" true
        (count (Hexa.Pattern.make ~p:ids.origin ~o:ids.dlc ()) > 100);
      check_bool "end points exist" true
        (count (Hexa.Pattern.make ~p:ids.point ~o:ids.end_point ()) > 20);
      check_int "28-property set resolves" 28 (List.length (Queries_barton.restriction_28 d))

(* ------------------------------------------------------------------ *)
(* Stores wrapper                                                      *)
(* ------------------------------------------------------------------ *)

let test_stores_wrapper () =
  let dict = Dict.Term_dict.create () in
  let tr = Dict.Term_dict.encode_triple dict
      (Rdf.Triple.make (Rdf.Term.iri "http://x/s") (Rdf.Term.iri "http://x/p") (Rdf.Term.iri "http://x/o"))
  in
  List.iter
    (fun kind ->
      let s = Stores.create ~dict kind in
      check_int (Stores.kind_name kind ^ " loads") 1 (Stores.load s [| tr |]);
      check_int (Stores.kind_name kind ^ " size") 1 (Stores.size s);
      check_bool "memory positive" true (Stores.memory_words s > 0);
      check_int "boxed size" 1 (Hexa.Store_sig.size (Stores.boxed s)))
    Stores.all_kinds;
  Alcotest.(check (list string)) "names" [ "Hexastore"; "COVP1"; "COVP2" ]
    (List.map Stores.kind_name Stores.all_kinds)

(* ------------------------------------------------------------------ *)
(* Query equivalence across the three stores                           *)
(* ------------------------------------------------------------------ *)

let build_all triples =
  let dict = Dict.Term_dict.create () in
  let encoded = Array.of_list (List.map (Dict.Term_dict.encode_triple dict) triples) in
  let stores =
    List.map
      (fun kind ->
        let s = Stores.create ~dict kind in
        ignore (Stores.load s encoded);
        s)
      Stores.all_kinds
  in
  (dict, stores)

let barton_fixture = lazy (build_all (Barton.generate (Barton.config ~subjects:1500 ~seed:11 ())))
let lubm_fixture =
  lazy (build_all (Lubm.generate (Lubm.config ~universities:1 ~departments_per_university:1 ~seed:5 ())))

let assert_all_equal name run =
  let _, stores = Lazy.force barton_fixture in
  match stores with
  | (reference :: others : Stores.t list) ->
      let expected = run reference in
      List.iter
        (fun store ->
          check_bool
            (Printf.sprintf "%s: %s = Hexastore" name (Stores.name store))
            true
            (run store = expected))
        others;
      expected
  | [] -> Alcotest.fail "no stores"

let barton_ids () =
  let dict, _ = Lazy.force barton_fixture in
  match Queries_barton.resolve_ids dict with
  | Some ids -> ids
  | None -> Alcotest.fail "barton ids"

let test_bq1_equal () =
  let ids = barton_ids () in
  let r = assert_all_equal "BQ1" (fun s -> Queries_barton.bq1 s ids) in
  check_bool "BQ1 non-empty" true (r <> []);
  (* counts sum to the number of type triples *)
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 r in
  check_int "BQ1 total = typed subjects" 1500 total

let test_bq2_equal () =
  let ids = barton_ids () in
  let r = assert_all_equal "BQ2" (fun s -> Queries_barton.bq2 s ids) in
  check_bool "BQ2 non-empty" true (r <> []);
  (* Type itself must appear with frequency = |Text subjects| or more. *)
  check_bool "BQ2 includes Type" true (List.mem_assoc ids.type_p r)

let test_bq2_restricted () =
  let dict, _ = Lazy.force barton_fixture in
  let ids = barton_ids () in
  let restrict = Queries_barton.restriction_28 dict in
  let r = assert_all_equal "BQ2_28" (fun s -> Queries_barton.bq2 ~restrict s ids) in
  check_bool "restricted ⊆ restriction" true
    (List.for_all (fun (p, _) -> List.mem p restrict) r);
  let full = assert_all_equal "BQ2full" (fun s -> Queries_barton.bq2 s ids) in
  check_bool "restriction shrinks result" true (List.length r <= List.length full)

let test_bq3_equal () =
  let ids = barton_ids () in
  let r = assert_all_equal "BQ3" (fun s -> Queries_barton.bq3 s ids) in
  (* every reported (o, c) has c > 1 *)
  check_bool "popular objects only" true
    (List.for_all (fun (_, objs) -> List.for_all (fun (_, c) -> c > 1) objs) r)

let test_bq4_equal () =
  let ids = barton_ids () in
  let r3 = assert_all_equal "BQ3" (fun s -> Queries_barton.bq3 s ids) in
  let r4 = assert_all_equal "BQ4" (fun s -> Queries_barton.bq4 s ids) in
  (* BQ4's subject set is a subset of BQ3's, so its frequencies are no
     larger overall. *)
  let total l = List.fold_left (fun acc (_, objs) -> acc + List.length objs) 0 l in
  check_bool "BQ4 no larger than BQ3" true (total r4 <= total r3)

let test_bq5_equal () =
  let ids = barton_ids () in
  let r = assert_all_equal "BQ5" (fun s -> Queries_barton.bq5 s ids) in
  check_bool "BQ5 inferred types are never Text" true
    (List.for_all (fun (_, ty) -> ty <> ids.text) r)

let test_bq6_equal () =
  let ids = barton_ids () in
  let r6 = assert_all_equal "BQ6" (fun s -> Queries_barton.bq6 s ids) in
  let r2 = assert_all_equal "BQ2" (fun s -> Queries_barton.bq2 s ids) in
  (* BQ6 aggregates over a superset of BQ2's subjects. *)
  let freq l p = Option.value ~default:0 (List.assoc_opt p l) in
  check_bool "BQ6 ≥ BQ2 per property" true
    (List.for_all (fun (p, n) -> freq r6 p >= n) r2)

let test_bq7_equal () =
  let ids = barton_ids () in
  let r = assert_all_equal "BQ7" (fun s -> Queries_barton.bq7 s ids) in
  check_bool "BQ7 non-empty" true (r <> []);
  (* Point "end" implies type Date in the generator. *)
  let dict, _ = Lazy.force barton_fixture in
  let date_id = Dict.Term_dict.find_term dict (Rdf.Term.iri Barton.date_type) in
  check_bool "all end-points are Dates" true
    (match date_id with
    | None -> false
    | Some date -> List.for_all (fun (_, _, tys) -> List.mem date tys) r);
  check_bool "encodings present" true (List.for_all (fun (_, enc, _) -> enc <> []) r)

let test_bq_restricted_equal_all () =
  (* The _28 variants must also agree across all three stores, for every
     query that has one. *)
  let dict, _ = Lazy.force barton_fixture in
  let ids = barton_ids () in
  let restrict = Queries_barton.restriction_28 dict in
  ignore (assert_all_equal "BQ3_28" (fun s -> Queries_barton.bq3 ~restrict s ids));
  ignore (assert_all_equal "BQ4_28" (fun s -> Queries_barton.bq4 ~restrict s ids));
  ignore (assert_all_equal "BQ6_28" (fun s -> Queries_barton.bq6 ~restrict s ids));
  (* And restriction can only shrink the reported property sets. *)
  let props l = List.map fst l in
  let subset a b = List.for_all (fun p -> List.mem p b) a in
  let with_r = assert_all_equal "BQ3r" (fun s -> Queries_barton.bq3 ~restrict s ids) in
  let without = assert_all_equal "BQ3f" (fun s -> Queries_barton.bq3 s ids) in
  check_bool "restricted properties ⊆ unrestricted" true (subset (props with_r) (props without))

let test_bq_results_deterministic () =
  (* Re-running a query gives identical results (no hidden mutation of
     the shared index structures by query evaluation). *)
  let ids = barton_ids () in
  let _, stores = Lazy.force barton_fixture in
  List.iter
    (fun store ->
      let a = Queries_barton.bq2 store ids in
      let b = Queries_barton.bq2 store ids in
      check_bool (Stores.name store ^ " bq2 repeatable") true (a = b);
      let a = Queries_barton.bq5 store ids in
      let b = Queries_barton.bq5 store ids in
      check_bool (Stores.name store ^ " bq5 repeatable") true (a = b))
    stores

let test_bq1_sums_match_store () =
  (* The BQ1 histogram must account for exactly the Type triples. *)
  let ids = barton_ids () in
  let _, stores = Lazy.force barton_fixture in
  List.iter
    (fun store ->
      let counts = Queries_barton.bq1 store ids in
      let total = List.fold_left (fun acc (_, n) -> acc + n) 0 counts in
      let expected =
        match store with
        | Stores.Hexa h -> Hexa.Hexastore.count h (Hexa.Pattern.make ~p:ids.type_p ())
        | Stores.Covp c -> Hexa.Covp.count c (Hexa.Pattern.make ~p:ids.type_p ())
      in
      check_int (Stores.name store ^ " bq1 total") expected total)
    stores

let lubm_ids () =
  let dict, _ = Lazy.force lubm_fixture in
  match Queries_lubm.resolve_ids dict with
  | Some ids -> ids
  | None -> Alcotest.fail "lubm ids"

let assert_lubm_equal name run =
  let _, stores = Lazy.force lubm_fixture in
  match stores with
  | reference :: others ->
      let expected = run reference in
      List.iter
        (fun store ->
          check_bool
            (Printf.sprintf "%s: %s = Hexastore" name (Stores.name store))
            true
            (run store = expected))
        others;
      expected
  | [] -> Alcotest.fail "no stores"

let test_lq1_equal () =
  let ids = lubm_ids () in
  let r = assert_lubm_equal "LQ1" (fun s -> Queries_lubm.lq1 s ids) in
  check_bool "LQ1 non-empty (teacher + students)" true (List.length r >= 2)

let test_lq2_equal () =
  let ids = lubm_ids () in
  let r = assert_lubm_equal "LQ2" (fun s -> Queries_lubm.lq2 s ids) in
  check_bool "LQ2 non-empty" true (r <> [])

let test_lq3_equal () =
  let ids = lubm_ids () in
  let out, inc = assert_lubm_equal "LQ3" (fun s -> Queries_lubm.lq3 s ids) in
  check_bool "LQ3 outgoing non-empty" true (out <> []);
  check_bool "LQ3 incoming non-empty (advisees or TA)" true (inc <> [] || out <> []);
  (* outgoing includes the type statement *)
  check_bool "typed" true (List.exists (fun (p, _) -> p = ids.type_p) out)

let test_lq4_equal () =
  let ids = lubm_ids () in
  let r = assert_lubm_equal "LQ4" (fun s -> Queries_lubm.lq4 s ids) in
  check_int "AP10 teaches 2 courses" 2 (List.length r);
  check_bool "every course has people" true (List.for_all (fun (_, ppl) -> ppl <> []) r)

let test_lq5_equal () =
  let ids = lubm_ids () in
  let r = assert_lubm_equal "LQ5" (fun s -> Queries_lubm.lq5 s ids) in
  (* AP10 has three degree universities (single-university config may
     collapse them); each reported university lists degree holders
     including AP10 where applicable. *)
  check_bool "LQ5 non-empty" true (r <> []);
  check_bool "every university has degree holders" true
    (List.for_all (fun (_, ppl) -> ppl <> []) r)

(* ------------------------------------------------------------------ *)
(* Harness                                                             *)
(* ------------------------------------------------------------------ *)

let test_harness_time () =
  let seconds, result = Harness.time ~warmup:0 ~repeats:3 (fun () -> 21 * 2) in
  check_int "result" 42 result;
  check_bool "non-negative" true (seconds >= 0.)

let test_harness_prefixes () =
  let triples = Lubm.generate small_lubm in
  let sized =
    Harness.build_prefixes ~kinds:Stores.all_kinds ~sizes:[ 100; 1000; 100; 10_000_000 ]
      (List.to_seq triples)
  in
  (* duplicates collapse, oversize clamps *)
  check_int "three points" 3 (List.length sized);
  List.iter
    (fun { Harness.n_triples; stores; _ } ->
      List.iter
        (fun s ->
          check_bool
            (Printf.sprintf "%s at %d loaded" (Stores.name s) n_triples)
            true
            (Stores.size s <= n_triples))
        stores)
    sized;
  let last = List.nth sized 2 in
  check_int "clamped to data size" (List.length triples) last.Harness.n_triples

let test_harness_series_output () =
  let points =
    [ { Harness.size = 10; method_ = "Hexastore"; seconds = 0.001 };
      { Harness.size = 10; method_ = "COVP1"; seconds = 0.1 } ]
  in
  let s = Format.asprintf "%a" (Harness.pp_series ~figure:"fig3" ~title:"test") points in
  check_bool "has header" true (String.length s > 0 && String.sub s 0 8 = "# figure");
  check_bool "has rows" true
    (List.exists (fun l -> l = "10 Hexastore 1.000e-03") (String.split_on_char '\n' s))

let () =
  Alcotest.run "workloads"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "ranges" `Quick test_prng_ranges;
          Alcotest.test_case "weighted" `Quick test_prng_weighted;
          Alcotest.test_case "zipf" `Quick test_prng_zipf;
        ] );
      ( "lubm",
        [
          Alcotest.test_case "deterministic" `Quick test_lubm_deterministic;
          Alcotest.test_case "shape" `Quick test_lubm_shape;
          Alcotest.test_case "anchors" `Quick test_lubm_anchors;
          Alcotest.test_case "seq" `Quick test_lubm_seq_matches_list;
        ] );
      ( "barton",
        [
          Alcotest.test_case "deterministic" `Quick test_barton_deterministic;
          Alcotest.test_case "shape" `Quick test_barton_shape;
          Alcotest.test_case "banded_vocabulary" `Quick test_barton_banded_vocabulary;
          Alcotest.test_case "query_shape" `Quick test_barton_query_relevant_shape;
        ] );
      ("stores", [ Alcotest.test_case "wrapper" `Quick test_stores_wrapper ]);
      ( "barton_queries",
        [
          Alcotest.test_case "bq1" `Quick test_bq1_equal;
          Alcotest.test_case "bq2" `Quick test_bq2_equal;
          Alcotest.test_case "bq2_28" `Quick test_bq2_restricted;
          Alcotest.test_case "bq3" `Quick test_bq3_equal;
          Alcotest.test_case "bq4" `Quick test_bq4_equal;
          Alcotest.test_case "bq5" `Quick test_bq5_equal;
          Alcotest.test_case "bq6" `Quick test_bq6_equal;
          Alcotest.test_case "bq7" `Quick test_bq7_equal;
          Alcotest.test_case "restricted_all" `Quick test_bq_restricted_equal_all;
          Alcotest.test_case "deterministic" `Quick test_bq_results_deterministic;
          Alcotest.test_case "bq1_sums" `Quick test_bq1_sums_match_store;
        ] );
      ( "lubm_queries",
        [
          Alcotest.test_case "lq1" `Quick test_lq1_equal;
          Alcotest.test_case "lq2" `Quick test_lq2_equal;
          Alcotest.test_case "lq3" `Quick test_lq3_equal;
          Alcotest.test_case "lq4" `Quick test_lq4_equal;
          Alcotest.test_case "lq5" `Quick test_lq5_equal;
        ] );
      ( "harness",
        [
          Alcotest.test_case "time" `Quick test_harness_time;
          Alcotest.test_case "prefixes" `Quick test_harness_prefixes;
          Alcotest.test_case "series" `Quick test_harness_series_output;
        ] );
    ]
