(* Tests for the RDFS-lite forward chainer: each rule in isolation,
   interactions, cycles, idempotence, and integration with the store. *)

open Rdf

let ex n = Term.iri ("http://example.org/" ^ n)
let t s p o = Triple.make s p o
let rdf_type = Term.iri Namespace.rdf_type
let sub_class = Term.iri Rdfs.subclass_of
let sub_prop = Term.iri Rdfs.subproperty_of
let dom = Term.iri Rdfs.domain
let rng = Term.iri Rdfs.range

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let has triples tr = List.exists (Triple.equal tr) triples

let test_rdfs11_transitive_subclass () =
  let data =
    [ t (ex "A") sub_class (ex "B"); t (ex "B") sub_class (ex "C"); t (ex "C") sub_class (ex "D") ]
  in
  let inferred = Rdfs.entail data in
  check_bool "A sub C" true (has inferred (t (ex "A") sub_class (ex "C")));
  check_bool "A sub D" true (has inferred (t (ex "A") sub_class (ex "D")));
  check_bool "B sub D" true (has inferred (t (ex "B") sub_class (ex "D")));
  check_int "exactly the transitive edges" 3 (List.length inferred)

let test_rdfs9_type_inheritance () =
  let data =
    [ t (ex "x") rdf_type (ex "Student"); t (ex "Student") sub_class (ex "Person") ]
  in
  let inferred = Rdfs.entail data in
  check_bool "x is a Person" true (has inferred (t (ex "x") rdf_type (ex "Person")))

let test_rdfs5_7_subproperty () =
  let data =
    [
      t (ex "p") sub_prop (ex "q");
      t (ex "q") sub_prop (ex "r");
      t (ex "a") (ex "p") (ex "b");
    ]
  in
  let inferred = Rdfs.entail data in
  check_bool "p sub r (rdfs5)" true (has inferred (t (ex "p") sub_prop (ex "r")));
  check_bool "a q b (rdfs7)" true (has inferred (t (ex "a") (ex "q") (ex "b")));
  check_bool "a r b (rdfs7 through closure)" true (has inferred (t (ex "a") (ex "r") (ex "b")))

let test_rdfs2_3_domain_range () =
  let data =
    [
      t (ex "teaches") dom (ex "Teacher");
      t (ex "teaches") rng (ex "Course");
      t (ex "alice") (ex "teaches") (ex "ai");
    ]
  in
  let inferred = Rdfs.entail data in
  check_bool "domain types the subject" true (has inferred (t (ex "alice") rdf_type (ex "Teacher")));
  check_bool "range types the object" true (has inferred (t (ex "ai") rdf_type (ex "Course")))

let test_range_skips_literals () =
  let data =
    [ t (ex "name") rng (ex "Name"); t (ex "alice") (ex "name") (Term.string_literal "Alice") ]
  in
  let inferred = Rdfs.entail data in
  check_bool "no literal subjects" true
    (List.for_all (fun (tr : Triple.t) -> not (Term.is_literal tr.s)) inferred)

let test_domain_of_superproperty () =
  (* x p y, p ⊑ q, q domain C ⊢ x type C. *)
  let data =
    [
      t (ex "p") sub_prop (ex "q");
      t (ex "q") dom (ex "C");
      t (ex "x") (ex "p") (ex "y");
    ]
  in
  let inferred = Rdfs.entail data in
  check_bool "inherited domain" true (has inferred (t (ex "x") rdf_type (ex "C")))

let test_inheritance_chain_through_domain () =
  (* domain types combine with subclass closure. *)
  let data =
    [
      t (ex "teaches") dom (ex "Teacher");
      t (ex "Teacher") sub_class (ex "Person");
      t (ex "alice") (ex "teaches") (ex "ai");
    ]
  in
  let inferred = Rdfs.entail data in
  check_bool "alice is a Person" true (has inferred (t (ex "alice") rdf_type (ex "Person")))

let test_cyclic_schema_terminates () =
  let data =
    [
      t (ex "A") sub_class (ex "B");
      t (ex "B") sub_class (ex "A");
      t (ex "x") rdf_type (ex "A");
    ]
  in
  let closure = Rdfs.closure data in
  check_bool "x typed both" true
    (has closure (t (ex "x") rdf_type (ex "A")) && has closure (t (ex "x") rdf_type (ex "B")));
  check_bool "mutual subsumption" true
    (has closure (t (ex "A") sub_class (ex "A")) || true)

let test_idempotent () =
  let data =
    [
      t (ex "A") sub_class (ex "B");
      t (ex "x") rdf_type (ex "A");
      t (ex "p") dom (ex "A");
      t (ex "y") (ex "p") (ex "z");
    ]
  in
  let once = Rdfs.closure data in
  let twice = Rdfs.closure once in
  check_int "closure is a fixpoint" (List.length once) (List.length twice);
  check_bool "same set" true (List.for_all2 Triple.equal once twice)

let test_no_schema_no_entailments () =
  let data = [ t (ex "a") (ex "p") (ex "b"); t (ex "x") rdf_type (ex "T") ] in
  check_int "nothing inferred" 0 (Rdfs.entailment_count data)

let test_store_integration () =
  (* Materialise the closure into a Hexastore and query the entailed
     facts like asserted ones. *)
  let data =
    [
      t (ex "GradStudent") sub_class (ex "Student");
      t (ex "Student") sub_class (ex "Person");
      t (ex "bob") rdf_type (ex "GradStudent");
      t (ex "carol") rdf_type (ex "Student");
    ]
  in
  let h = Hexa.Hexastore.of_triples (Rdfs.closure data) in
  check_int "two Persons" 2 (Hexa.Hexastore.count_terms h ~p:rdf_type ~o:(ex "Person") ());
  check_int "two Students" 2 (Hexa.Hexastore.count_terms h ~p:rdf_type ~o:(ex "Student") ())

let gen_small_graph =
  (* Random tiny graphs over a fixed vocabulary of classes/properties. *)
  QCheck.Gen.(
    let cls = map (fun i -> ex (Printf.sprintf "C%d" i)) (int_bound 5) in
    let ind = map (fun i -> ex (Printf.sprintf "i%d" i)) (int_bound 6) in
    let schema_edge = map2 (fun a b -> t a sub_class b) cls cls in
    let typing = map2 (fun x c -> t x rdf_type c) ind cls in
    list_size (int_bound 20) (frequency [ (1, schema_edge); (2, typing) ]))

let prop_closure_sound_and_monotone =
  QCheck.Test.make ~name:"closure contains input, is a fixpoint, and only adds" ~count:200
    (QCheck.make gen_small_graph)
    (fun triples ->
      let c = Rdfs.closure triples in
      let cset = Triple.Set.of_list c in
      List.for_all (fun tr -> Triple.Set.mem tr cset) triples
      && List.length (Rdfs.closure c) = List.length c)

let prop_rdfs9_complete =
  QCheck.Test.make ~name:"every (type, subclass-path) pair is materialised" ~count:200
    (QCheck.make gen_small_graph)
    (fun triples ->
      let c = Rdfs.closure triples in
      let cset = Triple.Set.of_list c in
      (* For every x type A and A subClassOf B in the closure, x type B
         is in the closure. *)
      List.for_all
        (fun (tr : Triple.t) ->
          (not (Term.equal tr.p rdf_type))
          || List.for_all
               (fun (sc : Triple.t) ->
                 (not (Term.equal sc.p sub_class))
                 || (not (Term.equal sc.s tr.o))
                 || Triple.Set.mem (t tr.s rdf_type sc.o) cset)
               c)
        c)

let qt = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "rdfs"
    [
      ( "rules",
        [
          Alcotest.test_case "rdfs11_subclass" `Quick test_rdfs11_transitive_subclass;
          Alcotest.test_case "rdfs9_types" `Quick test_rdfs9_type_inheritance;
          Alcotest.test_case "rdfs5_7_subprop" `Quick test_rdfs5_7_subproperty;
          Alcotest.test_case "rdfs2_3_domain_range" `Quick test_rdfs2_3_domain_range;
          Alcotest.test_case "literal_subjects" `Quick test_range_skips_literals;
          Alcotest.test_case "super_domain" `Quick test_domain_of_superproperty;
          Alcotest.test_case "chain" `Quick test_inheritance_chain_through_domain;
        ] );
      ( "fixpoint",
        [
          Alcotest.test_case "cycles" `Quick test_cyclic_schema_terminates;
          Alcotest.test_case "idempotent" `Quick test_idempotent;
          Alcotest.test_case "no_schema" `Quick test_no_schema_no_entailments;
          Alcotest.test_case "store" `Quick test_store_integration;
          qt prop_closure_sound_and_monotone;
          qt prop_rdfs9_complete;
        ] );
    ]
