test/test_workloads.ml: Alcotest Array Barton Dict Format Harness Hexa Lazy List Lubm Option Printf Prng Queries_barton Queries_lubm Rdf Stores String Workloads
