test/test_partial.ml: Advisor Alcotest Array Dict Format Hexa Hexastore List Ordering Partial Pattern QCheck QCheck_alcotest Query Rdf Store_sig String
