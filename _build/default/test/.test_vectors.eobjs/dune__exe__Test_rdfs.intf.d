test/test_rdfs.mli:
