test/test_vectors.mli:
