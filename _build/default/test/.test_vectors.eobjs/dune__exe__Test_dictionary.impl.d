test/test_dictionary.ml: Alcotest Dict Dictionary List Printf QCheck QCheck_alcotest Rdf Term Term_dict Triple
