test/test_dataset.ml: Alcotest Dataset Dict Hexa Hexastore List Option Pattern Rdf Term Triple
