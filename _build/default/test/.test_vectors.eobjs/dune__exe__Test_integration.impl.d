test/test_integration.ml: Alcotest Array Dict Filename Fun Hexa Lazy List Lubm Option Printf Query Rdf Stores Sys Vectors Workloads
