test/test_vectors.ml: Alcotest Dynarray_int Int List Merge Pair_key Printf QCheck QCheck_alcotest Set Sorted_ivec Vectors
