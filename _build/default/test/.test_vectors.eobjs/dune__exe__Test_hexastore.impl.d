test/test_hexastore.ml: Alcotest Array Covp Fmt Format Hexa Hexastore Index List Pair_vector Pattern Printf QCheck QCheck_alcotest Rdf Seq Set Stats Store_sig String Term Triple Vectors
