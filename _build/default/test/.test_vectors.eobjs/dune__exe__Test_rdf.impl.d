test/test_rdf.ml: Alcotest Char Filename Fun Graph List Namespace Ntriples Printf QCheck QCheck_alcotest Rdf Sys Term Triple Turtle
