test/test_ppath.ml: Alcotest Dict Format Hexa List Option Ppath QCheck QCheck_alcotest Query Rdf String Vectors
