test/test_ppath.mli:
