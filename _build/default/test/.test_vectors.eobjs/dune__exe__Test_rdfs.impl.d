test/test_rdfs.ml: Alcotest Hexa List Namespace Printf QCheck QCheck_alcotest Rdf Rdfs Term Triple
