test/test_hexastore.mli:
