test/test_query.ml: Alcotest Algebra Binding Dict Exec Format Hexa List Option Path Planner Printf QCheck QCheck_alcotest Query Rdf Results Sparql Star String Term Triple Vectors
