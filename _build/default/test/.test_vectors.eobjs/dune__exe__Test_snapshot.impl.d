test/test_snapshot.ml: Alcotest Bytes Char Dict Filename Fun Hexa Hexastore In_channel List Pattern Printf QCheck QCheck_alcotest Rdf Snapshot String Sys Term Triple
