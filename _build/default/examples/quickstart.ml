(* Quickstart: the paper's Figure 1 example, end to end.

   Builds a Hexastore from the Figure 1 RDF sample (written in Turtle),
   runs the two SQL queries of Figure 1(b) through the SPARQL engine,
   then pokes at the six indices directly through the term-level API.

   Run with:  dune exec examples/quickstart.exe *)

let figure1_turtle =
  {|@prefix ex: <http://example.org/> .

    ex:ID1 ex:type ex:FullProfessor ;
           ex:teacherOf "AI" ;
           ex:bachelorFrom "MIT" ;
           ex:mastersFrom "Cambridge" ;
           ex:phdFrom "Yale" .

    ex:ID2 ex:type ex:AssocProfessor ;
           ex:worksFor "MIT" ;
           ex:teacherOf "DataBases" ;
           ex:bachelorFrom "Yale" ;
           ex:phdFrom "Stanford" .

    ex:ID3 ex:type ex:GradStudent ;
           ex:advisor ex:ID2 ;
           ex:teachingAssist "AI" ;
           ex:bachelorFrom "Stanford" ;
           ex:mastersFrom "Princeton" .

    ex:ID4 ex:type ex:GradStudent ;
           ex:advisor ex:ID1 ;
           ex:takesCourse "DataBases" ;
           ex:bachelorFrom "Columbia" .|}

let () =
  (* 1. Parse the sample and load it. *)
  let triples = Rdf.Turtle.parse_string figure1_turtle in
  let store = Hexa.Hexastore.of_triples triples in
  Format.printf "Loaded %d triples from Figure 1.@.@." (Hexa.Hexastore.size store);

  let ns = Rdf.Namespace.create () in
  Rdf.Namespace.add ns ~prefix:"ex" ~iri:"http://example.org/";
  let boxed = Hexa.Store_sig.box_hexastore store in
  let run title text =
    Format.printf "--- %s@.%s@." title (String.trim text);
    let q = Query.Sparql.parse ~namespaces:ns text in
    let solutions = Query.Exec.run boxed q.algebra in
    Format.printf "@[<v>%a@]@.@."
      (Query.Results.pp (Hexa.Hexastore.dict store) ~columns:q.projection)
      solutions
  in

  (* 2. Figure 1(b), first query: how does ID2 relate to MIT? *)
  run "Figure 1(b), query 1"
    {| SELECT ?property WHERE { ex:ID2 ?property "MIT" } |};

  (* 3. Figure 1(b), second query: who relates to Stanford the way ID1
        relates to Yale? *)
  run "Figure 1(b), query 2"
    {| SELECT ?subj WHERE { ex:ID1 ?property "Yale" .
                            ?subj ?property "Stanford" } |};

  (* 4. A non-property-bound question (the motivating kind from §3):
        everything attached to the object "MIT", through any property. *)
  Format.printf "--- All statements with object \"MIT\" (osp indexing)@.";
  Hexa.Hexastore.find store ~o:(Rdf.Term.string_literal "MIT") ()
  |> Seq.iter (fun t -> Format.printf "  %s@." (Rdf.Triple.to_string t));
  Format.printf "@.";

  (* 5. The store is fully mutable too. *)
  let new_triple =
    Rdf.Triple.make
      (Rdf.Term.iri "http://example.org/ID4")
      (Rdf.Term.iri "http://example.org/mastersFrom")
      (Rdf.Term.string_literal "ETH")
  in
  ignore (Hexa.Hexastore.add store new_triple);
  Format.printf "After insert: ID4 has %d statements.@."
    (Hexa.Hexastore.count_terms store ~s:(Rdf.Term.iri "http://example.org/ID4") ());
  ignore (Hexa.Hexastore.remove store new_triple);
  Format.printf "After delete: ID4 has %d statements.@.@."
    (Hexa.Hexastore.count_terms store ~s:(Rdf.Term.iri "http://example.org/ID4") ());

  (* 6. Store statistics. *)
  Format.printf "--- Store statistics@.%a@." Hexa.Stats.pp_summary (Hexa.Stats.summary store);
  Format.printf "entries per resource occurrence: %.2f (worst case 5.0)@."
    (Hexa.Stats.entries_per_triple store)
