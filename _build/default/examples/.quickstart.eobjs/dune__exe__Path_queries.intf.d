examples/path_queries.mli:
