examples/quickstart.mli:
