examples/library_catalog.ml: Array Barton Dict Format Harness List Option Queries_barton Rdf Stores Workloads
