examples/path_queries.ml: Dict Format Harness Hexa List Option Printf Prng Query Rdf String Vectors Workloads
