examples/academic.mli:
