examples/index_advisor.mli:
