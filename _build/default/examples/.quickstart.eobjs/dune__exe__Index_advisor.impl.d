examples/index_advisor.ml: Array Dict Format Harness Hexa List Lubm Option Rdf Seq Workloads
