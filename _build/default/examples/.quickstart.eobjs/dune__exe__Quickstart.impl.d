examples/quickstart.ml: Format Hexa Query Rdf Seq String
