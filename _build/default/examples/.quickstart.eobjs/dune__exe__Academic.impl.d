examples/academic.ml: Float Format Harness Hexa List Lubm Printf Queries_lubm Query Rdf Stores Workloads
