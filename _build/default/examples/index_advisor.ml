(* Index selection for a workload (§6's future-work direction).

   §6: "some indices may not contribute to query efficiency based on a
   given workload.  For example, the ops index has been seldom used in
   our experiments."  This example records the pattern shapes an
   application actually issues, asks the advisor which of the six
   orderings they need, builds a partial Hexastore with just those, and
   compares memory and query behaviour with the full sextuple store.

   Run with:  dune exec examples/index_advisor.exe *)

open Workloads

let () =
  let cfg = Lubm.config ~universities:3 ~departments_per_university:3 ~seed:42 () in
  let triples = Lubm.generate cfg in
  let dict = Dict.Term_dict.create () in
  let encoded = Array.of_list (List.map (Dict.Term_dict.encode_triple dict) triples) in

  (* The application's workload: the kind of patterns the LUBM queries
     issue — object-bound exploration, subject lookups, some property
     scans.  Tallied from a (simulated) query log. *)
  let workload =
    [
      (Hexa.Pattern.O, 400);   (* "everything related to X" — LQ1/LQ2 *)
      (Hexa.Pattern.S, 250);   (* "everything about Y" — LQ3 *)
      (Hexa.Pattern.Sp, 120);  (* follow a known property *)
      (Hexa.Pattern.Po, 100);  (* who has degree from U? *)
      (Hexa.Pattern.P, 30);    (* full property scans *)
    ]
  in
  let r = Hexa.Advisor.recommend workload in
  Format.printf "Workload: O=400 S=250 Sp=120 Po=100 P=30 patterns@.";
  Format.printf "Advisor:  %a@.@." Hexa.Advisor.pp_recommendation r;

  (* Build both stores. *)
  let full = Hexa.Hexastore.create ~dict () in
  ignore (Hexa.Hexastore.add_bulk_ids full encoded);
  let partial = Hexa.Partial.create ~dict ~orderings:r.keep () in
  ignore (Hexa.Partial.add_bulk_ids partial encoded);

  let mb w = float_of_int (w * 8) /. (1024. *. 1024.) in
  Format.printf "Full Hexastore:  %7.2f MB (6 orderings)@."
    (mb (Hexa.Hexastore.memory_words full));
  Format.printf "Partial store:   %7.2f MB (%d orderings)  — %.0f%% saved@.@."
    (mb (Hexa.Partial.memory_words partial))
    (List.length r.keep)
    (100. *. Hexa.Advisor.savings_fraction full r.keep);

  (* Queries the workload contains stay native and fast; a shape whose
     ordering was dropped still answers, through the best kept index. *)
  let course10 = Option.get (Dict.Term_dict.find_term dict (Rdf.Term.iri Lubm.course10)) in
  let probe name pat =
    let full_s, n_full =
      Harness.time ~repeats:3 (fun () -> Seq.length (Hexa.Hexastore.lookup full pat))
    in
    let part_s, n_part =
      Harness.time ~repeats:3 (fun () -> Seq.length (Hexa.Partial.lookup partial pat))
    in
    assert (n_full = n_part);
    Format.printf "%-34s %5d rows   full %9.1f us   partial %9.1f us%s@." name n_full
      (full_s *. 1e6) (part_s *. 1e6)
      (if Hexa.Partial.is_native partial (Hexa.Pattern.shape pat) then "  (native)"
       else "  (fallback)")
  in
  probe "everything about Course10 (O)" (Hexa.Pattern.make ~o:course10 ());
  let ap10 = Option.get (Dict.Term_dict.find_term dict (Rdf.Term.iri Lubm.associate_professor10)) in
  probe "everything about AP10 (S)" (Hexa.Pattern.make ~s:ap10 ());
  let takes = Option.get (Dict.Term_dict.find_term dict (Rdf.Term.iri (Lubm.ub "takesCourse"))) in
  probe "AP10's takesCourse objects (Sp)" (Hexa.Pattern.make ~s:ap10 ~p:takes ());
  (* So was NOT in the workload: its sop ordering is dropped, but the
     lookup still answers through spo. *)
  probe "AP10 related to Course10? (So)" (Hexa.Pattern.make ~s:ap10 ~o:course10 ());
  Format.printf "@.All answers identical on both stores; only cost differs.@."
