(* Path expressions (§4.3): following property chains without
   materialised path tables.

   Builds a collaboration graph — people, advisors, employers, cities —
   and follows multi-hop chains such as advisor/worksFor/locatedIn using
   the Hexastore's pso+pos pair, where the first join is a pure
   merge-join and each further hop needs a single sort (§4.3's point
   about avoiding the O(n^2) materialisation of all path expressions).

   Run with:  dune exec examples/path_queries.exe *)

open Workloads

let person k = Rdf.Term.iri (Printf.sprintf "http://social.example.org/person/%d" k)
let org k = Rdf.Term.iri (Printf.sprintf "http://social.example.org/org/%d" k)
let city k = Rdf.Term.iri (Printf.sprintf "http://social.example.org/city/%d" k)
let p name = Rdf.Term.iri ("http://social.example.org/ns#" ^ name)

let build_graph ~people ~orgs ~cities =
  let rng = Prng.create 99 in
  let out = ref [] in
  let emit s pr o = out := Rdf.Triple.make s pr o :: !out in
  for k = 0 to orgs - 1 do
    emit (org k) (p "locatedIn") (city (k mod cities))
  done;
  for k = 0 to people - 1 do
    emit (person k) (p "worksFor") (org (Prng.int rng orgs));
    (* Advisors always have a smaller id: the graph is acyclic. *)
    if k > 0 && Prng.chance rng 0.7 then emit (person k) (p "advisor") (person (Prng.int rng k));
    if Prng.chance rng 0.4 then emit (person k) (p "knows") (person (Prng.int rng people))
  done;
  !out

let () =
  let triples = build_graph ~people:5_000 ~orgs:120 ~cities:12 in
  let h = Hexa.Hexastore.of_triples triples in
  let dict = Hexa.Hexastore.dict h in
  Format.printf "Collaboration graph: %d triples.@.@." (Hexa.Hexastore.size h);

  let pid name = Option.get (Dict.Term_dict.find_term dict (p name)) in
  let show_chain names =
    let path = List.map pid names in
    let seconds, pairs = Harness.time ~repeats:3 (fun () -> Query.Path.follow h path) in
    Format.printf "%-34s %6d pairs, %d joins, %8.3f ms@."
      (String.concat "/" names) (List.length pairs) (Query.Path.join_steps path)
      (seconds *. 1000.)
  in

  Format.printf "--- Property chains (start, end) pair counts@.";
  show_chain [ "advisor" ];
  show_chain [ "advisor"; "worksFor" ];
  show_chain [ "advisor"; "worksFor"; "locatedIn" ];
  show_chain [ "advisor"; "advisor"; "worksFor"; "locatedIn" ];
  Format.printf "@.";

  (* From a single person: where do the people along my advisor chain
     work, and in which cities? *)
  let start = Option.get (Dict.Term_dict.find_term dict (person 4_999)) in
  let reachable = Query.Path.follow_from h ~start [ pid "advisor"; pid "worksFor"; pid "locatedIn" ] in
  Format.printf "--- person/4999's advisor's employer is located in:@.";
  Vectors.Sorted_ivec.iter
    (fun id -> Format.printf "  %s@." (Rdf.Term.to_string (Dict.Term_dict.decode_term dict id)))
    reachable;
  Format.printf "@.";

  (* Full property-path expressions: closures, alternatives, inverses —
     evaluated by frontier search over pso/pos, never materialised. *)
  let ns = Rdf.Namespace.create () in
  Rdf.Namespace.add ns ~prefix:"so" ~iri:"http://social.example.org/ns#";
  let path expr = Query.Ppath.parse ~namespaces:ns expr in
  Format.printf "--- Property-path expressions from person/4999@.";
  List.iter
    (fun expr ->
      let reached = Query.Ppath.eval_from h ~start (path expr) in
      Format.printf "  %-34s %5d nodes reachable@." expr (Vectors.Sorted_ivec.length reached))
    [
      "so:advisor";
      "so:advisor+";                      (* the whole advisor ancestry *)
      "so:advisor*/so:worksFor";          (* my and my ancestors' employers *)
      "(so:advisor|so:knows)+";           (* social closure *)
      "so:advisor+/so:worksFor/so:locatedIn";
    ];
  let boss_city = Query.Ppath.eval_from h ~start (path "so:advisor+/so:worksFor/so:locatedIn") in
  Format.printf "  advisor ancestry works in %d distinct cities@.@."
    (Vectors.Sorted_ivec.length boss_city);

  (* §4.3's quadratic blow-up, made concrete: materialising every
     sub-path of an n-hop chain as its own property would need
     (n-1)(n-2)/2 extra properties; following them on demand needs
     none. *)
  let chain = [ "advisor"; "advisor"; "worksFor"; "locatedIn" ] in
  let n = List.length chain in
  Format.printf
    "A %d-hop chain would need %d materialised path properties; the Hexastore follows it \
     with %d joins instead.@."
    n
    ((n - 1) * (n - 2) / 2)
    (n - 1)
