(* Library-catalog scenario: a Longwell-style browsing session over the
   Barton-like data set (the workload behind the paper's BQ1–BQ7).

   A faceted RDF browser starts from the type histogram, narrows to one
   type, inspects which properties its records use, then drills into a
   facet — exactly the BQ1→BQ2→BQ4 progression — and each step here runs
   on all three competing stores for comparison.

   Run with:  dune exec examples/library_catalog.exe *)

open Workloads

let () =
  let cfg = Barton.config ~subjects:20_000 ~seed:7 () in
  let triples = Barton.generate cfg in
  let dict = Dict.Term_dict.create () in
  let encoded = Array.of_list (List.map (Dict.Term_dict.encode_triple dict) triples) in
  let stores =
    List.map
      (fun kind ->
        let s = Stores.create ~dict kind in
        ignore (Stores.load s encoded);
        s)
      Stores.all_kinds
  in
  Format.printf "Catalog: %d triples, %d distinct properties.@.@." (Array.length encoded)
    Barton.total_properties;

  let ids = Option.get (Queries_barton.resolve_ids dict) in
  let term id = Rdf.Term.to_string (Dict.Term_dict.decode_term dict id) in
  let timed_on_all title run pp_result =
    Format.printf "--- %s@." title;
    let result = ref None in
    List.iter
      (fun store ->
        let seconds, r = Harness.time ~warmup:1 ~repeats:3 (fun () -> run store) in
        if !result = None then result := Some r;
        Format.printf "%-10s %8.3f ms@." (Stores.name store) (seconds *. 1000.))
      stores;
    (match !result with Some r -> pp_result r | None -> ());
    Format.printf "@."
  in

  (* Step 1 — the landing page: counts of each record type (BQ1). *)
  timed_on_all "Type histogram (BQ1)"
    (fun store -> Queries_barton.bq1 store ids)
    (fun counts ->
      let top = List.sort (fun (_, a) (_, b) -> compare b a) counts in
      List.iteri
        (fun i (ty, n) -> if i < 5 then Format.printf "  %-60s %6d@." (term ty) n)
        top);

  (* Step 2 — narrow to Text records: which properties do they use? (BQ2) *)
  timed_on_all "Properties of Type:Text records (BQ2)"
    (fun store -> Queries_barton.bq2 store ids)
    (fun freqs ->
      Format.printf "  %d properties in the Text vocabulary (of %d total)@." (List.length freqs)
        Barton.total_properties);

  (* Step 3 — drill into French-language Text records (BQ4). *)
  timed_on_all "Popular facet values among French Text records (BQ4)"
    (fun store -> Queries_barton.bq4 store ids)
    (fun popular ->
      Format.printf "  %d properties with repeated values@." (List.length popular));

  (* Step 4 — the inference view (BQ5): what do DLC records record? *)
  timed_on_all "Inferred types of recorded resources (BQ5)"
    (fun store -> Queries_barton.bq5 store ids)
    (fun inferred -> Format.printf "  %d (subject, inferred type) pairs@." (List.length inferred));

  (* Step 5 — what does a Point value of "end" mean? (BQ7) *)
  timed_on_all "Resources with Point \"end\" (BQ7)"
    (fun store -> Queries_barton.bq7 store ids)
    (fun rows ->
      Format.printf "  %d resources; all of type Date — so \"end\" marks end dates@."
        (List.length rows));

  (* The 28-property assumption of [5]: same browsing step, pre-selected
     properties only. *)
  let restrict = Queries_barton.restriction_28 dict in
  Format.printf "--- BQ2 under the 28-property assumption@.";
  List.iter
    (fun store ->
      let seconds, r =
        Harness.time ~warmup:1 ~repeats:3 (fun () -> Queries_barton.bq2 ~restrict store ids)
      in
      Format.printf "%-10s %8.3f ms (%d properties reported)@." (Stores.name store)
        (seconds *. 1000.) (List.length r))
    stores
