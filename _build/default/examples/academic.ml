(* Academic-network scenario: the LUBM domain the paper's §5.1.2 models.

   Generates a small university data set, loads it into a Hexastore, and
   answers registrar-style questions through the SPARQL engine — ending
   with the kind of object-bound, property-unbound queries (§3) that the
   sextuple indexing exists for, timed against the COVP1 baseline.

   Run with:  dune exec examples/academic.exe *)

open Workloads

let () =
  let cfg = Lubm.config ~universities:2 ~departments_per_university:2 ~seed:42 () in
  let triples = Lubm.generate cfg in
  let store = Hexa.Hexastore.of_triples triples in
  Format.printf "Generated %d LUBM-like triples (%d universities).@.@."
    (Hexa.Hexastore.size store) cfg.universities;

  let ns = Rdf.Namespace.default () in
  let boxed = Hexa.Store_sig.box_hexastore store in
  let dict = Hexa.Hexastore.dict store in
  let run title text =
    Format.printf "--- %s@." title;
    let q = Query.Sparql.parse ~namespaces:ns text in
    let seconds, solutions =
      Harness.time ~warmup:1 ~repeats:3 (fun () -> Query.Exec.run boxed q.algebra)
    in
    Format.printf "@[<v>%a@]@." (Query.Results.pp dict ~columns:q.projection) solutions;
    Format.printf "(%.3f ms)@.@." (seconds *. 1000.)
  in

  run "Professors heading a department"
    {| SELECT ?prof ?dept WHERE { ?prof ub:headOf ?dept } ORDER BY ?prof LIMIT 4 |};

  run "Course load of AssociateProfessor10"
    (Printf.sprintf
       {| SELECT ?course WHERE { <%s> ub:teacherOf ?course } |}
       Lubm.associate_professor10);

  run "Students per course of AssociateProfessor10 (grouped)"
    (Printf.sprintf
       {| SELECT ?course (COUNT(?student) AS ?n)
          WHERE { <%s> ub:teacherOf ?course . ?student ub:takesCourse ?course }
          GROUP BY ?course ORDER BY DESC(?n) |}
       Lubm.associate_professor10);

  run "Advisor chains ending at a full professor"
    {| SELECT ?student ?advisor
       WHERE { ?student ub:advisor ?advisor . ?advisor a ub:FullProfessor }
       LIMIT 5 |};

  run "People with a doctorate from University0 who also teach"
    (Printf.sprintf
       {| SELECT DISTINCT ?person WHERE { ?person ub:doctoralDegreeFrom <%s> .
                                          ?person ub:teacherOf ?c } LIMIT 5 |}
       (Lubm.university 0));

  (* The paper's motivating query shape: object-bound, property-unbound.
     Compare the Hexastore's osp access with COVP1's scan over every
     property table (LQ2's plans, §5.2.2). *)
  Format.printf "--- Everything related to University0, Hexastore vs COVP1@.";
  let covp1 = Hexa.Covp.of_triples Hexa.Covp.Covp1 triples in
  (match
     ( Queries_lubm.resolve_ids dict,
       Queries_lubm.resolve_ids (Hexa.Covp.dict covp1) )
   with
  | Some ids_h, Some ids_c ->
      let hexa_s, answers =
        Harness.time ~repeats:5 (fun () -> Queries_lubm.lq2 (Stores.Hexa store) ids_h)
      in
      let covp_s, _ =
        Harness.time ~repeats:5 (fun () -> Queries_lubm.lq2 (Stores.Covp covp1) ids_c)
      in
      Format.printf "%d related resources.@." (List.length answers);
      Format.printf "Hexastore (one osp lookup):        %8.3f ms@." (hexa_s *. 1000.);
      Format.printf "COVP1 (scan all property tables):  %8.3f ms  (%.0fx)@." (covp_s *. 1000.)
        (covp_s /. Float.max hexa_s 1e-9)
  | _ -> Format.printf "vocabulary not resolved@.")
