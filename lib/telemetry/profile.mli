(** Per-query profiling and the slow-query log.

    {!snapshot} captures the metrics registry (every counter, name
    sorted) together with the GC's allocation counters and the clock;
    {!diff} turns two snapshots into a {!delta} — wall seconds,
    minor/major words allocated and the non-zero counter movements.
    {!profiled} wraps a thunk in the pair.

    Counter deltas are only as complete as the instrumentation that
    feeds them: with [Telemetry.enabled] off the registry does not move
    and a delta degrades gracefully to wall time + GC words.

    The {b slow-query log} keeps the last {!max_slow_entries} queries
    whose wall time crossed {!slow_threshold_s} (default [infinity];
    export [HEXASTORE_SLOW_MS] or call {!set_threshold_s}).  Each entry
    retains the rendered [--analyze] plan — supplied lazily, so fast
    queries never pay for it — and the counter deltas; crossing the
    threshold also emits an {!Events.Slow_query} into the flight
    recorder. *)

type snapshot = {
  at : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  counters : (string * int) list;
}

type delta = {
  wall_s : float;
  alloc_minor_words : float;
  alloc_major_words : float;
  alloc_words : float;  (** minor + major - promoted: total words allocated *)
  counters : (string * int) list;  (** non-zero deltas, name-sorted *)
}

val snapshot : unit -> snapshot

val diff : snapshot -> snapshot -> delta

val profiled : (unit -> 'a) -> 'a * delta
(** [profiled f] runs [f] between two snapshots. *)

val counter_delta : delta -> string -> int
(** A single counter's movement ([0] when absent). *)

val counter_total : ?prefix:string -> delta -> int
(** Sum of deltas whose name starts with [prefix] (default: all). *)

val delta_to_json : delta -> Json.t

val pp_delta : Format.formatter -> delta -> unit

(** {2 Slow-query log} *)

type slow_query = {
  sq_label : string;
  sq_at : float;
  sq_delta : delta;
  sq_plan : string;  (** rendered [--analyze] tree *)
}

val max_slow_entries : int

val set_threshold_s : float -> unit

val slow_threshold_s : unit -> float

val note : label:string -> plan:(unit -> string) -> delta -> unit
(** Log [delta] under [label] if it crossed the threshold; [plan] is
    forced only then. *)

val slow_queries : unit -> slow_query list
(** Retained entries, oldest first. *)

val slow_count : unit -> int
(** Total threshold crossings, including rotated-out entries. *)

val clear_slow_log : unit -> unit

val slow_query_to_json : slow_query -> Json.t

val slow_log_to_json : unit -> Json.t

val pp_slow_log : Format.formatter -> unit -> unit
