(* Counter and gauge cells are [Atomic.t] so instrumented code running
   on pool domains (Query.Par) can bump them without a lock and without
   losing updates; the registry itself is still only written by the
   one-time module-init registrations. *)

type counter = {
  c_name : string;
  c_value : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_value : float Atomic.t;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

(* The registry table is guarded by [registry_lock]: most registrations
   still happen at module init of each instrumented layer, but the pool
   registers per-lane task counters lazily from whichever domain first
   runs a task on that lane, and the profiler / monitor snapshot the
   table from arbitrary domains — a Hashtbl resize racing either would
   corrupt the buckets.  The hot path (incr/add/set/observe) holds
   direct metric pointers and never touches the table, so the lock
   costs nothing per event. *)
let registry_lock = Mutex.create ()

let registry_locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

(* domain-safety: guarded — every lookup/insert/iteration holds
   [registry_lock]; lazy registrations (pool lane counters) and
   snapshot readers (profiler, monitor) run on arbitrary domains. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let kind_name = function Counter _ -> "counter" | Gauge _ -> "gauge" | Histogram _ -> "histogram"

let register name make project =
  registry_locked (fun () ->
      match Hashtbl.find_opt registry name with
      | Some existing -> (
          match project existing with
          | Some m -> m
          | None ->
              invalid_arg
                (Printf.sprintf "Telemetry.Metrics: %S is already registered as a %s" name
                   (kind_name existing)))
      | None ->
          let m = make () in
          Hashtbl.add registry name
            (match m with `C c -> Counter c | `G g -> Gauge g | `H h -> Histogram h);
          m)

let counter name =
  match
    register name
      (fun () -> `C { c_name = name; c_value = Atomic.make 0 })
      (function Counter c -> Some (`C c) | _ -> None)
  with
  | `C c -> c
  | _ -> assert false

let gauge name =
  match
    register name
      (fun () -> `G { g_name = name; g_value = Atomic.make 0. })
      (function Gauge g -> Some (`G g) | _ -> None)
  with
  | `G g -> g
  | _ -> assert false

let histogram name =
  match
    register name
      (fun () -> `H (Histogram.make name))
      (function Histogram h -> Some (`H h) | _ -> None)
  with
  | `H h -> h
  | _ -> assert false

(* --- hot-path mutation ------------------------------------------------- *)

let incr c =
  if !Config.enabled then begin
    Config.note_activity ();
    Atomic.incr c.c_value
  end

let add c n =
  if !Config.enabled then begin
    Config.note_activity ();
    ignore (Atomic.fetch_and_add c.c_value n)
  end

let set g v =
  if !Config.enabled then begin
    Config.note_activity ();
    Atomic.set g.g_value v
  end

let observe = Histogram.observe

(* --- reading ----------------------------------------------------------- *)

let value c = Atomic.get c.c_value

let gauge_value g = Atomic.get g.g_value

let counter_name c = c.c_name

let gauge_name g = g.g_name

let fold f acc =
  (* Snapshot the table under the lock, then fold outside it so [f] can
     itself register metrics (or take the lock) without deadlocking. *)
  let items =
    registry_locked (fun () -> Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  let items = List.sort (fun (a, _) (b, _) -> compare a b) items in
  List.fold_left (fun acc (name, m) -> f acc name m) acc items

let snapshot_counters ?(prefix = "") () =
  fold
    (fun acc name m ->
      match m with
      | Counter c when String.starts_with ~prefix name -> (name, value c) :: acc
      | _ -> acc)
    []
  |> List.rev

let reset_all () =
  registry_locked (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0.
          | Histogram h -> Histogram.reset h)
        registry)

(* --- export ------------------------------------------------------------ *)

let to_json () =
  let counters, gauges, histograms =
    fold
      (fun (cs, gs, hs) name m ->
        match m with
        | Counter c -> ((name, Json.Int (value c)) :: cs, gs, hs)
        | Gauge g -> (cs, (name, Json.Float (gauge_value g)) :: gs, hs)
        | Histogram h -> (cs, gs, (name, Histogram.to_json h) :: hs))
      ([], [], [])
  in
  Json.Obj
    [
      ("counters", Json.Obj (List.rev counters));
      ("gauges", Json.Obj (List.rev gauges));
      ("histograms", Json.Obj (List.rev histograms));
    ]

let pp_report ppf () =
  Format.fprintf ppf "@[<v>";
  let header = ref None in
  let section name =
    if !header <> Some name then begin
      if !header <> None then Format.fprintf ppf "@,";
      Format.fprintf ppf "%s:@," name;
      header := Some name
    end
  in
  fold
    (fun () name m ->
      match m with
      | Counter c ->
          section "counters";
          Format.fprintf ppf "  %-48s %d@," name (value c)
      | Gauge g ->
          section "gauges";
          Format.fprintf ppf "  %-48s %g@," name (gauge_value g)
      | Histogram h ->
          section "histograms";
          Format.fprintf ppf "  @[<v>%-48s %a@]@," name Histogram.pp h)
    ();
  Format.fprintf ppf "@]"
