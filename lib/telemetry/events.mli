(** The flight recorder: an always-on bounded ring of typed events.

    Where {!Metrics} aggregates and {!Trace} times, the recorder
    *narrates*: query boundaries, plan choices, delta flushes, snapshot
    IO and slow queries land here as timestamped events so that the last
    ~1k operational steps can be dumped after the fact — even when full
    telemetry ([Telemetry.enabled]) was never switched on.

    The ring is fixed-size (default 1024): emission is one small record
    allocation plus an array store, old events are overwritten, and
    overwrites are counted as {!dropped} rather than silently lost.
    Emission is gated only on {!enabled} (default on; export
    [HEXASTORE_EVENTS=0] to silence it) and deliberately never touches
    [Config.note_activity]. *)

type kind =
  | Query_start of { label : string }
  | Query_end of {
      label : string;
      rows : int;
    }
  | Plan_choice of {
      label : string;
      detail : string;  (** per-step join strategies, e.g. ["scan;merge(?y)"] *)
    }
  | Delta_flush of {
      pending : int;
      rebuild : bool;
      auto : bool;
    }
  | Delta_compact of { pending : int }
  | Snapshot_save of {
      path : string;
      triples : int;
    }
  | Snapshot_load of {
      path : string;
      triples : int;
    }
  | Slow_query of {
      label : string;
      wall_s : float;
      plan : string;  (** rendered [--analyze] tree *)
    }
  | Par_fanout of {
      label : string;
      planned : int;   (** ranges the planner asked for ([par=N]) *)
      achieved : int;  (** ranges the store actually split into; 0 = split refused *)
      width : int;     (** pool width at execution time *)
    }

type event = {
  seq : int;  (** 0-based emission index; never wraps *)
  at : float; (** {!Clock.now} at emission *)
  dom : int;  (** id of the emitting domain — attributes entries from
                  parallel runs to their lane *)
  kind : kind;
}

val enabled : bool ref
(** Recorder gate, independent of [Telemetry.enabled].  Defaults to
    [true] unless [HEXASTORE_EVENTS=0] (or [false]/[off]) is exported. *)

val emit : kind -> unit
(** Record one event (no-op when {!enabled} is off). *)

val dump : unit -> event list
(** Retained events, oldest first. *)

val recorded : unit -> int
(** Total emissions since the last {!clear} / {!set_capacity}. *)

val dropped : unit -> int
(** Events overwritten because the ring was full. *)

val capacity : unit -> int

val set_capacity : int -> unit
(** Resize the ring (min 1).  Clears retained events. *)

val clear : unit -> unit

val kind_name : kind -> string
(** Stable dotted tag, e.g. ["delta.flush"]. *)

val event_to_json : event -> Json.t

val to_json : unit -> Json.t
(** [{"capacity", "recorded", "dropped", "events": [...]}]. *)

val pp : Format.formatter -> unit -> unit
(** One line per retained event, timestamps relative to the oldest. *)

val pp_block : Format.formatter -> string -> unit
(** Print a multi-line string verbatim inside a [@[<v>]] box — used for
    embedded plan trees, where [pp_print_text] would reflow away the
    indentation. *)
