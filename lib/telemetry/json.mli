(** A minimal JSON document model, encoder and parser.

    Hand-rolled so the telemetry exports ({!Metrics.to_json}, the
    EXPLAIN JSON shape, the [BENCH_*.json] benchmark records) carry no
    new dependency.  The encoder emits standards-conformant JSON
    (non-finite floats become [null]); the parser accepts the documents
    the encoder produces plus ordinary interchange JSON (BMP [\u]
    escapes; surrogate pairs are not reassembled). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** Serialize; [indent] (default 2) of 0 gives a compact single line. *)

val pp : Format.formatter -> t -> unit

val of_string : ?max_depth:int -> string -> (t, string) result
(** Parse a complete document; trailing non-whitespace is an error, as
    are raw (unescaped) control characters inside string literals.
    Containers nested deeper than [max_depth] levels (default 512) are
    rejected with [Error] rather than risking stack overflow on
    adversarial input. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val path : string list -> t -> t option
(** Nested {!member}. *)

val to_float_opt : t -> float option
(** Numeric value of an [Int] or [Float] node. *)
