(** The process-wide telemetry gate.

    Every hot-path hook in the instrumented layers compiles down to one
    read of {!enabled} plus a branch when the flag is off; no counter is
    bumped, no histogram bucket touched, no span recorded, and nothing is
    allocated.  The flag defaults to [false] and can be switched on for a
    process by exporting [HEXASTORE_TELEMETRY=1] (or [true]/[on]), or at
    runtime through [Telemetry.enabled]. *)

val enabled : bool ref
(** Gate for all metric/trace mutation.  Defaults to [false] unless the
    [HEXASTORE_TELEMETRY] environment variable says otherwise. *)

val activity_count : unit -> int
(** Number of metric/trace mutations that have actually executed since
    process start.  Mirrors [Debug.validation_count]: lets tests prove
    the hooks are off by default without inspecting every metric. *)

val note_activity : unit -> unit
(** Called by the metric primitives when a mutation runs; exposed for the
    sibling modules only. *)
