(** Telemetry: the observability layer.

    A process-wide metrics registry (monotonic counters, gauges,
    log-spaced histograms — {!Metrics}, {!Histogram}), a span tracer
    with an injectable clock ({!Trace}, {!Clock}), and a dependency-free
    JSON document model ({!Json}) used for every machine-readable export
    (the registry dump, EXPLAIN plans, [BENCH_*.json]).

    Everything except the flight recorder is gated on {!enabled}: off
    (the default) every hook in the instrumented layers costs one flag
    read and allocates nothing; on ([HEXASTORE_TELEMETRY=1] or setting
    the ref), counters, scan-size histograms and operator spans are
    collected and can be exported with {!report} / {!to_json}.

    On top sit the observability services: {!Events}, the always-on
    bounded flight recorder of operational events (its own gate,
    [HEXASTORE_EVENTS=0] to silence); {!Profile}, per-query
    registry+GC snapshot/diff feeding a slow-query log; {!Export},
    Chrome trace-event JSON for spans (per-domain lanes) and Prometheus
    text exposition (with {!Histogram.quantile} estimates) for the
    registry; and {!Monitor}, registry snapshots diffed into
    rate-computed views for live watching ([hexastore top]). *)

module Config = Config
module Clock = Clock
module Json = Json
module Histogram = Histogram
module Metrics = Metrics
module Trace = Trace
module Events = Events
module Profile = Profile
module Export = Export
module Monitor = Monitor

val enabled : bool ref
(** The master gate ({!Config.enabled}); defaults to [false] unless
    [HEXASTORE_TELEMETRY=1] (or [true]/[on]) is exported. *)

val activity_count : unit -> int
(** {!Config.activity_count}: proves in tests that no hook ran. *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the gate forced to a value, restoring it afterwards. *)

val report : Format.formatter -> unit -> unit
(** Human-readable dump: the registry, the slow-query log, the span
    buffer, then the flight recorder. *)

val to_json : unit -> Json.t
(** [{"metrics": ..., "trace": ..., "events": ..., "slow_queries": ...}]. *)

val reset : unit -> unit
(** Zero all metrics, clear the trace buffer, the flight recorder and
    the slow-query log. *)
