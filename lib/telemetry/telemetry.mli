(** Telemetry: the observability layer.

    A process-wide metrics registry (monotonic counters, gauges,
    log-spaced histograms — {!Metrics}, {!Histogram}), a span tracer
    with an injectable clock ({!Trace}, {!Clock}), and a dependency-free
    JSON document model ({!Json}) used for every machine-readable export
    (the registry dump, EXPLAIN plans, [BENCH_*.json]).

    Everything is gated on {!enabled}: off (the default) every hook in
    the instrumented layers costs one flag read and allocates nothing;
    on ([HEXASTORE_TELEMETRY=1] or setting the ref), counters, scan-size
    histograms and operator spans are collected and can be exported with
    {!report} / {!to_json}. *)

module Config = Config
module Clock = Clock
module Json = Json
module Histogram = Histogram
module Metrics = Metrics
module Trace = Trace

val enabled : bool ref
(** The master gate ({!Config.enabled}); defaults to [false] unless
    [HEXASTORE_TELEMETRY=1] (or [true]/[on]) is exported. *)

val activity_count : unit -> int
(** {!Config.activity_count}: proves in tests that no hook ran. *)

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run with the gate forced to a value, restoring it afterwards. *)

val report : Format.formatter -> unit -> unit
(** Human-readable dump: the registry, then the span buffer. *)

val to_json : unit -> Json.t
(** [{"metrics": ..., "trace": ...}]. *)

val reset : unit -> unit
(** Zero all metrics and clear the trace buffer. *)
