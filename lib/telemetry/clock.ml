type source = unit -> float

let wall : source = Unix.gettimeofday

(* domain-safety: test-only — defaults to the wall clock; reassigned
   only by tests injecting deterministic sources ([set_source] /
   [with_source]), never on production paths. *)
let source = ref wall

let now () = !source ()

let set_source s = source := s

let reset () = source := wall

let with_source s f =
  let saved = !source in
  source := s;
  Fun.protect ~finally:(fun () -> source := saved) f

let fixed t : source = fun () -> t

let ticking ?(start = 0.) ?(step = 1.) () : source =
  let t = ref (start -. step) in
  fun () ->
    t := !t +. step;
    !t
