(* Per-query profiling: snapshot/diff of the metrics registry plus GC
   allocation counters, and the slow-query log fed from those diffs.

   The profiler does not know about query plans — callers (the CLI, the
   bench) render the EXPLAIN tree themselves and hand it over as a
   thunk, so the expensive [--analyze] string is only materialised for
   queries that actually cross the slow threshold. *)

type snapshot = {
  at : float;
  minor_words : float;
  major_words : float;
  promoted_words : float;
  counters : (string * int) list; (* name-sorted, from Metrics.snapshot_counters *)
}

type delta = {
  wall_s : float;
  alloc_minor_words : float;
  alloc_major_words : float;
  alloc_words : float;
  counters : (string * int) list; (* non-zero counter deltas, name-sorted *)
}

(* Safe to call from any domain: [Metrics.snapshot_counters] walks the
   registry under its lock (so a racing lazy registration — e.g. a pool
   lane counter — cannot tear the listing) and the counter cells it
   reads are atomics.  GC numbers are the calling domain's own. *)
let snapshot () =
  let st = Gc.quick_stat () in
  {
    at = Clock.now ();
    (* Not [st.minor_words]: quick_stat omits words allocated since the
       last minor collection, which is exactly the window a per-query
       profile cares about.  [Gc.minor_words] reads the live pointer. *)
    minor_words = Gc.minor_words ();
    major_words = st.Gc.major_words;
    promoted_words = st.Gc.promoted_words;
    counters = Metrics.snapshot_counters ();
  }

(* Merge two name-sorted counter lists into non-zero deltas.  Counters
   registered between the snapshots (absent from [before]) count from
   zero; counters only in [before] cannot shrink (monotonic), so the
   symmetric case keeps the -v_a delta for honesty under resets. *)
let diff_counters before after =
  let rec go a b acc =
    match (a, b) with
    | [], [] -> List.rev acc
    | [], (n, v) :: b -> go [] b (if v <> 0 then (n, v) :: acc else acc)
    | (n, v) :: a, [] -> go a [] (if v <> 0 then (n, -v) :: acc else acc)
    | ((na, va) :: a' as a), ((nb, vb) :: b' as b) ->
        let c = compare na nb in
        if c = 0 then go a' b' (if vb - va <> 0 then (na, vb - va) :: acc else acc)
        else if c < 0 then go a' b (if va <> 0 then (na, -va) :: acc else acc)
        else go a b' (if vb <> 0 then (nb, vb) :: acc else acc)
  in
  go before after []

let diff before after =
  let minor = after.minor_words -. before.minor_words in
  let major = after.major_words -. before.major_words in
  let promoted = after.promoted_words -. before.promoted_words in
  {
    wall_s = after.at -. before.at;
    alloc_minor_words = minor;
    alloc_major_words = major;
    alloc_words = minor +. major -. promoted;
    counters = diff_counters before.counters after.counters;
  }

let profiled f =
  let before = snapshot () in
  let x = f () in
  (x, diff before (snapshot ()))

let counter_delta d name = match List.assoc_opt name d.counters with Some v -> v | None -> 0

let counter_total ?(prefix = "") d =
  List.fold_left
    (fun acc (name, v) -> if String.starts_with ~prefix name then acc + v else acc)
    0 d.counters

let delta_to_json d =
  Json.Obj
    [
      ("wall_s", Json.Float d.wall_s);
      ("alloc_minor_words", Json.Float d.alloc_minor_words);
      ("alloc_major_words", Json.Float d.alloc_major_words);
      ("alloc_words", Json.Float d.alloc_words);
      ("counters", Json.Obj (List.map (fun (n, v) -> (n, Json.Int v)) d.counters));
    ]

let pp_delta ppf d =
  Format.fprintf ppf "@[<v>wall=%.3fms alloc=%.0fw (minor=%.0f major=%.0f)" (d.wall_s *. 1e3)
    d.alloc_words d.alloc_minor_words d.alloc_major_words;
  List.iter (fun (n, v) -> Format.fprintf ppf "@,  %-48s %+d" n v) d.counters;
  Format.fprintf ppf "@]"

(* --- slow-query log ----------------------------------------------------- *)

type slow_query = {
  sq_label : string;
  sq_at : float;
  sq_delta : delta;
  sq_plan : string;
}

let max_slow_entries = 128

let default_threshold_s () =
  match Sys.getenv_opt "HEXASTORE_SLOW_MS" with
  | Some s -> ( match float_of_string_opt s with Some ms when ms >= 0. -> ms /. 1e3 | _ -> infinity)
  | None -> infinity

(* domain-safety: telemetry-gated — slow-query cut-off in seconds; set
   from the environment at module init, reassigned only by the CLI /
   tests around whole runs.  Diagnostic routing only. *)
let threshold_s = ref (default_threshold_s ())

(* Serialises slow-log appends/rotations against concurrent noters on
   other domains (and against a dump racing an append). *)
let slow_lock = Mutex.create ()

let slow_locked f =
  Mutex.lock slow_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock slow_lock) f

(* domain-safety: guarded — the bounded slow-query log (newest first);
   appended and read under [slow_lock] so a rotation cannot race another
   domain's append. *)
let slow_log : slow_query list ref = ref []

(* domain-safety: guarded — total slow queries observed, including
   entries already rotated out of the bounded log; bumped under
   [slow_lock] alongside the append it counts. *)
let slow_total = ref 0

let set_threshold_s s = threshold_s := s

let slow_threshold_s () = !threshold_s

let rec take n = function [] -> [] | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let note ~label ~plan d =
  if d.wall_s >= !threshold_s then begin
    let plan = plan () in
    let entry = { sq_label = label; sq_at = Clock.now (); sq_delta = d; sq_plan = plan } in
    slow_locked (fun () ->
        incr slow_total;
        slow_log := entry :: take (max_slow_entries - 1) !slow_log);
    Events.emit (Events.Slow_query { label; wall_s = d.wall_s; plan })
  end

let slow_queries () = List.rev (slow_locked (fun () -> !slow_log))

let slow_count () = !slow_total

let clear_slow_log () =
  slow_locked (fun () ->
      slow_log := [];
      slow_total := 0)

let slow_query_to_json sq =
  Json.Obj
    [
      ("label", Json.String sq.sq_label);
      ("at", Json.Float sq.sq_at);
      ("profile", delta_to_json sq.sq_delta);
      ("plan", Json.String sq.sq_plan);
    ]

let slow_log_to_json () =
  Json.Obj
    [
      ("threshold_s", if Float.is_finite !threshold_s then Json.Float !threshold_s else Json.Null);
      ("total", Json.Int !slow_total);
      ("entries", Json.List (List.map slow_query_to_json (slow_queries ())));
    ]

let pp_slow_log ppf () =
  Format.fprintf ppf "@[<v>";
  (match slow_queries () with
  | [] -> Format.fprintf ppf "(no slow queries)@,"
  | entries ->
      List.iter
        (fun sq ->
          Format.fprintf ppf "%s wall=%.3fms@,  @[<v>%a@]@," sq.sq_label
            (sq.sq_delta.wall_s *. 1e3) Events.pp_block sq.sq_plan)
        entries);
  Format.fprintf ppf "@]"
