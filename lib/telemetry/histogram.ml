(* 40 log-spaced buckets with upper bounds 2^0 .. 2^39; the last bucket
   additionally absorbs everything larger.  The array is allocated once
   at registration, so observation mutates in place. *)

let bucket_count = 40

type t = {
  name : string;
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
}

let make name =
  { name; buckets = Array.make bucket_count 0; count = 0; sum = 0; min = max_int; max = min_int }

let name h = h.name

let bound i = 1 lsl i

(* Index of the first bucket whose upper bound is >= v. *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let i = ref 1 in
    while !i < bucket_count - 1 && bound !i < v do
      incr i
    done;
    !i
  end

let observe h v =
  if !Config.enabled then begin
    Config.note_activity ();
    let b = bucket_of v in
    h.buckets.(b) <- h.buckets.(b) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum + v;
    if v < h.min then h.min <- v;
    if v > h.max then h.max <- v
  end

let count h = h.count

let sum h = h.sum

let min_value h = if h.count = 0 then None else Some h.min

let max_value h = if h.count = 0 then None else Some h.max

let mean h = if h.count = 0 then 0. else float_of_int h.sum /. float_of_int h.count

let reset h =
  Array.fill h.buckets 0 bucket_count 0;
  h.count <- 0;
  h.sum <- 0;
  h.min <- max_int;
  h.max <- min_int

let fold_buckets f acc h =
  let acc = ref acc in
  Array.iteri (fun i n -> if n > 0 then acc := f !acc ~le:(bound i) ~count:n) h.buckets;
  !acc

(* Estimate the q-quantile from the bucket counts: find the bucket the
   rank lands in, interpolate linearly inside its (lower, upper] range,
   then clamp to the exact observed min/max (which tightens the coarse
   log-spaced bounds considerably for narrow distributions). *)
let quantile h q =
  if h.count = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let target = q *. float_of_int h.count in
    let rec find i cum =
      if i >= bucket_count then float_of_int h.max
      else
        let n = h.buckets.(i) in
        let cum' = cum + n in
        if n > 0 && float_of_int cum' >= target then
          let lower = if i = 0 then 0. else float_of_int (bound (i - 1)) in
          let upper = float_of_int (bound i) in
          let frac = (target -. float_of_int cum) /. float_of_int n in
          lower +. (frac *. (upper -. lower))
        else find (i + 1) cum'
    in
    Float.max (float_of_int h.min) (Float.min (float_of_int h.max) (find 0 0))
  end

let to_json h =
  let buckets =
    fold_buckets
      (fun acc ~le ~count -> Json.Obj [ ("le", Json.Int le); ("count", Json.Int count) ] :: acc)
      [] h
  in
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Int h.sum);
      ("min", match min_value h with None -> Json.Null | Some v -> Json.Int v);
      ("max", match max_value h with None -> Json.Null | Some v -> Json.Int v);
      ("mean", Json.Float (mean h));
      ("buckets", Json.List (List.rev buckets));
    ]

let pp ppf h =
  if h.count = 0 then Format.fprintf ppf "(empty)"
  else begin
    Format.fprintf ppf "count=%d sum=%d min=%d max=%d mean=%.1f" h.count h.sum h.min h.max (mean h);
    Format.fprintf ppf "@,  ";
    let first = ref true in
    ignore
      (fold_buckets
         (fun () ~le ~count ->
           if not !first then Format.fprintf ppf " ";
           first := false;
           Format.fprintf ppf "le%d:%d" le count)
         () h)
  end
