(* 40 log-spaced buckets with upper bounds 2^0 .. 2^39; the last bucket
   additionally absorbs everything larger.  Every cell is an [Atomic.t]
   so concurrent observers on different domains never lose an update;
   an observation is a handful of independent lock-free bumps, so a
   reader racing a writer can see e.g. the bucket bumped before [sum]
   — each individual series stays exact once emitters quiesce, but a
   mid-flight snapshot is only approximately consistent across fields
   (see DESIGN.md §13). *)

let bucket_count = 40

type t = {
  name : string;
  buckets : int Atomic.t array;
  count : int Atomic.t;
  sum : int Atomic.t;
  min : int Atomic.t;
  max : int Atomic.t;
}

let make name =
  {
    name;
    buckets = Array.init bucket_count (fun _ -> Atomic.make 0);
    count = Atomic.make 0;
    sum = Atomic.make 0;
    min = Atomic.make max_int;
    max = Atomic.make min_int;
  }

let name h = h.name

let bound i = 1 lsl i

(* Index of the first bucket whose upper bound is >= v. *)
let bucket_of v =
  if v <= 1 then 0
  else begin
    let i = ref 1 in
    while !i < bucket_count - 1 && bound !i < v do
      incr i
    done;
    !i
  end

(* Lock-free running min/max: retry the CAS until either it lands or
   another domain has already published a value at least as extreme. *)
let rec update_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then update_min cell v

let rec update_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then update_max cell v

let observe h v =
  if !Config.enabled then begin
    Config.note_activity ();
    let b = bucket_of v in
    Atomic.incr h.buckets.(b);
    Atomic.incr h.count;
    ignore (Atomic.fetch_and_add h.sum v);
    update_min h.min v;
    update_max h.max v
  end

let count h = Atomic.get h.count

let sum h = Atomic.get h.sum

let min_value h = if count h = 0 then None else Some (Atomic.get h.min)

let max_value h = if count h = 0 then None else Some (Atomic.get h.max)

let mean h = if count h = 0 then 0. else float_of_int (sum h) /. float_of_int (count h)

(* Not atomic as a whole: reset while emitters race loses the races'
   updates.  Callers reset between measurement arms, not mid-flight. *)
let reset h =
  Array.iter (fun cell -> Atomic.set cell 0) h.buckets;
  Atomic.set h.count 0;
  Atomic.set h.sum 0;
  Atomic.set h.min max_int;
  Atomic.set h.max min_int

let fold_buckets f acc h =
  let acc = ref acc in
  Array.iteri
    (fun i cell ->
      let n = Atomic.get cell in
      if n > 0 then acc := f !acc ~le:(bound i) ~count:n)
    h.buckets;
  !acc

(* Estimate the q-quantile from the bucket counts: find the bucket the
   rank lands in, interpolate linearly inside its (lower, upper] range,
   then clamp to the exact observed min/max (which tightens the coarse
   log-spaced bounds considerably for narrow distributions). *)
let quantile h q =
  let total = count h in
  if total = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let target = q *. float_of_int total in
    let hmin = Atomic.get h.min and hmax = Atomic.get h.max in
    let rec find i cum =
      if i >= bucket_count then float_of_int hmax
      else
        let n = Atomic.get h.buckets.(i) in
        let cum' = cum + n in
        if n > 0 && float_of_int cum' >= target then
          let lower = if i = 0 then 0. else float_of_int (bound (i - 1)) in
          let upper = float_of_int (bound i) in
          let frac = (target -. float_of_int cum) /. float_of_int n in
          lower +. (frac *. (upper -. lower))
        else find (i + 1) cum'
    in
    Float.max (float_of_int hmin) (Float.min (float_of_int hmax) (find 0 0))
  end

let to_json h =
  let buckets =
    fold_buckets
      (fun acc ~le ~count -> Json.Obj [ ("le", Json.Int le); ("count", Json.Int count) ] :: acc)
      [] h
  in
  Json.Obj
    [
      ("count", Json.Int (count h));
      ("sum", Json.Int (sum h));
      ("min", match min_value h with None -> Json.Null | Some v -> Json.Int v);
      ("max", match max_value h with None -> Json.Null | Some v -> Json.Int v);
      ("mean", Json.Float (mean h));
      ("buckets", Json.List (List.rev buckets));
    ]

let pp ppf h =
  if count h = 0 then Format.fprintf ppf "(empty)"
  else begin
    Format.fprintf ppf "count=%d sum=%d min=%d max=%d mean=%.1f" (count h) (sum h)
      (Atomic.get h.min) (Atomic.get h.max) (mean h);
    Format.fprintf ppf "@,  ";
    let first = ref true in
    ignore
      (fold_buckets
         (fun () ~le ~count ->
           if not !first then Format.fprintf ppf " ";
           first := false;
           Format.fprintf ppf "le%d:%d" le count)
         () h)
  end
