type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* --- encoding ---------------------------------------------------------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if not (Float.is_finite f) then "null"  (* JSON has no inf/nan *)
  else
    let s = Printf.sprintf "%.12g" f in
    (* Keep the token a number even when %g drops the fraction. *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s else s ^ ".0"

let rec write buf ~indent ~level v =
  let pad n = Buffer.add_string buf (String.make (n * indent) ' ') in
  let nl () = if indent > 0 then Buffer.add_char buf '\n' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape buf s
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
      Buffer.add_char buf '[';
      nl ();
      List.iteri
        (fun i item ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          write buf ~indent ~level:(level + 1) item)
        items;
      nl ();
      pad level;
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_char buf '{';
      nl ();
      List.iteri
        (fun i (k, item) ->
          if i > 0 then begin
            Buffer.add_char buf ',';
            nl ()
          end;
          pad (level + 1);
          escape buf k;
          Buffer.add_string buf (if indent > 0 then ": " else ":");
          write buf ~indent ~level:(level + 1) item)
        fields;
      nl ();
      pad level;
      Buffer.add_char buf '}'

let to_string ?(indent = 2) v =
  let buf = Buffer.create 1024 in
  write buf ~indent ~level:0 v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* --- parsing ----------------------------------------------------------- *)

exception Parse_fail of int * string

let of_string ?(max_depth = 512) s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let m = String.length word in
    if !pos + m <= n && String.sub s !pos m = word then begin
      pos := !pos + m;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        let c = s.[!pos] in
        advance ();
        if c = '"' then Buffer.contents buf
        else if Char.code c < 0x20 then fail "raw control character in string"
        else if c = '\\' then begin
          (if !pos >= n then fail "unterminated escape"
           else
             let e = s.[!pos] in
             advance ();
             match e with
             | '"' -> Buffer.add_char buf '"'
             | '\\' -> Buffer.add_char buf '\\'
             | '/' -> Buffer.add_char buf '/'
             | 'n' -> Buffer.add_char buf '\n'
             | 'r' -> Buffer.add_char buf '\r'
             | 't' -> Buffer.add_char buf '\t'
             | 'b' -> Buffer.add_char buf '\b'
             | 'f' -> Buffer.add_char buf '\012'
             | 'u' ->
                 if !pos + 4 > n then fail "short \\u escape"
                 else begin
                   let hex = String.sub s !pos 4 in
                   pos := !pos + 4;
                   match int_of_string_opt ("0x" ^ hex) with
                   | None -> fail "bad \\u escape"
                   | Some code ->
                       (* Re-encode the code point as UTF-8 (BMP only;
                          surrogate pairs are not reassembled). *)
                       if code < 0x80 then Buffer.add_char buf (Char.chr code)
                       else if code < 0x800 then begin
                         Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end
                       else begin
                         Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                         Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                         Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                       end
                 end
             | _ -> fail "unknown escape");
          loop ()
        end
        else begin
          Buffer.add_char buf c;
          loop ()
        end
    in
    loop ()
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value depth =
    (* [depth] is 0 for the outermost value, so a document may nest at
       most [max_depth] levels: the value at depth [max_depth] (level
       [max_depth + 1]) is rejected. *)
    if depth >= max_depth then fail (Printf.sprintf "nesting deeper than %d" max_depth);
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec fields acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields ((k, v) :: acc)
            | Some '}' ->
                advance ();
                List.rev ((k, v) :: acc)
            | _ -> fail "expected ',' or '}'"
          in
          Obj (fields [])
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items (v :: acc)
            | Some ']' ->
                advance ();
                List.rev (v :: acc)
            | _ -> fail "expected ',' or ']'"
          in
          List (items [])
        end
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match parse_value 0 with
  | v ->
      skip_ws ();
      if !pos <> n then Error (Printf.sprintf "trailing content at offset %d" !pos) else Ok v
  | exception Parse_fail (at, msg) -> Error (Printf.sprintf "at offset %d: %s" at msg)

(* --- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let path keys v =
  List.fold_left (fun acc k -> match acc with None -> None | Some v -> member k v) (Some v) keys

let to_float_opt = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None
