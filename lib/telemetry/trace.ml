type span = {
  name : string;
  start : float;
  duration : float;
  depth : int;
}

let max_spans = 8192

(* domain-safety: telemetry-gated — span recording happens only behind
   [Config.enabled]; the bounded buffer is diagnostic state, not query
   state. *)
let buffer : span list ref = ref []

(* domain-safety: telemetry-gated — tracks [buffer]'s length behind the
   same gate. *)
let buffered = ref 0

(* domain-safety: telemetry-gated — overflow tally for the span buffer,
   written only on gated recording paths. *)
let dropped_count = ref 0

(* domain-safety: telemetry-gated — span nesting depth, balanced by
   [exit_span] behind the gate. *)
let depth = ref 0

(* Registry mirror of [dropped_count], so a Prometheus scrape of the
   registry sees span-buffer overflow without a separate dump. *)
let c_dropped = Metrics.counter "telemetry.trace.dropped"

let dropped () = !dropped_count

let record s =
  if !buffered >= max_spans then begin
    incr dropped_count;
    Metrics.incr c_dropped
  end
  else begin
    buffer := s :: !buffer;
    incr buffered
  end

type handle = {
  h_name : string;
  h_start : float;
  h_depth : int;
  mutable h_closed : bool;
}

(* Shared no-op handle returned while the gate is off, so a disabled
   [enter_span] allocates nothing. *)
let disabled_handle = { h_name = ""; h_start = 0.; h_depth = 0; h_closed = true }

let enter_span name =
  if not !Config.enabled then disabled_handle
  else begin
    Config.note_activity ();
    let d = !depth in
    incr depth;
    { h_name = name; h_start = Clock.now (); h_depth = d; h_closed = false }
  end

let exit_span h =
  if not h.h_closed then begin
    h.h_closed <- true;
    decr depth;
    record
      { name = h.h_name; start = h.h_start; duration = Clock.now () -. h.h_start; depth = h.h_depth }
  end

let with_span name f =
  if not !Config.enabled then f ()
  else begin
    let h = enter_span name in
    Fun.protect ~finally:(fun () -> exit_span h) f
  end

let spans () = List.rev !buffer

let clear () =
  buffer := [];
  buffered := 0;
  dropped_count := 0;
  depth := 0

let span_to_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("start", Json.Float s.start);
      ("duration_s", Json.Float s.duration);
      ("depth", Json.Int s.depth);
    ]

let to_json () =
  Json.Obj
    [
      ("spans", Json.List (List.map span_to_json (spans ())));
      ("dropped", Json.Int !dropped_count);
    ]

let pp ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "%s%-40s %.6fs@," (String.make (2 * s.depth) ' ') s.name s.duration)
    (spans ());
  if !dropped_count > 0 then Format.fprintf ppf "(%d spans dropped)@," !dropped_count;
  Format.fprintf ppf "@]"
