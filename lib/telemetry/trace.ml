type span = {
  name : string;
  start : float;
  duration : float;
  depth : int;
}

let max_spans = 8192

(* The span buffer is sharded by domain: each domain records into the
   slot indexed by its domain id mod [shard_count], so concurrent
   emitters on a parallel query almost never contend.  Domain ids grow
   without bound across spawns, so two domains *can* share a shard —
   each shard therefore still carries its own mutex, making the shard a
   contention optimisation rather than a correctness assumption.  The
   capacity bound ([max_spans]) and the nesting [depth] are per shard:
   a single-domain process keeps exactly the historical semantics (all
   spans land in one shard), while a multi-domain process gets
   per-domain nesting depths and up to [shard_count * max_spans]
   buffered spans.  Dumps merge the shards by a global completion
   sequence number, reproducing the exact completion order a single
   buffer would have recorded. *)

let shard_count = 8

type shard = {
  lock : Mutex.t;
  mutable spans : (int * span) list;  (* newest first, tagged with completion seq *)
  mutable buffered : int;
  mutable dropped : int;
  mutable depth : int;
}

(* domain-safety: domain-sharded — one buffer slot per domain (domain id
   mod shard_count), each guarded by its own mutex for the collision
   case; reads merge all shards by completion seq. *)
let shards =
  Array.init shard_count (fun _ ->
      { lock = Mutex.create (); spans = []; buffered = 0; dropped = 0; depth = 0 })

(* domain-safety: atomic — global completion sequence tag, fetched
   lock-free by whichever domain finishes a span next; only orders the
   merged dump. *)
let next_seq = Atomic.make 0

let my_shard () = shards.((Domain.self () :> int) mod shard_count)

let locked sh f =
  Mutex.lock sh.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.lock) f

(* Registry mirror of the drop tally, so a Prometheus scrape of the
   registry sees span-buffer overflow without a separate dump. *)
let c_dropped = Metrics.counter "telemetry.trace.dropped"

let dropped () = Array.fold_left (fun acc sh -> acc + sh.dropped) 0 shards

let record sh s =
  let overflow =
    locked sh (fun () ->
        if sh.buffered >= max_spans then begin
          sh.dropped <- sh.dropped + 1;
          true
        end
        else begin
          sh.spans <- (Atomic.fetch_and_add next_seq 1, s) :: sh.spans;
          sh.buffered <- sh.buffered + 1;
          false
        end)
  in
  if overflow then Metrics.incr c_dropped

type handle = {
  h_name : string;
  h_start : float;
  h_depth : int;
  mutable h_closed : bool;
}

(* Shared no-op handle returned while the gate is off, so a disabled
   [enter_span] allocates nothing. *)
let disabled_handle = { h_name = ""; h_start = 0.; h_depth = 0; h_closed = true }

let enter_span name =
  if not !Config.enabled then disabled_handle
  else begin
    Config.note_activity ();
    let sh = my_shard () in
    let d =
      locked sh (fun () ->
          let d = sh.depth in
          sh.depth <- d + 1;
          d)
    in
    { h_name = name; h_start = Clock.now (); h_depth = d; h_closed = false }
  end

let exit_span h =
  if not h.h_closed then begin
    h.h_closed <- true;
    let duration = Clock.now () -. h.h_start in
    let sh = my_shard () in
    locked sh (fun () -> sh.depth <- sh.depth - 1);
    record sh { name = h.h_name; start = h.h_start; duration; depth = h.h_depth }
  end

let with_span name f =
  if not !Config.enabled then f ()
  else begin
    let h = enter_span name in
    Fun.protect ~finally:(fun () -> exit_span h) f
  end

let spans () =
  let tagged =
    Array.fold_left (fun acc sh -> locked sh (fun () -> sh.spans) :: acc) [] shards
    |> List.concat
  in
  tagged
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  |> List.map snd

let clear () =
  Array.iter
    (fun sh ->
      locked sh (fun () ->
          sh.spans <- [];
          sh.buffered <- 0;
          sh.dropped <- 0;
          sh.depth <- 0))
    shards;
  Atomic.set next_seq 0

let span_to_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("start", Json.Float s.start);
      ("duration_s", Json.Float s.duration);
      ("depth", Json.Int s.depth);
    ]

let to_json () =
  Json.Obj
    [
      ("spans", Json.List (List.map span_to_json (spans ())));
      ("dropped", Json.Int (dropped ()));
    ]

let pp ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (s : span) ->
      Format.fprintf ppf "%s%-40s %.6fs@," (String.make (2 * s.depth) ' ') s.name s.duration)
    (spans ());
  if dropped () > 0 then Format.fprintf ppf "(%d spans dropped)@," (dropped ());
  Format.fprintf ppf "@]"
