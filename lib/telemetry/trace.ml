type span = {
  name : string;
  start : float;
  duration : float;
  depth : int;
  id : int;
  parent : int option;
  dom : int;
}

let max_spans = 8192

(* The span buffer is sharded by domain: each domain records into the
   slot indexed by its domain id mod [shard_count], so concurrent
   emitters on a parallel query almost never contend.  Domain ids grow
   without bound across spawns, so two domains *can* share a shard —
   each shard therefore still carries its own mutex, making the shard a
   contention optimisation rather than a correctness assumption.  The
   capacity bound ([max_spans]) is per shard: a single-domain process
   keeps exactly the historical semantics (all spans land in one
   shard), while a multi-domain process gets up to
   [shard_count * max_spans] buffered spans.  Dumps merge the shards by
   a global completion sequence number, reproducing the exact
   completion order a single buffer would have recorded.

   Span *identity* is not sharded: every span gets a process-unique id
   from a global atomic, and each domain tracks its innermost open span
   in domain-local storage, so a span's [parent] and [depth] follow the
   dynamic nesting on that domain.  Cross-domain edges — a pool task
   belonging to the query that submitted it — are made explicit by
   passing the submitting span's handle as [?parent]; the task's spans
   then attach under the query span even though they complete on
   another domain. *)

let shard_count = 8

type shard = {
  lock : Mutex.t;
  mutable spans : (int * span) list;  (* newest first, tagged with completion seq *)
  mutable buffered : int;
  mutable dropped : int;
}

(* domain-safety: domain-sharded — one buffer slot per domain (domain id
   mod shard_count), each guarded by its own mutex for the collision
   case; reads merge all shards by completion seq. *)
let shards =
  Array.init shard_count (fun _ ->
      { lock = Mutex.create (); spans = []; buffered = 0; dropped = 0 })

(* domain-safety: atomic — global completion sequence tag, fetched
   lock-free by whichever domain finishes a span next; only orders the
   merged dump. *)
let next_seq = Atomic.make 0

(* domain-safety: atomic — process-unique span id source (ids start at
   1; 0 is reserved for "no span"), fetched lock-free by whichever
   domain opens a span next. *)
let next_id = Atomic.make 1

(* The innermost open span on this domain, as [(id, next_depth)]:
   [id = 0] means no span is open and the next one starts at depth
   [next_depth] (0 at the root).  Not a global — each domain has its
   own cell, written only by that domain, so nesting needs no lock. *)
let current = Domain.DLS.new_key (fun () -> (0, 0))

let my_shard () = shards.((Domain.self () :> int) mod shard_count)

let locked sh f =
  Mutex.lock sh.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sh.lock) f

(* Registry mirror of the drop tally, so a Prometheus scrape of the
   registry sees span-buffer overflow without a separate dump. *)
let c_dropped = Metrics.counter "telemetry.trace.dropped"

let dropped () = Array.fold_left (fun acc sh -> acc + sh.dropped) 0 shards

let record sh s =
  let overflow =
    locked sh (fun () ->
        if sh.buffered >= max_spans then begin
          sh.dropped <- sh.dropped + 1;
          true
        end
        else begin
          sh.spans <- (Atomic.fetch_and_add next_seq 1, s) :: sh.spans;
          sh.buffered <- sh.buffered + 1;
          false
        end)
  in
  if overflow then Metrics.incr c_dropped

type handle = {
  h_name : string;
  h_start : float;
  h_depth : int;
  h_id : int;
  h_parent : int option;
  h_saved : int * int;  (* this domain's [current] before entry, restored at exit *)
  mutable h_closed : bool;
}

(* Shared no-op handle returned while the gate is off, so a disabled
   [enter_span] allocates nothing. *)
let disabled_handle =
  {
    h_name = "";
    h_start = 0.;
    h_depth = 0;
    h_id = 0;
    h_parent = None;
    h_saved = (0, 0);
    h_closed = true;
  }

let enter_span ?parent name =
  if not !Config.enabled then disabled_handle
  else begin
    Config.note_activity ();
    let saved = Domain.DLS.get current in
    let parent_id, depth =
      match parent with
      | Some p when p.h_id <> 0 ->
          (* Explicit cross-domain edge: attach under the given handle
             regardless of what is open on this domain. *)
          (p.h_id, p.h_depth + 1)
      | Some _ (* disabled handle: the gate was off at the parent *) | None ->
          saved
    in
    let id = Atomic.fetch_and_add next_id 1 in
    Domain.DLS.set current (id, depth + 1);
    {
      h_name = name;
      h_start = Clock.now ();
      h_depth = depth;
      h_id = id;
      h_parent = (if parent_id = 0 then None else Some parent_id);
      h_saved = saved;
      h_closed = false;
    }
  end

let exit_span h =
  if not h.h_closed then begin
    h.h_closed <- true;
    let duration = Clock.now () -. h.h_start in
    Domain.DLS.set current h.h_saved;
    record (my_shard ())
      {
        name = h.h_name;
        start = h.h_start;
        duration;
        depth = h.h_depth;
        id = h.h_id;
        parent = h.h_parent;
        dom = (Domain.self () :> int);
      }
  end

let with_span ?parent name f =
  if not !Config.enabled then f ()
  else begin
    let h = enter_span ?parent name in
    Fun.protect ~finally:(fun () -> exit_span h) f
  end

let with_span_h ?parent name f =
  if not !Config.enabled then f disabled_handle
  else begin
    let h = enter_span ?parent name in
    Fun.protect ~finally:(fun () -> exit_span h) (fun () -> f h)
  end

let spans () =
  let tagged =
    Array.fold_left (fun acc sh -> locked sh (fun () -> sh.spans) :: acc) [] shards
    |> List.concat
  in
  tagged
  |> List.sort (fun (a, _) (b, _) -> compare (a : int) b)
  |> List.map snd

let clear () =
  Array.iter
    (fun sh ->
      locked sh (fun () ->
          sh.spans <- [];
          sh.buffered <- 0;
          sh.dropped <- 0))
    shards;
  Atomic.set next_seq 0;
  Atomic.set next_id 1;
  Domain.DLS.set current (0, 0)

let span_to_json s =
  Json.Obj
    ([
       ("name", Json.String s.name);
       ("start", Json.Float s.start);
       ("duration_s", Json.Float s.duration);
       ("depth", Json.Int s.depth);
       ("id", Json.Int s.id);
     ]
    @ (match s.parent with None -> [] | Some p -> [ ("parent", Json.Int p) ])
    @ [ ("dom", Json.Int s.dom) ])

let to_json () =
  Json.Obj
    [
      ("spans", Json.List (List.map span_to_json (spans ())));
      ("dropped", Json.Int (dropped ()));
    ]

let pp ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (s : span) ->
      Format.fprintf ppf "%s%-40s %.6fs@," (String.make (2 * s.depth) ' ') s.name s.duration)
    (spans ());
  if dropped () > 0 then Format.fprintf ppf "(%d spans dropped)@," (dropped ());
  Format.fprintf ppf "@]"
