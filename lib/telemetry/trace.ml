type span = {
  name : string;
  start : float;
  duration : float;
  depth : int;
}

let max_spans = 8192

(* domain-safety: telemetry-gated — span recording happens only behind
   [Config.enabled]; the bounded buffer is diagnostic state, not query
   state. *)
let buffer : span list ref = ref []

(* domain-safety: telemetry-gated — tracks [buffer]'s length behind the
   same gate. *)
let buffered = ref 0

(* domain-safety: telemetry-gated — overflow tally for the span buffer,
   written only on gated recording paths. *)
let dropped_count = ref 0

(* domain-safety: telemetry-gated — span nesting depth, balanced by
   [with_span] behind the gate. *)
let depth = ref 0

let dropped () = !dropped_count

let record s =
  if !buffered >= max_spans then incr dropped_count
  else begin
    buffer := s :: !buffer;
    incr buffered
  end

let with_span name f =
  if not !Config.enabled then f ()
  else begin
    Config.note_activity ();
    let start = Clock.now () in
    let d = !depth in
    incr depth;
    Fun.protect
      ~finally:(fun () ->
        decr depth;
        record { name; start; duration = Clock.now () -. start; depth = d })
      f
  end

let spans () = List.rev !buffer

let clear () =
  buffer := [];
  buffered := 0;
  dropped_count := 0;
  depth := 0

let span_to_json s =
  Json.Obj
    [
      ("name", Json.String s.name);
      ("start", Json.Float s.start);
      ("duration_s", Json.Float s.duration);
      ("depth", Json.Int s.depth);
    ]

let to_json () =
  Json.Obj
    [
      ("spans", Json.List (List.map span_to_json (spans ())));
      ("dropped", Json.Int !dropped_count);
    ]

let pp ppf () =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun s ->
      Format.fprintf ppf "%s%-40s %.6fs@," (String.make (2 * s.depth) ' ') s.name s.duration)
    (spans ());
  if !dropped_count > 0 then Format.fprintf ppf "(%d spans dropped)@," !dropped_count;
  Format.fprintf ppf "@]"
