(* The flight recorder: a bounded ring of typed, timestamped events.

   Unlike the metrics/span machinery this is *always on* by default —
   the point is to have the last ~1k operational events (query
   boundaries, plan choices, delta flushes, snapshot IO, slow queries)
   available for a post-hoc dump even when full telemetry was never
   enabled.  Each emission is one mutex-guarded array store plus one
   small record allocation; the ring never grows, and overwrites are
   counted as drops rather than silently discarded.

   Deliberately independent of [Config.enabled] and of
   [Config.note_activity]: the disabled-telemetry tests assert that the
   activity count stays at zero, and the recorder must not disturb
   that. *)

type kind =
  | Query_start of { label : string }
  | Query_end of {
      label : string;
      rows : int;
    }
  | Plan_choice of {
      label : string;
      detail : string;
    }
  | Delta_flush of {
      pending : int;
      rebuild : bool;
      auto : bool;
    }
  | Delta_compact of { pending : int }
  | Snapshot_save of {
      path : string;
      triples : int;
    }
  | Snapshot_load of {
      path : string;
      triples : int;
    }
  | Slow_query of {
      label : string;
      wall_s : float;
      plan : string;
    }
  | Par_fanout of {
      label : string;
      planned : int;
      achieved : int;
      width : int;
    }

type event = {
  seq : int;  (* 0-based emission index, never wraps *)
  at : float; (* Clock.now at emission *)
  dom : int;  (* id of the emitting domain *)
  kind : kind;
}

let default_capacity = 1024

(* domain-safety: telemetry-gated — recorder on/off switch read on every
   emission; set from the environment at module init and flipped
   afterwards only by tests, the bench overhead figure and the CLI, in
   single-threaded sections. *)
let enabled =
  ref
    (match Sys.getenv_opt "HEXASTORE_EVENTS" with
    | Some ("0" | "false" | "off") -> false
    | _ -> true)

(* One mutex serialises every ring mutation and every dump: emitters on
   different domains get distinct, gap-free sequence numbers, a reader
   never observes a torn slot (an index bumped past an unwritten cell),
   and [set_capacity]'s reallocation cannot race an in-flight store.
   Emission already allocates an event record, so the uncontended
   lock/unlock pair is noise by comparison. *)
let lock = Mutex.create ()

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

(* domain-safety: guarded — the ring storage itself; every write (and
   [set_capacity]'s reallocation) happens under [lock], as does [dump],
   so concurrent emitters cannot tear a slot. *)
let ring : event option array ref = ref (Array.make default_capacity None)

(* domain-safety: guarded — total emissions since the last [clear];
   bumped under [lock] so it exactly matches the filled ring slots and
   the drop count stays accurate under concurrent emitters. *)
let total = ref 0

let capacity () = Array.length !ring

(* Reads of [total] outside the lock are single-word and cannot tear;
   they are exact whenever emitters are quiescent. *)
let recorded () = !total

let dropped () = max 0 (!total - capacity ())

let emit kind =
  if !enabled then begin
    (* The domain id is read outside the lock — it is a property of the
       emitting domain, not of the ring. *)
    let dom = (Domain.self () :> int) in
    locked (fun () ->
        let r = !ring in
        r.(!total mod Array.length r) <- Some { seq = !total; at = Clock.now (); dom; kind };
        incr total)
  end

let clear () =
  locked (fun () ->
      Array.fill !ring 0 (Array.length !ring) None;
      total := 0)

let set_capacity n =
  locked (fun () ->
      ring := Array.make (max 1 n) None;
      total := 0)

let dump () =
  locked (fun () ->
      let r = !ring in
      let cap = Array.length r in
      let kept = min !total cap in
      let first = !total - kept in
      List.init kept (fun i ->
          match r.((first + i) mod cap) with
          | Some e -> e
          | None -> assert false (* slots below [total] are always filled *)))

let kind_name = function
  | Query_start _ -> "query.start"
  | Query_end _ -> "query.end"
  | Plan_choice _ -> "plan.choice"
  | Delta_flush _ -> "delta.flush"
  | Delta_compact _ -> "delta.compact"
  | Snapshot_save _ -> "snapshot.save"
  | Snapshot_load _ -> "snapshot.load"
  | Slow_query _ -> "query.slow"
  | Par_fanout _ -> "par.fanout"

let kind_fields = function
  | Query_start { label } -> [ ("label", Json.String label) ]
  | Query_end { label; rows } -> [ ("label", Json.String label); ("rows", Json.Int rows) ]
  | Plan_choice { label; detail } ->
      [ ("label", Json.String label); ("detail", Json.String detail) ]
  | Delta_flush { pending; rebuild; auto } ->
      [ ("pending", Json.Int pending); ("rebuild", Json.Bool rebuild); ("auto", Json.Bool auto) ]
  | Delta_compact { pending } -> [ ("pending", Json.Int pending) ]
  | Snapshot_save { path; triples } ->
      [ ("path", Json.String path); ("triples", Json.Int triples) ]
  | Snapshot_load { path; triples } ->
      [ ("path", Json.String path); ("triples", Json.Int triples) ]
  | Slow_query { label; wall_s; plan } ->
      [
        ("label", Json.String label);
        ("wall_s", Json.Float wall_s);
        ("plan", Json.String plan);
      ]
  | Par_fanout { label; planned; achieved; width } ->
      [
        ("label", Json.String label);
        ("planned", Json.Int planned);
        ("achieved", Json.Int achieved);
        ("width", Json.Int width);
      ]

let event_to_json e =
  Json.Obj
    (("seq", Json.Int e.seq)
    :: ("at", Json.Float e.at)
    :: ("dom", Json.Int e.dom)
    :: ("kind", Json.String (kind_name e.kind))
    :: kind_fields e.kind)

let to_json () =
  Json.Obj
    [
      ("capacity", Json.Int (capacity ()));
      ("recorded", Json.Int (recorded ()));
      ("dropped", Json.Int (dropped ()));
      ("events", Json.List (List.map event_to_json (dump ())));
    ]

(* Print a multi-line string verbatim inside a @[<v>] box (pp_print_text
   would reflow the plan tree's indentation away). *)
let pp_block ppf s =
  let lines = String.split_on_char '\n' s in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    Format.pp_print_string ppf lines

let pp_kind ppf = function
  | Query_start { label } -> Format.fprintf ppf "query.start    %s" label
  | Query_end { label; rows } -> Format.fprintf ppf "query.end      %s rows=%d" label rows
  | Plan_choice { label; detail } -> Format.fprintf ppf "plan.choice    %s: %s" label detail
  | Delta_flush { pending; rebuild; auto } ->
      Format.fprintf ppf "delta.flush    pending=%d rebuild=%b auto=%b" pending rebuild auto
  | Delta_compact { pending } -> Format.fprintf ppf "delta.compact  pending=%d" pending
  | Snapshot_save { path; triples } ->
      Format.fprintf ppf "snapshot.save  %s triples=%d" path triples
  | Snapshot_load { path; triples } ->
      Format.fprintf ppf "snapshot.load  %s triples=%d" path triples
  | Slow_query { label; wall_s; plan } ->
      Format.fprintf ppf "query.slow     %s wall=%.3fms@,  @[<v>%a@]" label (wall_s *. 1e3)
        pp_block plan
  | Par_fanout { label; planned; achieved; width } ->
      Format.fprintf ppf "par.fanout     %s planned=%d achieved=%d width=%d" label planned
        achieved width

let pp ppf () =
  Format.fprintf ppf "@[<v>";
  (match dump () with
  | [] -> Format.fprintf ppf "(no events)@,"
  | first :: _ as events ->
      List.iter
        (fun e ->
          Format.fprintf ppf "[%8.6f] #%-5d d%-3d %a@," (e.at -. first.at) e.seq e.dom
            pp_kind e.kind)
        events);
  if dropped () > 0 then Format.fprintf ppf "(%d events dropped)@," (dropped ());
  Format.fprintf ppf "@]"
