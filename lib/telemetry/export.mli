(** Standard exposition formats over the telemetry state.

    {!chrome_trace} renders the span buffer as Chrome trace-event JSON
    (one "complete" [ph:"X"] event per span, microsecond units) —
    loadable in [chrome://tracing] or Perfetto.

    {!prometheus} renders the metrics registry as Prometheus text
    exposition (format 0.0.4): counters and gauges verbatim, histograms
    as cumulative [_bucket{le=...}] series plus [_sum]/[_count], with
    p50/p95/p99 estimates from {!Histogram.quantile} as a companion
    [<name>_quantile] gauge family.  The flight recorder's ring
    accounting ([telemetry_events_recorded] / [_dropped] / [_capacity])
    is appended as synthesised series, since the recorder runs outside
    the registry gate. *)

val span_to_trace_event : Trace.span -> Json.t

val chrome_trace_of_spans : Trace.span list -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val chrome_trace : unit -> Json.t
(** {!chrome_trace_of_spans} over the current span buffer. *)

val metric_name : string -> string
(** Sanitise a dotted metric name for Prometheus ([.] → [_]). *)

val prometheus : unit -> string
(** The full registry + ring accounting as text exposition. *)
