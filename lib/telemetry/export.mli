(** Standard exposition formats over the telemetry state.

    {!chrome_trace} renders the span buffer as Chrome trace-event JSON
    (one "complete" [ph:"X"] event per span, microsecond units) —
    loadable in [chrome://tracing] or Perfetto.

    {!prometheus} renders the metrics registry as Prometheus text
    exposition (format 0.0.4): counters and gauges verbatim, histograms
    as cumulative [_bucket{le=...}] series plus [_sum]/[_count], with
    p50/p95/p99 estimates from {!Histogram.quantile} as a companion
    [<name>_quantile] gauge family.  The flight recorder's ring
    accounting ([telemetry_events_recorded] / [_dropped] / [_capacity])
    is appended as synthesised series, since the recorder runs outside
    the registry gate. *)

val span_to_trace_event : ?tid_of:(int -> int) -> Trace.span -> Json.t
(** One [ph:"X"] event; [tid_of] maps the span's domain id to the
    emitted [tid] (default: constant 1).  [args] carries the span's
    depth, id, parent (when present) and raw domain id. *)

val chrome_trace_of_spans : Trace.span list -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}].  Spans are
    assigned one [tid] lane per distinct domain (1-based rank of the
    domain id, so a single-domain dump keeps [tid=1] and ranks are
    stable run to run), preceded by [thread_name] metadata events
    naming each lane. *)

val chrome_trace : unit -> Json.t
(** {!chrome_trace_of_spans} over the current span buffer. *)

val metric_name : string -> string
(** Sanitise a dotted metric name for Prometheus ([.] → [_]). *)

val prometheus : unit -> string
(** The full registry + ring accounting as text exposition. *)
