(** The process-wide metrics registry.

    Metrics are registered once by name — typically at module
    initialisation of the instrumented layer, so the hot path holds a
    direct record pointer and mutates it in place: an {!incr} is one flag
    read, one activity bump and one unboxed-int store, with no lookup and
    no allocation.  While [Telemetry.enabled] is off every mutation is a
    no-op (one flag read and branch).

    Registering the same name twice returns the existing metric;
    re-registering a name under a different metric kind raises
    [Invalid_argument].  Registration and every whole-registry read
    ({!fold}, {!snapshot_counters}, {!reset_all}) are serialised by an
    internal mutex, so late registrations from pool domains (per-lane
    task counters) cannot race a profiler or monitor snapshot. *)

type counter
(** Monotonic (under normal use) integer counter. *)

type gauge
(** Last-write-wins float gauge. *)

val counter : string -> counter
val gauge : string -> gauge
val histogram : string -> Histogram.t

(** {1 Hot-path mutation (gated on [Telemetry.enabled])} *)

val incr : counter -> unit
val add : counter -> int -> unit
val set : gauge -> float -> unit

val observe : Histogram.t -> int -> unit
(** Alias of {!Histogram.observe}, for call-site uniformity. *)

(** {1 Reading and export} *)

val value : counter -> int
val gauge_value : gauge -> float
val counter_name : counter -> string
val gauge_name : gauge -> string

val snapshot_counters : ?prefix:string -> unit -> (string * int) list
(** Current counter values, name-sorted, optionally restricted to names
    with [prefix].  The benchmark harness diffs two snapshots to report
    per-query probe counts. *)

val reset_all : unit -> unit
(** Zero every registered metric (registrations persist). *)

(** A registered metric, as listed by {!fold}. *)
type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of Histogram.t

val fold : ('a -> string -> metric -> 'a) -> 'a -> 'a
(** Over all registered metrics in name order. *)

val to_json : unit -> Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {..}}], each
    section name-sorted. *)

val pp_report : Format.formatter -> unit -> unit
(** Human-readable dump of the whole registry. *)
