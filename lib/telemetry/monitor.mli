(** Pull-based monitoring: registry snapshots diffed into rate views.

    {!sample} captures every registered metric — counter and gauge
    values, histogram count/sum and p50/p95/p99 estimates — together
    with the flight-recorder and span-buffer ring accounting.  {!diff}
    turns two samples into a {!view}: counters and histogram counts
    become per-second rates over the interval, gauges and quantiles are
    reported at the newer sample.  {!watch} packages the
    keep-the-previous-sample loop for callers that poll on a cadence
    (the [hexastore top] CLI).

    The monitor owns no state and spawns no domains; it reads the same
    atomics the instrumented layers mutate, so sampling is safe while
    pool domains are mid-query.  With [Telemetry.enabled] off the
    registry does not move and every rate reads 0. *)

type hist_sample = {
  hs_count : int;
  hs_sum : int;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

type metric_sample =
  | S_counter of int
  | S_gauge of float
  | S_histogram of hist_sample

type sample = {
  taken_at : float;  (** {!Clock.now} at capture *)
  metrics : (string * metric_sample) list;  (** name-sorted *)
  s_events_recorded : int;
  s_events_dropped : int;
  s_spans_dropped : int;
}

val sample : unit -> sample

type row =
  | Counter_rate of {
      total : int;
      rate : float;  (** increments per second over the interval *)
    }
  | Gauge_level of { value : float }
  | Histogram_rate of {
      count : int;
      rate : float;  (** observations per second over the interval *)
      p50 : float;
      p95 : float;
      p99 : float;   (** quantiles are lifetime estimates at the newer
                         sample, not interval-local *)
    }

type view = {
  at : float;
  interval_s : float;
  rows : (string * row) list;  (** one row per metric in the newer sample *)
  events_recorded : int;
  events_rate : float;
  events_dropped : int;
  spans_dropped : int;
}

val diff : sample -> sample -> view
(** [diff prev next].  Metrics absent from [prev] (registered between
    the samples) rate from zero; a non-positive interval yields zero
    rates. *)

val watch : unit -> unit -> view
(** [watch ()] takes a baseline sample and returns a step function:
    each call samples, diffs against the previous sample and advances
    the baseline. *)

val view_to_json : view -> Json.t

val pp_view : Format.formatter -> view -> unit
(** Sectioned text table (counters / gauges / histograms), one line per
    metric — the [hexastore top] screen body. *)
