(** The injectable clock every timed component reads.

    Library code must never call [Unix.gettimeofday] or [Sys.time]
    directly (the lint gate enforces this outside [lib/telemetry/]); it
    calls {!now}, whose source can be swapped for a deterministic one so
    that traces, EXPLAIN ANALYZE timings and the differential
    model-checker stay reproducible under test. *)

type source = unit -> float
(** A clock: seconds as a float, from an arbitrary epoch. *)

val wall : source
(** The real wall clock ([Unix.gettimeofday]); the default source. *)

val now : unit -> float
(** Read the current source. *)

val set_source : source -> unit

val reset : unit -> unit
(** Back to {!wall}. *)

val with_source : source -> (unit -> 'a) -> 'a
(** Run with a substitute clock, restoring the previous source on exit
    (including on exception). *)

val fixed : float -> source
(** A clock frozen at one instant. *)

val ticking : ?start:float -> ?step:float -> unit -> source
(** A deterministic clock advancing by [step] (default 1.0) on every
    read, starting so that the first read returns [start] (default 0).
    Golden tests of span timings use this. *)
