(* Standard exposition formats over the telemetry state:

   - Chrome trace-event JSON ("complete" [ph:"X"] events, microsecond
     units) from the span buffer, loadable in chrome://tracing and
     Perfetto;
   - Prometheus text exposition (version 0.0.4) from the metrics
     registry, with histogram quantile estimates as a companion gauge
     family and the flight-recorder / span-buffer ring accounting
     appended as synthesised series. *)

(* --- Chrome trace-event JSON ------------------------------------------- *)

(* Chrome renders one lane per (pid, tid); mapping tid to the span's
   domain makes a fanned query read as per-domain lanes.  Raw domain
   ids grow without bound across spawns, so the exported tid is the
   1-based rank of the span's domain among the distinct domains in the
   dump — stable across runs (the single-domain case keeps the
   historical tid=1) — and a thread_name metadata event names each
   lane. *)

let domain_ranks spans =
  let doms =
    List.sort_uniq compare (List.map (fun (s : Trace.span) -> s.Trace.dom) spans)
  in
  fun dom ->
    let rec rank i = function
      | [] -> 1 (* unseen domain: a span list not from [spans]; lane 1 *)
      | d :: tl -> if d = dom then i else rank (i + 1) tl
    in
    rank 1 doms

let span_to_trace_event ?(tid_of = fun _ -> 1) (s : Trace.span) =
  Json.Obj
    [
      ("name", Json.String s.Trace.name);
      ("cat", Json.String "hexastore");
      ("ph", Json.String "X");
      ("ts", Json.Float (s.Trace.start *. 1e6));
      ("dur", Json.Float (s.Trace.duration *. 1e6));
      ("pid", Json.Int 1);
      ("tid", Json.Int (tid_of s.Trace.dom));
      ( "args",
        Json.Obj
          ([ ("depth", Json.Int s.Trace.depth); ("id", Json.Int s.Trace.id) ]
          @ (match s.Trace.parent with
            | None -> []
            | Some p -> [ ("parent", Json.Int p) ])
          @ [ ("dom", Json.Int s.Trace.dom) ]) );
    ]

let thread_name_event tid =
  Json.Obj
    [
      ("name", Json.String "thread_name");
      ("ph", Json.String "M");
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "lane %d" tid)) ]);
    ]

let chrome_trace_of_spans spans =
  let tid_of = domain_ranks spans in
  let tids = List.sort_uniq compare (List.map (fun (s : Trace.span) -> tid_of s.Trace.dom) spans) in
  Json.Obj
    [
      ( "traceEvents",
        Json.List
          (List.map thread_name_event tids
          @ List.map (fun s -> span_to_trace_event ~tid_of s) spans) );
      ("displayTimeUnit", Json.String "ms");
    ]

let chrome_trace () = chrome_trace_of_spans (Trace.spans ())

(* --- Prometheus text exposition ---------------------------------------- *)

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; our dotted names
   map dots (and anything else) to underscores. *)
let metric_name name =
  String.map
    (fun c ->
      match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c | _ -> '_')
    name

let float_repr f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else Printf.sprintf "%.12g" f

let quantiles = [ ("0.5", 0.5); ("0.95", 0.95); ("0.99", 0.99) ]

let add_histogram buf name h =
  let n = metric_name name in
  Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" n);
  let cum =
    Histogram.fold_buckets
      (fun cum ~le ~count ->
        let cum = cum + count in
        Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"%d\"} %d\n" n le cum);
        cum)
      0 h
  in
  ignore cum;
  Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" n (Histogram.count h));
  Buffer.add_string buf (Printf.sprintf "%s_sum %d\n" n (Histogram.sum h));
  Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n (Histogram.count h));
  if Histogram.count h > 0 then begin
    Buffer.add_string buf (Printf.sprintf "# TYPE %s_quantile gauge\n" n);
    List.iter
      (fun (label, q) ->
        Buffer.add_string buf
          (Printf.sprintf "%s_quantile{quantile=\"%s\"} %s\n" n label
             (float_repr (Histogram.quantile h q))))
      quantiles
  end

let prometheus () =
  let buf = Buffer.create 4096 in
  Metrics.fold
    (fun () name m ->
      match m with
      | Metrics.Counter c ->
          let n = metric_name name in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" n);
          Buffer.add_string buf (Printf.sprintf "%s %d\n" n (Metrics.value c))
      | Metrics.Gauge g ->
          let n = metric_name name in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" n);
          Buffer.add_string buf (Printf.sprintf "%s %s\n" n (float_repr (Metrics.gauge_value g)))
      | Metrics.Histogram h -> add_histogram buf name h)
    ();
  (* Ring accounting for the flight recorder and the span buffer lives
     outside the registry (the recorder runs even with telemetry off);
     synthesise its series here so a scrape sees the drop counts. *)
  let synth ty n v =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" n ty);
    Buffer.add_string buf (Printf.sprintf "%s %d\n" n v)
  in
  synth "counter" "telemetry_events_recorded" (Events.recorded ());
  synth "counter" "telemetry_events_dropped" (Events.dropped ());
  synth "gauge" "telemetry_events_capacity" (Events.capacity ());
  Buffer.contents buf
