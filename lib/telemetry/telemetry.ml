module Config = Config
module Clock = Clock
module Json = Json
module Histogram = Histogram
module Metrics = Metrics
module Trace = Trace
module Events = Events
module Profile = Profile
module Export = Export
module Monitor = Monitor

let enabled = Config.enabled

let activity_count = Config.activity_count

let with_enabled flag f =
  let saved = !Config.enabled in
  Config.enabled := flag;
  Fun.protect ~finally:(fun () -> Config.enabled := saved) f

let report ppf () =
  Format.fprintf ppf "@[<v>%a@,@,slow queries:@,%a@,spans:@,%a@,events:@,%a@]" Metrics.pp_report
    () Profile.pp_slow_log () Trace.pp () Events.pp ()

let to_json () =
  Json.Obj
    [
      ("metrics", Metrics.to_json ());
      ("trace", Trace.to_json ());
      ("events", Events.to_json ());
      ("slow_queries", Profile.slow_log_to_json ());
    ]

let reset () =
  Metrics.reset_all ();
  Trace.clear ();
  Events.clear ();
  Profile.clear_slow_log ()
