module Config = Config
module Clock = Clock
module Json = Json
module Histogram = Histogram
module Metrics = Metrics
module Trace = Trace

let enabled = Config.enabled

let activity_count = Config.activity_count

let with_enabled flag f =
  let saved = !Config.enabled in
  Config.enabled := flag;
  Fun.protect ~finally:(fun () -> Config.enabled := saved) f

let report ppf () =
  Format.fprintf ppf "@[<v>%a@,@,spans:@,%a@]" Metrics.pp_report () Trace.pp ()

let to_json () =
  Json.Obj [ ("metrics", Metrics.to_json ()); ("trace", Trace.to_json ()) ]

let reset () =
  Metrics.reset_all ();
  Trace.clear ()
