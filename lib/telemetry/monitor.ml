(* Pull-based monitoring over the metrics registry: capture a snapshot
   of every registered metric (plus the flight-recorder / span-buffer
   ring accounting), diff two snapshots into a rate-computed view, and
   render it as text or JSON.

   The monitor deliberately owns no state and spawns nothing: a watcher
   (the [hexastore top] CLI, a future serving endpoint) keeps the
   previous sample and calls [diff] at its own cadence.  Sampling holds
   the registry lock only long enough to list the metrics; counter and
   gauge cells are atomics, so the values read are each individually
   consistent even while pool domains keep mutating them. *)

type hist_sample = {
  hs_count : int;
  hs_sum : int;
  hs_p50 : float;
  hs_p95 : float;
  hs_p99 : float;
}

type metric_sample =
  | S_counter of int
  | S_gauge of float
  | S_histogram of hist_sample

type sample = {
  taken_at : float;
  metrics : (string * metric_sample) list;
  s_events_recorded : int;
  s_events_dropped : int;
  s_spans_dropped : int;
}

let sample_histogram h =
  {
    hs_count = Histogram.count h;
    hs_sum = Histogram.sum h;
    hs_p50 = Histogram.quantile h 0.5;
    hs_p95 = Histogram.quantile h 0.95;
    hs_p99 = Histogram.quantile h 0.99;
  }

let sample () =
  let metrics =
    Metrics.fold
      (fun acc name m ->
        let s =
          match m with
          | Metrics.Counter c -> S_counter (Metrics.value c)
          | Metrics.Gauge g -> S_gauge (Metrics.gauge_value g)
          | Metrics.Histogram h -> S_histogram (sample_histogram h)
        in
        (name, s) :: acc)
      []
    |> List.rev
  in
  {
    taken_at = Clock.now ();
    metrics;
    s_events_recorded = Events.recorded ();
    s_events_dropped = Events.dropped ();
    s_spans_dropped = Trace.dropped ();
  }

(* --- views -------------------------------------------------------------- *)

type row =
  | Counter_rate of {
      total : int;
      rate : float; (* increments per second over the interval *)
    }
  | Gauge_level of { value : float }
  | Histogram_rate of {
      count : int;
      rate : float; (* observations per second over the interval *)
      p50 : float;
      p95 : float;
      p99 : float;
    }

type view = {
  at : float;
  interval_s : float;
  rows : (string * row) list;
  events_recorded : int;
  events_rate : float;
  events_dropped : int;
  spans_dropped : int;
}

let per_second dt delta = if dt > 0. then float_of_int delta /. dt else 0.

let diff prev next =
  let dt = next.taken_at -. prev.taken_at in
  let old name = List.assoc_opt name prev.metrics in
  let rows =
    List.map
      (fun (name, s) ->
        let r =
          match s with
          | S_counter v ->
              let v0 = match old name with Some (S_counter v0) -> v0 | _ -> 0 in
              Counter_rate { total = v; rate = per_second dt (v - v0) }
          | S_gauge v -> Gauge_level { value = v }
          | S_histogram h ->
              let c0 = match old name with Some (S_histogram h0) -> h0.hs_count | _ -> 0 in
              Histogram_rate
                {
                  count = h.hs_count;
                  rate = per_second dt (h.hs_count - c0);
                  p50 = h.hs_p50;
                  p95 = h.hs_p95;
                  p99 = h.hs_p99;
                }
        in
        (name, r))
      next.metrics
  in
  {
    at = next.taken_at;
    interval_s = dt;
    rows;
    events_recorded = next.s_events_recorded;
    events_rate = per_second dt (next.s_events_recorded - prev.s_events_recorded);
    events_dropped = next.s_events_dropped;
    spans_dropped = next.s_spans_dropped;
  }

let watch () =
  let prev = ref (sample ()) in
  fun () ->
    let next = sample () in
    let v = diff !prev next in
    prev := next;
    v

(* --- rendering ---------------------------------------------------------- *)

let row_to_json = function
  | Counter_rate { total; rate } ->
      Json.Obj
        [
          ("type", Json.String "counter");
          ("total", Json.Int total);
          ("per_s", Json.Float rate);
        ]
  | Gauge_level { value } ->
      Json.Obj [ ("type", Json.String "gauge"); ("value", Json.Float value) ]
  | Histogram_rate { count; rate; p50; p95; p99 } ->
      Json.Obj
        [
          ("type", Json.String "histogram");
          ("count", Json.Int count);
          ("per_s", Json.Float rate);
          ("p50", Json.Float p50);
          ("p95", Json.Float p95);
          ("p99", Json.Float p99);
        ]

let view_to_json v =
  Json.Obj
    [
      ("at", Json.Float v.at);
      ("interval_s", Json.Float v.interval_s);
      ("metrics", Json.Obj (List.map (fun (n, r) -> (n, row_to_json r)) v.rows));
      ( "events",
        Json.Obj
          [
            ("recorded", Json.Int v.events_recorded);
            ("per_s", Json.Float v.events_rate);
            ("dropped", Json.Int v.events_dropped);
          ] );
      ("spans_dropped", Json.Int v.spans_dropped);
    ]

let pp_view ppf v =
  Format.fprintf ppf "@[<v>interval %.3fs@," v.interval_s;
  (* Three fixed sections (counters, gauges, histograms) rather than
     interleaving by name order, so related quantities line up under one
     column header. *)
  let counters =
    List.filter_map
      (fun (n, r) -> match r with Counter_rate c -> Some (n, c.total, c.rate) | _ -> None)
      v.rows
  and gauges =
    List.filter_map
      (fun (n, r) -> match r with Gauge_level g -> Some (n, g.value) | _ -> None)
      v.rows
  and hists =
    List.filter_map
      (fun (n, r) ->
        match r with
        | Histogram_rate { count; rate; p50; p95; p99 } -> Some (n, count, rate, p50, p95, p99)
        | _ -> None)
      v.rows
  in
  if counters <> [] then begin
    Format.fprintf ppf "%s@," (Printf.sprintf "%-44s %10s %9s" "counters:" "total" "/s");
    List.iter
      (fun (name, total, rate) -> Format.fprintf ppf "  %-42s %10d %9.1f@," name total rate)
      counters
  end;
  if gauges <> [] then begin
    Format.fprintf ppf "gauges:@,";
    List.iter (fun (name, value) -> Format.fprintf ppf "  %-42s %10g@," name value) gauges
  end;
  if hists <> [] then begin
    Format.fprintf ppf "%s@,"
      (Printf.sprintf "%-44s %10s %9s %9s %9s %9s" "histograms:" "count" "/s" "p50" "p95" "p99");
    List.iter
      (fun (name, count, rate, p50, p95, p99) ->
        Format.fprintf ppf "  %-42s %10d %9.1f %9.1f %9.1f %9.1f@," name count rate p50 p95 p99)
      hists
  end;
  Format.fprintf ppf "events: recorded=%d (%.1f/s) dropped=%d; spans dropped=%d@]"
    v.events_recorded v.events_rate v.events_dropped v.spans_dropped
