(** Span-based tracing.

    A span is one timed region — a query operator, a bulk load, a
    benchmark body — named, clocked through the injectable {!Clock} (so
    a deterministic source gives deterministic traces), and recorded
    with its nesting depth, a process-unique id, its parent span (if
    any) and the domain it completed on.  Completed spans accumulate in
    a process buffer, bounded at an internal cap (further spans are
    counted as dropped rather than recorded).

    Nesting is tracked per domain (domain-local storage), so spans on
    concurrent domains do not entangle.  A span opened inside a pool
    task can be attached to the submitting query's span by passing that
    span's handle as [?parent] — the explicit cross-domain edge the
    Chrome-trace export renders as per-domain lanes under one query.

    While [Telemetry.enabled] is off, {!with_span} is exactly the
    wrapped call: one flag read, nothing recorded, nothing allocated. *)

type span = {
  name : string;
  start : float;        (** {!Clock.now} at entry *)
  duration : float;     (** seconds *)
  depth : int;          (** nesting depth at entry, outermost = 0 *)
  id : int;             (** process-unique, > 0 *)
  parent : int option;  (** enclosing span's [id]: the innermost span
                            open on the entering domain, or the handle
                            passed as [?parent] *)
  dom : int;            (** id of the domain the span completed on *)
}

type handle
(** An open span from {!enter_span}.  The handle API exists for call
    sites that cannot be expressed as a closure (resource lifetimes
    spanning functions) and as the parent token for cross-domain
    propagation ({!with_span_h}); everywhere else use {!with_span} —
    the [span-hygiene] lint rule enforces exactly that for library
    code. *)

val with_span : ?parent:handle -> string -> (unit -> 'a) -> 'a
(** Time [f] under [name].  The span is recorded even when [f] raises.
    [?parent] attaches it under an explicitly held handle (a pool task
    joining its submitting query) instead of this domain's innermost
    open span. *)

val with_span_h : ?parent:handle -> string -> (handle -> 'a) -> 'a
(** {!with_span}, but [f] receives the open span's handle — pass it as
    [?parent] to spans created inside tasks fanned out to other
    domains.  While the gate is off [f] gets a disabled handle (safe to
    pass on: it propagates "no parent"). *)

val enter_span : ?parent:handle -> string -> handle
(** Open a span ([lint: allow span-hygiene] — this is the definition).
    While the gate is off, returns a shared no-op handle without
    allocating. *)

val exit_span : handle -> unit
(** Close and record the span.  Idempotent; a second call (or any call
    on a disabled handle) is a no-op.  Must run on the domain that
    entered the span (it restores that domain's nesting state). *)

val spans : unit -> span list
(** Completed spans, in completion order. *)

val dropped : unit -> int
(** Spans discarded since the buffer filled (see module doc).  Also
    mirrored into the registry as the [telemetry.trace.dropped]
    counter. *)

val clear : unit -> unit
(** Empty the buffer, zero the drop count, reset ids and the calling
    domain's nesting. *)

val to_json : unit -> Json.t

val pp : Format.formatter -> unit -> unit
(** One line per span, indented by depth. *)
