(** Span-based tracing.

    A span is one timed region — a query operator, a bulk load, a
    benchmark body — named, clocked through the injectable {!Clock} (so
    a deterministic source gives deterministic traces), and recorded
    with its nesting depth.  Completed spans accumulate in a process
    buffer, bounded at an internal cap (further spans are counted as
    dropped rather than recorded).

    While [Telemetry.enabled] is off, {!with_span} is exactly the
    wrapped call: one flag read, nothing recorded, nothing allocated. *)

type span = {
  name : string;
  start : float;    (** {!Clock.now} at entry *)
  duration : float; (** seconds *)
  depth : int;      (** nesting depth at entry, outermost = 0 *)
}

val with_span : string -> (unit -> 'a) -> 'a
(** Time [f] under [name].  The span is recorded even when [f] raises. *)

type handle
(** An open span from {!enter_span}.  The handle API exists for call
    sites that cannot be expressed as a closure (resource lifetimes
    spanning functions); everywhere else use {!with_span} — the
    [span-hygiene] lint rule enforces exactly that for library code. *)

val enter_span : string -> handle
(** Open a span ([lint: allow span-hygiene] — this is the definition).
    While the gate is off, returns a shared no-op handle without
    allocating. *)

val exit_span : handle -> unit
(** Close and record the span.  Idempotent; a second call (or any call
    on a disabled handle) is a no-op. *)

val spans : unit -> span list
(** Completed spans, in completion order. *)

val dropped : unit -> int
(** Spans discarded since the buffer filled (see module doc).  Also
    mirrored into the registry as the [telemetry.trace.dropped]
    counter. *)

val clear : unit -> unit
(** Empty the buffer, zero the drop count, reset nesting. *)

val to_json : unit -> Json.t

val pp : Format.formatter -> unit -> unit
(** One line per span, indented by depth. *)
