(** Fixed log-spaced integer histograms.

    40 buckets with upper bounds 2{^0} … 2{^39} (the last bucket also
    absorbs larger values); the bucket array is allocated once at
    registration so {!observe} is allocation-free.  Observation is a
    no-op while [Telemetry.enabled] is off.

    Used for terminal-list scan lengths, merge kernel input/output sizes
    and (in nanoseconds) operator latencies. *)

type t

val make : string -> t
(** Usually reached through [Metrics.histogram], which registers the
    result process-wide. *)

val name : t -> string

val observe : t -> int -> unit
(** Record one value ([<= 1] lands in the first bucket).  Gated on
    [Telemetry.enabled]. *)

val count : t -> int
val sum : t -> int
val min_value : t -> int option
val max_value : t -> int option
val mean : t -> float

val quantile : t -> float -> float
(** [quantile h q] estimates the [q]-quantile ([0. <= q <= 1.], clamped)
    by linear interpolation inside the log-spaced bucket the rank falls
    in, clamped to the observed min/max.  [0.] on an empty histogram.
    Monotone in [q], so p50 <= p95 <= p99 always holds. *)

val reset : t -> unit

val fold_buckets : ('a -> le:int -> count:int -> 'a) -> 'a -> t -> 'a
(** Over non-empty buckets, in increasing bound order. *)

val to_json : t -> Json.t

val pp : Format.formatter -> t -> unit
