(* domain-safety: immutable-after-init — set from the environment at
   module init; only tests and the bench overhead figure toggle it, in
   single-threaded sections. *)
let enabled =
  ref
    (match Sys.getenv_opt "HEXASTORE_TELEMETRY" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

(* domain-safety: telemetry-gated — bumped only behind [enabled]; a
   lost increment under racing domains skews a diagnostic count, never
   query results. *)
let count = ref 0

let activity_count () = !count

let note_activity () = incr count
