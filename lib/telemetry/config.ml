let enabled =
  ref
    (match Sys.getenv_opt "HEXASTORE_TELEMETRY" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

let count = ref 0

let activity_count () = !count

let note_activity () = incr count
