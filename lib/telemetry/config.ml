(* domain-safety: immutable-after-init — set from the environment at
   module init; only tests and the bench overhead figure toggle it, in
   single-threaded sections. *)
let enabled =
  ref
    (match Sys.getenv_opt "HEXASTORE_TELEMETRY" with
    | Some ("1" | "true" | "on") -> true
    | Some _ | None -> false)

(* domain-safety: atomic — bumped lock-free from every domain once
   queries fan out; a plain ref would drop increments under parallel
   emitters and the activity count backs the zero-allocation-when-idle
   telemetry tests, which need it exact. *)
let count = Atomic.make 0

let activity_count () = Atomic.get count

let note_activity () = Atomic.incr count
