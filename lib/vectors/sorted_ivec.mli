(** Sorted vectors of distinct integers.

    The backbone of every Hexastore vector and terminal list (§4.1 of the
    paper: "The keys of resources in all vectors and lists used in a
    Hexastore are sorted").  Elements are kept strictly increasing, so a
    [Sorted_ivec.t] is simultaneously an ordered set and a merge-join
    operand.

    Mutation is by binary insertion — O(n) worst case, which mirrors the
    paper's observation that updates are the Hexastore's weak spot — with an
    O(1) amortised fast path when keys arrive in ascending order (the bulk
    loading case).

    Since PR 10 a sorted vector is either that raw mutable form or an
    immutable {e slice} of a shared compressed stream ({!Packed_ivec}
    frame-of-reference bit-packing or {!Delta_ivec} delta+varint).
    Every read — including the galloping {!search_from} the merge
    kernels lean on — works on all three representations without
    materialising arrays; mutations ({!add}, {!remove}, {!clear}) raise
    [Invalid_argument] on compressed slices. *)

type t

(** Physical representation of a vector or stream. *)
type kind = Raw | Packed | Delta_varint

val kind_name : kind -> string
(** ["raw"], ["packed"], ["delta_varint"]. *)

val kind_of_name : string -> kind option
(** Inverse of {!kind_name} (case-insensitive; ["delta"] also accepted).
    This parses the [HEXASTORE_REPR] environment variable. *)

val kind_of : t -> kind

val is_compressed : t -> bool
(** [kind_of v <> Raw]. *)

val create : ?capacity:int -> unit -> t

val singleton : int -> t

val of_sorted_array : int array -> t
(** [of_sorted_array a] adopts a copy of [a].
    @raise Invalid_argument if [a] is not strictly increasing. *)

val of_list : int list -> t
(** Builds from an arbitrary list (sorts and de-duplicates). *)

val length : t -> int

val is_empty : t -> bool

val get : t -> int -> int
(** [get v i] is the [i]-th smallest element. *)

val min_elt : t -> int
(** @raise Not_found on empty. *)

val max_elt : t -> int
(** @raise Not_found on empty. *)

val mem : t -> int -> bool
(** Binary search; O(log n). *)

val rank : t -> int -> int
(** [rank v x] is the number of elements strictly smaller than [x];
    equivalently the index at which [x] is or would be inserted. *)

val find_geq : t -> int -> int option
(** [find_geq v x] is the smallest element [>= x], if any.  This is the
    "seek" operation merge-joins use to leapfrog. *)

val index_geq : t -> int -> int
(** [index_geq v x] is the index of the smallest element [>= x], or
    [length v] when every element is smaller. *)

val search_from : t -> from:int -> int -> int
(** [search_from v ~from x] is the index of the smallest element [>= x]
    at position [>= from], or [length v] when there is none — an
    exponential (galloping) search that costs O(log(gap)) where [gap] is
    the distance advanced from [from].  Repeated ascending probes that
    resume from the previous hit therefore pay for the distance they
    cover, not for [log n] each: the resumable cursor behind the
    executor's merge joins.  Observes the [vectors.gallop.skip]
    histogram with the distance skipped. *)

val add : t -> int -> bool
(** [add v x] inserts [x] keeping order; returns [false] if already
    present.  O(1) amortised when [x > max_elt v]. *)

val remove : t -> int -> bool
(** [remove v x] deletes [x]; returns [false] if absent. *)

val iter : (int -> unit) -> t -> unit

val iter_from : (int -> unit) -> t -> int -> unit
(** [iter_from f v x] applies [f] to every element [>= x] in order. *)

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val to_list : t -> int list

val to_array : t -> int array

val to_seq : t -> int Seq.t

val to_seq_from : t -> int -> int Seq.t
(** Elements [>= x] in ascending order. *)

val choose_arbitrary : t -> int option
(** Some element, or [None] on empty (the smallest, in fact). *)

val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]. *)

val equal : t -> t -> bool

val copy : t -> t

val clear : t -> unit

val memory_words : t -> int

val pp : Format.formatter -> t -> unit

val check_invariant : t -> unit
(** Asserts strict ascending order; test helper.
    @raise Assert_failure when the invariant is broken. *)

(** {1 Compressed streams and slices}

    A [stream] is one big encoded payload shared by many slices — the
    flat index keeps four of them per ordering and exposes every
    terminal list and key run as a 4-word slice header.  Streams are
    encoded once from a complete array and never mutated. *)

type stream

val stream_of_array : kind -> segments:int array -> int array -> stream
(** Encodes [a] with the given codec.  [segments] lists the start
    positions of the monotone runs concatenated in [a] (ascending); the
    delta codec aligns its blocks on them so every run starts on a
    block boundary (the bit-packed codec, being order-agnostic, ignores
    them).  @raise Invalid_argument on [Raw], or if a delta block is
    not strictly increasing. *)

val stream_length : stream -> int

val stream_get : stream -> int -> int

val slice : stream -> off:int -> len:int -> t
(** A zero-copy view of positions [off, off+len).  For the delta codec
    the window must be one monotone segment (as declared to
    {!stream_of_array}).  @raise Invalid_argument out of bounds. *)

val stream_memory_words : stream -> int
(** Exact footprint of the encoded stream, headers included. *)

val stream_validate : stream -> string list
(** Codec-level structural audit; empty means sound. *)

val compress : kind -> t -> t
(** [compress k v] re-encodes [v]'s elements as a standalone
    single-segment vector of representation [k].  [Raw] materialises a
    mutable copy (identity on already-raw vectors). *)

val block_violations : t -> string list
(** Per-block header violations of the vector's backing stream (empty
    for raw vectors) — the codec leg of [Check.Invariant.sorted_ivec]. *)

val note_bytes_saved : int -> unit
(** Adds to the [vectors.repr.bytes_saved] counter (store compression
    reports its before/after delta here). *)
