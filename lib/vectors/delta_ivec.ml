(* Delta + LEB128 varint coding over block-aligned segments.

   Block metadata — start positions [bstart] (nb+1), first values
   [bfirst] (nb), payload byte offsets [bbyte] (nb+1) — is itself kept
   bit-packed, since with many tiny segments (one per terminal list)
   the metadata would otherwise dominate the payload.  The payload for
   a block is the varint gap sequence between consecutive elements; the
   first element lives only in [bfirst]. *)

let block_size = 128

let m_blocks_decoded = Telemetry.Metrics.counter "vectors.repr.blocks_decoded"

(* One-block point-read cache.  The record is immutable and swapped
   atomically, so concurrent readers from pool domains can at worst
   waste a decode — never observe a torn block. *)
type cache = { cb : int; cvals : int array }

type t = {
  n : int;
  bstart : Packed_ivec.t; (* nb + 1 block start positions, last = n *)
  bfirst : Packed_ivec.t; (* nb block-first values *)
  bbyte : Packed_ivec.t; (* nb + 1 payload byte offsets, last = payload end *)
  data : Bytes.t;
  cache : cache Atomic.t;
}

let length t = t.n

let bstart t b = Packed_ivec.get t.bstart b

let write_varint buf v =
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char buf (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char buf (Char.unsafe_chr !v)

let of_array ~segments a =
  let n = Array.length a in
  Array.iteri
    (fun i s ->
      if s < 0 || s > n || (i > 0 && s < segments.(i - 1)) then
        invalid_arg "Delta_ivec.of_array: segments not ascending within [0, n]")
    segments;
  (* Cut positions: every segment start, and every [block_size] elements
     in between. *)
  let starts = ref [] in
  let nseg = Array.length segments in
  let si = ref 0 in
  let pos = ref 0 in
  while !pos < n do
    starts := !pos :: !starts;
    while !si < nseg && segments.(!si) <= !pos do
      incr si
    done;
    let next_seg = if !si < nseg then segments.(!si) else n in
    pos := min (!pos + block_size) next_seg
  done;
  let starts = Array.of_list (List.rev !starts) in
  let nb = Array.length starts in
  let bstart = Array.make (nb + 1) n in
  Array.blit starts 0 bstart 0 nb;
  let bfirst = Array.make nb 0 in
  let bbyte = Array.make (nb + 1) 0 in
  let buf = Buffer.create (2 * n) in
  for b = 0 to nb - 1 do
    let bs = bstart.(b) and be = bstart.(b + 1) in
    bfirst.(b) <- a.(bs);
    bbyte.(b) <- Buffer.length buf;
    for i = bs + 1 to be - 1 do
      let gap = a.(i) - a.(i - 1) in
      if gap <= 0 then invalid_arg "Delta_ivec.of_array: block not strictly increasing";
      write_varint buf gap
    done
  done;
  bbyte.(nb) <- Buffer.length buf;
  {
    n;
    bstart = Packed_ivec.of_array bstart;
    bfirst = Packed_ivec.of_array bfirst;
    bbyte = Packed_ivec.of_array bbyte;
    data = Buffer.to_bytes buf;
    cache = Atomic.make { cb = -1; cvals = [||] };
  }

(* Greatest block [b] with [bstart b <= i]; callers guarantee
   [0 <= i < n]. *)
let block_of t i =
  let lo = ref 0 and hi = ref (Packed_ivec.length t.bfirst - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if Packed_ivec.get t.bstart mid <= i then lo := mid else hi := mid - 1
  done;
  !lo

let decode_into t b buf =
  Telemetry.Metrics.incr m_blocks_decoded;
  let count = bstart t (b + 1) - bstart t b in
  buf.(0) <- Packed_ivec.get t.bfirst b;
  let off = ref (Packed_ivec.get t.bbyte b) in
  for j = 1 to count - 1 do
    let gap = ref 0 and shift = ref 0 and continue = ref true in
    while !continue do
      let byte = Char.code (Bytes.get t.data !off) in
      incr off;
      gap := !gap lor ((byte land 0x7f) lsl !shift);
      shift := !shift + 7;
      continue := byte land 0x80 <> 0
    done;
    buf.(j) <- buf.(j - 1) + !gap
  done;
  count

let cached_block t b =
  let c = Atomic.get t.cache in
  if c.cb = b then c.cvals
  else begin
    let vals = Array.make (bstart t (b + 1) - bstart t b) 0 in
    ignore (decode_into t b vals : int);
    Atomic.set t.cache { cb = b; cvals = vals };
    vals
  end

let get t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Delta_ivec.get: index %d out of bounds [0,%d)" i t.n);
  let b = block_of t i in
  (cached_block t b).(i - bstart t b)

let iter_range f t ~lo ~hi =
  let lo = max lo 0 and hi = min hi t.n in
  if lo < hi then begin
    let buf = Array.make block_size 0 in
    let b0 = block_of t lo and b1 = block_of t (hi - 1) in
    for b = b0 to b1 do
      let bs = bstart t b and be = bstart t (b + 1) in
      ignore (decode_into t b buf : int);
      for j = max lo bs - bs to min hi be - bs - 1 do
        f (Array.unsafe_get buf j)
      done
    done
  end

let to_seq_range t ~lo ~hi =
  let hi = min hi t.n in
  (* Each closure captures its block's private decoded array, so a
     cursor costs one ≤128-entry buffer per block visited and re-forcing
     an earlier node never races a shared buffer. *)
  let rec from_pos i bs be vals () =
    if i >= hi then Seq.Nil
    else if i < be then Seq.Cons (vals.(i - bs), from_pos (i + 1) bs be vals)
    else enter i ()
  and enter i () =
    if i >= hi then Seq.Nil
    else begin
      let b = block_of t i in
      let bs = bstart t b and be = bstart t (b + 1) in
      let vals = Array.make (be - bs) 0 in
      ignore (decode_into t b vals : int);
      from_pos i bs be vals ()
    end
  in
  enter (max lo 0)

let search_range t ~lo ~hi ~from x =
  let hi = min hi t.n in
  let from = max (max lo 0) from in
  if from >= hi then hi
  else begin
    let bl = block_of t from in
    if Packed_ivec.get t.bfirst bl > x then
      (* Every element at position >= from is >= bfirst(bl) > x — for a
         monotone window that makes [from] itself the first hit. *)
      from
    else begin
      let bh = block_of t (hi - 1) in
      (* Gallop over block firsts for the last block with bfirst <= x. *)
      let step = ref 1 in
      let blo = ref bl in
      while !blo + !step <= bh && Packed_ivec.get t.bfirst (!blo + !step) <= x do
        blo := !blo + !step;
        step := !step * 2
      done;
      let bhi = ref (min bh (!blo + !step)) in
      while !blo < !bhi do
        let mid = (!blo + !bhi + 1) / 2 in
        if Packed_ivec.get t.bfirst mid <= x then blo := mid else bhi := mid - 1
      done;
      let b = !blo in
      let bs = bstart t b and be = bstart t (b + 1) in
      let vals = cached_block t b in
      (* First position >= x inside the one decoded block. *)
      let jlo = ref (max from bs - bs) and jhi = ref (min hi be - bs) in
      if !jlo < !jhi && vals.(!jhi - 1) < x then
        (* Whole in-window block below x: the next block's first value is
           > x by choice of [b], so its start position is the answer. *)
        if be < hi then be else hi
      else begin
        while !jlo < !jhi do
          let mid = (!jlo + !jhi) / 2 in
          if Array.unsafe_get vals mid < x then jlo := mid + 1 else jhi := mid
        done;
        bs + !jlo
      end
    end
  end

let to_array t =
  let a = Array.make t.n 0 in
  let i = ref 0 in
  iter_range
    (fun v ->
      a.(!i) <- v;
      incr i)
    t ~lo:0 ~hi:t.n;
  a

let encoded_bytes t = Bytes.length t.data

let bytes_words len = 1 + ((len + 8) / 8)

let memory_words t =
  let c = Atomic.get t.cache in
  1 + 6 (* record *)
  + Packed_ivec.memory_words t.bstart
  + Packed_ivec.memory_words t.bfirst
  + Packed_ivec.memory_words t.bbyte
  + bytes_words (Bytes.length t.data)
  + 2 (* Atomic.t cell *)
  + 3 (* cache record *)
  + (Array.length c.cvals + 1)

let validate t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  List.iter
    (fun (name, p) ->
      List.iter (fun e -> err "%s: %s" name e) (Packed_ivec.validate p))
    [ ("bstart", t.bstart); ("bfirst", t.bfirst); ("bbyte", t.bbyte) ];
  let nb = Packed_ivec.length t.bfirst in
  if Packed_ivec.length t.bstart <> nb + 1 then
    err "bstart length %d, expected %d" (Packed_ivec.length t.bstart) (nb + 1);
  if Packed_ivec.length t.bbyte <> nb + 1 then
    err "bbyte length %d, expected %d" (Packed_ivec.length t.bbyte) (nb + 1);
  if !errs = [] then begin
    if nb > 0 && bstart t 0 <> 0 then err "bstart.(0) = %d, expected 0" (bstart t 0);
    if bstart t nb <> t.n then err "bstart.(%d) = %d, expected n = %d" nb (bstart t nb) t.n;
    if Packed_ivec.get t.bbyte nb <> Bytes.length t.data then
      err "bbyte.(%d) = %d, expected payload end %d" nb (Packed_ivec.get t.bbyte nb)
        (Bytes.length t.data);
    let buf = Array.make block_size 0 in
    for b = 0 to nb - 1 do
      let bs = bstart t b and be = bstart t (b + 1) in
      if be <= bs then err "block %d: empty or non-ascending bounds [%d,%d)" b bs be;
      if be - bs > block_size then err "block %d: %d elements > block size" b (be - bs);
      if Packed_ivec.get t.bbyte (b + 1) < Packed_ivec.get t.bbyte b then
        err "block %d: payload offsets not ascending" b;
      if be > bs && be - bs <= block_size then begin
        ignore (decode_into t b buf : int);
        if buf.(0) <> Packed_ivec.get t.bfirst b then
          err "block %d: first value %d <> header %d" b buf.(0) (Packed_ivec.get t.bfirst b);
        for j = 1 to be - bs - 1 do
          if buf.(j) <= buf.(j - 1) then
            err "block %d: not strictly increasing at offset %d" b j
        done
      end
    done
  end;
  List.rev !errs
