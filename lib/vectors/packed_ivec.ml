(* Frame-of-reference bit-packing, 128-entry blocks.

   Layout per block [b] over elements [128b, min (128(b+1)) n):
     mins.(b)    — frame of reference (block minimum)
     width of b  — one byte in [widths]; 0..56, or 64 for raw cells
     boffs.(b)   — byte offset of the block's first cell in [data]
   A width-[w] cell [j] lives at bit [j*w] past [boffs.(b)]; decoding
   reads the 64-bit little-endian window at byte [boffs.(b) + (j*w)/8]
   and extracts [w] bits at offset [(j*w) mod 7+1].  Since [w <= 56]
   and the in-byte offset is [<= 7], the cell always fits the window —
   widths that would need 57..63 bits are promoted to 64 (raw little-
   endian 8-byte cells holding the value itself, min unused).  [data]
   carries 8 trailing padding bytes so the window read at the last cell
   stays in bounds. *)

let block_size = 128

type t = {
  n : int;
  mins : int array;
  widths : Bytes.t; (* one byte per block *)
  boffs : int array; (* nb + 1: per-block data offset, last = payload end *)
  data : Bytes.t; (* packed cells + 8 padding bytes *)
}

(* domain-safety: immutable-after-init — per-width extraction masks,
   filled once at module initialisation and only read afterwards. *)
let masks : int64 array =
  Array.init 57 (fun w -> if w = 0 then 0L else Int64.sub (Int64.shift_left 1L w) 1L)

let bits_needed r =
  let rec go w v = if v = 0 then w else go (w + 1) (v lsr 1) in
  go 0 r

let block_bytes ~width ~count =
  if width = 64 then count * 8 else (count * width + 7) / 8

let of_array a =
  let n = Array.length a in
  let nb = (n + block_size - 1) / block_size in
  let mins = Array.make (max nb 1) 0 in
  let widths = Bytes.make (max nb 1) '\000' in
  let boffs = Array.make (nb + 1) 0 in
  for b = 0 to nb - 1 do
    let lo = b * block_size in
    let hi = min n (lo + block_size) in
    let mn = ref a.(lo) and mx = ref a.(lo) in
    for i = lo + 1 to hi - 1 do
      if a.(i) < !mn then mn := a.(i);
      if a.(i) > !mx then mx := a.(i)
    done;
    let range = !mx - !mn in
    (* range < 0 means max - min overflowed the 63-bit int: raw cells. *)
    let w = if range < 0 then 64 else bits_needed range in
    let w = if w > 56 then 64 else w in
    mins.(b) <- !mn;
    Bytes.unsafe_set widths b (Char.unsafe_chr w);
    boffs.(b + 1) <- boffs.(b) + block_bytes ~width:w ~count:(hi - lo)
  done;
  let data = Bytes.make (boffs.(nb) + 8) '\000' in
  for b = 0 to nb - 1 do
    let lo = b * block_size in
    let hi = min n (lo + block_size) in
    let w = Char.code (Bytes.unsafe_get widths b) in
    if w = 64 then
      for i = lo to hi - 1 do
        Bytes.set_int64_le data (boffs.(b) + ((i - lo) * 8)) (Int64.of_int a.(i))
      done
    else if w > 0 then
      for i = lo to hi - 1 do
        let cell = Int64.of_int (a.(i) - mins.(b)) in
        let bit = (i - lo) * w in
        let off = boffs.(b) + (bit lsr 3) in
        let word = Bytes.get_int64_le data off in
        Bytes.set_int64_le data off (Int64.logor word (Int64.shift_left cell (bit land 7)))
      done
  done;
  { n; mins; widths; boffs; data }

let length t = t.n

let unsafe_get t i =
  let b = i lsr 7 in
  let j = i land 127 in
  let w = Char.code (Bytes.unsafe_get t.widths b) in
  if w = 0 then Array.unsafe_get t.mins b
  else if w = 64 then Int64.to_int (Bytes.get_int64_le t.data (Array.unsafe_get t.boffs b + (j * 8)))
  else
    let bit = j * w in
    let word = Bytes.get_int64_le t.data (Array.unsafe_get t.boffs b + (bit lsr 3)) in
    Array.unsafe_get t.mins b
    + Int64.to_int (Int64.logand (Int64.shift_right_logical word (bit land 7)) (Array.unsafe_get masks w))

let get t i =
  if i < 0 || i >= t.n then
    invalid_arg (Printf.sprintf "Packed_ivec.get: index %d out of bounds [0,%d)" i t.n);
  unsafe_get t i

let iter_range f t ~lo ~hi =
  for i = max lo 0 to min hi t.n - 1 do
    f (unsafe_get t i)
  done

let iter f t = iter_range f t ~lo:0 ~hi:t.n

let to_array t = Array.init t.n (unsafe_get t)

let encoded_bytes t = t.boffs.(Array.length t.boffs - 1)

let bytes_words len = 1 + ((len + 8) / 8)

let memory_words t =
  1 + 5 (* record *)
  + (Array.length t.mins + 1)
  + (Array.length t.boffs + 1)
  + bytes_words (Bytes.length t.widths)
  + bytes_words (Bytes.length t.data)

let validate t =
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  let nb = (t.n + block_size - 1) / block_size in
  if Array.length t.boffs <> nb + 1 then
    err "boffs length %d, expected %d" (Array.length t.boffs) (nb + 1);
  if Array.length t.mins < nb then err "mins length %d < %d blocks" (Array.length t.mins) nb;
  if Bytes.length t.widths < nb then
    err "widths length %d < %d blocks" (Bytes.length t.widths) nb;
  if !errs = [] then begin
    if t.boffs.(0) <> 0 then err "boffs.(0) = %d, expected 0" t.boffs.(0);
    for b = 0 to nb - 1 do
      let lo = b * block_size in
      let hi = min t.n (lo + block_size) in
      let w = Char.code (Bytes.get t.widths b) in
      if w > 56 && w <> 64 then err "block %d: invalid width %d" b w;
      let expect = t.boffs.(b) + block_bytes ~width:w ~count:(hi - lo) in
      if t.boffs.(b + 1) <> expect then
        err "block %d: boffs.(%d) = %d, expected %d" b (b + 1) t.boffs.(b + 1) expect;
      if w <> 64 then begin
        (* Frame tightness: the block minimum must be attained, and every
           cell must fit the declared width. *)
        let tight = ref false in
        for i = lo to hi - 1 do
          let v = unsafe_get t i in
          if v = t.mins.(b) then tight := true;
          let cell = v - t.mins.(b) in
          if cell < 0 || cell lsr w <> 0 then
            err "block %d: cell %d = %d outside width-%d frame at min %d" b (i - lo) v w
              t.mins.(b)
        done;
        if hi > lo && not !tight then err "block %d: min %d not attained" b t.mins.(b)
      end
    done;
    if Bytes.length t.data <> t.boffs.(nb) + 8 then
      err "data length %d, expected %d (+8 padding)" (Bytes.length t.data) (t.boffs.(nb) + 8)
  end;
  List.rev !errs
