(* Telemetry: per-kernel call counters plus shared input/output size
   histograms.  [note] is one flag read when telemetry is off. *)
let m_intersect = Telemetry.Metrics.counter "vectors.merge.intersect.calls"
let m_union = Telemetry.Metrics.counter "vectors.merge.union.calls"
let m_diff = Telemetry.Metrics.counter "vectors.merge.diff.calls"
let m_join = Telemetry.Metrics.counter "vectors.merge.merge_join.calls"
let m_input = Telemetry.Metrics.histogram "vectors.merge.input_keys"
let m_output = Telemetry.Metrics.histogram "vectors.merge.output_keys"

let note kernel ~input ~output =
  if !Telemetry.Config.enabled then begin
    Telemetry.Metrics.incr kernel;
    Telemetry.Metrics.observe m_input input;
    Telemetry.Metrics.observe m_output output
  end

let intersect a b =
  let na = Sorted_ivec.length a and nb = Sorted_ivec.length b in
  let out = Sorted_ivec.create ~capacity:(min na nb |> max 1) () in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let x = Sorted_ivec.get a !i and y = Sorted_ivec.get b !j in
    if x = y then begin
      ignore (Sorted_ivec.add out x);
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  note m_intersect ~input:(na + nb) ~output:(Sorted_ivec.length out);
  out

let intersect_arrays a b =
  let na = Array.length a and nb = Array.length b in
  let out = Dynarray_int.create ~capacity:(max 1 (min na nb)) () in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      Dynarray_int.push out x;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  Dynarray_int.to_array out

let intersect_count a b =
  let na = Sorted_ivec.length a and nb = Sorted_ivec.length b in
  let rec loop i j acc =
    if i >= na || j >= nb then acc
    else
      let x = Sorted_ivec.get a i and y = Sorted_ivec.get b j in
      if x = y then loop (i + 1) (j + 1) (acc + 1)
      else if x < y then loop (i + 1) j acc
      else loop i (j + 1) acc
  in
  loop 0 0 0

let intersect_count_adaptive a b =
  let small, large =
    if Sorted_ivec.length a <= Sorted_ivec.length b then (a, b) else (b, a)
  in
  let ns = Sorted_ivec.length small and nl = Sorted_ivec.length large in
  if ns = 0 then 0
  else if nl / (ns + 1) < 16 then intersect_count a b
  else begin
    (* Gallop each element of the smaller operand forward through the
       larger one; the cursor is monotone so total work is
       O(ns log(nl/ns)). *)
    let count = ref 0 in
    let cursor = ref 0 in
    Sorted_ivec.iter
      (fun x ->
        let lo = Sorted_ivec.search_from large ~from:!cursor x in
        cursor := lo;
        if lo < nl && Sorted_ivec.get large lo = x then incr count)
      small;
    !count
  end

let intersect_gallop small large =
  let small, large =
    if Sorted_ivec.length small <= Sorted_ivec.length large then (small, large)
    else (large, small)
  in
  let out = Sorted_ivec.create ~capacity:(max 1 (Sorted_ivec.length small)) () in
  (* Each probe seeks forward from the previous hit, so the scan over
     [large] is monotone even though individual probes are logarithmic. *)
  let cursor = ref 0 in
  let nl = Sorted_ivec.length large in
  Sorted_ivec.iter
    (fun x ->
      let lo = Sorted_ivec.search_from large ~from:!cursor x in
      cursor := lo;
      if lo < nl && Sorted_ivec.get large lo = x then ignore (Sorted_ivec.add out x))
    small;
  note m_intersect
    ~input:(Sorted_ivec.length small + nl)
    ~output:(Sorted_ivec.length out);
  out

let union a b =
  let na = Sorted_ivec.length a and nb = Sorted_ivec.length b in
  let out = Sorted_ivec.create ~capacity:(max 1 (na + nb)) () in
  let i = ref 0 and j = ref 0 in
  while !i < na && !j < nb do
    let x = Sorted_ivec.get a !i and y = Sorted_ivec.get b !j in
    if x = y then begin
      ignore (Sorted_ivec.add out x);
      incr i;
      incr j
    end
    else if x < y then begin
      ignore (Sorted_ivec.add out x);
      incr i
    end
    else begin
      ignore (Sorted_ivec.add out y);
      incr j
    end
  done;
  while !i < na do
    ignore (Sorted_ivec.add out (Sorted_ivec.get a !i));
    incr i
  done;
  while !j < nb do
    ignore (Sorted_ivec.add out (Sorted_ivec.get b !j));
    incr j
  done;
  note m_union ~input:(na + nb) ~output:(Sorted_ivec.length out);
  out

let union_many vs =
  (* Tournament of pairwise merges keeps the total work O(n log k) instead
     of the O(nk) a left fold would cost. *)
  let rec round = function
    | [] -> Sorted_ivec.create ()
    | [ v ] -> v
    | vs ->
        let rec pair = function
          | a :: b :: rest -> union a b :: pair rest
          | rest -> rest
        in
        round (pair vs)
  in
  round vs

let diff a b =
  let na = Sorted_ivec.length a and nb = Sorted_ivec.length b in
  let out = Sorted_ivec.create ~capacity:(max 1 na) () in
  let i = ref 0 and j = ref 0 in
  while !i < na do
    let x = Sorted_ivec.get a !i in
    while !j < nb && Sorted_ivec.get b !j < x do
      incr j
    done;
    if not (!j < nb && Sorted_ivec.get b !j = x) then ignore (Sorted_ivec.add out x);
    incr i
  done;
  note m_diff ~input:(na + nb) ~output:(Sorted_ivec.length out);
  out

let merge_join f a b =
  let na = Sorted_ivec.length a and nb = Sorted_ivec.length b in
  let i = ref 0 and j = ref 0 in
  let hits = ref 0 in
  while !i < na && !j < nb do
    let x = Sorted_ivec.get a !i and y = Sorted_ivec.get b !j in
    if x = y then begin
      f x;
      incr hits;
      incr i;
      incr j
    end
    else if x < y then incr i
    else incr j
  done;
  note m_join ~input:(na + nb) ~output:!hits

let merge_join_gallop f a b =
  (* Leapfrog variant: whichever side is behind gallops forward to the
     other's current value, so long mismatching runs cost log(run)
     instead of run.  Degrades gracefully to the linear kernel on dense
     overlap (the first gallop step is a plain +1 probe). *)
  let na = Sorted_ivec.length a and nb = Sorted_ivec.length b in
  let hits = ref 0 in
  let rec loop i j =
    if i < na && j < nb then begin
      let x = Sorted_ivec.get a i and y = Sorted_ivec.get b j in
      if x = y then begin
        f x;
        incr hits;
        loop (i + 1) (j + 1)
      end
      else if x < y then loop (Sorted_ivec.search_from a ~from:i y) j
      else loop i (Sorted_ivec.search_from b ~from:j x)
    end
  in
  loop 0 0;
  note m_join ~input:(na + nb) ~output:!hits

let rec intersect_seq sa sb () =
  match (sa (), sb ()) with
  | Seq.Nil, _ | _, Seq.Nil -> Seq.Nil
  | Seq.Cons (x, sa'), Seq.Cons (y, sb') ->
      if x = y then Seq.Cons (x, intersect_seq sa' sb')
      else if x < y then intersect_seq sa' (fun () -> Seq.Cons (y, sb')) ()
      else intersect_seq (fun () -> Seq.Cons (x, sa')) sb' ()

let rec union_seq sa sb () =
  match (sa (), sb ()) with
  | Seq.Nil, rest | rest, Seq.Nil -> rest
  | Seq.Cons (x, sa'), Seq.Cons (y, sb') ->
      if x = y then Seq.Cons (x, union_seq sa' sb')
      else if x < y then Seq.Cons (x, union_seq sa' (fun () -> Seq.Cons (y, sb')))
      else Seq.Cons (y, union_seq (fun () -> Seq.Cons (x, sa')) sb')

let rec diff_seq sa sb () =
  match sa () with
  | Seq.Nil -> Seq.Nil
  | Seq.Cons (x, sa') -> (
      match sb () with
      | Seq.Nil -> Seq.Cons (x, sa')
      | Seq.Cons (y, sb') ->
          if x = y then diff_seq sa' sb' ()
          else if x < y then Seq.Cons (x, diff_seq sa' (fun () -> Seq.Cons (y, sb')))
          else diff_seq (fun () -> Seq.Cons (x, sa')) sb' ())

let rec union_seq_by ~cmp sa sb () =
  match (sa (), sb ()) with
  | Seq.Nil, rest | rest, Seq.Nil -> rest
  | Seq.Cons (x, sa'), Seq.Cons (y, sb') ->
      let c = cmp x y in
      if c = 0 then Seq.Cons (x, union_seq_by ~cmp sa' sb')
      else if c < 0 then Seq.Cons (x, union_seq_by ~cmp sa' (fun () -> Seq.Cons (y, sb')))
      else Seq.Cons (y, union_seq_by ~cmp (fun () -> Seq.Cons (x, sa')) sb')

let rec diff_seq_by ~cmp sa sb () =
  match sa () with
  | Seq.Nil -> Seq.Nil
  | Seq.Cons (x, sa') -> (
      match sb () with
      | Seq.Nil -> Seq.Cons (x, sa')
      | Seq.Cons (y, sb') ->
          let c = cmp x y in
          if c = 0 then diff_seq_by ~cmp sa' sb' ()
          else if c < 0 then Seq.Cons (x, diff_seq_by ~cmp sa' (fun () -> Seq.Cons (y, sb')))
          else diff_seq_by ~cmp (fun () -> Seq.Cons (x, sa')) sb' ())

let rec inter_seq_by ~cmp sa sb () =
  match (sa (), sb ()) with
  | Seq.Nil, _ | _, Seq.Nil -> Seq.Nil
  | Seq.Cons (x, sa'), Seq.Cons (y, sb') ->
      let c = cmp x y in
      if c = 0 then Seq.Cons (x, inter_seq_by ~cmp sa' sb')
      else if c < 0 then inter_seq_by ~cmp sa' (fun () -> Seq.Cons (y, sb')) ()
      else inter_seq_by ~cmp (fun () -> Seq.Cons (x, sa')) sb' ()

let is_strictly_ascending s =
  let rec loop prev s =
    match s () with
    | Seq.Nil -> true
    | Seq.Cons (x, rest) -> ( match prev with Some p when p >= x -> false | _ -> loop (Some x) rest)
  in
  loop None s

let of_unsorted l = Sorted_ivec.of_list l
