(* A sorted vector is either a raw mutable array (the build/write form,
   byte-compatible in layout and cost with the old Dynarray-backed
   implementation) or an immutable slice [off, off+slen) of a shared
   compressed stream.  Slices are views: they own no payload, so a
   flat compressed index can expose its hundred-thousand terminal
   lists as 4-word headers over four big streams.  Mutating a slice
   raises — the store swaps whole representations instead (see
   [Hexastore.compress]/[inflate]). *)

type kind = Raw | Packed | Delta_varint

let kind_name = function
  | Raw -> "raw"
  | Packed -> "packed"
  | Delta_varint -> "delta_varint"

let kind_of_name s =
  match String.lowercase_ascii (String.trim s) with
  | "raw" -> Some Raw
  | "packed" -> Some Packed
  | "delta_varint" | "delta" -> Some Delta_varint
  | _ -> None

type stream = Sp of Packed_ivec.t | Sd of Delta_ivec.t

type t =
  | R of { mutable data : int array; mutable len : int }
  | S of { base : stream; off : int; slen : int }

(* Telemetry: one counter per binary-search call, one per comparison
   step.  Both are single-flag-read no-ops while telemetry is off.
   [m_gallop_skip] records, per galloping seek, how many elements the
   seek jumped over — large values mean the gallop is earning its keep.
   [m_bytes_saved] totals bytes recovered by store compression. *)
let m_bsearch = Telemetry.Metrics.counter "vectors.bsearch.probes"
let m_bsearch_steps = Telemetry.Metrics.counter "vectors.bsearch.steps"
let m_gallop_skip = Telemetry.Metrics.histogram "vectors.gallop.skip"
let m_bytes_saved = Telemetry.Metrics.counter "vectors.repr.bytes_saved"

let note_bytes_saved n = Telemetry.Metrics.add m_bytes_saved n

let create ?(capacity = 8) () = R { data = Array.make (max capacity 1) 0; len = 0 }

let singleton x = R { data = [| x |]; len = 1 }

let length = function R r -> r.len | S s -> s.slen

let is_empty v = length v = 0

let kind_of = function
  | R _ -> Raw
  | S { base = Sp _; _ } -> Packed
  | S { base = Sd _; _ } -> Delta_varint

let is_compressed v = kind_of v <> Raw

let unsafe_get v i =
  match v with
  | R r -> Array.unsafe_get r.data i
  | S { base = Sp p; off; _ } -> Packed_ivec.get p (off + i)
  | S { base = Sd d; off; _ } -> Delta_ivec.get d (off + i)

let get v i =
  if i < 0 || i >= length v then
    invalid_arg (Printf.sprintf "Sorted_ivec.get: index %d out of bounds [0,%d)" i (length v));
  unsafe_get v i

let min_elt v = if is_empty v then raise Not_found else unsafe_get v 0

let max_elt v = if is_empty v then raise Not_found else unsafe_get v (length v - 1)

(* Index of the first element >= x, i.e. the classic lower bound.  The
   delta representation answers through its block-galloping seek (the
   block-first side array prunes to a single block decode); raw and
   bit-packed vectors binary-search with O(1) cell reads. *)
let index_geq v x =
  Telemetry.Metrics.incr m_bsearch;
  match v with
  | S { base = Sd d; off; slen } ->
      Delta_ivec.search_range d ~lo:off ~hi:(off + slen) ~from:off x - off
  | _ ->
      let lo = ref 0 and hi = ref (length v) in
      while !lo < !hi do
        Telemetry.Metrics.incr m_bsearch_steps;
        let mid = (!lo + !hi) / 2 in
        if unsafe_get v mid < x then lo := mid + 1 else hi := mid
      done;
      !lo

let rank = index_geq

(* Exponential (galloping) search for the first element >= x, starting
   at index [from].  The doubling phase brackets the answer in
   O(log(skip)) steps, then a binary search pins it down inside the
   bracket, so resuming from the previous hit makes a whole ascending
   probe sequence cost O(n_probes · log(gap)) instead of
   O(n_probes · log n).  Over a delta-encoded slice the gallop runs on
   uncompressed block-first values and decodes at most one block. *)
let search_from v ~from x =
  let n = length v in
  let from = if from < 0 then 0 else from in
  if from >= n then n
  else
    match v with
    | S { base = Sd d; off; slen } ->
        let r =
          Delta_ivec.search_range d ~lo:off ~hi:(off + slen) ~from:(off + from) x - off
        in
        if !Telemetry.Config.enabled then Telemetry.Metrics.observe m_gallop_skip (r - from);
        r
    | _ ->
        let step = ref 1 in
        let lo = ref from in
        if unsafe_get v !lo >= x then !lo
        else begin
          while !lo + !step < n && unsafe_get v (!lo + !step) < x do
            lo := !lo + !step;
            step := !step * 2
          done;
          let hi = ref (min n (!lo + !step + 1)) in
          (* lo points at an element < x, so the answer is in (lo, hi]. *)
          incr lo;
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if unsafe_get v mid < x then lo := mid + 1 else hi := mid
          done;
          if !Telemetry.Config.enabled then
            Telemetry.Metrics.observe m_gallop_skip (!lo - from);
          !lo
        end

let mem v x =
  let i = index_geq v x in
  i < length v && unsafe_get v i = x

let find_geq v x =
  let i = index_geq v x in
  if i < length v then Some (unsafe_get v i) else None

let frozen op = invalid_arg ("Sorted_ivec." ^ op ^ ": compressed vector is immutable")

let add v x =
  match v with
  | S _ -> frozen "add"
  | R r ->
      let n = r.len in
      let grow () =
        if n = Array.length r.data then begin
          let data = Array.make (max 8 (2 * n)) 0 in
          Array.blit r.data 0 data 0 n;
          r.data <- data
        end
      in
      if n = 0 || x > Array.unsafe_get r.data (n - 1) then begin
        grow ();
        Array.unsafe_set r.data n x;
        r.len <- n + 1;
        true
      end
      else begin
        let i = index_geq v x in
        if i < n && Array.unsafe_get r.data i = x then false
        else begin
          grow ();
          Array.blit r.data i r.data (i + 1) (n - i);
          Array.unsafe_set r.data i x;
          r.len <- n + 1;
          true
        end
      end

let remove v x =
  match v with
  | S _ -> frozen "remove"
  | R r ->
      let i = index_geq v x in
      if i < r.len && Array.unsafe_get r.data i = x then begin
        Array.blit r.data (i + 1) r.data i (r.len - i - 1);
        r.len <- r.len - 1;
        true
      end
      else false

let of_sorted_array a =
  let n = Array.length a in
  for i = 1 to n - 1 do
    if a.(i - 1) >= a.(i) then invalid_arg "Sorted_ivec.of_sorted_array: not strictly increasing"
  done;
  R { data = (if n = 0 then Array.make 1 0 else Array.copy a); len = n }

let of_list l =
  let a = Array.of_list (List.sort_uniq compare l) in
  R { data = (if Array.length a = 0 then Array.make 1 0 else a); len = Array.length a }

let iter f = function
  | R r ->
      for i = 0 to r.len - 1 do
        f (Array.unsafe_get r.data i)
      done
  | S { base = Sp p; off; slen } -> Packed_ivec.iter_range f p ~lo:off ~hi:(off + slen)
  | S { base = Sd d; off; slen } -> Delta_ivec.iter_range f d ~lo:off ~hi:(off + slen)

let iter_from f v x =
  match v with
  | S { base = Sd d; off; slen } ->
      let start = Delta_ivec.search_range d ~lo:off ~hi:(off + slen) ~from:off x in
      Delta_ivec.iter_range f d ~lo:start ~hi:(off + slen)
  | _ ->
      let n = length v in
      for i = index_geq v x to n - 1 do
        f (unsafe_get v i)
      done

let fold f acc v =
  let acc = ref acc in
  iter (fun x -> acc := f !acc x) v;
  !acc

let to_array v =
  match v with
  | R r -> Array.sub r.data 0 r.len
  | S _ ->
      let a = Array.make (length v) 0 in
      let i = ref 0 in
      iter
        (fun x ->
          Array.unsafe_set a !i x;
          incr i)
        v;
      a

let to_list v = Array.to_list (to_array v)

let to_seq v =
  match v with
  | S { base = Sd d; off; slen } -> Delta_ivec.to_seq_range d ~lo:off ~hi:(off + slen)
  | _ ->
      let n = length v in
      let rec aux i () = if i >= n then Seq.Nil else Seq.Cons (unsafe_get v i, aux (i + 1)) in
      aux 0

let to_seq_from v x =
  match v with
  | S { base = Sd d; off; slen } ->
      let start = Delta_ivec.search_range d ~lo:off ~hi:(off + slen) ~from:off x in
      Delta_ivec.to_seq_range d ~lo:start ~hi:(off + slen)
  | _ ->
      let n = length v in
      let rec aux i () = if i >= n then Seq.Nil else Seq.Cons (unsafe_get v i, aux (i + 1)) in
      aux (index_geq v x)

let choose_arbitrary v = if is_empty v then None else Some (unsafe_get v 0)

let subset a b =
  (* Two-pointer scan: both vectors are sorted, so a single pass decides. *)
  let na = length a and nb = length b in
  let rec loop i j =
    if i >= na then true
    else if j >= nb then false
    else
      let x = unsafe_get a i and y = unsafe_get b j in
      if x = y then loop (i + 1) (j + 1) else if x > y then loop i (j + 1) else false
  in
  na <= nb && loop 0 0

let equal a b =
  match (a, b) with
  | R ra, R rb ->
      ra.len = rb.len
      &&
      let rec loop i =
        i >= ra.len
        || (Array.unsafe_get ra.data i = Array.unsafe_get rb.data i && loop (i + 1))
      in
      loop 0
  | _ ->
      length a = length b
      &&
      let n = length a in
      let rec loop i = i >= n || (unsafe_get a i = unsafe_get b i && loop (i + 1)) in
      loop 0

let copy v =
  match v with
  | R r -> R { data = Array.copy r.data; len = r.len }
  | S _ ->
      let a = to_array v in
      R { data = (if Array.length a = 0 then Array.make 1 0 else a); len = length v }

let clear = function R r -> r.len <- 0 | S _ -> frozen "clear"

let memory_words = function
  | R r -> Array.length r.data + 1 + 3
  | S _ -> 4 (* header + base pointer + off + slen; the stream is owned elsewhere *)

let pp ppf v =
  Format.fprintf ppf "[|%a|]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Format.pp_print_int)
    (to_list v)

let check_invariant v =
  for i = 1 to length v - 1 do
    assert (unsafe_get v (i - 1) < unsafe_get v i)
  done

(* ------------------------------------------------------------------- *)
(* Streams and slices                                                  *)
(* ------------------------------------------------------------------- *)

let stream_of_array kind ~segments a =
  match kind with
  | Raw -> invalid_arg "Sorted_ivec.stream_of_array: Raw has no stream form"
  | Packed ->
      ignore segments;
      Sp (Packed_ivec.of_array a)
  | Delta_varint -> Sd (Delta_ivec.of_array ~segments a)

let stream_length = function Sp p -> Packed_ivec.length p | Sd d -> Delta_ivec.length d

let stream_get s i = match s with Sp p -> Packed_ivec.get p i | Sd d -> Delta_ivec.get d i

let slice base ~off ~len =
  let n = stream_length base in
  if off < 0 || len < 0 || off + len > n then
    invalid_arg (Printf.sprintf "Sorted_ivec.slice: [%d,%d) outside [0,%d)" off (off + len) n);
  S { base; off; slen = len }

let stream_memory_words = function
  | Sp p -> Packed_ivec.memory_words p
  | Sd d -> Delta_ivec.memory_words d

let stream_validate = function Sp p -> Packed_ivec.validate p | Sd d -> Delta_ivec.validate d

let compress kind v =
  match kind with
  | Raw -> (
      match v with
      | R _ -> v
      | S _ ->
          let a = to_array v in
          R { data = (if Array.length a = 0 then Array.make 1 0 else a); len = length v })
  | Packed | Delta_varint ->
      let a = to_array v in
      slice (stream_of_array kind ~segments:[| 0 |] a) ~off:0 ~len:(Array.length a)

let block_violations = function
  | R _ -> []
  | S { base; _ } -> stream_validate base
