type t = Dynarray_int.t

(* Telemetry: one counter per binary-search call, one per comparison
   step.  Both are single-flag-read no-ops while telemetry is off.
   [m_gallop_skip] records, per galloping seek, how many elements the
   seek jumped over — large values mean the gallop is earning its keep. *)
let m_bsearch = Telemetry.Metrics.counter "vectors.bsearch.probes"
let m_bsearch_steps = Telemetry.Metrics.counter "vectors.bsearch.steps"
let m_gallop_skip = Telemetry.Metrics.histogram "vectors.gallop.skip"

let create ?capacity () = Dynarray_int.create ?capacity ()

let singleton x =
  let v = Dynarray_int.create ~capacity:1 () in
  Dynarray_int.push v x;
  v

let length = Dynarray_int.length
let is_empty = Dynarray_int.is_empty
let get = Dynarray_int.get

let min_elt v = if is_empty v then raise Not_found else Dynarray_int.get v 0

let max_elt v = if is_empty v then raise Not_found else Dynarray_int.last v

(* Index of the first element >= x, i.e. the classic lower bound. *)
let index_geq v x =
  Telemetry.Metrics.incr m_bsearch;
  let lo = ref 0 and hi = ref (length v) in
  while !lo < !hi do
    Telemetry.Metrics.incr m_bsearch_steps;
    let mid = (!lo + !hi) / 2 in
    if Dynarray_int.unsafe_get v mid < x then lo := mid + 1 else hi := mid
  done;
  !lo

let rank = index_geq

(* Exponential (galloping) search for the first element >= x, starting
   at index [from].  The doubling phase brackets the answer in
   O(log(skip)) steps, then a binary search pins it down inside the
   bracket, so resuming from the previous hit makes a whole ascending
   probe sequence cost O(n_probes · log(gap)) instead of
   O(n_probes · log n). *)
let search_from v ~from x =
  let n = length v in
  let from = if from < 0 then 0 else from in
  if from >= n then n
  else begin
    let step = ref 1 in
    let lo = ref from in
    if Dynarray_int.unsafe_get v !lo >= x then !lo
    else begin
      while !lo + !step < n && Dynarray_int.unsafe_get v (!lo + !step) < x do
        lo := !lo + !step;
        step := !step * 2
      done;
      let hi = ref (min n (!lo + !step + 1)) in
      (* lo points at an element < x, so the answer is in (lo, hi]. *)
      incr lo;
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if Dynarray_int.unsafe_get v mid < x then lo := mid + 1 else hi := mid
      done;
      if !Telemetry.Config.enabled then Telemetry.Metrics.observe m_gallop_skip (!lo - from);
      !lo
    end
  end

let mem v x =
  let i = index_geq v x in
  i < length v && Dynarray_int.unsafe_get v i = x

let find_geq v x =
  let i = index_geq v x in
  if i < length v then Some (Dynarray_int.unsafe_get v i) else None

let add v x =
  let n = length v in
  if n = 0 || x > Dynarray_int.last v then begin
    Dynarray_int.push v x;
    true
  end
  else begin
    let i = index_geq v x in
    if i < n && Dynarray_int.unsafe_get v i = x then false
    else begin
      Dynarray_int.insert v i x;
      true
    end
  end

let remove v x =
  let i = index_geq v x in
  if i < length v && Dynarray_int.unsafe_get v i = x then begin
    Dynarray_int.remove v i;
    true
  end
  else false

let of_sorted_array a =
  let n = Array.length a in
  for i = 1 to n - 1 do
    if a.(i - 1) >= a.(i) then invalid_arg "Sorted_ivec.of_sorted_array: not strictly increasing"
  done;
  Dynarray_int.of_array a

let of_list l =
  let v = Dynarray_int.of_list l in
  Dynarray_int.sort_uniq v;
  v

let iter = Dynarray_int.iter

let iter_from f v x =
  let n = length v in
  for i = index_geq v x to n - 1 do
    f (Dynarray_int.unsafe_get v i)
  done

let fold = Dynarray_int.fold_left
let to_list = Dynarray_int.to_list
let to_array = Dynarray_int.to_array
let to_seq = Dynarray_int.to_seq

let to_seq_from v x =
  let rec aux i () =
    if i >= length v then Seq.Nil else Seq.Cons (Dynarray_int.unsafe_get v i, aux (i + 1))
  in
  aux (index_geq v x)

let choose_arbitrary v = if is_empty v then None else Some (Dynarray_int.get v 0)

let subset a b =
  (* Two-pointer scan: both vectors are sorted, so a single pass decides. *)
  let na = length a and nb = length b in
  let rec loop i j =
    if i >= na then true
    else if j >= nb then false
    else
      let x = Dynarray_int.unsafe_get a i and y = Dynarray_int.unsafe_get b j in
      if x = y then loop (i + 1) (j + 1) else if x > y then loop i (j + 1) else false
  in
  na <= nb && loop 0 0

let equal = Dynarray_int.equal
let copy = Dynarray_int.copy
let clear = Dynarray_int.clear
let memory_words = Dynarray_int.memory_words
let pp = Dynarray_int.pp

let check_invariant v =
  for i = 1 to length v - 1 do
    assert (Dynarray_int.unsafe_get v (i - 1) < Dynarray_int.unsafe_get v i)
  done
