(** Frame-of-reference bit-packed integer vectors.

    The vector is cut into fixed 128-entry blocks; each block stores its
    minimum and a fixed cell width [w], and every element is encoded as
    [v - min] in exactly [w] bits.  A cell is decoded with a single
    unaligned 64-bit read plus shift and mask, so random access is O(1)
    — the property that lets a bit-packed vector sit behind
    [Sorted_ivec.get]/[index_geq] without per-access block decodes.

    Values need not be sorted (frame-of-reference only assumes a small
    per-block range).  Blocks whose range needs more than 56 bits — the
    widest cell a single unaligned 64-bit window can span at any bit
    offset — fall back to raw 8-byte cells (width 64). *)

type t

val block_size : int
(** 128: entries per block (the last block may be shorter). *)

val of_array : int array -> t
(** Encodes a copy of the array; the input is not retained. *)

val length : t -> int

val get : t -> int -> int
(** O(1). @raise Invalid_argument out of bounds. *)

val iter : (int -> unit) -> t -> unit

val iter_range : (int -> unit) -> t -> lo:int -> hi:int -> unit
(** Elements at positions [lo, hi) in order. *)

val to_array : t -> int array

val encoded_bytes : t -> int
(** Size of the packed payload (cells only, excluding headers). *)

val memory_words : t -> int
(** Exact heap footprint in words, headers included. *)

val validate : t -> string list
(** Structural audit: block header consistency (minimum tightness, cell
    widths, data-offset monotonicity, buffer sizing).  Returns
    human-readable violations; empty means sound. *)
