(** Merge-join kernels over sorted integer sequences.

    §4.2 of the paper rests on the claim that "all first-step pairwise joins
    are fast merge-joins" because every Hexastore vector and list is sorted.
    This module is where those joins actually live: linear-time
    intersection, union and difference of {!Sorted_ivec.t} operands, k-way
    variants for the COVP baselines (which must union across many property
    tables), and a galloping intersection for very asymmetric operand
    sizes. *)

val intersect : Sorted_ivec.t -> Sorted_ivec.t -> Sorted_ivec.t
(** Linear-time merge intersection of two sorted vectors. *)

val intersect_arrays : int array -> int array -> int array
(** Same, over plain sorted arrays (both strictly increasing). *)

val intersect_count : Sorted_ivec.t -> Sorted_ivec.t -> int
(** Size of the intersection without materialising it. *)

val intersect_gallop : Sorted_ivec.t -> Sorted_ivec.t -> Sorted_ivec.t
(** Intersection by galloping (exponential) search from the smaller operand
    into the larger one; O(|small| · log |large|).  Used by the join
    ablation bench and by the executor when operand sizes are skewed. *)

val intersect_count_adaptive : Sorted_ivec.t -> Sorted_ivec.t -> int
(** Like {!intersect_count}, but gallops from the smaller operand when
    the size ratio is large — O(|small| · log |large|) instead of
    O(|small| + |large|).  The kernel behind per-object counting in
    skewed aggregations (BQ3/BQ4's "popular objects"). *)

val union : Sorted_ivec.t -> Sorted_ivec.t -> Sorted_ivec.t

val union_many : Sorted_ivec.t list -> Sorted_ivec.t
(** k-way union via a tournament of pairwise merges.  The COVP baselines
    use this to combine per-property results. *)

val diff : Sorted_ivec.t -> Sorted_ivec.t -> Sorted_ivec.t
(** [diff a b] keeps elements of [a] not in [b]. *)

val merge_join : (int -> unit) -> Sorted_ivec.t -> Sorted_ivec.t -> unit
(** [merge_join f a b] calls [f] on every common element, in order,
    without materialising the intersection. *)

val merge_join_gallop : (int -> unit) -> Sorted_ivec.t -> Sorted_ivec.t -> unit
(** Skip-aware variant of {!merge_join}: whichever operand is behind
    gallops ({!Sorted_ivec.search_from}) to the other's current value,
    so long mismatching runs cost O(log run) rather than O(run).  Same
    callback contract as {!merge_join}. *)

val intersect_seq : int Seq.t -> int Seq.t -> int Seq.t
(** Lazy merge intersection of two ascending sequences. *)

val union_seq : int Seq.t -> int Seq.t -> int Seq.t
(** Lazy merge union (duplicates collapsed) of two ascending sequences. *)

val diff_seq : int Seq.t -> int Seq.t -> int Seq.t
(** Lazy merge difference of two ascending sequences: elements of the
    first not present in the second. *)

val union_seq_by : cmp:('a -> 'a -> int) -> 'a Seq.t -> 'a Seq.t -> 'a Seq.t
(** Lazy merge union of two sequences ascending under [cmp], duplicates
    (elements comparing equal) collapsed, keeping the left occurrence.
    The delta layer merges base-index scans with buffered inserts
    through this kernel. *)

val diff_seq_by : cmp:('a -> 'a -> int) -> 'a Seq.t -> 'a Seq.t -> 'a Seq.t
(** Lazy merge difference under [cmp]: elements of the first sequence
    with no equal element in the second.  The delta layer subtracts its
    delete set from base-index scans through this kernel. *)

val inter_seq_by : cmp:('a -> 'a -> int) -> 'a Seq.t -> 'a Seq.t -> 'a Seq.t
(** Lazy merge intersection of two sequences ascending under [cmp]
    (elements comparing equal are kept once, left occurrence wins).
    The [Seq]-level counterpart of {!intersect} for operands that are
    streamed rather than materialised — e.g. delta-layer merged views. *)

val is_strictly_ascending : int Seq.t -> bool

val of_unsorted : int list -> Sorted_ivec.t
(** Sort-and-dedup a list of ids — the "sort" half of the sort-merge joins
    the COVP1 baseline is forced into (§5.2, BQ5). *)
