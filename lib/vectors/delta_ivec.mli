(** Delta + varint encoded integer streams, block-aligned for galloping.

    A stream is a concatenation of segments, each strictly increasing
    (the flat-index layout: every terminal list or key run is one
    segment).  Blocks hold at most 128 elements and never span a
    segment boundary, so every segment starts on a block boundary and
    the exponential probe of [search_range] can gallop over block-first
    values — which are stored uncompressed in bit-packed side arrays —
    and decode at most one block per seek.

    Each block's payload is the varint-encoded gap sequence between
    consecutive elements (gaps are [>= 1] by strict monotonicity); the
    block's first value lives in the side array.  Point reads go
    through a single-block decode cache; sequential cursors carry their
    own stack-local decode buffer, so no full array is ever
    materialised. *)

type t

val block_size : int
(** 128: maximum elements per block. *)

val of_array : segments:int array -> int array -> t
(** [of_array ~segments a] encodes [a], cutting blocks at every position
    listed in [segments] (ascending, each in [0, length a]) and every
    {!block_size} elements in between.
    @raise Invalid_argument if a resulting block is not strictly
    increasing, or if [segments] is not ascending/in range. *)

val length : t -> int

val get : t -> int -> int
(** Decodes the containing block through the shared one-block cache;
    O(1) on a cache hit, one block decode on a miss.
    @raise Invalid_argument out of bounds. *)

val iter_range : (int -> unit) -> t -> lo:int -> hi:int -> unit
(** Elements at positions [lo, hi) in order, decoding block by block
    into a stack-local buffer. *)

val to_seq_range : t -> lo:int -> hi:int -> int Seq.t
(** Same elements lazily; the cursor owns a private decode buffer. *)

val search_range : t -> lo:int -> hi:int -> from:int -> int -> int
(** [search_range t ~lo ~hi ~from x] is the position of the first
    element [>= x] within [\[max lo from, hi)], or [hi] if none.  The
    window [\[lo, hi)] must be block-aligned on the left and monotone
    (i.e. a single segment, as produced by [of_array ~segments]).
    Gallops over block-first values, then decodes at most one block. *)

val to_array : t -> int array

val encoded_bytes : t -> int
(** Varint payload size in bytes (excluding block metadata). *)

val memory_words : t -> int
(** Exact heap footprint in words, metadata and cache included. *)

val validate : t -> string list
(** Structural audit: per-block header consistency (first values,
    byte-offset monotonicity, in-block strict monotonicity, gap
    encoding).  Returns human-readable violations; empty means sound. *)
