module L = Lexer

type safety_class =
  | Immutable_after_init
  | Guarded
  | Telemetry_gated
  | Test_only
  | Atomic
  | Domain_sharded

let class_name = function
  | Immutable_after_init -> "immutable-after-init"
  | Guarded -> "guarded"
  | Telemetry_gated -> "telemetry-gated"
  | Test_only -> "test-only"
  | Atomic -> "atomic"
  | Domain_sharded -> "domain-sharded"

let class_of_string = function
  | "immutable-after-init" -> Some Immutable_after_init
  | "guarded" -> Some Guarded
  | "telemetry-gated" -> Some Telemetry_gated
  | "test-only" -> Some Test_only
  | "atomic" -> Some Atomic
  | "domain-sharded" -> Some Domain_sharded
  | _ -> None

type target =
  | Global of string
  | Qualified of string
  | Local of string

type global = {
  g_name : string;
  g_ctor : string;
  g_line : int;
  g_attestation : (string * string) option;
}

type site = {
  s_what : string;
  s_line : int;
}

type file_report = {
  path : string;
  layer : string;
  globals : global list;
  fields : site list;
  locals : site list;
  assigns : (target * site) list;
}

type report = { files : file_report list }

(* --- mutable-state constructors ----------------------------------------- *)

(* Direct constructions only; state acquired through wrapper functions
   (Metrics.counter, Dictionary.create) is invisible to this pass. *)
let ctor_paths =
  [
    "Hashtbl.create"; "Buffer.create"; "Dynarray_int.create"; "Dynarray.create";
    "Queue.create"; "Stack.create"; "Array.make"; "Array.init"; "Array.create_float";
    "Bytes.create"; "Bytes.make"; "Atomic.make"; "Weak.create";
  ]

let is_dot (tok : L.token) = tok.L.kind = L.Op && String.equal tok.L.text "."

(* Does the path spelled at token [i] construct mutable state?  [ref] is
   special: it must head an application ([ref 0], [ref []]) and not sit
   in a type position ([int ref]) — a following argument-starter plus a
   non-dot predecessor makes that exact. *)
let ctor_at (t : L.t) i =
  let toks = t.L.tokens in
  if i > 0 && is_dot toks.(i - 1) then None
  else
    match L.path_at t i with
    | None -> None
    | Some (p, stop) ->
        if String.equal p "ref" then
          if
            stop < Array.length toks
            &&
            match toks.(stop).L.kind with
            | L.Ident | L.Uident | L.Number | L.String | L.Char ->
                (not (L.is_keyword toks.(stop).L.text))
                || List.mem toks.(stop).L.text [ "true"; "false"; "begin" ]
            | L.Punct -> (
                match toks.(stop).L.text with "(" | "[" | "{" -> true | _ -> false)
            | _ -> false
          then Some (p, stop)
          else None
        else if
          List.exists
            (fun c -> String.equal p c || (String.length p > String.length c
                                           && String.equal (String.sub p (String.length p - String.length c - 1)
                                                              (String.length c + 1)) ("." ^ c)))
            ctor_paths
        then Some (p, stop)
        else None

(* --- attestation comments ----------------------------------------------- *)

let attestation_marker = "domain-safety:"

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go from

let newlines s = String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 s

let trim_attestation s =
  (* Strip separator punctuation the annotation style puts between the
     class word and the reason: spaces, ASCII dashes, UTF-8 em/en
     dashes, colons. *)
  let n = String.length s in
  let i = ref 0 in
  let continue = ref true in
  while !continue && !i < n do
    match s.[!i] with
    | ' ' | '\t' | '-' | ':' -> incr i
    | '\xe2' when !i + 2 < n && s.[!i + 1] = '\x80' && (s.[!i + 2] = '\x94' || s.[!i + 2] = '\x93')
      ->
        i := !i + 3
    | _ -> continue := false
  done;
  String.sub s !i (n - !i)

(* Parse [(* domain-safety: <class> — <reason> *)] out of a comment
   token's text; [Some (class_word, reason)] even when the class word is
   unknown, so the lint rule can name it. *)
let parse_attestation text =
  match find_sub text attestation_marker 0 with
  | None -> None
  | Some i ->
      let n = String.length text in
      let j = ref (i + String.length attestation_marker) in
      while !j < n && (text.[!j] = ' ' || text.[!j] = '\t') do
        incr j
      done;
      let k = ref !j in
      while !k < n && ((text.[!k] >= 'a' && text.[!k] <= 'z') || text.[!k] = '-') do
        incr k
      done;
      let cls = String.sub text !j (!k - !j) in
      let rest = String.sub text !k (n - !k) in
      let rest =
        (* Drop the comment closer and surrounding space from the reason. *)
        match find_sub rest "*)" 0 with
        | Some e -> String.sub rest 0 e
        | None -> rest
      in
      (* Collapse the comment's line breaks and indentation so the
         reason renders as one markdown table cell. *)
      let words =
        String.split_on_char '\n' (trim_attestation rest)
        |> List.concat_map (String.split_on_char ' ')
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> String.length w > 0)
      in
      Some (cls, String.concat " " words)

(* The attestation for a binding whose [let] sits on [line]: any comment
   on that line or ending on the line directly above. *)
let attestation_for (t : L.t) line =
  Array.fold_left
    (fun acc (tok : L.token) ->
      match acc with
      | Some _ -> acc
      | None ->
          if tok.L.kind <> L.Comment then None
          else
            let last = tok.L.line + newlines tok.L.text in
            if tok.L.line <= line && last >= line - 1 then parse_attestation tok.L.text
            else None)
    None t.L.tokens

(* --- structure segmentation --------------------------------------------- *)

let structure_keyword s =
  match s with
  | "let" | "module" | "type" | "open" | "include" | "exception" | "external" | "val" | "and"
  | "class" | "end" ->
      true
  | _ -> false

(* Indices of column-1 structure keywords: on this ocamlformat-shaped
   tree a [let] in column 1 is a structure item, every expression-level
   [let] is indented. *)
let segment_starts (t : L.t) =
  let out = ref [] in
  Array.iteri
    (fun i (tok : L.token) ->
      if tok.L.col = 1 && tok.L.kind = L.Ident && structure_keyword tok.L.text then
        out := i :: !out)
    t.L.tokens;
  Array.of_list (List.rev !out)

(* [Some (name, rhs_start)] when the segment [start..stop) is a
   structure-level [let] binding a plain value (no parameters; an
   optional type annotation is allowed between name and [=]). *)
let value_binding (t : L.t) start stop =
  let toks = t.L.tokens in
  let next_code j =
    let j = ref j in
    while !j < stop && toks.(!j).L.kind = L.Comment do
      incr j
    done;
    !j
  in
  if not (String.equal toks.(start).L.text "let") then None
  else
    let j = next_code (start + 1) in
    if j >= stop || String.equal toks.(j).L.text "rec" then None
    else if toks.(j).L.kind <> L.Ident || L.is_keyword toks.(j).L.text then None
    else
      let name = toks.(j).L.text in
      let k = next_code (j + 1) in
      if k >= stop then None
      else if toks.(k).L.kind = L.Op && String.equal toks.(k).L.text "=" then Some (name, k + 1)
      else if toks.(k).L.kind = L.Op && String.equal toks.(k).L.text ":" then
        (* Annotated value: find the [=] at bracket depth 0. *)
        let rec seek depth m =
          if m >= stop then None
          else
            match toks.(m).L.kind with
            | L.Punct -> (
                match toks.(m).L.text with
                | "(" | "[" | "{" -> seek (depth + 1) (m + 1)
                | ")" | "]" | "}" -> seek (depth - 1) (m + 1)
                | _ -> seek depth (m + 1))
            | L.Op when depth = 0 && String.equal toks.(m).L.text "=" -> Some (m + 1)
            | _ -> seek depth (m + 1)
        in
        Option.map (fun rhs -> (name, rhs)) (seek 0 (k + 1))
      else None

(* A value RHS that immediately abstracts ([fun], [function], [lazy])
   builds state per call, not at module init. *)
let rhs_is_abstraction (t : L.t) rhs stop =
  let j = ref rhs in
  while !j < stop && t.L.tokens.(!j).L.kind = L.Comment do
    incr j
  done;
  !j < stop
  &&
  match t.L.tokens.(!j).L.text with
  | "fun" | "function" | "lazy" -> true
  | _ -> false

(* --- assignment targets ------------------------------------------------- *)

(* Walk left from the token before [:=]/[<-] through [.field] links to
   the head of the access path. *)
let assignment_target (t : L.t) i global_names =
  let toks = t.L.tokens in
  let prev j =
    let j = ref (j - 1) in
    while !j >= 0 && toks.(!j).L.kind = L.Comment do
      decr j
    done;
    !j
  in
  let rec head j parts =
    let p = prev j in
    if p >= 0 && is_dot toks.(p) then
      let q = prev p in
      if q >= 0 && (toks.(q).L.kind = L.Ident || toks.(q).L.kind = L.Uident) then
        head q (toks.(q).L.text :: "." :: parts)
      else (j, parts)
    else (j, parts)
  in
  let last = prev i in
  if last < 0 || toks.(last).L.kind <> L.Ident then Local "?"
  else
    let hd, parts = head last [ toks.(last).L.text ] in
    let name = String.concat "" parts in
    match toks.(hd).L.kind with
    | L.Uident -> Qualified name
    | L.Ident ->
        if List.mem toks.(hd).L.text global_names then Global name else Local name
    | _ -> Local name

(* --- per-file analysis --------------------------------------------------- *)

let layer_of path =
  let dir = Filename.basename (Filename.dirname path) in
  if String.equal dir "." then "" else dir

let analyze_tokens ~path (t : L.t) =
  let toks = t.L.tokens in
  let n = Array.length toks in
  let starts = segment_starts t in
  let nseg = Array.length starts in
  let seg_stop k = if k + 1 < nseg then starts.(k + 1) else n in
  (* Pass 1: structure-level value bindings whose RHS constructs
     mutable state. *)
  let globals = ref [] in
  let global_ranges = ref [] in
  for k = 0 to nseg - 1 do
    let start = starts.(k) and stop = seg_stop k in
    match value_binding t start stop with
    | None -> ()
    | Some (name, rhs) ->
        if not (rhs_is_abstraction t rhs stop) then begin
          let found = ref None in
          let j = ref rhs in
          while Option.is_none !found && !j < stop do
            (match ctor_at t !j with
            | Some (ctor, _) -> found := Some ctor
            | None -> ());
            incr j
          done;
          match !found with
          | None -> ()
          | Some ctor ->
              let line = toks.(start).L.line in
              globals :=
                {
                  g_name = name;
                  g_ctor = ctor;
                  g_line = line;
                  g_attestation = attestation_for t line;
                }
                :: !globals;
              global_ranges := (rhs, stop) :: !global_ranges
        end
  done;
  let globals = List.rev !globals in
  let global_names = List.map (fun g -> g.g_name) globals in
  let in_global_rhs i = List.exists (fun (a, b) -> i >= a && i < b) !global_ranges in
  (* Pass 2: fields, local creations, assignment sites. *)
  let fields = ref [] and locals = ref [] and assigns = ref [] in
  let i = ref 0 in
  while !i < n do
    let tok = toks.(!i) in
    (match tok.L.kind with
    | L.Ident when String.equal tok.L.text "mutable" ->
        let j = ref (!i + 1) in
        while !j < n && toks.(!j).L.kind = L.Comment do
          incr j
        done;
        if !j < n && toks.(!j).L.kind = L.Ident then
          fields := { s_what = toks.(!j).L.text; s_line = tok.L.line } :: !fields
    | L.Ident
      when (String.equal tok.L.text "incr" || String.equal tok.L.text "decr")
           && not (!i > 0 && is_dot toks.(!i - 1)) -> (
        (* [incr]/[decr] mutate their ref argument just like [:=]. *)
        let j = ref (!i + 1) in
        while !j < n && toks.(!j).L.kind = L.Comment do
          incr j
        done;
        let target =
          if !j >= n then Local "?"
          else
            match (toks.(!j).L.kind, L.path_at t !j) with
            | L.Ident, _ when List.mem toks.(!j).L.text global_names ->
                Global toks.(!j).L.text
            | L.Ident, _ -> Local toks.(!j).L.text
            | L.Uident, Some (p, _) -> Qualified p
            | _ -> Local "?"
        in
        match target with
        | Global s | Qualified s | Local s ->
            assigns :=
              (target, { s_what = tok.L.text ^ " " ^ s; s_line = tok.L.line }) :: !assigns)
    | L.Ident | L.Uident -> (
        match ctor_at t !i with
        | Some (ctor, _) when not (in_global_rhs !i) ->
            locals := { s_what = ctor; s_line = tok.L.line } :: !locals
        | _ -> ())
    | L.Op when String.equal tok.L.text ":=" || String.equal tok.L.text "<-" ->
        let target = assignment_target t !i global_names in
        let what =
          (match target with Global s | Qualified s | Local s -> s) ^ " " ^ tok.L.text
        in
        assigns := (target, { s_what = what; s_line = tok.L.line }) :: !assigns
    | _ -> ());
    incr i
  done;
  {
    path;
    layer = layer_of path;
    globals;
    fields = List.rev !fields;
    locals = List.rev !locals;
    assigns = List.rev !assigns;
  }

let analyze_source ~path contents = analyze_tokens ~path (L.tokenize contents)

(* --- directory walking --------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hidden name = String.length name = 0 || name.[0] = '.' || name.[0] = '_'

let rec ml_files dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | entries ->
      Array.sort compare entries;
      Array.to_list entries
      |> List.concat_map (fun name ->
             if hidden name then []
             else
               let path = Filename.concat dir name in
               if Sys.is_directory path then ml_files path
               else if Filename.check_suffix name ".ml" then [ path ]
               else [])

let analyze_dirs roots =
  let files =
    List.concat_map ml_files roots
    |> List.sort compare
    |> List.map (fun path -> analyze_source ~path (read_file path))
  in
  { files }

(* --- consumption --------------------------------------------------------- *)

let attestation_valid = function
  | None -> false
  | Some (cls, reason) -> Option.is_some (class_of_string cls) && String.length reason > 0

let unattested report =
  List.concat_map
    (fun fr ->
      List.filter_map
        (fun g -> if attestation_valid g.g_attestation then None else Some (fr, g))
        fr.globals)
    report.files

(* --- rendering ----------------------------------------------------------- *)

let assign_counts fr =
  List.fold_left
    (fun (g, q, l) (t, _) ->
      match t with Global _ -> (g + 1, q, l) | Qualified _ -> (g, q + 1, l) | Local _ -> (g, q, l + 1))
    (0, 0, 0) fr.assigns

let layers report =
  List.sort_uniq compare (List.map (fun fr -> fr.layer) report.files)

let to_markdown report =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "# DOMAIN_SAFETY — mutable-state inventory for `lib/`\n\n";
  pf "Generated by `dune exec bin/lint.exe -- --domain-report lib`; the\n";
  pf "`@check` alias regenerates it and fails on any diff, so edit the\n";
  pf "`(* domain-safety: ... *)` attestations in the sources, never this\n";
  pf "file.  It is the gating evidence for the ROADMAP concurrency item:\n";
  pf "every module-global mutable binding a future domain could share is\n";
  pf "listed here with its attested class.\n\n";
  pf "Classes: `immutable-after-init` (written only during module\n";
  pf "initialisation), `guarded` (explicit synchronisation),\n";
  pf "`telemetry-gated` (mutated only behind `Telemetry.enabled`),\n";
  pf "`test-only` (mutated only by tests/bench/debug tooling),\n";
  pf "`atomic` (a lock-free `Atomic.t` cell, safe to bump from any\n";
  pf "domain), `domain-sharded` (state split into per-domain shards and\n";
  pf "merged at read time).\n\n";
  pf "## Layer summary\n\n";
  pf "| layer | globals | mutable fields | local creations | mutation sites |\n";
  pf "|---|---:|---:|---:|---:|\n";
  List.iter
    (fun layer ->
      let frs = List.filter (fun fr -> String.equal fr.layer layer) report.files in
      let sum f = List.fold_left (fun acc fr -> acc + f fr) 0 frs in
      pf "| %s | %d | %d | %d | %d |\n" layer
        (sum (fun fr -> List.length fr.globals))
        (sum (fun fr -> List.length fr.fields))
        (sum (fun fr -> List.length fr.locals))
        (sum (fun fr -> List.length fr.assigns)))
    (layers report);
  pf "\n## Module-global mutable bindings\n\n";
  let any = ref false in
  pf "| binding | constructor | class | reason |\n";
  pf "|---|---|---|---|\n";
  List.iter
    (fun fr ->
      List.iter
        (fun g ->
          any := true;
          let cls, reason =
            match g.g_attestation with
            | Some (c, r) -> (c, r)
            | None -> ("UNATTESTED", "")
          in
          pf "| `%s:%d` `%s` | `%s` | `%s` | %s |\n" fr.path g.g_line g.g_name g.g_ctor cls
            reason)
        fr.globals)
    report.files;
  if not !any then pf "| (none) | | | |\n";
  pf "\n## Per-file sites\n\n";
  pf "Assignment targets: G = a global binding above, Q = qualified\n";
  pf "(another module's state), L = local (parameters, inner lets,\n";
  pf "record instances).\n\n";
  pf "| file | globals | mutable fields | local creations | assigns G/Q/L |\n";
  pf "|---|---:|---:|---:|---|\n";
  List.iter
    (fun fr ->
      let g, q, l = assign_counts fr in
      if List.length fr.globals + List.length fr.fields + List.length fr.locals + g + q + l > 0
      then
        pf "| %s | %d | %d | %d | %d/%d/%d |\n" fr.path (List.length fr.globals)
          (List.length fr.fields) (List.length fr.locals) g q l)
    report.files;
  Buffer.contents b

let to_json report =
  let module J = Telemetry.Json in
  let site s = J.Obj [ ("what", J.String s.s_what); ("line", J.Int s.s_line) ] in
  let file fr =
    let g, q, l = assign_counts fr in
    J.Obj
      [
        ("path", J.String fr.path);
        ("layer", J.String fr.layer);
        ( "globals",
          J.List
            (List.map
               (fun gl ->
                 J.Obj
                   [
                     ("name", J.String gl.g_name);
                     ("ctor", J.String gl.g_ctor);
                     ("line", J.Int gl.g_line);
                     ( "class",
                       match gl.g_attestation with
                       | Some (c, _) -> J.String c
                       | None -> J.Null );
                     ( "reason",
                       match gl.g_attestation with
                       | Some (_, r) -> J.String r
                       | None -> J.Null );
                   ])
               fr.globals) );
        ("mutable_fields", J.List (List.map site fr.fields));
        ("local_creations", J.List (List.map site fr.locals));
        ( "assignments",
          J.Obj
            [
              ("global", J.Int g);
              ("qualified", J.Int q);
              ("local", J.Int l);
              ("sites", J.List (List.map (fun (_, s) -> site s) fr.assigns));
            ] );
      ]
  in
  J.Obj
    [
      ("schema", J.String "hexastore-domain-safety/v1");
      ("files", J.List (List.map file report.files));
    ]
