(** Mutable-state inventory over the [lib/] tree.

    The ROADMAP's concurrency item — snapshot-isolated parallel reads
    across OCaml 5 domains — needs machine-checked evidence of which
    mutation sites are domain-safe before readers fan out.  This pass
    walks the {!Lexer} token stream of every source file and classifies:

    - every [mutable] record-field declaration;
    - every creation of mutable state ([ref], [Hashtbl.create],
      [Buffer.create], [Dynarray_int.create], [Array.make], ...),
      split into {e module-global} bindings (a column-1 [let] binding a
      plain value whose right-hand side constructs mutable state) and
      {e function-local} creations (everything else);
    - every [:=] / [<-] / [incr] / [decr] mutation site, resolved
      against the file's global bindings ({!Global} when the target is one, {!Qualified}
      when it is a dotted path into another module, {!Local} otherwise).

    Module-global mutable bindings are the dangerous ones: they are
    shared by every future domain.  Each must carry an {e attestation}
    comment on its line or the line directly above:

    {v (* domain-safety: <class> — <reason> *) v}

    where [<class>] is one of {!safety_class} and [<reason>] is free
    text.  {!Lint}'s [domain-unsafe-global] rule fails the build for
    any unattested (or unknown-class, or reason-less) global.

    Heuristic boundaries, stated honestly: "module-global" means a [let]
    whose keyword sits in column 1 — exact on this ocamlformat-shaped
    tree, where nested [let]s are always indented.  A global that
    acquires mutable state through a constructor {e function}
    ([Metrics.counter], [Dictionary.create ()]) is not detected; the
    inventory catches direct constructions only. *)

(** Attestation vocabulary for module-global mutable bindings. *)
type safety_class =
  | Immutable_after_init
      (** Written only during module initialisation (single-threaded by
          construction); domains only read it afterwards. *)
  | Guarded  (** Every access goes through an explicit synchronisation point. *)
  | Telemetry_gated
      (** Mutated only on telemetry paths (behind [Telemetry.enabled]);
          benign or disabled under production parallel reads. *)
  | Test_only  (** Mutated only by tests, benchmarks or debug tooling. *)
  | Atomic
      (** A lock-free [Atomic.t] cell (or array of them); safe to bump
          from any domain without a lock. *)
  | Domain_sharded
      (** Split into per-domain shards (indexed by domain id) and merged
          at read time; shards may still carry their own locks for the
          id-collision case. *)

val class_name : safety_class -> string
(** ["immutable-after-init"], ["guarded"], ["telemetry-gated"],
    ["test-only"], ["atomic"], ["domain-sharded"]. *)

val class_of_string : string -> safety_class option

(** How an assignment site's target resolves. *)
type target =
  | Global of string  (** A module-global mutable binding of the same file. *)
  | Qualified of string  (** A dotted path into another module. *)
  | Local of string  (** Anything else: parameters, inner lets, record args. *)

type global = {
  g_name : string;  (** The bound name. *)
  g_ctor : string;  (** Constructor that makes it mutable ([ref], ...). *)
  g_line : int;
  g_attestation : (string * string) option;
      (** [(class-word, reason)] as written; [None] when absent.  The
          class word is kept raw so {!Lint} can report unknown classes. *)
}

type site = {
  s_what : string;  (** Field name, constructor path, or assignment target. *)
  s_line : int;
}

type file_report = {
  path : string;
  layer : string;  (** Immediate directory name: ["core"], ["telemetry"], ... *)
  globals : global list;
  fields : site list;  (** [mutable] field declarations. *)
  locals : site list;  (** Function-local mutable-state creations. *)
  assigns : (target * site) list;  (** [:=], [<-], [incr]/[decr] sites. *)
}

type report = { files : file_report list (* path-sorted *) }

val analyze_source : path:string -> string -> file_report
(** Tokenize one file's text and classify it.  [path] supplies the
    layer name and report key only. *)

val analyze_tokens : path:string -> Lexer.t -> file_report
(** Same, over an already-lexed file (lets {!Lint} share one pass). *)

val analyze_dirs : string list -> report
(** Walk directory trees (skipping hidden/[_]-prefixed entries) and
    analyze every [.ml] file.  Interfaces are skipped: a [.mli] cannot
    create state. *)

val unattested : report -> (file_report * global) list
(** Globals with no attestation, an unknown class word, or an empty
    reason — the [domain-unsafe-global] violations, in report order. *)

val to_markdown : report -> string
(** The checked-in [DOMAIN_SAFETY.md] body: summary table per layer,
    one row per global binding with its class and reason, per-file site
    counts.  Deterministic (path-sorted, no timestamps) so the @check
    freshness gate can byte-compare regenerations. *)

val to_json : report -> Telemetry.Json.t
(** Full report as JSON for CI diffing ([bin/lint.exe --json]). *)
