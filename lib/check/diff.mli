(** Differential model-checking of the Hexastore against {!Model}.

    A random sequence of inserts, deletes and pattern queries is executed
    against a fresh {!Hexa.Hexastore} and the naive reference store in
    lock-step.  After every operation the two must agree on the operation's
    result, on store size, and (by default) the Hexastore must pass the
    full {!Invariant.store} check.  Any disagreement is reported as a
    {!divergence}; QCheck shrinking then minimises the operation sequence
    to a smallest reproducing counterexample. *)

type op =
  | Insert of Dict.Term_dict.id_triple
  | Delete of Dict.Term_dict.id_triple
  | Query of Hexa.Pattern.t
  | Flush  (** Drain the delta layer's buffers ({!run_delta} only). *)
  | Compact  (** Drain and force the rebuild path ({!run_delta} only). *)

type divergence = {
  step : int;  (** 0-based index of the diverging operation. *)
  op : op;
  detail : string;  (** What disagreed, with both sides' values. *)
}

val op_to_string : op -> string

val ops_to_string : op list -> string

val divergence_to_string : divergence -> string

val run : ?validate:bool -> op list -> divergence list
(** Execute the sequence against both stores.  With [validate] (default
    [true]), {!Invariant.store} runs after every mutation and its
    violations are reported as divergences; queries additionally
    cross-check [count] and [mem].  [Flush]/[Compact] are no-ops here —
    a plain Hexastore stages nothing. *)

val run_delta :
  ?validate:bool -> ?insert_threshold:int -> ?delete_threshold:int -> op list -> divergence list
(** Like {!run}, but the system under test is a delta-fronted store
    ({!Hexa.Delta}): every read goes through the merged view, [Flush]
    and [Compact] drain the buffers (and must leave nothing pending),
    and auto-flush fires whenever a threshold is crossed — pass small
    thresholds to exercise it.  With [validate], {!Invariant.delta}
    (including the flushed-clone cross-check) runs after every mutation,
    flush and compact. *)

val arb_ops : ?max_id:int -> ?max_len:int -> unit -> op list QCheck.arbitrary
(** QCheck generator of op sequences with shrinking.  Ids are drawn from
    [0 .. max_id] (default 3 — a tiny universe maximises collisions and
    terminal-list sharing); sequences have up to [max_len] (default 40)
    operations, biased towards inserts so deletes and queries hit
    populated structures. *)

val arb_delta_ops : ?max_id:int -> ?max_len:int -> unit -> op list QCheck.arbitrary
(** Same distribution as {!arb_ops} plus low-frequency [Flush] and
    [Compact] ops, so drains land in the middle of mutation runs. *)
