(** Concurrency correctness harness for the domain-parallel executor.

    Two instruments over {!Query.Par}'s fan-out and {!Hexa.Delta}'s
    snapshot-pinning protocol, both reporting {!Violation.t} lists like
    the rest of the check library (empty = correct):

    - {!differential} checks parallel ≡ sequential execution on one
      store and BGP — the qcheck property in the test suite drives it
      over ~1,000 random BGPs × four store kinds × widths 1/2/4.
    - {!stress} races one writer domain (staging, flushing, compacting a
      delta store mirrored into {!Model}) against N reader domains that
      continuously pin snapshots and verify query results on them. *)

val brute_force : Hexa.Store_sig.boxed -> Query.Algebra.tp list -> int list list
(** Id-level brute-force BGP evaluation over the store's merged triple
    set: canonical solutions, each the sorted BGP variables' bound ids
    in variable order, the whole list sorted.  The reference both checks
    below compare against. *)

val snapshot_consistent : Hexa.Store_sig.boxed -> Query.Algebra.tp list -> Violation.t list
(** Run the BGP through {!Query.Exec.run} under the planner's current
    parallel settings and compare canonically against {!brute_force}.
    Mutates no global state, so reader domains may call it concurrently
    (each on its own pinned view). *)

val differential :
  Hexa.Store_sig.boxed -> Query.Algebra.tp list -> domains:int -> Violation.t list
(** [differential store tps ~domains] runs the BGP sequentially (width
    1, fan-out disabled) and in parallel (width [domains],
    {!Query.Planner.parallel_min_rows} forced to 0) and demands the
    {e ordered} solution lists agree — parallel range concatenation must
    reproduce the sequential order exactly — plus a canonical comparison
    against {!brute_force}.  Temporarily mutates the width and planner
    threshold: single-threaded callers only. *)

(** {1 Writer-vs-readers stress} *)

type stress_config = {
  readers : int;  (** reader domains pinning and querying (>= 1) *)
  rounds : int;  (** writer flush/compact rounds *)
  ops_per_round : int;  (** random add/remove mutations per round *)
  domains : int;  (** executor fan-out width during the run *)
  seed : int;  (** PRNG seed: same seed, same mutation sequence *)
}

val default_stress : stress_config
(** 2 readers × 4 rounds × 64 ops, width 2, seed 42 — the CI smoke
    shape. *)

type stress_report = {
  ops : int;  (** mutations applied *)
  flushes : int;  (** explicit flushes (auto-flushes not counted) *)
  compactions : int;
  queries : int;  (** queries executed across all readers *)
  violations : Violation.t list;  (** empty = the run was correct *)
}

val stress : stress_config -> stress_report
(** Run the race: the calling domain is the writer, staging random
    mutations into a {!Hexa.Delta} (mirrored into {!Model}) and
    flushing — every third round compacting — between rounds, while the
    reader domains loop {!Hexa.Store_sig.pin} → {!snapshot_consistent} →
    unpin.  After every flush the writer validates {!Invariant.delta}
    and compares the merged contents against the model; mutation return
    values are checked against the model op by op.  Violations are
    capped at 100; the report's counters are exact.  Sets the pool width
    and planner threshold for the duration (restored before
    returning). *)
