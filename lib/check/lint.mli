(** Source lint for the [lib/] tree, run as [dune build @lint].

    Four rules, all gate-style (any finding fails the build):

    - {b missing-mli}: every [.ml] in a library directory must have a
      matching [.mli] — an unconstrained module leaks representation and
      invites invariant-breaking access.
    - {b obj-magic}: no [Obj.magic] (or any [Obj.] escape hatch) in
      library code.
    - {b printf-in-lib}: no [Printf.printf]/[Format.printf] writing to
      stdout from library code; libraries report through values or
      formatters the caller supplies.
    - {b catch-all}: no [with _ ->] handlers — swallowing every exception
      (including [Out_of_memory] and [Assert_failure]) hides the very
      corruption the {!Invariant} layer exists to surface.
    - {b raw-clock}: no direct [Unix.gettimeofday] or [Sys.time] in
      library code; time flows through [Telemetry.Clock] so tests and
      EXPLAIN ANALYZE can inject a deterministic source.  Files under a
      [telemetry] directory are exempt — that is where the clock is
      wrapped.
    - {b query-probe}: no direct [Sorted_ivec.mem] in files under a
      [query] directory — a point-probe membership test there bypasses
      the planner's merge/hash join operators (the very probes PR 5's
      merge-join execution exists to eliminate).  A deliberate probe is
      waived by putting [lint: allow query-probe] in a comment on the
      same line or the line directly above.

    Occurrences inside comments and string literals are ignored (sources
    are scanned with comments/strings blanked out). *)

type rule =
  | Missing_mli
  | Obj_magic
  | Printf_in_lib
  | Catch_all
  | Raw_clock
  | Query_probe

val rule_name : rule -> string

val strip_comments_and_strings : string -> string
(** The same source with comment bodies (nested [(* *)]) and string
    literal contents replaced by spaces; line structure is preserved so
    reported line numbers match the original. *)

val scan_source : path:string -> string -> Violation.t list
(** Content rules ({!Obj_magic}, {!Printf_in_lib}, {!Catch_all}) against
    one file's text.  [path] is used for reporting only. *)

val scan_dir : string -> Violation.t list
(** Walk a directory tree (skipping dot- and underscore-prefixed
    entries), apply {!scan_source} to every [.ml] and [.mli], and report
    {!Missing_mli} for every [.ml] lacking a sibling [.mli]. *)
