(** Source lint for the [lib/] tree, run as [dune build @lint].

    Rules, all gate-style (any finding fails the build):

    - {b missing-mli}: every [.ml] in a library directory must have a
      matching [.mli] — an unconstrained module leaks representation and
      invites invariant-breaking access.
    - {b obj-magic}: no [Obj.magic] in library code.
    - {b printf-in-lib}: no [Printf.printf]/[Format.printf]/
      [print_endline] writing to stdout from library code; libraries
      report through values or formatters the caller supplies.
    - {b catch-all}: no [with _ ->] handlers — swallowing every exception
      (including [Out_of_memory] and [Assert_failure]) hides the very
      corruption the {!Invariant} layer exists to surface.
    - {b raw-clock}: no direct [Unix.gettimeofday] or [Sys.time] in
      library code; time flows through [Telemetry.Clock] so tests and
      EXPLAIN ANALYZE can inject a deterministic source.  Files under a
      [telemetry] directory are exempt — that is where the clock is
      wrapped.
    - {b query-probe}: no direct [Sorted_ivec.mem] in files under a
      [query] directory — a point-probe membership test there bypasses
      the planner's merge/hash join operators.  A deliberate probe is
      waived by putting [lint: allow query-probe] in a {e comment} on
      the same line or the line directly above.
    - {b span-hygiene}: no manual [Trace.enter_span]/[Trace.exit_span]
      pairs in library code — an exception between the two leaks an open
      span and skews every enclosing depth; [Trace.with_span] closes on
      every exit path.  Files under a [telemetry] directory are exempt
      (the handle API lives there); a deliberate resource-lifetime span
      is waived with [lint: allow span-hygiene] in a comment on the same
      line or the line directly above.
    - {b domain-unsafe-global}: every module-global mutable binding in a
      [.ml] file (see {!Mutability}) must carry a
      [(* domain-safety: <class> — <reason> *)] attestation on its line
      or the line directly above, with a known class and a non-empty
      reason.  This is the gate the ROADMAP concurrency item consumes:
      un-attested shared mutable state cannot reach a multi-domain
      executor unnoticed.
    - {b repr-abstraction}: no mention of the compressed codec modules
      ([Packed_ivec], [Delta_ivec]) outside a [vectors] directory —
      every other layer reads compressed data through the
      [Sorted_ivec] stream/slice API, which is what lets a
      representation swap leave planner, executor and snapshots
      untouched.  Waived with [lint: allow repr-abstraction] in a
      comment on the same line or the line directly above.

    All content rules run over the {!Lexer} token stream, so comment and
    string contexts are exact: a pattern inside a string literal or
    comment never fires, and a waiver/attestation marker only counts
    when it sits inside a comment token (PR 1's substring scanner
    accepted waivers smuggled in string literals).  Violation positions
    come straight from token line numbers — no per-violation rescan.

    When telemetry is enabled the scan bumps [check.lint.files],
    [check.lint.tokens] and [check.lint.violations.<rule>] counters in
    the shared {!Telemetry.Metrics} registry. *)

type rule =
  | Missing_mli
  | Obj_magic
  | Printf_in_lib
  | Catch_all
  | Raw_clock
  | Query_probe
  | Span_hygiene
  | Domain_unsafe_global
  | Repr_abstraction

val rule_name : rule -> string

val scan_source : path:string -> string -> Violation.t list
(** Content rules against one file's text, sorted by line.  [path]
    selects the scoped rules ([raw-clock] exemption, [query-probe]
    scope, [domain-unsafe-global] on [.ml] only) and is used for
    reporting. *)

val scan_dir : string -> Violation.t list
(** Walk a directory tree (skipping dot- and underscore-prefixed
    entries), apply {!scan_source} to every [.ml] and [.mli], and report
    {!Missing_mli} for every [.ml] lacking a sibling [.mli]. *)
