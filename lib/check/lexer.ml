type kind =
  | Ident
  | Uident
  | Number
  | Char
  | String
  | Comment
  | Op
  | Punct

type token = {
  kind : kind;
  text : string;
  pos : int;
  line : int;
  col : int;
}

type t = {
  src : string;
  tokens : token array;
  line_starts : int array;
}

let keywords =
  [
    "and"; "as"; "assert"; "asr"; "begin"; "class"; "constraint"; "do"; "done"; "downto";
    "else"; "end"; "exception"; "external"; "false"; "for"; "fun"; "function"; "functor";
    "if"; "in"; "include"; "inherit"; "initializer"; "land"; "lazy"; "let"; "lor"; "lsl";
    "lsr"; "lxor"; "match"; "method"; "mod"; "module"; "mutable"; "new"; "nonrec";
    "object"; "of"; "open"; "or"; "private"; "rec"; "sig"; "struct"; "then"; "to";
    "true"; "try"; "type"; "val"; "virtual"; "when"; "while"; "with";
  ]

let is_keyword s = List.mem s keywords

let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'
let is_digit c = c >= '0' && c <= '9'
let is_word_char c = is_lower c || is_upper c || is_digit c || c = '\''

let is_symbol_char c =
  match c with
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '.' | '/' | ':' | '<' | '=' | '>' | '?' | '@'
  | '^' | '|' | '~' ->
      true
  | _ -> false

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let line_starts_of src =
  let n = String.length src in
  let count = ref 1 in
  for i = 0 to n - 1 do
    if src.[i] = '\n' then incr count
  done;
  let starts = Array.make !count 0 in
  let next = ref 1 in
  for i = 0 to n - 1 do
    if src.[i] = '\n' && !next < !count then begin
      starts.(!next) <- i + 1;
      incr next
    end
  done;
  starts

(* Binary search: greatest [l] with [line_starts.(l) <= off]. *)
let line_slot line_starts off =
  let lo = ref 0 and hi = ref (Array.length line_starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if line_starts.(mid) <= off then lo := mid else hi := mid - 1
  done;
  !lo

(* --- sub-scanners: each returns the exclusive end offset ---------------- *)

(* ["..."]; a backslash escapes the next byte.  Unterminated: runs to
   end of input. *)
let scan_dquote_string src i =
  let n = String.length src in
  let j = ref (i + 1) in
  let closed = ref false in
  while (not !closed) && !j < n do
    (match src.[!j] with
    | '\\' -> incr j
    | '"' -> closed := true
    | _ -> ());
    incr j
  done;
  (* A trailing backslash at end of input can push [j] one past [n]. *)
  min !j n

(* [{id|...|id}] quoted string.  [i] points at '{'; returns [None] when
   this '{' does not open a quoted string. *)
let scan_quoted_string src i =
  let n = String.length src in
  let j = ref (i + 1) in
  while !j < n && is_lower src.[!j] do
    incr j
  done;
  if !j >= n || src.[!j] <> '|' then None
  else begin
    let id = String.sub src (i + 1) (!j - i - 1) in
    let close = "|" ^ id ^ "}" in
    let m = String.length close in
    let k = ref (!j + 1) in
    let stop = ref (-1) in
    while !stop < 0 && !k + m <= n do
      if String.sub src !k m = close then stop := !k + m else incr k
    done;
    Some (if !stop < 0 then n else !stop)
  end

(* A char literal starting at ['] — [Some end_] for ['c'] and ['\...'],
   [None] for type variables and stray quotes. *)
let scan_char src i =
  let n = String.length src in
  if i + 2 < n && src.[i + 1] = '\\' then begin
    (* Escaped body: find the closing quote within the longest escape
       form ('\xFF', '\255', '\o377' are 5-6 bytes total). *)
    let stop = ref (-1) in
    for k = i + 3 to min (n - 1) (i + 6) do
      if !stop < 0 && src.[k] = '\'' then stop := k + 1
    done;
    if !stop < 0 then None else Some !stop
  end
  else if i + 2 < n && src.[i + 2] = '\'' && src.[i + 1] <> '\\' && src.[i + 1] <> '\'' then
    Some (i + 3)
  else None

(* One whole comment; nested comments and string literals inside are
   honored, so a comment closer inside a quoted string does not end the
   comment. *)
let scan_comment src i =
  let n = String.length src in
  let j = ref (i + 2) in
  let depth = ref 1 in
  while !depth > 0 && !j < n do
    if !j + 1 < n && src.[!j] = '(' && src.[!j + 1] = '*' then begin
      incr depth;
      j := !j + 2
    end
    else if !j + 1 < n && src.[!j] = '*' && src.[!j + 1] = ')' then begin
      decr depth;
      j := !j + 2
    end
    else if src.[!j] = '"' then j := scan_dquote_string src !j
    else if src.[!j] = '{' then
      match scan_quoted_string src !j with Some e -> j := e | None -> incr j
    else if src.[!j] = '\'' then
      match scan_char src !j with Some e -> j := e | None -> incr j
    else incr j
  done;
  !j

let scan_number src i =
  let n = String.length src in
  let j = ref i in
  let word () =
    while
      !j < n && (is_digit src.[!j] || is_lower src.[!j] || is_upper src.[!j] || src.[!j] = '_')
    do
      incr j
    done
  in
  word ();
  (* Fractional part: a dot only belongs to the number when a digit
     follows (so [1..2] and [X.y] stay separate tokens). *)
  if !j + 1 < n && src.[!j] = '.' && is_digit src.[!j + 1] then begin
    incr j;
    word ()
  end
  else if !j < n && src.[!j] = '.' && (!j + 1 >= n || not (is_symbol_char src.[!j + 1])) then
    (* Trailing-dot float ([1.]) — but not [1..] (range-style op). *)
    incr j;
  !j

let tokenize src =
  let n = String.length src in
  let line_starts = line_starts_of src in
  let tokens = ref [] in
  let count = ref 0 in
  let cur_line = ref 0 in
  (* Tokens are emitted in source order, so the line cursor only moves
     forward; [position] below still works for arbitrary offsets. *)
  let emit kind pos stop =
    while
      !cur_line + 1 < Array.length line_starts && line_starts.(!cur_line + 1) <= pos
    do
      incr cur_line
    done;
    tokens :=
      {
        kind;
        text = String.sub src pos (stop - pos);
        pos;
        line = !cur_line + 1;
        col = pos - line_starts.(!cur_line) + 1;
      }
      :: !tokens;
    incr count
  in
  let i = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if is_space c then incr i
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      let stop = scan_comment src !i in
      emit Comment !i stop;
      i := stop
    end
    else if c = '"' then begin
      let stop = scan_dquote_string src !i in
      emit String !i stop;
      i := stop
    end
    else if c = '{' then begin
      match scan_quoted_string src !i with
      | Some stop ->
          emit String !i stop;
          i := stop
      | None ->
          emit Punct !i (!i + 1);
          incr i
    end
    else if c = '\'' then begin
      match scan_char src !i with
      | Some stop ->
          emit Char !i stop;
          i := stop
      | None ->
          emit Punct !i (!i + 1);
          incr i
    end
    else if is_lower c || is_upper c then begin
      let j = ref (!i + 1) in
      while !j < n && is_word_char src.[!j] do
        incr j
      done;
      emit (if is_upper c then Uident else Ident) !i !j;
      i := !j
    end
    else if is_digit c then begin
      let stop = scan_number src !i in
      emit Number !i stop;
      i := stop
    end
    else if is_symbol_char c then begin
      let j = ref (!i + 1) in
      while !j < n && is_symbol_char src.[!j] do
        incr j
      done;
      emit Op !i !j;
      i := !j
    end
    else begin
      emit Punct !i (!i + 1);
      incr i
    end
  done;
  let arr = Array.make !count { kind = Punct; text = ""; pos = 0; line = 1; col = 1 } in
  List.iteri (fun k tok -> arr.(!count - 1 - k) <- tok) !tokens;
  { src; tokens = arr; line_starts }

let position t off =
  let slot = line_slot t.line_starts off in
  (slot + 1, off - t.line_starts.(slot) + 1)

let line_text t ln =
  let lines = Array.length t.line_starts in
  if ln < 1 || ln > lines then ""
  else
    let start = t.line_starts.(ln - 1) in
    let stop = if ln < lines then t.line_starts.(ln) - 1 else String.length t.src in
    let stop = if stop > start && t.src.[stop - 1] = '\r' then stop - 1 else stop in
    String.sub t.src start (max 0 (stop - start))

let path_at t i =
  let n = Array.length t.tokens in
  if i >= n then None
  else
    match t.tokens.(i).kind with
    | Ident -> Some (t.tokens.(i).text, i + 1)
    | Uident ->
        let rec go acc j =
          (* [acc] covers tokens up to [j] exclusive, ending in a Uident. *)
          if
            j + 1 < n
            && t.tokens.(j).kind = Op
            && String.equal t.tokens.(j).text "."
            && (t.tokens.(j + 1).kind = Ident || t.tokens.(j + 1).kind = Uident)
          then
            let next = acc ^ "." ^ t.tokens.(j + 1).text in
            if t.tokens.(j + 1).kind = Uident then go next (j + 2) else Some (next, j + 2)
          else Some (acc, j)
        in
        go t.tokens.(i).text (i + 1)
    | _ -> None
