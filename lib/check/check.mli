(** Correctness tooling for the Hexastore.

    Three instruments over the paper's structural invariants (§4/§4.1):

    - {!Invariant} — per-layer validators returning typed
      {!Violation.t} lists; {!store} is the whole-store entry point.
    - {!Model}/{!Diff} — a naive reference store and a differential
      model-checker that executes random operation sequences against it
      and the real store, shrinking any disagreement to a minimal
      counterexample.
    - {!Concurrent} — the concurrency harness: parallel ≡ sequential
      differential execution and the writer-vs-readers delta stress
      runner behind [dune build @stress].
    - {!Lexer}/{!Mutability}/{!Lint} — the static-analysis pass behind
      [dune build @lint]: a positioned OCaml tokenizer, the
      mutable-state inventory backing [DOMAIN_SAFETY.md], and the rule
      engine (including the [domain-unsafe-global] attestation gate).

    [debug] re-exports {!Hexa.Debug.enabled}: setting it to [true] makes
    [Hexastore.add_ids]/[remove_ids] re-validate every vector and list
    they touch (off by default; also enabled by [HEXASTORE_DEBUG=1]). *)

module Violation = Violation
module Invariant = Invariant
module Model = Model
module Diff = Diff
module Concurrent = Concurrent
module Lexer = Lexer
module Mutability = Mutability
module Lint = Lint

val store : Hexa.Hexastore.t -> Violation.t list
(** [store h] is {!Invariant.store}[ h]: the complete invariant check —
    sortedness, six-way agreement, physical terminal-list sharing,
    accounting, dictionary bijectivity.  Empty list = healthy store. *)

val delta : Hexa.Delta.t -> Violation.t list
(** [delta d] is {!Invariant.delta}[ d]: the base's full {!store} check
    plus the delta coherence rules (buffers disjoint from base and each
    other, tombstones subset of base, merged view equal to a flushed
    clone).  Empty list = healthy delta-fronted store. *)

val debug : bool ref
(** The {!Hexa.Debug.enabled} flag gating the insert/delete assertion
    hooks. *)
