module V = Violation
module L = Lexer

type rule =
  | Missing_mli
  | Obj_magic
  | Printf_in_lib
  | Catch_all
  | Raw_clock
  | Query_probe
  | Span_hygiene
  | Domain_unsafe_global
  | Repr_abstraction

let rule_name = function
  | Missing_mli -> "missing-mli"
  | Obj_magic -> "obj-magic"
  | Printf_in_lib -> "printf-in-lib"
  | Catch_all -> "catch-all"
  | Raw_clock -> "raw-clock"
  | Query_probe -> "query-probe"
  | Span_hygiene -> "span-hygiene"
  | Domain_unsafe_global -> "domain-unsafe-global"
  | Repr_abstraction -> "repr-abstraction"

(* PR 1's scanner had to assemble these patterns at runtime so the
   substring search would not flag this very file; the token scanner
   knows a string literal when it lexes one, so they can be written
   plainly. *)
let pats_printf = [ "Printf.printf"; "Format.printf"; "print_endline" ]
let pats_clock = [ "Unix.gettimeofday"; "Sys.time" ]
let pat_obj_magic = "Obj.magic"
let pat_query_probe = "Sorted_ivec.mem"

let pats_span =
  [
    "Trace.enter_span";
    "Trace.exit_span";
    "Telemetry.Trace.enter_span";
    "Telemetry.Trace.exit_span";
  ]

(* lib/telemetry wraps the system clock; everyone else must go through
   it (Telemetry.Clock), so tests can inject a deterministic source. *)
let clock_exempt path =
  let dir = Filename.dirname path in
  Filename.basename dir = "telemetry" || Filename.basename path = "telemetry"

(* The query-probe rule only applies to the query layer: point-probe
   membership tests there bypass the planner's merge/hash operators. *)
let query_scoped path = Filename.basename (Filename.dirname path) = "query"

(* The codec modules are an implementation detail of the vectors layer:
   everyone else reads compressed data through the Sorted_ivec
   stream/slice API, which is what lets a representation swap leave the
   planner, executor and snapshot code untouched. *)
let pats_repr_codec = [ "Packed_ivec"; "Delta_ivec" ]
let vectors_scoped path = Filename.basename (Filename.dirname path) = "vectors"

let allow_marker rule = "lint: allow " ^ rule_name rule

(* --- telemetry ----------------------------------------------------------- *)

let c_files = Telemetry.Metrics.counter "check.lint.files"
let c_tokens = Telemetry.Metrics.counter "check.lint.tokens"

let c_violations =
  List.map
    (fun r -> (r, Telemetry.Metrics.counter ("check.lint.violations." ^ rule_name r)))
    [
      Missing_mli; Obj_magic; Printf_in_lib; Catch_all; Raw_clock; Query_probe;
      Span_hygiene; Domain_unsafe_global; Repr_abstraction;
    ]

let count_violation rule =
  match List.assoc_opt rule c_violations with
  | Some c -> Telemetry.Metrics.incr c
  | None -> ()

(* --- token-stream matching ----------------------------------------------- *)

let find_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc = if i + m > n then List.rev acc
    else if String.sub s i m = sub then go (i + 1) (i :: acc)
    else go (i + 1) acc
  in
  go 0 []

let is_dot (tok : L.token) = tok.L.kind = L.Op && String.equal tok.L.text "."

(* Qualified-name occurrences: for each token that starts a dotted path
   (not itself a path suffix), the assembled path and the start token.
   Token boundaries make word boundaries exact — [Sys.timestamp] and
   [My_sys.time] are different tokens than [Sys]/[time]. *)
let path_hits (t : L.t) wanted =
  let toks = t.L.tokens in
  let hits = ref [] in
  Array.iteri
    (fun i (tok : L.token) ->
      match tok.L.kind with
      | L.Ident | L.Uident ->
          if not (i > 0 && is_dot toks.(i - 1)) then (
            match L.path_at t i with
            | Some (p, _) when List.mem p wanted -> hits := (p, tok) :: !hits
            | _ -> ())
      | _ -> ())
    toks;
  List.rev !hits

(* Any mention of a codec module name.  Unlike [path_hits] this keeps
   dot-preceded tokens, so a qualified [Vectors.Packed_ivec.get] is
   caught through its [Packed_ivec] component. *)
let codec_hits (t : L.t) =
  Array.to_list t.L.tokens
  |> List.filter (fun (tok : L.token) ->
         tok.L.kind = L.Uident && List.mem tok.L.text pats_repr_codec)

(* [with _ ->] possibly spanning lines; a named wildcard ([with _e ->])
   is a different token, and [with _ as e ->] has no arrow after the
   wildcard. *)
let catch_all_hits (t : L.t) =
  let toks = t.L.tokens in
  let n = Array.length toks in
  let next_code j =
    let j = ref j in
    while !j < n && toks.(!j).L.kind = L.Comment do
      incr j
    done;
    !j
  in
  let hits = ref [] in
  for i = 0 to n - 1 do
    if toks.(i).L.kind = L.Ident && String.equal toks.(i).L.text "with" then begin
      let j = next_code (i + 1) in
      if j < n && toks.(j).L.kind = L.Ident && String.equal toks.(j).L.text "_" then
        let k = next_code (j + 1) in
        if k < n && toks.(k).L.kind = L.Op && String.equal toks.(k).L.text "->" then
          hits := toks.(i) :: !hits
    end
  done;
  List.rev !hits

(* Lines carrying a waiver marker — counted only inside comment tokens,
   at the marker's exact line within multi-line comments.  (The PR 1
   scanner matched markers anywhere in the raw source, so a string
   literal could smuggle a waiver in.) *)
let marker_lines (t : L.t) marker =
  Array.to_list t.L.tokens
  |> List.concat_map (fun (tok : L.token) ->
         if tok.L.kind <> L.Comment then []
         else
           find_sub tok.L.text marker
           |> List.map (fun off ->
                  let before = String.sub tok.L.text 0 off in
                  tok.L.line
                  + String.fold_left (fun acc c -> if c = '\n' then acc + 1 else acc) 0 before))

(* --- rule driver ---------------------------------------------------------- *)

let violation ~path rule (tok : L.token) detail =
  count_violation rule;
  V.v V.Source ~path:(Printf.sprintf "%s:%d" path tok.L.line) "%s: %s" (rule_name rule) detail

let domain_safety_violations ~path (t : L.t) =
  let fr = Mutability.analyze_tokens ~path t in
  Mutability.unattested { Mutability.files = [ fr ] }
  |> List.map (fun (_, (g : Mutability.global)) ->
         count_violation Domain_unsafe_global;
         let detail =
           match g.Mutability.g_attestation with
           | None ->
               Printf.sprintf
                 "module-global mutable binding %s (%s) has no (* domain-safety: <class> — \
                  <reason> *) attestation; domains will share it"
                 g.Mutability.g_name g.Mutability.g_ctor
           | Some (cls, _) when Option.is_none (Mutability.class_of_string cls) ->
               Printf.sprintf
                 "domain-safety attestation on %s has unknown class %S (expected \
                  immutable-after-init | guarded | telemetry-gated | test-only | atomic | \
                  domain-sharded)"
                 g.Mutability.g_name cls
           | Some (cls, _) ->
               Printf.sprintf
                 "domain-safety attestation on %s needs a reason after the class %S"
                 g.Mutability.g_name cls
         in
         V.v V.Source
           ~path:(Printf.sprintf "%s:%d" path g.Mutability.g_line)
           "%s: %s" (rule_name Domain_unsafe_global) detail)

let scan_source ~path contents =
  let t = L.tokenize contents in
  Telemetry.Metrics.incr c_files;
  Telemetry.Metrics.add c_tokens (Array.length t.L.tokens);
  let of_hits rule detail hits = List.map (fun tok -> violation ~path rule tok detail) hits in
  of_hits Obj_magic "Obj.magic defeats the type system; no uses allowed in lib/"
      (List.map snd (path_hits t [ pat_obj_magic ]))
    @ List.concat_map
        (fun (p, tok) ->
          of_hits Printf_in_lib
            (p ^ " writes to stdout from library code; take a formatter instead")
            [ tok ])
        (path_hits t pats_printf)
    @ of_hits Catch_all "catch-all exception handler swallows every failure" (catch_all_hits t)
    @ (if clock_exempt path then []
       else
         List.concat_map
           (fun (p, tok) ->
             of_hits Raw_clock
               (p ^ " reads the system clock directly; use Telemetry.Clock so tests can \
                     inject time")
               [ tok ])
           (path_hits t pats_clock))
    @ (if not (query_scoped path) then []
       else
         let allowed = marker_lines t (allow_marker Query_probe) in
         path_hits t [ pat_query_probe ]
         |> List.filter (fun (_, (tok : L.token)) ->
                not (List.mem tok.L.line allowed || List.mem (tok.L.line - 1) allowed))
         |> List.map snd
         |> of_hits Query_probe
              (pat_query_probe
             ^ " is a point probe; query operators must join through the planner's \
                merge/hash kernels (annotate the line to waive)"))
    @ (if clock_exempt path then []
       else
         let allowed = marker_lines t (allow_marker Span_hygiene) in
         path_hits t pats_span
         |> List.filter (fun (_, (tok : L.token)) ->
                not (List.mem tok.L.line allowed || List.mem (tok.L.line - 1) allowed))
         |> List.concat_map (fun (p, tok) ->
                of_hits Span_hygiene
                  (p
                 ^ " is a manual span pair; use Trace.with_span so spans balance on every \
                    exit path (annotate the line to waive a resource-lifetime span)")
                  [ tok ]))
    @ (if vectors_scoped path then []
       else
         let allowed = marker_lines t (allow_marker Repr_abstraction) in
         codec_hits t
         |> List.filter (fun (tok : L.token) ->
                not (List.mem tok.L.line allowed || List.mem (tok.L.line - 1) allowed))
         |> of_hits Repr_abstraction
              "codec module addressed outside lib/vectors; read compressed data through \
               the Sorted_ivec stream/slice API (annotate the line to waive)")
  @ (if Filename.check_suffix path ".mli" then [] else domain_safety_violations ~path t)

(* --- directory walking -------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hidden name = String.length name = 0 || name.[0] = '.' || name.[0] = '_'

let rec scan_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> [ V.v V.Source ~path:dir "unreadable directory: %s" msg ]
  | entries ->
      Array.sort compare entries;
      Array.to_list entries
      |> List.concat_map (fun name ->
             if hidden name then []
             else
               let path = Filename.concat dir name in
               if Sys.is_directory path then scan_dir path
               else if Filename.check_suffix name ".ml" then
                 let missing =
                   if Sys.file_exists (path ^ "i") then []
                   else begin
                     count_violation Missing_mli;
                     [
                       V.v V.Source ~path "%s: %s has no interface (%si missing)"
                         (rule_name Missing_mli) name name;
                     ]
                   end
                 in
                 missing @ scan_source ~path (read_file path)
               else if Filename.check_suffix name ".mli" then scan_source ~path (read_file path)
               else [])
