module V = Violation

type rule =
  | Missing_mli
  | Obj_magic
  | Printf_in_lib
  | Catch_all
  | Raw_clock
  | Query_probe

let rule_name = function
  | Missing_mli -> "missing-mli"
  | Obj_magic -> "obj-magic"
  | Printf_in_lib -> "printf-in-lib"
  | Catch_all -> "catch-all"
  | Raw_clock -> "raw-clock"
  | Query_probe -> "query-probe"

(* The patterns are assembled at runtime so this file does not flag
   itself when the linter scans lib/check. *)
let pat_obj_magic = "Obj." ^ "magic"
let pats_printf = [ "Printf." ^ "printf"; "Format." ^ "printf"; "print_" ^ "endline" ]
let pats_clock = [ "Unix." ^ "gettimeofday"; "Sys." ^ "time" ]
let pat_query_probe = "Sorted_ivec." ^ "mem"

(* lib/telemetry wraps the system clock; everyone else must go through
   it (Telemetry.Clock), so tests can inject a deterministic source. *)
let clock_exempt path =
  let dir = Filename.dirname path in
  Filename.basename dir = "telemetry" || Filename.basename path = "telemetry"

(* The query-probe rule only applies to the query layer: point-probe
   membership tests there bypass the planner's merge/hash operators. *)
let query_scoped path = Filename.basename (Filename.dirname path) = "query"

(* A violation of [rule] on some line is waived when that line, or the
   line directly above it, carries the marker comment in the raw
   source.  Assembled at runtime like the patterns above. *)
let allow_marker rule = "lint: allow " ^ rule_name rule

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let allowed_lines contents marker =
  String.split_on_char '\n' contents
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.filter_map (fun (ln, line) -> if contains line marker then Some ln else None)

(* --- comment/string stripping ------------------------------------------ *)

let is_word_char c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c = '_' || c = '\''

let strip_comments_and_strings src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let comment_depth = ref 0 in
  let in_string = ref false in
  while !i < n do
    let c = src.[!i] in
    if !in_string then begin
      (* Inside a string literal (also reached from within comments). *)
      if c = '\\' && !i + 1 < n then begin
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else begin
        if c = '"' then in_string := false;
        if !comment_depth = 0 && c = '"' then () else blank !i;
        incr i
      end
    end
    else if !comment_depth > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr comment_depth;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr comment_depth;
        i := !i + 2
      end
      else begin
        if c = '"' then in_string := true;
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      comment_depth := 1;
      i := !i + 2
    end
    else if c = '"' then begin
      in_string := true;
      incr i
    end
    else if
      (* Character literals, so that '"' or '(' do not derail the scan.
         A quote not matching the literal shape is a type variable. *)
      c = '\''
      && !i + 2 < n
      && (src.[!i + 2] = '\'' && src.[!i + 1] <> '\\')
    then begin
      blank (!i + 1);
      i := !i + 3
    end
    else if c = '\'' && !i + 3 < n && src.[!i + 1] = '\\' && src.[!i + 3] = '\'' then begin
      blank (!i + 1);
      blank (!i + 2);
      i := !i + 4
    end
    else incr i
  done;
  Bytes.to_string out

(* --- scanning ----------------------------------------------------------- *)

let line_of src idx =
  let line = ref 1 in
  for k = 0 to idx - 1 do
    if src.[k] = '\n' then incr line
  done;
  !line

(* Occurrences of [pat] in [src] at word boundaries. *)
let find_token src pat =
  let n = String.length src and m = String.length pat in
  let hits = ref [] in
  for i = 0 to n - m do
    if
      String.sub src i m = pat
      && (i = 0 || not (is_word_char src.[i - 1]))
      && (i + m >= n || not (is_word_char src.[i + m]))
    then hits := i :: !hits
  done;
  List.rev !hits

let skip_ws src i =
  let n = String.length src in
  let j = ref i in
  while !j < n && (src.[!j] = ' ' || src.[!j] = '\t' || src.[!j] = '\n' || src.[!j] = '\r') do
    incr j
  done;
  !j

(* [with _ ->] possibly spanning lines; a named wildcard ([with _e ->])
   does not count, nor does [with _ as e ->] (no arrow directly after). *)
let catch_all_positions src =
  List.filter
    (fun i ->
      let n = String.length src in
      let j = skip_ws src (i + 4) in
      j < n
      && src.[j] = '_'
      && (j + 1 >= n || not (is_word_char src.[j + 1]))
      &&
      let k = skip_ws src (j + 1) in
      k + 1 < n && src.[k] = '-' && src.[k + 1] = '>')
    (find_token src "with")

let violation ~path rule idx src detail =
  V.v V.Source
    ~path:(Printf.sprintf "%s:%d" path (line_of src idx))
    "%s: %s" (rule_name rule) detail

let scan_source ~path contents =
  let src = strip_comments_and_strings contents in
  let of_rule rule detail idxs = List.map (fun i -> violation ~path rule i src detail) idxs in
  of_rule Obj_magic "Obj.magic defeats the type system; no uses allowed in lib/"
    (find_token src pat_obj_magic)
  @ List.concat_map
      (fun pat ->
        of_rule Printf_in_lib
          (pat ^ " writes to stdout from library code; take a formatter instead")
          (find_token src pat))
      pats_printf
  @ of_rule Catch_all "catch-all exception handler swallows every failure" (catch_all_positions src)
  @ (if clock_exempt path then []
     else
       List.concat_map
         (fun pat ->
           of_rule Raw_clock
             (pat ^ " reads the system clock directly; use Telemetry.Clock so tests can inject time")
             (find_token src pat))
         pats_clock)
  @ (if not (query_scoped path) then []
     else
       let allowed = allowed_lines contents (allow_marker Query_probe) in
       find_token src pat_query_probe
       |> List.filter (fun i ->
              let ln = line_of src i in
              not (List.mem ln allowed || List.mem (ln - 1) allowed))
       |> of_rule Query_probe
            (pat_query_probe
           ^ " is a point probe; query operators must join through the planner's \
              merge/hash kernels (annotate the line to waive)"))

(* --- directory walking -------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let hidden name = String.length name = 0 || name.[0] = '.' || name.[0] = '_'

let rec scan_dir dir =
  match Sys.readdir dir with
  | exception Sys_error msg -> [ V.v V.Source ~path:dir "unreadable directory: %s" msg ]
  | entries ->
      Array.sort compare entries;
      Array.to_list entries
      |> List.concat_map (fun name ->
             if hidden name then []
             else
               let path = Filename.concat dir name in
               if Sys.is_directory path then scan_dir path
               else if Filename.check_suffix name ".ml" then
                 let missing =
                   if Sys.file_exists (path ^ "i") then []
                   else
                     [
                       V.v V.Source ~path "%s: %s has no interface (%si missing)"
                         (rule_name Missing_mli) name name;
                     ]
                 in
                 missing @ scan_source ~path (read_file path)
               else if Filename.check_suffix name ".mli" then scan_source ~path (read_file path)
               else [])
