open Hexa

type id_triple = Dict.Term_dict.id_triple = {
  s : int;
  p : int;
  o : int;
}

type op =
  | Insert of id_triple
  | Delete of id_triple
  | Query of Pattern.t
  | Flush
  | Compact

type divergence = {
  step : int;
  op : op;
  detail : string;
}

let op_to_string = function
  | Insert { s; p; o } -> Printf.sprintf "insert (%d,%d,%d)" s p o
  | Delete { s; p; o } -> Printf.sprintf "delete (%d,%d,%d)" s p o
  | Query pat -> Format.asprintf "query %a" Pattern.pp pat
  | Flush -> "flush"
  | Compact -> "compact"

let ops_to_string ops = String.concat "; " (List.map op_to_string ops)

let divergence_to_string d =
  Printf.sprintf "step %d (%s): %s" d.step (op_to_string d.op) d.detail

let triples_to_string l =
  String.concat "," (List.map (fun { s; p; o } -> Printf.sprintf "(%d,%d,%d)" s p o) l)

let run ?(validate = true) ops =
  let h = Hexastore.create () in
  let m = Model.create () in
  let divergences = ref [] in
  let report step op detail = divergences := { step; op; detail } :: !divergences in
  List.iteri
    (fun step op ->
      (match op with
      | Insert tr ->
          let rh = Hexastore.add_ids h tr in
          let rm = Model.add m tr in
          if rh <> rm then
            report step op (Printf.sprintf "insert returned %b, model returned %b" rh rm)
      | Delete tr ->
          let rh = Hexastore.remove_ids h tr in
          let rm = Model.remove m tr in
          if rh <> rm then
            report step op (Printf.sprintf "delete returned %b, model returned %b" rh rm)
      | Query pat ->
          let rh = List.sort Model.compare_spo (List.of_seq (Hexastore.lookup h pat)) in
          let rm = Model.lookup m pat in
          if rh <> rm then
            report step op
              (Printf.sprintf "lookup [%s] vs model [%s]" (triples_to_string rh)
                 (triples_to_string rm));
          let ch = Hexastore.count h pat in
          let cm = Model.count m pat in
          if ch <> cm then report step op (Printf.sprintf "count %d vs model %d" ch cm)
      | Flush | Compact ->
          (* A plain Hexastore has nothing staged; these only matter to
             {!run_delta}. *)
          ());
      if Hexastore.size h <> Model.size m then
        report step op
          (Printf.sprintf "size %d vs model %d" (Hexastore.size h) (Model.size m));
      (match op with
      | Insert tr | Delete tr ->
          if Hexastore.mem_ids h tr <> Model.mem m tr then
            report step op
              (Printf.sprintf "mem %b vs model %b" (Hexastore.mem_ids h tr) (Model.mem m tr))
      | Query _ | Flush | Compact -> ());
      if validate then
        match op with
        | Insert _ | Delete _ ->
            List.iter
              (fun v -> report step op ("invariant: " ^ Violation.to_string v))
              (Invariant.store h)
        | Query _ | Flush | Compact -> ())
    ops;
  List.rev !divergences

let run_delta ?(validate = true) ?insert_threshold ?delete_threshold ops =
  let d = Hexa.Delta.create ?insert_threshold ?delete_threshold () in
  let m = Model.create () in
  let divergences = ref [] in
  let report step op detail = divergences := { step; op; detail } :: !divergences in
  List.iteri
    (fun step op ->
      (match op with
      | Insert tr ->
          let rd = Delta.add_ids d tr in
          let rm = Model.add m tr in
          if rd <> rm then
            report step op (Printf.sprintf "insert returned %b, model returned %b" rd rm)
      | Delete tr ->
          let rd = Delta.remove_ids d tr in
          let rm = Model.remove m tr in
          if rd <> rm then
            report step op (Printf.sprintf "delete returned %b, model returned %b" rd rm)
      | Query pat ->
          let rd = List.sort Model.compare_spo (List.of_seq (Delta.lookup d pat)) in
          let rm = Model.lookup m pat in
          if rd <> rm then
            report step op
              (Printf.sprintf "lookup [%s] vs model [%s]" (triples_to_string rd)
                 (triples_to_string rm));
          let cd = Delta.count d pat in
          let cm = Model.count m pat in
          if cd <> cm then report step op (Printf.sprintf "count %d vs model %d" cd cm)
      | Flush ->
          Delta.flush d;
          if Delta.pending_inserts d + Delta.pending_deletes d <> 0 then
            report step op
              (Printf.sprintf "flush left %d inserts, %d deletes pending"
                 (Delta.pending_inserts d) (Delta.pending_deletes d))
      | Compact ->
          Delta.compact d;
          if Delta.pending_inserts d + Delta.pending_deletes d <> 0 then
            report step op
              (Printf.sprintf "compact left %d inserts, %d deletes pending"
                 (Delta.pending_inserts d) (Delta.pending_deletes d)));
      if Delta.size d <> Model.size m then
        report step op (Printf.sprintf "size %d vs model %d" (Delta.size d) (Model.size m));
      (match op with
      | Insert tr | Delete tr ->
          if Delta.mem_ids d tr <> Model.mem m tr then
            report step op
              (Printf.sprintf "mem %b vs model %b" (Delta.mem_ids d tr) (Model.mem m tr))
      | Query _ | Flush | Compact -> ());
      if validate then
        match op with
        | Insert _ | Delete _ | Flush | Compact ->
            List.iter
              (fun v -> report step op ("invariant: " ^ Violation.to_string v))
              (Invariant.delta d)
        | Query _ -> ())
    ops;
  List.rev !divergences

(* --- generation and shrinking ------------------------------------------ *)

let gen_ops_with ~extra ~max_id ~max_len =
  let open QCheck.Gen in
  let id = int_bound max_id in
  let gen_triple = map (fun (s, p, o) -> { s; p; o }) (triple id id id) in
  let opt_id = frequency [ (1, return None); (2, map Option.some id) ] in
  let pattern = map (fun (s, p, o) -> { Pattern.s; p; o }) (triple opt_id opt_id opt_id) in
  let op =
    frequency
      ([
         (5, map (fun t -> Insert t) gen_triple);
         (3, map (fun t -> Delete t) gen_triple);
         (2, map (fun p -> Query p) pattern);
       ]
      @ extra)
  in
  list_size (int_bound max_len) op

let gen_ops ~max_id ~max_len = gen_ops_with ~extra:[] ~max_id ~max_len

let gen_delta_ops ~max_id ~max_len =
  gen_ops_with
    ~extra:[ (1, QCheck.Gen.return Flush); (1, QCheck.Gen.return Compact) ]
    ~max_id ~max_len

let shrink_triple { s; p; o } =
  let open QCheck.Iter in
  map (fun s -> { s; p; o }) (QCheck.Shrink.int s)
  <+> map (fun p -> { s; p; o }) (QCheck.Shrink.int p)
  <+> map (fun o -> { s; p; o }) (QCheck.Shrink.int o)

let shrink_pattern pat =
  let open QCheck.Iter in
  let pos get set =
    match get pat with
    | None -> empty
    | Some x -> return (set None) <+> map (fun x -> set (Some x)) (QCheck.Shrink.int x)
  in
  pos (fun p -> p.Pattern.s) (fun s -> { pat with Pattern.s })
  <+> pos (fun p -> p.Pattern.p) (fun p -> { pat with Pattern.p })
  <+> pos (fun p -> p.Pattern.o) (fun o -> { pat with Pattern.o })

let shrink_op op =
  let open QCheck.Iter in
  match op with
  | Insert t -> map (fun t -> Insert t) (shrink_triple t)
  | Delete t ->
      (* A delete often reproduces as the cheaper membership probe. *)
      return (Query (Pattern.of_triple t)) <+> map (fun t -> Delete t) (shrink_triple t)
  | Query p -> map (fun p -> Query p) (shrink_pattern p)
  | Flush | Compact -> empty

let arb_ops ?(max_id = 3) ?(max_len = 40) () =
  QCheck.make
    ~print:(fun ops -> "[" ^ ops_to_string ops ^ "]")
    ~shrink:(QCheck.Shrink.list ~shrink:shrink_op)
    (gen_ops ~max_id ~max_len)

let arb_delta_ops ?(max_id = 3) ?(max_len = 40) () =
  QCheck.make
    ~print:(fun ops -> "[" ^ ops_to_string ops ^ "]")
    ~shrink:(QCheck.Shrink.list ~shrink:shrink_op)
    (gen_delta_ops ~max_id ~max_len)
