open Vectors
module V = Violation

(* Validators accumulate into a reverse-ordered list ref; [finish] restores
   discovery order. *)
let add acc v = acc := v :: !acc
let finish acc = List.rev !acc

(* --- vectors ---------------------------------------------------------- *)

let sorted_ivec_acc acc ~path v =
  let n = Sorted_ivec.length v in
  for i = 1 to n - 1 do
    let a = Sorted_ivec.get v (i - 1) and b = Sorted_ivec.get v i in
    if a >= b then
      add acc (V.v V.Vector ~path "elements out of order at %d: %d >= %d" i a b)
  done;
  (* Compressed slices additionally carry per-block headers (mins, widths,
     offsets, first-values); [block_violations] is [] on raw vectors. *)
  List.iter
    (fun msg -> add acc (V.v V.Vector ~path "block header: %s" msg))
    (Sorted_ivec.block_violations v)

let sorted_ivec ?(path = "sorted_ivec") v =
  let acc = ref [] in
  sorted_ivec_acc acc ~path v;
  finish acc

let pair_vector_acc acc ~path v =
  let open Hexa in
  let n = Pair_vector.length v in
  for i = 1 to n - 1 do
    let a = Pair_vector.key_at v (i - 1) and b = Pair_vector.key_at v i in
    if a >= b then
      add acc (V.v V.Pair_vector ~path "keys out of order at %d: %d >= %d" i a b)
  done;
  let sum = ref 0 in
  for i = 0 to n - 1 do
    let key = Pair_vector.key_at v i in
    let l = Pair_vector.payload_at v i in
    sum := !sum + Sorted_ivec.length l;
    if Sorted_ivec.is_empty l then
      add acc (V.v V.Pair_vector ~path "empty terminal list under key %d (should be pruned)" key);
    sorted_ivec_acc acc ~path:(Printf.sprintf "%s[%d].list" path key) l
  done;
  if !sum <> Pair_vector.total v then
    add acc
      (V.v V.Pair_vector ~path "total %d disagrees with sum of list lengths %d"
         (Pair_vector.total v) !sum)

let pair_vector ?(path = "pair_vector") v =
  let acc = ref [] in
  pair_vector_acc acc ~path v;
  finish acc

(* --- one ordering ------------------------------------------------------ *)

let index_acc acc ~path idx =
  let open Hexa in
  Index.iter
    (fun h v ->
      let vpath = Printf.sprintf "%s[%d]" path h in
      if Pair_vector.length v = 0 then
        add acc (V.v V.Index ~path:vpath "empty vector under header (should be pruned)");
      pair_vector_acc acc ~path:vpath v)
    idx

let index ?(path = "index") idx =
  let acc = ref [] in
  index_acc acc ~path idx;
  finish acc

(* --- the Hexastore ----------------------------------------------------- *)

(* [expect_shared acc ~same canonical found] checks that a terminal list
   reached through another ordering (or accessor table) matches the
   canonical one — the §4.1 sharing invariant behind the 5x space bound.
   On raw stores [same] is physical equality ([==]); on flat compressed
   stores twin slices are distinct 4-word views over the same underlying
   stream, so the check degrades to logical equality. *)
let expect_shared acc ~path ~twin ~same canonical = function
  | None -> add acc (V.v V.Store ~path "terminal list missing from %s" twin)
  | Some l ->
      if not (same l canonical) then
        add acc (V.v V.Store ~path "terminal list in %s is a distinct copy, not shared" twin)

let expect_member acc ~path ~twin elt = function
  | None -> add acc (V.v V.Store ~path "terminal list missing from %s" twin)
  | Some l ->
      if not (Sorted_ivec.mem l elt) then
        add acc (V.v V.Store ~path "%s list lacks element %d" twin elt)

let store_acc acc h =
  let open Hexa in
  let size = Hexastore.size h in
  let same = if Hexastore.is_flat h then Sorted_ivec.equal else ( == ) in
  let orderings =
    [
      ("spo", Hexastore.spo h);
      ("sop", Hexastore.sop h);
      ("pso", Hexastore.pso h);
      ("pos", Hexastore.pos h);
      ("osp", Hexastore.osp h);
      ("ops", Hexastore.ops h);
    ]
  in
  List.iter
    (fun (name, idx) ->
      index_acc acc ~path:name idx;
      let total = Index.total idx in
      if total <> size then
        add acc (V.v V.Store ~path:name "index total %d disagrees with store size %d" total size))
    orderings;
  (* Walk spo once; every triple must be reachable through the five other
     orderings, and the three terminal lists must be physically shared
     with their twins and with the direct accessor tables. *)
  let seen = ref 0 in
  Index.iter
    (fun s v ->
      Pair_vector.iter
        (fun p o_list ->
          let path = Printf.sprintf "spo[%d][%d]" s p in
          expect_shared acc ~path ~same ~twin:"pso" o_list (Index.find_list (Hexastore.pso h) p s);
          expect_shared acc ~path ~same ~twin:"objects_of_sp" o_list (Hexastore.objects_of_sp h ~s ~p);
          Sorted_ivec.iter
            (fun o ->
              incr seen;
              let path = Printf.sprintf "spo triple (%d,%d,%d)" s p o in
              let p_list = Index.find_list (Hexastore.sop h) s o in
              expect_member acc ~path ~twin:"sop" p p_list;
              (match p_list with
              | Some pl ->
                  expect_shared acc ~path ~same ~twin:"osp" pl (Index.find_list (Hexastore.osp h) o s);
                  expect_shared acc ~path ~same ~twin:"properties_of_so" pl
                    (Hexastore.properties_of_so h ~s ~o)
              | None -> ());
              let s_list = Index.find_list (Hexastore.pos h) p o in
              expect_member acc ~path ~twin:"pos" s s_list;
              match s_list with
              | Some sl ->
                  expect_shared acc ~path ~same ~twin:"ops" sl (Index.find_list (Hexastore.ops h) o p);
                  expect_shared acc ~path ~same ~twin:"subjects_of_po" sl
                    (Hexastore.subjects_of_po h ~p ~o)
              | None -> ())
            o_list)
        v)
    (Hexastore.spo h);
  if !seen <> size then
    add acc (V.v V.Store ~path:"spo" "spo reaches %d triples but store size is %d" !seen size)

(* --- dictionaries ------------------------------------------------------ *)

let dictionary_acc acc d =
  let open Dict in
  for id = 0 to Dictionary.size d - 1 do
    let s = Dictionary.decode d id in
    match Dictionary.find d s with
    | Some id' when id' = id -> ()
    | Some id' ->
        add acc
          (V.v V.Dictionary ~path:(Printf.sprintf "id %d" id)
             "decode/find round-trip maps %S to id %d" s id')
    | None ->
        add acc
          (V.v V.Dictionary ~path:(Printf.sprintf "id %d" id) "decoded string %S is unknown" s)
  done

let dictionary d =
  let acc = ref [] in
  dictionary_acc acc d;
  finish acc

let term_dict_acc acc d =
  let open Dict in
  for id = 0 to Term_dict.size d - 1 do
    let term = Term_dict.decode_term d id in
    match Term_dict.find_term d term with
    | Some id' when id' = id -> ()
    | Some id' ->
        add acc
          (V.v V.Dictionary ~path:(Printf.sprintf "id %d" id)
             "decode/find round-trip maps %a to id %d" Rdf.Term.pp term id')
    | None ->
        add acc
          (V.v V.Dictionary ~path:(Printf.sprintf "id %d" id) "decoded term %a is unknown"
             Rdf.Term.pp term)
  done

let term_dict d =
  let acc = ref [] in
  term_dict_acc acc d;
  finish acc

let store h =
  let acc = ref [] in
  store_acc acc h;
  term_dict_acc acc (Hexa.Hexastore.dict h);
  finish acc

(* --- delta layer -------------------------------------------------------- *)

(* How many merged triples get the full 8-shape pattern cross-check
   against the flushed clone.  Capped so [delta] stays usable inside the
   differential checker's per-op validation loop. *)
let delta_sample_cap = 16

let delta d =
  let open Hexa in
  let acc = ref [] in
  let base = Delta.base d in
  store_acc acc base;
  term_dict_acc acc (Hexastore.dict base);
  let tr_path { Dict.Term_dict.s; p; o } = Printf.sprintf "(%d,%d,%d)" s p o in
  (* Buffer coherence: inserts ∉ base, deletes ⊆ base, buffers disjoint. *)
  let deletes = Hashtbl.create 16 in
  Delta.iter_pending_deletes
    (fun tr ->
      Hashtbl.replace deletes tr ();
      if not (Hexastore.mem_ids base tr) then
        add acc (V.v V.Delta ~path:(tr_path tr) "tombstone for a triple the base does not hold"))
    d;
  Delta.iter_pending_inserts
    (fun tr ->
      if Hexastore.mem_ids base tr then
        add acc (V.v V.Delta ~path:(tr_path tr) "buffered insert already present in base");
      if Hashtbl.mem deletes tr then
        add acc (V.v V.Delta ~path:(tr_path tr) "triple buffered as both insert and delete"))
    d;
  (* Merged-view fidelity: the delta must be observationally equal — same
     triples, same per-shape order, same counts — to a clone that has the
     delta already applied the slow way. *)
  let clone = Hexastore.create ~dict:(Hexastore.dict base) () in
  let base_triples = List.rev (Hexastore.fold (fun tr l -> tr :: l) base []) in
  ignore (Hexastore.add_bulk_ids clone (Array.of_list base_triples));
  Delta.iter_pending_deletes (fun tr -> ignore (Hexastore.remove_ids clone tr)) d;
  Delta.iter_pending_inserts (fun tr -> ignore (Hexastore.add_ids clone tr)) d;
  if Delta.size d <> Hexastore.size clone then
    add acc
      (V.v V.Delta ~path:"size" "merged size %d disagrees with flushed clone %d" (Delta.size d)
         (Hexastore.size clone));
  let check_pattern pat =
    let path = Format.asprintf "pattern %a" Pattern.pp pat in
    let merged = List.of_seq (Delta.lookup d pat) in
    let flushed = List.of_seq (Hexastore.lookup clone pat) in
    if merged <> flushed then
      add acc
        (V.v V.Delta ~path "merged view disagrees with flushed clone (%d vs %d triples, or order)"
           (List.length merged) (List.length flushed));
    if Delta.count d pat <> Hexastore.count clone pat then
      add acc
        (V.v V.Delta ~path "merged count %d disagrees with flushed clone %d" (Delta.count d pat)
           (Hexastore.count clone pat))
  in
  check_pattern Pattern.wildcard;
  let sample = List.rev (Hexastore.fold (fun tr l -> tr :: l) clone []) in
  let n = List.length sample in
  let stride = max 1 (n / delta_sample_cap) in
  List.iteri
    (fun i ({ Dict.Term_dict.s; p; o } as tr) ->
      if i mod stride = 0 then begin
        List.iter check_pattern
          [
            Pattern.of_triple tr;
            Pattern.make ~s ~p ();
            Pattern.make ~s ~o ();
            Pattern.make ~p ~o ();
            Pattern.make ~s ();
            Pattern.make ~p ();
            Pattern.make ~o ();
          ]
      end)
    sample;
  finish acc

(* --- dataset ----------------------------------------------------------- *)

let dataset d =
  let open Hexa in
  let acc = ref [] in
  let dict = Dataset.dict d in
  let graphs =
    (None, Dataset.default_graph d)
    :: List.filter_map
         (fun name -> Option.map (fun g -> (Some name, g)) (Dataset.graph d name))
         (Dataset.graph_names d)
  in
  let total = ref 0 in
  List.iter
    (fun (name, g) ->
      let path =
        match name with
        | None -> "default graph"
        | Some t -> Format.asprintf "graph %a" Rdf.Term.pp t
      in
      total := !total + Hexastore.size g;
      if not (Hexastore.dict g == dict) then
        add acc (V.v V.Dataset ~path "graph does not share the dataset dictionary");
      List.iter (fun v -> add acc { v with Violation.path = path ^ "." ^ v.Violation.path })
        (store g))
    graphs;
  if !total <> Dataset.size d then
    add acc
      (V.v V.Dataset ~path:"size" "dataset size %d disagrees with sum over graphs %d"
         (Dataset.size d) !total);
  finish acc

(* --- snapshot round-trip ----------------------------------------------- *)

let snapshot_roundtrip h =
  let open Hexa in
  let acc = ref [] in
  (* Precondition: a snapshot's ids are positional in the dictionary, so
     every id the store uses must actually be allocated there.  Saying so
     beats the opaque corruption error a round-trip would report. *)
  let dict_size = Dict.Term_dict.size (Hexastore.dict h) in
  let bad_ids = ref 0 in
  Hexastore.fold
    (fun { s; p; o } () ->
      if s >= dict_size || p >= dict_size || o >= dict_size then incr bad_ids)
    h ();
  if !bad_ids > 0 then
    [
      V.v V.Snapshot ~path:"store"
        "%d triple(s) use ids outside the dictionary (size %d); only dictionary-encoded stores \
         are snapshotable"
        !bad_ids dict_size;
    ]
  else begin
  let file = Filename.temp_file "hexcheck" ".snap" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      match
        Snapshot.save h file;
        Snapshot.load file
      with
      | exception Snapshot.Corrupt msg ->
          add acc (V.v V.Snapshot ~path:file "round-trip reported corruption: %s" msg)
      | h' ->
          if Hexastore.size h' <> Hexastore.size h then
            add acc
              (V.v V.Snapshot ~path:file "size changed across round-trip: %d -> %d"
                 (Hexastore.size h) (Hexastore.size h'));
          let triples_of st = List.rev (Hexastore.fold (fun tr l -> tr :: l) st []) in
          if triples_of h' <> triples_of h then
            add acc (V.v V.Snapshot ~path:file "triple set changed across round-trip");
          let d = Hexastore.dict h and d' = Hexastore.dict h' in
          if Dict.Term_dict.size d' <> Dict.Term_dict.size d then
            add acc
              (V.v V.Snapshot ~path:file "dictionary size changed across round-trip: %d -> %d"
                 (Dict.Term_dict.size d) (Dict.Term_dict.size d'))
          else
            for id = 0 to Dict.Term_dict.size d - 1 do
              let a = Dict.Term_dict.decode_term d id
              and b = Dict.Term_dict.decode_term d' id in
              if Rdf.Term.compare a b <> 0 then
                add acc
                  (V.v V.Snapshot ~path:file "dictionary id %d decodes differently: %a vs %a" id
                     Rdf.Term.pp a Rdf.Term.pp b)
            done;
          List.iter (fun v -> add acc { v with Violation.path = "reloaded." ^ v.Violation.path })
            (store h'));
  finish acc
  end
