(** Typed invariant-violation reports.

    Every validator in {!Invariant} (and the source scanner in {!Lint})
    returns a list of these instead of asserting, so callers can report
    all problems at once, count them, or render them for humans.  An empty
    list means the checked structure satisfies its invariants. *)

(** Which layer of the system the violated invariant belongs to. *)
type layer =
  | Vector  (** {!Vectors.Sorted_ivec} strict sortedness. *)
  | Pair_vector  (** Key ordering / total accounting of a pair vector. *)
  | Index  (** One of the six orderings. *)
  | Store  (** Cross-index Hexastore consistency. *)
  | Delta  (** Delta-layer buffer coherence and merged-view fidelity. *)
  | Dictionary  (** Term/id bijectivity. *)
  | Dataset  (** Named-graph coherence. *)
  | Snapshot  (** Persistence round-trip fidelity. *)
  | Query  (** Query-result divergence (parallel vs sequential, model). *)
  | Source  (** A lint finding in a source file. *)

type t = {
  layer : layer;
  path : string;
      (** Where the violation was found: a structural path like
          ["spo\[12\].vector"], or ["file.ml:37"] for lint findings. *)
  message : string;  (** Human-readable description of what is wrong. *)
}

val v : layer -> path:string -> ('a, Format.formatter, unit, t) format4 -> 'a
(** [v layer ~path fmt ...] builds a violation with a formatted message. *)

val layer_name : layer -> string

val pp : Format.formatter -> t -> unit
(** One line: [layer path: message]. *)

val to_string : t -> string

val pp_report : Format.formatter -> t list -> unit
(** All violations, one per line, with a trailing count; prints
    ["ok (no violations)"] on the empty list. *)
