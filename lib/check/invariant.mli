(** Per-layer structural invariant validators.

    The invariant catalogue the paper relies on, machine-checked:

    - {b Sortedness} (§4.1): every vector and terminal list is strictly
      increasing — {!sorted_ivec}, {!pair_vector}.
    - {b Accounting}: every pair vector's maintained [total] equals the sum
      of its payload-list lengths, and every ordering's total equals the
      store size — {!pair_vector}, {!index}, {!store}.
    - {b Pruning}: no empty terminal list, vector, or header survives a
      deletion — {!index}, {!store}.
    - {b Six-way agreement} (§4): the same triple set is reachable from
      every one of the six orderings — {!store}.
    - {b Terminal-list sharing} (§4.1, the 5× space bound): twin orderings
      point at the {e same} list, asserted by physical equality ([==]) —
      {!store}.
    - {b Dictionary bijectivity} (§4.1's mapping table): term ↔ id is a
      bijection — {!dictionary}, {!term_dict}.
    - {b Dataset coherence}: every graph shares the dataset dictionary
      physically and the dataset size is the sum over graphs — {!dataset}.
    - {b Snapshot fidelity} (§7): save/load round-trips the triple set,
      the dictionary, and every structural invariant — {!snapshot_roundtrip}.

    All validators return the complete list of violations found (empty =
    invariant holds) and never raise on malformed structures. *)

val sorted_ivec : ?path:string -> Vectors.Sorted_ivec.t -> Violation.t list
(** Strict ascending order. *)

val pair_vector : ?path:string -> Hexa.Pair_vector.t -> Violation.t list
(** Keys strictly ascending, every payload list sorted and non-empty, and
    [total] equal to the sum of payload lengths. *)

val index : ?path:string -> Hexa.Index.t -> Violation.t list
(** Every header's pair vector valid and non-empty. *)

val store : Hexa.Hexastore.t -> Violation.t list
(** The full Hexastore invariant: the six per-index checks, six-way
    triple-set agreement, physical terminal-list sharing between twin
    orderings (and with the direct accessor tables), per-index totals
    equal to the store size, and dictionary bijectivity. *)

val delta : Hexa.Delta.t -> Violation.t list
(** The delta-layer coherence rules on top of the base store's full
    {!store} check: no buffered insert already present in the base, the
    delete set a subset of the base, the two buffers disjoint, and the
    merged view observationally equal — triples, per-shape order, and
    counts — to a clone with the delta applied triple-by-triple.  The
    pattern cross-check runs the full wildcard plus all bound shapes of
    a capped sample of merged triples. *)

val dictionary : Dict.Dictionary.t -> Violation.t list
(** [decode] then [find] round-trips to the same id for every allocated
    id (string ↔ id bijection). *)

val term_dict : Dict.Term_dict.t -> Violation.t list
(** [decode_term] then [find_term] round-trips for every allocated id
    (term ↔ id bijection). *)

val dataset : Hexa.Dataset.t -> Violation.t list
(** Every graph (default and named) passes {!store}, shares the dataset
    dictionary physically, and the dataset size is the sum of graph
    sizes. *)

val snapshot_roundtrip : Hexa.Hexastore.t -> Violation.t list
(** Saves the store to a temporary file, loads it back, and checks the
    reloaded store for: identical size, identical triple set, identical
    dictionary contents (term-by-term, positional ids), and all {!store}
    invariants.  The temporary file is always removed.

    Stores whose triples use ids not allocated in their dictionary (a
    raw id-level store) are not snapshotable; a single violation saying
    so is returned without touching the filesystem. *)
