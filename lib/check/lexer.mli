(** A positioned OCaml tokenizer for the source-analysis passes.

    This is the shared front end of {!Lint} and {!Mutability}: instead
    of blanking comments/strings out of the raw text and substring-
    matching (the PR 1 scanner), sources are cut into a flat array of
    classified tokens, each carrying its exact source slice and its
    byte/line/column position.  Rules then match on token kinds, which
    makes comment and string contexts exact — a pattern inside a string
    literal is a {!String} token, never an {!Ident}.

    The lexer understands the OCaml surface the repo uses: nested
    [(* *)] comments (with string literals inside them, so a comment
    closer inside a quoted string does not end the comment), ["..."] strings
    with escapes, [{id|...|id}] quoted strings, char literals
    (['a'], ['\n'], ['\xFF'], ['\255']) versus type variables (['a]) and
    identifier primes ([x']), numbers, and runs of symbolic operator
    characters (so [:=] and [<-] surface as single {!Op} tokens).

    It is deliberately {e not} a parser: it never fails — any byte it
    cannot classify becomes a one-byte {!Punct} token — and it makes no
    grammatical judgements.  Total coverage is an invariant: every
    non-whitespace byte of the input belongs to exactly one token
    (tested by a qcheck re-serialization property). *)

type kind =
  | Ident  (** Lowercase-initial identifier or keyword. *)
  | Uident  (** Capitalised identifier (module/constructor). *)
  | Number  (** Integer or float literal, including [_] separators. *)
  | Char  (** Char literal, delimiters included. *)
  | String  (** String literal (["..."] or [{id|...|id}]), delimiters included. *)
  | Comment  (** One whole [(* ... *)] comment, nesting resolved. *)
  | Op  (** Maximal run of symbolic characters ([!$%&*+-./:<=>?@^|~]). *)
  | Punct  (** Single punctuation byte: parens, brackets, [;], [,], etc. *)

type token = {
  kind : kind;
  text : string;  (** Exact source slice, delimiters included. *)
  pos : int;  (** Byte offset of [text.[0]] in the source. *)
  line : int;  (** 1-based line of the token's first byte. *)
  col : int;  (** 1-based column of the token's first byte. *)
}

type t = {
  src : string;  (** The text that was tokenized. *)
  tokens : token array;  (** All tokens, in source order, non-overlapping. *)
  line_starts : int array;  (** Byte offset of each line start; [line_starts.(0) = 0]. *)
}

val tokenize : string -> t
(** Total: classifies every byte; never raises.  An unterminated string
    or comment extends to end of input. *)

val position : t -> int -> int * int
(** [position t off] is the [(line, col)] (both 1-based) of byte offset
    [off], by binary search over [line_starts] — O(log lines), replacing
    the PR 1 scanner's per-call O(bytes) rescan. *)

val line_text : t -> int -> string
(** [line_text t ln] is line [ln] (1-based) without its newline; [""]
    when out of range. *)

val is_keyword : string -> bool
(** OCaml keyword table ([let], [mutable], [in], ...). *)

val path_at : t -> int -> (string * int) option
(** [path_at t i] reassembles a dotted access path starting at token
    [i]: [Some ("Obj.magic", j)] when tokens [i..j-1] spell
    [Uident (. Uident)* . ident-or-uident] with no intervening
    whitespace requirement, [None] when token [i] does not begin such a
    path.  A lone identifier yields itself ([Some (text, i+1)]).
    Used by rules that match qualified names. *)
