type id_triple = Dict.Term_dict.id_triple = {
  s : int;
  p : int;
  o : int;
}

type t = { mutable triples : id_triple list (* strictly ascending in (s, p, o) *) }

let compare_spo (a : id_triple) (b : id_triple) =
  let c = Int.compare a.s b.s in
  if c <> 0 then c
  else
    let c = Int.compare a.p b.p in
    if c <> 0 then c else Int.compare a.o b.o

let create () = { triples = [] }

let size t = List.length t.triples

let mem t tr = List.exists (fun x -> compare_spo x tr = 0) t.triples

let add t tr =
  let rec insert = function
    | [] -> Some [ tr ]
    | x :: rest as l ->
        let c = compare_spo tr x in
        if c = 0 then None
        else if c < 0 then Some (tr :: l)
        else Option.map (fun rest' -> x :: rest') (insert rest)
  in
  match insert t.triples with
  | None -> false
  | Some l ->
      t.triples <- l;
      true

let remove t tr =
  let removed = ref false in
  let l =
    List.filter
      (fun x ->
        if compare_spo x tr = 0 then begin
          removed := true;
          false
        end
        else true)
      t.triples
  in
  t.triples <- l;
  !removed

let lookup t pat = List.filter (Hexa.Pattern.matches pat) t.triples

let count t pat = List.length (lookup t pat)

let to_list t = t.triples
