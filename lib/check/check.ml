module Violation = Violation
module Invariant = Invariant
module Model = Model
module Diff = Diff
module Concurrent = Concurrent
module Lexer = Lexer
module Mutability = Mutability
module Lint = Lint

let store = Invariant.store
let delta = Invariant.delta
let debug = Hexa.Debug.enabled
