(* Concurrency correctness harness for the domain-parallel executor.

   Two instruments, both reporting typed [Violation.t]s like the rest of
   the check library:

   - [differential]: run one BGP through [Query.Exec] twice — width 1
     (sequential) and width N with the planner's fan-out threshold
     forced to 0 (parallel) — and demand the *ordered* solution lists
     agree (parallel range concatenation must reproduce the sequential
     order exactly, not just the same set), then both against an
     id-level brute-force reference over the store's merged triples.

   - [stress]: one writer domain stages random mutations into a
     [Hexa.Delta] store (mirrored into the [Model] reference) and
     flushes/compacts between rounds, while N reader domains
     continuously pin snapshots ([Hexa.Store_sig.pin]) and check
     executor results on the pinned view against brute force.  After
     every flush the writer validates the full [Invariant.delta]
     catalogue and compares the merged contents to the model. *)

let pp_tps ppf tps =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.fprintf ppf " . ")
    Query.Algebra.pp_tp ppf tps

let bgp_vars tps = List.sort_uniq compare (List.concat_map Query.Algebra.vars_of_tp tps)

(* Canonical form shared by the executor and the brute-force reference:
   per solution, the BGP's variables in sorted order with the bound
   dictionary id, and the solutions themselves sorted. *)
let canon_exec vars sols =
  List.sort compare
    (List.map
       (fun b ->
         List.map
           (fun v ->
             match Query.Binding.get b v with
             | Some (Query.Binding.Id i) -> i
             | Some (Query.Binding.Int i) -> i
             | None -> -1)
           vars)
       sols)

let brute_force store tps =
  let dict = Hexa.Store_sig.dict store in
  let triples = List.of_seq (Hexa.Store_sig.lookup store Hexa.Pattern.wildcard) in
  let atom_matches b atom id =
    match atom with
    | Query.Algebra.Term t -> (
        match Dict.Term_dict.find_term dict t with
        | Some i when i = id -> Some b
        | _ -> None)
    | Query.Algebra.Var v -> (
        match List.assoc_opt v b with
        | Some j when j = id -> Some b
        | Some _ -> None
        | None -> Some ((v, id) :: b))
  in
  let rec solve b = function
    | [] -> [ b ]
    | (tp : Query.Algebra.tp) :: rest ->
        List.concat_map
          (fun (tr : Dict.Term_dict.id_triple) ->
            match atom_matches b tp.s tr.s with
            | None -> []
            | Some b -> (
                match atom_matches b tp.p tr.p with
                | None -> []
                | Some b -> (
                    match atom_matches b tp.o tr.o with
                    | None -> []
                    | Some b -> solve b rest)))
          triples
  in
  let vars = bgp_vars tps in
  List.sort compare
    (List.map
       (fun b ->
         List.map (fun v -> match List.assoc_opt v b with Some i -> i | None -> -1) vars)
       (solve [] tps))

let run_with ~domains ~min_rows store q =
  Query.Par.with_domains domains (fun () ->
      let saved = !Query.Planner.parallel_min_rows in
      Query.Planner.parallel_min_rows := min_rows;
      Fun.protect
        ~finally:(fun () -> Query.Planner.parallel_min_rows := saved)
        (fun () -> Query.Exec.run store q))

let snapshot_consistent store tps =
  let got = canon_exec (bgp_vars tps) (Query.Exec.run store (Query.Algebra.Bgp tps)) in
  let expected = brute_force store tps in
  if got = expected then []
  else
    [
      Violation.v Query ~path:(Hexa.Store_sig.name store)
        "executor diverged from brute force on {%a}: %d vs %d canonical solutions" pp_tps
        tps (List.length got) (List.length expected);
    ]

let differential store tps ~domains =
  let q = Query.Algebra.Bgp tps in
  let sequential = run_with ~domains:1 ~min_rows:max_int store q in
  let parallel = run_with ~domains ~min_rows:0 store q in
  let ordered_same =
    List.length sequential = List.length parallel
    && List.for_all2 Query.Binding.equal sequential parallel
  in
  let order_viol =
    if ordered_same then []
    else
      [
        Violation.v Query ~path:(Hexa.Store_sig.name store)
          "parallel (%d domains) diverged from sequential order on {%a}: %d vs %d solutions"
          domains pp_tps tps (List.length parallel) (List.length sequential);
      ]
  in
  let expected = brute_force store tps in
  let brute_viol =
    if canon_exec (bgp_vars tps) parallel = expected then []
    else
      [
        Violation.v Query ~path:(Hexa.Store_sig.name store)
          "parallel (%d domains) diverged from brute force on {%a}" domains pp_tps tps;
      ]
  in
  order_viol @ brute_viol

(* ------------------------------------------------------------------ *)
(* Stress runner                                                       *)
(* ------------------------------------------------------------------ *)

type stress_config = {
  readers : int;
  rounds : int;
  ops_per_round : int;
  domains : int;
  seed : int;
}

let default_stress = { readers = 2; rounds = 4; ops_per_round = 64; domains = 2; seed = 42 }

type stress_report = {
  ops : int;
  flushes : int;
  compactions : int;
  queries : int;
  violations : Violation.t list;
}

(* The shared vocabulary: [nodes] serve as both subjects and objects so
   multi-pattern joins have matches; four predicates keep the per-shape
   fan-out realistic. *)
let stress_nodes = 12
let stress_preds = 4
let max_violations = 100

let stress cfg =
  let cfg =
    {
      cfg with
      readers = max 1 cfg.readers;
      rounds = max 1 cfg.rounds;
      ops_per_round = max 1 cfg.ops_per_round;
      domains = max 1 cfg.domains;
    }
  in
  let dict = Dict.Term_dict.create () in
  let iri fmt = Format.kasprintf (fun s -> Rdf.Term.Iri s) fmt in
  let node_terms = Array.init stress_nodes (fun i -> iri "http://stress/n%d" i) in
  let pred_terms = Array.init stress_preds (fun i -> iri "http://stress/p%d" i) in
  let nodes = Array.map (Dict.Term_dict.encode_term dict) node_terms in
  let preds = Array.map (Dict.Term_dict.encode_term dict) pred_terms in
  let insert_threshold = max 16 (cfg.ops_per_round / 2) in
  let delta =
    Hexa.Delta.create ~dict ~insert_threshold ~delete_threshold:(max 8 (insert_threshold / 2)) ()
  in
  let boxed = Hexa.Store_sig.box_delta delta in
  let model = Model.create () in
  let rng = Random.State.make [| cfg.seed |] in
  let rand_triple st =
    {
      Dict.Term_dict.s = nodes.(Random.State.int st stress_nodes);
      p = preds.(Random.State.int st stress_preds);
      o = nodes.(Random.State.int st stress_nodes);
    }
  in
  (* Seed the store so reader queries are non-empty from round one. *)
  for _ = 1 to stress_nodes * stress_preds do
    let t = rand_triple rng in
    if Hexa.Delta.add_ids delta t then ignore (Model.add model t)
  done;
  Hexa.Delta.flush delta;
  let v = (fun name -> Query.Algebra.Var name) in
  let t0 = (fun a -> Query.Algebra.Term a) in
  let queries =
    [|
      [ Query.Algebra.tp (v "x") (t0 pred_terms.(0)) (v "y") ];
      [ Query.Algebra.tp (v "x") (v "p") (v "y") ];
      [ Query.Algebra.tp (v "x") (t0 pred_terms.(1)) (v "y");
        Query.Algebra.tp (v "y") (t0 pred_terms.(2)) (v "z") ];
      [ Query.Algebra.tp (v "x") (t0 pred_terms.(0)) (v "y");
        Query.Algebra.tp (v "x") (t0 pred_terms.(1)) (v "z") ];
      [ Query.Algebra.tp (t0 node_terms.(0)) (v "p") (v "y") ];
      [ Query.Algebra.tp (v "x") (t0 pred_terms.(2)) (t0 node_terms.(1)) ];
      [ Query.Algebra.tp (v "x") (v "p") (v "y");
        Query.Algebra.tp (v "y") (t0 pred_terms.(0)) (v "z") ];
    |]
  in
  let stop = Atomic.make false in
  let queries_run = Atomic.make 0 in
  let viols_lock = Mutex.create () in
  let viols = ref [] in
  let nviols = ref 0 in
  let add_viols vs =
    if vs <> [] then begin
      Mutex.lock viols_lock;
      if !nviols < max_violations then begin
        viols := vs @ !viols;
        nviols := !nviols + List.length vs
      end;
      Mutex.unlock viols_lock
    end
  in
  (* Force parallel plans on the small fixture; restored after the
     readers are joined (both globals are only written while the reader
     domains are quiescent). *)
  let saved_min_rows = !Query.Planner.parallel_min_rows in
  let saved_domains = Query.Par.domains () in
  Query.Planner.parallel_min_rows := 0;
  Query.Par.set_domains cfg.domains;
  let reader i () =
    let st = Random.State.make [| cfg.seed; 0x5eed; i |] in
    let continue = ref true in
    while !continue do
      let tps = queries.(Random.State.int st (Array.length queries)) in
      (* lint: allow catch-all — domain boundary: a reader crash must
         surface as a violation, not kill the join. *)
      (try
         let view, unpin = Hexa.Store_sig.pin boxed in
         Fun.protect ~finally:unpin (fun () -> add_viols (snapshot_consistent view tps))
       with e ->
         add_viols
           [
             Violation.v Query
               ~path:(Printf.sprintf "stress.reader%d" i)
               "raised %s" (Printexc.to_string e);
           ]);
      Atomic.incr queries_run;
      continue := not (Atomic.get stop)
    done
  in
  let reader_domains = List.init cfg.readers (fun i -> Domain.spawn (reader i)) in
  let ops = ref 0 and flushes = ref 0 and compactions = ref 0 in
  let check_against_model where =
    add_viols (Invariant.delta delta);
    let merged = List.rev (Hexa.Delta.fold (fun t acc -> t :: acc) delta []) in
    let expected = Model.to_list model in
    if merged <> expected then
      add_viols
        [
          Violation.v Query ~path:where
            "merged delta (%d triples) disagrees with the model store (%d triples)"
            (List.length merged) (List.length expected);
        ]
  in
  for round = 1 to cfg.rounds do
    for _ = 1 to cfg.ops_per_round do
      incr ops;
      let t = rand_triple rng in
      if Random.State.bool rng then begin
        let a = Hexa.Delta.add_ids delta t in
        let b = Model.add model t in
        if a <> b then
          add_viols
            [
              Violation.v Query ~path:"stress.writer"
                "add_ids (%d,%d,%d) returned %b but the model said %b" t.s t.p t.o a b;
            ]
      end
      else begin
        let a = Hexa.Delta.remove_ids delta t in
        let b = Model.remove model t in
        if a <> b then
          add_viols
            [
              Violation.v Query ~path:"stress.writer"
                "remove_ids (%d,%d,%d) returned %b but the model said %b" t.s t.p t.o a b;
            ]
      end
    done;
    if round mod 3 = 0 then begin
      Hexa.Delta.compact delta;
      incr compactions
    end
    else begin
      Hexa.Delta.flush delta;
      incr flushes
    end;
    check_against_model (Printf.sprintf "stress.round%d" round)
  done;
  Atomic.set stop true;
  List.iter Domain.join reader_domains;
  Hexa.Delta.flush delta;
  incr flushes;
  check_against_model "stress.final";
  Query.Planner.parallel_min_rows := saved_min_rows;
  Query.Par.set_domains saved_domains;
  {
    ops = !ops;
    flushes = !flushes;
    compactions = !compactions;
    queries = Atomic.get queries_run;
    violations = List.rev !viols;
  }
