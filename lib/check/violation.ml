type layer =
  | Vector
  | Pair_vector
  | Index
  | Store
  | Delta
  | Dictionary
  | Dataset
  | Snapshot
  | Query
  | Source

type t = {
  layer : layer;
  path : string;
  message : string;
}

let layer_name = function
  | Vector -> "vector"
  | Pair_vector -> "pair-vector"
  | Index -> "index"
  | Store -> "store"
  | Delta -> "delta"
  | Dictionary -> "dictionary"
  | Dataset -> "dataset"
  | Snapshot -> "snapshot"
  | Query -> "query"
  | Source -> "source"

let v layer ~path fmt = Format.kasprintf (fun message -> { layer; path; message }) fmt

let pp ppf t = Format.fprintf ppf "[%s] %s: %s" (layer_name t.layer) t.path t.message

let to_string t = Format.asprintf "%a" pp t

let pp_report ppf = function
  | [] -> Format.fprintf ppf "ok (no violations)"
  | vs ->
      List.iter (fun t -> Format.fprintf ppf "%a@." pp t) vs;
      Format.fprintf ppf "%d violation%s" (List.length vs) (if List.length vs = 1 then "" else "s")
