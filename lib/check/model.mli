(** A naive reference triple store: a sorted list of id-triples.

    Deliberately too simple to be wrong — every operation is a linear
    scan or filter over a strictly sorted (s, p, o) list.  The
    differential model-checker ({!Diff}) runs random operation sequences
    against this and the real {!Hexa.Hexastore} and diffs the results. *)

type t

val compare_spo : Dict.Term_dict.id_triple -> Dict.Term_dict.id_triple -> int
(** Lexicographic (s, p, o) order. *)

val create : unit -> t

val size : t -> int

val mem : t -> Dict.Term_dict.id_triple -> bool

val add : t -> Dict.Term_dict.id_triple -> bool
(** [false] when already present — mirrors {!Hexa.Hexastore.add_ids}. *)

val remove : t -> Dict.Term_dict.id_triple -> bool

val lookup : t -> Hexa.Pattern.t -> Dict.Term_dict.id_triple list
(** All matching triples in (s, p, o) order. *)

val count : t -> Hexa.Pattern.t -> int

val to_list : t -> Dict.Term_dict.id_triple list
(** All triples in (s, p, o) order. *)
