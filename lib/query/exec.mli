(** Query evaluation over any {!Hexa.Store_sig.boxed} store.

    BGPs execute as a pipeline of lazily streaming join steps, one per
    planned pattern ({!Planner.plan}), each under the strategy the
    planner picked: merge joins leapfrog the accumulated bindings
    against a store-served sorted scan with galloping seeks
    ({!Hexa.Store_sig.scan_sorted}); hash joins buffer a small pattern's
    matches keyed on the shared variables; nested-loop steps drive a
    pattern lookup in the store's best index per solution.  Every
    operator preserves its left input's order, which is what keeps the
    merge strategy sound downstream of the first scan.  Executed steps
    are tallied in the [query.join.merge]/[query.join.hash]/
    [query.join.nested] counters. *)

val query_label : Algebra.t -> string
(** Compact flight-recorder label: the root operator plus total pattern
    count, e.g. ["project/2tp"].  The blocking entry points below
    bracket themselves with [Events.Query_start]/[Query_end] under this
    label (a crash therefore shows as an unmatched start in the dump). *)

val run_seq : Hexa.Store_sig.boxed -> Algebra.t -> Binding.t Seq.t
(** Lazy evaluation; blocking operators (group, order) materialise
    internally.  Unlike the blocking entry points, emits no
    flight-recorder events (there is no completion point to record). *)

val run : Hexa.Store_sig.boxed -> Algebra.t -> Binding.t list

val ask : Hexa.Store_sig.boxed -> Algebra.t -> bool
(** True iff the query has at least one solution. *)

val count : Hexa.Store_sig.boxed -> Algebra.t -> int

val construct :
  Hexa.Store_sig.boxed -> template:Algebra.tp list -> Algebra.t -> Rdf.Triple.t list
(** Instantiate a CONSTRUCT template once per solution.  Instantiations
    with an unbound variable, a literal subject or a non-IRI predicate
    are skipped (standard CONSTRUCT semantics); the result is sorted and
    de-duplicated. *)

val compare_values : Dict.Term_dict.t -> Binding.value -> Binding.value -> int
(** Value order used by filters and ORDER BY: numbers (aggregate ints and
    numeric literals) compare numerically and sort before other terms,
    which compare by their N-Triples spelling. *)

(** {1 EXPLAIN}

    A typed plan tree mirroring the algebra, annotated with what the
    planner decided (estimates, selectivities, serving index per BGP
    scan) and — under [~analyze:true] — with observed behaviour. *)

type explain_node = {
  op : string;            (** operator name, e.g. ["bgp"], ["scan"], ["filter"] *)
  detail : string;        (** operator-specific rendering; [""] when none *)
  estimate : int option;  (** planner cardinality estimate *)
  selectivity : float option;  (** estimate / store size *)
  actual_rows : int option;    (** ANALYZE only: rows the node produces *)
  time_s : float option;
      (** ANALYZE only: cumulative cost of evaluating the node's sub-plan
          (inputs included), read from {!Telemetry.Clock}. *)
  probes : int option;
      (** ANALYZE with telemetry enabled: [hexastore.probe.*] counter
          delta over the node's evaluation — index probes attributed to
          the operator. *)
  gc_words : float option;
      (** ANALYZE with telemetry enabled: GC words allocated
          (minor + major - promoted) over the node's evaluation. *)
  children : explain_node list;
}

val explain : ?analyze:bool -> Hexa.Store_sig.boxed -> Algebra.t -> explain_node
(** Plan a query and report the evidence.  With [~analyze:true] (default
    false) each node's sub-plan — and, inside a BGP, each plan prefix —
    is also evaluated to record actual cardinalities and timings; BGP
    scan rows are therefore consistent with {!count} on the prefix. *)

val pp_explain : Format.formatter -> explain_node -> unit
(** Tree rendering with box-drawing connectors, one node per line. *)

val explain_to_json : explain_node -> Telemetry.Json.t
