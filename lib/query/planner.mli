(** Greedy selectivity-based join ordering for basic graph patterns.

    The Hexastore answers any pattern shape with exact cardinalities in
    O(log) time ({!Hexa.Hexastore.count}), which makes the textbook greedy
    strategy effective: repeatedly pick the remaining triple pattern with
    the smallest estimated result, preferring patterns that share an
    already-bound variable (so every step is a join, not a product).

    {!plan} additionally records what the strategy decided — the chosen
    order, the cardinality estimates it compared, and the index each
    lookup will resolve to at execution time — both as the returned
    {!choice} list (which EXPLAIN renders) and, when telemetry is
    enabled, as [query.planner.*] counters. *)

val estimate : Hexa.Store_sig.boxed -> Algebra.tp -> int
(** Upper-bound cardinality of a pattern evaluated with no bindings:
    constants resolve through the dictionary (an unknown constant gives
    0), variables are wildcards. *)

(** One planned scan, in execution order. *)
type choice = {
  tp : Algebra.tp;
  estimate : int;       (** {!estimate} at planning time *)
  selectivity : float;  (** estimate / store size (0 on an empty store) *)
  index : Hexa.Ordering.t;
      (** the ordering that will serve the pattern, given the variables
          bound by the choices before it *)
}

val plan : Hexa.Store_sig.boxed -> Algebra.tp list -> choice list
(** Execution order for the patterns of a BGP, with the evidence behind
    each pick.  Deterministic: ties break on the original position. *)

val order_bgp : Hexa.Store_sig.boxed -> Algebra.tp list -> Algebra.tp list
(** [plan] without the evidence. *)

val pp_choice : Format.formatter -> choice -> unit
