(** Greedy selectivity-based join ordering for basic graph patterns,
    plus per-step join-strategy selection.

    The Hexastore answers any pattern shape with exact cardinalities in
    O(log) time ({!Hexa.Hexastore.count}), which makes the textbook greedy
    strategy effective: repeatedly pick the remaining triple pattern with
    the smallest estimated result, preferring patterns that share an
    already-bound variable (so every step is a join, not a product).

    Each picked step also carries {e how} it will join with the bindings
    accumulated so far (§4.2's claim that sorted vectors make pairwise
    joins fast merge-joins):

    - {!Merge_join} when the accumulated bindings stream sorted on the
      single shared variable (all step operators preserve the first
      scan's order) {e and} the store can serve the pattern's matches
      sorted on that variable's position ({!Hexa.Store_sig.scan_sorted}).
      A Hexastore — and a delta view over one — always can; the COVP
      baselines never can.
    - {!Hash_join} when variables are shared but the sorted-merge
      conditions fail and the pattern's independent cardinality is small
      enough to buffer.
    - {!Nested_loop} otherwise (disconnected patterns, oversized build
      sides, unknown constants).

    {!plan} records what the strategy decided — the chosen order, the
    cardinality estimates it compared, the index each lookup resolves to
    and the join strategy — both as the returned {!choice} list (which
    EXPLAIN renders) and, when telemetry is enabled, as
    [query.planner.*] counters. *)

val estimate : Hexa.Store_sig.boxed -> Algebra.tp -> int
(** Upper-bound cardinality of a pattern evaluated with no bindings:
    constants resolve through the dictionary (an unknown constant gives
    0), variables are wildcards. *)

(** How a planned step joins with the bindings accumulated before it. *)
type strategy =
  | Scan  (** first step: plain index scan, no join *)
  | Nested_loop
      (** per-binding index probe of the refined pattern (also the
          deliberate fallback for disconnected patterns) *)
  | Merge_join of {
      var : string;  (** the single shared (join) variable *)
      pos : Hexa.Pattern.position;  (** where [var] sits in the pattern *)
    }  (** both sides sorted on [var]: leapfrog with galloping seeks *)
  | Hash_join of { vars : string list (** shared variables, the key *) }
      (** buffer the pattern's independent matches keyed on the shared
          variables, probe per binding *)

(** Fan-out hint on a BGP's driving scan: the executor splits the scan
    into [par_parts] contiguous ranges on the value at [par_pos]
    ({!Hexa.Store_sig.scan_split}) and runs the downstream pipeline per
    range on the {!Par} domain pool, concatenating the per-range runs in
    order.  Planned only when {!Par.domains}[ () > 1], the estimate
    clears {!parallel_min_rows}, and the store can serve a sorted scan
    on the pattern's first free variable. *)
type par_hint = {
  par_parts : int;
  par_pos : Hexa.Pattern.position;
}

(** One planned scan, in execution order. *)
type choice = {
  tp : Algebra.tp;
  estimate : int;       (** {!estimate} at planning time *)
  selectivity : float;  (** estimate / store size (0 on an empty store) *)
  index : Hexa.Ordering.t;
      (** the ordering serving the step: the sorted scan's ordering for a
          merge join, the refined pattern's serving ordering otherwise *)
  strategy : strategy;
  par : par_hint option;  (** set only on the first (driving-scan) step *)
}

val nested_loop_only : bool ref
(** When set, every join strategy degrades to {!Nested_loop} (first step
    stays {!Scan}).  The ablation switch behind the join benchmark and
    the merge/hash ≡ nested-loop equivalence properties. *)

val parallel_min_rows : int ref
(** Smallest driving-scan estimate the planner will fan out; below it
    the handoff overhead dominates.  Tests and the bench's speedup arms
    lower it to force parallel plans on small fixtures. *)

val hash_build_limit : int
(** Largest independent right-side estimate a {!Hash_join} will buffer. *)

val strategy_name : strategy -> string
(** ["scan"], ["nested-loop"], ["merge"] or ["hash"]. *)

val pp_strategy : Format.formatter -> strategy -> unit
(** Compact form with join variables: [merge(?x)], [hash(?x,?y)]. *)

val plan : Hexa.Store_sig.boxed -> Algebra.tp list -> choice list
(** Execution order for the patterns of a BGP, with the evidence behind
    each pick.  Deterministic: ties break on the original position. *)

val order_bgp : Hexa.Store_sig.boxed -> Algebra.tp list -> Algebra.tp list
(** [plan] without the evidence. *)

val pp_choice : Format.formatter -> choice -> unit
