(** Query algebra: the SPARQL-subset core evaluated by {!Exec}.

    Surface syntax (from {!Sparql}) lowers to this; tests and examples may
    also build it directly. *)

(** A position in a triple pattern: a variable or a constant RDF term. *)
type atom =
  | Var of string       (** without the [?] sigil *)
  | Term of Rdf.Term.t

(** A triple pattern. *)
type tp = {
  s : atom;
  p : atom;
  o : atom;
}

(** Filter expressions. *)
type expr =
  | E_atom of atom
  | E_eq of expr * expr
  | E_neq of expr * expr
  | E_lt of expr * expr
  | E_le of expr * expr
  | E_gt of expr * expr
  | E_ge of expr * expr
  | E_and of expr * expr
  | E_or of expr * expr
  | E_not of expr
  | E_bound of string

(** Aggregate functions (grouped queries). *)
type aggregate =
  | Count_all              (** count of all rows, the SPARQL COUNT-star *)
  | Count_var of string    (** COUNT(?v) — counts bound occurrences *)
  | Count_distinct of string

(** Sort key. *)
type order = {
  key : string;          (** variable name *)
  descending : bool;
}

type t =
  | Bgp of tp list
  | Join of t * t
  | Left_join of t * t
      (** SPARQL OPTIONAL: keep every left solution, extended by
          compatible right solutions when any exist. *)
  | Union of t * t
  | Values of string list * Rdf.Term.t option list list
      (** Inline data: variables and rows ([None] = UNDEF cell). *)
  | Filter of expr * t
  | Distinct of t
  | Project of string list * t
  | Extend_group of string list * (string * aggregate) list * t
      (** [Extend_group keys aggs q]: group solutions of [q] by [keys] and
          bind each aggregate to its output variable. *)
  | Order_by of order list * t
  | Slice of int option * int option * t  (** offset, limit *)

val tp : atom -> atom -> atom -> tp

val vars_of_tp : tp -> string list
(** Variables mentioned, without duplicates. *)

val vars_of : t -> string list
(** All variables mentioned anywhere in the query, sorted. *)

val pp_atom : Format.formatter -> atom -> unit

val pp_expr : Format.formatter -> expr -> unit

val pp_tp : Format.formatter -> tp -> unit
(** One triple pattern, Turtle-ish: [?s <iri> "lit" .]. *)

val pp_aggregate : Format.formatter -> aggregate -> unit

val pp : Format.formatter -> t -> unit
