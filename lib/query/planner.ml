let m_plans = Telemetry.Metrics.counter "query.planner.bgps_planned"

let m_scan_index =
  (* Which of the six orderings each planned lookup resolves to. *)
  Array.of_list
    (List.map
       (fun o -> Telemetry.Metrics.counter ("query.planner.scan_index." ^ Hexa.Ordering.name o))
       Hexa.Ordering.all)

let ord_index = function
  | Hexa.Ordering.Spo -> 0
  | Hexa.Ordering.Sop -> 1
  | Hexa.Ordering.Pso -> 2
  | Hexa.Ordering.Pos -> 3
  | Hexa.Ordering.Osp -> 4
  | Hexa.Ordering.Ops -> 5

let id_of_atom dict = function
  | Algebra.Var _ -> Some None  (* wildcard *)
  | Algebra.Term t -> (
      match Dict.Term_dict.find_term dict t with
      | None -> None  (* unknown constant: the pattern can match nothing *)
      | Some id -> Some (Some id))

let estimate store (tp : Algebra.tp) =
  let dict = Hexa.Store_sig.dict store in
  match (id_of_atom dict tp.s, id_of_atom dict tp.p, id_of_atom dict tp.o) with
  | Some s, Some p, Some o -> Hexa.Store_sig.count store { Hexa.Pattern.s; p; o }
  | _ -> 0

type strategy =
  | Scan
  | Nested_loop
  | Merge_join of {
      var : string;
      pos : Hexa.Pattern.position;
    }
  | Hash_join of { vars : string list }

(* Fan-out hint on a BGP's driving scan: split the scan into
   [par_parts] contiguous ranges on the value at [par_pos] and evaluate
   the downstream pipeline per range on the domain pool. *)
type par_hint = {
  par_parts : int;
  par_pos : Hexa.Pattern.position;
}

type choice = {
  tp : Algebra.tp;
  estimate : int;
  selectivity : float;
  index : Hexa.Ordering.t;
  strategy : strategy;
  par : par_hint option;
}

(* domain-safety: test-only — ablation switch flipped by the benchmark
   harness and strategy-equivalence tests around whole runs; production
   planning never writes it. *)
let nested_loop_only = ref false

(* domain-safety: test-only — fan-out floor: a driving scan below this
   estimate stays sequential (range setup + domain handoff would
   dominate).  Production planning only reads it; tests and the bench's
   speedup arms lower it to force parallel plans on small fixtures. *)
let parallel_min_rows = ref 512

(* Largest independent right-side cardinality a hash join will buffer.
   Beyond this the build side no longer looks "small" and the
   output-sensitive nested loop is the safer default. *)
let hash_build_limit = 65536

let strategy_name = function
  | Scan -> "scan"
  | Nested_loop -> "nested-loop"
  | Merge_join _ -> "merge"
  | Hash_join _ -> "hash"

let pp_strategy ppf = function
  | Scan -> Format.pp_print_string ppf "scan"
  | Nested_loop -> Format.pp_print_string ppf "nested-loop"
  | Merge_join { var; _ } -> Format.fprintf ppf "merge(?%s)" var
  | Hash_join { vars } ->
      Format.fprintf ppf "hash(%s)" (String.concat "," (List.map (( ^ ) "?") vars))

(* The shape a pattern will present at execution time, given the
   variables bound by the choices before it: a position is bound if it
   is a constant or a variable some earlier pattern binds. *)
let runtime_shape bound (tp : Algebra.tp) =
  let b = function
    | Algebra.Term _ -> Some 0
    | Algebra.Var v -> if List.mem v bound then Some 0 else None
  in
  Hexa.Pattern.shape { Hexa.Pattern.s = b tp.s; p = b tp.p; o = b tp.o }

(* The constants-only pattern of a tp: variables free, constants
   resolved.  [None] when a constant is unknown to the dictionary (the
   pattern matches nothing). *)
let pattern_of_tp dict (tp : Algebra.tp) =
  match (id_of_atom dict tp.s, id_of_atom dict tp.p, id_of_atom dict tp.o) with
  | Some s, Some p, Some o -> Some { Hexa.Pattern.s; p; o }
  | _ -> None

let atom_at (tp : Algebra.tp) = function
  | Hexa.Pattern.Subj -> tp.s
  | Hexa.Pattern.Pred -> tp.p
  | Hexa.Pattern.Obj -> tp.o

(* The position where variable [v] occurs in [tp], when it occurs at
   exactly one position (a repeated variable needs post-filtering the
   merge kernel does not do). *)
let sole_position_of v tp =
  let occs =
    List.filter
      (fun pos -> atom_at tp pos = Algebra.Var v)
      [ Hexa.Pattern.Subj; Hexa.Pattern.Pred; Hexa.Pattern.Obj ]
  in
  match occs with [ pos ] -> Some pos | _ -> None

(* The variable a fresh scan of [tp] through [ord] streams sorted on:
   the first priority position holding an unbound variable.  Every BGP
   step operator is left-order-preserving, so whatever the first scan
   establishes holds for the whole pipeline. *)
let first_free_var ord tp bound =
  List.find_map
    (fun pos ->
      match atom_at tp pos with
      | Algebra.Var v when not (List.mem v bound) -> Some v
      | _ -> None)
    (Hexa.Ordering.positions ord)

(* Parallel fan-out for a driving scan: worth it only when the pool has
   width, the scan is big enough to amortise the handoff, and the store
   can both serve and split a sorted scan on the pattern's first free
   variable (splitting on the sort position keeps per-range output
   order, so the in-order merge of the per-domain runs reproduces the
   sequential stream exactly). *)
let par_hint_for store dict ord (tp : Algebra.tp) est =
  let parts = Par.domains () in
  if parts <= 1 || est < !parallel_min_rows then None
  else
    match first_free_var ord tp [] with
    | None -> None
    | Some v -> (
        match (sole_position_of v tp, pattern_of_tp dict tp) with
        | Some pos, Some pat
          when Hexa.Store_sig.scan_sorted store pat pos <> None ->
            Some { par_parts = parts; par_pos = pos }
        | _ -> None)

let plan store tps =
  Telemetry.Metrics.incr m_plans;
  let dict = Hexa.Store_sig.dict store in
  let n = Hexa.Store_sig.size store in
  let numbered = List.mapi (fun i tp -> (i, tp, estimate store tp)) tps in
  let shares_var bound tp =
    List.exists (fun v -> List.mem v bound) (Algebra.vars_of_tp tp)
  in
  let rec pick bound sorted_on remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        (* Prefer patterns connected to what is already bound; among those
           (or among all, when none connects), the smallest estimate. *)
        let connected = List.filter (fun (_, tp, _) -> shares_var bound tp) remaining in
        let pool = if connected = [] then remaining else connected in
        let best =
          List.fold_left
            (fun best ((i, _, est) as cand) ->
              match best with
              | None -> Some cand
              | Some (bi, _, best_est) ->
                  if est < best_est || (est = best_est && i < bi) then Some cand else best)
            None pool
        in
        (match best with
        | None -> List.rev acc
        | Some (i, tp, est) ->
            let nested_index = Hexa.Ordering.for_shape (runtime_shape bound tp) in
            let hash_or_nested shared =
              if est > 0 && est <= hash_build_limit then
                (Hash_join { vars = shared }, nested_index)
              else (Nested_loop, nested_index)
            in
            let strategy, index =
              if acc = [] then (Scan, nested_index)
              else if !nested_loop_only then (Nested_loop, nested_index)
              else
                match List.filter (fun v -> List.mem v bound) (Algebra.vars_of_tp tp) with
                | [] -> (Nested_loop, nested_index)
                | [ v ] when sorted_on = Some v -> (
                    (* Both sides stream sorted on [v]: the accumulated
                       bindings by the first scan's order, the pattern by
                       a store-served sorted scan — a merge join. *)
                    match (sole_position_of v tp, pattern_of_tp dict tp) with
                    | Some pos, Some pat
                      when pat.Hexa.Pattern.s <> None || pat.p <> None
                           || pat.o <> None -> (
                        (* At least one constant must narrow the scan: a
                           sorted scan of a fully-free pattern walks
                           every header bucket — the nested loop's probe
                           pattern with seek overhead on top — so merge
                           never wins there. *)
                        match Hexa.Store_sig.scan_sorted store pat pos with
                        | Some (ord, _) -> (Merge_join { var = v; pos }, ord)
                        | None -> hash_or_nested [ v ])
                    | _ -> hash_or_nested [ v ])
                | shared -> hash_or_nested shared
            in
            Telemetry.Metrics.incr m_scan_index.(ord_index index);
            let par = if acc = [] then par_hint_for store dict index tp est else None in
            let choice =
              {
                tp;
                estimate = est;
                selectivity = (if n = 0 then 0. else float_of_int est /. float_of_int n);
                index;
                strategy;
                par;
              }
            in
            let sorted_on =
              if acc = [] then first_free_var index tp bound else sorted_on
            in
            let remaining = List.filter (fun (j, _, _) -> j <> i) remaining in
            let bound = List.sort_uniq compare (bound @ Algebra.vars_of_tp tp) in
            pick bound sorted_on remaining (choice :: acc))
  in
  pick [] None numbered []

let order_bgp store tps = List.map (fun c -> c.tp) (plan store tps)

let pp_choice ppf c =
  Format.fprintf ppf "%a  [index=%s strategy=%a est=%d sel=%.2e%t]" Algebra.pp_tp c.tp
    (Hexa.Ordering.name c.index) pp_strategy c.strategy c.estimate c.selectivity
    (fun ppf ->
      match c.par with
      | Some { par_parts; _ } -> Format.fprintf ppf " par=%d" par_parts
      | None -> ())
