let m_plans = Telemetry.Metrics.counter "query.planner.bgps_planned"

let m_scan_index =
  (* Which of the six orderings each planned lookup resolves to. *)
  Array.of_list
    (List.map
       (fun o -> Telemetry.Metrics.counter ("query.planner.scan_index." ^ Hexa.Ordering.name o))
       Hexa.Ordering.all)

let ord_index = function
  | Hexa.Ordering.Spo -> 0
  | Hexa.Ordering.Sop -> 1
  | Hexa.Ordering.Pso -> 2
  | Hexa.Ordering.Pos -> 3
  | Hexa.Ordering.Osp -> 4
  | Hexa.Ordering.Ops -> 5

let id_of_atom dict = function
  | Algebra.Var _ -> Some None  (* wildcard *)
  | Algebra.Term t -> (
      match Dict.Term_dict.find_term dict t with
      | None -> None  (* unknown constant: the pattern can match nothing *)
      | Some id -> Some (Some id))

let estimate store (tp : Algebra.tp) =
  let dict = Hexa.Store_sig.dict store in
  match (id_of_atom dict tp.s, id_of_atom dict tp.p, id_of_atom dict tp.o) with
  | Some s, Some p, Some o -> Hexa.Store_sig.count store { Hexa.Pattern.s; p; o }
  | _ -> 0

type choice = {
  tp : Algebra.tp;
  estimate : int;
  selectivity : float;
  index : Hexa.Ordering.t;
}

(* The shape a pattern will present at execution time, given the
   variables bound by the choices before it: a position is bound if it
   is a constant or a variable some earlier pattern binds. *)
let runtime_shape bound (tp : Algebra.tp) =
  let b = function
    | Algebra.Term _ -> Some 0
    | Algebra.Var v -> if List.mem v bound then Some 0 else None
  in
  Hexa.Pattern.shape { Hexa.Pattern.s = b tp.s; p = b tp.p; o = b tp.o }

let plan store tps =
  Telemetry.Metrics.incr m_plans;
  let n = Hexa.Store_sig.size store in
  let numbered = List.mapi (fun i tp -> (i, tp, estimate store tp)) tps in
  let shares_var bound tp =
    List.exists (fun v -> List.mem v bound) (Algebra.vars_of_tp tp)
  in
  let rec pick bound remaining acc =
    match remaining with
    | [] -> List.rev acc
    | _ ->
        (* Prefer patterns connected to what is already bound; among those
           (or among all, when none connects), the smallest estimate. *)
        let connected = List.filter (fun (_, tp, _) -> shares_var bound tp) remaining in
        let pool = if connected = [] then remaining else connected in
        let best =
          List.fold_left
            (fun best ((i, _, est) as cand) ->
              match best with
              | None -> Some cand
              | Some (bi, _, best_est) ->
                  if est < best_est || (est = best_est && i < bi) then Some cand else best)
            None pool
        in
        (match best with
        | None -> List.rev acc
        | Some (i, tp, est) ->
            let index = Hexa.Ordering.for_shape (runtime_shape bound tp) in
            Telemetry.Metrics.incr m_scan_index.(ord_index index);
            let choice =
              {
                tp;
                estimate = est;
                selectivity = (if n = 0 then 0. else float_of_int est /. float_of_int n);
                index;
              }
            in
            let remaining = List.filter (fun (j, _, _) -> j <> i) remaining in
            let bound = List.sort_uniq compare (bound @ Algebra.vars_of_tp tp) in
            pick bound remaining (choice :: acc))
  in
  pick [] numbered []

let order_bgp store tps = List.map (fun c -> c.tp) (plan store tps)

let pp_choice ppf c =
  Format.fprintf ppf "%a  [index=%s est=%d sel=%.2e]" Algebra.pp_tp c.tp
    (Hexa.Ordering.name c.index) c.estimate c.selectivity
