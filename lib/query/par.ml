(* A fixed-size OCaml 5 domain pool for intra-query parallelism.

   Sizing: [HEXASTORE_DOMAINS] if set (>= 1), else
   [Domain.recommended_domain_count ()].  The pool owns [target - 1]
   worker domains — the caller of [run] is the remaining lane, helping
   drain the queue instead of blocking, so a pool of size 1 degenerates
   to plain sequential execution with no domains spawned at all.

   Workers are spawned lazily on the first parallel [run] and joined by
   an [at_exit] hook, so programs that never go parallel never pay for a
   domain, and programs that do still exit cleanly.

   Scheduling is deliberately simple: one global FIFO of thunks under a
   mutex.  Jobs here are query sub-scans costing microseconds to
   milliseconds, so handoff cost is noise; what matters is that nested
   or concurrent [run] calls cannot deadlock, which caller-helping
   guarantees (a caller whose jobs are stuck behind other batches works
   the queue itself). *)

let default_domains () =
  match Sys.getenv_opt "HEXASTORE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n 64
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* domain-safety: atomic — the configured fan-out width, read lock-free
   by the planner on every BGP; written at init and by
   [set_domains]/[with_domains] (tests, bench arms, CLI). *)
let target = Atomic.make 1

let () = Atomic.set target (default_domains ())

let domains () = Atomic.get target

let set_domains n = Atomic.set target (max 1 (min 64 n))

let lock = Mutex.create ()
let work_ready = Condition.create ()
let batch_done = Condition.create ()

(* domain-safety: guarded — the shared job queue; every push/pop holds
   [lock]. *)
let jobs : (unit -> unit) Queue.t = Queue.create ()

(* domain-safety: guarded — live worker handles, mutated under [lock] by
   the lazy spawn path and drained once by the at_exit shutdown. *)
let workers : unit Domain.t list ref = ref []

(* domain-safety: guarded — shutdown flag for the worker loop, set under
   [lock] by the at_exit hook. *)
let stopping = ref false

(* domain-safety: guarded — ensures the at_exit shutdown hook registers
   once, from whichever domain spawns first, under [lock]. *)
let exit_hook_registered = ref false

let rec worker_loop () =
  Mutex.lock lock;
  while Queue.is_empty jobs && not !stopping do
    Condition.wait work_ready lock
  done;
  if Queue.is_empty jobs then begin
    (* stopping and drained *)
    Mutex.unlock lock;
    ()
  end
  else begin
    let job = Queue.pop jobs in
    Mutex.unlock lock;
    job ();
    worker_loop ()
  end

let shutdown () =
  Mutex.lock lock;
  stopping := true;
  Condition.broadcast work_ready;
  let ws = !workers in
  workers := [];
  Mutex.unlock lock;
  List.iter Domain.join ws;
  Mutex.lock lock;
  stopping := false;
  Mutex.unlock lock

(* Called with [lock] held. *)
let ensure_workers_locked () =
  if not !exit_hook_registered then begin
    exit_hook_registered := true;
    at_exit shutdown
  end;
  let want = Atomic.get target - 1 in
  let have = List.length !workers in
  for _ = have + 1 to want do
    workers := Domain.spawn worker_loop :: !workers
  done

let pool_size () =
  Mutex.lock lock;
  let n = List.length !workers in
  Mutex.unlock lock;
  n + 1

(* Jobs must never raise into the worker loop: each slot captures its
   outcome and the caller re-raises after the batch completes. *)
let run (fs : (unit -> 'a) array) : 'a array =
  let n = Array.length fs in
  if n = 0 then [||]
  else if n = 1 || domains () <= 1 then Array.map (fun f -> f ()) fs
  else begin
    let results : ('a, exn) result option array = Array.make n None in
    let remaining = Atomic.make n in
    let job i () =
      (* lint: allow catch-all — domain boundary: the exception is
         captured into the result slot and re-raised by the caller. *)
      let r = try Ok (fs.(i) ()) with e -> Error e in
      results.(i) <- Some r;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock lock;
        Condition.broadcast batch_done;
        Mutex.unlock lock
      end
    in
    Mutex.lock lock;
    ensure_workers_locked ();
    for i = 0 to n - 1 do
      Queue.push (job i) jobs
    done;
    Condition.broadcast work_ready;
    Mutex.unlock lock;
    (* Caller participation: drain jobs (this batch's or another
       concurrent caller's — progress either way) until our batch is
       done, then wait out any of our jobs still running on workers. *)
    let rec help () =
      Mutex.lock lock;
      if Atomic.get remaining = 0 then Mutex.unlock lock
      else if not (Queue.is_empty jobs) then begin
        let j = Queue.pop jobs in
        Mutex.unlock lock;
        j ();
        help ()
      end
      else begin
        while Atomic.get remaining > 0 do
          Condition.wait batch_done lock
        done;
        Mutex.unlock lock
      end
    in
    help ();
    Array.map
      (function
        | Some (Ok x) -> x
        | Some (Error e) -> raise e
        | None -> assert false (* remaining = 0 implies every slot filled *))
      results
  end

let with_domains n f =
  let saved = domains () in
  set_domains n;
  Fun.protect ~finally:(fun () -> set_domains saved) f
