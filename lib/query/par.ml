(* A fixed-size OCaml 5 domain pool for intra-query parallelism.

   Sizing: [HEXASTORE_DOMAINS] if set (>= 1), else
   [Domain.recommended_domain_count ()].  The pool owns [target - 1]
   worker domains — the caller of [run] is the remaining lane, helping
   drain the queue instead of blocking, so a pool of size 1 degenerates
   to plain sequential execution with no domains spawned at all.

   Workers are spawned lazily on the first parallel [run] and joined by
   an [at_exit] hook, so programs that never go parallel never pay for a
   domain, and programs that do still exit cleanly.

   Scheduling is deliberately simple: one global FIFO of thunks under a
   mutex.  Jobs here are query sub-scans costing microseconds to
   milliseconds, so handoff cost is noise; what matters is that nested
   or concurrent [run] calls cannot deadlock, which caller-helping
   guarantees (a caller whose jobs are stuck behind other batches works
   the queue itself).

   Instrumentation is two-tier.  A set of always-on [Atomic.t] cells
   backs the [stats] snapshot (task/help/spawn accounting exact even
   with telemetry off — the bench pool section and the concurrency
   tests read these), and the same sites mirror into the telemetry
   registry — counters, queue-depth / in-flight gauges and the
   wait/run latency histograms — which the Prometheus exposition and
   [Telemetry.Monitor] scrape.  Jobs are attributed to *lanes*: lane 0
   is every caller domain (helping or running sequentially), lanes
   1..width-1 are the spawned workers, identified by a domain-local
   key set at spawn. *)

let max_lanes = 64 (* = the width clamp below *)

let default_domains () =
  match Sys.getenv_opt "HEXASTORE_DOMAINS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> min n max_lanes
      | _ -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

(* domain-safety: atomic — the configured fan-out width, read lock-free
   by the planner on every BGP; written at init and by
   [set_domains]/[with_domains] (tests, bench arms, CLI). *)
let target = Atomic.make 1

let () = Atomic.set target (default_domains ())

let domains () = Atomic.get target

let set_domains n = Atomic.set target (max 1 (min max_lanes n))

let lock = Mutex.create ()
let work_ready = Condition.create ()
let batch_done = Condition.create ()

(* domain-safety: guarded — the shared job queue; every push/pop holds
   [lock]. *)
let jobs : (unit -> unit) Queue.t = Queue.create ()

(* domain-safety: guarded — live worker handles, mutated under [lock] by
   the lazy spawn path and drained once by the at_exit shutdown. *)
let workers : unit Domain.t list ref = ref []

(* domain-safety: guarded — shutdown flag for the worker loop, set under
   [lock] by the at_exit hook. *)
let stopping = ref false

(* domain-safety: guarded — ensures the at_exit shutdown hook registers
   once, from whichever domain spawns first, under [lock]. *)
let exit_hook_registered = ref false

(* --- pool accounting ---------------------------------------------------- *)

(* Always-on atomics: a handful of lock-free bumps per task, noise
   against the microsecond-scale jobs, and they keep [stats] exact
   whether or not telemetry is enabled. *)

(* domain-safety: atomic — tasks handed to the pool (parallel batches
   and the sequential fast path alike); bumped lock-free by any
   submitting domain. *)
let s_submitted = Atomic.make 0

(* domain-safety: atomic — tasks that finished running; bumped lock-free
   by whichever lane executed the task. *)
let s_completed = Atomic.make 0

(* domain-safety: atomic — queue pops by a *caller* lane helping drain
   the queue instead of blocking on its batch. *)
let s_helped = Atomic.make 0

(* domain-safety: atomic — worker domains ever spawned; bumped under
   [lock] (spawn path) but read lock-free by [stats]. *)
let s_spawned = Atomic.make 0

(* domain-safety: atomic — worker domains joined by [shutdown]; with
   [s_spawned] gives the live worker count without taking [lock]. *)
let s_joined = Atomic.make 0

(* domain-safety: atomic — tasks currently executing on some lane
   (started, not yet finished); incremented/decremented lock-free
   around each job body. *)
let s_in_flight = Atomic.make 0

(* domain-safety: atomic — per-lane task tallies (index = lane, 0 =
   callers, 1.. = workers); each cell bumped lock-free by the one lane
   it belongs to (lane 0 by any caller domain). *)
let s_lane_tasks = Array.init max_lanes (fun _ -> Atomic.make 0)

(* Which lane this domain is: 0 for callers (the default), 1..width-1
   for spawned workers (set once at worker start).  Not a global —
   every domain has its own cell. *)
let lane_key = Domain.DLS.new_key (fun () -> 0)

(* Registry mirrors (gated on [Telemetry.enabled] like every metric).
   The fixed families register at module init; per-lane counters
   register lazily from the first task a lane runs — the registry's
   internal lock makes that safe from worker domains. *)
let c_submitted = Telemetry.Metrics.counter "par.tasks.submitted"
let c_completed = Telemetry.Metrics.counter "par.tasks.completed"
let c_helped = Telemetry.Metrics.counter "par.tasks.caller_helped"
let c_spawned = Telemetry.Metrics.counter "par.domains.spawned"
let c_joined = Telemetry.Metrics.counter "par.domains.joined"
let g_queue_depth = Telemetry.Metrics.gauge "par.queue.depth"
let g_in_flight = Telemetry.Metrics.gauge "par.tasks.in_flight"
let g_pool_size = Telemetry.Metrics.gauge "par.pool.size"
let h_task_wait_us = Telemetry.Metrics.histogram "par.task.wait_us"
let h_task_run_us = Telemetry.Metrics.histogram "par.task.run_us"

(* domain-safety: atomic — memoised per-lane registry counters, filled
   on a lane's first task; concurrent fills race only on lane 0 (all
   callers) and both writers store the same registered counter, so
   either winning is correct. *)
let lane_counters : Telemetry.Metrics.counter option Atomic.t array =
  Array.init max_lanes (fun _ -> Atomic.make None)

let lane_counter lane =
  let cell = lane_counters.(lane) in
  match Atomic.get cell with
  | Some c -> c
  | None ->
      let c = Telemetry.Metrics.counter (Printf.sprintf "par.lane.%d.tasks" lane) in
      Atomic.set cell (Some c);
      c

(* Called with [lock] held (push/pop sites). *)
let note_queue_depth_locked () =
  Telemetry.Metrics.set g_queue_depth (float_of_int (Queue.length jobs))

(* One task ran on this domain's lane: the always-on tallies plus the
   gated registry mirrors.  [wait_us < 0] means "never queued" (the
   sequential fast path), which skips the wait histogram. *)
let note_task_start ~wait_us =
  let lane = Domain.DLS.get lane_key in
  Atomic.incr s_lane_tasks.(lane);
  Atomic.incr s_in_flight;
  if !Telemetry.Config.enabled then begin
    Telemetry.Metrics.incr (lane_counter lane);
    Telemetry.Metrics.set g_in_flight (float_of_int (Atomic.get s_in_flight));
    if wait_us >= 0 then Telemetry.Metrics.observe h_task_wait_us wait_us
  end

let note_task_end ~run_us =
  Atomic.incr s_completed;
  ignore (Atomic.fetch_and_add s_in_flight (-1));
  if !Telemetry.Config.enabled then begin
    Telemetry.Metrics.incr c_completed;
    Telemetry.Metrics.set g_in_flight (float_of_int (Atomic.get s_in_flight));
    if run_us >= 0 then Telemetry.Metrics.observe h_task_run_us run_us
  end

type stats = {
  width : int;
  pool : int;
  queue_depth : int;
  in_flight : int;
  submitted : int;
  completed : int;
  caller_helped : int;
  spawned : int;
  joined : int;
  lane_tasks : int array;
}

let stats () =
  Mutex.lock lock;
  let queue_depth = Queue.length jobs in
  let live_workers = List.length !workers in
  Mutex.unlock lock;
  let lanes =
    let last = ref 0 in
    Array.iteri (fun i c -> if Atomic.get c > 0 then last := i) s_lane_tasks;
    Array.init (!last + 1) (fun i -> Atomic.get s_lane_tasks.(i))
  in
  {
    width = domains ();
    pool = live_workers + 1;
    queue_depth;
    in_flight = Atomic.get s_in_flight;
    submitted = Atomic.get s_submitted;
    completed = Atomic.get s_completed;
    caller_helped = Atomic.get s_helped;
    spawned = Atomic.get s_spawned;
    joined = Atomic.get s_joined;
    lane_tasks = lanes;
  }

let reset_stats () =
  Atomic.set s_submitted 0;
  Atomic.set s_completed 0;
  Atomic.set s_helped 0;
  Atomic.set s_spawned 0;
  Atomic.set s_joined 0;
  Atomic.set s_in_flight 0;
  Array.iter (fun c -> Atomic.set c 0) s_lane_tasks

(* --- the pool ----------------------------------------------------------- *)

let rec worker_loop () =
  Mutex.lock lock;
  while Queue.is_empty jobs && not !stopping do
    Condition.wait work_ready lock
  done;
  if Queue.is_empty jobs then begin
    (* stopping and drained *)
    Mutex.unlock lock;
    ()
  end
  else begin
    let job = Queue.pop jobs in
    note_queue_depth_locked ();
    Mutex.unlock lock;
    job ();
    worker_loop ()
  end

let worker lane () =
  Domain.DLS.set lane_key lane;
  worker_loop ()

let shutdown () =
  Mutex.lock lock;
  stopping := true;
  Condition.broadcast work_ready;
  let ws = !workers in
  workers := [];
  Mutex.unlock lock;
  List.iter
    (fun w ->
      Domain.join w;
      Atomic.incr s_joined;
      Telemetry.Metrics.incr c_joined)
    ws;
  Telemetry.Metrics.set g_pool_size 1.;
  Mutex.lock lock;
  stopping := false;
  Mutex.unlock lock

(* Called with [lock] held. *)
let ensure_workers_locked () =
  if not !exit_hook_registered then begin
    exit_hook_registered := true;
    at_exit shutdown
  end;
  let want = Atomic.get target - 1 in
  let have = List.length !workers in
  for lane = have + 1 to want do
    workers := Domain.spawn (worker lane) :: !workers;
    Atomic.incr s_spawned;
    Telemetry.Metrics.incr c_spawned
  done;
  Telemetry.Metrics.set g_pool_size (float_of_int (List.length !workers + 1))

let pool_size () =
  Mutex.lock lock;
  let n = List.length !workers in
  Mutex.unlock lock;
  n + 1

(* Sequential fast path: no queue, no wait — but the task still counts,
   on the caller's lane, so [stats] totals match what ran. *)
let run_sequential fs =
  Array.map
    (fun f ->
      Atomic.incr s_submitted;
      Telemetry.Metrics.incr c_submitted;
      let timed = !Telemetry.Config.enabled in
      let t0 = if timed then Telemetry.Clock.now () else 0. in
      note_task_start ~wait_us:(-1);
      let x = f () in
      note_task_end
        ~run_us:
          (if timed then int_of_float ((Telemetry.Clock.now () -. t0) *. 1e6) else -1);
      x)
    fs

(* Jobs must never raise into the worker loop: each slot captures its
   outcome and the caller re-raises after the batch completes. *)
let run (fs : (unit -> 'a) array) : 'a array =
  let n = Array.length fs in
  if n = 0 then [||]
  else if n = 1 || domains () <= 1 then run_sequential fs
  else begin
    let results : ('a, exn) result option array = Array.make n None in
    let remaining = Atomic.make n in
    (* Enqueue time, for the wait (enqueue -> start) histogram; only
       read when telemetry is on, so gate the clock read too. *)
    let timed = !Telemetry.Config.enabled in
    let enqueued_at = if timed then Telemetry.Clock.now () else 0. in
    let job i () =
      let started_at = if timed then Telemetry.Clock.now () else 0. in
      note_task_start
        ~wait_us:
          (if timed then int_of_float ((started_at -. enqueued_at) *. 1e6) else -1);
      (* lint: allow catch-all — domain boundary: the exception is
         captured into the result slot and re-raised by the caller. *)
      let r = try Ok (fs.(i) ()) with e -> Error e in
      results.(i) <- Some r;
      note_task_end
        ~run_us:
          (if timed then int_of_float ((Telemetry.Clock.now () -. started_at) *. 1e6)
           else -1);
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        Mutex.lock lock;
        Condition.broadcast batch_done;
        Mutex.unlock lock
      end
    in
    ignore (Atomic.fetch_and_add s_submitted n);
    Telemetry.Metrics.add c_submitted n;
    Mutex.lock lock;
    ensure_workers_locked ();
    for i = 0 to n - 1 do
      Queue.push (job i) jobs
    done;
    note_queue_depth_locked ();
    Condition.broadcast work_ready;
    Mutex.unlock lock;
    (* Caller participation: drain jobs (this batch's or another
       concurrent caller's — progress either way) until our batch is
       done, then wait out any of our jobs still running on workers. *)
    let rec help () =
      Mutex.lock lock;
      if Atomic.get remaining = 0 then Mutex.unlock lock
      else if not (Queue.is_empty jobs) then begin
        let j = Queue.pop jobs in
        note_queue_depth_locked ();
        Mutex.unlock lock;
        Atomic.incr s_helped;
        Telemetry.Metrics.incr c_helped;
        j ();
        help ()
      end
      else begin
        while Atomic.get remaining > 0 do
          Condition.wait batch_done lock
        done;
        Mutex.unlock lock
      end
    in
    help ();
    Array.map
      (function
        | Some (Ok x) -> x
        | Some (Error e) -> raise e
        | None -> assert false (* remaining = 0 implies every slot filled *))
      results
  end

let with_domains n f =
  let saved = domains () in
  set_domains n;
  Fun.protect ~finally:(fun () -> set_domains saved) f
