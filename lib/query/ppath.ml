open Vectors

type t =
  | Pred of string
  | Inv of t
  | Seq of t * t
  | Alt of t * t
  | Plus of t
  | Star of t
  | Opt of t

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse_error msg)) fmt

(* --- parser ----------------------------------------------------------- *)

type token =
  | T_iri of string
  | T_slash
  | T_pipe
  | T_caret
  | T_plus
  | T_star
  | T_quest
  | T_lparen
  | T_rparen

let tokenize ns text =
  let n = String.length text in
  let toks = ref [] in
  let i = ref 0 in
  let is_pname_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | '#' -> true
    | _ -> false
  in
  while !i < n do
    (match text.[!i] with
    | ' ' | '\t' | '\n' | '\r' -> incr i
    | '/' -> toks := T_slash :: !toks; incr i
    | '|' -> toks := T_pipe :: !toks; incr i
    | '^' -> toks := T_caret :: !toks; incr i
    | '+' -> toks := T_plus :: !toks; incr i
    | '*' -> toks := T_star :: !toks; incr i
    | '?' -> toks := T_quest :: !toks; incr i
    | '(' -> toks := T_lparen :: !toks; incr i
    | ')' -> toks := T_rparen :: !toks; incr i
    | '<' ->
        let j = ref (!i + 1) in
        while !j < n && text.[!j] <> '>' do
          incr j
        done;
        if !j >= n then fail "unterminated IRI";
        toks := T_iri (String.sub text (!i + 1) (!j - !i - 1)) :: !toks;
        i := !j + 1
    | c when is_pname_char c ->
        let start = !i in
        let j = ref !i in
        while !j < n && is_pname_char text.[!j] do
          incr j
        done;
        let word = String.sub text start (!j - start) in
        if not (String.contains word ':') then fail "bare word %S (prefixed name needs a colon)" word;
        let iri =
          match Rdf.Namespace.expand ns word with
          | iri -> iri
          | exception Not_found -> fail "unbound prefix in %S" word
          | exception Invalid_argument _ -> fail "malformed prefixed name %S" word
        in
        toks := T_iri iri :: !toks;
        i := !j
    | c -> fail "unexpected character %C" c)
  done;
  List.rev !toks

(* Recursive descent: alt > seq > unary(postfix) > atom. *)
let parse ?namespaces text =
  let ns = match namespaces with Some t -> t | None -> Rdf.Namespace.default () in
  let toks = ref (tokenize ns text) in
  let peek () = match !toks with [] -> None | t :: _ -> Some t in
  let advance () = match !toks with [] -> fail "unexpected end of path" | _ :: r -> toks := r in
  let rec alt () =
    let left = seq () in
    match peek () with
    | Some T_pipe ->
        advance ();
        Alt (left, alt ())
    | _ -> left
  and seq () =
    let left = postfix () in
    match peek () with
    | Some T_slash ->
        advance ();
        Seq (left, seq ())
    | _ -> left
  and postfix () =
    let base = atom () in
    let rec loop acc =
      match peek () with
      | Some T_plus ->
          advance ();
          loop (Plus acc)
      | Some T_star ->
          advance ();
          loop (Star acc)
      | Some T_quest ->
          advance ();
          loop (Opt acc)
      | _ -> acc
    in
    loop base
  and atom () =
    match peek () with
    | Some (T_iri iri) ->
        advance ();
        Pred iri
    | Some T_caret ->
        advance ();
        Inv (atom_with_postfix ())
    | Some T_lparen ->
        advance ();
        let inner = alt () in
        (match peek () with
        | Some T_rparen -> advance ()
        | _ -> fail "expected ')'");
        inner
    | Some _ -> fail "unexpected token in path"
    | None -> fail "empty path"
  and atom_with_postfix () =
    (* ^p+ parses as ^(p+) for convenience. *)
    let base = atom () in
    let rec loop acc =
      match peek () with
      | Some T_plus -> advance (); loop (Plus acc)
      | Some T_star -> advance (); loop (Star acc)
      | Some T_quest -> advance (); loop (Opt acc)
      | _ -> acc
    in
    loop base
  in
  let result = alt () in
  if !toks <> [] then fail "trailing tokens after path";
  result

(* --- evaluation --------------------------------------------------------- *)

let pid h iri = Dict.Term_dict.find_term (Hexa.Hexastore.dict h) (Rdf.Term.iri iri)

(* Forward step over one property for a sorted frontier. *)
let step_pred h p frontier =
  let out = Sorted_ivec.create () in
  (match pid h p with
  | None -> ()
  | Some p ->
      Sorted_ivec.iter
        (fun node ->
          match Hexa.Hexastore.objects_of_sp h ~s:node ~p with
          | None -> ()
          | Some ol -> Sorted_ivec.iter (fun o -> ignore (Sorted_ivec.add out o)) ol)
        frontier);
  out

let step_pred_inv h p frontier =
  let out = Sorted_ivec.create () in
  (match pid h p with
  | None -> ()
  | Some p ->
      Sorted_ivec.iter
        (fun node ->
          match Hexa.Hexastore.subjects_of_po h ~p ~o:node with
          | None -> ()
          | Some sl -> Sorted_ivec.iter (fun s -> ignore (Sorted_ivec.add out s)) sl)
        frontier);
  out

(* Reachable set of a frontier through a path; [inverted] flips edge
   direction (for eval_into). *)
let rec step ~inverted h path frontier =
  if Sorted_ivec.is_empty frontier then frontier
  else
    match path with
    | Pred p -> if inverted then step_pred_inv h p frontier else step_pred h p frontier
    | Inv inner -> step ~inverted:(not inverted) h inner frontier
    | Seq (a, b) ->
        if inverted then step ~inverted h a (step ~inverted h b frontier)
        else step ~inverted h b (step ~inverted h a frontier)
    | Alt (a, b) -> Merge.union (step ~inverted h a frontier) (step ~inverted h b frontier)
    | Opt inner -> Merge.union frontier (step ~inverted h inner frontier)
    | Star inner -> closure ~inverted h inner frontier
    | Plus inner ->
        let first = step ~inverted h inner frontier in
        closure ~inverted h inner first

(* BFS to fixpoint: reached ∪ everything [inner]-reachable from it. *)
and closure ~inverted h inner start =
  let reached = ref (Sorted_ivec.copy start) in
  let frontier = ref start in
  while not (Sorted_ivec.is_empty !frontier) do
    let next = step ~inverted h inner !frontier in
    let fresh = Merge.diff next !reached in
    reached := Merge.union !reached fresh;
    frontier := fresh
  done;
  !reached

let eval_from h ~start path = step ~inverted:false h path (Sorted_ivec.singleton start)

let eval_into h path ~target = step ~inverted:true h path (Sorted_ivec.singleton target)

(* ASK-style point check over an already-materialised closure: the probe
   is the algorithm here, not a join.  lint: allow query-probe *)
let holds h path ~s ~o = Sorted_ivec.mem (eval_from h ~start:s path) o

(* Source candidates: nodes that can possibly start the path (subjects of
   its leftmost predicates; every node for closure/optional paths, since
   zero-length matches start anywhere). *)
let rec sources h = function
  | Pred p -> (
      match pid h p with
      | None -> Sorted_ivec.create ()
      | Some p -> (
          match Hexa.Index.find_vector (Hexa.Hexastore.pso h) p with
          | None -> Sorted_ivec.create ()
          | Some v -> Hexa.Pair_vector.keys v))
  | Inv inner -> targets h inner
  | Seq (a, _) -> sources h a
  | Alt (a, b) -> Merge.union (sources h a) (sources h b)
  | Plus inner -> sources h inner
  | Star _ | Opt _ ->
      (* Zero-length arcs start at any node in the graph. *)
      Merge.union (Hexa.Hexastore.subjects h) (Hexa.Hexastore.objects h)

and targets h = function
  | Pred p -> (
      match pid h p with
      | None -> Sorted_ivec.create ()
      | Some p -> (
          match Hexa.Index.find_vector (Hexa.Hexastore.pos h) p with
          | None -> Sorted_ivec.create ()
          | Some v -> Hexa.Pair_vector.keys v))
  | Inv inner -> sources h inner
  | Seq (_, b) -> targets h b
  | Alt (a, b) -> Merge.union (targets h a) (targets h b)
  | Plus inner -> targets h inner
  | Star _ | Opt _ -> Merge.union (Hexa.Hexastore.subjects h) (Hexa.Hexastore.objects h)

let pairs h path =
  let out = ref [] in
  Sorted_ivec.iter
    (fun s ->
      Sorted_ivec.iter (fun o -> out := (s, o) :: !out) (eval_from h ~start:s path))
    (sources h path);
  List.sort_uniq compare !out

let rec pp ppf = function
  | Pred iri -> Format.fprintf ppf "<%s>" iri
  | Inv p -> Format.fprintf ppf "^%a" pp_atom p
  | Seq (a, b) -> Format.fprintf ppf "%a/%a" pp_tight a pp_tight b
  | Alt (a, b) -> Format.fprintf ppf "%a|%a" pp a pp b
  | Plus p -> Format.fprintf ppf "%a+" pp_atom p
  | Star p -> Format.fprintf ppf "%a*" pp_atom p
  | Opt p -> Format.fprintf ppf "%a?" pp_atom p

and pp_tight ppf p =
  match p with Alt _ -> Format.fprintf ppf "(%a)" pp p | _ -> pp ppf p

and pp_atom ppf p =
  match p with
  | Pred _ | Inv _ -> pp ppf p
  | _ -> Format.fprintf ppf "(%a)" pp p
